// Device descriptions for the three platforms of the paper's Table 3.
//
// This repository runs on commodity hosts without an A100 or a Gemini APU;
// the device simulators in this module execute the search *functionally* on
// host threads and account *time/energy* with analytic models over these
// specs. See DESIGN.md §2 for the substitution rationale and
// calibration.hpp for how the per-hash constants were derived.
#pragma once

#include <string>

#include "common/types.hpp"

namespace rbc::sim {

struct GpuSpec {
  std::string name;
  int sm_count;
  int cores_per_sm;
  double clock_hz;
  int max_threads_per_sm;
  int max_blocks_per_sm;
  int registers_per_sm;
  int shared_memory_per_sm;  // bytes
  double memory_bandwidth;   // bytes/s
  double idle_watts;
  double max_watts_sha1;
  double max_watts_sha3;

  int total_cores() const noexcept { return sm_count * cores_per_sm; }
  double total_cycles_per_second() const noexcept {
    return static_cast<double>(total_cores()) * clock_hz;
  }
};

/// NVIDIA A100 40 GiB (PlatformA accelerator; Table 3 + Table 6 power rows).
inline GpuSpec a100() {
  return GpuSpec{
      .name = "NVIDIA A100",
      .sm_count = 108,
      .cores_per_sm = 64,  // 108 x 64 = 6912 CUDA cores
      .clock_hz = 1410e6,
      .max_threads_per_sm = 2048,
      .max_blocks_per_sm = 16,
      .registers_per_sm = 65536,
      .shared_memory_per_sm = 164 * 1024,
      .memory_bandwidth = 1555e9,
      .idle_watts = 31.53,
      .max_watts_sha1 = 253.43,
      .max_watts_sha3 = 258.29,
  };
}

struct ApuSpec {
  std::string name;
  int cores;
  int banks_per_core;
  int bit_processors_per_bank;
  double clock_hz;
  /// Bit processors ganged per processing element (§3.3: the PE footprint
  /// depends on the algorithm's state size).
  int bps_per_pe_sha1;
  int bps_per_pe_sha3;
  double idle_watts;
  double max_watts_sha1;
  double max_watts_sha3;

  int total_bps() const noexcept {
    return cores * banks_per_core * bit_processors_per_bank;
  }
  /// §3.3: PEs = cores x banks x floor(BPs-per-bank / BPs-per-PE).
  int pe_count(int bps_per_pe) const noexcept {
    return cores * banks_per_core * (bit_processors_per_bank / bps_per_pe);
  }
};

/// GSI Gemini APU (PlatformB accelerator). §3.3: SHA-1 PEs use 2 BP columns,
/// SHA-3 PEs use 5, giving 65k and ~26k concurrent PEs respectively.
inline ApuSpec gemini_apu() {
  return ApuSpec{
      .name = "GSI Gemini APU",
      .cores = 4,
      .banks_per_core = 16,
      .bit_processors_per_bank = 2048,
      .clock_hz = 575e6,
      .bps_per_pe_sha1 = 2,
      .bps_per_pe_sha3 = 5,
      .idle_watts = 22.10,
      .max_watts_sha1 = 83.81,
      .max_watts_sha3 = 83.63,
  };
}

/// NVIDIA V100 16 GiB — the platform of the AES-RBC prior work [39], kept
/// for the related-work cross-check ("a single Nvidia V100 GPU achieves the
/// same search throughput as roughly 300 CPU cores").
inline GpuSpec v100() {
  return GpuSpec{
      .name = "NVIDIA V100",
      .sm_count = 80,
      .cores_per_sm = 64,  // 5120 CUDA cores
      .clock_hz = 1530e6,
      .max_threads_per_sm = 2048,
      .max_blocks_per_sm = 16,
      .registers_per_sm = 65536,
      .shared_memory_per_sm = 96 * 1024,
      .memory_bandwidth = 900e9,
      .idle_watts = 25.0,
      .max_watts_sha1 = 250.0,
      .max_watts_sha3 = 250.0,
  };
}

struct CpuSpec {
  std::string name;
  int cores;
  double clock_hz;

  double total_cycles_per_second() const noexcept {
    return static_cast<double>(cores) * clock_hz;
  }
};

/// 2x AMD EPYC 7542 (PlatformA host, 64 physical cores).
inline CpuSpec epyc64() {
  return CpuSpec{.name = "2x AMD EPYC 7542", .cores = 64, .clock_hz = 2.9e9};
}

/// Intel i7-7700 (PlatformB host).
inline CpuSpec i7_7700() {
  return CpuSpec{.name = "Intel i7-7700", .cores = 4, .clock_hz = 3.6e9};
}

}  // namespace rbc::sim
