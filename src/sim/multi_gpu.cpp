#include "sim/multi_gpu.hpp"

#include <algorithm>

#include "combinatorics/binomial.hpp"
#include "common/check.hpp"

namespace rbc::sim {

double MultiGpuModel::time_for_seeds_s(u64 seeds, int gpus,
                                       hash::HashAlgo hash, bool early_exit,
                                       IterAlgo iter) const {
  RBC_CHECK(gpus >= 1);
  const auto& calib = gpu_.calibration();
  // Even static split; the slowest device carries ceil(seeds/g).
  const u64 share = (seeds + static_cast<u64>(gpus) - 1) /
                    static_cast<u64>(gpus);
  double t = gpu_.time_for_seeds_s(share, hash, iter);
  t += calib.multi_gpu_coord_s_per_gpu * (gpus - 1);
  if (early_exit) {
    t += calib.multi_gpu_flag_s_per_gpu * (gpus - 1);
    t += calib.gpu_exit_overhead_s;
  }
  return t;
}

double MultiGpuModel::time_for_seeds_dynamic_s(u64 seeds, int gpus,
                                               hash::HashAlgo hash,
                                               bool early_exit,
                                               IterAlgo iter) const {
  RBC_CHECK(gpus >= 1);
  const auto& calib = gpu_.calibration();
  const u64 g = static_cast<u64>(gpus);
  // The queue balances work to within one tile: the slowest device carries
  // its even share plus at most one tile of tail.
  const u64 tiles = (seeds + calib.gpu_tile_seeds - 1) / calib.gpu_tile_seeds;
  u64 share = seeds / g;
  if (tiles % g != 0) share += calib.gpu_tile_seeds;
  share = std::min(share, seeds);
  double t = gpu_.time_for_seeds_s(share, hash, iter);
  t += calib.multi_gpu_dynamic_coord_factor * calib.multi_gpu_coord_s_per_gpu *
       (gpus - 1);
  // Each device claims ~tiles/g tiles off the shared queue.
  t += static_cast<double>((tiles + g - 1) / g) * calib.multi_gpu_tile_claim_s;
  if (early_exit) {
    t += calib.multi_gpu_flag_s_per_gpu * (gpus - 1);
    t += calib.gpu_exit_overhead_s;
  }
  return t;
}

std::vector<MultiGpuPoint> MultiGpuModel::scaling_curve(
    int d, hash::HashAlgo hash, bool early_exit, int max_gpus,
    bool dynamic_tiling) const {
  const u64 seeds = static_cast<u64>(
      early_exit ? comb::average_search_count(d)
                 : comb::exhaustive_search_count(d));
  const auto time_at = [&](int g) {
    return dynamic_tiling
               ? time_for_seeds_dynamic_s(seeds, g, hash, early_exit)
               : time_for_seeds_s(seeds, g, hash, early_exit);
  };
  std::vector<MultiGpuPoint> points;
  points.reserve(static_cast<std::size_t>(max_gpus));
  // Speedups are relative to the single-GPU *static* time: dynamic tiling
  // competes against the Fig. 4 baseline, not against itself.
  const double t1 = time_for_seeds_s(seeds, 1, hash, early_exit);
  for (int g = 1; g <= max_gpus; ++g) {
    MultiGpuPoint p;
    p.gpus = g;
    p.time_s = time_at(g);
    p.speedup = t1 / p.time_s;
    p.parallel_efficiency = p.speedup / g;
    points.push_back(p);
  }
  return points;
}

}  // namespace rbc::sim
