#include "sim/multi_gpu.hpp"

#include "combinatorics/binomial.hpp"
#include "common/check.hpp"

namespace rbc::sim {

double MultiGpuModel::time_for_seeds_s(u64 seeds, int gpus,
                                       hash::HashAlgo hash, bool early_exit,
                                       IterAlgo iter) const {
  RBC_CHECK(gpus >= 1);
  const auto& calib = gpu_.calibration();
  // Even static split; the slowest device carries ceil(seeds/g).
  const u64 share = (seeds + static_cast<u64>(gpus) - 1) /
                    static_cast<u64>(gpus);
  double t = gpu_.time_for_seeds_s(share, hash, iter);
  t += calib.multi_gpu_coord_s_per_gpu * (gpus - 1);
  if (early_exit) {
    t += calib.multi_gpu_flag_s_per_gpu * (gpus - 1);
    t += calib.gpu_exit_overhead_s;
  }
  return t;
}

std::vector<MultiGpuPoint> MultiGpuModel::scaling_curve(int d,
                                                        hash::HashAlgo hash,
                                                        bool early_exit,
                                                        int max_gpus) const {
  const u64 seeds = static_cast<u64>(
      early_exit ? comb::average_search_count(d)
                 : comb::exhaustive_search_count(d));
  std::vector<MultiGpuPoint> points;
  points.reserve(static_cast<std::size_t>(max_gpus));
  const double t1 = time_for_seeds_s(seeds, 1, hash, early_exit);
  for (int g = 1; g <= max_gpus; ++g) {
    MultiGpuPoint p;
    p.gpus = g;
    p.time_s = time_for_seeds_s(seeds, g, hash, early_exit);
    p.speedup = t1 / p.time_s;
    p.parallel_efficiency = p.speedup / g;
    points.push_back(p);
  }
  return points;
}

}  // namespace rbc::sim
