// Analytic timing model of SALTED-CPU (§3.4) and of the legacy
// algorithm-aware RBC baselines on the CPU/GPU (Table 7).
//
// The CPU engine is OpenMP data-parallel with a shared early-exit flag; its
// scaling is limited by a small serial-equivalent per-seed overhead (memory
// traffic + flag polling) that the model carries as cpu_contention_cycles.
// That single constant, calibrated once, reproduces both of §4.3's strong-
// scaling results (59x for SHA-1 and 63x for SHA-3 on 64 cores).
#pragma once

#include "common/types.hpp"
#include "sim/calibration.hpp"
#include "sim/device.hpp"

namespace rbc::sim {

class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec = epyc64(),
                    Calibration calib = default_calibration())
      : spec_(std::move(spec)), calib_(calib) {}

  const CpuSpec& spec() const noexcept { return spec_; }

  /// Search time on `threads` cores: N * (H/p + contention) / clock.
  double time_for_seeds_s(u64 seeds, hash::HashAlgo hash, int threads) const;

  double exhaustive_time_s(int d, hash::HashAlgo hash, int threads) const;
  double average_time_s(int d, hash::HashAlgo hash, int threads) const;

  /// Projections for the batched multi-lane hash pipeline: the hash cost per
  /// candidate drops by the measured cpu_batch_speedup while the per-seed
  /// contention term is unchanged (flag/progress bookkeeping is per seed, not
  /// per compression).
  double batched_time_for_seeds_s(u64 seeds, hash::HashAlgo hash,
                                  int threads) const;
  double batched_exhaustive_time_s(int d, hash::HashAlgo hash,
                                   int threads) const;
  /// Overall speedup of the batched over the scalar pipeline at `threads`.
  double batched_pipeline_speedup(hash::HashAlgo hash, int threads) const;

  /// Strong-scaling speedup t(1)/t(p) for the §4.3 experiment.
  double speedup(hash::HashAlgo hash, int threads) const;

  /// Legacy algorithm-aware RBC (keygen per candidate) on this CPU.
  double legacy_time_for_seeds_s(u64 seeds, crypto::KeygenAlgo algo,
                                 int threads) const;

 private:
  double per_seed_seconds(double work_cycles, int threads) const;

  CpuSpec spec_;
  Calibration calib_;
};

/// Legacy algorithm-aware RBC on the GPU (Table 7 GPU columns).
class GpuLegacyModel {
 public:
  explicit GpuLegacyModel(GpuSpec spec = a100(),
                          Calibration calib = default_calibration())
      : spec_(std::move(spec)), calib_(calib) {}

  double time_for_seeds_s(u64 seeds, crypto::KeygenAlgo algo) const;

 private:
  GpuSpec spec_;
  Calibration calib_;
};

}  // namespace rbc::sim
