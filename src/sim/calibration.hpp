// Calibration constants for the device cost models, with derivations.
//
// METHODOLOGY. Each (device, algorithm) pair gets ONE per-candidate cycle
// cost, derived from a single anchor cell of the paper's evaluation — the
// exhaustive d = 5 (or, for Table 7 rows, d = 4) search time — using
//
//     cycles_per_candidate = device_cycles_per_second * time / seeds
//
// with seeds = u(d) from Eq. 1 (u(5) = 8,987,138,113; u(4) = 177,589,057).
// Everything else the benches print — average-case rows, the Fig. 3 heatmap
// shape, Fig. 4 scaling curves, crossovers between devices, Table 7
// orderings — is *derived* from the shared model structure, not calibrated
// per cell. That is what makes the reproduction falsifiable: if the model
// were wrong, the non-anchored cells would not land near the paper.
//
// Worked derivations (device throughputs: A100 = 6912 cores x 1.410 GHz =
// 9.746e12 cyc/s; APU(SHA-1) = 65536 PEs x 575 MHz; APU(SHA-3) = 26176 PEs x
// 575 MHz; EPYC-64 = 64 x 2.9 GHz = 1.856e11 cyc/s):
//
//   GPU SHA-1:  9.746e12 * 1.56 / 8.987e9  = 1691 cycles/hash raw; the GPU
//               anchor is solved jointly with the execution-model overheads
//               (latency-hiding factor 1.02 at the best configuration plus
//               0.109 s of state-load + block-scheduling time) so that the
//               FULL model reproduces 1.56 s at (n=100, b=128): 1543 cycles
//   GPU SHA-3:  likewise: (4.67 - 0.109)/1.02 * 9.746e12/8.987e9 = 4849
//   APU SHA-1:  3.768e13 * 1.62 / 8.987e9  = 6792 PE-cycles/hash
//   APU SHA-3:  1.505e13 * 13.95 / 8.987e9 = 23362 PE-cycles/hash
//   CPU SHA-1:  t(64) = 12.09 s with 0.3 cyc/seed contention -> 230 cyc/hash
//   CPU SHA-3:  t(64) = 60.68 s                              -> 1234 cyc/hash
//
// The CPU contention constant (0.3 cycles/seed of serial-equivalent memory/
// flag traffic) is itself cross-checked: it simultaneously reproduces BOTH
// §4.3 strong-scaling numbers, 59x for SHA-1 and 63x for SHA-3 on 64 cores.
//
// Iterator overheads (Table 4, GPU, SHA-3, d = 5; Chase 382 is the baseline
// folded into the hash anchor):
//   Alg 515:  (7.53 - 4.67) s -> +3101 cycles/seed
//   Gosper:   (6.04 - 4.67) s -> +1486 cycles/seed
//
// Legacy algorithm-aware RBC keygens (Table 7 anchors):
//   AES-128    d=5: GPU 2.56 s -> 2776 cyc;  CPU 44.7 s  -> 854 cyc (+cont.)
//   LightSABER d=4: GPU 14.03 s -> 7.70e5;   CPU 44.58 s -> 46.3e3
//   Dilithium3 d=4: GPU 27.91 s -> 1.532e6;  CPU 204.92 s -> 213.7e3
//
// Energy utilisation u (Table 6 / Table 5): P_avg = idle + u*(max-idle):
//   GPU SHA-1: 317.20 J / 1.56 s = 203.3 W -> u = 0.774
//   GPU SHA-3: 946.55 J / 4.67 s = 202.7 W -> u = 0.771
//   APU SHA-1: 124.43 J / 1.62 s = 76.8 W  -> u = 0.886
//   APU SHA-3: 974.06 J / 13.95 s = 69.8 W -> u = 0.776
//
// Multi-GPU overheads (Fig. 4, SHA-3 anchors): exhaustive speedup 2.87x and
// early-exit 2.66x on 3 GPUs give a per-extra-GPU coordination cost of
// 0.035 s plus 0.017 s of unified-memory flag traffic for early exit.
#pragma once

#include "common/types.hpp"
#include "crypto/pqc_keygen.hpp"
#include "hash/traits.hpp"

namespace rbc::sim {

/// Seed iteration algorithms evaluated in §3.2.1 / Table 4.
enum class IterAlgo : u8 { kChase382 = 0, kAlg515 = 1, kGosper = 2 };

constexpr std::string_view to_string(IterAlgo a) {
  switch (a) {
    case IterAlgo::kChase382:
      return "Chase's Alg. 382";
    case IterAlgo::kAlg515:
      return "Algorithm 515";
    case IterAlgo::kGosper:
      return "Gosper's hack";
  }
  return "?";
}

struct Calibration {
  // --- hashing cost, cycles per candidate seed (Chase 382 iteration folded
  // in, per the Table 5 anchor) ---------------------------------------------
  double gpu_cycles_sha1 = 1543.0;
  double gpu_cycles_sha3 = 4849.0;
  double apu_cycles_sha1 = 6792.0;
  double apu_cycles_sha3 = 23362.0;
  double cpu_cycles_sha1 = 230.0;
  double cpu_cycles_sha3 = 1234.0;

  /// Serial-equivalent CPU parallel overhead, cycles per seed (§4.3 anchor).
  double cpu_contention_cycles = 0.3;

  // --- host batched hashing (multi-lane CPU pipeline, PR 3) -----------------
  // Measured end-to-end speedup of the batched search pipeline over the
  // scalar one on the reference host (AVX2 dispatch, Chase iterator, d = 3
  // exhaustive, single thread; raw kernel speedups are higher — 3.1x/3.3x —
  // because iteration cost is not batched; see docs/perf.md and
  // BENCH_PR3.json). These are HOST constants, not paper anchors: they scale
  // only the per-candidate work term of the CPU model — the contention term
  // is per-seed bookkeeping that batching does not remove — so the
  // paper-anchored scalar projections above are untouched.
  double cpu_batch_speedup_sha1 = 1.75;
  double cpu_batch_speedup_sha3 = 2.91;

  // --- iterator overhead relative to Chase 382, cycles per seed (Table 4) --
  double iter_extra_alg515 = 3041.0;
  double iter_extra_gosper = 1457.0;

  // --- GPU execution-model constants (Fig. 3 anchors) ----------------------
  /// Per-thread one-time cost: loading the iterator state (Chase control
  /// array ~288 B) from global memory, charged against memory bandwidth.
  double gpu_thread_state_bytes = 288.0;
  /// Block scheduling cost, cycles per block per SM-equivalent.
  double gpu_block_overhead_cycles = 20000.0;
  /// Latency-hiding degradation when few blocks are resident per SM.
  double gpu_latency_hiding_penalty = 0.08;
  /// Register footprint of the fused iterate+hash kernel.
  int gpu_registers_per_thread = 64;
  /// Kernel launch + host sync per Hamming shell, seconds.
  double gpu_kernel_launch_s = 0.00002;
  /// §3.2.3 ablation: multiplier on the *iteration* component when the Chase
  /// state lives in global instead of shared memory (1.20x whole-search for
  /// SHA-1 => larger factor on the iteration share alone).
  double gpu_global_state_penalty = 1.30;

  // --- early-exit (average-case) overheads, seconds (Table 5 anchors) ------
  double gpu_exit_overhead_s = 0.045;
  double apu_exit_overhead_s = 0.005;
  double cpu_exit_overhead_s = 0.0;

  // --- APU constants (§3.3) -------------------------------------------------
  /// Seed permutations generated per loaded startup combination.
  int apu_batch_size = 256;
  /// PE-cycles to load one startup combination batch.
  double apu_batch_load_cycles = 1200.0;

  // --- multi-GPU model (Fig. 4 anchors) -------------------------------------
  double multi_gpu_coord_s_per_gpu = 0.035;
  double multi_gpu_flag_s_per_gpu = 0.0015;

  // --- multi-GPU dynamic tiling (PR 4 tile scheduler, §5 projection) --------
  // With a shared tile queue the per-extra-GPU coordination shrinks: no
  // per-device partition upload, one queue handoff instead of a static
  // split + join. HOST constants, not paper anchors — the static-split
  // numbers above reproduce Fig. 4 unchanged.
  /// Fraction of the static coordination cost that remains under tiling.
  double multi_gpu_dynamic_coord_factor = 0.5;
  /// Cost of one tile claim on the shared queue (atomic over NVLink/PCIe).
  double multi_gpu_tile_claim_s = 1e-6;
  /// Seeds per device tile; large enough to amortise claims, small enough
  /// that the tail imbalance is one tile, not one shell slice.
  u64 gpu_tile_seeds = u64{1} << 20;

  // --- energy model utilisation factors (Table 6 anchors) ------------------
  double gpu_util_sha1 = 0.774;
  double gpu_util_sha3 = 0.771;
  double apu_util_sha1 = 0.886;
  double apu_util_sha3 = 0.776;

  // --- legacy algorithm-aware RBC keygen costs (Table 7 anchors),
  //     cycles per candidate -------------------------------------------------
  double gpu_cycles_keygen_aes = 2776.0;
  double gpu_cycles_keygen_saber = 7.70e5;
  double gpu_cycles_keygen_dilithium = 1.532e6;
  double cpu_cycles_keygen_aes = 904.0;
  double cpu_cycles_keygen_saber = 4.657e4;
  double cpu_cycles_keygen_dilithium = 2.1413e5;
  // The remaining NIST families are NOT paper-anchored; estimates derive
  // from structure: Kyber768 keygen performs 9 ring products versus
  // Dilithium3's 30 (x0.35), and a WOTS+ keygen is exactly 1072 SHA3 calls.
  double gpu_cycles_keygen_kyber = 0.35 * 1.532e6;
  double gpu_cycles_keygen_wots = 1072.0 * 4849.0;
  double cpu_cycles_keygen_kyber = 0.35 * 2.1413e5;
  double cpu_cycles_keygen_wots = 1072.0 * 1234.0;

  // --- communication budget (Table 5) ---------------------------------------
  /// Comm. + PUF-read budget per authentication, seconds (US<->US pair).
  double comm_time_s = 0.90;

  double gpu_cycles(hash::HashAlgo h) const {
    return h == hash::HashAlgo::kSha1 ? gpu_cycles_sha1 : gpu_cycles_sha3;
  }
  double apu_cycles(hash::HashAlgo h) const {
    return h == hash::HashAlgo::kSha1 ? apu_cycles_sha1 : apu_cycles_sha3;
  }
  double cpu_cycles(hash::HashAlgo h) const {
    return h == hash::HashAlgo::kSha1 ? cpu_cycles_sha1 : cpu_cycles_sha3;
  }
  double cpu_batch_speedup(hash::HashAlgo h) const {
    return h == hash::HashAlgo::kSha1 ? cpu_batch_speedup_sha1
                                      : cpu_batch_speedup_sha3;
  }
  /// Per-candidate hash cost with the batched pipeline, cycles.
  double cpu_batch_cycles(hash::HashAlgo h) const {
    return cpu_cycles(h) / cpu_batch_speedup(h);
  }
  double iter_extra(IterAlgo it) const {
    switch (it) {
      case IterAlgo::kChase382:
        return 0.0;
      case IterAlgo::kAlg515:
        return iter_extra_alg515;
      case IterAlgo::kGosper:
        return iter_extra_gosper;
    }
    return 0.0;
  }
  double gpu_keygen_cycles(crypto::KeygenAlgo a) const {
    switch (a) {
      case crypto::KeygenAlgo::kAes128:
        return gpu_cycles_keygen_aes;
      case crypto::KeygenAlgo::kSaberLike:
        return gpu_cycles_keygen_saber;
      case crypto::KeygenAlgo::kDilithiumLike:
        return gpu_cycles_keygen_dilithium;
      case crypto::KeygenAlgo::kKyberLike:
        return gpu_cycles_keygen_kyber;
      case crypto::KeygenAlgo::kWots:
        return gpu_cycles_keygen_wots;
    }
    return 0.0;
  }
  double cpu_keygen_cycles(crypto::KeygenAlgo a) const {
    switch (a) {
      case crypto::KeygenAlgo::kAes128:
        return cpu_cycles_keygen_aes;
      case crypto::KeygenAlgo::kSaberLike:
        return cpu_cycles_keygen_saber;
      case crypto::KeygenAlgo::kDilithiumLike:
        return cpu_cycles_keygen_dilithium;
      case crypto::KeygenAlgo::kKyberLike:
        return cpu_cycles_keygen_kyber;
      case crypto::KeygenAlgo::kWots:
        return cpu_cycles_keygen_wots;
    }
    return 0.0;
  }
};

inline const Calibration& default_calibration() {
  static const Calibration c;
  return c;
}

}  // namespace rbc::sim
