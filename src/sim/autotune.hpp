// GPU launch-parameter autotuner — the Fig. 3 / §4.4 grid search as an API.
//
// The paper tunes seeds-per-thread (n) and threads-per-block (b) by hand for
// its platform; deployments on other GPUs need the same sweep. The tuner
// walks the (n, b) grid over the execution model for the actual workload
// (distance, hash, iterator) and returns the best configuration plus the
// whole grid for inspection.
#pragma once

#include <vector>

#include "sim/gpu_model.hpp"

namespace rbc::sim {

struct TunePoint {
  int seeds_per_thread = 0;
  int threads_per_block = 0;
  double time_s = 0.0;
};

struct TuneResult {
  TunePoint best;
  std::vector<TunePoint> grid;  // all evaluated points, row-major over n x b
  /// Points within 5% of the best — the paper's "similarly good" flat region.
  int near_optimal_count = 0;
};

inline TuneResult autotune_gpu(const GpuModel& gpu, int d,
                               hash::HashAlgo hash,
                               IterAlgo iter = IterAlgo::kChase382) {
  static constexpr int kSeedsPerThread[] = {1,   5,   10,  25,   50,  100,
                                            200, 400, 800, 1600, 3200, 12800};
  static constexpr int kThreadsPerBlock[] = {32, 64, 128, 256, 512, 1024};

  TuneResult result;
  result.best.time_s = 1e300;
  for (int n : kSeedsPerThread) {
    for (int b : kThreadsPerBlock) {
      GpuSearchConfig proto;
      proto.seeds_per_thread = n;
      proto.threads_per_block = b;
      proto.hash = hash;
      proto.iter = iter;
      const TunePoint point{n, b, gpu.ball_time_s(d, proto)};
      result.grid.push_back(point);
      if (point.time_s < result.best.time_s) result.best = point;
    }
  }
  for (const auto& p : result.grid) {
    if (p.time_s <= result.best.time_s * 1.05) ++result.near_optimal_count;
  }
  return result;
}

}  // namespace rbc::sim
