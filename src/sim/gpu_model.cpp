#include "sim/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "combinatorics/binomial.hpp"
#include "common/check.hpp"

namespace rbc::sim {

GpuOccupancy GpuModel::occupancy(const GpuSearchConfig& cfg) const {
  RBC_CHECK_MSG(cfg.seeds_per_thread > 0, "seeds per thread must be positive");
  RBC_CHECK_MSG(cfg.threads_per_block > 0 && cfg.threads_per_block % 32 == 0,
                "threads per block must be a positive multiple of the warp");

  GpuOccupancy occ;
  const int b = cfg.threads_per_block;

  // Occupancy limits: hardware block slots, thread slots, register file,
  // and (when the iterator state lives in shared memory) shared capacity.
  const int by_slots = spec_.max_blocks_per_sm;
  const int by_threads = spec_.max_threads_per_sm / b;
  const int by_regs =
      spec_.registers_per_sm / (calib_.gpu_registers_per_thread * b);
  int blocks = std::min({by_slots, by_threads, by_regs});
  if (cfg.state_in_shared_memory) {
    const int by_shared = static_cast<int>(
        spec_.shared_memory_per_sm /
        (calib_.gpu_thread_state_bytes * b));
    if (by_shared == 0) {
      // Block's state does not fit in shared memory at all: the kernel falls
      // back to global-memory state (spill) but can still run.
      occ.shared_memory_spill = true;
    } else {
      blocks = std::min(blocks, by_shared);
    }
  }
  blocks = std::max(blocks, 1);

  occ.blocks_per_sm = blocks;
  occ.threads_per_sm = blocks * b;
  occ.total_threads =
      (cfg.seeds + static_cast<u64>(cfg.seeds_per_thread) - 1) /
      static_cast<u64>(cfg.seeds_per_thread);
  occ.total_blocks =
      (occ.total_threads + static_cast<u64>(b) - 1) / static_cast<u64>(b);
  occ.resident_threads = static_cast<u64>(spec_.sm_count) *
                         static_cast<u64>(occ.threads_per_sm);
  occ.waves = occ.total_threads == 0
                  ? 0
                  : (occ.total_threads + occ.resident_threads - 1) /
                        occ.resident_threads;
  return occ;
}

double GpuModel::search_time_s(const GpuSearchConfig& cfg) const {
  if (cfg.seeds == 0) return 0.0;
  const GpuOccupancy occ = occupancy(cfg);

  double cycles_per_seed =
      calib_.gpu_cycles(cfg.hash) + calib_.iter_extra(cfg.iter);
  // §3.2.3: keeping the Chase state in global instead of shared memory slows
  // the whole kernel by the paper's measured 1.20x (SHA-1) / 1.01x (SHA-3) —
  // the cheaper the hash, the larger the share of time spent touching state.
  if (!cfg.state_in_shared_memory || occ.shared_memory_spill) {
    const double penalty = cfg.hash == hash::HashAlgo::kSha1 ? 1.20 : 1.01;
    cycles_per_seed = calib_.gpu_cycles(cfg.hash) * penalty +
                      calib_.iter_extra(cfg.iter);
  }

  // Compute term, quantized to full waves (the last wave runs at full length
  // even when partially filled). A wave is one residency of threads_per_sm
  // threads per SM, each doing n seeds, drained by cores_per_sm cores:
  // resident threads are oversubscribed onto the cores to hide latency, so a
  // wave's duration is its total cycle volume over the SM's issue rate.
  const double wave_time = static_cast<double>(occ.threads_per_sm) *
                           static_cast<double>(cfg.seeds_per_thread) *
                           cycles_per_seed /
                           (static_cast<double>(spec_.cores_per_sm) *
                            spec_.clock_hz);
  double t = static_cast<double>(occ.waves) * wave_time;

  // Latency hiding degrades when an SM holds few independent blocks.
  t *= 1.0 + calib_.gpu_latency_hiding_penalty / occ.blocks_per_sm;

  // Per-thread iterator-state load, against device memory bandwidth.
  t += static_cast<double>(occ.total_threads) * calib_.gpu_thread_state_bytes /
       spec_.memory_bandwidth;

  // Block scheduling overhead, spread across SMs.
  t += static_cast<double>(occ.total_blocks) *
       calib_.gpu_block_overhead_cycles /
       (static_cast<double>(spec_.sm_count) * spec_.clock_hz);

  // Host-side kernel launches (one per Hamming shell).
  t += static_cast<double>(cfg.kernels) * calib_.gpu_kernel_launch_s;
  return t;
}

double GpuModel::time_for_seeds_s(u64 seeds, hash::HashAlgo hash,
                                  IterAlgo iter, int kernels) const {
  GpuSearchConfig cfg;
  cfg.seeds = seeds;
  cfg.hash = hash;
  cfg.iter = iter;
  cfg.kernels = kernels;
  return search_time_s(cfg);
}

double GpuModel::ball_time_s(int d, const GpuSearchConfig& proto) const {
  RBC_CHECK(d >= 1 && d <= comb::kMaxK);
  double total = 0.0;
  for (int k = 1; k <= d; ++k) {
    GpuSearchConfig cfg = proto;
    cfg.seeds = static_cast<u64>(comb::binomial128(comb::kSeedBits, k));
    cfg.kernels = 1;
    total += search_time_s(cfg);
  }
  return total;
}

double GpuModel::exhaustive_time_s(int d, hash::HashAlgo hash,
                                   IterAlgo iter) const {
  GpuSearchConfig proto;
  proto.hash = hash;
  proto.iter = iter;
  return ball_time_s(d, proto);
}

double GpuModel::average_time_s(int d, hash::HashAlgo hash,
                                IterAlgo iter) const {
  // Full shells below d, then half of the outermost shell (Eq. 3), plus the
  // early-exit machinery cost.
  GpuSearchConfig proto;
  proto.hash = hash;
  proto.iter = iter;
  double t = d > 1 ? ball_time_s(d - 1, proto) : 0.0;
  GpuSearchConfig outer = proto;
  outer.seeds = static_cast<u64>(comb::binomial128(comb::kSeedBits, d) / 2);
  t += search_time_s(outer);
  return t + calib_.gpu_exit_overhead_s;
}

}  // namespace rbc::sim
