// Analytic timing model of SALTED-GPU on the A100 (§3.2, §4.4, §4.5).
//
// The search kernel is compute-bound: each thread loads its iterator state,
// then loops `n` times over {generate next seed, hash, compare, poll flag}.
// The model decomposes kernel time into
//
//   t = waves * n * cycles_per_seed / clock        (compute)
//     + p * state_bytes / memory_bandwidth          (per-thread state load)
//     + blocks * block_overhead / (SMs * clock_sm)  (block scheduling)
//     + kernels * launch_overhead                   (host-side launches)
//
// scaled by a latency-hiding factor that degrades when few blocks fit on an
// SM (register/shared-memory/block-slot occupancy limits). The Fig. 3 grid
// search over (seeds-per-thread n, threads-per-block b) and the Table 4
// iterator comparison both fall out of this one function.
#pragma once

#include "common/types.hpp"
#include "sim/calibration.hpp"
#include "sim/device.hpp"

namespace rbc::sim {

struct GpuSearchConfig {
  u64 seeds = 0;                 // candidates to hash (one shell or a ball)
  int seeds_per_thread = 100;    // n
  int threads_per_block = 128;   // b
  hash::HashAlgo hash = hash::HashAlgo::kSha3_256;
  IterAlgo iter = IterAlgo::kChase382;
  int kernels = 1;               // one launch per Hamming shell
  bool state_in_shared_memory = true;  // §3.2.3 optimization
};

struct GpuOccupancy {
  int blocks_per_sm = 0;
  int threads_per_sm = 0;
  u64 total_threads = 0;   // p
  u64 total_blocks = 0;
  u64 resident_threads = 0;
  u64 waves = 0;
  bool shared_memory_spill = false;  // state no longer fits in shared memory
};

class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec = a100(),
                    Calibration calib = default_calibration())
      : spec_(std::move(spec)), calib_(calib) {}

  const GpuSpec& spec() const noexcept { return spec_; }
  const Calibration& calibration() const noexcept { return calib_; }

  /// Occupancy for a given block size (independent of workload size).
  GpuOccupancy occupancy(const GpuSearchConfig& cfg) const;

  /// Search-only time in seconds for the configured workload.
  double search_time_s(const GpuSearchConfig& cfg) const;

  /// Full-ball search up to distance d: one kernel per Hamming shell (§3.2:
  /// "the loop ... is executed on the host, where a kernel is launched to
  /// process a single Hamming distance"). Small shells cost a full wave even
  /// when underfilled, which is what penalizes large seeds-per-thread values
  /// in the Fig. 3 sweep.
  double ball_time_s(int d, const GpuSearchConfig& proto) const;

  /// Exhaustive search up to distance d with best-practice parameters
  /// (n = 100, b = 128): Table 5 "Search Time" rows.
  double exhaustive_time_s(int d, hash::HashAlgo hash,
                           IterAlgo iter = IterAlgo::kChase382) const;

  /// Average-case search (Eq. 3 seed count) plus the early-exit overhead.
  double average_time_s(int d, hash::HashAlgo hash,
                        IterAlgo iter = IterAlgo::kChase382) const;

  /// Search time for an arbitrary number of visited seeds (used by the
  /// multi-GPU model and the trial harness).
  double time_for_seeds_s(u64 seeds, hash::HashAlgo hash,
                          IterAlgo iter = IterAlgo::kChase382,
                          int kernels = 1) const;

 private:
  GpuSpec spec_;
  Calibration calib_;
};

}  // namespace rbc::sim
