// Host throughput probe: measures the REAL per-candidate cost of this
// build's hash/iterator/keygen implementations on the machine running the
// benches.
//
// Every bench prints three columns: the paper's published number, the
// calibrated device-model number, and a host-measured number produced with
// these probes (scaled-down workloads, real code). The probe keeps the
// simulation honest — e.g. the SHA-3/SHA-1 cost ratio and the
// keygen-vs-hash gap must emerge from the real implementations, not just
// from calibration constants.
#pragma once

#include <string>

#include "common/types.hpp"
#include "crypto/pqc_keygen.hpp"
#include "hash/traits.hpp"
#include "sim/calibration.hpp"

namespace rbc::sim {

struct ProbeResult {
  std::string what;
  u64 operations = 0;
  double seconds = 0.0;

  double ns_per_op() const noexcept {
    return operations == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(operations);
  }
  double ops_per_second() const noexcept {
    return seconds == 0.0 ? 0.0 : static_cast<double>(operations) / seconds;
  }
};

/// Seed hashing throughput (fast fixed-input path).
ProbeResult probe_hash(hash::HashAlgo algo, u64 iterations);

/// Seed hashing throughput through the generic streaming path
/// (the "before" side of the §3.2.2 ablation).
ProbeResult probe_hash_generic(hash::HashAlgo algo, u64 iterations);

/// Seed hashing throughput through the batched multi-lane pipeline at the
/// process-wide dispatch level (hash/batch.hpp). `iterations` counts seeds,
/// hashed in policy-preferred blocks.
ProbeResult probe_hash_batched(hash::HashAlgo algo, u64 iterations);

/// Iterate+hash throughput for one seed-iterator family over shell k —
/// the quantity Table 4 compares. Runs the real iterator + real hash.
ProbeResult probe_iterate_and_hash(IterAlgo iter, hash::HashAlgo hash, int k,
                                   u64 max_seeds);

/// Same loop shape as the batched search hot loop: refill a candidate block
/// from the iterator by XOR-delta, then hash all lanes at once.
ProbeResult probe_iterate_and_hash_batched(IterAlgo iter, hash::HashAlgo hash,
                                           int k, u64 max_seeds);

/// Public-key generation throughput (legacy RBC per-candidate cost).
ProbeResult probe_keygen(crypto::KeygenAlgo algo, u64 iterations);

}  // namespace rbc::sim
