#include "sim/apu_model.hpp"

#include <cmath>

#include "combinatorics/binomial.hpp"

namespace rbc::sim {

double ApuModel::time_for_seeds_s(u64 seeds, hash::HashAlgo hash) const {
  if (seeds == 0) return 0.0;
  const double pes = pe_count(hash);
  const double cycles = calib_.apu_cycles(hash);

  // Seeds are spread over the PEs; each PE works through its share in
  // batches of apu_batch_size permutations per loaded startup combination.
  const double seeds_per_pe =
      std::ceil(static_cast<double>(seeds) / pes);
  const double batches =
      std::ceil(seeds_per_pe / static_cast<double>(calib_.apu_batch_size));
  const double pe_cycles = seeds_per_pe * cycles +
                           batches * calib_.apu_batch_load_cycles;
  return pe_cycles / spec_.clock_hz;
}

double ApuModel::exhaustive_time_s(int d, hash::HashAlgo hash) const {
  return time_for_seeds_s(static_cast<u64>(comb::exhaustive_search_count(d)),
                          hash);
}

double ApuModel::average_time_s(int d, hash::HashAlgo hash) const {
  return time_for_seeds_s(static_cast<u64>(comb::average_search_count(d)),
                          hash) +
         calib_.apu_exit_overhead_s;
}

}  // namespace rbc::sim
