#include "sim/energy.hpp"

namespace rbc::sim {

namespace {
EnergyReport make_report(double idle_w, double max_w, double util,
                         double seconds) {
  EnergyReport r;
  r.idle_watts = idle_w;
  r.max_watts = max_w;
  r.average_watts = idle_w + util * (max_w - idle_w);
  r.total_joules = r.average_watts * seconds;
  return r;
}
}  // namespace

EnergyReport EnergyModel::gpu_energy(const GpuSpec& spec, hash::HashAlgo hash,
                                     double search_seconds) const {
  const bool sha1 = hash == hash::HashAlgo::kSha1;
  return make_report(spec.idle_watts,
                     sha1 ? spec.max_watts_sha1 : spec.max_watts_sha3,
                     sha1 ? calib_.gpu_util_sha1 : calib_.gpu_util_sha3,
                     search_seconds);
}

EnergyReport EnergyModel::apu_energy(const ApuSpec& spec, hash::HashAlgo hash,
                                     double search_seconds) const {
  const bool sha1 = hash == hash::HashAlgo::kSha1;
  return make_report(spec.idle_watts,
                     sha1 ? spec.max_watts_sha1 : spec.max_watts_sha3,
                     sha1 ? calib_.apu_util_sha1 : calib_.apu_util_sha3,
                     search_seconds);
}

}  // namespace rbc::sim
