#include "sim/probe.hpp"

#include <algorithm>
#include <string>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "hash/batch.hpp"
#include "hash/cpu_features.hpp"
#include "hash/keccak.hpp"
#include "hash/sha1.hpp"

namespace rbc::sim {

namespace {

// A data dependency threaded through the loop keeps the optimizer from
// hoisting or eliding the hash calls.
template <typename HashFn>
ProbeResult run_hash_probe(std::string what, u64 iterations, HashFn&& fn) {
  Xoshiro256 rng(0xbe7c);
  Seed256 seed = Seed256::random(rng);
  WallTimer timer;
  u8 sink = 0;
  for (u64 i = 0; i < iterations; ++i) {
    const auto digest = fn(seed);
    sink ^= digest.bytes[0];
    seed.word(0) += 0x9e3779b97f4a7c15ULL + sink;
  }
  ProbeResult r{std::move(what), iterations, timer.elapsed_s()};
  // Publish the sink so the compiler cannot prove the loop dead.
  if (sink == 0xA5) r.what += " ";
  return r;
}

}  // namespace

ProbeResult probe_hash(hash::HashAlgo algo, u64 iterations) {
  if (algo == hash::HashAlgo::kSha1) {
    return run_hash_probe("SHA-1 seed hash", iterations,
                          [](const Seed256& s) { return hash::sha1_seed(s); });
  }
  return run_hash_probe("SHA-3 seed hash", iterations, [](const Seed256& s) {
    return hash::sha3_256_seed(s);
  });
}

ProbeResult probe_hash_generic(hash::HashAlgo algo, u64 iterations) {
  if (algo == hash::HashAlgo::kSha1) {
    return run_hash_probe("SHA-1 seed hash (generic)", iterations,
                          [](const Seed256& s) {
                            return hash::sha1_seed_generic(s);
                          });
  }
  return run_hash_probe("SHA-3 seed hash (generic)", iterations,
                        [](const Seed256& s) {
                          return hash::sha3_256_seed_generic(s);
                        });
}

namespace {

template <hash::BatchSeedHash Hash>
ProbeResult run_batched_probe(std::string what, u64 iterations) {
  constexpr std::size_t kBlock = Hash::kBatch;
  Xoshiro256 rng(0xbe7c);
  Seed256 block[kBlock];
  typename Hash::digest_type digests[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) block[i] = Seed256::random(rng);
  Hash hasher;
  WallTimer timer;
  u8 sink = 0;
  u64 done = 0;
  while (done < iterations) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<u64>(kBlock, iterations - done));
    hasher.hash_batch(block, n, digests);
    for (std::size_t i = 0; i < n; ++i) {
      sink ^= digests[i].bytes[0];
      block[i].word(0) += 0x9e3779b97f4a7c15ULL + sink;
    }
    done += n;
  }
  ProbeResult r{std::move(what), iterations, timer.elapsed_s()};
  if (sink == 0xA5) r.what += " ";
  return r;
}

}  // namespace

ProbeResult probe_hash_batched(hash::HashAlgo algo, u64 iterations) {
  const std::string level(hash::to_string(hash::active_simd_level()));
  if (algo == hash::HashAlgo::kSha1) {
    return run_batched_probe<hash::Sha1BatchSeedHash>(
        "SHA-1 seed hash (batched, " + level + ")", iterations);
  }
  return run_batched_probe<hash::Sha3BatchSeedHash>(
      "SHA-3 seed hash (batched, " + level + ")", iterations);
}

ProbeResult probe_iterate_and_hash(IterAlgo iter, hash::HashAlgo hash, int k,
                                   u64 max_seeds) {
  Xoshiro256 rng(0x17e7);
  const Seed256 base = Seed256::random(rng);
  u8 sink = 0;
  u64 produced = 0;

  auto consume = [&](Seed256& mask_source, auto& iterator) {
    Seed256 mask = mask_source;
    while (iterator.next(mask)) {
      const Seed256 candidate = base ^ mask;
      if (hash == hash::HashAlgo::kSha1) {
        sink ^= hash::sha1_seed(candidate).bytes[0];
      } else {
        sink ^= hash::sha3_256_seed(candidate).bytes[0];
      }
      ++produced;
    }
  };

  WallTimer timer;
  Seed256 scratch;
  switch (iter) {
    case IterAlgo::kChase382: {
      comb::ChaseSequence seq(k);
      comb::ChaseIterator it(seq.state(), max_seeds);
      consume(scratch, it);
      break;
    }
    case IterAlgo::kAlg515: {
      comb::Algorithm515Iterator it(k, 0, max_seeds,
                                    comb::Alg515Mode::kUnrankEach);
      consume(scratch, it);
      break;
    }
    case IterAlgo::kGosper: {
      comb::GosperIterator it(k, 0, max_seeds);
      consume(scratch, it);
      break;
    }
  }
  ProbeResult r{std::string(to_string(iter)), produced, timer.elapsed_s()};
  if (sink == 0xA5) r.what += " ";
  return r;
}

namespace {

template <hash::BatchSeedHash Hash, typename Iterator>
void consume_batched(const Seed256& base, Iterator& iterator, u8& sink,
                     u64& produced) {
  constexpr std::size_t kBlock = Hash::kBatch;
  Seed256 candidates[kBlock];
  typename Hash::digest_type digests[kBlock];
  const Hash hasher;
  Seed256 mask;
  for (;;) {
    std::size_t n = 0;
    while (n < kBlock && iterator.next(mask)) candidates[n++] = base ^ mask;
    if (n == 0) break;
    hasher.hash_batch(candidates, n, digests);
    for (std::size_t i = 0; i < n; ++i) sink ^= digests[i].bytes[0];
    produced += n;
  }
}

}  // namespace

ProbeResult probe_iterate_and_hash_batched(IterAlgo iter, hash::HashAlgo hash,
                                           int k, u64 max_seeds) {
  Xoshiro256 rng(0x17e7);
  const Seed256 base = Seed256::random(rng);
  u8 sink = 0;
  u64 produced = 0;

  auto consume = [&](auto& iterator) {
    if (hash == hash::HashAlgo::kSha1) {
      consume_batched<hash::Sha1BatchSeedHash>(base, iterator, sink, produced);
    } else {
      consume_batched<hash::Sha3BatchSeedHash>(base, iterator, sink, produced);
    }
  };

  WallTimer timer;
  switch (iter) {
    case IterAlgo::kChase382: {
      comb::ChaseSequence seq(k);
      comb::ChaseIterator it(seq.state(), max_seeds);
      consume(it);
      break;
    }
    case IterAlgo::kAlg515: {
      comb::Algorithm515Iterator it(k, 0, max_seeds,
                                    comb::Alg515Mode::kUnrankEach);
      consume(it);
      break;
    }
    case IterAlgo::kGosper: {
      comb::GosperIterator it(k, 0, max_seeds);
      consume(it);
      break;
    }
  }
  ProbeResult r{std::string(to_string(iter)) + " (batched)", produced,
                timer.elapsed_s()};
  if (sink == 0xA5) r.what += " ";
  return r;
}

ProbeResult probe_keygen(crypto::KeygenAlgo algo, u64 iterations) {
  Xoshiro256 rng(0x5eed);
  Seed256 seed = Seed256::random(rng);
  WallTimer timer;
  u8 sink = 0;

  auto loop = [&](const auto& keygen) {
    for (u64 i = 0; i < iterations; ++i) {
      const Bytes pk = keygen(seed);
      sink ^= pk[0];
      seed.word(0) += 1 + sink;
    }
  };

  switch (algo) {
    case crypto::KeygenAlgo::kAes128:
      loop(crypto::Aes128Keygen{});
      break;
    case crypto::KeygenAlgo::kSaberLike:
      loop(crypto::SaberLikeKeygen{});
      break;
    case crypto::KeygenAlgo::kDilithiumLike:
      loop(crypto::DilithiumLikeKeygen{});
      break;
    case crypto::KeygenAlgo::kKyberLike:
      loop(crypto::KyberLikeKeygen{});
      break;
    case crypto::KeygenAlgo::kWots:
      loop(crypto::WotsKeygen{});
      break;
  }
  ProbeResult r{std::string(crypto::to_string(algo)) + " keygen", iterations,
                timer.elapsed_s()};
  if (sink == 0xA5) r.what += " ";
  return r;
}

}  // namespace rbc::sim
