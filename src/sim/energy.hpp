// Energy model for the GPU/APU comparison (Table 6).
//
// The paper reports total joules including idle draw; the model is
//   P_avg = P_idle + u * (P_max - P_idle),     E = P_avg * t_search
// with the utilisation factor u calibrated per (device, hash) from Table 6.
// The paper's qualitative findings fall out: the APU needs ~39% of the GPU's
// energy on SHA-1 (similar runtimes, 3x lower power), while on SHA-3 the
// GPU's 3x runtime advantage cancels its power disadvantage.
#pragma once

#include "common/types.hpp"
#include "sim/calibration.hpp"
#include "sim/device.hpp"

namespace rbc::sim {

struct EnergyReport {
  double total_joules = 0.0;
  double average_watts = 0.0;
  double max_watts = 0.0;
  double idle_watts = 0.0;
};

class EnergyModel {
 public:
  explicit EnergyModel(Calibration calib = default_calibration())
      : calib_(calib) {}

  EnergyReport gpu_energy(const GpuSpec& spec, hash::HashAlgo hash,
                          double search_seconds) const;
  EnergyReport apu_energy(const ApuSpec& spec, hash::HashAlgo hash,
                          double search_seconds) const;

 private:
  Calibration calib_;
};

}  // namespace rbc::sim
