// Multi-GPU scaling model (§3.2 early-exit flag in unified memory; §4.8 /
// Fig. 4 results on up to 3xA100).
//
// Each Hamming shell is split evenly across g devices; a kernel per shell is
// launched on every device and the host joins them. Two overheads grow with
// g, both calibrated from Fig. 4's SHA-3 anchors:
//   * per-extra-GPU coordination (launch fan-out, partition upload, join),
//   * unified-memory early-exit flag traffic, only on early-exit searches —
//     which is why the paper's early-exit curves scale worse (2.66x vs 2.87x
//     on 3 GPUs for SHA-3).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/gpu_model.hpp"

namespace rbc::sim {

struct MultiGpuPoint {
  int gpus = 1;
  double time_s = 0.0;
  double speedup = 1.0;
  double parallel_efficiency = 1.0;
};

class MultiGpuModel {
 public:
  explicit MultiGpuModel(GpuModel gpu = GpuModel{}) : gpu_(std::move(gpu)) {}

  /// Time to search `seeds` candidates on g GPUs (static even split).
  double time_for_seeds_s(u64 seeds, int gpus, hash::HashAlgo hash,
                          bool early_exit,
                          IterAlgo iter = IterAlgo::kChase382) const;

  /// Same search with the PR 4 tile scheduler spanning the devices: each GPU
  /// drains `gpu_tile_seeds`-sized tiles from a shared queue. The slowest
  /// device carries at most one extra tile instead of a full static slice,
  /// coordination shrinks by `multi_gpu_dynamic_coord_factor`, and every
  /// tile claim costs `multi_gpu_tile_claim_s` on the queue.
  double time_for_seeds_dynamic_s(u64 seeds, int gpus, hash::HashAlgo hash,
                                  bool early_exit,
                                  IterAlgo iter = IterAlgo::kChase382) const;

  /// Fig. 4 curve: speedups for 1..max_gpus for a d-ball search.
  std::vector<MultiGpuPoint> scaling_curve(int d, hash::HashAlgo hash,
                                           bool early_exit, int max_gpus,
                                           bool dynamic_tiling = false) const;

  const GpuModel& gpu() const noexcept { return gpu_; }

 private:
  GpuModel gpu_;
};

}  // namespace rbc::sim
