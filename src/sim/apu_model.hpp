// Analytic timing model of SALTED-APU on the GSI Gemini (§3.3).
//
// The APU is a compute-in-memory array: 2M bit processors (BPs) ganged into
// software-defined processing elements. The PE footprint depends on the
// algorithm's state (§3.3: 2 BP columns per PE for SHA-1, 5 for SHA-3), so
// SHA-1 runs 65k PEs and SHA-3 only ~26k — which is exactly why the APU
// matches the GPU on SHA-1 but loses 3x on SHA-3 (§4.6). Work arrives in
// batches: each loaded startup combination seeds 256 permutations, and the
// early-exit flag in associative memory is polled once per batch.
#pragma once

#include "common/types.hpp"
#include "sim/calibration.hpp"
#include "sim/device.hpp"

namespace rbc::sim {

class ApuModel {
 public:
  explicit ApuModel(ApuSpec spec = gemini_apu(),
                    Calibration calib = default_calibration())
      : spec_(std::move(spec)), calib_(calib) {}

  const ApuSpec& spec() const noexcept { return spec_; }
  const Calibration& calibration() const noexcept { return calib_; }

  /// Concurrent PEs available for the given hash (§3.3 arithmetic).
  int pe_count(hash::HashAlgo hash) const noexcept {
    return spec_.pe_count(hash == hash::HashAlgo::kSha1
                              ? spec_.bps_per_pe_sha1
                              : spec_.bps_per_pe_sha3);
  }

  /// Search-only time for `seeds` candidates.
  double time_for_seeds_s(u64 seeds, hash::HashAlgo hash) const;

  /// Exhaustive/average Table 5 rows.
  double exhaustive_time_s(int d, hash::HashAlgo hash) const;
  double average_time_s(int d, hash::HashAlgo hash) const;

 private:
  ApuSpec spec_;
  Calibration calib_;
};

}  // namespace rbc::sim
