// Security planner — the §5 closing observation made operational:
//
//   "since SALTED-GPU is able to authenticate a client well under the
//    T = 20 s timing threshold, we can purposefully inject noise into the
//    client's PUF output, thereby increasing the Hamming distance that
//    needs to be searched by the server, further increasing the level of
//    security afforded by RBC."
//
// Given a platform's cost model, the authentication threshold T and the
// communication budget, the planner picks the largest Hamming distance whose
// WORST-CASE (exhaustive, Eq. 1) search still fits inside the budget — so an
// authentication can never time out because of the injected noise — and
// reports the resulting search-space blow-up.
#pragma once

#include <cmath>
#include <functional>

#include "combinatorics/binomial.hpp"
#include "common/check.hpp"
#include "sim/calibration.hpp"

namespace rbc::sim {

struct SecurityPlan {
  /// Largest distance whose exhaustive search fits the budget (0 if even
  /// d = 1 does not fit).
  int max_distance = 0;
  /// Exhaustive search time at max_distance on the planned platform.
  double exhaustive_time_s = 0.0;
  /// Seeds the server may need to visit at max_distance (Eq. 1).
  u128 search_space = 1;
  /// log2 of the search-space growth versus the unplanned d = 1 baseline.
  double headroom_bits = 0.0;
};

/// `exhaustive_time(d)` must return the platform's modeled worst-case search
/// time for distance d (e.g. bind GpuModel::exhaustive_time_s). The search
/// budget is T minus the communication allowance.
inline SecurityPlan plan_injected_noise(
    const std::function<double(int)>& exhaustive_time, double threshold_s,
    double comm_time_s, int max_considered = comb::kMaxK) {
  RBC_CHECK(threshold_s > 0.0 && comm_time_s >= 0.0 &&
            comm_time_s < threshold_s);
  const double budget = threshold_s - comm_time_s;
  SecurityPlan plan;
  for (int d = 1; d <= max_considered; ++d) {
    const double t = exhaustive_time(d);
    if (t > budget) break;
    plan.max_distance = d;
    plan.exhaustive_time_s = t;
  }
  if (plan.max_distance >= 1) {
    plan.search_space = comb::exhaustive_search_count(plan.max_distance);
    plan.headroom_bits =
        std::log2(static_cast<double>(plan.search_space)) -
        std::log2(static_cast<double>(comb::exhaustive_search_count(1)));
  }
  return plan;
}

}  // namespace rbc::sim
