// Distributed-memory CPU cluster model — the §5 future-work direction
// "scale the multi-core CPU algorithm across multiple compute nodes in a
// cluster", and the Philabaum et al. [36] MPI baseline the related-work
// section cites (404x speedup on 512 CPU cores).
//
// The model extends the shared-memory CpuModel with a per-seed
// serial-equivalent MPI overhead (early-exit broadcast traffic + static
// partition skew). The constant is calibrated from [36]'s single reported
// figure: with the AES per-candidate cost H = 904 cycles and the
// shared-memory contention c = 0.3 cycles/seed, speedup(512 cores) = 404:
//   (H + c) / (H/512 + c + ov) = 404  =>  ov = 0.173 cycles/seed.
#pragma once

#include "combinatorics/binomial.hpp"
#include "common/check.hpp"
#include "sim/apu_model.hpp"
#include "sim/cpu_model.hpp"

namespace rbc::sim {

class ClusterModel {
 public:
  explicit ClusterModel(CpuSpec node_spec = epyc64(),
                        Calibration calib = default_calibration(),
                        double mpi_overhead_cycles = 0.173)
      : node_spec_(std::move(node_spec)),
        calib_(calib),
        mpi_overhead_cycles_(mpi_overhead_cycles) {}

  int cores(int nodes) const noexcept { return nodes * node_spec_.cores; }

  /// Search time for `seeds` candidates on `nodes` full nodes.
  double time_for_seeds_s(u64 seeds, hash::HashAlgo hash, int nodes) const {
    RBC_CHECK(nodes >= 1);
    const double per_seed =
        (calib_.cpu_cycles(hash) / cores(nodes) + calib_.cpu_contention_cycles +
         (nodes > 1 ? mpi_overhead_cycles_ : 0.0)) /
        node_spec_.clock_hz;
    return static_cast<double>(seeds) * per_seed;
  }

  double exhaustive_time_s(int d, hash::HashAlgo hash, int nodes) const {
    return time_for_seeds_s(
        static_cast<u64>(comb::exhaustive_search_count(d)), hash, nodes);
  }

  /// Strong-scaling speedup versus a single core.
  double speedup_vs_one_core(hash::HashAlgo hash, int nodes) const {
    const double t1 =
        (calib_.cpu_cycles(hash) + calib_.cpu_contention_cycles) /
        node_spec_.clock_hz;
    const double tn =
        (calib_.cpu_cycles(hash) / cores(nodes) +
         calib_.cpu_contention_cycles +
         (nodes > 1 ? mpi_overhead_cycles_ : 0.0)) /
        node_spec_.clock_hz;
    return t1 / tn;
  }

  /// The [36] calibration scenario: AES-based RBC on 512 cores.
  double philabaum_speedup() const {
    const double h = calib_.cpu_cycles_keygen_aes;
    const double t1 = h + calib_.cpu_contention_cycles;
    const double t512 =
        h / 512.0 + calib_.cpu_contention_cycles + mpi_overhead_cycles_;
    return t1 / t512;
  }

 private:
  CpuSpec node_spec_;
  Calibration calib_;
  double mpi_overhead_cycles_;
};

/// Multi-APU scaling within one node — the §5 observation that "8xAPU can be
/// installed within the 2U form factor". The APU has no unified memory, so
/// early-exit flags propagate over PCIe; the coordination constants follow
/// the multi-GPU model's, scaled by the APU's lower per-device throughput.
class MultiApuModel {
 public:
  explicit MultiApuModel(ApuModel apu = ApuModel{},
                         double coord_s_per_apu = 0.010,
                         double flag_s_per_apu = 0.002)
      : apu_(std::move(apu)),
        coord_s_per_apu_(coord_s_per_apu),
        flag_s_per_apu_(flag_s_per_apu) {}

  double time_for_seeds_s(u64 seeds, int apus, hash::HashAlgo hash,
                          bool early_exit) const {
    RBC_CHECK(apus >= 1);
    const u64 share =
        (seeds + static_cast<u64>(apus) - 1) / static_cast<u64>(apus);
    double t = apu_.time_for_seeds_s(share, hash);
    t += coord_s_per_apu_ * (apus - 1);
    if (early_exit) {
      t += flag_s_per_apu_ * (apus - 1);
      t += apu_.calibration().apu_exit_overhead_s;
    }
    return t;
  }

  double speedup(int d, int apus, hash::HashAlgo hash, bool early_exit) const {
    const u64 seeds = static_cast<u64>(
        early_exit ? comb::average_search_count(d)
                   : comb::exhaustive_search_count(d));
    return time_for_seeds_s(seeds, 1, hash, early_exit) /
           time_for_seeds_s(seeds, apus, hash, early_exit);
  }

  const ApuModel& apu() const noexcept { return apu_; }

 private:
  ApuModel apu_;
  double coord_s_per_apu_;
  double flag_s_per_apu_;
};

}  // namespace rbc::sim
