#include "sim/cpu_model.hpp"

#include "combinatorics/binomial.hpp"
#include "common/check.hpp"

namespace rbc::sim {

double CpuModel::per_seed_seconds(double work_cycles, int threads) const {
  RBC_CHECK(threads >= 1);
  return (work_cycles / threads + calib_.cpu_contention_cycles) /
         spec_.clock_hz;
}

double CpuModel::time_for_seeds_s(u64 seeds, hash::HashAlgo hash,
                                  int threads) const {
  return static_cast<double>(seeds) *
         per_seed_seconds(calib_.cpu_cycles(hash), threads);
}

double CpuModel::exhaustive_time_s(int d, hash::HashAlgo hash,
                                   int threads) const {
  return time_for_seeds_s(static_cast<u64>(comb::exhaustive_search_count(d)),
                          hash, threads);
}

double CpuModel::average_time_s(int d, hash::HashAlgo hash,
                                int threads) const {
  return time_for_seeds_s(static_cast<u64>(comb::average_search_count(d)),
                          hash, threads) +
         calib_.cpu_exit_overhead_s;
}

double CpuModel::batched_time_for_seeds_s(u64 seeds, hash::HashAlgo hash,
                                          int threads) const {
  return static_cast<double>(seeds) *
         per_seed_seconds(calib_.cpu_batch_cycles(hash), threads);
}

double CpuModel::batched_exhaustive_time_s(int d, hash::HashAlgo hash,
                                           int threads) const {
  return batched_time_for_seeds_s(
      static_cast<u64>(comb::exhaustive_search_count(d)), hash, threads);
}

double CpuModel::batched_pipeline_speedup(hash::HashAlgo hash,
                                          int threads) const {
  return per_seed_seconds(calib_.cpu_cycles(hash), threads) /
         per_seed_seconds(calib_.cpu_batch_cycles(hash), threads);
}

double CpuModel::speedup(hash::HashAlgo hash, int threads) const {
  return per_seed_seconds(calib_.cpu_cycles(hash), 1) /
         per_seed_seconds(calib_.cpu_cycles(hash), threads);
}

double CpuModel::legacy_time_for_seeds_s(u64 seeds, crypto::KeygenAlgo algo,
                                         int threads) const {
  return static_cast<double>(seeds) *
         per_seed_seconds(calib_.cpu_keygen_cycles(algo), threads);
}

double GpuLegacyModel::time_for_seeds_s(u64 seeds,
                                        crypto::KeygenAlgo algo) const {
  return static_cast<double>(seeds) * calib_.gpu_keygen_cycles(algo) /
         spec_.total_cycles_per_second();
}

}  // namespace rbc::sim
