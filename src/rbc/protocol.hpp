// The RBC-SALTED protocol roles and the Fig. 1 message flow.
//
//   Client  — holds the physical PUF; on challenge, reads the addressed
//             word, applies the TAPKI helper mask, hashes the bit stream
//             and submits the digest M1.
//   CertificateAuthority (CA) — holds the encrypted enrollment database and
//             a SearchBackend; recovers the client's seed by RBC search,
//             salts it, generates the public key, and updates the RA.
//   RegistrationAuthority (RA) — the public-key registry updated on each
//             successful authentication (step 9).
//
// run_authentication() drives one full exchange over a simulated channel and
// returns a SessionReport with the Table 5 decomposition (comm time, search
// time, total).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "crypto/pqc_keygen.hpp"
#include "crypto/salt.hpp"
#include "net/transport.hpp"
#include "puf/puf.hpp"
#include "rbc/engines.hpp"
#include "rbc/enrollment_db.hpp"

namespace rbc {

/// Client-side policy knobs.
struct ClientConfig {
  u64 device_id = 0;
  hash::HashAlgo hash_algo = hash::HashAlgo::kSha3_256;
  crypto::KeygenAlgo keygen_algo = crypto::KeygenAlgo::kDilithiumLike;
  /// §4.1 noise policy: if >= 0, the submitted bit stream is adjusted to sit
  /// at exactly this Hamming distance from the (masked) enrolled word.
  /// Negative disables injection and submits the raw masked reading;
  /// kFollowChallenge defers to the CA's requested_noise instruction.
  static constexpr int kFollowChallenge = -2;
  int injected_distance = 5;
  /// Odd number of reads the client majority-votes to estimate its own
  /// stable word as the noise-injection reference.
  int majority_reads = 7;
  /// Seconds charged for reading the PUF over USB (part of the comm budget).
  double puf_read_time_s = 0.30;
};

class Client {
 public:
  Client(ClientConfig cfg, const puf::SramPufModel* device, u64 rng_seed)
      : cfg_(cfg), device_(device), rng_(rng_seed) {
    RBC_CHECK(device != nullptr);
  }

  const ClientConfig& config() const noexcept { return cfg_; }

  /// Handles one challenge: reads the PUF, applies the helper mask, injects
  /// noise per policy, and returns the digest to submit. The seed used is
  /// retained so tests can verify end-to-end key agreement.
  net::DigestSubmission respond(const net::Challenge& challenge);

  /// The bit stream the client hashed in the last respond() call.
  const Seed256& last_seed() const { return last_seed_; }

  /// The client's own view of the session public key: keygen(salt(seed)).
  Bytes derive_public_key(const crypto::SaltPolicy& salt) const {
    return crypto::generate_public_key(salt.apply(last_seed_),
                                       cfg_.keygen_algo);
  }

 private:
  ClientConfig cfg_;
  const puf::SramPufModel* device_;
  Xoshiro256 rng_;
  Seed256 last_seed_;
};

/// The RA registry. RBC's keys are ONE-TIME session keys (§1: "even if an
/// attacker was able to recover a client's private key, it would become
/// invalid after a short time"), so each entry carries a logical-clock
/// expiry and a rotation counter. Time is logical (advance_time) to keep
/// trials reproducible.
///
/// The registry is updated concurrently by every in-flight session (step 9
/// runs on the server's driver threads), so all access is serialized
/// internally and reads return snapshots by value — a pointer into the map
/// would dangle under a concurrent update of the same device.
class RegistrationAuthority {
 public:
  struct Entry {
    Bytes public_key;
    double registered_at = 0.0;
    double expires_at = 0.0;
    u64 rotation = 0;  // how many times this device's key has been replaced
  };

  /// Lifetime of a session key; default is the paper's "short time" at the
  /// scale of one authentication threshold.
  void set_key_ttl(double seconds) {
    RBC_CHECK(seconds > 0.0);
    std::lock_guard lock(mutex_);
    ttl_s_ = seconds;
  }
  double key_ttl() const {
    std::lock_guard lock(mutex_);
    return ttl_s_;
  }

  void advance_time(double seconds) {
    RBC_CHECK(seconds >= 0.0);
    std::lock_guard lock(mutex_);
    now_s_ += seconds;
  }
  double now() const {
    std::lock_guard lock(mutex_);
    return now_s_;
  }

  void update(u64 device_id, Bytes public_key) {
    std::lock_guard lock(mutex_);
    auto& entry = registry_[device_id];
    entry.rotation += entry.public_key.empty() ? 0u : 1u;
    entry.public_key = std::move(public_key);
    entry.registered_at = now_s_;
    entry.expires_at = now_s_ + ttl_s_;
  }

  /// The device's current key, or nullopt when absent, revoked or expired.
  std::optional<Bytes> lookup(u64 device_id) const {
    std::lock_guard lock(mutex_);
    auto it = registry_.find(device_id);
    if (it == registry_.end()) return std::nullopt;
    if (now_s_ >= it->second.expires_at) return std::nullopt;
    return it->second.public_key;
  }

  /// Full entry including expired ones (audit access).
  std::optional<Entry> entry(u64 device_id) const {
    std::lock_guard lock(mutex_);
    auto it = registry_.find(device_id);
    if (it == registry_.end()) return std::nullopt;
    return it->second;
  }

  /// Immediate invalidation; returns false when the device has no entry.
  bool revoke(u64 device_id) {
    std::lock_guard lock(mutex_);
    auto it = registry_.find(device_id);
    if (it == registry_.end()) return false;
    it->second.expires_at = now_s_;
    return true;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return registry_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<u64, Entry> registry_;
  double ttl_s_ = 20.0;
  double now_s_ = 0.0;
};

struct CaConfig {
  /// Authentication threshold T (paper: 20 s).
  double time_threshold_s = 20.0;
  /// Maximum Hamming distance the search will attempt.
  int max_distance = 3;
  bool tapki_enabled = true;
  crypto::SaltPolicy salt{};
  u64 challenge_rng_seed = 0xCA5eed;
  /// §5 security extension: when true, every Challenge instructs the client
  /// to inject noise up to the CA's own search budget (max_distance) — the
  /// server has already sized that budget to fit T, so the extra noise can
  /// never cause a timeout while maximizing per-session seed freshness.
  bool request_noise_injection = false;
};

class CertificateAuthority {
 public:
  CertificateAuthority(CaConfig cfg, EnrollmentDatabase db,
                       std::unique_ptr<SearchBackend> backend,
                       RegistrationAuthority* ra)
      : cfg_(cfg),
        db_(std::move(db)),
        backend_(std::move(backend)),
        ra_(ra),
        rng_(cfg.challenge_rng_seed) {
    RBC_CHECK(backend_ != nullptr && ra_ != nullptr);
  }

  const CaConfig& config() const noexcept { return cfg_; }
  EnrollmentDatabase& database() noexcept { return db_; }

  /// Step 2: picks a random enrolled address for the device. Thread-safe:
  /// the challenge RNG is the CA's only mutable per-call state and is
  /// serialized internally.
  net::Challenge issue_challenge(const net::HandshakeRequest& handshake);

  /// Steps 4-9: runs the RBC search for the submitted digest and, on
  /// success, salts the seed, generates the public key and updates the RA.
  /// Re-entrant: any number of sessions may run concurrently against one
  /// CA — the database is read-only here, the backend multiplexes the
  /// shared worker group, and the RA serializes its own updates. `session`,
  /// when non-null, carries the session deadline into the search (queue and
  /// communication time already spent count against the threshold).
  net::AuthResult process_digest(const net::HandshakeRequest& handshake,
                                 const net::Challenge& challenge,
                                 const net::DigestSubmission& submission,
                                 EngineReport* report_out = nullptr,
                                 par::SearchContext* session = nullptr);

 private:
  CaConfig cfg_;
  EnrollmentDatabase db_;
  std::unique_ptr<SearchBackend> backend_;
  RegistrationAuthority* ra_;
  std::mutex rng_mutex_;
  Xoshiro256 rng_;
};

/// One full authentication session over a simulated channel.
struct SessionReport {
  net::AuthResult result;
  EngineReport engine;
  double comm_time_s = 0.0;    // simulated network + PUF-read time
  double total_time_s = 0.0;   // comm + host search time
  /// Public key registered at the RA (empty when authentication failed).
  Bytes registered_public_key;
};

/// `session`, when non-null, is the session's admission-time context: its
/// deadline governs the CA search and its cancellation aborts it.
SessionReport run_authentication(Client& client, CertificateAuthority& ca,
                                 RegistrationAuthority& ra,
                                 net::LatencyModel latency =
                                     net::LatencyModel(0.15),
                                 par::SearchContext* session = nullptr);

}  // namespace rbc
