// The RBC-SALTED protocol roles and the Fig. 1 message flow.
//
//   Client  — holds the physical PUF; on challenge, reads the addressed
//             word, applies the TAPKI helper mask, hashes the bit stream
//             and submits the digest M1.
//   CertificateAuthority (CA) — holds the encrypted enrollment database and
//             a SearchBackend; recovers the client's seed by RBC search,
//             salts it, generates the public key, and updates the RA.
//   RegistrationAuthority (RA) — the public-key registry updated on each
//             successful authentication (step 9).
//
// run_authentication() drives one full exchange over a simulated channel and
// returns a SessionReport with the Table 5 decomposition (comm time, search
// time, total).
//
// SHARDING: all per-device authority state (the RA registry rows, the CA's
// challenge RNG, the enrollment database records) is partitioned into
// kAuthorityStripes lock stripes keyed by stripe_of(device_id) — the same
// hash the serving layer routes sessions with, so a session running on
// shard S only ever locks stripes owned by S. The *_view() accessors hand
// out shard-scoped handles that RBC_CHECK this confinement on every call: a
// misrouted session fails loudly instead of silently contending on another
// shard's stripes. Compute stays fully shared — every shard's searches
// multiplex the one process-wide WorkerGroup.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/shard_hash.hpp"
#include "crypto/pqc_keygen.hpp"
#include "crypto/salt.hpp"
#include "net/transport.hpp"
#include "puf/puf.hpp"
#include "rbc/engines.hpp"
#include "rbc/enrollment_db.hpp"

namespace rbc {

/// Client-side policy knobs.
struct ClientConfig {
  u64 device_id = 0;
  hash::HashAlgo hash_algo = hash::HashAlgo::kSha3_256;
  crypto::KeygenAlgo keygen_algo = crypto::KeygenAlgo::kDilithiumLike;
  /// §4.1 noise policy: if >= 0, the submitted bit stream is adjusted to sit
  /// at exactly this Hamming distance from the (masked) enrolled word.
  /// Negative disables injection and submits the raw masked reading;
  /// kFollowChallenge defers to the CA's requested_noise instruction.
  static constexpr int kFollowChallenge = -2;
  int injected_distance = 5;
  /// Odd number of reads the client majority-votes to estimate its own
  /// stable word as the noise-injection reference.
  int majority_reads = 7;
  /// Seconds charged for reading the PUF over USB (part of the comm budget).
  double puf_read_time_s = 0.30;
};

class Client {
 public:
  Client(ClientConfig cfg, const puf::SramPufModel* device, u64 rng_seed)
      : cfg_(cfg), device_(device), rng_(rng_seed) {
    RBC_CHECK(device != nullptr);
  }

  const ClientConfig& config() const noexcept { return cfg_; }

  /// Handles one challenge: reads the PUF, applies the helper mask, injects
  /// noise per policy, and returns the digest to submit. The seed used is
  /// retained so tests can verify end-to-end key agreement.
  net::DigestSubmission respond(const net::Challenge& challenge);

  /// The bit stream the client hashed in the last respond() call.
  const Seed256& last_seed() const { return last_seed_; }

  /// The client's own view of the session public key: keygen(salt(seed)).
  Bytes derive_public_key(const crypto::SaltPolicy& salt) const {
    return crypto::generate_public_key(salt.apply(last_seed_),
                                       cfg_.keygen_algo);
  }

 private:
  ClientConfig cfg_;
  const puf::SramPufModel* device_;
  Xoshiro256 rng_;
  Seed256 last_seed_;
};

/// The RA registry. RBC's keys are ONE-TIME session keys (§1: "even if an
/// attacker was able to recover a client's private key, it would become
/// invalid after a short time"), so each entry carries a logical-clock
/// expiry and a rotation counter. Time is logical (advance_time) to keep
/// trials reproducible.
///
/// The registry is updated concurrently by every in-flight session (step 9
/// runs on the server's driver threads). Rows are partitioned into
/// kAuthorityStripes lock stripes by stripe_of(device_id), so sessions on
/// different serving shards never contend on one registry mutex; reads
/// return snapshots by value — a pointer into a stripe's map would dangle
/// under a concurrent update of the same device.
class RegistrationAuthority {
 public:
  struct Entry {
    Bytes public_key;
    double registered_at = 0.0;
    double expires_at = 0.0;
    u64 rotation = 0;  // how many times this device's key has been replaced
  };

  RegistrationAuthority()
      : stripes_(std::make_unique<std::array<Stripe, kAuthorityStripes>>()) {}

  /// Lifetime of a session key; default is the paper's "short time" at the
  /// scale of one authentication threshold.
  void set_key_ttl(double seconds) {
    RBC_CHECK(seconds > 0.0);
    std::lock_guard lock(time_mutex_);
    ttl_s_ = seconds;
  }
  double key_ttl() const {
    std::lock_guard lock(time_mutex_);
    return ttl_s_;
  }

  void advance_time(double seconds) {
    RBC_CHECK(seconds >= 0.0);
    std::lock_guard lock(time_mutex_);
    now_s_ += seconds;
  }
  double now() const {
    std::lock_guard lock(time_mutex_);
    return now_s_;
  }

  void update(u64 device_id, Bytes public_key) {
    double now, ttl;
    {
      std::lock_guard lock(time_mutex_);
      now = now_s_;
      ttl = ttl_s_;
    }
    Stripe& stripe = stripe_for(device_id);
    std::lock_guard lock(stripe.mutex);
    auto& entry = stripe.entries[device_id];
    entry.rotation += entry.public_key.empty() ? 0u : 1u;
    entry.public_key = std::move(public_key);
    entry.registered_at = now;
    entry.expires_at = now + ttl;
  }

  /// The device's current key, or nullopt when absent, revoked or expired.
  std::optional<Bytes> lookup(u64 device_id) const {
    const double now = this->now();
    Stripe& stripe = stripe_for(device_id);
    std::lock_guard lock(stripe.mutex);
    auto it = stripe.entries.find(device_id);
    if (it == stripe.entries.end()) return std::nullopt;
    if (now >= it->second.expires_at) return std::nullopt;
    return it->second.public_key;
  }

  /// Full entry including expired ones (audit access).
  std::optional<Entry> entry(u64 device_id) const {
    Stripe& stripe = stripe_for(device_id);
    std::lock_guard lock(stripe.mutex);
    auto it = stripe.entries.find(device_id);
    if (it == stripe.entries.end()) return std::nullopt;
    return it->second;
  }

  /// Immediate invalidation; returns false when the device has no entry.
  bool revoke(u64 device_id) {
    const double now = this->now();
    Stripe& stripe = stripe_for(device_id);
    std::lock_guard lock(stripe.mutex);
    auto it = stripe.entries.find(device_id);
    if (it == stripe.entries.end()) return false;
    it->second.expires_at = now;
    return true;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : *stripes_) {
      std::lock_guard lock(stripe.mutex);
      total += stripe.entries.size();
    }
    return total;
  }

  /// Rows in one stripe (shard-confinement and balance diagnostics).
  std::size_t stripe_size(u32 stripe_index) const {
    RBC_CHECK(stripe_index < kAuthorityStripes);
    const Stripe& stripe = (*stripes_)[stripe_index];
    std::lock_guard lock(stripe.mutex);
    return stripe.entries.size();
  }

  /// Shard-scoped handle: every call RBC_CHECKs that the device routes to
  /// this serving shard, so a misrouted session fails loudly instead of
  /// touching another shard's stripes.
  class ShardView {
   public:
    void update(u64 device_id, Bytes public_key) const {
      check_owned(device_id);
      ra_->update(device_id, std::move(public_key));
    }
    std::optional<Bytes> lookup(u64 device_id) const {
      check_owned(device_id);
      return ra_->lookup(device_id);
    }
    std::optional<Entry> entry(u64 device_id) const {
      check_owned(device_id);
      return ra_->entry(device_id);
    }
    u32 shard() const noexcept { return shard_; }

   private:
    friend class RegistrationAuthority;
    ShardView(RegistrationAuthority* ra, u32 shard, u32 num_shards)
        : ra_(ra), shard_(shard), num_shards_(num_shards) {
      RBC_CHECK(ra != nullptr && shard < num_shards);
    }
    void check_owned(u64 device_id) const {
      RBC_CHECK_MSG(route_shard(device_id, num_shards_) == shard_,
                    "session routed to the wrong RA shard");
    }
    RegistrationAuthority* ra_;
    u32 shard_;
    u32 num_shards_;
  };

  ShardView shard_view(u32 shard, u32 num_shards) {
    return ShardView(this, shard, num_shards);
  }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::map<u64, Entry> entries;
  };

  Stripe& stripe_for(u64 device_id) const {
    return (*stripes_)[stripe_of(device_id)];
  }

  mutable std::mutex time_mutex_;  // guards the logical clock and TTL only
  double ttl_s_ = 20.0;
  double now_s_ = 0.0;
  std::unique_ptr<std::array<Stripe, kAuthorityStripes>> stripes_;
};

struct CaConfig {
  /// Authentication threshold T (paper: 20 s).
  double time_threshold_s = 20.0;
  /// Maximum Hamming distance the search will attempt.
  int max_distance = 3;
  bool tapki_enabled = true;
  crypto::SaltPolicy salt{};
  u64 challenge_rng_seed = 0xCA5eed;
  /// §5 security extension: when true, every Challenge instructs the client
  /// to inject noise up to the CA's own search budget (max_distance) — the
  /// server has already sized that budget to fit T, so the extra noise can
  /// never cause a timeout while maximizing per-session seed freshness.
  bool request_noise_injection = false;
  /// Within-shell candidate order for the RBC search. kReliability uses the
  /// enrollment record's per-address reliability profile (maximum-likelihood-
  /// first); records without profiles fall back to canonical per session.
  SearchOrder search_order = SearchOrder::kCanonical;
};

class CertificateAuthority {
 public:
  CertificateAuthority(CaConfig cfg, EnrollmentDatabase db,
                       std::unique_ptr<SearchBackend> backend,
                       RegistrationAuthority* ra)
      : cfg_(cfg),
        db_(std::move(db)),
        backend_(std::move(backend)),
        ra_(ra),
        rng_stripes_(
            std::make_unique<std::array<RngStripe, kAuthorityStripes>>()) {
    RBC_CHECK(backend_ != nullptr && ra_ != nullptr);
    // One challenge RNG per stripe, each on an independent SplitMix64-
    // derived stream: sessions on different shards draw challenges without
    // sharing a generator (the former single rng_mutex_ serialized every
    // issue_challenge in the process).
    for (u32 s = 0; s < kAuthorityStripes; ++s) {
      (*rng_stripes_)[s].rng =
          Xoshiro256(mix_device_id(cfg.challenge_rng_seed + s));
    }
  }

  const CaConfig& config() const noexcept { return cfg_; }
  EnrollmentDatabase& database() noexcept { return db_; }

  /// Step 2: picks a random enrolled address for the device. Thread-safe:
  /// the challenge RNG is striped by device, so only sessions whose devices
  /// share a stripe serialize here.
  net::Challenge issue_challenge(const net::HandshakeRequest& handshake);

  /// Steps 4-9: runs the RBC search for the submitted digest and, on
  /// success, salts the seed, generates the public key and updates the RA.
  /// Re-entrant: any number of sessions may run concurrently against one
  /// CA — the database and challenge RNG are striped by device, the backend
  /// multiplexes the shared worker group, and the RA serializes per stripe.
  /// `session`, when non-null, carries the session deadline into the search
  /// (queue and communication time already spent count against the
  /// threshold). `offload`, when non-null, is consulted before the backend:
  /// a serving shard passes its FusionEngine here so small searches join the
  /// shared cross-session hash batches; a decline falls through to the
  /// backend unchanged.
  /// `search_order`, when set, overrides the configured search order for
  /// this session (the serving layer threads ServerConfig::search_order
  /// through here without mutating the shared CaConfig).
  net::AuthResult process_digest(const net::HandshakeRequest& handshake,
                                 const net::Challenge& challenge,
                                 const net::DigestSubmission& submission,
                                 EngineReport* report_out = nullptr,
                                 par::SearchContext* session = nullptr,
                                 SearchOffload* offload = nullptr,
                                 std::optional<SearchOrder> search_order =
                                     std::nullopt);

  /// Shard-scoped handle mirroring RegistrationAuthority::ShardView: the
  /// serving shard drives its sessions through this so any cross-shard
  /// device leakage trips a check instead of a lock convoy.
  class ShardView {
   public:
    net::Challenge issue_challenge(const net::HandshakeRequest& handshake) {
      check_owned(handshake.device_id);
      return ca_->issue_challenge(handshake);
    }
    net::AuthResult process_digest(const net::HandshakeRequest& handshake,
                                   const net::Challenge& challenge,
                                   const net::DigestSubmission& submission,
                                   EngineReport* report_out = nullptr,
                                   par::SearchContext* session = nullptr,
                                   SearchOffload* offload = nullptr,
                                   std::optional<SearchOrder> search_order =
                                       std::nullopt) {
      check_owned(handshake.device_id);
      return ca_->process_digest(handshake, challenge, submission, report_out,
                                 session, offload, search_order);
    }
    const CaConfig& config() const noexcept { return ca_->config(); }
    u32 shard() const noexcept { return shard_; }

   private:
    friend class CertificateAuthority;
    ShardView(CertificateAuthority* ca, u32 shard, u32 num_shards)
        : ca_(ca), shard_(shard), num_shards_(num_shards) {
      RBC_CHECK(ca != nullptr && shard < num_shards);
    }
    void check_owned(u64 device_id) const {
      RBC_CHECK_MSG(route_shard(device_id, num_shards_) == shard_,
                    "session routed to the wrong CA shard");
    }
    CertificateAuthority* ca_;
    u32 shard_;
    u32 num_shards_;
  };

  ShardView shard_view(u32 shard, u32 num_shards) {
    return ShardView(this, shard, num_shards);
  }

 private:
  struct RngStripe {
    std::mutex mutex;
    Xoshiro256 rng;
  };

  CaConfig cfg_;
  EnrollmentDatabase db_;
  std::unique_ptr<SearchBackend> backend_;
  RegistrationAuthority* ra_;
  std::unique_ptr<std::array<RngStripe, kAuthorityStripes>> rng_stripes_;
};

/// Bounded exponential-backoff retransmission for lossy links. The exchange
/// is stop-and-wait ARQ: each protocol message is sent under a per-direction
/// sequence number, and the sender waits `timeout_s` (doubling per attempt,
/// capped at max_timeout_s) for the frame to arrive intact before
/// retransmitting. All waits are charged to BOTH endpoints' communication
/// clocks (and slept in realtime mode), so retries genuinely spend the
/// session's threshold budget.
struct RetryPolicy {
  int max_attempts = 6;        // total tries per message (1 = no retransmit)
  double timeout_s = 0.2;      // first response timeout, seconds
  double backoff = 2.0;        // exponential backoff factor
  double max_timeout_s = 1.6;  // backoff cap, seconds

  void validate() const {
    RBC_CHECK_MSG(max_attempts >= 1, "need at least one send attempt");
    RBC_CHECK(timeout_s >= 0.0 && backoff >= 1.0 &&
              max_timeout_s >= timeout_s);
  }
};

/// Per-session network options: an (already forked) fault plan plus the
/// retransmit policy that recovers from it. An inactive fault plan selects
/// the plain lossless path — wire bytes identical to the pre-fault protocol.
struct LinkOptions {
  net::FaultPlan faults;
  RetryPolicy retry{};
};

/// One full authentication session over a simulated channel.
struct SessionReport {
  net::AuthResult result;
  EngineReport engine;
  double comm_time_s = 0.0;    // simulated network + PUF-read time
  double total_time_s = 0.0;   // comm + host search time
  /// Public key registered at the RA (empty when authentication failed).
  Bytes registered_public_key;
  /// True when a message exhausted its retransmit budget (or the session
  /// deadline expired mid-retry) and the exchange was abandoned.
  bool transport_failed = false;
  /// Merged wire + ARQ counters for the session's link (all zero on a
  /// lossless channel).
  net::LinkStats link;
};

/// `session`, when non-null, is the session's admission-time context: its
/// deadline governs the CA search and its cancellation aborts it. `link`,
/// when non-null with an active fault plan, runs the exchange over a lossy
/// channel with sequenced retransmit framing. `offload`, when non-null, is
/// offered the CA search before the backend runs it (see SearchOffload).
/// `search_order`, when set, overrides the CA's configured search order for
/// this session.
SessionReport run_authentication(Client& client, CertificateAuthority& ca,
                                 RegistrationAuthority& ra,
                                 net::LatencyModel latency =
                                     net::LatencyModel(0.15),
                                 par::SearchContext* session = nullptr,
                                 const LinkOptions* link = nullptr,
                                 SearchOffload* offload = nullptr,
                                 std::optional<SearchOrder> search_order =
                                     std::nullopt);

/// Shard-scoped overload used by the serving layer: identical exchange, but
/// every authority access goes through the views' confinement checks.
SessionReport run_authentication(Client& client,
                                 CertificateAuthority::ShardView ca,
                                 RegistrationAuthority::ShardView ra,
                                 net::LatencyModel latency =
                                     net::LatencyModel(0.15),
                                 par::SearchContext* session = nullptr,
                                 const LinkOptions* link = nullptr,
                                 SearchOffload* offload = nullptr,
                                 std::optional<SearchOrder> search_order =
                                     std::nullopt);

}  // namespace rbc
