// Legacy algorithm-aware RBC search — the prior-work baseline of Table 7.
//
// Before RBC-SALTED, the server search generated a PUBLIC KEY for every
// candidate seed and compared it to the client's public key [29, 36, 39,
// 40]. The control structure is identical to Algorithm 1; only the
// per-candidate operation differs (keygen instead of hash), which is exactly
// the cost gap the paper exploits. This engine exists so the benches can
// measure that gap with real implementations (AES-128, LightSABER-like,
// Dilithium3-like) rather than quoting it.
#pragma once

#include <mutex>
#include <optional>

#include "bits/seed256.hpp"
#include "combinatorics/shell.hpp"
#include "common/timer.hpp"
#include "crypto/pqc_keygen.hpp"
#include "parallel/early_exit.hpp"
#include "parallel/search_context.hpp"
#include "parallel/worker_group.hpp"
#include "rbc/search.hpp"

namespace rbc {

/// Same contract as rbc_search(), but the per-candidate operation is
/// public-key generation and the target is the client's public key bytes.
template <crypto::SeedKeygen Keygen, comb::SeedIteratorFactory Factory>
SearchResult legacy_rbc_search(const Seed256& s_init, const Bytes& target_pk,
                               Factory& factory, par::WorkerGroup& workers,
                               const SearchOptions& opts,
                               const Keygen& keygen = {},
                               par::SearchContext* session = nullptr) {
  RBC_CHECK(opts.max_distance >= 0 && opts.max_distance <= comb::kMaxK);
  RBC_CHECK(opts.num_threads >= 1);

  par::SearchContext local = par::SearchContext::with_budget(opts.timeout_s);
  par::SearchContext& ctx = session != nullptr ? *session : local;

  SearchResult result;
  WallTimer timer;
  std::mutex found_mutex;
  std::optional<std::pair<Seed256, int>> found;

  result.seeds_hashed = 1;  // "keys generated" for this engine
  ctx.add_progress(1);
  if (keygen(s_init) == target_pk) {
    result.found = true;
    result.seed = s_init;
    result.distance = 0;
    result.host_seconds = timer.elapsed_s();
    return result;
  }

  const int p = opts.num_threads;
  std::vector<u64> generated(static_cast<std::size_t>(p), 0);

  for (int k = 1; k <= opts.max_distance; ++k) {
    if (ctx.should_stop(opts.early_exit)) break;
    if (ctx.check_deadline()) break;
    factory.prepare(k, p);

    workers.parallel_workers(p, [&](int worker) {
      auto it = factory.make(worker);
      par::CheckThrottle throttle(opts.check_interval);
      u64 local = 0;
      Seed256 mask;
      while (it.next(mask)) {
        if (throttle.due() && ctx.should_stop(opts.early_exit)) break;
        const Seed256 candidate = s_init ^ mask;
        ++local;
        if (keygen(candidate) == target_pk) {
          {
            std::lock_guard lock(found_mutex);
            if (!found) found = {candidate, k};
          }
          ctx.signal_match();
          if (opts.early_exit) break;
        }
        // Keygen is orders of magnitude slower than hashing, so the
        // deadline is polled much more often relative to work done.
        if ((local & 0xff) == 0) ctx.check_deadline();
      }
      generated[static_cast<std::size_t>(worker)] += local;
      ctx.add_progress(local);
    });

    ctx.check_deadline();
  }

  for (u64 g : generated) result.seeds_hashed += g;
  if (found) {
    result.found = true;
    result.seed = found->first;
    result.distance = found->second;
  } else {
    result.timed_out = ctx.timed_out();
    result.cancelled = ctx.cancel_requested() && !ctx.timed_out();
  }
  result.host_seconds = timer.elapsed_s();
  return result;
}

}  // namespace rbc
