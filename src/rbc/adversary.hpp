// Adversary analysis — §2.2's security argument made executable.
//
// The opponent holds a digest M1 (or a public key) but not the enrolled
// image, so their search space is the full 2^256 (Eq. 2) rather than the
// server's Hamming ball (Eq. 1). Two tools:
//
//   * analytic: expected time-to-break on each evaluated platform, using the
//     same calibrated throughput models as the defender benches — an attacker
//     with the defender's best hardware still faces ~10^60 years;
//   * empirical: a scaled-down brute-force attacker over a w-bit toy space,
//     validating the E[tries] = 2^(w-1) expectation that the analytic model
//     extrapolates from. The toy attacker runs the REAL digest comparison
//     loop, just over fewer bits.
#pragma once

#include <cmath>

#include "bits/seed256.hpp"
#include "combinatorics/binomial.hpp"
#include "common/rng.hpp"
#include "hash/traits.hpp"
#include "sim/calibration.hpp"

namespace rbc {

struct BreakEstimate {
  double hashes_per_second = 0.0;
  /// Expected tries: half the space, 2^(bits-1).
  long double expected_tries = 0.0L;
  long double expected_seconds = 0.0L;
  long double expected_years = 0.0L;
};

/// Expected brute-force cost against a `bits`-wide seed space at the given
/// hash throughput.
inline BreakEstimate estimate_break_cost(double hashes_per_second,
                                         int bits = Seed256::kBits) {
  RBC_CHECK(hashes_per_second > 0.0 && bits >= 1 && bits <= 256);
  BreakEstimate e;
  e.hashes_per_second = hashes_per_second;
  e.expected_tries = std::pow(2.0L, static_cast<long double>(bits - 1));
  e.expected_seconds =
      e.expected_tries / static_cast<long double>(hashes_per_second);
  e.expected_years = e.expected_seconds / (365.25L * 24 * 3600);
  return e;
}

struct ToyBreakResult {
  bool broken = false;
  u64 tries = 0;
  Seed256 recovered;
};

/// Brute-forces a digest over the toy space {0,1}^width (low bits of a
/// Seed256, high bits zero). Visits candidates in a random-start cyclic
/// order so repeated trials sample the uniform-position assumption.
template <hash::SeedHash Hash>
ToyBreakResult brute_force_toy_space(const typename Hash::digest_type& target,
                                     int width, Xoshiro256& rng,
                                     const Hash& hash = {}) {
  RBC_CHECK(width >= 1 && width <= 30);
  const u64 space = 1ULL << width;
  const u64 start = rng.next_below(space);
  ToyBreakResult result;
  for (u64 i = 0; i < space; ++i) {
    const u64 value = (start + i) & (space - 1);
    const Seed256 candidate{value, 0, 0, 0};
    ++result.tries;
    if (hash(candidate) == target) {
      result.broken = true;
      result.recovered = candidate;
      return result;
    }
  }
  return result;
}

/// The defender/attacker asymmetry ratio of §2.2: opponent tries (Eq. 2 / 2)
/// versus the server's exhaustive ball u(d) — how many times more work the
/// attack needs than an authentication.
inline long double asymmetry_ratio(int d) {
  return std::pow(2.0L, 255.0L) /
         static_cast<long double>(comb::exhaustive_search_count(d));
}

}  // namespace rbc
