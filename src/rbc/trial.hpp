// Trial harness: repeated stochastic authentications and their statistics.
//
// The paper's average-case numbers are means over 1,200 trials with
// stochastic PUF noise (§4.1). This harness runs N full protocol sessions
// against fresh noise draws and aggregates authentication rate, search
// effort, and timing — used by the benches and the puf_error_study example.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "rbc/protocol.hpp"

namespace rbc {

struct TrialStats {
  int trials = 0;
  int authenticated = 0;
  int timed_out = 0;
  u64 total_seeds_hashed = 0;
  double total_host_search_s = 0.0;
  double total_modeled_device_s = 0.0;
  double total_comm_s = 0.0;
  std::vector<int> found_distance_histogram;  // index = distance
  /// Per-trial host search times for percentiles, held in a bounded
  /// reservoir (exact up to its 4096-sample capacity — comfortably above
  /// the paper's 1,200-trial runs — and a uniform subsample beyond), and
  /// streaming moments of the modeled device times.
  ReservoirSample host_search_samples{4096};
  RunningStats modeled_device_stats;

  double auth_rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(authenticated) / trials;
  }
  double mean_seeds_hashed() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(total_seeds_hashed) / trials;
  }
  double mean_host_search_s() const {
    return trials == 0 ? 0.0 : total_host_search_s / trials;
  }
  double mean_modeled_device_s() const {
    return trials == 0 ? 0.0 : total_modeled_device_s / trials;
  }
  /// Percentile of the host search time distribution, q in [0,1].
  double host_search_percentile(double q) const {
    return host_search_samples.percentile(q);
  }
};

/// Runs `trials` authentications of `client` against `ca`, each with fresh
/// PUF noise (the client's RNG advances between sessions).
TrialStats run_trials(Client& client, CertificateAuthority& ca,
                      RegistrationAuthority& ra, int trials);

}  // namespace rbc
