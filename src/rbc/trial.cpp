#include "rbc/trial.hpp"

namespace rbc {

TrialStats run_trials(Client& client, CertificateAuthority& ca,
                      RegistrationAuthority& ra, int trials) {
  RBC_CHECK(trials > 0);
  TrialStats stats;
  stats.trials = trials;
  stats.found_distance_histogram.assign(
      static_cast<std::size_t>(ca.config().max_distance) + 1, 0);
  for (int t = 0; t < trials; ++t) {
    const SessionReport session = run_authentication(client, ca, ra);
    if (session.result.authenticated) {
      ++stats.authenticated;
      const int d = session.result.found_distance;
      if (d >= 0 &&
          d < static_cast<int>(stats.found_distance_histogram.size())) {
        ++stats.found_distance_histogram[static_cast<std::size_t>(d)];
      }
    }
    if (session.result.timed_out) ++stats.timed_out;
    stats.total_seeds_hashed += session.engine.result.seeds_hashed;
    stats.total_host_search_s += session.engine.result.host_seconds;
    stats.total_modeled_device_s += session.engine.modeled_device_seconds;
    stats.total_comm_s += session.comm_time_s;
    stats.host_search_samples.add(session.engine.result.host_seconds);
    stats.modeled_device_stats.add(session.engine.modeled_device_seconds);
  }
  return stats;
}

}  // namespace rbc
