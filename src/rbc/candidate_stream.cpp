#include "rbc/candidate_stream.hpp"

#include <algorithm>
#include <list>
#include <map>
#include <mutex>
#include <tuple>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"

namespace rbc {

namespace {

template <typename Factory>
ShellMaskCache::Table walk_shell(Factory factory, int k) {
  ShellMaskCache::Table table;
  factory.prepare(k, 1);
  auto it = factory.make(0);
  Seed256 mask;
  while (it.next(mask)) table.push_back(mask);
  return table;
}

using CacheKey = std::tuple<int, int, int>;  // (iterator, n_bits, k)

struct CacheState {
  struct Entry {
    std::shared_ptr<const ShellMaskCache::Table> table;
    std::list<CacheKey>::iterator lru_it;
  };
  std::mutex mutex;
  std::map<CacheKey, Entry> entries;
  std::list<CacheKey> lru;  // front = most recently fetched
  u64 capacity = ShellMaskCache::kDefaultCapacityMasks;
  ShellMaskCache::Stats stats;

  /// Evicts least-recently-fetched tables until within capacity, but never
  /// the front entry (the one the caller is about to use). Caller holds mutex.
  void evict_to_capacity() {
    while (stats.cached_masks > capacity && lru.size() > 1) {
      const CacheKey victim = lru.back();
      lru.pop_back();
      auto it = entries.find(victim);
      stats.cached_masks -= it->second.table->size();
      entries.erase(it);
      ++stats.evictions;
    }
    stats.cached_tables = entries.size();
  }
};

CacheState& cache_state() {
  static CacheState* state = new CacheState();
  return *state;
}

}  // namespace

std::shared_ptr<const ShellMaskCache::Table> ShellMaskCache::get(
    sim::IterAlgo iter, int k, int n_bits) {
  RBC_CHECK(k >= 1 && k <= comb::kMaxK && n_bits >= k);
  const u128 masks = comb::binomial128(n_bits, k);
  RBC_CHECK_MSG(masks <= kMaxTableMasks,
                "shell too large for a cached mask table");

  CacheState& state = cache_state();
  const CacheKey key{static_cast<int>(iter), n_bits, k};
  {
    std::lock_guard lock(state.mutex);
    auto it = state.entries.find(key);
    if (it != state.entries.end()) {
      ++state.stats.hits;
      state.lru.splice(state.lru.begin(), state.lru, it->second.lru_it);
      return it->second.table;
    }
    ++state.stats.misses;
  }
  // Build outside the lock: the walk is O(C(n, k)) and other shells should
  // not serialize behind it. A racing builder of the SAME shell produces an
  // identical table; first insert wins and the loser's copy is dropped.
  Table built;
  switch (iter) {
    case sim::IterAlgo::kChase382:
      built = walk_shell(comb::ChaseFactory(n_bits), k);
      break;
    case sim::IterAlgo::kAlg515:
      built = walk_shell(
          comb::Algorithm515Factory(comb::Alg515Mode::kSuccessor, n_bits), k);
      break;
    case sim::IterAlgo::kGosper:
      built = walk_shell(comb::GosperFactory(n_bits), k);
      break;
  }
  RBC_CHECK(built.size() == static_cast<std::size_t>(masks));
  auto shared = std::make_shared<const Table>(std::move(built));
  std::lock_guard lock(state.mutex);
  auto it = state.entries.find(key);
  if (it != state.entries.end()) {
    // Lost the build race: adopt the winner and drop our copy.
    state.lru.splice(state.lru.begin(), state.lru, it->second.lru_it);
    return it->second.table;
  }
  state.lru.push_front(key);
  state.entries.emplace(
      key, CacheState::Entry{std::move(shared), state.lru.begin()});
  state.stats.cached_masks += static_cast<u64>(masks);
  state.evict_to_capacity();
  return state.entries.find(key)->second.table;
}

ShellMaskCache::Stats ShellMaskCache::stats() {
  CacheState& state = cache_state();
  std::lock_guard lock(state.mutex);
  return state.stats;
}

void ShellMaskCache::set_capacity(u64 max_masks) {
  CacheState& state = cache_state();
  std::lock_guard lock(state.mutex);
  state.capacity = max_masks;
  state.evict_to_capacity();
}

TableCandidateStream::TableCandidateStream(const Seed256& s_init,
                                           int max_distance,
                                           sim::IterAlgo iter, int n_bits)
    : s_init_(s_init), d_(max_distance) {
  RBC_CHECK(max_distance >= 0 && max_distance <= comb::kMaxK);
  tables_.resize(static_cast<std::size_t>(d_) + 1);
  for (int k = 1; k <= d_; ++k)
    tables_[static_cast<std::size_t>(k)] = ShellMaskCache::get(iter, k, n_bits);
}

std::size_t TableCandidateStream::fill(Seed256* seeds, std::size_t n) {
  if (n == 0 || exhausted_) return 0;
  while (true) {
    if (shell_ == 0) {
      seeds[0] = s_init_;
      last_shell_ = 0;
      position_ = 1;
      if (d_ == 0) {
        exhausted_ = true;
      } else {
        shell_ = 1;
      }
      return 1;
    }
    const ShellMaskCache::Table& table =
        *tables_[static_cast<std::size_t>(shell_)];
    const u64 left = table.size() - index_;
    const std::size_t produced =
        static_cast<std::size_t>(std::min<u64>(left, n));
    if (produced > 0) {
      for (std::size_t i = 0; i < produced; ++i)
        seeds[i] = s_init_ ^ table[static_cast<std::size_t>(index_ + i)];
      index_ += produced;
      last_shell_ = shell_;
      position_ += produced;
      return produced;
    }
    if (shell_ >= d_) {
      exhausted_ = true;
      return 0;
    }
    ++shell_;
    index_ = 0;
  }
}

}  // namespace rbc
