// Resumable candidate enumeration for the Hamming-ball search.
//
// rbc_search's enumeration order is a protocol-visible contract: verdicts
// and the per-session `seeds_hashed` accounting both depend on the exact
// visit order (S_init first, then shells 1..d in the iterator family's
// sequence). A CandidateStream reifies that order as a *resumable* cursor —
// fill(seeds, n) produces the next n candidates and can stop at any point —
// so the same enumeration can be driven by a private search loop (the
// 1-thread static schedule below in search.hpp) or interleaved with other
// sessions' streams by the server's fusion engine (server/fusion_engine.hpp),
// which deals lane slots of one shared hash batch across many streams.
//
// Contract (what fusion equivalence tests pin down):
//   * The first fill() emits exactly one candidate: S_init (distance 0).
//   * A single fill() never crosses a shell boundary — every candidate of
//     one call sits in one shell, reported by last_shell(). Callers that
//     mirror the solo loop's between-shell deadline checks get a natural
//     seam at each short return.
//   * Candidates are produced in the iterator family's canonical 1-slice
//     order (prepare(k, 1) / make(0)), which is byte-identical to the
//     static single-thread schedule — so counting every produced candidate
//     up to and including a match reproduces the solo `seeds_hashed`
//     exactly.
//
// Two implementations:
//   * BallStream<Factory> walks a borrowed iterator factory lazily — the
//     per-shell prepare() cost lands on the session, same as the solo path.
//   * TableCandidateStream steps through process-wide cached XOR-mask
//     tables (ShellMaskCache): O(1) setup and O(1) stepping per candidate.
//     The walk that builds a shell's table is paid once per process instead
//     of once per session — this is where the fusion engine's per-session
//     setup win comes from. Memory is bounded by the fusion admission
//     threshold (masks are 32 B each; a d<=2 ball over 256 bits is ~1 MiB).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "bits/seed256.hpp"
#include "combinatorics/binomial.hpp"
#include "combinatorics/shell.hpp"
#include "common/types.hpp"
#include "sim/calibration.hpp"

namespace rbc {

class CandidateStream {
 public:
  virtual ~CandidateStream() = default;

  /// Writes up to `n` candidate seeds, all from one shell, in canonical
  /// order. Returns the count produced; 0 means the ball is exhausted.
  virtual std::size_t fill(Seed256* seeds, std::size_t n) = 0;

  /// Shell (Hamming distance) of the candidates the most recent fill()
  /// produced. Undefined before the first fill.
  virtual int last_shell() const noexcept = 0;

  /// Candidates produced so far — equals the solo search's `seeds_hashed`
  /// when the caller hashes and counts everything up to a stop point.
  virtual u64 position() const noexcept = 0;

  virtual bool exhausted() const noexcept = 0;
};

/// Number of candidates in the ball of radius `max_distance` (the d0 seed
/// plus every shell) — the fusion engine's admission-size model.
inline u128 ball_candidates(int max_distance, int n_bits = comb::kSeedBits) {
  u128 total = 1;
  for (int k = 1; k <= max_distance; ++k) total += comb::binomial128(n_bits, k);
  return total;
}

/// Streams a ball by walking a borrowed iterator factory. Shell k's
/// prepare(k, 1) runs lazily on the first fill that needs it, mirroring the
/// solo loop's per-shell preparation point; the factory must outlive the
/// stream and not be re-prepared by anyone else while it runs.
template <comb::SeedIteratorFactory Factory>
class BallStream final : public CandidateStream {
 public:
  BallStream(const Seed256& s_init, int max_distance, Factory& factory)
      : s_init_(s_init), d_(max_distance), factory_(factory) {}

  /// Starts the cursor after distance 0 — for callers (rbc_search) that
  /// have already hashed S_init themselves.
  void skip_base() {
    RBC_CHECK(position_ == 0);
    position_ = 1;
    if (d_ == 0) {
      exhausted_ = true;
    } else {
      shell_ = 1;
    }
  }

  std::size_t fill(Seed256* seeds, std::size_t n) override {
    if (n == 0 || exhausted_) return 0;
    while (true) {
      if (shell_ == 0) {
        seeds[0] = s_init_;
        last_shell_ = 0;
        position_ = 1;
        if (d_ == 0) {
          exhausted_ = true;
        } else {
          shell_ = 1;
        }
        return 1;
      }
      if (!it_.has_value()) {
        factory_.prepare(shell_, 1);
        it_.emplace(factory_.make(0));
      }
      std::size_t produced = 0;
      Seed256 mask;
      while (produced < n && it_->next(mask)) {
        seeds[produced++] = s_init_ ^ mask;
      }
      if (produced > 0) {
        last_shell_ = shell_;
        position_ += produced;
        return produced;
      }
      it_.reset();
      if (shell_ >= d_) {
        exhausted_ = true;
        return 0;
      }
      ++shell_;
    }
  }

  int last_shell() const noexcept override { return last_shell_; }
  u64 position() const noexcept override { return position_; }
  bool exhausted() const noexcept override { return exhausted_; }

 private:
  Seed256 s_init_;
  int d_;
  Factory& factory_;
  int shell_ = 0;       // shell the next candidate comes from
  int last_shell_ = -1;
  u64 position_ = 0;
  bool exhausted_ = false;
  std::optional<typename Factory::iterator> it_;
};

/// Process-wide cache of per-shell XOR-delta tables: table entry i is the
/// i-th mask of shell k in the iterator family's canonical 1-slice order.
/// Built once per (iterator, n_bits, k) by walking the factory — every
/// later stream steps through it at O(1) per candidate with no per-session
/// prepare walk. Thread-safe; entries are immutable once published.
class ShellMaskCache {
 public:
  using Table = std::vector<Seed256>;

  /// Fetches (building on first use) the mask table for shell k. CHECK-fails
  /// on shells too large to sensibly materialize (the fusion admission
  /// threshold keeps real callers far below the cap).
  static std::shared_ptr<const Table> get(sim::IterAlgo iter, int k,
                                          int n_bits = comb::kSeedBits);

  /// Hard size cap per shell table, in masks (32 B each). Guards the cache
  /// against a misconfigured threshold; d<=3 over 256 bits fits.
  static constexpr u64 kMaxTableMasks = u64{1} << 22;
};

/// O(1)-resume candidate stream over cached shell tables. Construction
/// fetches the tables for shells 1..max_distance (building any that are not
/// cached yet — a once-per-process cost); stepping is an XOR per candidate.
class TableCandidateStream final : public CandidateStream {
 public:
  TableCandidateStream(const Seed256& s_init, int max_distance,
                       sim::IterAlgo iter, int n_bits = comb::kSeedBits);

  std::size_t fill(Seed256* seeds, std::size_t n) override;
  int last_shell() const noexcept override { return last_shell_; }
  u64 position() const noexcept override { return position_; }
  bool exhausted() const noexcept override { return exhausted_; }

 private:
  Seed256 s_init_;
  int d_;
  int shell_ = 0;       // shell the next candidate comes from
  int last_shell_ = -1;
  u64 index_ = 0;       // cursor within the current shell's table
  u64 position_ = 0;
  bool exhausted_ = false;
  std::vector<std::shared_ptr<const ShellMaskCache::Table>> tables_;
};

}  // namespace rbc
