// Resumable candidate enumeration for the Hamming-ball search.
//
// rbc_search's enumeration order is a protocol-visible contract: verdicts
// and the per-session `seeds_hashed` accounting both depend on the exact
// visit order (S_init first, then shells 1..d in the iterator family's
// sequence). A CandidateStream reifies that order as a *resumable* cursor —
// fill(seeds, n) produces the next n candidates and can stop at any point —
// so the same enumeration can be driven by a private search loop (the
// 1-thread static schedule below in search.hpp) or interleaved with other
// sessions' streams by the server's fusion engine (server/fusion_engine.hpp),
// which deals lane slots of one shared hash batch across many streams.
//
// Contract (what fusion equivalence tests pin down):
//   * The first fill() emits exactly one candidate: S_init (distance 0).
//   * A single fill() never crosses a shell boundary — every candidate of
//     one call sits in one shell, reported by last_shell(). Callers that
//     mirror the solo loop's between-shell deadline checks get a natural
//     seam at each short return.
//   * Candidates are produced in the iterator family's canonical 1-slice
//     order (prepare(k, 1) / make(0)), which is byte-identical to the
//     static single-thread schedule — so counting every produced candidate
//     up to and including a match reproduces the solo `seeds_hashed`
//     exactly.
//
// Two implementations:
//   * BallStream<Factory> walks a borrowed iterator factory lazily — the
//     per-shell prepare() cost lands on the session, same as the solo path.
//   * TableCandidateStream steps through process-wide cached XOR-mask
//     tables (ShellMaskCache): O(1) setup and O(1) stepping per candidate.
//     The walk that builds a shell's table is paid once per process instead
//     of once per session — this is where the fusion engine's per-session
//     setup win comes from. Memory is bounded by the fusion admission
//     threshold (masks are 32 B each; a d<=2 ball over 256 bits is ~1 MiB).
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "bits/seed256.hpp"
#include "combinatorics/binomial.hpp"
#include "combinatorics/gosper.hpp"
#include "combinatorics/likelihood.hpp"
#include "combinatorics/shell.hpp"
#include "common/types.hpp"
#include "sim/calibration.hpp"

namespace rbc {

class CandidateStream {
 public:
  virtual ~CandidateStream() = default;

  /// Writes up to `n` candidate seeds, all from one shell, in canonical
  /// order. Returns the count produced; 0 means the ball is exhausted.
  virtual std::size_t fill(Seed256* seeds, std::size_t n) = 0;

  /// Shell (Hamming distance) of the candidates the most recent fill()
  /// produced. Undefined before the first fill.
  virtual int last_shell() const noexcept = 0;

  /// Candidates produced so far — equals the solo search's `seeds_hashed`
  /// when the caller hashes and counts everything up to a stop point.
  virtual u64 position() const noexcept = 0;

  virtual bool exhausted() const noexcept = 0;
};

/// Number of candidates in the ball of radius `max_distance` (the d0 seed
/// plus every shell) — the fusion engine's admission-size model.
inline u128 ball_candidates(int max_distance, int n_bits = comb::kSeedBits) {
  u128 total = 1;
  for (int k = 1; k <= max_distance; ++k) total += comb::binomial128(n_bits, k);
  return total;
}

/// Streams a ball by walking a borrowed iterator factory. Shell k's
/// prepare(k, 1) runs lazily on the first fill that needs it, mirroring the
/// solo loop's per-shell preparation point; the factory must outlive the
/// stream and not be re-prepared by anyone else while it runs.
template <comb::SeedIteratorFactory Factory>
class BallStream final : public CandidateStream {
 public:
  BallStream(const Seed256& s_init, int max_distance, Factory& factory)
      : s_init_(s_init), d_(max_distance), factory_(factory) {}

  /// Starts the cursor after distance 0 — for callers (rbc_search) that
  /// have already hashed S_init themselves.
  void skip_base() {
    RBC_CHECK(position_ == 0);
    position_ = 1;
    if (d_ == 0) {
      exhausted_ = true;
    } else {
      shell_ = 1;
    }
  }

  std::size_t fill(Seed256* seeds, std::size_t n) override {
    if (n == 0 || exhausted_) return 0;
    while (true) {
      if (shell_ == 0) {
        seeds[0] = s_init_;
        last_shell_ = 0;
        position_ = 1;
        if (d_ == 0) {
          exhausted_ = true;
        } else {
          shell_ = 1;
        }
        return 1;
      }
      if (!it_.has_value()) {
        factory_.prepare(shell_, 1);
        it_.emplace(factory_.make(0));
      }
      std::size_t produced = 0;
      Seed256 mask;
      while (produced < n && it_->next(mask)) {
        seeds[produced++] = s_init_ ^ mask;
      }
      if (produced > 0) {
        last_shell_ = shell_;
        position_ += produced;
        return produced;
      }
      it_.reset();
      if (shell_ >= d_) {
        exhausted_ = true;
        return 0;
      }
      ++shell_;
    }
  }

  int last_shell() const noexcept override { return last_shell_; }
  u64 position() const noexcept override { return position_; }
  bool exhausted() const noexcept override { return exhausted_; }

 private:
  Seed256 s_init_;
  int d_;
  Factory& factory_;
  int shell_ = 0;       // shell the next candidate comes from
  int last_shell_ = -1;
  u64 position_ = 0;
  bool exhausted_ = false;
  std::optional<typename Factory::iterator> it_;
};

/// Process-wide cache of per-shell XOR-delta tables: table entry i is the
/// i-th mask of shell k in the iterator family's canonical 1-slice order.
/// Built once per (iterator, n_bits, k) by walking the factory — every
/// later stream steps through it at O(1) per candidate with no per-session
/// prepare walk. Thread-safe; entries are immutable once published.
///
/// The cache is bounded: total retained masks are capped (LRU eviction,
/// least-recently-fetched table first), so a long-lived server process that
/// cycles through many (iterator, n_bits, k) keys holds bounded memory.
/// The most recently fetched table is never evicted, so the cap is soft by
/// at most one table. Outstanding shared_ptrs keep evicted tables alive
/// until their streams drain.
class ShellMaskCache {
 public:
  using Table = std::vector<Seed256>;

  /// Process-wide counters, surfaced through ServerStats and the metrics
  /// export. Counter updates and this snapshot share the cache mutex, so a
  /// snapshot is internally consistent (never a torn hits/misses pair from
  /// mid-update) and safe to call concurrently with get()/set_capacity()
  /// from any thread — the ObsShellCacheTorn TSan stress pins this.
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;       // table built (or raced) on this fetch
    u64 evictions = 0;    // tables dropped by the LRU cap
    u64 cached_masks = 0; // masks currently retained
    u64 cached_tables = 0;
  };

  /// Fetches (building on first use) the mask table for shell k. CHECK-fails
  /// on shells too large to sensibly materialize (the fusion admission
  /// threshold keeps real callers far below the cap).
  static std::shared_ptr<const Table> get(sim::IterAlgo iter, int k,
                                          int n_bits = comb::kSeedBits);

  static Stats stats();

  /// Sets the LRU capacity in total masks (32 B each) and evicts down to it.
  /// Process-wide; tests should restore kDefaultCapacityMasks afterwards.
  static void set_capacity(u64 max_masks);

  /// Hard size cap per shell table, in masks (32 B each). Guards the cache
  /// against a misconfigured threshold; d<=3 over 256 bits fits.
  static constexpr u64 kMaxTableMasks = u64{1} << 22;

  /// Default LRU capacity in total masks (64 MiB): the full d<=2 working set
  /// of every iterator family plus slack for small-n_bits test tables.
  static constexpr u64 kDefaultCapacityMasks = u64{1} << 21;
};

/// Streams a ball in maximum-likelihood-first order within each shell:
/// distance 0 first, then shells 1..d (fills never cross shells), but each
/// shell's masks come from a comb::WeightedShellEnumerator in non-decreasing
/// weight-sum order instead of the canonical combinatorial order. The union
/// of candidates per shell is identical to the canonical stream — only the
/// order inside a shell changes — so exhaustive counts and verdicts match.
///
/// Memory bound: best-first enumeration of a huge shell would grow the
/// successor frontier without limit on a miss, so each shell is hybrid —
/// shells with C(n, k) <= ordered_budget are enumerated fully in likelihood
/// order; larger shells emit the `ordered_budget` most likely masks first
/// (recording them), then drop the enumerator and walk the canonical Gosper
/// order from the shell's start, skipping the recorded head. The hit is in
/// the ordered head in all but pathological sessions, so the tail is the
/// rare worst case and the shell stays an exact permutation either way.
class OrderedBallStream final : public CandidateStream {
 public:
  static constexpr u64 kDefaultOrderedBudget = u64{1} << 16;

  /// `order` is shared with the session that fetched the enrollment record;
  /// it must describe at least `n_bits` positions.
  OrderedBallStream(const Seed256& s_init, int max_distance,
                    std::shared_ptr<const comb::ReliabilityOrder> order,
                    u64 ordered_budget = kDefaultOrderedBudget,
                    int n_bits = comb::kSeedBits);

  /// Starts the cursor after distance 0 — for callers (rbc_search) that
  /// have already hashed S_init themselves.
  void skip_base();

  std::size_t fill(Seed256* seeds, std::size_t n) override;
  int last_shell() const noexcept override { return last_shell_; }
  u64 position() const noexcept override { return position_; }
  bool exhausted() const noexcept override { return exhausted_; }

 private:
  void open_shell(int k);
  bool next_mask(Seed256& mask);

  Seed256 s_init_;
  int d_;
  int n_bits_;
  u64 budget_;
  std::shared_ptr<const comb::ReliabilityOrder> order_;
  int shell_ = 0;       // shell the next candidate comes from
  int last_shell_ = -1;
  u64 position_ = 0;
  bool exhausted_ = false;
  // Per-shell state.
  std::optional<comb::WeightedShellEnumerator> head_;
  u64 shell_size_ = 0;
  u64 head_emitted_ = 0;
  bool record_head_ = false;     // shell larger than the budget => hybrid
  bool in_tail_ = false;
  std::vector<Seed256> emitted_; // sorted once the head completes
  Seed256 tail_mask_;
  u64 tail_remaining_ = 0;
};

// OrderedBallStream is header-inline (unlike TableCandidateStream) because
// rbc_search instantiates it from search.hpp, which headers in libraries
// that do not link rbc_core (rbc_gpu, rbc_dist) also include.

inline OrderedBallStream::OrderedBallStream(
    const Seed256& s_init, int max_distance,
    std::shared_ptr<const comb::ReliabilityOrder> order, u64 ordered_budget,
    int n_bits)
    : s_init_(s_init),
      d_(max_distance),
      n_bits_(n_bits),
      budget_(ordered_budget),
      order_(std::move(order)) {
  RBC_CHECK(max_distance >= 0 && max_distance <= comb::kMaxK);
  RBC_CHECK_MSG(order_ != nullptr, "ordered stream needs a reliability order");
  RBC_CHECK_MSG(order_->n_bits >= n_bits,
                "reliability order covers too few bits");
  RBC_CHECK(ordered_budget >= 1);
}

inline void OrderedBallStream::skip_base() {
  RBC_CHECK(position_ == 0);
  position_ = 1;
  if (d_ == 0) {
    exhausted_ = true;
  } else {
    shell_ = 1;
    open_shell(1);
  }
}

inline void OrderedBallStream::open_shell(int k) {
  const u128 size = comb::binomial128(n_bits_, k);
  // The canonical tail cursor counts in u64; every practical reliability
  // session has d <= 5 over 256 bits, far inside this bound.
  RBC_CHECK_MSG(size <= u128{~u64{0}}, "shell too large for ordered stream");
  shell_size_ = static_cast<u64>(size);
  head_.emplace(*order_, k);
  head_emitted_ = 0;
  record_head_ = shell_size_ > budget_;
  in_tail_ = false;
  emitted_.clear();
}

inline bool OrderedBallStream::next_mask(Seed256& mask) {
  if (!in_tail_) {
    if ((!record_head_ || head_emitted_ < budget_) && head_->next(mask)) {
      ++head_emitted_;
      if (record_head_) emitted_.push_back(mask);
      return true;
    }
    if (!record_head_) return false;  // fully ordered shell, head drained it
    // Budget reached: drop the frontier and fall back to the canonical
    // Gosper walk of the whole shell, skipping the head's emissions so the
    // shell remains an exact permutation.
    std::sort(emitted_.begin(), emitted_.end());
    head_.reset();
    in_tail_ = true;
    tail_mask_ = Seed256::low_bits(shell_);
    tail_remaining_ = shell_size_;
  }
  while (tail_remaining_ > 0) {
    const Seed256 m = tail_mask_;
    if (tail_remaining_ > 1) tail_mask_ = comb::gosper_next(tail_mask_);
    --tail_remaining_;
    if (!std::binary_search(emitted_.begin(), emitted_.end(), m)) {
      mask = m;
      return true;
    }
  }
  return false;
}

inline std::size_t OrderedBallStream::fill(Seed256* seeds, std::size_t n) {
  if (n == 0 || exhausted_) return 0;
  while (true) {
    if (shell_ == 0) {
      seeds[0] = s_init_;
      last_shell_ = 0;
      position_ = 1;
      if (d_ == 0) {
        exhausted_ = true;
      } else {
        shell_ = 1;
        open_shell(1);
      }
      return 1;
    }
    std::size_t produced = 0;
    Seed256 mask;
    while (produced < n && next_mask(mask)) seeds[produced++] = s_init_ ^ mask;
    if (produced > 0) {
      last_shell_ = shell_;
      position_ += produced;
      return produced;
    }
    if (shell_ >= d_) {
      exhausted_ = true;
      return 0;
    }
    ++shell_;
    open_shell(shell_);
  }
}

/// O(1)-resume candidate stream over cached shell tables. Construction
/// fetches the tables for shells 1..max_distance (building any that are not
/// cached yet — a once-per-process cost); stepping is an XOR per candidate.
class TableCandidateStream final : public CandidateStream {
 public:
  TableCandidateStream(const Seed256& s_init, int max_distance,
                       sim::IterAlgo iter, int n_bits = comb::kSeedBits);

  std::size_t fill(Seed256* seeds, std::size_t n) override;
  int last_shell() const noexcept override { return last_shell_; }
  u64 position() const noexcept override { return position_; }
  bool exhausted() const noexcept override { return exhausted_; }

 private:
  Seed256 s_init_;
  int d_;
  int shell_ = 0;       // shell the next candidate comes from
  int last_shell_ = -1;
  u64 index_ = 0;       // cursor within the current shell's table
  u64 position_ = 0;
  bool exhausted_ = false;
  std::vector<std::shared_ptr<const ShellMaskCache::Table>> tables_;
};

}  // namespace rbc
