// The CA's enrollment database: "PUF images for all clients are stored in an
// encrypted database" (§2.1).
//
// Each device's enrollment record (one 256-bit image per PUF address plus the
// TAPKI stable-cell masks) is kept AES-128-CTR encrypted under a database
// master key and decrypted on access. The encryption is real (our own
// AES-128 in counter mode, keyed per record by device id), which lets the
// tests assert the at-rest bytes leak nothing about the images.
//
// The store is SHARDED: records live in kAuthorityStripes independent
// stripes, each behind its own mutex, keyed by the same stripe_of() hash the
// serving layer routes sessions with — so every serving shard reads and
// enrolls only its own stripes and shards never contend on one lock. Reads
// are snapshots (records and ciphertext return BY VALUE, decrypted or copied
// under the stripe lock), so a concurrent enroll into the same stripe can
// never invalidate a reader's view.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bits/seed256.hpp"
#include "common/shard_hash.hpp"
#include "common/types.hpp"
#include "crypto/aes128.hpp"
#include "puf/puf.hpp"

namespace rbc {

struct EnrollmentRecord {
  puf::EnrollmentImage image;
  std::vector<puf::TapkiMask> masks;  // one per PUF address
  /// Per-address quantized flip-rate profiles, measured from the SAME
  /// calibration reads as the masks. Empty when the record was loaded from a
  /// pre-profile database file; the server falls back to canonical search
  /// order for such devices.
  std::vector<puf::ReliabilityProfile> profiles;
};

class EnrollmentDatabase {
 public:
  explicit EnrollmentDatabase(const crypto::Aes128::Key& master_key);

  /// Movable (the CA takes the database by value); stripes live behind a
  /// unique_ptr array so their mutexes need not move.
  EnrollmentDatabase(EnrollmentDatabase&&) noexcept = default;
  EnrollmentDatabase& operator=(EnrollmentDatabase&&) noexcept = default;

  /// Enrolls a manufactured device: captures its image, calibrates TAPKI
  /// masks from `calibration_reads` reads per address, and stores the record
  /// encrypted. (The "secure facility" step of the threat model.)
  /// Thread-safe: enrollment during serving locks only the device's stripe.
  void enroll(u64 device_id, const puf::SramPufModel& device,
              int calibration_reads, double max_flip_rate, Xoshiro256& rng);

  bool contains(u64 device_id) const;

  /// Decrypts and returns the record (a snapshot — decrypted from bytes
  /// copied under the stripe lock). Throws if the device is unknown.
  EnrollmentRecord load(u64 device_id) const;

  /// Snapshot of the raw encrypted record bytes (test access: at-rest
  /// ciphertext). By value: a reference into a stripe could be invalidated
  /// by a concurrent enroll rehashing the stripe's table.
  Bytes ciphertext(u64 device_id) const;

  /// Total records across all stripes.
  std::size_t size() const noexcept;

  /// Records in one stripe (shard-confinement and balance diagnostics).
  std::size_t stripe_size(u32 stripe) const;

  /// Persists the database — records stay ciphertext on disk; only the
  /// framing (magic, count, ids, lengths) is plaintext. Records are written
  /// in ascending device-id order regardless of stripe layout, so the file
  /// format is byte-stable across stripe-count changes.
  void save(const std::string& path) const;

  /// Loads a database previously written by save(). The master key is needed
  /// for subsequent load() calls, not for reading the file itself. Throws on
  /// missing file, bad magic, or truncation.
  static EnrollmentDatabase load_from_file(const std::string& path,
                                           const crypto::Aes128::Key& key);

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<u64, Bytes> records;  // device id -> AES-CTR blob
  };

  Stripe& stripe_for(u64 device_id) const {
    return (*stripes_)[stripe_of(device_id)];
  }

  Bytes encrypt_record(u64 device_id, const EnrollmentRecord& record) const;
  EnrollmentRecord decrypt_record(u64 device_id, const Bytes& blob) const;

  crypto::Aes128::Key master_key_;
  /// Heap-allocated so the database stays movable despite the mutexes.
  std::unique_ptr<std::array<Stripe, kAuthorityStripes>> stripes_;
};

}  // namespace rbc
