// The CA's enrollment database: "PUF images for all clients are stored in an
// encrypted database" (§2.1).
//
// Each device's enrollment record (one 256-bit image per PUF address plus the
// TAPKI stable-cell masks) is kept AES-128-CTR encrypted under a database
// master key and decrypted on access. The encryption is real (our own
// AES-128 in counter mode, keyed per record by device id), which lets the
// tests assert the at-rest bytes leak nothing about the images.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bits/seed256.hpp"
#include "common/types.hpp"
#include "crypto/aes128.hpp"
#include "puf/puf.hpp"

namespace rbc {

struct EnrollmentRecord {
  puf::EnrollmentImage image;
  std::vector<puf::TapkiMask> masks;  // one per PUF address
};

class EnrollmentDatabase {
 public:
  explicit EnrollmentDatabase(const crypto::Aes128::Key& master_key)
      : master_key_(master_key) {}

  /// Enrolls a manufactured device: captures its image, calibrates TAPKI
  /// masks from `calibration_reads` reads per address, and stores the record
  /// encrypted. (The "secure facility" step of the threat model.)
  void enroll(u64 device_id, const puf::SramPufModel& device,
              int calibration_reads, double max_flip_rate, Xoshiro256& rng);

  bool contains(u64 device_id) const {
    return records_.count(device_id) != 0;
  }

  /// Decrypts and returns the record. Throws if the device is unknown.
  EnrollmentRecord load(u64 device_id) const;

  /// Raw encrypted bytes of a record (test access: at-rest ciphertext).
  const Bytes& ciphertext(u64 device_id) const;

  std::size_t size() const noexcept { return records_.size(); }

  /// Persists the database — records stay ciphertext on disk; only the
  /// framing (magic, count, ids, lengths) is plaintext.
  void save(const std::string& path) const;

  /// Loads a database previously written by save(). The master key is needed
  /// for subsequent load() calls, not for reading the file itself. Throws on
  /// missing file, bad magic, or truncation.
  static EnrollmentDatabase load_from_file(const std::string& path,
                                           const crypto::Aes128::Key& key);

 private:
  Bytes encrypt_record(u64 device_id, const EnrollmentRecord& record) const;
  EnrollmentRecord decrypt_record(u64 device_id, const Bytes& blob) const;

  crypto::Aes128::Key master_key_;
  std::map<u64, Bytes> records_;  // device id -> AES-CTR ciphertext
};

}  // namespace rbc
