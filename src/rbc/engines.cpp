#include "rbc/engines.hpp"

#include <cstring>

#include "gpu/salted_kernel.hpp"
#include "sim/security_planner.hpp"

namespace rbc {

namespace {

int resolve_threads(int requested) {
  return requested > 0 ? requested : par::WorkerGroup::default_threads();
}

par::WorkerGroup* resolve_workers(par::WorkerGroup* requested) {
  return requested != nullptr ? requested : &par::WorkerGroup::shared();
}

/// Bridges the runtime digest bytes into the typed search template, and
/// dispatches over (hash, iterator).
template <hash::SeedHash Hash>
SearchResult run_typed(const Seed256& s_init, ByteSpan digest,
                       sim::IterAlgo iter, par::WorkerGroup& workers,
                       const SearchOptions& opts,
                       par::SearchContext* session) {
  typename Hash::digest_type target;
  RBC_CHECK_MSG(digest.size() == target.bytes.size(),
                "digest length does not match hash algorithm");
  std::memcpy(target.bytes.data(), digest.data(), digest.size());

  switch (iter) {
    case sim::IterAlgo::kChase382: {
      comb::ChaseFactory factory;
      return rbc_search<Hash>(s_init, target, factory, workers, opts, {},
                              session);
    }
    case sim::IterAlgo::kAlg515: {
      comb::Algorithm515Factory factory(comb::Alg515Mode::kSuccessor);
      return rbc_search<Hash>(s_init, target, factory, workers, opts, {},
                              session);
    }
    case sim::IterAlgo::kGosper: {
      comb::GosperFactory factory;
      return rbc_search<Hash>(s_init, target, factory, workers, opts, {},
                              session);
    }
  }
  RBC_CHECK_MSG(false, "unknown iterator algorithm");
  return {};
}

SearchResult run_search(const Seed256& s_init, ByteSpan digest,
                        hash::HashAlgo algo, sim::IterAlgo iter,
                        par::WorkerGroup& workers, const SearchOptions& opts,
                        par::SearchContext* session) {
  // All engines search through the batched policies: the multi-lane kernels
  // dispatch on the host CPU at runtime, and results/accounting are
  // equivalent to the scalar policies by construction (see hash/batch.hpp).
  if (algo == hash::HashAlgo::kSha1)
    return run_typed<hash::Sha1BatchSeedHash>(s_init, digest, iter, workers,
                                              opts, session);
  return run_typed<hash::Sha3BatchSeedHash>(s_init, digest, iter, workers,
                                            opts, session);
}

}  // namespace

CpuSearchEngine::CpuSearchEngine(EngineConfig cfg, sim::CpuSpec spec)
    : cfg_(cfg), model_(std::move(spec)),
      workers_(resolve_workers(cfg.workers)) {
  cfg_.host_threads = resolve_threads(cfg_.host_threads);
}

EngineReport CpuSearchEngine::search(const Seed256& s_init, ByteSpan digest,
                                     hash::HashAlgo algo,
                                     const SearchOptions& opts,
                                     par::SearchContext* session) {
  SearchOptions o = opts;
  o.num_threads = cfg_.host_threads;
  EngineReport report;
  report.result =
      run_search(s_init, digest, algo, cfg_.iterator, *workers_, o, session);
  report.modeled_device_seconds = model_.time_for_seeds_s(
      report.result.seeds_hashed, algo, model_.spec().cores);
  report.device_name = model_.spec().name;
  return report;
}

GpuSimSearchEngine::GpuSimSearchEngine(EngineConfig cfg, sim::GpuSpec spec)
    : cfg_(cfg), model_(std::move(spec)),
      workers_(resolve_workers(cfg.workers)) {
  cfg_.host_threads = resolve_threads(cfg_.host_threads);
}

EngineReport GpuSimSearchEngine::search(const Seed256& s_init, ByteSpan digest,
                                        hash::HashAlgo algo,
                                        const SearchOptions& opts,
                                        par::SearchContext* session) {
  SearchOptions o = opts;
  o.num_threads = cfg_.host_threads;
  EngineReport report;
  report.result =
      run_search(s_init, digest, algo, cfg_.iterator, *workers_, o, session);
  report.modeled_device_seconds = model_.time_for_seeds_s(
      report.result.seeds_hashed, algo, cfg_.iterator,
      /*kernels=*/std::max(report.result.distance, 1));
  report.device_name = model_.spec().name;
  return report;
}

ApuSimSearchEngine::ApuSimSearchEngine(EngineConfig cfg, sim::ApuSpec spec)
    : cfg_(cfg), model_(std::move(spec)),
      workers_(resolve_workers(cfg.workers)) {
  cfg_.host_threads = resolve_threads(cfg_.host_threads);
}

EngineReport ApuSimSearchEngine::search(const Seed256& s_init, ByteSpan digest,
                                        hash::HashAlgo algo,
                                        const SearchOptions& opts,
                                        par::SearchContext* session) {
  SearchOptions o = opts;
  o.num_threads = cfg_.host_threads;
  // §3.3: the associative-memory exit flag is checked once per 256-seed
  // batch, not per seed.
  o.check_interval = std::max<u32>(
      o.check_interval,
      static_cast<u32>(model_.calibration().apu_batch_size));
  EngineReport report;
  report.result =
      run_search(s_init, digest, algo, cfg_.iterator, *workers_, o, session);
  report.modeled_device_seconds =
      model_.time_for_seeds_s(report.result.seeds_hashed, algo);
  report.device_name = model_.spec().name;
  return report;
}

double CpuSearchEngine::modeled_exhaustive_time_s(int d,
                                                  hash::HashAlgo algo) const {
  return model_.exhaustive_time_s(d, algo, model_.spec().cores);
}

double GpuSimSearchEngine::modeled_exhaustive_time_s(
    int d, hash::HashAlgo algo) const {
  return model_.exhaustive_time_s(d, algo, cfg_.iterator);
}

double ApuSimSearchEngine::modeled_exhaustive_time_s(
    int d, hash::HashAlgo algo) const {
  return model_.exhaustive_time_s(d, algo);
}

MultiGpuSimSearchEngine::MultiGpuSimSearchEngine(EngineConfig cfg,
                                                 sim::GpuSpec spec)
    : cfg_(cfg), model_(sim::GpuModel(std::move(spec))),
      workers_(resolve_workers(cfg.workers)) {
  RBC_CHECK_MSG(cfg_.num_devices >= 1, "need at least one device");
  cfg_.host_threads = resolve_threads(cfg_.host_threads);
}

EngineReport MultiGpuSimSearchEngine::search(const Seed256& s_init,
                                             ByteSpan digest,
                                             hash::HashAlgo algo,
                                             const SearchOptions& opts,
                                             par::SearchContext* session) {
  SearchOptions o = opts;
  o.num_threads = cfg_.host_threads;
  EngineReport report;
  report.result =
      run_search(s_init, digest, algo, cfg_.iterator, *workers_, o, session);
  report.modeled_device_seconds = model_.time_for_seeds_s(
      report.result.seeds_hashed, cfg_.num_devices, algo,
      /*early_exit=*/opts.early_exit, cfg_.iterator);
  report.device_name = std::to_string(cfg_.num_devices) + "x " +
                       model_.gpu().spec().name;
  return report;
}

double MultiGpuSimSearchEngine::modeled_exhaustive_time_s(
    int d, hash::HashAlgo algo) const {
  const u64 seeds = static_cast<u64>(comb::exhaustive_search_count(d));
  return model_.time_for_seeds_s(seeds, cfg_.num_devices, algo,
                                 /*early_exit=*/false, cfg_.iterator);
}

GpuEmulatedBackend::GpuEmulatedBackend(EngineConfig cfg, sim::GpuSpec spec)
    : cfg_(cfg), model_(std::move(spec)),
      workers_(resolve_workers(cfg.workers)) {
  cfg_.host_threads = resolve_threads(cfg_.host_threads);
}

EngineReport GpuEmulatedBackend::search(const Seed256& s_init, ByteSpan digest,
                                        hash::HashAlgo algo,
                                        const SearchOptions& opts,
                                        par::SearchContext* session) {
  // Partition width per shell: a few threads per host worker is enough to
  // exercise the kernel structure; snapshot walks bound the useful width.
  const auto threads_for_shell = [this](int) {
    return 4 * cfg_.host_threads;
  };
  EngineReport report;
  auto run = [&](auto hash) {
    using Hash = decltype(hash);
    typename Hash::digest_type target;
    RBC_CHECK_MSG(digest.size() == target.bytes.size(),
                  "digest length does not match hash algorithm");
    std::memcpy(target.bytes.data(), digest.data(), digest.size());
    report.result = gpu::gpu_emulated_search<Hash>(
        *workers_, s_init, target, opts.max_distance, threads_for_shell,
        /*threads_per_block=*/32, hash, opts.timeout_s, session);
  };
  if (algo == hash::HashAlgo::kSha1) {
    run(hash::Sha1BatchSeedHash{});
  } else {
    run(hash::Sha3BatchSeedHash{});
  }
  report.modeled_device_seconds = model_.time_for_seeds_s(
      report.result.seeds_hashed, algo, sim::IterAlgo::kChase382,
      std::max(report.result.distance, 1));
  report.device_name = model_.spec().name + " (kernel emulation)";
  return report;
}

double GpuEmulatedBackend::modeled_exhaustive_time_s(
    int d, hash::HashAlgo algo) const {
  return model_.exhaustive_time_s(d, algo);
}

HeteroSearchEngine::HeteroSearchEngine(EngineConfig cfg, sim::CpuSpec cpu_spec,
                                       sim::GpuSpec gpu_spec)
    : cfg_(cfg), cpu_model_(std::move(cpu_spec)),
      gpu_model_(std::move(gpu_spec)),
      workers_(resolve_workers(cfg.workers)) {
  cfg_.host_threads = resolve_threads(cfg_.host_threads);
  RBC_CHECK_MSG(cfg_.device_threads >= 1,
                "hetero backend needs at least one device thread");
}

EngineReport HeteroSearchEngine::search(const Seed256& s_init, ByteSpan digest,
                                        hash::HashAlgo algo,
                                        const SearchOptions& opts,
                                        par::SearchContext* session) {
  EngineReport report;
  u64 device_seeds = 0;
  auto run = [&](auto hash) {
    using Hash = decltype(hash);
    typename Hash::digest_type target;
    RBC_CHECK_MSG(digest.size() == target.bytes.size(),
                  "digest length does not match hash algorithm");
    std::memcpy(target.bytes.data(), digest.data(), digest.size());
    report.result = gpu::hetero_cosearch<Hash>(
        *workers_, s_init, target, opts, cfg_.host_threads,
        cfg_.device_threads, /*threads_per_block=*/32, hash, session,
        &device_seeds);
  };
  if (algo == hash::HashAlgo::kSha1) {
    run(hash::Sha1BatchSeedHash{});
  } else {
    run(hash::Sha3BatchSeedHash{});
  }
  // CPU and GPU drain the same ball concurrently: combine the platforms as
  // parallel servers (aggregate rate = sum of rates → harmonic time).
  const u64 seeds = report.result.seeds_hashed;
  const double t_cpu =
      cpu_model_.time_for_seeds_s(seeds, algo, cpu_model_.spec().cores);
  const double t_gpu = gpu_model_.time_for_seeds_s(
      seeds, algo, sim::IterAlgo::kChase382,
      /*kernels=*/std::max(report.result.distance, 1));
  report.modeled_device_seconds = 1.0 / (1.0 / t_cpu + 1.0 / t_gpu);
  report.device_name =
      cpu_model_.spec().name + " + " + gpu_model_.spec().name;
  return report;
}

double HeteroSearchEngine::modeled_exhaustive_time_s(
    int d, hash::HashAlgo algo) const {
  const double t_cpu =
      cpu_model_.exhaustive_time_s(d, algo, cpu_model_.spec().cores);
  const double t_gpu =
      gpu_model_.exhaustive_time_s(d, algo, sim::IterAlgo::kChase382);
  return 1.0 / (1.0 / t_cpu + 1.0 / t_gpu);
}

int plan_ca_distance(const SearchBackend& backend, hash::HashAlgo algo,
                     double threshold_s, double comm_time_s,
                     int max_considered) {
  const auto plan = sim::plan_injected_noise(
      [&](int d) { return backend.modeled_exhaustive_time_s(d, algo); },
      threshold_s, comm_time_s, max_considered);
  return plan.max_distance;
}

std::unique_ptr<SearchBackend> make_backend(std::string_view device,
                                            EngineConfig cfg) {
  if (device == "cpu") return std::make_unique<CpuSearchEngine>(cfg);
  if (device == "gpu") {
    if (cfg.num_devices > 1)
      return std::make_unique<MultiGpuSimSearchEngine>(cfg);
    return std::make_unique<GpuSimSearchEngine>(cfg);
  }
  if (device == "gpu-emu") return std::make_unique<GpuEmulatedBackend>(cfg);
  if (device == "apu") return std::make_unique<ApuSimSearchEngine>(cfg);
  if (device == "hetero") return std::make_unique<HeteroSearchEngine>(cfg);
  RBC_CHECK_MSG(false,
                "unknown backend device (want cpu|gpu|apu|gpu-emu|hetero)");
  return nullptr;
}

}  // namespace rbc
