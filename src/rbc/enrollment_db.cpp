#include "rbc/enrollment_db.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace rbc {

namespace {

/// AES-128-CTR keystream XOR, nonce derived from the device id. CTR is its
/// own inverse, so one function serves encrypt and decrypt.
void aes_ctr_xor(const crypto::Aes128::Key& key, u64 nonce, MutByteSpan data) {
  const crypto::Aes128 cipher(key);
  crypto::Aes128::Block counter{};
  std::memcpy(counter.data(), &nonce, 8);
  for (std::size_t off = 0; off < data.size(); off += 16) {
    u64 block_index = off / 16;
    std::memcpy(counter.data() + 8, &block_index, 8);
    const auto keystream = cipher.encrypt(counter);
    const std::size_t n = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= keystream[i];
  }
}

void put_seed(Bytes& out, const Seed256& s) {
  const auto b = s.to_bytes();
  out.insert(out.end(), b.begin(), b.end());
}

Seed256 take_seed(const Bytes& in, std::size_t& pos) {
  RBC_CHECK_MSG(pos + Seed256::kBytes <= in.size(),
                "corrupt enrollment record");
  const Seed256 s =
      Seed256::from_bytes(ByteSpan{in.data() + pos, Seed256::kBytes});
  pos += Seed256::kBytes;
  return s;
}

}  // namespace

EnrollmentDatabase::EnrollmentDatabase(const crypto::Aes128::Key& master_key)
    : master_key_(master_key),
      stripes_(std::make_unique<std::array<Stripe, kAuthorityStripes>>()) {}

void EnrollmentDatabase::enroll(u64 device_id, const puf::SramPufModel& device,
                                int calibration_reads, double max_flip_rate,
                                Xoshiro256& rng) {
  // Capture and calibrate OUTSIDE the stripe lock — the PUF reads are the
  // expensive part and touch no shared state.
  EnrollmentRecord record;
  record.image = puf::EnrollmentImage::capture(device);
  record.masks.reserve(device.num_addresses());
  record.profiles.reserve(device.num_addresses());
  for (u32 a = 0; a < device.num_addresses(); ++a) {
    // One shared read pass per address yields both the TAPKI mask and the
    // reliability profile — same RNG stream as mask-only calibration.
    puf::Calibration cal = puf::calibrate_cell_stats(
        device, a, calibration_reads, max_flip_rate, rng);
    record.masks.push_back(cal.mask);
    record.profiles.push_back(cal.profile);
  }
  Bytes blob = encrypt_record(device_id, record);

  Stripe& stripe = stripe_for(device_id);
  std::lock_guard lock(stripe.mutex);
  RBC_CHECK_MSG(stripe.records.count(device_id) == 0,
                "device already enrolled");
  stripe.records[device_id] = std::move(blob);
}

bool EnrollmentDatabase::contains(u64 device_id) const {
  Stripe& stripe = stripe_for(device_id);
  std::lock_guard lock(stripe.mutex);
  return stripe.records.count(device_id) != 0;
}

EnrollmentRecord EnrollmentDatabase::load(u64 device_id) const {
  return decrypt_record(device_id, ciphertext(device_id));
}

Bytes EnrollmentDatabase::ciphertext(u64 device_id) const {
  Stripe& stripe = stripe_for(device_id);
  std::lock_guard lock(stripe.mutex);
  auto it = stripe.records.find(device_id);
  RBC_CHECK_MSG(it != stripe.records.end(), "device not enrolled");
  return it->second;
}

std::size_t EnrollmentDatabase::size() const noexcept {
  std::size_t total = 0;
  for (const Stripe& stripe : *stripes_) {
    std::lock_guard lock(stripe.mutex);
    total += stripe.records.size();
  }
  return total;
}

std::size_t EnrollmentDatabase::stripe_size(u32 stripe_index) const {
  RBC_CHECK(stripe_index < kAuthorityStripes);
  const Stripe& stripe = (*stripes_)[stripe_index];
  std::lock_guard lock(stripe.mutex);
  return stripe.records.size();
}

namespace {
constexpr char kDbMagic[8] = {'R', 'B', 'C', 'D', 'B', 'v', '0', '1'};

void write_u64(std::ofstream& out, u64 v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

u64 read_u64(std::ifstream& in) {
  char buf[8];
  in.read(buf, 8);
  RBC_CHECK_MSG(in.gcount() == 8, "truncated enrollment database file");
  u64 v;
  std::memcpy(&v, buf, 8);
  return v;
}
}  // namespace

void EnrollmentDatabase::save(const std::string& path) const {
  // Snapshot all stripes first (each under its own lock), then write sorted
  // by device id — the v01 file layout predates the striped store and is
  // kept byte-identical.
  std::vector<std::pair<u64, Bytes>> entries;
  for (const Stripe& stripe : *stripes_) {
    std::lock_guard lock(stripe.mutex);
    for (const auto& [device_id, blob] : stripe.records)
      entries.emplace_back(device_id, blob);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RBC_CHECK_MSG(out.good(), "cannot open database file for writing");
  out.write(kDbMagic, sizeof(kDbMagic));
  write_u64(out, entries.size());
  for (const auto& [device_id, blob] : entries) {
    write_u64(out, device_id);
    write_u64(out, blob.size());
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }
  RBC_CHECK_MSG(out.good(), "database write failed");
}

EnrollmentDatabase EnrollmentDatabase::load_from_file(
    const std::string& path, const crypto::Aes128::Key& key) {
  std::ifstream in(path, std::ios::binary);
  RBC_CHECK_MSG(in.good(), "cannot open database file for reading");
  char magic[sizeof(kDbMagic)];
  in.read(magic, sizeof(magic));
  RBC_CHECK_MSG(in.gcount() == sizeof(magic) &&
                    std::memcmp(magic, kDbMagic, sizeof(magic)) == 0,
                "not an RBC enrollment database file");
  EnrollmentDatabase db(key);
  const u64 count = read_u64(in);
  for (u64 i = 0; i < count; ++i) {
    const u64 device_id = read_u64(in);
    const u64 len = read_u64(in);
    RBC_CHECK_MSG(len < (1ULL << 30), "implausible record length");
    Bytes blob(len);
    in.read(reinterpret_cast<char*>(blob.data()),
            static_cast<std::streamsize>(len));
    RBC_CHECK_MSG(static_cast<u64>(in.gcount()) == len,
                  "truncated enrollment database file");
    db.stripe_for(device_id).records[device_id] = std::move(blob);
  }
  return db;
}

Bytes EnrollmentDatabase::encrypt_record(u64 device_id,
                                         const EnrollmentRecord& record) const {
  Bytes plain;
  const u32 n = record.image.num_addresses();
  RBC_CHECK(record.masks.size() == n);
  RBC_CHECK(record.profiles.empty() || record.profiles.size() == n);
  for (int i = 0; i < 4; ++i) plain.push_back(static_cast<u8>(n >> (8 * i)));
  for (u32 a = 0; a < n; ++a) put_seed(plain, record.image.word(a));
  for (u32 a = 0; a < n; ++a) put_seed(plain, record.masks[a].stable_bits());
  // Profiles go LAST: a CTR ciphertext truncated to the legacy length is
  // exactly the legacy ciphertext, so old files stay readable and new blobs
  // differ from old ones only by the appended profile bytes.
  for (const puf::ReliabilityProfile& profile : record.profiles) {
    const auto& w = profile.weights();
    plain.insert(plain.end(), w.begin(), w.end());
  }
  aes_ctr_xor(master_key_, device_id, plain);
  return plain;
}

EnrollmentRecord EnrollmentDatabase::decrypt_record(u64 device_id,
                                                    const Bytes& blob) const {
  Bytes plain = blob;
  aes_ctr_xor(master_key_, device_id, plain);
  RBC_CHECK_MSG(plain.size() >= 4, "corrupt enrollment record");
  u32 n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<u32>(plain[static_cast<unsigned>(i)]) << (8 * i);
  const std::size_t legacy_size = 4 + static_cast<std::size_t>(n) * 64;
  const std::size_t profiled_size =
      legacy_size +
      static_cast<std::size_t>(n) * puf::ReliabilityProfile::kBits;
  const bool has_profiles = plain.size() == profiled_size;
  RBC_CHECK_MSG(has_profiles || plain.size() == legacy_size,
                "corrupt enrollment record");

  std::size_t pos = 4;
  std::vector<Seed256> words;
  words.reserve(n);
  for (u32 a = 0; a < n; ++a) words.push_back(take_seed(plain, pos));
  std::vector<Seed256> stables;
  stables.reserve(n);
  for (u32 a = 0; a < n; ++a) stables.push_back(take_seed(plain, pos));

  // Rebuild the record through a fake device capture: EnrollmentImage and
  // TapkiMask expose no mutable constructors, so serialize via friendship-
  // free helpers below.
  EnrollmentRecord record;
  record.image = puf::EnrollmentImage::from_words(std::move(words));
  record.masks.reserve(n);
  for (u32 a = 0; a < n; ++a)
    record.masks.push_back(puf::TapkiMask::from_stable_bits(stables[a]));
  if (has_profiles) {
    record.profiles.reserve(n);
    for (u32 a = 0; a < n; ++a) {
      record.profiles.push_back(puf::ReliabilityProfile::from_bytes(
          ByteSpan{plain.data() + pos, puf::ReliabilityProfile::kBits}));
      pos += puf::ReliabilityProfile::kBits;
    }
  }
  return record;
}

}  // namespace rbc
