#include "rbc/protocol.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <optional>

#include "hash/keccak.hpp"
#include "hash/sha1.hpp"
#include "obs/trace.hpp"

namespace rbc {

namespace {

/// Hashes into a fixed-size stack buffer and copies once into the wire
/// Bytes. Digest COMPARISONS never come through here — they use
/// hash::seed_digest_equals on stack digests (no per-check allocation).
Bytes hash_seed_bytes(const Seed256& seed, hash::HashAlgo algo) {
  std::array<u8, 32> buf;
  std::size_t len;
  if (algo == hash::HashAlgo::kSha1) {
    const hash::Digest160 d = hash::sha1_seed(seed);
    len = d.bytes.size();
    std::memcpy(buf.data(), d.bytes.data(), len);
  } else {
    const hash::Digest256 d = hash::sha3_256_seed(seed);
    len = d.bytes.size();
    std::memcpy(buf.data(), d.bytes.data(), len);
  }
  return Bytes(buf.data(), buf.data() + len);
}

}  // namespace

net::DigestSubmission Client::respond(const net::Challenge& challenge) {
  // Step: read the PUF at the challenged address.
  Seed256 reading = device_->read(challenge.puf_address, rng_);

  // TAPKI: pin unstable cells using the helper mask from the CA. The client
  // does not know the enrolled word; pinning unstable cells to a fixed value
  // (zero) on BOTH sides is equivalent for the search, but the paper's TAPKI
  // pins to the enrolled values which the helper data encodes implicitly.
  // Here the mask travels with the challenge, and masked-out bits are
  // zeroed identically by client and server.
  if (challenge.tapki_enabled) {
    reading &= challenge.stable_mask;
  }

  // §4.1 noise policy: ensure the search difficulty is at the configured
  // level by injecting (or trimming) flips on stable cells. The reference is
  // the client's OWN majority vote over repeated reads (no access to the
  // server's enrolled image) — on TAPKI-stable cells the vote converges to
  // the enrolled value with overwhelming probability.
  int target_distance = cfg_.injected_distance;
  if (target_distance == ClientConfig::kFollowChallenge) {
    target_distance =
        challenge.requested_noise == net::Challenge::kNoNoiseRequest
            ? -1
            : challenge.requested_noise;
  }
  if (target_distance >= 0) {
    Seed256 reference = puf::majority_read(*device_, challenge.puf_address,
                                           cfg_.majority_reads, rng_);
    if (challenge.tapki_enabled) reference &= challenge.stable_mask;
    reading = puf::adjust_to_distance(reading, reference, target_distance,
                                      challenge.stable_mask, rng_);
  }

  last_seed_ = reading;

  net::DigestSubmission submission;
  submission.hash_algo = cfg_.hash_algo;
  submission.digest = hash_seed_bytes(reading, cfg_.hash_algo);
  return submission;
}

net::Challenge CertificateAuthority::issue_challenge(
    const net::HandshakeRequest& handshake) {
  RBC_CHECK_MSG(db_.contains(handshake.device_id),
                "handshake from un-enrolled device");
  const EnrollmentRecord record = db_.load(handshake.device_id);
  net::Challenge challenge;
  {
    // Striped challenge RNG: only devices hashing to the same stripe share
    // this mutex, so shards draw challenges without cross-shard contention.
    RngStripe& stripe = (*rng_stripes_)[stripe_of(handshake.device_id)];
    std::lock_guard lock(stripe.mutex);
    challenge.puf_address = static_cast<u32>(
        stripe.rng.next_below(record.image.num_addresses()));
  }
  challenge.tapki_enabled = cfg_.tapki_enabled;
  challenge.stable_mask =
      cfg_.tapki_enabled
          ? record.masks[challenge.puf_address].stable_bits()
          : Seed256::ones();
  if (cfg_.request_noise_injection) {
    challenge.requested_noise = static_cast<u8>(cfg_.max_distance);
  }
  return challenge;
}

net::AuthResult CertificateAuthority::process_digest(
    const net::HandshakeRequest& handshake, const net::Challenge& challenge,
    const net::DigestSubmission& submission, EngineReport* report_out,
    par::SearchContext* session, SearchOffload* offload,
    std::optional<SearchOrder> search_order) {
  RBC_CHECK_MSG(db_.contains(handshake.device_id),
                "digest from un-enrolled device");
  RBC_CHECK_MSG(submission.hash_algo == handshake.hash_algo,
                "digest hash does not match handshake");

  const EnrollmentRecord record = db_.load(handshake.device_id);
  // Step 1: S_init from the PUF image, masked exactly as the client masks.
  Seed256 s_init = record.image.word(challenge.puf_address);
  if (challenge.tapki_enabled) s_init &= challenge.stable_mask;

  SearchOptions opts;
  opts.max_distance = cfg_.max_distance;
  opts.early_exit = true;
  opts.timeout_s = cfg_.time_threshold_s;
  // Reliability order needs the record's profile for this address; records
  // enrolled before profiles existed fall back to canonical order.
  const SearchOrder order = search_order.value_or(cfg_.search_order);
  if (order == SearchOrder::kReliability &&
      challenge.puf_address < record.profiles.size()) {
    opts.order = SearchOrder::kReliability;
    opts.reliability = std::make_shared<const comb::ReliabilityOrder>(
        comb::ReliabilityOrder::from_weights(
            record.profiles[challenge.puf_address].weights().data()));
  }
  // Offer the search to the serving layer's fused engine first; a decline
  // (oversized ball, shutdown, no offload) runs the CA's own backend.
  std::optional<EngineReport> fused;
  if (offload != nullptr) {
    fused = offload->try_search(s_init, submission.digest,
                                submission.hash_algo, opts, session);
  }
  const EngineReport report =
      fused.has_value()
          ? *std::move(fused)
          : backend_->search(s_init, submission.digest, submission.hash_algo,
                             opts, session);
  if (report_out != nullptr) *report_out = report;

  net::AuthResult result;
  result.search_seconds = report.result.host_seconds;
  result.timed_out = report.result.timed_out;
  if (!report.result.found) {
    result.authenticated = false;
    return result;
  }

  // Steps 7-9: salt the recovered seed, generate the public key once, and
  // register it.
  const Seed256 salted = cfg_.salt.apply(report.result.seed);
  Bytes public_key =
      crypto::generate_public_key(salted, handshake.keygen_algo);
  ra_->update(handshake.device_id, std::move(public_key));

  result.authenticated = true;
  result.found_distance = report.result.distance;
  return result;
}

namespace {

/// Stop-and-wait ARQ over a (possibly lossy) channel pair. The exchange is
/// lock-step request/response, so the driver co-simulates both endpoints:
/// a transfer sends one sequenced frame and drains the receiver's inbox for
/// it; anything damaged (checksum), stale (old sequence number) or absent
/// (dropped) costs the sender a response timeout — charged to both logical
/// clocks, slept in realtime mode — before the bounded-backoff retransmit.
/// Duplicate fault copies of frame k survive in the inbox until the next
/// same-direction transfer, whose drain discards them by sequence number.
class ReliableLink {
 public:
  enum class Error : u8 {
    kRetriesExhausted,  // max_attempts sends never produced an intact frame
    kDeadline,          // the session deadline expired mid-retry
  };

  ReliableLink(net::Channel& client_end, net::Channel& ca_end,
               const RetryPolicy& policy, par::SearchContext* ctx)
      : client_end_(client_end), ca_end_(ca_end), policy_(policy), ctx_(ctx) {
    policy_.validate();
  }

  Expected<net::Message, Error> transfer(net::Channel& src, net::Channel& dst,
                                         const net::Message& msg) {
    const Bytes payload = net::serialize(msg);
    u32& seq = (&src == &client_end_) ? client_to_ca_seq_ : ca_to_client_seq_;
    for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
      // Retries charge the session's budget: once the deadline has expired
      // the driver stops retransmitting instead of finishing the backoff
      // schedule against a client that can no longer be answered in time.
      if (ctx_ != nullptr && ctx_->check_deadline())
        return unexpected(Error::kDeadline);
      if (attempt > 0) {
        ++stats_.retransmits;
        // Trace seam: each retransmission is a point event carrying the
        // attempt number and the channel's LOGICAL clock, so a flight
        // recording shows where the backoff schedule spent the budget.
        if (ctx_ != nullptr) {
          if (obs::SessionTrace* trace = ctx_->trace()) {
            trace->event(obs::SpanKind::kRetransmit,
                         static_cast<u32>(attempt), seq, src.elapsed_s());
          }
        }
      }
      src.send_frame(net::seal_seq_frame(seq, payload));
      while (dst.has_message()) {
        const Bytes raw = dst.receive_raw();
        const auto envelope = net::open_seq_frame(raw);
        if (!envelope.has_value()) {
          ++stats_.corrupt_discarded;
          continue;
        }
        if (envelope->seq != seq) {
          ++stats_.duplicates_suppressed;  // stale copy of a delivered frame
          continue;
        }
        const auto decoded = net::deserialize(envelope->payload);
        if (!decoded.has_value()) {
          // Checksum collision or header damage that still framed: treat
          // exactly like a lost frame.
          ++stats_.corrupt_discarded;
          continue;
        }
        ++seq;
        return decoded.value();
      }
      // Nothing intact arrived: response timeout, exponential backoff.
      ++stats_.timeouts;
      double wait = policy_.timeout_s;
      for (int i = 0; i < attempt; ++i) wait *= policy_.backoff;
      src.charge_link_time(std::min(wait, policy_.max_timeout_s));
    }
    return unexpected(Error::kRetriesExhausted);
  }

  const net::LinkStats& stats() const noexcept { return stats_; }

 private:
  net::Channel& client_end_;
  net::Channel& ca_end_;
  RetryPolicy policy_;
  par::SearchContext* ctx_;
  u32 client_to_ca_seq_ = 0;
  u32 ca_to_client_seq_ = 0;
  net::LinkStats stats_;
};

/// Per-direction fork salts: each endpoint's outbound fault stream must be
/// independent, and both must be pure functions of the session plan's seed.
constexpr u64 kClientTxSalt = 0x0C11E27;
constexpr u64 kCaTxSalt = 0x0CA5E27;

/// The Fig. 1 exchange, generic over plain authorities or shard-scoped
/// views (both expose issue_challenge / process_digest / lookup). With an
/// active fault plan the four messages travel as sequenced envelopes under
/// the ARQ driver; otherwise the original lossless path runs unchanged
/// (byte-identical wire format, identical clock accounting).
template <typename Ca, typename Ra>
SessionReport run_exchange(Client& client, Ca&& ca, Ra&& ra,
                           net::LatencyModel latency,
                           par::SearchContext* session_ctx,
                           const LinkOptions* link, SearchOffload* offload,
                           std::optional<SearchOrder> search_order) {
  const bool lossy = link != nullptr && link->faults.active();
  net::Channel client_end{latency, lossy ? link->faults.fork(kClientTxSalt)
                                         : net::FaultPlan()};
  net::Channel ca_end{latency, lossy ? link->faults.fork(kCaTxSalt)
                                     : net::FaultPlan()};
  net::Channel::connect(client_end, ca_end);
  ReliableLink arq(client_end, ca_end,
                   lossy ? link->retry : RetryPolicy{}, session_ctx);

  SessionReport session;

  // Delivers one protocol message, lossless or via ARQ. nullopt means the
  // transport gave up (retries exhausted or deadline expired mid-retry).
  auto deliver = [&](net::Channel& src, net::Channel& dst,
                     const net::Message& msg) -> std::optional<net::Message> {
    if (!lossy) {
      src.send(msg);
      auto received = dst.receive();
      RBC_CHECK(received.has_value());
      return std::move(received).value();
    }
    auto received = arq.transfer(src, dst, msg);
    if (!received.has_value()) {
      session.transport_failed = true;
      return std::nullopt;
    }
    return std::move(received).value();
  };

  // Accounting shared by the abandoned and completed paths.
  auto finish = [&]() -> SessionReport& {
    session.comm_time_s = client_end.elapsed_s();
    session.total_time_s = session.comm_time_s + session.result.search_seconds;
    session.link.merge(arq.stats());
    session.link.merge(client_end.link_stats());
    session.link.merge(ca_end.link_stats());
    return session;
  };

  // 1. Handshake.
  net::HandshakeRequest handshake;
  handshake.device_id = client.config().device_id;
  handshake.hash_algo = client.config().hash_algo;
  handshake.keygen_algo = client.config().keygen_algo;
  const auto handshake_msg = deliver(client_end, ca_end,
                                     net::Message{handshake});
  if (!handshake_msg) return finish();

  // 2. Challenge.
  const net::Challenge challenge = ca.issue_challenge(
      std::get<net::HandshakeRequest>(*handshake_msg));
  const auto challenge_msg = deliver(ca_end, client_end,
                                     net::Message{challenge});
  if (!challenge_msg) return finish();

  // 3. Client reads the PUF (charged as local time) and submits M1.
  client_end.charge_local_time(client.config().puf_read_time_s);
  const net::DigestSubmission submission =
      client.respond(std::get<net::Challenge>(*challenge_msg));
  const auto submission_msg = deliver(client_end, ca_end,
                                      net::Message{submission});
  if (!submission_msg) return finish();

  // 4-9. Search + key registration on the CA.
  session.result = ca.process_digest(
      handshake, challenge, std::get<net::DigestSubmission>(*submission_msg),
      &session.engine, session_ctx, offload, search_order);
  const auto result_msg = deliver(ca_end, client_end,
                                  net::Message{session.result});
  if (!result_msg) return finish();

  if (const auto pk = ra.lookup(handshake.device_id)) {
    session.registered_public_key = *pk;
  }
  return finish();
}

}  // namespace

SessionReport run_authentication(Client& client, CertificateAuthority& ca,
                                 RegistrationAuthority& ra,
                                 net::LatencyModel latency,
                                 par::SearchContext* session_ctx,
                                 const LinkOptions* link,
                                 SearchOffload* offload,
                                 std::optional<SearchOrder> search_order) {
  return run_exchange(client, ca, ra, std::move(latency), session_ctx, link,
                      offload, search_order);
}

SessionReport run_authentication(Client& client,
                                 CertificateAuthority::ShardView ca,
                                 RegistrationAuthority::ShardView ra,
                                 net::LatencyModel latency,
                                 par::SearchContext* session_ctx,
                                 const LinkOptions* link,
                                 SearchOffload* offload,
                                 std::optional<SearchOrder> search_order) {
  return run_exchange(client, ca, ra, std::move(latency), session_ctx, link,
                      offload, search_order);
}

}  // namespace rbc
