// The RBC-SALTED search core — Algorithm 1 of the paper.
//
// Given the enrolled seed S_init and the client's message digest M1, search
// the Hamming ball around S_init shell by shell: every thread owns a
// disjoint slice of each shell's combination sequence, XORs each mask into
// S_init, hashes, and compares against M1. The first match triggers the
// early-exit token (lines 7/15); a time budget T bounds the whole search
// (§3: "RBC uses a time threshold for which it must authenticate a client").
//
// The function template is monomorphized over the hash policy and the seed
// iterator factory so the hot loop compiles to straight-line code — the same
// reason the paper fuses seed iteration and hashing into one GPU kernel
// (§4.5: "we do not time the seed iteration separately from SHA-3, as they
// execute in the same kernel").
#pragma once

#include <mutex>
#include <optional>

#include "bits/seed256.hpp"
#include "combinatorics/shell.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "hash/traits.hpp"
#include "parallel/early_exit.hpp"
#include "parallel/thread_pool.hpp"

namespace rbc {

struct SearchOptions {
  /// Maximum Hamming distance d to search (inclusive).
  int max_distance = 3;
  /// Worker threads (p in Algorithm 1).
  int num_threads = 1;
  /// Seeds iterated between early-exit flag checks (§4.4 knob).
  u32 check_interval = 1;
  /// When false, the search visits every seed up to d even after a match —
  /// the "exhaustive" timing scenario of the evaluation.
  bool early_exit = true;
  /// Authentication time threshold T, seconds of host wall clock.
  double timeout_s = 20.0;
};

struct SearchResult {
  bool found = false;
  Seed256 seed;              // the matching candidate, when found
  int distance = -1;         // shell where the match occurred
  u64 seeds_hashed = 0;      // total candidates hashed across threads
  double host_seconds = 0.0; // wall-clock duration of the search
  bool timed_out = false;    // T exceeded before the ball was exhausted
};

/// Searches for a seed whose hash equals `target`, using `pool` for the
/// data-parallel shells. The factory provides per-thread iterators over each
/// shell (Gosper / Algorithm 515 / Chase 382 all model the concept).
template <hash::SeedHash Hash, comb::SeedIteratorFactory Factory>
SearchResult rbc_search(const Seed256& s_init,
                        const typename Hash::digest_type& target,
                        Factory& factory, par::ThreadPool& pool,
                        const SearchOptions& opts, const Hash& hash = {}) {
  RBC_CHECK(opts.max_distance >= 0 && opts.max_distance <= comb::kMaxK);
  RBC_CHECK(opts.num_threads >= 1 && opts.num_threads <= pool.size());

  SearchResult result;
  WallTimer timer;
  par::EarlyExitToken token;
  std::mutex found_mutex;
  std::optional<std::pair<Seed256, int>> found;

  // Lines 4-8: distance 0 — hash S_init itself (thread r = 0's job).
  result.seeds_hashed = 1;
  if (hash(s_init) == target) {
    result.found = true;
    result.seed = s_init;
    result.distance = 0;
    result.host_seconds = timer.elapsed_s();
    return result;
  }

  const int p = opts.num_threads;
  std::vector<u64> hashed_per_thread(static_cast<std::size_t>(p), 0);

  // Line 9: loop over Hamming shells 1..d.
  for (int k = 1; k <= opts.max_distance; ++k) {
    if (opts.early_exit && token.triggered()) break;
    if (timer.elapsed_s() > opts.timeout_s) {
      result.timed_out = true;
      break;
    }
    factory.prepare(k, p);

    pool.parallel_workers([&](int worker) {
      if (worker >= p) return;
      auto it = factory.make(worker);
      par::CheckThrottle throttle(token, opts.check_interval);
      u64 local_hashed = 0;
      Seed256 mask;
      // Lines 11-16: iterate this thread's slice of the shell.
      while (it.next(mask)) {
        if (opts.early_exit && throttle.should_stop()) break;
        const Seed256 candidate = s_init ^ mask;
        ++local_hashed;
        if (hash(candidate) == target) {
          {
            std::lock_guard lock(found_mutex);
            if (!found) found = {candidate, k};
          }
          token.trigger();  // line 15: NotifyAllThreadsToExitSearch
          if (opts.early_exit) break;
        }
        // The time threshold is checked at a coarse cadence to keep the
        // clock read off the per-seed fast path.
        if ((local_hashed & 0xffff) == 0 &&
            timer.elapsed_s() > opts.timeout_s) {
          token.trigger();
          break;
        }
      }
      hashed_per_thread[static_cast<std::size_t>(worker)] += local_hashed;
    });

    if (timer.elapsed_s() > opts.timeout_s && !found) result.timed_out = true;
    if (result.timed_out) break;
  }

  for (u64 h : hashed_per_thread) result.seeds_hashed += h;
  if (found) {
    result.found = true;
    result.seed = found->first;
    result.distance = found->second;
    result.timed_out = false;
  }
  result.host_seconds = timer.elapsed_s();
  return result;
}

}  // namespace rbc
