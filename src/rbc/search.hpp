// The RBC-SALTED search core — Algorithm 1 of the paper.
//
// Given the enrolled seed S_init and the client's message digest M1, search
// the Hamming ball around S_init shell by shell: every work unit owns a
// disjoint slice of each shell's combination sequence, XORs each mask into
// S_init, hashes, and compares against M1. The first match signals the
// session's SearchContext (lines 7/15); the context's deadline bounds the
// whole search (§3: "RBC uses a time threshold for which it must
// authenticate a client").
//
// Concurrency: the shells run as SPMD rounds on a WorkerGroup, so any number
// of sessions can search at once over one set of worker threads. All stop
// conditions flow through the SearchContext:
//   * match found   — stops the round under the early-exit policy only;
//   * cancellation  — deadline expiry or an external cancel(); honored
//                     UNCONDITIONALLY, including in exhaustive mode (a
//                     timed-out exhaustive search must stop promptly, not at
//                     each worker's private clock cadence).
//
// The function template is monomorphized over the hash policy and the seed
// iterator factory so the hot loop compiles to straight-line code — the same
// reason the paper fuses seed iteration and hashing into one GPU kernel
// (§4.5: "we do not time the seed iteration separately from SHA-3, as they
// execute in the same kernel").
//
// Batched hashing: when the hash policy is a BatchSeedHash (hash/batch.hpp),
// each unit refills a small candidate block from its iterator slice and
// compresses all lanes in one multi-buffer call, rejecting non-matches on a
// 32-bit digest-head compare before the full comparison. Scalar policies run
// the same loop with a block of one, so results and accounting are identical
// across policies.
#pragma once

#include <array>
#include <cstring>
#include <mutex>
#include <optional>

#include "bits/seed256.hpp"
#include "combinatorics/shell.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "hash/batch.hpp"
#include "hash/traits.hpp"
#include "parallel/early_exit.hpp"
#include "parallel/search_context.hpp"
#include "parallel/worker_group.hpp"

namespace rbc {

struct SearchOptions {
  /// Maximum Hamming distance d to search (inclusive).
  int max_distance = 3;
  /// SPMD work units per shell (p in Algorithm 1). Units multiplex onto the
  /// worker group, so this may exceed the group's thread count.
  int num_threads = 1;
  /// Seeds iterated between stop-condition checks (§4.4 knob): both the
  /// early-exit flag and the deadline are consulted at this cadence, rounded
  /// up to whole hash batches. §4.4 found intervals 1..64 indistinguishable;
  /// 256 keeps the clock read and flag poll far off the per-seed fast path
  /// while still bounding stop latency to microseconds.
  u32 check_interval = 256;
  /// When false, the search visits every seed up to d even after a match —
  /// the "exhaustive" timing scenario of the evaluation. Cancellation and
  /// deadlines still apply.
  bool early_exit = true;
  /// Authentication time threshold T, seconds of host wall clock. Used to
  /// build a local SearchContext when the caller does not provide one; a
  /// caller-provided session context carries its own deadline instead.
  double timeout_s = 20.0;
};

struct SearchResult {
  bool found = false;
  Seed256 seed;              // the matching candidate, when found
  int distance = -1;         // shell where the match occurred
  u64 seeds_hashed = 0;      // total candidates hashed across threads
  double host_seconds = 0.0; // wall-clock duration of the search
  bool timed_out = false;    // deadline hit before the ball was exhausted
  bool cancelled = false;    // externally cancelled before completion
};

/// Searches for a seed whose hash equals `target`, running each shell as an
/// SPMD round on `workers`. The factory provides per-unit iterators over
/// each shell (Gosper / Algorithm 515 / Chase 382 all model the concept).
///
/// `session`, when non-null, is the authentication session's context: its
/// deadline (set at admission, so queue time counts against the threshold)
/// and cancellation govern the search, and progress is published to it. It
/// must be fresh for this search — the match flag is per-search state. When
/// null, a local context with an opts.timeout_s budget is used.
template <hash::SeedHash Hash, comb::SeedIteratorFactory Factory>
SearchResult rbc_search(const Seed256& s_init,
                        const typename Hash::digest_type& target,
                        Factory& factory, par::WorkerGroup& workers,
                        const SearchOptions& opts, const Hash& hash = {},
                        par::SearchContext* session = nullptr) {
  RBC_CHECK(opts.max_distance >= 0 && opts.max_distance <= comb::kMaxK);
  RBC_CHECK(opts.num_threads >= 1);

  par::SearchContext local = par::SearchContext::with_budget(opts.timeout_s);
  par::SearchContext& ctx = session != nullptr ? *session : local;

  SearchResult result;
  WallTimer timer;
  std::mutex found_mutex;
  std::optional<std::pair<Seed256, int>> found;

  // Lines 4-8: distance 0 — hash S_init itself (unit r = 0's job).
  result.seeds_hashed = 1;
  ctx.add_progress(1);
  if (hash(s_init) == target) {
    result.found = true;
    result.seed = s_init;
    result.distance = 0;
    result.host_seconds = timer.elapsed_s();
    return result;
  }

  const int p = opts.num_threads;
  std::vector<u64> hashed_per_unit(static_cast<std::size_t>(p), 0);

  // Line 9: loop over Hamming shells 1..d. The host checks the deadline
  // between shells; workers check it at a coarse cadence within one.
  for (int k = 1; k <= opts.max_distance; ++k) {
    if (ctx.should_stop(opts.early_exit)) break;
    if (ctx.check_deadline()) break;
    factory.prepare(k, p);

    workers.parallel_workers(p, [&](int unit) {
      auto it = factory.make(unit);
      // Lines 11-16, batched: refill a candidate block by XOR-ing each
      // iterator delta into S_init, hash every lane in one multi-buffer
      // call, then reject non-matches on the digests' first 32 bits before
      // paying for the full comparison. Scalar policies get B = 1, which is
      // exactly the one-candidate-per-iteration loop.
      constexpr std::size_t kBlock = hash::seed_hash_batch<Hash>();
      std::array<Seed256, kBlock> candidates;
      std::array<typename Hash::digest_type, kBlock> digests;
      u32 target_head;
      std::memcpy(&target_head, target.bytes.data(), sizeof(target_head));

      // One unified stop cadence (early-exit flag + deadline), expressed in
      // whole blocks so a batch is never split by a poll.
      const u32 blocks_per_check = static_cast<u32>(
          (std::max<u64>(opts.check_interval, 1) + kBlock - 1) / kBlock);
      par::CheckThrottle throttle(blocks_per_check);

      u64 local_hashed = 0;
      Seed256 mask;
      bool running = true;
      while (running) {
        if (throttle.due() &&
            (ctx.check_deadline() || ctx.should_stop(opts.early_exit))) {
          break;
        }
        std::size_t n = 0;
        while (n < kBlock && it.next(mask)) candidates[n++] = s_init ^ mask;
        if (n == 0) break;  // slice exhausted
        hash::hash_seed_block(hash, candidates.data(), n, digests.data());
        std::size_t counted = n;
        for (std::size_t i = 0; i < n; ++i) {
          u32 head;
          std::memcpy(&head, digests[i].bytes.data(), sizeof(head));
          if (head != target_head || digests[i] != target) continue;
          {
            std::lock_guard lock(found_mutex);
            if (!found) found = {candidates[i], k};
          }
          ctx.signal_match();  // line 15: NotifyAllThreadsToExitSearch
          if (opts.early_exit) {
            // Lanes past the match were speculative; count to the match so
            // the accounting equals the scalar policy's visit order.
            counted = i + 1;
            running = false;
          }
          break;
        }
        local_hashed += counted;
      }
      hashed_per_unit[static_cast<std::size_t>(unit)] += local_hashed;
      ctx.add_progress(local_hashed);
    });

    ctx.check_deadline();
  }

  for (u64 h : hashed_per_unit) result.seeds_hashed += h;
  if (found) {
    result.found = true;
    result.seed = found->first;
    result.distance = found->second;
  } else {
    result.timed_out = ctx.timed_out();
    result.cancelled = ctx.cancel_requested() && !ctx.timed_out();
  }
  result.host_seconds = timer.elapsed_s();
  return result;
}

}  // namespace rbc
