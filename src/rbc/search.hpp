// The RBC-SALTED search core — Algorithm 1 of the paper.
//
// Given the enrolled seed S_init and the client's message digest M1, search
// the Hamming ball around S_init shell by shell: every work unit owns a
// disjoint slice of each shell's combination sequence, XORs each mask into
// S_init, hashes, and compares against M1. The first match signals the
// session's SearchContext (lines 7/15); the context's deadline bounds the
// whole search (§3: "RBC uses a time threshold for which it must
// authenticate a client").
//
// Concurrency: the shells run as SPMD rounds on a WorkerGroup, so any number
// of sessions can search at once over one set of worker threads. All stop
// conditions flow through the SearchContext:
//   * match found   — stops the round under the early-exit policy only;
//   * cancellation  — deadline expiry or an external cancel(); honored
//                     UNCONDITIONALLY, including in exhaustive mode (a
//                     timed-out exhaustive search must stop promptly, not at
//                     each worker's private clock cadence).
//
// The function template is monomorphized over the hash policy and the seed
// iterator factory so the hot loop compiles to straight-line code — the same
// reason the paper fuses seed iteration and hashing into one GPU kernel
// (§4.5: "we do not time the seed iteration separately from SHA-3, as they
// execute in the same kernel").
#pragma once

#include <mutex>
#include <optional>

#include "bits/seed256.hpp"
#include "combinatorics/shell.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "hash/traits.hpp"
#include "parallel/early_exit.hpp"
#include "parallel/search_context.hpp"
#include "parallel/worker_group.hpp"

namespace rbc {

struct SearchOptions {
  /// Maximum Hamming distance d to search (inclusive).
  int max_distance = 3;
  /// SPMD work units per shell (p in Algorithm 1). Units multiplex onto the
  /// worker group, so this may exceed the group's thread count.
  int num_threads = 1;
  /// Seeds iterated between early-exit flag checks (§4.4 knob).
  u32 check_interval = 1;
  /// When false, the search visits every seed up to d even after a match —
  /// the "exhaustive" timing scenario of the evaluation. Cancellation and
  /// deadlines still apply.
  bool early_exit = true;
  /// Authentication time threshold T, seconds of host wall clock. Used to
  /// build a local SearchContext when the caller does not provide one; a
  /// caller-provided session context carries its own deadline instead.
  double timeout_s = 20.0;
};

struct SearchResult {
  bool found = false;
  Seed256 seed;              // the matching candidate, when found
  int distance = -1;         // shell where the match occurred
  u64 seeds_hashed = 0;      // total candidates hashed across threads
  double host_seconds = 0.0; // wall-clock duration of the search
  bool timed_out = false;    // deadline hit before the ball was exhausted
  bool cancelled = false;    // externally cancelled before completion
};

/// Searches for a seed whose hash equals `target`, running each shell as an
/// SPMD round on `workers`. The factory provides per-unit iterators over
/// each shell (Gosper / Algorithm 515 / Chase 382 all model the concept).
///
/// `session`, when non-null, is the authentication session's context: its
/// deadline (set at admission, so queue time counts against the threshold)
/// and cancellation govern the search, and progress is published to it. It
/// must be fresh for this search — the match flag is per-search state. When
/// null, a local context with an opts.timeout_s budget is used.
template <hash::SeedHash Hash, comb::SeedIteratorFactory Factory>
SearchResult rbc_search(const Seed256& s_init,
                        const typename Hash::digest_type& target,
                        Factory& factory, par::WorkerGroup& workers,
                        const SearchOptions& opts, const Hash& hash = {},
                        par::SearchContext* session = nullptr) {
  RBC_CHECK(opts.max_distance >= 0 && opts.max_distance <= comb::kMaxK);
  RBC_CHECK(opts.num_threads >= 1);

  par::SearchContext local = par::SearchContext::with_budget(opts.timeout_s);
  par::SearchContext& ctx = session != nullptr ? *session : local;

  SearchResult result;
  WallTimer timer;
  std::mutex found_mutex;
  std::optional<std::pair<Seed256, int>> found;

  // Lines 4-8: distance 0 — hash S_init itself (unit r = 0's job).
  result.seeds_hashed = 1;
  ctx.add_progress(1);
  if (hash(s_init) == target) {
    result.found = true;
    result.seed = s_init;
    result.distance = 0;
    result.host_seconds = timer.elapsed_s();
    return result;
  }

  const int p = opts.num_threads;
  std::vector<u64> hashed_per_unit(static_cast<std::size_t>(p), 0);

  // Line 9: loop over Hamming shells 1..d. The host checks the deadline
  // between shells; workers check it at a coarse cadence within one.
  for (int k = 1; k <= opts.max_distance; ++k) {
    if (ctx.should_stop(opts.early_exit)) break;
    if (ctx.check_deadline()) break;
    factory.prepare(k, p);

    workers.parallel_workers(p, [&](int unit) {
      auto it = factory.make(unit);
      par::CheckThrottle throttle(opts.check_interval);
      u64 local_hashed = 0;
      Seed256 mask;
      // Lines 11-16: iterate this unit's slice of the shell.
      while (it.next(mask)) {
        if (throttle.due() && ctx.should_stop(opts.early_exit)) break;
        const Seed256 candidate = s_init ^ mask;
        ++local_hashed;
        if (hash(candidate) == target) {
          {
            std::lock_guard lock(found_mutex);
            if (!found) found = {candidate, k};
          }
          ctx.signal_match();  // line 15: NotifyAllThreadsToExitSearch
          if (opts.early_exit) break;
        }
        // The deadline is checked at a coarse cadence to keep the clock
        // read off the per-seed fast path; a hit latches cancellation,
        // which every unit (and every layer sharing this context) observes.
        if ((local_hashed & 0xffff) == 0) ctx.check_deadline();
      }
      hashed_per_unit[static_cast<std::size_t>(unit)] += local_hashed;
      ctx.add_progress(local_hashed);
    });

    ctx.check_deadline();
  }

  for (u64 h : hashed_per_unit) result.seeds_hashed += h;
  if (found) {
    result.found = true;
    result.seed = found->first;
    result.distance = found->second;
  } else {
    result.timed_out = ctx.timed_out();
    result.cancelled = ctx.cancel_requested() && !ctx.timed_out();
  }
  result.host_seconds = timer.elapsed_s();
  return result;
}

}  // namespace rbc
