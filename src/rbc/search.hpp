// The RBC-SALTED search core — Algorithm 1 of the paper.
//
// Given the enrolled seed S_init and the client's message digest M1, search
// the Hamming ball around S_init shell by shell: work units XOR each shell
// mask into S_init, hash, and compare against M1. The first match signals
// the session's SearchContext (lines 7/15); the context's deadline bounds
// the whole search (§3: "RBC uses a time threshold for which it must
// authenticate a client").
//
// Two schedules drive the same inner loop (see docs/scheduler.md):
//
//   * kTiled (default) — the ball is decomposed into fixed-size tiles
//     (comb::ShellTiler) handed out by a work-stealing par::TileScheduler.
//     One extra pipeline unit publishes shell k+1's iterator plan while
//     shell k's tiles are still being drained, so workers flow across shell
//     boundaries instead of parking at a barrier. Exhaustive mode records
//     the MINIMAL shell containing a match (shells overlap in flight), and
//     per-tile accounting keeps `seeds_hashed` visit-order exact.
//   * kStatic — the PR-1/PR-3 shape: each shell is one SPMD round of p
//     contiguous slices with a barrier in between. Kept as the reference
//     schedule; CI asserts both report identical results.
//
// Concurrency: rounds run on a WorkerGroup, so any number of sessions can
// search at once over one set of worker threads. All stop conditions flow
// through the SearchContext:
//   * match found   — stops the round under the early-exit policy only;
//   * cancellation  — deadline expiry or an external cancel(); honored
//                     UNCONDITIONALLY, including in exhaustive mode.
//
// The function template is monomorphized over the hash policy and the seed
// iterator factory so the hot loop compiles to straight-line code — the same
// reason the paper fuses seed iteration and hashing into one GPU kernel
// (§4.5).
//
// Batched hashing: when the hash policy is a BatchSeedHash (hash/batch.hpp),
// each unit refills a small candidate block from its iterator, compresses
// all lanes in one multi-buffer call, and rejects non-matches on a 32-bit
// digest-head compare before the full comparison. Scalar policies run the
// same loop with a block of one, so results and accounting are identical
// across policies.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>

#include "bits/seed256.hpp"
#include "combinatorics/shell.hpp"
#include "combinatorics/tiler.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "hash/batch.hpp"
#include "hash/traits.hpp"
#include "obs/trace.hpp"
#include "parallel/early_exit.hpp"
#include "parallel/search_context.hpp"
#include "parallel/tile_scheduler.hpp"
#include "parallel/worker_group.hpp"
#include "rbc/candidate_stream.hpp"

namespace rbc {

/// How work units consume the shells (see the header comment).
enum class SearchSchedule { kTiled, kStatic };

/// Within-shell candidate order. kCanonical is the iterator family's
/// combinatorial order — the historical behavior, byte-for-byte. kReliability
/// re-orders each shell by descending posterior likelihood using the
/// device's enrollment-time reliability profile (candidate_stream.hpp's
/// OrderedBallStream); it requires SearchOptions::reliability and falls back
/// to canonical when no profile is available.
enum class SearchOrder : u8 { kCanonical = 0, kReliability = 1 };

struct SearchOptions {
  /// Maximum Hamming distance d to search (inclusive).
  int max_distance = 3;
  /// SPMD work units per shell (p in Algorithm 1). Units multiplex onto the
  /// worker group, so this may exceed the group's thread count. The tiled
  /// schedule adds one pipeline unit on top.
  int num_threads = 1;
  /// Seeds iterated between stop-condition checks (§4.4 knob): both the
  /// early-exit flag and the deadline are consulted at this cadence, rounded
  /// up to whole hash batches. §4.4 found intervals 1..64 indistinguishable;
  /// 256 keeps the clock read and flag poll far off the per-seed fast path
  /// while still bounding stop latency to microseconds.
  u32 check_interval = 256;
  /// When false, the search visits every seed up to d even after a match —
  /// the "exhaustive" timing scenario of the evaluation. Cancellation and
  /// deadlines still apply.
  bool early_exit = true;
  /// Authentication time threshold T, seconds of host wall clock. Used to
  /// build a local SearchContext when the caller does not provide one; a
  /// caller-provided session context carries its own deadline instead.
  double timeout_s = 20.0;
  /// Work-distribution schedule. kTiled needs the factory to model
  /// TiledSeedIteratorFactory and at least two work units; factories that do
  /// not — and 1-thread searches, which have nobody to steal from — fall
  /// back to kStatic.
  SearchSchedule schedule = SearchSchedule::kTiled;
  /// Candidate seeds per scheduler tile under kTiled; 0 picks
  /// comb::ShellTiler::kDefaultTileSeeds.
  u64 tile_seeds = 0;
  /// Bench/test instrumentation: when set, each work unit calls
  /// hook(unit, seeds) after every scheduling quantum — a tile under kTiled,
  /// a check-interval batch under kStatic — with the seeds it just hashed.
  /// The skewed-workload bench injects a sleeping straggler through this.
  /// Leave empty in production; it runs on the hot path.
  std::function<void(int unit, u64 seeds)> quantum_hook;
  /// Within-shell candidate order. kReliability is honored only when
  /// `reliability` is set; the ordered walk is inherently sequential, so it
  /// runs single-unit regardless of num_threads.
  SearchOrder order = SearchOrder::kCanonical;
  /// Per-bit reliability order for kReliability, built from the device's
  /// enrollment profile. Shared with the session that fetched the record.
  std::shared_ptr<const comb::ReliabilityOrder> reliability;
  /// Likelihood-ordered head size per shell (masks). Shells no larger than
  /// this are fully likelihood-ordered; bigger shells emit this many
  /// most-likely masks first, then fall back to a canonical tail that skips
  /// them (see OrderedBallStream). Bounds the enumerator frontier memory.
  u64 ordered_budget = OrderedBallStream::kDefaultOrderedBudget;
};

struct SearchResult {
  bool found = false;
  Seed256 seed;              // the matching candidate, when found
  int distance = -1;         // shell where the match occurred
  u64 seeds_hashed = 0;      // total candidates hashed across threads
  double host_seconds = 0.0; // wall-clock duration of the search
  bool timed_out = false;    // deadline hit before the ball was exhausted
  bool cancelled = false;    // externally cancelled before completion
  /// 1-based position the match would have held in the canonical ball order
  /// (S_init = 1, then shells in colex order). Only set when found; lets the
  /// server report how much the reliability order saved — under kCanonical
  /// with early exit it simply equals seeds_hashed.
  u64 canonical_rank = 0;
};

namespace detail {

/// Tiled work-stealing driver. Assumes distance 0 was already checked and
/// missed; fills everything but host_seconds / the d0 contribution.
template <hash::SeedHash Hash, comb::TiledSeedIteratorFactory Factory>
void rbc_search_tiled(const Seed256& s_init,
                      const typename Hash::digest_type& target,
                      Factory& factory, par::WorkerGroup& workers,
                      const SearchOptions& opts, const Hash& hash,
                      par::SearchContext& ctx, SearchResult& result,
                      std::optional<std::pair<Seed256, int>>& found) {
  const int d = opts.max_distance;
  if (d == 0) return;
  std::mutex found_mutex;

  const u64 tile_seeds = opts.tile_seeds != 0
                             ? opts.tile_seeds
                             : comb::ShellTiler::kDefaultTileSeeds;
  comb::ShellTiler tiler(d, tile_seeds, factory.n_bits());
  // +1: a pipeline unit that publishes upcoming shell plans ahead of the
  // hashing front, then joins the tile loop as one more worker.
  const int units = opts.num_threads + 1;
  par::TileScheduler sched(tiler.tiles_per_shell(), /*first_shell=*/1, units);

  // Per-shell iterator plans, built lazily: the unit that first needs (or
  // pre-publishes) shell k CASes kNone -> kPreparing and builds the plan
  // itself; anyone else needing it meanwhile waits on the cv at a short
  // timeout so stop conditions stay honored. A nullptr plan (walk aborted by
  // the deadline) parks the shell as kAborted and ends the claimants.
  enum : int { kNone = 0, kPreparing = 1, kReady = 2, kAborted = 3 };
  std::vector<std::shared_ptr<const typename Factory::shell_plan>> plans(
      static_cast<std::size_t>(d) + 1);
  std::unique_ptr<std::atomic<int>[]> plan_state(
      new std::atomic<int>[static_cast<std::size_t>(d) + 1]);
  for (int k = 0; k <= d; ++k)
    plan_state[static_cast<std::size_t>(k)].store(kNone,
                                                  std::memory_order_relaxed);
  std::mutex plan_mutex;
  std::condition_variable plan_cv;

  const auto abort_pred = [&ctx, &opts] {
    return ctx.should_stop(opts.early_exit);
  };

  const auto ensure_plan =
      [&](int k) -> std::shared_ptr<const typename Factory::shell_plan> {
    auto& state = plan_state[static_cast<std::size_t>(k)];
    int s = state.load(std::memory_order_acquire);
    while (s != kReady) {
      if (s == kAborted) return nullptr;
      if (s == kNone) {
        int expected = kNone;
        if (state.compare_exchange_strong(expected, kPreparing,
                                          std::memory_order_acq_rel)) {
          auto plan = factory.plan(k, tiler.stride(k), abort_pred);
          plans[static_cast<std::size_t>(k)] = plan;
          state.store(plan != nullptr ? kReady : kAborted,
                      std::memory_order_release);
          plan_cv.notify_all();
          return plan;
        }
        s = expected;
        continue;
      }
      // Another unit is mid-walk; timed wait so deadline/cancel/match still
      // end this unit promptly (a missed notify costs one timeout tick).
      {
        std::unique_lock lock(plan_mutex);
        plan_cv.wait_for(lock, std::chrono::milliseconds(2));
      }
      if (ctx.check_deadline() || ctx.should_stop(opts.early_exit))
        return nullptr;
      s = state.load(std::memory_order_acquire);
    }
    return plans[static_cast<std::size_t>(k)];
  };

  std::vector<u64> hashed_per_unit(static_cast<std::size_t>(units), 0);

  workers.parallel_workers(units, [&](int unit) {
    // Lines 11-16, batched (see the static path below for the lane-level
    // commentary; both schedules share this inner-loop shape).
    constexpr std::size_t kBlock = hash::seed_hash_batch<Hash>();
    std::array<Seed256, kBlock> candidates;
    std::array<typename Hash::digest_type, kBlock> digests;
    u32 target_head;
    std::memcpy(&target_head, target.bytes.data(), sizeof(target_head));
    const u32 blocks_per_check = static_cast<u32>(
        (std::max<u64>(opts.check_interval, 1) + kBlock - 1) / kBlock);

    if (unit == units - 1) {
      // Pipeline unit: publish plans front to back, then fall through and
      // hash like everyone else. Workers self-prepare if they outrun it.
      for (int k = 1; k <= d; ++k) {
        if (ctx.check_deadline() || ctx.should_stop(opts.early_exit)) break;
        if (ensure_plan(k) == nullptr) break;
      }
    }

    u64 unit_hashed = 0;
    par::TileScheduler::Tile tile;
    while (true) {
      if (ctx.check_deadline() || ctx.should_stop(opts.early_exit)) break;
      if (!sched.acquire(unit, tile)) break;
      const auto plan = ensure_plan(tile.shell);
      if (plan == nullptr) break;

      auto it = plan->make_tile(tile.index);
      par::CheckThrottle throttle(blocks_per_check);
      u64 tile_hashed = 0;
      bool running = true;
      bool tile_done = true;  // fully visited (completes the watermark)
      while (running) {
        if (throttle.due() &&
            (ctx.check_deadline() || ctx.should_stop(opts.early_exit))) {
          tile_done = false;
          break;
        }
        std::size_t n = 0;
        Seed256 mask;
        while (n < kBlock && it.next(mask)) candidates[n++] = s_init ^ mask;
        if (n == 0) break;  // tile exhausted
        hash::hash_seed_block(hash, candidates.data(), n, digests.data());
        std::size_t counted = n;
        for (std::size_t i = 0; i < n; ++i) {
          u32 head;
          std::memcpy(&head, digests[i].bytes.data(), sizeof(head));
          if (head != target_head || digests[i] != target) continue;
          {
            std::lock_guard lock(found_mutex);
            // Shells overlap in flight: keep the minimal shell so
            // exhaustive mode still reports the true distance.
            if (!found || tile.shell < found->second)
              found = {candidates[i], tile.shell};
          }
          ctx.signal_match();  // line 15: NotifyAllThreadsToExitSearch
          if (opts.early_exit) {
            counted = i + 1;  // lanes past the match were speculative
            running = false;
            tile_done = false;
          }
          break;
        }
        tile_hashed += counted;
      }
      unit_hashed += tile_hashed;
      if (tile_done) sched.complete(tile);
      if (opts.quantum_hook) opts.quantum_hook(unit, tile_hashed);
    }
    hashed_per_unit[static_cast<std::size_t>(unit)] += unit_hashed;
    ctx.add_progress(unit_hashed);
  });

  ctx.check_deadline();
  for (u64 h : hashed_per_unit) result.seeds_hashed += h;

  // Structural invariant: an undisturbed run must have completed every
  // shell — the watermark is what certifies full-ball coverage now that no
  // barrier does.
  if (!ctx.cancel_requested() && !(opts.early_exit && found)) {
    RBC_CHECK_MSG(sched.completed_through() == d,
                  "tiled schedule left a shell incomplete");
  }
}

/// Single-unit scan of a CandidateStream: the static schedule's inner loop
/// (block refill -> multi-lane hash -> head prefilter -> full compare ->
/// visit-order counting) driving a resumable cursor instead of per-shell
/// iterator slices. This is the reference enumeration the fusion engine's
/// interleaved execution must reproduce candidate-for-candidate: the stream
/// yields S_init first, then shells 1..d in canonical order, and `counted`
/// stops at the match exactly like the per-shell loop's `i + 1`.
///
/// Stop conditions mirror the per-shell loop: the deadline/early-exit poll
/// fires at the check-interval cadence AND whenever a refill crosses into a
/// new shell (the old between-shell check); candidates fetched but not yet
/// hashed when a stop fires are discarded uncounted.
template <hash::SeedHash Hash>
void scan_stream(CandidateStream& stream,
                 const typename Hash::digest_type& target, const Hash& hash,
                 const SearchOptions& opts, par::SearchContext& ctx,
                 std::optional<std::pair<Seed256, int>>& found,
                 u64& hashed_out) {
  constexpr std::size_t kBlock = hash::seed_hash_batch<Hash>();
  std::array<Seed256, kBlock> candidates;
  std::array<typename Hash::digest_type, kBlock> digests;
  u32 target_head;
  std::memcpy(&target_head, target.bytes.data(), sizeof(target_head));
  const u32 blocks_per_check = static_cast<u32>(
      (std::max<u64>(opts.check_interval, 1) + kBlock - 1) / kBlock);
  par::CheckThrottle throttle(blocks_per_check);

  u64 local_hashed = 0;
  u64 since_hook = 0;
  int last_shell = stream.last_shell();
  // Per-shell trace spans (obs/trace.hpp): opened/closed only at shell
  // transitions, so the hook cost is one null test per refill and nothing
  // per candidate. Null trace (the untraced default) records nothing.
  obs::SessionTrace* trace = ctx.trace();
  int span_shell = -1;
  u64 span_hashed = 0;
  double span_open_s = 0.0;
  const auto close_shell_span = [&] {
    if (trace == nullptr || span_shell < 0) return;
    trace->span(obs::SpanKind::kSearchShell, span_open_s, trace->now_s(),
                static_cast<u32>(span_shell), span_hashed);
  };
  bool running = true;
  while (running) {
    bool check_now = false;
    if (throttle.due()) {
      if (opts.quantum_hook) {
        opts.quantum_hook(0, since_hook);
        since_hook = 0;
      }
      check_now = true;
    }
    const std::size_t n = stream.fill(candidates.data(), kBlock);
    if (n == 0) break;
    if (stream.last_shell() != last_shell) {
      last_shell = stream.last_shell();
      check_now = true;  // between-shell poll point of the per-shell loop
      if (trace != nullptr) {
        close_shell_span();
        span_shell = last_shell;
        span_open_s = trace->now_s();
        span_hashed = 0;
      }
    }
    if (check_now &&
        (ctx.check_deadline() || ctx.should_stop(opts.early_exit))) {
      break;  // the just-fetched block is discarded unhashed
    }
    hash::hash_seed_block(hash, candidates.data(), n, digests.data());
    std::size_t counted = n;
    for (std::size_t i = 0; i < n; ++i) {
      u32 head;
      std::memcpy(&head, digests[i].bytes.data(), sizeof(head));
      if (head != target_head || digests[i] != target) continue;
      if (!found) found = {candidates[i], last_shell};
      ctx.signal_match();
      if (opts.early_exit) {
        counted = i + 1;  // lanes past the match were speculative
        running = false;
      }
      break;
    }
    local_hashed += counted;
    since_hook += counted;
    span_hashed += counted;
  }
  close_shell_span();
  if (opts.quantum_hook && since_hook > 0) opts.quantum_hook(0, since_hook);
  ctx.add_progress(local_hashed);
  hashed_out += local_hashed;
}

}  // namespace detail

/// Searches for a seed whose hash equals `target`, running work units on
/// `workers`. The factory provides iterators over each shell (Gosper /
/// Algorithm 515 / Chase 382 all model the concepts).
///
/// `session`, when non-null, is the authentication session's context: its
/// deadline (set at admission, so queue time counts against the threshold)
/// and cancellation govern the search, and progress is published to it. It
/// must be fresh for this search — the match flag is per-search state. When
/// null, a local context with an opts.timeout_s budget is used.
template <hash::SeedHash Hash, comb::SeedIteratorFactory Factory>
SearchResult rbc_search(const Seed256& s_init,
                        const typename Hash::digest_type& target,
                        Factory& factory, par::WorkerGroup& workers,
                        const SearchOptions& opts, const Hash& hash = {},
                        par::SearchContext* session = nullptr) {
  RBC_CHECK(opts.max_distance >= 0 && opts.max_distance <= comb::kMaxK);
  RBC_CHECK(opts.num_threads >= 1);

  par::SearchContext local = par::SearchContext::with_budget(opts.timeout_s);
  par::SearchContext& ctx = session != nullptr ? *session : local;

  SearchResult result;
  WallTimer timer;
  std::mutex found_mutex;
  std::optional<std::pair<Seed256, int>> found;

  // Lines 4-8: distance 0 — hash S_init itself (unit r = 0's job).
  result.seeds_hashed = 1;
  ctx.add_progress(1);
  if (hash(s_init) == target) {
    result.found = true;
    result.seed = s_init;
    result.distance = 0;
    result.canonical_rank = 1;
    result.host_seconds = timer.elapsed_s();
    return result;
  }

  // Reliability-ordered sessions drive the likelihood-first stream on the
  // calling thread regardless of num_threads: the best-first enumeration is
  // inherently sequential, and silently falling through to an order-ignoring
  // parallel schedule would discard the requested order.
  bool ran_ordered = false;
  if (opts.order == SearchOrder::kReliability && opts.reliability != nullptr) {
    OrderedBallStream stream(s_init, opts.max_distance, opts.reliability,
                             opts.ordered_budget, factory.n_bits());
    stream.skip_base();
    detail::scan_stream<Hash>(stream, target, hash, opts, ctx, found,
                              result.seeds_hashed);
    ctx.check_deadline();
    ran_ordered = true;
  }

  bool ran_tiled = false;
  if constexpr (comb::TiledSeedIteratorFactory<Factory>) {
    // A single worker has nobody to steal from and nothing to pipeline into;
    // tiling would only add plan walks and a scheduler unit. Keep 1-thread
    // searches (e.g. per-session server searches) on the static walk.
    if (!ran_ordered && opts.schedule == SearchSchedule::kTiled &&
        opts.num_threads > 1) {
      // Tiled shells overlap in flight, so a per-shell span would lie about
      // exclusivity; record one span over the whole tiled scan instead
      // (detail = d, value = candidates hashed by it).
      obs::SessionTrace* trace = ctx.trace();
      const double tiled_open_s = trace != nullptr ? trace->now_s() : 0.0;
      const u64 tiled_start_progress = ctx.progress();
      detail::rbc_search_tiled<Hash>(s_init, target, factory, workers, opts,
                                     hash, ctx, result, found);
      if (trace != nullptr) {
        trace->span(obs::SpanKind::kSearchShell, tiled_open_s, trace->now_s(),
                    static_cast<u32>(opts.max_distance),
                    ctx.progress() - tiled_start_progress);
      }
      ran_tiled = true;
    }
  }

  if (!ran_ordered && !ran_tiled && opts.num_threads == 1) {
    // Single-unit searches (e.g. per-session server searches) drive the
    // resumable CandidateStream directly on the calling thread: same visit
    // order and accounting as the per-shell SPMD round below, minus the
    // WorkerGroup round-trip per shell. The stream starts after distance 0,
    // which was hashed above.
    BallStream<Factory> stream(s_init, opts.max_distance, factory);
    stream.skip_base();
    detail::scan_stream<Hash>(stream, target, hash, opts, ctx, found,
                              result.seeds_hashed);
    ctx.check_deadline();
  } else if (!ran_ordered && !ran_tiled) {
    const int p = opts.num_threads;
    std::vector<u64> hashed_per_unit(static_cast<std::size_t>(p), 0);

    // Line 9: loop over Hamming shells 1..d. The host checks the deadline
    // between shells; workers check it at a coarse cadence within one.
    obs::SessionTrace* trace = ctx.trace();
    for (int k = 1; k <= opts.max_distance; ++k) {
      if (ctx.should_stop(opts.early_exit)) break;
      if (ctx.check_deadline()) break;
      const double shell_open_s = trace != nullptr ? trace->now_s() : 0.0;
      const u64 shell_start_progress = ctx.progress();
      factory.prepare(k, p);

      workers.parallel_workers(p, [&](int unit) {
        auto it = factory.make(unit);
        // Lines 11-16, batched: refill a candidate block by XOR-ing each
        // iterator delta into S_init, hash every lane in one multi-buffer
        // call, then reject non-matches on the digests' first 32 bits before
        // paying for the full comparison. Scalar policies get B = 1, which
        // is exactly the one-candidate-per-iteration loop.
        constexpr std::size_t kBlock = hash::seed_hash_batch<Hash>();
        std::array<Seed256, kBlock> candidates;
        std::array<typename Hash::digest_type, kBlock> digests;
        u32 target_head;
        std::memcpy(&target_head, target.bytes.data(), sizeof(target_head));

        // One unified stop cadence (early-exit flag + deadline), expressed
        // in whole blocks so a batch is never split by a poll.
        const u32 blocks_per_check = static_cast<u32>(
            (std::max<u64>(opts.check_interval, 1) + kBlock - 1) / kBlock);
        par::CheckThrottle throttle(blocks_per_check);

        u64 local_hashed = 0;
        u64 since_hook = 0;
        Seed256 mask;
        bool running = true;
        while (running) {
          if (throttle.due()) {
            if (opts.quantum_hook) {
              opts.quantum_hook(unit, since_hook);
              since_hook = 0;
            }
            if (ctx.check_deadline() || ctx.should_stop(opts.early_exit))
              break;
          }
          std::size_t n = 0;
          while (n < kBlock && it.next(mask)) candidates[n++] = s_init ^ mask;
          if (n == 0) break;  // slice exhausted
          hash::hash_seed_block(hash, candidates.data(), n, digests.data());
          std::size_t counted = n;
          for (std::size_t i = 0; i < n; ++i) {
            u32 head;
            std::memcpy(&head, digests[i].bytes.data(), sizeof(head));
            if (head != target_head || digests[i] != target) continue;
            {
              std::lock_guard lock(found_mutex);
              if (!found) found = {candidates[i], k};
            }
            ctx.signal_match();  // line 15: NotifyAllThreadsToExitSearch
            if (opts.early_exit) {
              // Lanes past the match were speculative; count to the match
              // so the accounting equals the scalar policy's visit order.
              counted = i + 1;
              running = false;
            }
            break;
          }
          local_hashed += counted;
          since_hook += counted;
        }
        // Flush the tail quantum (seeds since the last throttle firing).
        if (opts.quantum_hook && since_hook > 0)
          opts.quantum_hook(unit, since_hook);
        hashed_per_unit[static_cast<std::size_t>(unit)] += local_hashed;
        ctx.add_progress(local_hashed);
      });

      if (trace != nullptr) {
        trace->span(obs::SpanKind::kSearchShell, shell_open_s, trace->now_s(),
                    static_cast<u32>(k),
                    ctx.progress() - shell_start_progress);
      }
      ctx.check_deadline();
    }

    for (u64 h : hashed_per_unit) result.seeds_hashed += h;
  }

  if (found) {
    result.found = true;
    result.seed = found->first;
    result.distance = found->second;
    result.canonical_rank =
        comb::canonical_ball_rank(found->first ^ s_init, factory.n_bits());
  } else {
    result.timed_out = ctx.timed_out();
    result.cancelled = ctx.cancel_requested() && !ctx.timed_out();
  }
  result.host_seconds = timer.elapsed_s();
  return result;
}

}  // namespace rbc
