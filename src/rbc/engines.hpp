// Runtime search backends: SALTED-CPU, SALTED-GPU (simulated A100), and
// SALTED-APU (simulated Gemini).
//
// All three run the SAME functional search (rbc_search over host threads) —
// correctness is real, not simulated. What differs per backend, mirroring
// §3.2-§3.4:
//   * the early-exit flag granularity (per seed on CPU/GPU; per 256-seed
//     batch on the APU, §3.3),
//   * the projected device time, produced by the backend's calibrated cost
//     model from the number of seeds actually visited,
//   * the reported device identity and thread counts.
//
// The protocol layer talks to the SearchBackend interface so a CA can be
// deployed over any of them (one of RBC-SALTED's stated goals: "a single RBC
// search system allows the technology to be deployed on a wider range of
// hardware platforms").
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "rbc/search.hpp"
#include "sim/apu_model.hpp"
#include "sim/cpu_model.hpp"
#include "sim/gpu_model.hpp"
#include "sim/multi_gpu.hpp"

namespace rbc {

struct EngineReport {
  SearchResult result;
  /// Projected search-only time on the backend's paper platform, seconds.
  double modeled_device_seconds = 0.0;
  std::string device_name;
};

class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  /// Runs the search for a digest received off the wire (runtime-typed).
  /// `digest` must have the length of `algo`'s digest. `session`, when
  /// non-null, carries the authentication session's deadline / cancellation
  /// (see rbc_search); engines are re-entrant — one backend instance may
  /// serve any number of concurrent sessions over the shared WorkerGroup.
  virtual EngineReport search(const Seed256& s_init, ByteSpan digest,
                              hash::HashAlgo algo, const SearchOptions& opts,
                              par::SearchContext* session) = 0;

  /// Convenience overload for one-shot callers without a session context.
  EngineReport search(const Seed256& s_init, ByteSpan digest,
                      hash::HashAlgo algo, const SearchOptions& opts) {
    return search(s_init, digest, algo, opts, nullptr);
  }

  /// Worst-case (exhaustive, Eq. 1) search time at distance d on this
  /// backend's modeled platform — the input to the §5 security planner.
  virtual double modeled_exhaustive_time_s(int d,
                                           hash::HashAlgo algo) const = 0;

  virtual std::string_view name() const = 0;
};

/// A serving-layer hook that can absorb a session's search into a shared
/// execution engine instead of the CA's own backend. The CA consults it
/// first (protocol.cpp process_digest); a nullopt return declines — too
/// large a ball, engine shutting down, unsupported options — and the
/// session falls through to the regular SearchBackend unchanged. An accept
/// must be a pure execution substitution: identical verdict and identical
/// seeds_hashed to what the backend's single-thread search would report.
/// The concrete implementation is server::FusionEngine, which multiplexes
/// many sessions' candidate streams into shared full-width hash batches.
class SearchOffload {
 public:
  virtual ~SearchOffload() = default;
  virtual std::optional<EngineReport> try_search(
      const Seed256& s_init, ByteSpan digest, hash::HashAlgo algo,
      const SearchOptions& opts, par::SearchContext* session) = 0;
};

/// Common configuration for the concrete engines.
struct EngineConfig {
  /// SPMD work units per shell (p in Algorithm 1); 0 = hardware
  /// concurrency. A server tuning for session throughput over single-
  /// session latency sets this low — units multiplex on the worker group.
  int host_threads = 0;
  sim::IterAlgo iterator = sim::IterAlgo::kChase382;
  /// Devices for the multi-GPU backend ("gpu" with num_devices > 1, §4.8).
  int num_devices = 1;
  /// Logical device threads for the heterogeneous backend ("hetero"): the
  /// emulated GPU's width when CPU and device co-search one ball.
  int device_threads = 64;
  /// Compute substrate; nullptr = the process-wide WorkerGroup::shared().
  /// Engines never own threads — N engines multiplex one group instead of
  /// oversubscribing the host with N private pools.
  par::WorkerGroup* workers = nullptr;
};

class CpuSearchEngine final : public SearchBackend {
 public:
  explicit CpuSearchEngine(EngineConfig cfg = {},
                           sim::CpuSpec spec = sim::epyc64());
  using SearchBackend::search;
  EngineReport search(const Seed256& s_init, ByteSpan digest,
                      hash::HashAlgo algo, const SearchOptions& opts,
                      par::SearchContext* session) override;
  double modeled_exhaustive_time_s(int d, hash::HashAlgo algo) const override;
  std::string_view name() const override { return "SALTED-CPU"; }

 private:
  EngineConfig cfg_;
  sim::CpuModel model_;
  par::WorkerGroup* workers_;
};

class GpuSimSearchEngine final : public SearchBackend {
 public:
  explicit GpuSimSearchEngine(EngineConfig cfg = {},
                              sim::GpuSpec spec = sim::a100());
  using SearchBackend::search;
  EngineReport search(const Seed256& s_init, ByteSpan digest,
                      hash::HashAlgo algo, const SearchOptions& opts,
                      par::SearchContext* session) override;
  double modeled_exhaustive_time_s(int d, hash::HashAlgo algo) const override;
  std::string_view name() const override { return "SALTED-GPU"; }

 private:
  EngineConfig cfg_;
  sim::GpuModel model_;
  par::WorkerGroup* workers_;
};

class ApuSimSearchEngine final : public SearchBackend {
 public:
  explicit ApuSimSearchEngine(EngineConfig cfg = {},
                              sim::ApuSpec spec = sim::gemini_apu());
  using SearchBackend::search;
  EngineReport search(const Seed256& s_init, ByteSpan digest,
                      hash::HashAlgo algo, const SearchOptions& opts,
                      par::SearchContext* session) override;
  double modeled_exhaustive_time_s(int d, hash::HashAlgo algo) const override;
  std::string_view name() const override { return "SALTED-APU"; }

 private:
  EngineConfig cfg_;
  sim::ApuModel model_;
  par::WorkerGroup* workers_;
};

/// Multi-GPU backend (§3.2 early-exit flag in unified memory, §4.8): shells
/// are split evenly across cfg.num_devices simulated A100s. The functional
/// search still runs on host threads; each worker's slice maps to a device
/// partition, and the modeled time is the slowest device's plus the Fig. 4
/// coordination overheads.
class MultiGpuSimSearchEngine final : public SearchBackend {
 public:
  explicit MultiGpuSimSearchEngine(EngineConfig cfg = {},
                                   sim::GpuSpec spec = sim::a100());
  using SearchBackend::search;
  EngineReport search(const Seed256& s_init, ByteSpan digest,
                      hash::HashAlgo algo, const SearchOptions& opts,
                      par::SearchContext* session) override;
  double modeled_exhaustive_time_s(int d, hash::HashAlgo algo) const override;
  std::string_view name() const override { return "SALTED-GPU (multi)"; }
  int num_devices() const noexcept { return cfg_.num_devices; }

 private:
  EngineConfig cfg_;
  sim::MultiGpuModel model_;
  par::WorkerGroup* workers_;
};

/// Kernel-level GPU backend: runs the search through the CUDA-like emulator
/// (src/gpu) — one kernel launch per shell, Chase snapshots in shared
/// memory, unified-memory flag — instead of the generic host engine. Slower
/// on the host (it pays the snapshot walk and kernel bookkeeping) but
/// structurally identical to the paper's CUDA implementation; used to
/// validate that the fast generic engine and the kernel-shaped engine agree.
class GpuEmulatedBackend final : public SearchBackend {
 public:
  explicit GpuEmulatedBackend(EngineConfig cfg = {},
                              sim::GpuSpec spec = sim::a100());
  using SearchBackend::search;
  EngineReport search(const Seed256& s_init, ByteSpan digest,
                      hash::HashAlgo algo, const SearchOptions& opts,
                      par::SearchContext* session) override;
  double modeled_exhaustive_time_s(int d, hash::HashAlgo algo) const override;
  std::string_view name() const override { return "SALTED-GPU (kernel)"; }

 private:
  EngineConfig cfg_;
  sim::GpuModel model_;
  par::WorkerGroup* workers_;
};

/// Heterogeneous co-search backend: host worker units and one emulated
/// device drain tiles of the same Hamming ball from a shared work-stealing
/// scheduler (gpu::hetero_cosearch), instead of the CPU and GPU owning
/// disjoint phases. Functionally byte-identical to the CPU engine on the
/// same ball; the modeled time combines the CPU and GPU platform rates as
/// parallel servers (harmonic sum).
class HeteroSearchEngine final : public SearchBackend {
 public:
  explicit HeteroSearchEngine(EngineConfig cfg = {},
                              sim::CpuSpec cpu_spec = sim::epyc64(),
                              sim::GpuSpec gpu_spec = sim::a100());
  using SearchBackend::search;
  EngineReport search(const Seed256& s_init, ByteSpan digest,
                      hash::HashAlgo algo, const SearchOptions& opts,
                      par::SearchContext* session) override;
  double modeled_exhaustive_time_s(int d, hash::HashAlgo algo) const override;
  std::string_view name() const override { return "SALTED-HETERO (CPU+GPU)"; }

 private:
  EngineConfig cfg_;
  sim::CpuModel cpu_model_;
  sim::GpuModel gpu_model_;
  par::WorkerGroup* workers_;
};

/// Factory by device family name ("cpu", "gpu", "apu", "gpu-emu", "hetero";
/// "gpu" with cfg.num_devices > 1 builds the multi-GPU backend).
std::unique_ptr<SearchBackend> make_backend(std::string_view device,
                                            EngineConfig cfg = {});

/// §5 deployment helper: the largest Hamming-distance budget this backend
/// can exhaustively search within threshold T minus the communication
/// allowance (capped at `max_considered`). A CA configured with this value
/// can inject noise up to it without ever risking a timeout.
int plan_ca_distance(const SearchBackend& backend, hash::HashAlgo algo,
                     double threshold_s, double comm_time_s,
                     int max_considered = 8);

}  // namespace rbc
