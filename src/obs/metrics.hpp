// Metrics registry + export: one snapshot, two wire formats.
//
// The serving stack already keeps every number an operator wants —
// ServerStats counters, LinkStats fault/ARQ tallies, FusionEngine lane
// accounting, the process-wide ShellMaskCache — but each in its own struct
// with its own accessor. MetricsRegistry is the flattening seam: callers
// (AuthServer::export_metrics, the throughput bench's --metrics-out)
// register named counter/gauge series once per snapshot and render them as
//
//   * Prometheus text exposition format (# HELP / # TYPE / samples, with
//     optional {label="..."} sets) for scrape-style consumers, and
//   * a flat JSON document ({"schema": "rbc.metrics.v1", "metrics": {...}})
//     for the repo's own tooling (scripts/check_metrics.py validates it,
//     scripts/bench_trend.py trends it).
//
// The registry is snapshot-scoped and single-threaded by design: build,
// render, discard. Consistency of the numbers themselves is the source
// snapshot's job (ServerStats slices are taken under the shard stripes'
// locks), not the renderer's.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace rbc::obs {

enum class MetricsFormat : u8 {
  kPrometheus = 0,
  kJson = 1,
};

class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Monotone counter series. Registering the same name again appends
  /// another sample to that family (use distinct label sets).
  void counter(const std::string& name, const std::string& help, double value,
               const Labels& labels = {});

  /// Point-in-time gauge series.
  void gauge(const std::string& name, const std::string& help, double value,
             const Labels& labels = {});

  std::string render(MetricsFormat format) const;
  std::string prometheus() const;
  std::string json() const;

  std::size_t series_count() const noexcept;

  /// The JSON document's schema tag; bump when the shape changes.
  static constexpr const char* kJsonSchema = "rbc.metrics.v1";

 private:
  struct Sample {
    Labels labels;
    double value = 0.0;
  };
  struct Family {
    std::string name;
    std::string help;
    bool is_counter = false;
    std::vector<Sample> samples;
  };

  Family& family(const std::string& name, const std::string& help,
                 bool is_counter);

  std::vector<Family> families_;  // insertion order — deterministic output
};

}  // namespace rbc::obs
