// Flight recorder: failed sessions keep their black box.
//
// The PR-7 fault layer made every failure REPLAYABLE — a session's fault
// schedule is a pure function of (fault_seed, net_salt), so resubmitting
// with the logged salt reproduces every drop and stall. What was missing is
// the log itself: when a session dies in a long chaos run, its salt and
// timeline were gone unless a harness happened to hold the future. The
// flight recorder closes that loop: on a transport failure, a deadline
// expiry, or an unauthenticated completion the shard dumps the session's
// identity, classification, link tallies and — when tracing is armed — its
// full span timeline from the shard's TraceRing into a bounded in-memory
// log. Each record carries everything replay needs:
//
//   AuthServer::submit(client, record.session_budget_s, record.net_salt)
//
// against a server configured with the same fault/fault_seed reproduces
// the exact exchange the record describes.
//
// Bounded by construction: at most max_records are retained (oldest
// evicted); total() keeps counting so operators can see how much history
// rolled off.
#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace rbc::obs {

/// One captured failure. `timeline` is the session's TraceEvent list at
/// capture time — possibly empty (tracing off) or partial (ring wrapped).
struct FlightRecord {
  u64 device_id = 0;
  u64 net_salt = 0;    // replay key (see header comment)
  u64 fault_seed = 0;  // the server's fault stream seed at capture
  u32 shard = 0;
  std::string reason;  // "transport_failure" | "deadline_expired" |
                       // "auth_failed" | "cancelled"
  double session_budget_s = 0.0;
  double queue_wait_s = 0.0;
  double session_s = 0.0;
  u64 retransmits = 0;
  u64 frames_dropped = 0;
  u64 injected_faults = 0;  // LinkStats::injected_faults() at capture
  std::vector<TraceEvent> timeline;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t max_records = 64);

  /// Thread-safe append; evicts the oldest record past the bound.
  void record(FlightRecord r);

  /// Copies of the retained records, oldest first.
  std::vector<FlightRecord> records() const;

  std::size_t size() const;
  /// Total captures ever (>= size(); the difference rolled off the bound).
  u64 total() const;
  std::size_t max_records() const noexcept { return max_records_; }

  /// Human-readable dump of one record — identity line, replay recipe,
  /// then the timeline one event per line.
  static std::string format(const FlightRecord& r);

 private:
  const std::size_t max_records_;
  mutable std::mutex mutex_;
  std::deque<FlightRecord> records_;
  u64 total_ = 0;
};

}  // namespace rbc::obs
