#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace rbc::obs {

namespace {

/// Shortest round-trippable decimal: counters print as integers, gauges
/// keep full double precision only when they need it.
std::string format_value(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

/// Escape for both Prometheus label values and JSON strings (the shared
/// subset: backslash and double quote; control characters do not appear in
/// our label vocabulary and are rejected upstream by construction).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string label_block(const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape(v);
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 bool is_counter) {
  for (Family& f : families_) {
    if (f.name == name) {
      RBC_CHECK_MSG(f.is_counter == is_counter,
                    "metric family re-registered with a different type");
      return f;
    }
  }
  Family f;
  f.name = name;
  f.help = help;
  f.is_counter = is_counter;
  families_.push_back(std::move(f));
  return families_.back();
}

void MetricsRegistry::counter(const std::string& name, const std::string& help,
                              double value, const Labels& labels) {
  family(name, help, /*is_counter=*/true).samples.push_back({labels, value});
}

void MetricsRegistry::gauge(const std::string& name, const std::string& help,
                            double value, const Labels& labels) {
  family(name, help, /*is_counter=*/false).samples.push_back({labels, value});
}

std::size_t MetricsRegistry::series_count() const noexcept {
  std::size_t n = 0;
  for (const Family& f : families_) n += f.samples.size();
  return n;
}

std::string MetricsRegistry::prometheus() const {
  std::string out;
  for (const Family& f : families_) {
    out += "# HELP " + f.name + " " + f.help + "\n";
    out += "# TYPE " + f.name + (f.is_counter ? " counter\n" : " gauge\n");
    for (const Sample& s : f.samples) {
      out += f.name + label_block(s.labels) + " " + format_value(s.value) +
             "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::string out = "{\n  \"schema\": \"";
  out += kJsonSchema;
  out += "\",\n  \"metrics\": {\n";
  bool first = true;
  for (const Family& f : families_) {
    for (const Sample& s : f.samples) {
      if (!first) out += ",\n";
      first = false;
      out += "    \"" + escape(f.name + label_block(s.labels)) + "\": " +
             format_value(s.value);
    }
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::render(MetricsFormat format) const {
  return format == MetricsFormat::kPrometheus ? prometheus() : json();
}

}  // namespace rbc::obs
