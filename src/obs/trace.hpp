// Session-trace spans: the per-session observability substrate.
//
// Aggregate counters (ServerStats) say WHAT the server did; they cannot say
// where one session's threshold budget went. The tracer records that
// timeline as typed span/event records — admission verdict, EDF queue wait,
// each Hamming shell scanned, every ARQ retransmit, fused-lane residency,
// final verdict — into a bounded lock-free ring per shard. Records carry
// BOTH clocks: wall time (seconds since the ring's steady-clock epoch, the
// time operators bill) and the session's virtual clock (the simulated
// channel's logical seconds, the time the protocol model bills).
//
// Design constraints, in order:
//   1. Zero behavioral impact. Tracing never blocks, never allocates on the
//      session path, and touches no RNG stream — a traced run's verdicts
//      and seeds_hashed are byte-identical to an untraced one. When
//      ServerConfig::trace_enabled is false no SessionTrace is wired up and
//      every hook reduces to one null-pointer test off the per-seed loop
//      (hooks fire per SHELL / per RETRANSMIT, never per candidate).
//   2. TSan-clean concurrency. Many producers (drivers, the fusion pump,
//      ARQ retries) write one ring while stats snapshots read it. Every
//      slot field is an atomic and publication goes through a per-slot
//      sequence stamp, so a torn read is DETECTED and discarded rather
//      than being a data race.
//   3. Bounded memory. The ring overwrites oldest-first; a flight-recorded
//      timeline for a long session can therefore be partial (dropped()
//      says how much history was overwritten).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc::obs {

/// What one trace record describes. Span kinds cover the serving pipeline
/// stages named in docs/server.md; kinds with zero duration (admission,
/// retransmit) are point events whose wall_start == wall_end.
enum class SpanKind : u8 {
  kAdmission = 1,   // submit() decision; detail = RejectReason (0 = admitted)
  kQueueWait = 2,   // admission -> driver pickup; value = admission seq
  kSearchShell = 3, // one Hamming shell scanned; detail = shell, value = hashed
  kRetransmit = 4,  // one ARQ retransmission; detail = attempt, value = seq
  kFusionLane = 5,  // fused-engine residency; detail = last shell, value = dealt
  kVerdict = 6,     // dispatch -> outcome; detail = Verdict, value = seeds_hashed
};

/// kVerdict detail codes (SessionOutcome classification, one hot).
enum class Verdict : u32 {
  kFailed = 0,           // completed, seed not found within the ball
  kAuthenticated = 1,
  kTimedOut = 2,
  kTransportFailed = 3,  // retransmit budget exhausted mid-exchange
  kCancelled = 4,        // cancelled in queue by shutdown
};

constexpr std::string_view kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kAdmission: return "admission";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kSearchShell: return "search_shell";
    case SpanKind::kRetransmit: return "retransmit";
    case SpanKind::kFusionLane: return "fusion_lane";
    case SpanKind::kVerdict: return "verdict";
  }
  return "unknown";
}

/// One decoded trace record (the snapshot-side value type; ring slots store
/// the same fields as atomics). `session` is the session's net_salt — the
/// same identifier the fault plan forks from, so a timeline keys directly
/// into the salt-replay workflow. Wall times are seconds since the owning
/// ring's epoch; vclock_s is the session's simulated-channel logical clock
/// where the hook has one (0 otherwise).
struct TraceEvent {
  u64 seq = 0;  // ring publication order (monotonic per ring)
  u64 session = 0;
  u64 device = 0;
  SpanKind kind = SpanKind::kAdmission;
  u32 shard = 0;
  u32 detail = 0;
  u64 value = 0;
  double wall_start_s = 0.0;
  double wall_end_s = 0.0;
  double vclock_s = 0.0;
};

/// Bounded MPMC trace ring. push() is wait-free (one fetch_add plus plain
/// atomic stores); snapshot() is lock-free and may run concurrently with
/// any number of writers. Consistency protocol: a writer claims a slot by
/// sequence, invalidates its stamp, stores the payload fields, then
/// publishes stamp = seq + 1 (release). A reader accepts a slot only when
/// the stamp reads identical (acquire) on both sides of the payload copy
/// and is nonzero — a slot mid-write or re-claimed during the copy is
/// simply skipped. Under extreme wrap pressure (>= capacity pushes during
/// one slot copy) a reader could in principle accept a mixed record; the
/// ring is diagnostic telemetry, so that vanishing tail risk buys a
/// mutex-free hot path.
class TraceRing {
 public:
  explicit TraceRing(std::size_t min_capacity)
      : epoch_(std::chrono::steady_clock::now()) {
    RBC_CHECK_MSG(min_capacity >= 1, "trace ring needs capacity");
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Seconds since this ring was created — the wall-clock base every event
  /// in the ring shares, so spans from different shards' rings compare
  /// only within a ring (AuthServer creates all rings together).
  double now_s() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_).count();
  }

  void push(const TraceEvent& e) noexcept {
    const u64 seq = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[static_cast<std::size_t>(seq) & (capacity_ - 1)];
    s.stamp.store(0, std::memory_order_release);  // invalidate while writing
    s.session.store(e.session, std::memory_order_relaxed);
    s.device.store(e.device, std::memory_order_relaxed);
    s.kind.store(static_cast<u32>(e.kind), std::memory_order_relaxed);
    s.shard.store(e.shard, std::memory_order_relaxed);
    s.detail.store(e.detail, std::memory_order_relaxed);
    s.value.store(e.value, std::memory_order_relaxed);
    s.wall_start_s.store(e.wall_start_s, std::memory_order_relaxed);
    s.wall_end_s.store(e.wall_end_s, std::memory_order_relaxed);
    s.vclock_s.store(e.vclock_s, std::memory_order_relaxed);
    s.stamp.store(seq + 1, std::memory_order_release);
  }

  /// Every consistent record currently resident, oldest first (publication
  /// order). Slots mid-write or overwritten during the scan are skipped.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      const Slot& s = slots_[i];
      const u64 before = s.stamp.load(std::memory_order_acquire);
      if (before == 0) continue;
      TraceEvent e;
      e.seq = before - 1;
      e.session = s.session.load(std::memory_order_relaxed);
      e.device = s.device.load(std::memory_order_relaxed);
      e.kind = static_cast<SpanKind>(s.kind.load(std::memory_order_relaxed));
      e.shard = s.shard.load(std::memory_order_relaxed);
      e.detail = s.detail.load(std::memory_order_relaxed);
      e.value = s.value.load(std::memory_order_relaxed);
      e.wall_start_s = s.wall_start_s.load(std::memory_order_relaxed);
      e.wall_end_s = s.wall_end_s.load(std::memory_order_relaxed);
      e.vclock_s = s.vclock_s.load(std::memory_order_relaxed);
      const u64 after = s.stamp.load(std::memory_order_acquire);
      if (after != before) continue;  // re-claimed mid-copy: torn, discard
      out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.seq < b.seq;
              });
    return out;
  }

  /// Records for one session (keyed by net_salt), publication order. A
  /// timeline can be PARTIAL if the ring wrapped past its older records.
  std::vector<TraceEvent> session_events(u64 session) const {
    std::vector<TraceEvent> all = snapshot();
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : all)
      if (e.session == session) out.push_back(e);
    return out;
  }

  /// Total records ever pushed / overwritten-without-read (capacity bound).
  u64 recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  u64 dropped() const noexcept {
    const u64 n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  std::size_t capacity() const noexcept {
    return static_cast<std::size_t>(capacity_);
  }

 private:
  struct Slot {
    std::atomic<u64> stamp{0};  // 0 = empty/being written; else seq + 1
    std::atomic<u64> session{0};
    std::atomic<u64> device{0};
    std::atomic<u32> kind{0};
    std::atomic<u32> shard{0};
    std::atomic<u32> detail{0};
    std::atomic<u64> value{0};
    std::atomic<double> wall_start_s{0.0};
    std::atomic<double> wall_end_s{0.0};
    std::atomic<double> vclock_s{0.0};
  };

  std::chrono::steady_clock::time_point epoch_;
  u64 capacity_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<u64> head_{0};
};

/// The per-session handle the serving stack threads through SearchContext:
/// it pins the session identity (net_salt, device, shard) once so every
/// hook writes a fully-keyed record with one call. Default-constructed the
/// handle is DISABLED — hooks test the SearchContext's trace pointer, which
/// is null unless a shard armed it, so the disabled state is never even
/// consulted on the hot path.
class SessionTrace {
 public:
  SessionTrace() = default;
  SessionTrace(TraceRing* ring, u64 session, u64 device, u32 shard) noexcept
      : ring_(ring), session_(session), device_(device), shard_(shard) {}

  bool enabled() const noexcept { return ring_ != nullptr; }
  u64 session() const noexcept { return session_; }

  /// Seconds on the owning ring's clock (0 when disabled).
  double now_s() const noexcept { return ring_ ? ring_->now_s() : 0.0; }

  void span(SpanKind kind, double wall_start_s, double wall_end_s,
            u32 detail = 0, u64 value = 0, double vclock_s = 0.0) const {
    if (ring_ == nullptr) return;
    TraceEvent e;
    e.session = session_;
    e.device = device_;
    e.kind = kind;
    e.shard = shard_;
    e.detail = detail;
    e.value = value;
    e.wall_start_s = wall_start_s;
    e.wall_end_s = wall_end_s;
    e.vclock_s = vclock_s;
    ring_->push(e);
  }

  /// A span closing NOW whose start is reconstructed from its measured
  /// duration — the natural form for hooks that already hold a WallTimer.
  void span_ending_now(SpanKind kind, double duration_s, u32 detail = 0,
                       u64 value = 0, double vclock_s = 0.0) const {
    if (ring_ == nullptr) return;
    const double end = ring_->now_s();
    span(kind, end - duration_s, end, detail, value, vclock_s);
  }

  /// A zero-duration point event at NOW.
  void event(SpanKind kind, u32 detail = 0, u64 value = 0,
             double vclock_s = 0.0) const {
    if (ring_ == nullptr) return;
    const double now = ring_->now_s();
    span(kind, now, now, detail, value, vclock_s);
  }

 private:
  TraceRing* ring_ = nullptr;
  u64 session_ = 0;
  u64 device_ = 0;
  u32 shard_ = 0;
};

}  // namespace rbc::obs
