#include "obs/flight_recorder.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/check.hpp"

namespace rbc::obs {

FlightRecorder::FlightRecorder(std::size_t max_records)
    : max_records_(max_records) {
  RBC_CHECK_MSG(max_records >= 1, "flight recorder needs capacity");
}

void FlightRecorder::record(FlightRecord r) {
  std::lock_guard lock(mutex_);
  ++total_;
  records_.push_back(std::move(r));
  while (records_.size() > max_records_) records_.pop_front();
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::lock_guard lock(mutex_);
  return {records_.begin(), records_.end()};
}

std::size_t FlightRecorder::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

u64 FlightRecorder::total() const {
  std::lock_guard lock(mutex_);
  return total_;
}

std::string FlightRecorder::format(const FlightRecord& r) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "flight record: device=%" PRIu64 " shard=%u reason=%s "
                "net_salt=0x%016" PRIx64 " fault_seed=0x%016" PRIx64 "\n",
                r.device_id, r.shard, r.reason.c_str(), r.net_salt,
                r.fault_seed);
  out += line;
  std::snprintf(line, sizeof(line),
                "  budget_s=%.6f queue_wait_s=%.6f session_s=%.6f "
                "retransmits=%" PRIu64 " frames_dropped=%" PRIu64
                " injected_faults=%" PRIu64 "\n",
                r.session_budget_s, r.queue_wait_s, r.session_s,
                r.retransmits, r.frames_dropped, r.injected_faults);
  out += line;
  std::snprintf(line, sizeof(line),
                "  replay: submit(client, %.6f, /*net_salt=*/0x%016" PRIx64
                ") under the same fault config\n",
                r.session_budget_s, r.net_salt);
  out += line;
  std::snprintf(line, sizeof(line), "  timeline (%zu events):\n",
                r.timeline.size());
  out += line;
  for (const TraceEvent& e : r.timeline) {
    std::snprintf(line, sizeof(line),
                  "    [%10.6f, %10.6f] %-12s detail=%u value=%" PRIu64
                  " vclock=%.6f\n",
                  e.wall_start_s, e.wall_end_s,
                  std::string(kind_name(e.kind)).c_str(), e.detail, e.value,
                  e.vclock_s);
    out += line;
  }
  return out;
}

}  // namespace rbc::obs
