// A CUDA-like kernel execution framework (host emulation).
//
// SALTED-GPU (§3.2) is structured as kernels launched over a grid of thread
// blocks, with per-thread Chase state in shared memory (§3.2.3) and an
// early-exit flag in unified memory readable by host and device. This
// module reproduces that execution model on the host so the search kernel
// can be written in the paper's shape and tested for the properties the
// CUDA version relies on: complete thread-index coverage, block-local
// shared memory, and flag-based cross-block termination.
//
// Semantics: blocks run concurrently (on a thread pool); threads within a
// block run sequentially to completion in threadIdx order — a legal CUDA
// schedule for kernels with no intra-block synchronization, which the
// SALTED kernel is (threads only share the read-mostly unified flag).
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "parallel/worker_group.hpp"

namespace rbc::gpu {

struct Dim3 {
  u32 x = 1, y = 1, z = 1;
  u64 count() const noexcept {
    return static_cast<u64>(x) * y * z;
  }
};

/// Flag in "unified memory": visible to the host between kernel launches and
/// to every device thread during one (§3.2 "Early Exit").
class UnifiedFlag {
 public:
  void set() noexcept { flag_.store(true, std::memory_order_release); }
  bool get() const noexcept { return flag_.load(std::memory_order_acquire); }
  void clear() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Per-thread view inside a kernel.
struct KernelCtx {
  Dim3 threadIdx;
  Dim3 blockIdx;
  Dim3 blockDim;
  Dim3 gridDim;
  /// Block-local shared memory arena (zero-initialized per block).
  MutByteSpan shared;

  /// The flattened global thread id r = blockIdx.x * blockDim.x +
  /// threadIdx.x (1-D launches, as the paper's kernels).
  u64 global_thread_id() const noexcept {
    return static_cast<u64>(blockIdx.x) * blockDim.x + threadIdx.x;
  }
  u64 total_threads() const noexcept {
    return static_cast<u64>(gridDim.x) * blockDim.x;
  }
};

using Kernel = std::function<void(const KernelCtx&)>;

/// Launches `kernel` over grid x block threads; blocks run in parallel on
/// `workers` (multiplexed with any other in-flight launches or search
/// rounds), each with its own `shared_bytes` arena. Blocks until the whole
/// grid has retired (cudaDeviceSynchronize semantics).
void launch_kernel(par::WorkerGroup& workers, Dim3 grid, Dim3 block,
                   std::size_t shared_bytes, const Kernel& kernel);

/// Helper mirroring the common CUDA sizing idiom:
/// grid = ceil(total_threads / block.x).
inline Dim3 grid_for(u64 total_threads, u32 block_x) {
  RBC_CHECK(block_x > 0);
  Dim3 grid;
  grid.x = static_cast<u32>((total_threads + block_x - 1) / block_x);
  return grid;
}

}  // namespace rbc::gpu
