#include "gpu/launch.hpp"

#include <algorithm>

namespace rbc::gpu {

void launch_kernel(par::WorkerGroup& workers, Dim3 grid, Dim3 block,
                   std::size_t shared_bytes, const Kernel& kernel) {
  RBC_CHECK_MSG(grid.y == 1 && grid.z == 1 && block.y == 1 && block.z == 1,
                "the emulator supports 1-D launches (as the paper's kernels)");
  RBC_CHECK_MSG(grid.count() >= 1 && block.count() >= 1,
                "empty launch configuration");

  const u64 num_blocks = grid.x;
  std::atomic<u64> next_block{0};

  // Width: enough SPMD units to occupy the group; each unit drains blocks
  // off the shared counter, so fewer units than blocks is just coarser
  // scheduling, never lost work.
  const int width = static_cast<int>(
      std::min<u64>(num_blocks, static_cast<u64>(workers.size())));
  workers.parallel_workers(width, [&](int /*worker*/) {
    std::vector<u8> shared(shared_bytes);
    while (true) {
      const u64 b = next_block.fetch_add(1, std::memory_order_relaxed);
      if (b >= num_blocks) return;
      std::fill(shared.begin(), shared.end(), u8{0});
      KernelCtx ctx;
      ctx.blockIdx.x = static_cast<u32>(b);
      ctx.blockDim = block;
      ctx.gridDim = grid;
      ctx.shared = MutByteSpan{shared.data(), shared.size()};
      for (u32 t = 0; t < block.x; ++t) {
        ctx.threadIdx.x = t;
        kernel(ctx);
      }
    }
  });
}

}  // namespace rbc::gpu
