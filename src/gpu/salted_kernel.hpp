// The SALTED-GPU search kernel in the paper's §3.2 shape, on the emulator.
//
// One kernel launch processes one Hamming shell (the host drives the loop
// over distances, launching a kernel per shell and checking the unified-
// memory flag in between — exactly the structure §3.2 describes). Each
// thread:
//   1. computes its global id r,
//   2. claims snapshot tiles off a work-stealing TileScheduler (PR 4: the
//      static thread->slice assignment became dynamic, so a thread that
//      drains its share keeps pulling tiles instead of idling at the end of
//      the launch),
//   3. stages each tile's Chase Algorithm-382 snapshot into the block's
//      SHARED MEMORY arena (§3.2.3 optimization) before iterating,
//   4. hashes candidate blocks with the fixed-padding multi-lane SHA kernels
//      and polls the unified flag between blocks,
//   5. on a match, atomically publishes the result and raises the flag.
//
// hetero_cosearch() goes one step further: host worker units and one
// emulated device consume tiles of the SAME ball from one shared scheduler,
// so CPU and GPU co-search a single authentication instead of owning
// disjoint phases.
#pragma once

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>

#include "combinatorics/chase382.hpp"
#include "combinatorics/tiler.hpp"
#include "common/timer.hpp"
#include "gpu/launch.hpp"
#include "hash/batch.hpp"
#include "hash/traits.hpp"
#include "parallel/tile_scheduler.hpp"
#include "rbc/search.hpp"

namespace rbc::gpu {

/// Result slot in "unified memory", shared by all blocks and the host.
struct FoundSlot {
  std::mutex mutex;
  bool found = false;
  Seed256 seed;
  int distance = -1;
};

struct ShellLaunchStats {
  u64 threads = 0;
  u64 blocks = 0;
  u64 seeds_hashed = 0;
};

/// Searches one Hamming shell with a single kernel launch.
/// `snapshots` partitions the shell's Chase sequence into tiles (tile t
/// covers [snapshots[t].step_index, snapshots[t+1].step_index)); the launch
/// spawns snapshots.size() logical threads rounded up to whole blocks, and
/// the tiles are handed out dynamically by a work-stealing scheduler rather
/// than bound one-to-one to threads, so an uneven schedule (or an early
/// straggler block) cannot leave the tail of the shell on one thread.
///
/// `ctx`, when non-null, is the session's cancellation context: device
/// threads poll it alongside the unified flag (the CUDA analogue is the
/// host raising the flag from another stream) and latch its deadline at a
/// coarse cadence, so a session budget can stop a kernel mid-shell instead
/// of only between launches.
template <hash::SeedHash Hash>
ShellLaunchStats launch_salted_shell(
    par::WorkerGroup& workers, const Seed256& s_init,
    const typename Hash::digest_type& target, int shell,
    const std::vector<comb::ChaseState>& snapshots, u64 shell_total,
    u32 threads_per_block, UnifiedFlag& flag, FoundSlot& slot,
    const Hash& hash = {}, par::SearchContext* ctx = nullptr) {
  const u64 p = snapshots.size();
  RBC_CHECK(p >= 1);
  const Dim3 grid = grid_for(p, threads_per_block);
  const Dim3 block{threads_per_block, 1, 1};

  std::atomic<u64> seeds_hashed{0};
  // One shell of p snapshot tiles; every logical thread owns one scheduler
  // slot and starts at its own tile id, so an undisturbed launch visits the
  // same slices as the old static assignment.
  par::TileScheduler sched(std::vector<u64>{p}, shell, static_cast<int>(p));
  // Shared memory: one ChaseState slot per thread in the block (§3.2.3).
  const std::size_t shared_bytes = sizeof(comb::ChaseState) * threads_per_block;

  launch_kernel(workers, grid, block, shared_bytes, [&](const KernelCtx& kctx) {
    const u64 r = kctx.global_thread_id();
    if (r >= p) return;  // guard threads beyond the last partition

    auto* shared_states =
        reinterpret_cast<comb::ChaseState*>(kctx.shared.data());
    comb::ChaseState& state = shared_states[kctx.threadIdx.x];

    constexpr std::size_t kBlock = hash::seed_hash_batch<Hash>();
    std::array<Seed256, kBlock> candidates;
    std::array<typename Hash::digest_type, kBlock> digests;
    u32 target_head;
    std::memcpy(&target_head, target.bytes.data(), sizeof(target_head));

    u64 local = 0;
    bool running = true;
    par::TileScheduler::Tile tile;
    while (running && sched.acquire(static_cast<int>(r), tile)) {
      // Copy this tile's iterator state into the block's shared arena.
      const u64 t = tile.index;
      state = snapshots[static_cast<std::size_t>(t)];

      // The tile's slice: [its snapshot's step, the next snapshot's step).
      u64 i = state.step_index;
      const u64 end = (t + 1 < p)
                          ? snapshots[static_cast<std::size_t>(t + 1)].step_index
                          : shell_total;

      // Same batched shape as the host search: refill a candidate block from
      // the Chase walk, hash all lanes per multi-buffer call, reject on the
      // digest head before the full compare. The unified flag is polled once
      // per block — the device-side analogue of the §4.4 check interval.
      comb::ChaseSequence seq(state);
      while (running && i < end) {
        // Unified-memory early exit (§3.2), plus session cancellation.
        if (flag.get() || (ctx != nullptr && ctx->cancel_requested())) {
          running = false;
          break;
        }
        std::size_t n = 0;
        while (n < kBlock && i + n < end) {
          candidates[n] = s_init ^ seq.mask();
          if (i + n + 1 < end) seq.advance();
          ++n;
        }
        hash::hash_seed_block(hash, candidates.data(), n, digests.data());
        std::size_t counted = n;
        for (std::size_t lane = 0; lane < n; ++lane) {
          u32 head;
          std::memcpy(&head, digests[lane].bytes.data(), sizeof(head));
          if (head != target_head || digests[lane] != target) continue;
          {
            std::lock_guard lock(slot.mutex);
            if (!slot.found) {
              slot.found = true;
              slot.seed = candidates[lane];
              slot.distance = shell;
            }
          }
          flag.set();
          counted = lane + 1;  // lanes past the match were speculative
          running = false;
          break;
        }
        local += counted;
        i += n;
        // Coarse deadline cadence: a clock read roughly every 64 Ki seeds.
        if (ctx != nullptr && (local & 0xffff) < n) ctx->check_deadline();
      }
    }
    seeds_hashed.fetch_add(local, std::memory_order_relaxed);
    if (ctx != nullptr) ctx->add_progress(local);
  });

  ShellLaunchStats stats;
  stats.threads = p;
  stats.blocks = grid.x;
  stats.seeds_hashed = seeds_hashed.load();
  return stats;
}

/// Host-side driver (§3.2: "the loop on line 9 is executed on the host,
/// where a kernel is launched to process a single Hamming distance").
/// `threads_for_shell(k)` decides the partition width p per shell, mirroring
/// the n = seeds/p tuning of §4.4.
template <hash::SeedHash Hash>
rbc::SearchResult gpu_emulated_search(
    par::WorkerGroup& workers, const Seed256& s_init,
    const typename Hash::digest_type& target, int max_distance,
    const std::function<int(int)>& threads_for_shell, u32 threads_per_block,
    const Hash& hash = {}, double timeout_s = 1e30,
    par::SearchContext* session = nullptr) {
  rbc::SearchResult result;
  WallTimer timer;
  par::SearchContext local = par::SearchContext::with_budget(timeout_s);
  par::SearchContext& ctx = session != nullptr ? *session : local;
  UnifiedFlag flag;
  FoundSlot slot;

  result.seeds_hashed = 1;
  ctx.add_progress(1);
  if (hash(s_init) == target) {
    result.found = true;
    result.seed = s_init;
    result.distance = 0;
    result.host_seconds = timer.elapsed_s();
    return result;
  }

  for (int k = 1; k <= max_distance; ++k) {
    if (flag.get()) break;  // host checks the unified flag between launches
    // The host enforces the deadline between kernel launches; within one,
    // the kernel threads poll the context themselves (above).
    if (ctx.check_deadline()) break;
    const int p = std::max(1, threads_for_shell(k));
    const auto snapshots = comb::make_chase_snapshots(k, p);
    const u64 shell_total =
        static_cast<u64>(comb::binomial128(comb::kSeedBits, k));
    const auto stats = launch_salted_shell<Hash>(
        workers, s_init, target, k, snapshots, shell_total, threads_per_block,
        flag, slot, hash, &ctx);
    result.seeds_hashed += stats.seeds_hashed;
  }

  if (slot.found) {
    result.found = true;
    result.seed = slot.seed;
    result.distance = slot.distance;
  } else {
    ctx.check_deadline();
    result.timed_out = ctx.timed_out();
    result.cancelled = ctx.cancel_requested() && !ctx.timed_out();
  }
  result.host_seconds = timer.elapsed_s();
  return result;
}

/// Heterogeneous CPU+GPU co-search: `host_units` host worker units and one
/// emulated device (device_threads logical threads) drain tiles of the SAME
/// Hamming ball from one shared work-stealing scheduler. Shell plans are the
/// tiled ChaseFactory plans the host engine uses, so every tile is exactly a
/// slice of the rank-0 Chase walk and results are byte-identical to a
/// CPU-only tiled search over the same ball: same found/seed/distance, and
/// in exhaustive mode the same seeds_hashed (the full ball).
///
/// Device threads stage each claimed tile's snapshot into their block's
/// shared-memory arena (§3.2.3) before iterating, exactly like the per-shell
/// kernel above; host units construct tile iterators directly.
///
/// `device_seeds_out`, when non-null, receives the device's share of the
/// hashed seeds (for load-split reporting in benches).
template <hash::SeedHash Hash>
rbc::SearchResult hetero_cosearch(
    par::WorkerGroup& workers, const Seed256& s_init,
    const typename Hash::digest_type& target, const rbc::SearchOptions& opts,
    int host_units, int device_threads, u32 threads_per_block,
    const Hash& hash = {}, par::SearchContext* session = nullptr,
    u64* device_seeds_out = nullptr) {
  RBC_CHECK(opts.max_distance >= 0 && opts.max_distance <= comb::kMaxK);
  RBC_CHECK(host_units >= 1);
  RBC_CHECK(device_threads >= 1);

  rbc::SearchResult result;
  WallTimer timer;
  par::SearchContext local = par::SearchContext::with_budget(opts.timeout_s);
  par::SearchContext& ctx = session != nullptr ? *session : local;
  UnifiedFlag flag;
  FoundSlot slot;
  if (device_seeds_out != nullptr) *device_seeds_out = 0;

  // Lines 4-8: distance 0 on the host.
  result.seeds_hashed = 1;
  ctx.add_progress(1);
  if (hash(s_init) == target) {
    result.found = true;
    result.seed = s_init;
    result.distance = 0;
    result.host_seconds = timer.elapsed_s();
    return result;
  }

  const int d = opts.max_distance;
  if (d >= 1) {
    const u64 tile_seeds = opts.tile_seeds != 0
                               ? opts.tile_seeds
                               : comb::ShellTiler::kDefaultTileSeeds;
    comb::ShellTiler tiler(d, tile_seeds);
    comb::ChaseFactory factory;
    const auto abort_pred = [&ctx, &opts] {
      return ctx.should_stop(opts.early_exit);
    };

    // Plans for every shell up front (the snapshot walks are the one-time
    // cost §3.2.1 excludes from timings; a session deadline can still abort
    // them mid-walk).
    std::vector<std::shared_ptr<const comb::ChaseShellPlan>> plans(
        static_cast<std::size_t>(d) + 1);
    bool prepared = true;
    for (int k = 1; k <= d; ++k) {
      if (ctx.check_deadline() || ctx.should_stop(opts.early_exit)) {
        prepared = false;
        break;
      }
      plans[static_cast<std::size_t>(k)] =
          factory.plan(k, tiler.stride(k), abort_pred);
      if (plans[static_cast<std::size_t>(k)] == nullptr) {
        prepared = false;
        break;
      }
    }

    if (prepared) {
      par::TileScheduler sched(tiler.tiles_per_shell(), /*first_shell=*/1,
                               host_units + device_threads);
      std::atomic<u64> hashed{0};
      std::atomic<u64> device_hashed{0};
      const u32 blocks_per_check = static_cast<u32>(
          (std::max<u64>(opts.check_interval, 1) +
           hash::seed_hash_batch<Hash>() - 1) /
          hash::seed_hash_batch<Hash>());

      // Tile-drain loop shared by host units and device threads; they differ
      // only in how a claimed tile becomes an iterator (`make_iter`).
      const auto drain = [&](int slot_id, auto&& make_iter) -> u64 {
        constexpr std::size_t kBlock = hash::seed_hash_batch<Hash>();
        std::array<Seed256, kBlock> candidates;
        std::array<typename Hash::digest_type, kBlock> digests;
        u32 target_head;
        std::memcpy(&target_head, target.bytes.data(), sizeof(target_head));

        u64 unit_hashed = 0;
        par::TileScheduler::Tile tile;
        while (true) {
          if (ctx.check_deadline() || ctx.should_stop(opts.early_exit) ||
              flag.get())
            break;
          if (!sched.acquire(slot_id, tile)) break;
          auto it = make_iter(tile);
          par::CheckThrottle throttle(blocks_per_check);
          u64 tile_hashed = 0;
          bool running = true;
          bool tile_done = true;
          while (running) {
            if (throttle.due() &&
                (ctx.check_deadline() || ctx.should_stop(opts.early_exit) ||
                 flag.get())) {
              tile_done = false;
              break;
            }
            std::size_t n = 0;
            Seed256 mask;
            while (n < kBlock && it.next(mask)) candidates[n++] = s_init ^ mask;
            if (n == 0) break;  // tile exhausted
            hash::hash_seed_block(hash, candidates.data(), n, digests.data());
            std::size_t counted = n;
            for (std::size_t lane = 0; lane < n; ++lane) {
              u32 head;
              std::memcpy(&head, digests[lane].bytes.data(), sizeof(head));
              if (head != target_head || digests[lane] != target) continue;
              {
                std::lock_guard lock(slot.mutex);
                // Shells overlap in flight; keep the minimal shell.
                if (!slot.found || tile.shell < slot.distance) {
                  slot.found = true;
                  slot.seed = candidates[lane];
                  slot.distance = tile.shell;
                }
              }
              ctx.signal_match();
              if (opts.early_exit) {
                flag.set();  // unified-memory exit for the device side
                counted = lane + 1;
                running = false;
                tile_done = false;
              }
              break;
            }
            tile_hashed += counted;
          }
          unit_hashed += tile_hashed;
          if (tile_done) sched.complete(tile);
        }
        return unit_hashed;
      };

      workers.parallel_workers(host_units + 1, [&](int unit) {
        if (unit < host_units) {
          const u64 h = drain(unit, [&](const par::TileScheduler::Tile& tile) {
            return plans[static_cast<std::size_t>(tile.shell)]->make_tile(
                tile.index);
          });
          hashed.fetch_add(h, std::memory_order_relaxed);
          ctx.add_progress(h);
          return;
        }
        // The last unit drives the device: one grid over device_threads
        // logical threads, nested on the same worker group.
        const Dim3 grid = grid_for(static_cast<u64>(device_threads),
                                   threads_per_block);
        const Dim3 block{threads_per_block, 1, 1};
        const std::size_t shared_bytes =
            sizeof(comb::ChaseState) * threads_per_block;
        launch_kernel(
            workers, grid, block, shared_bytes, [&](const KernelCtx& kctx) {
              const u64 t = kctx.global_thread_id();
              if (t >= static_cast<u64>(device_threads)) return;
              auto* shared_states =
                  reinterpret_cast<comb::ChaseState*>(kctx.shared.data());
              comb::ChaseState& state = shared_states[kctx.threadIdx.x];
              const u64 h = drain(
                  host_units + static_cast<int>(t),
                  [&](const par::TileScheduler::Tile& tile) {
                    const auto& plan =
                        plans[static_cast<std::size_t>(tile.shell)];
                    // Stage the snapshot into shared memory (§3.2.3), then
                    // resume the walk from the staged copy.
                    state = plan->snapshot(tile.index);
                    return comb::ChaseIterator(state, plan->tile_count(tile.index));
                  });
              hashed.fetch_add(h, std::memory_order_relaxed);
              device_hashed.fetch_add(h, std::memory_order_relaxed);
              ctx.add_progress(h);
            });
      });

      result.seeds_hashed += hashed.load();
      if (device_seeds_out != nullptr) *device_seeds_out = device_hashed.load();

      if (!ctx.cancel_requested() && !(opts.early_exit && slot.found)) {
        RBC_CHECK_MSG(sched.completed_through() == d,
                      "hetero co-search left a shell incomplete");
      }
    }
  }

  if (slot.found) {
    result.found = true;
    result.seed = slot.seed;
    result.distance = slot.distance;
  } else {
    ctx.check_deadline();
    result.timed_out = ctx.timed_out();
    result.cancelled = ctx.cancel_requested() && !ctx.timed_out();
  }
  result.host_seconds = timer.elapsed_s();
  return result;
}

}  // namespace rbc::gpu
