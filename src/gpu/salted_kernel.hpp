// The SALTED-GPU search kernel in the paper's §3.2 shape, on the emulator.
//
// One kernel launch processes one Hamming shell (the host drives the loop
// over distances, launching a kernel per shell and checking the unified-
// memory flag in between — exactly the structure §3.2 describes). Each
// thread:
//   1. computes its global id r,
//   2. copies its Chase Algorithm-382 snapshot into the block's SHARED
//      MEMORY arena (§3.2.3 optimization),
//   3. iterates its n assigned combinations in candidate blocks, hashing
//      each block with the fixed-padding multi-lane SHA kernels and polling
//      the unified flag between blocks,
//   4. on a match, atomically publishes the result and raises the flag.
#pragma once

#include <array>
#include <cstring>
#include <functional>
#include <mutex>

#include "combinatorics/chase382.hpp"
#include "common/timer.hpp"
#include "gpu/launch.hpp"
#include "hash/batch.hpp"
#include "hash/traits.hpp"
#include "rbc/search.hpp"

namespace rbc::gpu {

/// Result slot in "unified memory", shared by all blocks and the host.
struct FoundSlot {
  std::mutex mutex;
  bool found = false;
  Seed256 seed;
  int distance = -1;
};

struct ShellLaunchStats {
  u64 threads = 0;
  u64 blocks = 0;
  u64 seeds_hashed = 0;
};

/// Searches one Hamming shell with a single kernel launch.
/// `snapshots` partitions the shell's Chase sequence (one per thread; the
/// launch spawns exactly snapshots.size() logical threads rounded up to
/// whole blocks). Returns per-launch statistics.
///
/// `ctx`, when non-null, is the session's cancellation context: device
/// threads poll it alongside the unified flag (the CUDA analogue is the
/// host raising the flag from another stream) and latch its deadline at a
/// coarse cadence, so a session budget can stop a kernel mid-shell instead
/// of only between launches.
template <hash::SeedHash Hash>
ShellLaunchStats launch_salted_shell(
    par::WorkerGroup& workers, const Seed256& s_init,
    const typename Hash::digest_type& target, int shell,
    const std::vector<comb::ChaseState>& snapshots, u64 shell_total,
    u32 threads_per_block, UnifiedFlag& flag, FoundSlot& slot,
    const Hash& hash = {}, par::SearchContext* ctx = nullptr) {
  const u64 p = snapshots.size();
  RBC_CHECK(p >= 1);
  const Dim3 grid = grid_for(p, threads_per_block);
  const Dim3 block{threads_per_block, 1, 1};

  std::atomic<u64> seeds_hashed{0};
  // Shared memory: one ChaseState slot per thread in the block (§3.2.3).
  const std::size_t shared_bytes = sizeof(comb::ChaseState) * threads_per_block;

  launch_kernel(workers, grid, block, shared_bytes, [&](const KernelCtx& kctx) {
    const u64 r = kctx.global_thread_id();
    if (r >= p) return;  // guard threads beyond the last partition

    // Copy this thread's iterator state into the block's shared arena.
    auto* shared_states =
        reinterpret_cast<comb::ChaseState*>(kctx.shared.data());
    comb::ChaseState& state = shared_states[kctx.threadIdx.x];
    state = snapshots[static_cast<std::size_t>(r)];

    // This thread's slice: [state.step_index, next snapshot's step_index).
    const u64 begin = state.step_index;
    const u64 end = (r + 1 < p)
                        ? snapshots[static_cast<std::size_t>(r + 1)].step_index
                        : shell_total;

    // Same batched shape as the host search: refill a candidate block from
    // the Chase walk, hash all lanes per multi-buffer call, reject on the
    // digest head before the full compare. The unified flag is polled once
    // per block — the device-side analogue of the §4.4 check interval.
    comb::ChaseSequence seq(state);
    constexpr std::size_t kBlock = hash::seed_hash_batch<Hash>();
    std::array<Seed256, kBlock> candidates;
    std::array<typename Hash::digest_type, kBlock> digests;
    u32 target_head;
    std::memcpy(&target_head, target.bytes.data(), sizeof(target_head));

    u64 local = 0;
    u64 i = begin;
    bool running = true;
    while (running && i < end) {
      // Unified-memory early exit (§3.2), plus session cancellation.
      if (flag.get() || (ctx != nullptr && ctx->cancel_requested())) break;
      std::size_t n = 0;
      while (n < kBlock && i + n < end) {
        candidates[n] = s_init ^ seq.mask();
        if (i + n + 1 < end) seq.advance();
        ++n;
      }
      hash::hash_seed_block(hash, candidates.data(), n, digests.data());
      std::size_t counted = n;
      for (std::size_t lane = 0; lane < n; ++lane) {
        u32 head;
        std::memcpy(&head, digests[lane].bytes.data(), sizeof(head));
        if (head != target_head || digests[lane] != target) continue;
        {
          std::lock_guard lock(slot.mutex);
          if (!slot.found) {
            slot.found = true;
            slot.seed = candidates[lane];
            slot.distance = shell;
          }
        }
        flag.set();
        counted = lane + 1;  // lanes past the match were speculative
        running = false;
        break;
      }
      local += counted;
      i += n;
      // Coarse deadline cadence: a clock read roughly every 64 Ki seeds.
      if (ctx != nullptr && (local & 0xffff) < n) ctx->check_deadline();
    }
    seeds_hashed.fetch_add(local, std::memory_order_relaxed);
    if (ctx != nullptr) ctx->add_progress(local);
  });

  ShellLaunchStats stats;
  stats.threads = p;
  stats.blocks = grid.x;
  stats.seeds_hashed = seeds_hashed.load();
  return stats;
}

/// Host-side driver (§3.2: "the loop on line 9 is executed on the host,
/// where a kernel is launched to process a single Hamming distance").
/// `threads_for_shell(k)` decides the partition width p per shell, mirroring
/// the n = seeds/p tuning of §4.4.
template <hash::SeedHash Hash>
rbc::SearchResult gpu_emulated_search(
    par::WorkerGroup& workers, const Seed256& s_init,
    const typename Hash::digest_type& target, int max_distance,
    const std::function<int(int)>& threads_for_shell, u32 threads_per_block,
    const Hash& hash = {}, double timeout_s = 1e30,
    par::SearchContext* session = nullptr) {
  rbc::SearchResult result;
  WallTimer timer;
  par::SearchContext local = par::SearchContext::with_budget(timeout_s);
  par::SearchContext& ctx = session != nullptr ? *session : local;
  UnifiedFlag flag;
  FoundSlot slot;

  result.seeds_hashed = 1;
  ctx.add_progress(1);
  if (hash(s_init) == target) {
    result.found = true;
    result.seed = s_init;
    result.distance = 0;
    result.host_seconds = timer.elapsed_s();
    return result;
  }

  for (int k = 1; k <= max_distance; ++k) {
    if (flag.get()) break;  // host checks the unified flag between launches
    // The host enforces the deadline between kernel launches; within one,
    // the kernel threads poll the context themselves (above).
    if (ctx.check_deadline()) break;
    const int p = std::max(1, threads_for_shell(k));
    const auto snapshots = comb::make_chase_snapshots(k, p);
    const u64 shell_total =
        static_cast<u64>(comb::binomial128(comb::kSeedBits, k));
    const auto stats = launch_salted_shell<Hash>(
        workers, s_init, target, k, snapshots, shell_total, threads_per_block,
        flag, slot, hash, &ctx);
    result.seeds_hashed += stats.seeds_hashed;
  }

  if (slot.found) {
    result.found = true;
    result.seed = slot.seed;
    result.distance = slot.distance;
  } else {
    ctx.check_deadline();
    result.timed_out = ctx.timed_out();
    result.cancelled = ctx.cancel_requested() && !ctx.timed_out();
  }
  result.host_seconds = timer.elapsed_s();
  return result;
}

}  // namespace rbc::gpu
