#include "net/message.hpp"

#include <array>
#include <cstring>

namespace rbc::net {

namespace {

enum Tag : u8 {
  kHandshake = 0x01,
  kChallenge = 0x02,
  kDigest = 0x03,
  kResult = 0x04,
  kSeqFrame = 0x05,  // sequenced retransmit envelope (never nested)
};

/// Longest payload any message can legally carry (a SHA3-256 digest). Length
/// fields are bounds-checked against this BEFORE any enum interpretation so
/// a frame that is both oversized and garbage reports the size problem.
constexpr u32 kMaxDigestLen = 32;

void put_u32(Bytes& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_u64(Bytes& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_f64(Bytes& out, double v) {
  u64 bits;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

void put_seed(Bytes& out, const Seed256& s) {
  const auto b = s.to_bytes();
  out.insert(out.end(), b.begin(), b.end());
}

/// Cursor with bounds checking; every read can fail with kTruncated.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  bool read_u8(u8& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = data_[pos_++];
    return true;
  }
  bool read_u32(u32& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data_[pos_++]) << (8 * i);
    return true;
  }
  bool read_u64(u64& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(data_[pos_++]) << (8 * i);
    return true;
  }
  bool read_f64(double& v) {
    u64 bits;
    if (!read_u64(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }
  bool read_seed(Seed256& s) {
    if (pos_ + Seed256::kBytes > data_.size()) return false;
    s = Seed256::from_bytes(data_.subspan(pos_, Seed256::kBytes));
    pos_ += Seed256::kBytes;
    return true;
  }
  bool read_bytes(Bytes& out, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_string(WireError e) {
  switch (e) {
    case WireError::kEmptyFrame:
      return "empty frame";
    case WireError::kUnknownTag:
      return "unknown message tag";
    case WireError::kTruncated:
      return "truncated frame";
    case WireError::kTrailingBytes:
      return "trailing bytes after message";
    case WireError::kBadEnumValue:
      return "invalid enumeration value";
    case WireError::kBadDigestLength:
      return "digest length does not match hash algorithm";
    case WireError::kBadChecksum:
      return "frame checksum mismatch";
  }
  return "?";
}

Bytes serialize(const Message& msg) {
  Bytes out;
  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, HandshakeRequest>) {
          out.push_back(kHandshake);
          put_u64(out, m.device_id);
          out.push_back(static_cast<u8>(m.hash_algo));
          out.push_back(static_cast<u8>(m.keygen_algo));
        } else if constexpr (std::is_same_v<T, Challenge>) {
          out.push_back(kChallenge);
          put_u32(out, m.puf_address);
          out.push_back(m.tapki_enabled ? 1 : 0);
          put_seed(out, m.stable_mask);
          out.push_back(m.requested_noise);
        } else if constexpr (std::is_same_v<T, DigestSubmission>) {
          out.push_back(kDigest);
          out.push_back(static_cast<u8>(m.hash_algo));
          put_u32(out, static_cast<u32>(m.digest.size()));
          out.insert(out.end(), m.digest.begin(), m.digest.end());
        } else if constexpr (std::is_same_v<T, AuthResult>) {
          out.push_back(kResult);
          out.push_back(m.authenticated ? 1 : 0);
          put_u32(out, static_cast<u32>(m.found_distance));
          put_f64(out, m.search_seconds);
          out.push_back(m.timed_out ? 1 : 0);
        }
      },
      msg);
  return out;
}

Expected<Message, WireError> deserialize(ByteSpan frame) {
  if (frame.empty()) return unexpected(WireError::kEmptyFrame);
  Reader r(frame.subspan(1));
  switch (frame[0]) {
    case kHandshake: {
      HandshakeRequest m;
      u8 hash = 0, keygen = 0;
      if (!r.read_u64(m.device_id) || !r.read_u8(hash) || !r.read_u8(keygen))
        return unexpected(WireError::kTruncated);
      if (!r.at_end()) return unexpected(WireError::kTrailingBytes);
      if (hash != static_cast<u8>(hash::HashAlgo::kSha1) &&
          hash != static_cast<u8>(hash::HashAlgo::kSha3_256))
        return unexpected(WireError::kBadEnumValue);
      if (keygen > static_cast<u8>(crypto::KeygenAlgo::kWots))
        return unexpected(WireError::kBadEnumValue);
      m.hash_algo = static_cast<hash::HashAlgo>(hash);
      m.keygen_algo = static_cast<crypto::KeygenAlgo>(keygen);
      return Message{m};
    }
    case kChallenge: {
      Challenge m;
      u8 tapki = 0;
      if (!r.read_u32(m.puf_address) || !r.read_u8(tapki) ||
          !r.read_seed(m.stable_mask) || !r.read_u8(m.requested_noise))
        return unexpected(WireError::kTruncated);
      if (!r.at_end()) return unexpected(WireError::kTrailingBytes);
      if (tapki > 1) return unexpected(WireError::kBadEnumValue);
      m.tapki_enabled = tapki != 0;
      return Message{m};
    }
    case kDigest: {
      DigestSubmission m;
      u8 hash = 0;
      u32 len = 0;
      if (!r.read_u8(hash) || !r.read_u32(len))
        return unexpected(WireError::kTruncated);
      // Bounds-check the length field BEFORE interpreting the enum byte: an
      // attacker-controlled length must never gate behind a value check
      // (oversized/truncated payloads report as such even when the enum byte
      // is also garbage, and no read is attempted past the buffer).
      if (len > kMaxDigestLen) return unexpected(WireError::kBadDigestLength);
      if (!r.read_bytes(m.digest, len)) return unexpected(WireError::kTruncated);
      if (!r.at_end()) return unexpected(WireError::kTrailingBytes);
      if (hash != static_cast<u8>(hash::HashAlgo::kSha1) &&
          hash != static_cast<u8>(hash::HashAlgo::kSha3_256))
        return unexpected(WireError::kBadEnumValue);
      m.hash_algo = static_cast<hash::HashAlgo>(hash);
      if (len != hash::digest_size(m.hash_algo))
        return unexpected(WireError::kBadDigestLength);
      return Message{m};
    }
    case kResult: {
      AuthResult m;
      u8 auth = 0, timeout = 0;
      u32 dist = 0;
      if (!r.read_u8(auth) || !r.read_u32(dist) ||
          !r.read_f64(m.search_seconds) || !r.read_u8(timeout))
        return unexpected(WireError::kTruncated);
      if (!r.at_end()) return unexpected(WireError::kTrailingBytes);
      if (auth > 1 || timeout > 1) return unexpected(WireError::kBadEnumValue);
      m.authenticated = auth != 0;
      m.found_distance = static_cast<int>(dist);
      m.timed_out = timeout != 0;
      return Message{m};
    }
    default:
      return unexpected(WireError::kUnknownTag);
  }
}

u32 crc32_ieee(ByteSpan data) {
  // Reflected CRC-32 (polynomial 0xEDB88320), table built on first use.
  static const auto table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  u32 crc = 0xFFFFFFFFu;
  for (const u8 byte : data) crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Bytes seal_seq_frame(u32 seq, ByteSpan payload) {
  Bytes out;
  out.reserve(13 + payload.size());
  out.push_back(kSeqFrame);
  put_u32(out, seq);
  put_u32(out, static_cast<u32>(payload.size()));
  put_u32(out, crc32_ieee(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Expected<SeqFrame, WireError> open_seq_frame(ByteSpan frame) {
  if (frame.empty()) return unexpected(WireError::kEmptyFrame);
  if (frame[0] != kSeqFrame) return unexpected(WireError::kUnknownTag);
  Reader r(frame.subspan(1));
  SeqFrame sf;
  u32 len = 0, crc = 0;
  if (!r.read_u32(sf.seq) || !r.read_u32(len) || !r.read_u32(crc))
    return unexpected(WireError::kTruncated);
  // The length field is bounds-checked against the buffer before any copy;
  // a flipped length bit surfaces as truncation/trailing bytes, not a read
  // past the frame.
  if (!r.read_bytes(sf.payload, len)) return unexpected(WireError::kTruncated);
  if (!r.at_end()) return unexpected(WireError::kTrailingBytes);
  if (crc32_ieee(sf.payload) != crc) return unexpected(WireError::kBadChecksum);
  return sf;
}

}  // namespace rbc::net
