// Wire messages of the RBC-SALTED protocol (Fig. 1).
//
// The protocol exchanges four messages per authentication attempt:
//   1. HandshakeRequest  (client -> CA): device id, requested hash/keygen.
//   2. Challenge         (CA -> client): PUF address to read (and, when
//      TAPKI is enabled, the stable-cell helper mask).
//   3. DigestSubmission  (client -> CA): M1 = SHA(seed read at the address).
//   4. AuthResult        (CA -> client): accepted / rejected + diagnostics.
//
// Serialization is a deliberately simple length-checked tag+fields format:
// deserialize() returns Expected rather than throwing, because malformed
// frames are an ordinary network-facing outcome the server must survive.
#pragma once

#include <string>
#include <variant>

#include "bits/seed256.hpp"
#include "common/expected.hpp"
#include "common/types.hpp"
#include "crypto/pqc_keygen.hpp"
#include "hash/traits.hpp"

namespace rbc::net {

struct HandshakeRequest {
  u64 device_id = 0;
  hash::HashAlgo hash_algo = hash::HashAlgo::kSha3_256;
  crypto::KeygenAlgo keygen_algo = crypto::KeygenAlgo::kDilithiumLike;

  friend bool operator==(const HandshakeRequest&,
                         const HandshakeRequest&) = default;
};

struct Challenge {
  /// Sentinel for requested_noise: the CA leaves the noise policy to the
  /// client (legacy behaviour).
  static constexpr u8 kNoNoiseRequest = 0xff;

  u32 puf_address = 0;
  bool tapki_enabled = false;
  Seed256 stable_mask = Seed256::ones();
  /// §5 security extension: the CA may instruct the client to inject noise
  /// up to this Hamming distance (it has planned its search budget to cover
  /// it). kNoNoiseRequest means no instruction.
  u8 requested_noise = kNoNoiseRequest;

  friend bool operator==(const Challenge&, const Challenge&) = default;
};

struct DigestSubmission {
  hash::HashAlgo hash_algo = hash::HashAlgo::kSha3_256;
  Bytes digest;  // 20 bytes for SHA-1, 32 for SHA3-256

  friend bool operator==(const DigestSubmission&,
                         const DigestSubmission&) = default;
};

struct AuthResult {
  bool authenticated = false;
  /// Hamming distance at which the seed was found (-1 if not found).
  int found_distance = -1;
  /// Search-only time on the server, seconds.
  double search_seconds = 0.0;
  /// True when the search gave up because it exceeded the threshold T.
  bool timed_out = false;

  friend bool operator==(const AuthResult&, const AuthResult&) = default;
};

using Message =
    std::variant<HandshakeRequest, Challenge, DigestSubmission, AuthResult>;

/// Frames a message: 1 tag byte + fixed-layout payload.
Bytes serialize(const Message& msg);

enum class WireError {
  kEmptyFrame,
  kUnknownTag,
  kTruncated,
  kTrailingBytes,
  kBadEnumValue,
  kBadDigestLength,
  kBadChecksum,
};

std::string to_string(WireError e);

Expected<Message, WireError> deserialize(ByteSpan frame);

// --- sequenced retransmit framing -----------------------------------------
//
// Lossy links wrap every protocol frame in a sequence-numbered envelope so
// the stop-and-wait ARQ layer (rbc/protocol) can suppress duplicates and
// detect in-flight corruption without trusting the payload to parse:
//
//   tag 0x05 | seq u32 LE | len u32 LE | crc32 u32 LE | payload (len bytes)
//
// The CRC-32 (IEEE reflected polynomial) covers the payload only; any
// single-bit flip anywhere in the envelope is detected (header flips break
// the length/checksum consistency, payload flips break the checksum), so a
// corrupted frame degrades to a LOSS the retransmit path already handles.
// Lossless channels never use the envelope: the zero-fault wire format is
// byte-identical to the four bare message frames above.

/// CRC-32 (IEEE 802.3, reflected) — the envelope's integrity check.
u32 crc32_ieee(ByteSpan data);

struct SeqFrame {
  u32 seq = 0;
  Bytes payload;

  friend bool operator==(const SeqFrame&, const SeqFrame&) = default;
};

/// Wraps `payload` in the sequenced envelope.
Bytes seal_seq_frame(u32 seq, ByteSpan payload);

/// Parses and integrity-checks an envelope. kBadChecksum flags a frame that
/// framed correctly but whose payload was damaged in flight.
Expected<SeqFrame, WireError> open_seq_frame(ByteSpan frame);

}  // namespace rbc::net
