// Deterministic fault injection for the simulated transport.
//
// The paper's Table-5 numbers assume a lossless 0.90 s communication budget;
// a production server sees drops, duplicates, reordering, corruption and
// stalls as the steady state. FaultPlan turns that steady state into a pure
// function of a u64 seed: every message send draws one FaultDecision from a
// seeded stream, so an entire chaos run — and any failure it surfaces —
// replays bit-for-bit from its seed. Plans fork() per session exactly like
// LatencyModel::fork, so concurrent sessions draw independent fault streams
// while 1-shard and 4-shard runs given the same per-session salts see
// IDENTICAL faults (the base plan is deliberately not shard-salted).
//
// A plan whose rates are all zero is `inactive`: the channel then takes the
// exact pre-fault code path, keeping wire bytes and latency accounting
// byte-identical to the lossless transport.
#pragma once

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace rbc::net {

/// Per-message fault rates, each an independent Bernoulli draw in [0, 1].
struct FaultConfig {
  double drop_rate = 0.0;       // frame never reaches the peer
  double duplicate_rate = 0.0;  // frame delivered twice
  double corrupt_rate = 0.0;    // one bit of the frame flipped in flight
  double reorder_rate = 0.0;    // frame overtakes frames already queued
  double stall_rate = 0.0;      // frame delayed by an extra stall_s
  double stall_s = 0.0;         // stall duration charged when a stall fires

  /// An inactive config never fires; channels skip fault handling entirely
  /// (byte- and clock-identical to the fault-free transport).
  bool active() const noexcept {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || corrupt_rate > 0.0 ||
           reorder_rate > 0.0 || stall_rate > 0.0;
  }
};

/// What the plan decided for one message. Faults compose: a frame can be
/// both corrupted and duplicated (both copies carry the same flipped bit —
/// one physical retransmission of a damaged buffer).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  u64 corrupt_bit = 0;  // reduced mod the frame's bit length at apply time
  bool reorder = false;
  double stall_s = 0.0;  // 0 = no stall
};

/// Wire-level and retransmit counters for one session's link. The channel
/// fills the injection-side fields; the protocol's reliable link fills the
/// recovery-side fields; SessionReport carries the merged total.
struct LinkStats {
  u64 frames_sent = 0;            // physical frames handed to the channel
  u64 dropped = 0;                // frames the fault plan swallowed
  u64 corrupted = 0;              // frames bit-flipped in flight
  u64 duplicated = 0;             // extra copies the fault plan delivered
  u64 reordered = 0;              // frames that overtook queued ones
  u64 stalled = 0;                // frames that drew an extra stall
  u64 retransmits = 0;            // extra send attempts by the ARQ layer
  u64 timeouts = 0;               // response timeouts the ARQ layer charged
  u64 corrupt_discarded = 0;      // frames the receiver rejected (checksum/parse)
  u64 duplicates_suppressed = 0;  // stale sequence numbers discarded

  void merge(const LinkStats& o) noexcept {
    frames_sent += o.frames_sent;
    dropped += o.dropped;
    corrupted += o.corrupted;
    duplicated += o.duplicated;
    reordered += o.reordered;
    stalled += o.stalled;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    corrupt_discarded += o.corrupt_discarded;
    duplicates_suppressed += o.duplicates_suppressed;
  }

  /// Total fault-plan firings across all categories — the headline "how
  /// hostile was the link" number surfaced by the metrics export and the
  /// flight recorder's per-failure summary line.
  u64 injected_faults() const noexcept {
    return dropped + corrupted + duplicated + reordered + stalled;
  }
};

/// Seeded per-message fault schedule. next() consumes a FIXED number of RNG
/// draws per message regardless of which faults fire, so the decision for
/// message k is a pure function of (config, seed, k) — the property the
/// chaos harness's seed-reproducibility contract rests on.
class FaultPlan {
 public:
  /// Inactive plan: never fires, never draws.
  FaultPlan() = default;

  FaultPlan(const FaultConfig& cfg, u64 seed)
      : cfg_(cfg), seed_(seed), rng_(seed) {
    RBC_CHECK_MSG(valid_rate(cfg.drop_rate) && valid_rate(cfg.duplicate_rate) &&
                      valid_rate(cfg.corrupt_rate) &&
                      valid_rate(cfg.reorder_rate) &&
                      valid_rate(cfg.stall_rate),
                  "fault rates must be in [0, 1]");
    RBC_CHECK(cfg.stall_s >= 0.0);
  }

  bool active() const noexcept { return cfg_.active(); }
  const FaultConfig& config() const noexcept { return cfg_; }
  u64 seed() const noexcept { return seed_; }

  /// Derives an independent per-session plan: same rates, decision stream
  /// re-seeded from `salt` with the same mix LatencyModel::fork uses. Forking
  /// from the PLAN's original seed (not its current stream position) keeps
  /// the child a pure function of (seed, salt).
  FaultPlan fork(u64 salt) const {
    return FaultPlan(cfg_, seed_ ^ (salt * 0x9e3779b97f4a7c15ULL + 1));
  }

  /// Draws the fault decision for the next message. Exactly six RNG draws
  /// per call, always — fault independence across positions would break if
  /// firing one fault shifted the stream seen by later messages.
  FaultDecision next() {
    FaultDecision d;
    d.drop = rng_.next_double() < cfg_.drop_rate;
    d.duplicate = rng_.next_double() < cfg_.duplicate_rate;
    d.corrupt = rng_.next_double() < cfg_.corrupt_rate;
    d.corrupt_bit = rng_.next();
    d.reorder = rng_.next_double() < cfg_.reorder_rate;
    if (rng_.next_double() < cfg_.stall_rate) d.stall_s = cfg_.stall_s;
    return d;
  }

 private:
  static bool valid_rate(double r) noexcept { return r >= 0.0 && r <= 1.0; }

  FaultConfig cfg_{};
  u64 seed_ = 0;
  Xoshiro256 rng_{0};
};

}  // namespace rbc::net
