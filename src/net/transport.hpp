// Transport simulation: an in-process duplex channel with a latency model.
//
// The paper's end-to-end numbers (Table 5) add a measured 0.90 s
// communication budget — network round trips plus the client reading the PUF
// over USB — on top of the search time. We have no real WAN, so the channel
// accounts simulated time on a logical clock instead: each send charges the
// latency model, and the accumulated clock is reported alongside results.
// The paper's own fairness substitution (using the US<->US latency for the
// APU hosted in Israel) is mirrored by making the latency a per-channel
// constant.
#pragma once

#include <chrono>
#include <deque>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"

namespace rbc::net {

/// Deterministic latency model: fixed cost per message plus optional jitter.
class LatencyModel {
 public:
  /// Defaults reproduce the paper's 0.90 s total communication budget over
  /// the 4-message exchange (handshake, challenge, digest, result) plus the
  /// client-side PUF read: 0.15 s per message + 0.30 s PUF read.
  explicit LatencyModel(double per_message_s = 0.15, double jitter_s = 0.0,
                        u64 jitter_seed = 0)
      : per_message_s_(per_message_s),
        jitter_s_(jitter_s),
        jitter_seed_(jitter_seed),
        rng_(jitter_seed) {
    RBC_CHECK(per_message_s >= 0.0 && jitter_s >= 0.0);
  }

  /// Derives an independent per-session model from this one: same constants
  /// and realtime mode, jitter stream re-seeded from `salt`. Each serving
  /// shard holds ONE base model (seeded per shard) and forks it per session,
  /// so concurrent sessions never share a jitter RNG and shard s's latency
  /// draws are independent of how many sessions other shards admitted.
  LatencyModel fork(u64 salt) const {
    LatencyModel child(per_message_s_, jitter_s_,
                       jitter_seed_ ^ (salt * 0x9e3779b97f4a7c15ULL + 1));
    child.realtime_ = realtime_;
    return child;
  }

  double sample() {
    if (jitter_s_ == 0.0) return per_message_s_;
    return per_message_s_ + jitter_s_ * rng_.next_double();
  }

  /// Realtime mode: sampled latencies are SLEPT in wall-clock time instead
  /// of only being charged to the logical clock. A multi-session server
  /// overlaps these waits across sessions exactly as a real one overlaps
  /// network I/O, so server benchmarks use this to expose concurrency; the
  /// logical accounting is unchanged either way.
  LatencyModel& set_realtime(bool on) noexcept {
    realtime_ = on;
    return *this;
  }
  bool realtime() const noexcept { return realtime_; }

 private:
  double per_message_s_;
  double jitter_s_;
  u64 jitter_seed_;
  bool realtime_ = false;
  Xoshiro256 rng_;
};

/// One endpoint's view of a duplex in-process channel. Sends enqueue into
/// the peer's inbox and charge simulated time. An optional FaultPlan makes
/// the endpoint's OUTBOUND path lossy: each send draws one FaultDecision
/// (drop / duplicate / corrupt / reorder / stall) from the plan's seeded
/// stream. With an inactive plan the send path is byte- and clock-identical
/// to the original lossless transport.
class Channel {
 public:
  explicit Channel(LatencyModel latency, FaultPlan faults = FaultPlan())
      : latency_(std::move(latency)), faults_(std::move(faults)) {}

  /// Binds two endpoints back to back.
  static void connect(Channel& a, Channel& b) {
    a.peer_ = &b;
    b.peer_ = &a;
  }

  void send(const Message& msg) { send_frame(serialize(msg)); }

  /// Sends an already-encoded frame (the reliable link's sequenced envelopes
  /// go through here). Latency is charged first, then the fault plan decides
  /// the frame's fate.
  void send_frame(Bytes frame) {
    RBC_CHECK_MSG(peer_ != nullptr, "channel is not connected");
    ++stats_.frames_sent;
    if (!faults_.active()) {
      const double lat = latency_.sample();
      elapsed_s_ += lat;
      peer_->elapsed_s_ += lat;  // receiver also waits for the frame
      if (latency_.realtime()) sleep_for(lat);
      peer_->inbox_.push_back(std::move(frame));
      return;
    }
    const FaultDecision d = faults_.next();
    if (d.stall_s > 0.0) ++stats_.stalled;
    const double lat = latency_.sample() + d.stall_s;
    elapsed_s_ += lat;
    if (d.drop) {
      // The sender still spent the transmission time; the receiver never
      // saw the frame, so its clock is not charged.
      ++stats_.dropped;
      if (latency_.realtime()) sleep_for(lat);
      return;
    }
    peer_->elapsed_s_ += lat;
    if (latency_.realtime()) sleep_for(lat);
    if (d.corrupt && !frame.empty()) {
      ++stats_.corrupted;
      const u64 bit = d.corrupt_bit % (static_cast<u64>(frame.size()) * 8);
      frame[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    }
    if (d.duplicate) {
      ++stats_.duplicated;
      peer_->inbox_.push_back(frame);
    }
    if (d.reorder && !peer_->inbox_.empty()) {
      // Overtake everything still queued at the peer (late retransmits and
      // duplicates are what it typically jumps).
      ++stats_.reordered;
      peer_->inbox_.push_front(std::move(frame));
    } else {
      peer_->inbox_.push_back(std::move(frame));
    }
  }

  /// Simulates out-of-band time spent by this endpoint (e.g. the client's
  /// USB PUF read), so it lands in the communication budget.
  void charge_local_time(double seconds) {
    RBC_CHECK(seconds >= 0.0);
    elapsed_s_ += seconds;
    if (latency_.realtime()) sleep_for(seconds);
  }

  /// Charges BOTH endpoints of the link (the ARQ layer's response timeouts:
  /// sender and receiver sit out the same wait). Sleeps once in realtime.
  void charge_link_time(double seconds) {
    RBC_CHECK(seconds >= 0.0);
    RBC_CHECK_MSG(peer_ != nullptr, "channel is not connected");
    elapsed_s_ += seconds;
    peer_->elapsed_s_ += seconds;
    if (latency_.realtime()) sleep_for(seconds);
  }

  bool has_message() const noexcept { return !inbox_.empty(); }

  /// Pops the next frame without decoding (the reliable link validates the
  /// sequenced envelope itself before deserializing the payload).
  Bytes receive_raw() {
    RBC_CHECK_MSG(!inbox_.empty(), "receive on empty channel");
    Bytes frame = std::move(inbox_.front());
    inbox_.pop_front();
    return frame;
  }

  /// Pops the next frame and decodes it.
  Expected<Message, WireError> receive() { return deserialize(receive_raw()); }

  /// Accumulated simulated communication time at this endpoint, seconds.
  double elapsed_s() const noexcept { return elapsed_s_; }

  /// Outbound wire counters (what the fault plan did to this endpoint's
  /// sends); the recovery-side fields stay zero at this layer.
  const LinkStats& link_stats() const noexcept { return stats_; }

  bool faulty() const noexcept { return faults_.active(); }

  /// Injects a raw (possibly corrupt) frame into this endpoint's inbox —
  /// used by failure-injection tests.
  void inject_raw(Bytes frame) { inbox_.push_back(std::move(frame)); }

 private:
  static void sleep_for(double seconds) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  LatencyModel latency_;
  FaultPlan faults_;
  LinkStats stats_;
  Channel* peer_ = nullptr;
  std::deque<Bytes> inbox_;
  double elapsed_s_ = 0.0;
};

}  // namespace rbc::net
