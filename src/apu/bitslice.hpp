// Bit-sliced data layout for the APU compute model.
//
// The Gemini APU is an associative, bit-serial architecture: an operation is
// applied to one BIT POSITION of many processing elements at once (§3.3,
// Fig. 2). The standard way to model (and to reason about the cost of) such
// a machine on a commodity host is bit-slicing: 64 PEs' values are stored
// transposed, one machine word ("plane") per bit position, so a single host
// word-op performs the same boolean step on all 64 lanes — exactly one
// "column cycle" of the associative array.
//
// This header provides the transposed word types and the lane<->plane
// transposition routines; the kernels in sha1_kernel.hpp / keccak_kernel.hpp
// express SHA-1 and Keccak-f[1600] purely in plane operations, which is what
// lets bench_apu_bitslice count the boolean steps a PE actually executes per
// hash and compare against the calibrated PE-cycle costs.
#pragma once

#include <array>

#include "common/types.hpp"

namespace rbc::apu {

/// Number of lanes carried per plane word.
inline constexpr int kLanes = 64;

/// One bit position across all 64 lanes.
using Plane = u64;

/// A 32-bit value per lane, stored as 32 planes (plane b holds bit b).
using Word32 = std::array<Plane, 32>;

/// A 64-bit value per lane, stored as 64 planes.
using Word64 = std::array<Plane, 64>;

/// lanes[l] -> planes: plane b, bit l = (lanes[l] >> b) & 1.
inline Word32 transpose32(const std::array<u32, kLanes>& lanes) noexcept {
  Word32 planes{};
  for (int l = 0; l < kLanes; ++l) {
    const u32 v = lanes[static_cast<unsigned>(l)];
    for (int b = 0; b < 32; ++b) {
      planes[static_cast<unsigned>(b)] |=
          static_cast<u64>((v >> b) & 1u) << l;
    }
  }
  return planes;
}

inline std::array<u32, kLanes> untranspose32(const Word32& planes) noexcept {
  std::array<u32, kLanes> lanes{};
  for (int b = 0; b < 32; ++b) {
    const Plane p = planes[static_cast<unsigned>(b)];
    for (int l = 0; l < kLanes; ++l) {
      lanes[static_cast<unsigned>(l)] |=
          static_cast<u32>((p >> l) & 1u) << b;
    }
  }
  return lanes;
}

inline Word64 transpose64(const std::array<u64, kLanes>& lanes) noexcept {
  Word64 planes{};
  for (int l = 0; l < kLanes; ++l) {
    const u64 v = lanes[static_cast<unsigned>(l)];
    for (int b = 0; b < 64; ++b) {
      planes[static_cast<unsigned>(b)] |= ((v >> b) & 1u) << l;
    }
  }
  return planes;
}

inline std::array<u64, kLanes> untranspose64(const Word64& planes) noexcept {
  std::array<u64, kLanes> lanes{};
  for (int b = 0; b < 64; ++b) {
    const Plane p = planes[static_cast<unsigned>(b)];
    for (int l = 0; l < kLanes; ++l) {
      lanes[static_cast<unsigned>(l)] |= ((p >> l) & 1u) << b;
    }
  }
  return lanes;
}

/// Broadcast of a scalar constant: plane b is all-ones iff bit b is set.
/// On the real array this is a mask load, not a compute cycle.
inline Word32 broadcast32(u32 value) noexcept {
  Word32 planes;
  for (int b = 0; b < 32; ++b) {
    planes[static_cast<unsigned>(b)] = ((value >> b) & 1u) ? ~0ULL : 0ULL;
  }
  return planes;
}

}  // namespace rbc::apu
