#include "apu/sha1_kernel.hpp"

namespace rbc::apu {

namespace {

u32 load_be32(const u8* p) noexcept {
  return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
         (static_cast<u32>(p[2]) << 8) | static_cast<u32>(p[3]);
}

}  // namespace

void sha1_seed_x64(const std::array<Seed256, kLanes>& seeds,
                   std::array<hash::Digest160, kLanes>& digests,
                   VectorUnit& vu) {
  // Transpose the 16-word single-block message (fixed padding, as the
  // scalar fast path): w[0..7] = seed words big-endian, w[8] = 0x80000000,
  // w[15] = 256.
  std::array<Word32, 16> w;
  for (int t = 0; t < 8; ++t) {
    std::array<u32, kLanes> lane_words;
    for (int l = 0; l < kLanes; ++l) {
      const auto bytes = seeds[static_cast<unsigned>(l)].to_bytes();
      lane_words[static_cast<unsigned>(l)] = load_be32(bytes.data() + 4 * t);
    }
    w[static_cast<unsigned>(t)] = transpose32(lane_words);
  }
  w[8] = broadcast32(0x80000000u);
  vu.note_broadcast(32);
  for (int t = 9; t < 15; ++t) w[static_cast<unsigned>(t)] = Word32{};
  w[15] = broadcast32(256u);
  vu.note_broadcast(32);

  Word32 a = broadcast32(0x67452301u);
  Word32 b = broadcast32(0xefcdab89u);
  Word32 c = broadcast32(0x98badcfeu);
  Word32 d = broadcast32(0x10325476u);
  Word32 e = broadcast32(0xc3d2e1f0u);
  vu.note_broadcast(5 * 32);
  const Word32 h0 = a, h1 = b, h2 = c, h3 = d, h4 = e;

  const Word32 k1 = broadcast32(0x5a827999u);
  const Word32 k2 = broadcast32(0x6ed9eba1u);
  const Word32 k3 = broadcast32(0x8f1bbcdcu);
  const Word32 k4 = broadcast32(0xca62c1d6u);
  vu.note_broadcast(4 * 32);

  auto schedule = [&](int t) -> Word32 {
    // w[t] = rotl1(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16]) over the ring buffer.
    Word32 v = vu.xor32(w[static_cast<unsigned>((t - 3) & 15)],
                        w[static_cast<unsigned>((t - 8) & 15)]);
    v = vu.xor32(v, w[static_cast<unsigned>((t - 14) & 15)]);
    v = vu.xor32(v, w[static_cast<unsigned>(t & 15)]);
    v = rotl32_planes(v, 1);
    w[static_cast<unsigned>(t & 15)] = v;
    return v;
  };

  auto round = [&](const Word32& f, const Word32& k, const Word32& wt) {
    // tmp = rotl5(a) + f + e + k + wt  (four bit-serial additions).
    Word32 tmp = vu.add32(rotl32_planes(a, 5), f);
    tmp = vu.add32(tmp, e);
    tmp = vu.add32(tmp, k);
    tmp = vu.add32(tmp, wt);
    e = d;
    d = c;
    c = rotl32_planes(b, 30);
    b = a;
    a = tmp;
  };

  auto f_ch = [&]() {
    // (b & c) | (~b & d)
    return vu.or32(vu.and32(b, c), vu.and32(vu.not32(b), d));
  };
  auto f_parity = [&]() { return vu.xor32(vu.xor32(b, c), d); };
  auto f_maj = [&]() {
    return vu.or32(vu.or32(vu.and32(b, c), vu.and32(b, d)), vu.and32(c, d));
  };

  for (int t = 0; t < 16; ++t) round(f_ch(), k1, w[static_cast<unsigned>(t)]);
  for (int t = 16; t < 20; ++t) round(f_ch(), k1, schedule(t));
  for (int t = 20; t < 40; ++t) round(f_parity(), k2, schedule(t));
  for (int t = 40; t < 60; ++t) round(f_maj(), k3, schedule(t));
  for (int t = 60; t < 80; ++t) round(f_parity(), k4, schedule(t));

  const Word32 out[5] = {vu.add32(h0, a), vu.add32(h1, b), vu.add32(h2, c),
                         vu.add32(h3, d), vu.add32(h4, e)};

  for (int word = 0; word < 5; ++word) {
    const auto lanes = untranspose32(out[word]);
    for (int l = 0; l < kLanes; ++l) {
      const u32 v = lanes[static_cast<unsigned>(l)];
      auto& bytes = digests[static_cast<unsigned>(l)].bytes;
      bytes[static_cast<unsigned>(4 * word + 0)] = static_cast<u8>(v >> 24);
      bytes[static_cast<unsigned>(4 * word + 1)] = static_cast<u8>(v >> 16);
      bytes[static_cast<unsigned>(4 * word + 2)] = static_cast<u8>(v >> 8);
      bytes[static_cast<unsigned>(4 * word + 3)] = static_cast<u8>(v);
    }
  }
}

}  // namespace rbc::apu
