// The APU's boolean vector unit, with cost accounting.
//
// Each call applies one boolean column operation across all lanes — one
// "cycle" of the bit-serial array per §3.3's execution model. The unit
// counts operations by class so the kernels can report how many column
// cycles one hash costs a PE; bench_apu_bitslice compares those counts with
// the PE-cycle constants calibrated from the paper's Table 5.
//
// Plane *renaming* (bit rotations, register moves between named planes) is
// free: on the physical array it is addressing, not compute — the same
// reason Chase's Gray-code transitions are cheap there.
#pragma once

#include "apu/bitslice.hpp"

namespace rbc::apu {

struct OpCounts {
  u64 xor_ops = 0;
  u64 and_ops = 0;
  u64 or_ops = 0;
  u64 not_ops = 0;
  u64 broadcasts = 0;

  u64 total() const noexcept {
    return xor_ops + and_ops + or_ops + not_ops + broadcasts;
  }

  OpCounts& operator+=(const OpCounts& other) noexcept {
    xor_ops += other.xor_ops;
    and_ops += other.and_ops;
    or_ops += other.or_ops;
    not_ops += other.not_ops;
    broadcasts += other.broadcasts;
    return *this;
  }
};

class VectorUnit {
 public:
  Plane vxor(Plane a, Plane b) noexcept {
    ++counts_.xor_ops;
    return a ^ b;
  }
  Plane vand(Plane a, Plane b) noexcept {
    ++counts_.and_ops;
    return a & b;
  }
  Plane vor(Plane a, Plane b) noexcept {
    ++counts_.or_ops;
    return a | b;
  }
  Plane vnot(Plane a) noexcept {
    ++counts_.not_ops;
    return ~a;
  }
  /// a ^ (~b & c) — the chi step primitive; counted as two ops (the array
  /// computes and-not in one pass, then xors).
  Plane vchi(Plane a, Plane b, Plane c) noexcept {
    ++counts_.and_ops;
    ++counts_.xor_ops;
    return a ^ (~b & c);
  }

  void note_broadcast(int planes) noexcept {
    counts_.broadcasts += static_cast<u64>(planes);
  }

  const OpCounts& counts() const noexcept { return counts_; }
  void reset() noexcept { counts_ = OpCounts{}; }

  // --- composite 32-bit arithmetic, bit-serial --------------------------------

  /// dst = a + b (mod 2^32), ripple-carry: 5 column ops per bit position
  /// except the first (3) and last (2) — the canonical bit-serial adder.
  Word32 add32(const Word32& a, const Word32& b) noexcept {
    Word32 sum;
    Plane carry = 0;
    for (int bit = 0; bit < 32; ++bit) {
      const Plane ab = vxor(a[static_cast<unsigned>(bit)],
                            b[static_cast<unsigned>(bit)]);
      sum[static_cast<unsigned>(bit)] = vxor(ab, carry);
      if (bit + 1 < 32) {
        carry = vor(vand(a[static_cast<unsigned>(bit)],
                         b[static_cast<unsigned>(bit)]),
                    vand(carry, ab));
      }
    }
    return sum;
  }

  Word32 xor32(const Word32& a, const Word32& b) noexcept {
    Word32 r;
    for (int bit = 0; bit < 32; ++bit)
      r[static_cast<unsigned>(bit)] =
          vxor(a[static_cast<unsigned>(bit)], b[static_cast<unsigned>(bit)]);
    return r;
  }

  Word32 and32(const Word32& a, const Word32& b) noexcept {
    Word32 r;
    for (int bit = 0; bit < 32; ++bit)
      r[static_cast<unsigned>(bit)] =
          vand(a[static_cast<unsigned>(bit)], b[static_cast<unsigned>(bit)]);
    return r;
  }

  Word32 or32(const Word32& a, const Word32& b) noexcept {
    Word32 r;
    for (int bit = 0; bit < 32; ++bit)
      r[static_cast<unsigned>(bit)] =
          vor(a[static_cast<unsigned>(bit)], b[static_cast<unsigned>(bit)]);
    return r;
  }

  Word32 not32(const Word32& a) noexcept {
    Word32 r;
    for (int bit = 0; bit < 32; ++bit)
      r[static_cast<unsigned>(bit)] = vnot(a[static_cast<unsigned>(bit)]);
    return r;
  }

 private:
  OpCounts counts_;
};

/// Left-rotation of a 32-bit bit-sliced value: pure plane renaming — free.
inline Word32 rotl32_planes(const Word32& a, int k) noexcept {
  Word32 r;
  for (int bit = 0; bit < 32; ++bit)
    r[static_cast<unsigned>((bit + k) % 32)] = a[static_cast<unsigned>(bit)];
  return r;
}

/// Left-rotation of a 64-bit Keccak lane in plane form — also free.
inline Word64 rotl64_planes(const Word64& a, int k) noexcept {
  Word64 r;
  for (int bit = 0; bit < 64; ++bit)
    r[static_cast<unsigned>((bit + k) % 64)] = a[static_cast<unsigned>(bit)];
  return r;
}

}  // namespace rbc::apu
