#include "apu/keccak_kernel.hpp"

#include <cstring>

namespace rbc::apu {

namespace {

constexpr u64 kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRho[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                          25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

Word64 xor64(VectorUnit& vu, const Word64& a, const Word64& b) {
  Word64 r;
  for (int bit = 0; bit < 64; ++bit)
    r[static_cast<unsigned>(bit)] =
        vu.vxor(a[static_cast<unsigned>(bit)], b[static_cast<unsigned>(bit)]);
  return r;
}

}  // namespace

void keccak_f1600_x64(std::array<Word64, 25>& a, VectorUnit& vu) {
  for (int round = 0; round < 24; ++round) {
    // theta
    Word64 c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = xor64(vu, a[static_cast<unsigned>(x)],
                   a[static_cast<unsigned>(x + 5)]);
      c[x] = xor64(vu, c[x], a[static_cast<unsigned>(x + 10)]);
      c[x] = xor64(vu, c[x], a[static_cast<unsigned>(x + 15)]);
      c[x] = xor64(vu, c[x], a[static_cast<unsigned>(x + 20)]);
    }
    Word64 d[5];
    for (int x = 0; x < 5; ++x)
      d[x] = xor64(vu, c[(x + 4) % 5], rotl64_planes(c[(x + 1) % 5], 1));
    for (int i = 0; i < 25; ++i)
      a[static_cast<unsigned>(i)] =
          xor64(vu, a[static_cast<unsigned>(i)], d[i % 5]);

    // rho + pi: pure plane/lane renaming — free on the array.
    std::array<Word64, 25> b;
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        const int src = x + 5 * y;
        const int dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[static_cast<unsigned>(dst)] =
            rotl64_planes(a[static_cast<unsigned>(src)], kRho[src]);
      }
    }

    // chi: a[x] = b[x] ^ (~b[x+1] & b[x+2]) per plane.
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        for (int bit = 0; bit < 64; ++bit) {
          a[static_cast<unsigned>(x + 5 * y)][static_cast<unsigned>(bit)] =
              vu.vchi(
                  b[static_cast<unsigned>(x + 5 * y)][static_cast<unsigned>(bit)],
                  b[static_cast<unsigned>((x + 1) % 5 + 5 * y)]
                   [static_cast<unsigned>(bit)],
                  b[static_cast<unsigned>((x + 2) % 5 + 5 * y)]
                   [static_cast<unsigned>(bit)]);
        }
      }
    }

    // iota: XOR the round constant into lane 0 — only the set bits cost a
    // column op (the array flips those planes against an all-ones mask).
    const u64 rc = kRoundConstants[round];
    for (int bit = 0; bit < 64; ++bit) {
      if ((rc >> bit) & 1u) {
        a[0][static_cast<unsigned>(bit)] =
            vu.vnot(a[0][static_cast<unsigned>(bit)]);
      }
    }
  }
}

void sha3_256_seed_x64(const std::array<Seed256, kLanes>& seeds,
                       std::array<hash::Digest256, kLanes>& digests,
                       VectorUnit& vu) {
  // Fixed-padding absorb (as the scalar fast path): lanes 0..3 from the
  // seed, lane 4 = 0x06, lane 16 = 1<<63, rest zero.
  std::array<Word64, 25> state;
  for (int lane = 0; lane < 4; ++lane) {
    std::array<u64, kLanes> words;
    for (int l = 0; l < kLanes; ++l)
      words[static_cast<unsigned>(l)] =
          seeds[static_cast<unsigned>(l)].word(lane);
    state[static_cast<unsigned>(lane)] = transpose64(words);
  }
  state[4] = Word64{};
  state[4][1] = ~0ULL;  // 0x06 = bits 1 and 2
  state[4][2] = ~0ULL;
  for (int i = 5; i < 25; ++i) state[static_cast<unsigned>(i)] = Word64{};
  state[16][63] = ~0ULL;  // final pad bit
  vu.note_broadcast(3);

  keccak_f1600_x64(state, vu);

  // Digest = first 32 bytes = lanes 0..3, little-endian.
  for (int lane = 0; lane < 4; ++lane) {
    const auto words = untranspose64(state[static_cast<unsigned>(lane)]);
    for (int l = 0; l < kLanes; ++l) {
      std::memcpy(digests[static_cast<unsigned>(l)].bytes.data() + 8 * lane,
                  &words[static_cast<unsigned>(l)], 8);
    }
  }
}

}  // namespace rbc::apu
