// Bit-sliced Keccak-f[1600] / SHA3-256 over 64 lanes — the SALTED-APU SHA-3
// kernel (§3.3). Keccak is a natural fit for an associative bit-serial
// machine: theta and chi are pure boolean column operations and every
// rotation is plane renaming (free addressing, no compute) — yet the state
// is 1600 bit-columns, which is exactly why §3.3 needs 80 BPs per PE for
// SHA-3 versus 32 for SHA-1 and ends up with 2.5x fewer concurrent PEs.
#pragma once

#include "apu/vector_unit.hpp"
#include "bits/seed256.hpp"
#include "hash/digest.hpp"

namespace rbc::apu {

/// Keccak-f[1600] on 25 bit-sliced lanes (64 instances at once).
void keccak_f1600_x64(std::array<Word64, 25>& state, VectorUnit& vu);

/// SHA3-256 of 64 seeds at once (fixed 32-byte-input padding, as the scalar
/// fast path). digests[l] equals the scalar sha3_256_seed(seeds[l]).
void sha3_256_seed_x64(const std::array<Seed256, kLanes>& seeds,
                       std::array<hash::Digest256, kLanes>& digests,
                       VectorUnit& vu);

}  // namespace rbc::apu
