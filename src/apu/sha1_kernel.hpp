// Bit-sliced SHA-1 over 64 lanes — the SALTED-APU hashing kernel (§3.3).
#pragma once

#include "apu/vector_unit.hpp"
#include "bits/seed256.hpp"
#include "hash/digest.hpp"

namespace rbc::apu {

/// Hashes 64 seeds simultaneously in bit-sliced form; digests[l] equals the
/// scalar sha1_seed(seeds[l]). `vu` accumulates the column-cycle counts.
void sha1_seed_x64(const std::array<Seed256, kLanes>& seeds,
                   std::array<hash::Digest160, kLanes>& digests,
                   VectorUnit& vu);

}  // namespace rbc::apu
