// The complete SALTED-APU search pipeline in the bit-sliced execution model:
// load a batch of 64 candidate seeds, hash them all at once, and detect a
// match with an ASSOCIATIVE COMPARE — the operation the APU is named for:
// every digest bit-plane is XNORed against the broadcast target bit and the
// planes are ANDed into a one-bit-per-lane match mask, all in column cycles.
//
// This is the §3.3 execution shape: "each combination is used to generate
// 256 seed permutations, after which a new startup seed is loaded"; the
// early-exit flag is checked once per batch. Here the batch is 64 lanes
// (one plane word) — the host-model granularity; the cost accounting scales
// to the device's 65k/26k PEs through sim::ApuModel.
#pragma once

#include <optional>

#include "apu/keccak_kernel.hpp"
#include "apu/sha1_kernel.hpp"
#include "combinatorics/shell.hpp"
#include "common/types.hpp"

namespace rbc::apu {

struct ApuSearchResult {
  bool found = false;
  Seed256 seed;
  int distance = -1;
  u64 seeds_hashed = 0;
  /// Total column cycles spent (hashing + associative compares).
  u64 column_cycles = 0;
};

/// Plane-wise associative compare: returns a mask with bit l set iff lane
/// l's digest equals `target`. Costs 2 column ops per digest bit.
template <std::size_t N>
Plane associative_match(const std::array<hash::Digest<N>, kLanes>& digests,
                        const hash::Digest<N>& target, VectorUnit& vu) {
  // Transpose digests into planes on demand (byte-serial, charged as
  // broadcast/load traffic rather than compute).
  Plane match = ~0ULL;
  for (std::size_t byte = 0; byte < N; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Plane plane = 0;
      for (int l = 0; l < kLanes; ++l) {
        plane |= static_cast<u64>(
                     (digests[static_cast<unsigned>(l)].bytes[byte] >> bit) & 1u)
                 << l;
      }
      const Plane target_plane =
          ((target.bytes[byte] >> bit) & 1u) ? ~0ULL : 0ULL;
      // XNOR then accumulate: two column ops per digest bit.
      match = vu.vand(match, vu.vnot(vu.vxor(plane, target_plane)));
    }
  }
  return match;
}

/// Searches the Hamming ball of radius d around s_init for a seed whose
/// hash (SHA-1 or SHA3-256, chosen by Hash policy x64 kernel) matches the
/// target digest, in 64-lane bit-sliced batches with per-batch exit checks.
template <typename Digest,
          void (*KernelX64)(const std::array<Seed256, kLanes>&,
                            std::array<Digest, kLanes>&, VectorUnit&),
          comb::SeedIteratorFactory Factory>
ApuSearchResult apu_bitsliced_search(const Seed256& s_init,
                                     const Digest& target, int d,
                                     Factory& factory, VectorUnit& vu) {
  ApuSearchResult result;

  std::array<Seed256, kLanes> batch;
  std::array<Digest, kLanes> digests;

  auto flush_batch = [&](int filled, int shell) -> bool {
    // Unused lanes repeat lane 0 so kernel cost stays uniform; they cannot
    // produce spurious matches ahead of lane 0 itself.
    for (int l = filled; l < kLanes; ++l) batch[static_cast<unsigned>(l)] = batch[0];
    KernelX64(batch, digests, vu);
    const Plane match = associative_match(digests, target, vu);
    result.seeds_hashed += static_cast<u64>(filled);
    if (match != 0) {
      const int lane = std::countr_zero(match);
      if (lane < filled) {
        result.found = true;
        result.seed = batch[static_cast<unsigned>(lane)];
        result.distance = shell;
        return true;
      }
    }
    return false;
  };

  // Distance 0.
  batch[0] = s_init;
  if (flush_batch(1, 0)) {
    result.column_cycles = vu.counts().total();
    return result;
  }

  for (int shell = 1; shell <= d && !result.found; ++shell) {
    factory.prepare(shell, /*num_threads=*/1);
    auto it = factory.make(0);
    Seed256 mask;
    int filled = 0;
    while (it.next(mask)) {
      batch[static_cast<unsigned>(filled++)] = s_init ^ mask;
      if (filled == kLanes) {
        if (flush_batch(filled, shell)) break;
        filled = 0;
      }
    }
    if (!result.found && filled > 0) flush_batch(filled, shell);
  }
  result.column_cycles = vu.counts().total();
  return result;
}

}  // namespace rbc::apu
