// Hamming-shell enumeration and the seed-iterator factory concepts.
//
// The RBC search (Algorithm 1) visits the Hamming ball around S_init one
// shell at a time: shell i holds the C(256, i) seeds at distance exactly i.
// The search engine XORs each produced mask into S_init to form candidate
// seeds. Shells are partitioned two ways, and all three iterator families
// (Gosper, Algorithm 515, Chase 382) model both, which is what lets the
// engines and benches swap them freely:
//
//   * Static (SeedIteratorFactory): prepare(k, p) splits the shell into
//     exactly p contiguous slices and make(r) hands slice r to work unit r —
//     the paper's §3.2.1 equal-workload partition. Simple, but a planted
//     match, a ragged last slice, or a slow worker idles the rest of the
//     group at the shell barrier.
//   * Tiled (TiledSeedIteratorFactory): plan(k, stride, abort) builds an
//     immutable shell plan whose tile t covers ranks [t*stride,
//     min((t+1)*stride, total)); make_tile(t) opens any tile independently
//     via the family's (start_rank, count) constructor (Chase resumes from a
//     snapshot saved at every stride boundary). Plans are shared-ownership
//     and safe to read from any number of workers, which is what the
//     work-stealing TileScheduler needs to hand the whole ball out from one
//     atomic cursor. comb::ShellTiler picks the per-shell stride.
#pragma once

#include <concepts>
#include <functional>
#include <memory>
#include <string_view>

#include "bits/seed256.hpp"
#include "combinatorics/binomial.hpp"
#include "common/types.hpp"

namespace rbc::comb {

template <typename F>
concept SeedIteratorFactory =
    requires(F f, const F cf, int k, int p, int r, Seed256& mask) {
      typename F::iterator;
      { f.prepare(k, p) };
      { cf.make(r) } -> std::same_as<typename F::iterator>;
      { F::name() } -> std::convertible_to<std::string_view>;
    } && requires(typename F::iterator it, Seed256& mask) {
      { it.next(mask) } -> std::same_as<bool>;
    };

/// A factory that can additionally decompose a shell into an immutable tile
/// plan for the work-stealing schedule. `abort`, polled during any
/// precomputation walk, lets a deadline cut plan construction short — plan()
/// then returns nullptr.
template <typename F>
concept TiledSeedIteratorFactory =
    SeedIteratorFactory<F> &&
    requires(F f, const F cf, int k, u64 stride, u64 t,
             const std::function<bool()>& abort) {
      typename F::shell_plan;
      { cf.n_bits() } -> std::convertible_to<int>;
      { f.plan(k, stride, abort) }
          -> std::same_as<std::shared_ptr<const typename F::shell_plan>>;
    } && requires(const typename F::shell_plan plan, u64 t) {
      { plan.tiles() } -> std::convertible_to<u64>;
      { plan.total() } -> std::convertible_to<u64>;
      { plan.tile_count(t) } -> std::convertible_to<u64>;
      { plan.make_tile(t) } -> std::same_as<typename F::iterator>;
    };

/// Visits every seed in the Hamming ball of radius d around `base`
/// (distances 0..d inclusive), single-threaded, in shell order. Returns the
/// number of seeds visited. The visitor returns true to continue, false to
/// stop early. The seed-space width comes from the factory (all three
/// families are constructed with their n_bits). Used by reference tests and
/// the quickstart path.
template <SeedIteratorFactory Factory>
u64 for_each_in_ball(Factory& factory, const Seed256& base, int d,
                     const std::function<bool(const Seed256&, int)>& visit) {
  u64 visited = 0;
  ++visited;
  if (!visit(base, 0)) return visited;
  for (int k = 1; k <= d; ++k) {
    factory.prepare(k, /*num_threads=*/1);
    auto it = factory.make(0);
    Seed256 mask;
    while (it.next(mask)) {
      ++visited;
      if (!visit(base ^ mask, k)) return visited;
    }
  }
  return visited;
}

}  // namespace rbc::comb
