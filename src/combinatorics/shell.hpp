// Hamming-shell enumeration and the SeedIteratorFactory concept.
//
// The RBC search (Algorithm 1) visits the Hamming ball around S_init one
// shell at a time: shell i holds the C(256, i) seeds at distance exactly i.
// A SeedIteratorFactory partitions one shell's combination sequence across p
// threads; the search engine XORs each produced mask into S_init to form
// candidate seeds. All three iterator families (Gosper, Algorithm 515,
// Chase 382) model this concept, which is what lets the engines and benches
// swap them freely.
#pragma once

#include <concepts>
#include <functional>
#include <string_view>

#include "bits/seed256.hpp"
#include "combinatorics/binomial.hpp"
#include "common/types.hpp"

namespace rbc::comb {

template <typename F>
concept SeedIteratorFactory =
    requires(F f, const F cf, int k, int p, int r, Seed256& mask) {
      typename F::iterator;
      { f.prepare(k, p) };
      { cf.make(r) } -> std::same_as<typename F::iterator>;
      { F::name() } -> std::convertible_to<std::string_view>;
    } && requires(typename F::iterator it, Seed256& mask) {
      { it.next(mask) } -> std::same_as<bool>;
    };

/// Visits every seed in the Hamming ball of radius d around `base`
/// (distances 0..d inclusive), single-threaded, in shell order. Returns the
/// number of seeds visited. The visitor returns true to continue, false to
/// stop early. The seed-space width comes from the factory (all three
/// families are constructed with their n_bits). Used by reference tests and
/// the quickstart path.
template <SeedIteratorFactory Factory>
u64 for_each_in_ball(Factory& factory, const Seed256& base, int d,
                     const std::function<bool(const Seed256&, int)>& visit) {
  u64 visited = 0;
  ++visited;
  if (!visit(base, 0)) return visited;
  for (int k = 1; k <= d; ++k) {
    factory.prepare(k, /*num_threads=*/1);
    auto it = factory.make(0);
    Seed256 mask;
    while (it.next(mask)) {
      ++visited;
      if (!visit(base ^ mask, k)) return visited;
    }
  }
  return visited;
}

}  // namespace rbc::comb
