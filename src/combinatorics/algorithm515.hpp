// Algorithm 515 (Buckles & Lybanon 1977): lexicographic unranking of
// combinations — the "highly parallelizable" seed iterator of §3.2.1.
//
// Every combination is addressable by its lexicographic index, so threads can
// generate candidates independently with no shared state: thread r simply
// unranks indices [lo_r, hi_r). The cost is the unranking loop itself, which
// walks a binomial lookup table (the paper exploits GPU memory bandwidth for
// this table; here it is BinomialTable). Two stepping modes are provided:
//
//   * kUnrankEach — every candidate is produced by a full unrank. This is the
//     fully independent mode the paper describes and the one whose overhead
//     Table 4 measures.
//   * kSuccessor — unrank once, then advance with the cheap lexicographic
//     successor. A natural CPU optimization; kept for the iterator ablation.
#pragma once

#include <string_view>

#include "combinatorics/combination.hpp"
#include "common/types.hpp"

namespace rbc::comb {

/// Algorithm 515 proper: the combination at lexicographic index `rank`
/// (0-based) among all C(n_bits, k) ascending k-subsets of {0..n_bits-1}.
Combination unrank_lexicographic(u128 rank, int k, int n_bits = kSeedBits);

enum class Alg515Mode { kUnrankEach, kSuccessor };

class Algorithm515Iterator {
 public:
  Algorithm515Iterator(int k, u128 start_rank, u64 count,
                       Alg515Mode mode = Alg515Mode::kUnrankEach,
                       int n_bits = kSeedBits);

  static constexpr std::string_view name() { return "Algorithm 515"; }

  bool next(Seed256& mask) noexcept;

  u64 produced() const noexcept { return produced_; }

 private:
  int k_;
  int n_bits_;
  Alg515Mode mode_;
  u128 start_rank_;
  u64 count_;
  u64 produced_;
  Combination current_;  // successor mode state
};

class Algorithm515Factory {
 public:
  using iterator = Algorithm515Iterator;

  explicit Algorithm515Factory(Alg515Mode mode = Alg515Mode::kUnrankEach,
                               int n_bits = kSeedBits)
      : mode_(mode), n_bits_(n_bits) {}

  static constexpr std::string_view name() { return "Algorithm 515"; }

  void prepare(int k, int num_threads) {
    k_ = k;
    p_ = num_threads;
    total_ = binomial128(n_bits_, k);
  }

  Algorithm515Iterator make(int r) const;

 private:
  Alg515Mode mode_;
  int n_bits_;
  int k_ = 0;
  int p_ = 1;
  u128 total_ = 0;
};

}  // namespace rbc::comb
