// Algorithm 515 (Buckles & Lybanon 1977): lexicographic unranking of
// combinations — the "highly parallelizable" seed iterator of §3.2.1.
//
// Every combination is addressable by its lexicographic index, so threads can
// generate candidates independently with no shared state: thread r simply
// unranks indices [lo_r, hi_r). The cost is the unranking loop itself, which
// walks a binomial lookup table (the paper exploits GPU memory bandwidth for
// this table; here it is BinomialTable). Two stepping modes are provided:
//
//   * kUnrankEach — every candidate is produced by a full unrank. This is the
//     fully independent mode the paper describes and the one whose overhead
//     Table 4 measures.
//   * kSuccessor — unrank once, then advance with the cheap lexicographic
//     successor. A natural CPU optimization; kept for the iterator ablation.
#pragma once

#include <functional>
#include <memory>
#include <string_view>

#include "combinatorics/combination.hpp"
#include "common/types.hpp"

namespace rbc::comb {

/// Algorithm 515 proper: the combination at lexicographic index `rank`
/// (0-based) among all C(n_bits, k) ascending k-subsets of {0..n_bits-1}.
Combination unrank_lexicographic(u128 rank, int k, int n_bits = kSeedBits);

enum class Alg515Mode { kUnrankEach, kSuccessor };

class Algorithm515Iterator {
 public:
  Algorithm515Iterator(int k, u128 start_rank, u64 count,
                       Alg515Mode mode = Alg515Mode::kUnrankEach,
                       int n_bits = kSeedBits);

  static constexpr std::string_view name() { return "Algorithm 515"; }

  bool next(Seed256& mask) noexcept;

  u64 produced() const noexcept { return produced_; }

 private:
  int k_;
  int n_bits_;
  Alg515Mode mode_;
  u128 start_rank_;
  u64 count_;
  u64 produced_;
  Combination current_;  // successor mode state
};

/// Immutable tile decomposition of one shell: tile t covers lexicographic
/// ranks [t*stride, min((t+1)*stride, total)). Unranking makes every tile
/// independently addressable — the "highly parallelizable" property §3.2.1
/// credits Algorithm 515 for is exactly what makes guided/dynamic tiling
/// coordination-free.
class Alg515ShellPlan {
 public:
  using iterator = Algorithm515Iterator;

  Alg515ShellPlan(int k, u64 stride, Alg515Mode mode, int n_bits);

  u64 tiles() const noexcept { return tiles_; }
  u64 total() const noexcept { return total_; }
  u64 tile_count(u64 t) const noexcept;
  Algorithm515Iterator make_tile(u64 t) const;

 private:
  int k_;
  int n_bits_;
  Alg515Mode mode_;
  u64 stride_;
  u64 total_;
  u64 tiles_;
};

class Algorithm515Factory {
 public:
  using iterator = Algorithm515Iterator;
  using shell_plan = Alg515ShellPlan;

  explicit Algorithm515Factory(Alg515Mode mode = Alg515Mode::kUnrankEach,
                               int n_bits = kSeedBits)
      : mode_(mode), n_bits_(n_bits) {}

  static constexpr std::string_view name() { return "Algorithm 515"; }

  int n_bits() const noexcept { return n_bits_; }

  void prepare(int k, int num_threads) {
    k_ = k;
    p_ = num_threads;
    total_ = binomial128(n_bits_, k);
  }

  Algorithm515Iterator make(int r) const;

  /// Thread-safe shell plan for the tiled schedule (`abort` unused: there is
  /// no precomputation walk to cut short).
  std::shared_ptr<const Alg515ShellPlan> plan(
      int k, u64 stride, const std::function<bool()>& abort = {}) const;

 private:
  Alg515Mode mode_;
  int n_bits_;
  int k_ = 0;
  int p_ = 1;
  u128 total_ = 0;
};

}  // namespace rbc::comb
