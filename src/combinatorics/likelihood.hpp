// Maximum-likelihood-first shell enumeration.
//
// The canonical iterators (Gosper/515/Chase) visit a shell in combinatorial
// order, so the expected hit position is half the shell no matter which bits
// actually flipped. But the SRAM PUF model concentrates nearly all flips in a
// small erratic-cell minority, and enrollment calibration measures per-cell
// flip rates (puf::ReliabilityProfile). This module orders each shell by
// posterior likelihood instead: under an independent-bit flip model with
// per-bit probability p_i, the probability that exactly the subset S flipped
// is proportional to prod_{i in S} p_i/(1-p_i), so sorting subsets by
// DESCENDING product probability equals sorting by ASCENDING sum of the
// per-bit log-odds weights w_i = round(16*ln((1-p_i)/p_i)) — exactly the
// quantized u8 weights the reliability profile stores.
//
// WeightedShellEnumerator emits all C(n, k) subsets of shell k in
// non-decreasing weight-sum order WITHOUT materializing the shell: a lazy
// best-first (A*) walk over prefix states with Lawler/Murty-style binary
// branching (extend-last / shift-last over positions pre-sorted by weight).
// Each emission costs O(k + log h) for frontier size h, and h is bounded by
// the number of candidates popped, so an early hit at rank r costs O(k·r)
// total work — the whole point of the optimization.
#pragma once

#include <array>
#include <memory>
#include <queue>
#include <vector>

#include "bits/seed256.hpp"
#include "combinatorics/binomial.hpp"
#include "common/types.hpp"

namespace rbc::comb {

/// Per-bit weights plus the position permutation sorted by (weight, bit) —
/// the shared, immutable input of every WeightedShellEnumerator for one
/// (device, address) pair. Built from a puf::ReliabilityProfile's raw bytes
/// (the combinatorics layer stays independent of the puf layer).
struct ReliabilityOrder {
  std::array<u8, kSeedBits> weight{};  // weight[bit]; LOW = likely to flip
  std::array<u16, kSeedBits> pos{};    // bit positions sorted by (weight, bit)
  int n_bits = kSeedBits;

  /// `weights` must point at `n_bits` bytes, one per bit position.
  static ReliabilityOrder from_weights(const u8* weights,
                                       int n_bits = kSeedBits);
};

/// Lazy best-first enumerator of one shell: emits every popcount-k mask over
/// `order.n_bits` positions exactly once, in non-decreasing weight-sum order
/// (ties broken deterministically by generation sequence). The caller owns
/// `order` and must keep it alive for the enumerator's lifetime.
///
/// State space: a node is a strictly-increasing prefix c[0..m-1] of indices
/// into order.pos whose last element is e = c[m-1]. Its key is
/// f = g + h where g = sum of the prefix's weights and h = the sum of the
/// (k-m) cheapest positions strictly after e (a consistent heuristic, exact
/// for the greedy completion). Children:
///   shift-last:  replace e by e+1            (f' >= f, proven below)
///   extend-last: append e+1 to the prefix    (f' == f)
/// Every k-prefix (complete subset) is generated exactly once: its unique
/// parent is shift^-1 when the last element is not adjacent to the previous,
/// else extend^-1. Complete nodes emit when popped and push only their shift
/// child, so the frontier grows by at most one node per pop.
class WeightedShellEnumerator {
 public:
  WeightedShellEnumerator(const ReliabilityOrder& order, int k);

  /// Writes the next mask in order; returns false when the shell is done.
  bool next(Seed256& mask);

  /// Weight sum of the most recently emitted mask (for monotonicity tests).
  u32 last_weight() const noexcept { return last_weight_; }
  u64 produced() const noexcept { return produced_; }

 private:
  struct Node {
    u32 f = 0;    // g + admissible completion bound
    u64 seq = 0;  // insertion sequence: deterministic tie-break
    u32 g = 0;    // weight sum of the prefix
    u16 e = 0;    // last chosen index into order.pos
    u16 m = 0;    // prefix length
    std::array<u8, kMaxK> c{};  // prefix indices (n_bits <= 256 fits u8)
  };
  struct NodeGreater {
    bool operator()(const Node& a, const Node& b) const noexcept {
      if (a.f != b.f) return a.f > b.f;
      return a.seq > b.seq;
    }
  };

  u32 sorted_weight(int i) const noexcept {
    return order_->weight[order_->pos[static_cast<unsigned>(i)]];
  }
  /// Sum of the j cheapest positions strictly after index e.
  u32 suffix_bound(int e, int j) const noexcept {
    return prefix_sum_[static_cast<unsigned>(e + 1 + j)] -
           prefix_sum_[static_cast<unsigned>(e + 1)];
  }

  const ReliabilityOrder* order_;
  int k_;
  int n_;
  std::vector<u32> prefix_sum_;  // prefix_sum_[i] = sum of sorted weights < i
  std::priority_queue<Node, std::vector<Node>, NodeGreater> heap_;
  u64 seq_ = 0;
  u64 produced_ = 0;
  u32 last_weight_ = 0;
};

/// 1-based rank of `diff` (the XOR offset from S_init) in the canonical
/// ball enumeration order: S_init first, then shells 1..d in colexicographic
/// (Gosper) order within each shell. Saturates to u64 max for shells too
/// large to rank. Used to report how deep the canonical order would have had
/// to search for the hit the reliability order found early.
u64 canonical_ball_rank(const Seed256& diff, int n_bits = kSeedBits);

}  // namespace rbc::comb
