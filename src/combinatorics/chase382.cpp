#include "combinatorics/chase382.hpp"

#include <algorithm>
#include <limits>

namespace rbc::comb {

namespace {

// One transition of Chase's Algorithm 382 in its iterative "twiddle"
// formulation. `ctrl` is the 1-based control array with sentinels at indices
// 0 and n+1. On a normal step, writes the 0-based bit position entering the
// combination to `in` and the position leaving to `out` and returns true;
// returns false when the sequence is exhausted.
bool twiddle_step(std::int16_t* ctrl, int& in, int& out) noexcept {
  int j = 1;
  while (ctrl[j] <= 0) ++j;
  if (ctrl[j - 1] == 0) {
    for (int i = j - 1; i != 1; --i) ctrl[i] = -1;
    ctrl[j] = 0;
    ctrl[1] = 1;
    in = 0;
    out = j - 1;
    return true;
  }
  if (j > 1) ctrl[j - 1] = 0;
  do {
    ++j;
  } while (ctrl[j] > 0);
  const int k = j - 1;
  int i = j;
  while (ctrl[i] == 0) ctrl[i++] = -1;
  if (ctrl[i] == -1) {
    ctrl[i] = ctrl[k];
    ctrl[k] = -1;
    in = i - 1;
    out = k - 1;
    return true;
  }
  if (i == ctrl[0]) return false;  // exhausted
  ctrl[j] = ctrl[i];
  ctrl[i] = 0;
  in = j - 1;
  out = i - 1;
  return true;
}

}  // namespace

ChaseSequence::ChaseSequence(int k, int n_bits) : n_bits_(n_bits) {
  RBC_CHECK(k >= 0 && k <= kMaxK && k <= n_bits && n_bits <= kSeedBits);
  auto& p = state_.control;
  const int n = n_bits;
  const int m = k;
  p[0] = static_cast<std::int16_t>(n + 1);
  for (int i = 1; i != n - m + 1; ++i) p[static_cast<unsigned>(i)] = 0;
  for (int i = n - m + 1; i != n + 1; ++i)
    p[static_cast<unsigned>(i)] = static_cast<std::int16_t>(i + m - n);
  p[static_cast<unsigned>(n + 1)] = -2;
  if (m == 0) p[1] = 1;

  // Initial combination: the m highest positions {n-m, ..., n-1}.
  state_.mask = Seed256{};
  for (int i = n - m; i < n; ++i) state_.mask.set_bit(i);
  state_.step_index = 0;
}

ChaseSequence::ChaseSequence(const ChaseState& state, int n_bits)
    : n_bits_(n_bits), state_(state) {}

bool ChaseSequence::advance() noexcept {
  int in = 0, out = 0;
  if (!twiddle_step(state_.control.data(), in, out)) return false;
  state_.mask.set_bit(in);
  state_.mask.clear_bit(out);
  ++state_.step_index;
  return true;
}

std::vector<ChaseState> make_chase_snapshots(int k, int num_states,
                                             int n_bits) {
  RBC_CHECK(num_states >= 1);
  const u128 total128 = binomial128(n_bits, k);
  RBC_CHECK_MSG(total128 <= std::numeric_limits<u64>::max(),
                "chase snapshot walk too large");
  const u64 total = static_cast<u64>(total128);
  const u64 interval = (total + static_cast<u64>(num_states) - 1) /
                       static_cast<u64>(num_states);
  std::vector<ChaseState> snapshots;
  make_chase_snapshots_strided(k, std::max<u64>(interval, 1), snapshots,
                               n_bits);
  return snapshots;
}

bool make_chase_snapshots_strided(int k, u64 stride,
                                  std::vector<ChaseState>& out, int n_bits,
                                  const std::function<bool()>& abort) {
  RBC_CHECK(stride >= 1);
  const u128 total128 = binomial128(n_bits, k);
  RBC_CHECK_MSG(total128 <= std::numeric_limits<u64>::max(),
                "chase snapshot walk too large");
  const u64 total = static_cast<u64>(total128);

  out.clear();
  out.reserve(total == 0 ? 0 : static_cast<std::size_t>((total - 1) / stride + 1));
  // Abort cadence: one predicate call per 16 Ki twiddle steps keeps the
  // check off the per-step fast path while bounding the walk's stop latency.
  constexpr u64 kAbortMask = 0x3fff;
  ChaseSequence seq(k, n_bits);
  for (u64 step = 0; step < total; ++step) {
    if (abort && (step & kAbortMask) == 0 && abort()) {
      out.clear();
      return false;
    }
    if (step % stride == 0) out.push_back(seq.state());
    if (step + 1 < total) {
      const bool ok = seq.advance();
      RBC_CHECK_MSG(ok, "chase sequence ended early");
    }
  }
  return true;
}

void ChaseFactory::prepare(int k, int num_threads) {
  k_ = k;
  p_ = num_threads;
  const auto key = std::make_pair(k, num_threads);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto plan = std::make_unique<Plan>();
    plan->total = binomial128(n_bits_, k);
    plan->snapshots = make_chase_snapshots(k, num_threads, n_bits_);
    it = cache_.emplace(key, std::move(plan)).first;
  }
  active_ = it->second.get();
}

std::shared_ptr<const ChaseShellPlan> ChaseFactory::plan(
    int k, u64 stride, const std::function<bool()>& abort) {
  const auto key = std::make_pair(k, stride);
  {
    std::lock_guard lock(plan_mutex_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) return it->second;
  }
  // Walk outside the lock: a plan for another shell must not wait behind
  // this one's O(C(n, k)) snapshot walk. The search layer already ensures a
  // single preparer per (k, stride), so duplicate walks are not a concern;
  // if two do race, the first insert wins.
  auto built = std::make_shared<ChaseShellPlan>();
  built->total_ = static_cast<u64>(binomial128(n_bits_, k));
  built->stride_ = stride;
  built->n_bits_ = n_bits_;
  if (!make_chase_snapshots_strided(k, stride, built->snapshots_, n_bits_,
                                    abort)) {
    return nullptr;  // aborted; not cached so a later session can retry
  }
  std::lock_guard lock(plan_mutex_);
  auto [it, inserted] = plan_cache_.emplace(key, std::move(built));
  return it->second;
}

ChaseIterator ChaseFactory::make(int r) const {
  RBC_CHECK_MSG(active_ != nullptr, "ChaseFactory::prepare not called");
  RBC_CHECK(r >= 0 && r < p_);
  const auto& snaps = active_->snapshots;
  if (static_cast<std::size_t>(r) >= snaps.size()) {
    // More threads than combinations: hand out an empty iterator.
    return ChaseIterator(ChaseState{}, 0, n_bits_);
  }
  const u64 total = static_cast<u64>(active_->total);
  const u64 start = snaps[static_cast<std::size_t>(r)].step_index;
  const u64 end = (static_cast<std::size_t>(r) + 1 < snaps.size())
                      ? snaps[static_cast<std::size_t>(r) + 1].step_index
                      : total;
  return ChaseIterator(snaps[static_cast<std::size_t>(r)], end - start,
                       n_bits_);
}

}  // namespace rbc::comb
