#include "combinatorics/gosper.hpp"

#include <algorithm>
#include <limits>

namespace rbc::comb {

Seed256 gosper_next(const Seed256& mask) noexcept {
  const Seed256 c = mask & mask.negate();  // lowest set bit
  const Seed256 r = mask + c;
  const int shift = c.count_trailing_zeros();
  const Seed256 ones_shifted = ((mask ^ r) >> 2) >> shift;
  return r | ones_shifted;
}

namespace {
// Chunk boundaries: thread r of p owns ranks [r*total/p, (r+1)*total/p).
u128 chunk_start(u128 total, int p, int r) {
  return total * static_cast<u128>(r) / static_cast<u128>(p);
}
}  // namespace

GosperIterator::GosperIterator(int k, u128 start_rank, u64 count, int n_bits)
    : count_(count), produced_(0) {
  RBC_CHECK(k >= 0 && k <= kMaxK);
  if (count_ == 0) return;
  current_ = unrank_colexicographic(start_rank, k, n_bits).to_mask();
}

GosperIterator GosperFactory::make(int r) const {
  RBC_CHECK(r >= 0 && r < p_);
  const u128 lo = chunk_start(total_, p_, r);
  const u128 hi = chunk_start(total_, p_, r + 1);
  return GosperIterator(k_, lo, static_cast<u64>(hi - lo), n_bits_);
}

GosperShellPlan::GosperShellPlan(int k, u64 stride, int n_bits)
    : k_(k), n_bits_(n_bits), stride_(stride) {
  RBC_CHECK(stride >= 1);
  const u128 total128 = binomial128(n_bits, k);
  RBC_CHECK_MSG(total128 <= std::numeric_limits<u64>::max(),
                "tiled schedule needs the shell to fit 64-bit ranks");
  total_ = static_cast<u64>(total128);
  tiles_ = total_ == 0 ? 0 : (total_ - 1) / stride_ + 1;
}

u64 GosperShellPlan::tile_count(u64 t) const noexcept {
  const u64 lo = t * stride_;
  return std::min(stride_, total_ - lo);
}

GosperIterator GosperShellPlan::make_tile(u64 t) const {
  RBC_CHECK(t < tiles_);
  return GosperIterator(k_, static_cast<u128>(t) * stride_, tile_count(t),
                        n_bits_);
}

std::shared_ptr<const GosperShellPlan> GosperFactory::plan(
    int k, u64 stride, const std::function<bool()>& /*abort*/) const {
  return std::make_shared<const GosperShellPlan>(k, stride, n_bits_);
}

}  // namespace rbc::comb
