#include "combinatorics/gosper.hpp"

namespace rbc::comb {

Seed256 gosper_next(const Seed256& mask) noexcept {
  const Seed256 c = mask & mask.negate();  // lowest set bit
  const Seed256 r = mask + c;
  const int shift = c.count_trailing_zeros();
  const Seed256 ones_shifted = ((mask ^ r) >> 2) >> shift;
  return r | ones_shifted;
}

namespace {
// Chunk boundaries: thread r of p owns ranks [r*total/p, (r+1)*total/p).
u128 chunk_start(u128 total, int p, int r) {
  return total * static_cast<u128>(r) / static_cast<u128>(p);
}
}  // namespace

GosperIterator::GosperIterator(int k, u128 start_rank, u64 count, int n_bits)
    : count_(count), produced_(0) {
  RBC_CHECK(k >= 0 && k <= kMaxK);
  if (count_ == 0) return;
  current_ = unrank_colexicographic(start_rank, k, n_bits).to_mask();
}

GosperIterator GosperFactory::make(int r) const {
  RBC_CHECK(r >= 0 && r < p_);
  const u128 lo = chunk_start(total_, p_, r);
  const u128 hi = chunk_start(total_, p_, r + 1);
  return GosperIterator(k_, lo, static_cast<u64>(hi - lo), n_bits_);
}

}  // namespace rbc::comb
