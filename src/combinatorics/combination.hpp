// Combination — a k-subset of bit positions {0..n-1}, k <= 16.
//
// The RBC search flips the bits named by a combination in the enrolled seed
// S_init to obtain a candidate seed (§3.2.1). Combinations are kept as sorted
// position lists (the natural form for Algorithms 154/382/515) and convert
// to/from Seed256 bit masks (the natural form for Gosper's hack and for
// applying the flip via XOR).
#pragma once

#include <array>
#include <compare>
#include <string>

#include "bits/seed256.hpp"
#include "combinatorics/binomial.hpp"
#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc::comb {

class Combination {
 public:
  Combination() noexcept : k_(0), pos_{} {}

  /// Positions must be strictly increasing and < 256.
  Combination(std::initializer_list<int> positions);

  static Combination first(int k);  // {0, 1, ..., k-1}

  int k() const noexcept { return k_; }
  int position(int i) const noexcept { return pos_[static_cast<unsigned>(i)]; }
  void set_position(int i, int value) noexcept {
    pos_[static_cast<unsigned>(i)] = static_cast<u16>(value);
  }

  /// Bit mask with exactly the k named bits set.
  Seed256 to_mask() const noexcept {
    Seed256 m;
    for (int i = 0; i < k_; ++i) m.set_bit(pos_[static_cast<unsigned>(i)]);
    return m;
  }

  /// Inverse of to_mask(); mask must have <= 16 set bits.
  static Combination from_mask(const Seed256& mask);

  /// Candidate seed: base with the combination's bits flipped.
  Seed256 apply(const Seed256& base) const noexcept {
    return base ^ to_mask();
  }

  /// Validates the strictly-increasing invariant (used in property tests).
  bool is_valid(int n_bits = kSeedBits) const noexcept;

  std::string to_string() const;

  friend bool operator==(const Combination& a, const Combination& b) noexcept {
    if (a.k_ != b.k_) return false;
    for (int i = 0; i < a.k_; ++i)
      if (a.pos_[static_cast<unsigned>(i)] != b.pos_[static_cast<unsigned>(i)])
        return false;
    return true;
  }

 private:
  int k_;
  std::array<u16, kMaxK> pos_;  // sorted ascending; entries >= k_ unused
};

/// Lexicographic rank of a combination among all C(n, k) k-subsets of
/// {0..n-1} ordered as ascending position sequences. Inverse of
/// unrank_lexicographic (Algorithm 515).
u128 rank_lexicographic(const Combination& c, int n_bits = kSeedBits);

/// Colexicographic rank — the order in which Gosper's hack enumerates masks
/// (numeric order of the mask integer). rank = sum_i C(pos_i, i+1).
u128 rank_colexicographic(const Combination& c);

/// Inverse of rank_colexicographic; lets Gosper-based threads start at an
/// arbitrary offset in the sequence.
Combination unrank_colexicographic(u128 rank, int k, int n_bits = kSeedBits);

/// Lexicographic successor in-place (Mifsud's Algorithm 154 step rule).
/// Returns false (leaving c unchanged) when c is the last combination.
bool next_lexicographic(Combination& c, int n_bits = kSeedBits);

}  // namespace rbc::comb
