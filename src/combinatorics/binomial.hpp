// Exact binomial coefficients and the paper's search-space size formulas.
//
// The RBC search space is the Hamming ball of radius d around the enrolled
// seed (Eq. 1: u(d) = sum_{i<=d} C(256, i)); the average-case search covers
// the full shells below d plus half the outermost shell (Eq. 3). d <= 5 in
// the paper, but the tables here go to k = 16 so the library supports the
// "inject extra noise for more security" extension discussed in §5.
#pragma once

#include <array>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc::comb {

inline constexpr int kSeedBits = 256;
inline constexpr int kMaxK = 16;

/// C(n, k) in u64; throws CheckFailure on overflow. Valid for the table
/// domain n <= 256, k <= 16 (C(256,16) ≈ 1.0e25 overflows; the u64 variant
/// checks and the u128 variant covers the full domain).
u64 binomial64(int n, int k);

/// C(n, k) in u128, exact for n <= 256, k <= 16.
u128 binomial128(int n, int k);

/// Precomputed C(m, t) for 0 <= m <= 256, 0 <= t <= kMaxK, as u128.
/// Lookup is the inner operation of Algorithm 515 unranking, so it must be
/// branch-light; entries that would exceed u128 cannot occur in this domain.
class BinomialTable {
 public:
  static const BinomialTable& instance();

  u128 operator()(int m, int t) const noexcept {
    if (t < 0 || t > kMaxK || m < 0) return 0;
    if (t > m) return 0;
    return table_[static_cast<unsigned>(m)][static_cast<unsigned>(t)];
  }

 private:
  BinomialTable();
  std::array<std::array<u128, kMaxK + 1>, kSeedBits + 1> table_;
};

/// Eq. 1: worst-case (exhaustive) number of seeds searched up to distance d.
u128 exhaustive_search_count(int d, int n_bits = kSeedBits);

/// Eq. 3: average-case number of seeds searched when the true seed lies at
/// distance exactly d (full inner shells + half the outer shell).
u128 average_search_count(int d, int n_bits = kSeedBits);

/// Eq. 2: the opponent's search space, 2^n — returned as long double since
/// 2^256 exceeds any machine integer (used only for reporting).
long double opponent_search_space(int n_bits = kSeedBits);

/// Convenience for printing u128 values in benches/tests.
std::string u128_to_string(u128 v);

}  // namespace rbc::comb
