#include "combinatorics/tiler.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace rbc::comb {

ShellTiler::ShellTiler(int max_distance, u64 tile_seeds, int n_bits)
    : d_(max_distance), n_bits_(n_bits) {
  RBC_CHECK(max_distance >= 0 && max_distance <= kMaxK);
  RBC_CHECK(tile_seeds >= 1);
  RBC_CHECK(n_bits >= 1 && n_bits <= kSeedBits);

  totals_.reserve(static_cast<std::size_t>(d_));
  strides_.reserve(static_cast<std::size_t>(d_));
  tiles_.reserve(static_cast<std::size_t>(d_));
  prefix_.reserve(static_cast<std::size_t>(d_));
  for (int k = 1; k <= d_; ++k) {
    const u128 total128 = binomial128(n_bits_, k);
    RBC_CHECK_MSG(total128 <= std::numeric_limits<u64>::max(),
                  "tiled schedule needs every shell to fit 64-bit ranks");
    const u64 total = static_cast<u64>(total128);
    // Grow the stride on huge shells so the tile count stays bounded.
    const u64 min_stride = (total + kMaxTilesPerShell - 1) / kMaxTilesPerShell;
    const u64 stride = std::max<u64>({tile_seeds, min_stride, 1});
    const u64 tiles = total == 0 ? 0 : (total - 1) / stride + 1;
    totals_.push_back(total);
    strides_.push_back(stride);
    tiles_.push_back(tiles);
    prefix_.push_back(total_tiles_);
    total_tiles_ += tiles;
  }
}

int ShellTiler::check_shell(int k) const {
  RBC_CHECK(k >= 1 && k <= d_);
  return k - 1;
}

u64 ShellTiler::shell_total(int k) const {
  return totals_[static_cast<std::size_t>(check_shell(k))];
}

u64 ShellTiler::stride(int k) const {
  return strides_[static_cast<std::size_t>(check_shell(k))];
}

u64 ShellTiler::tiles_in_shell(int k) const {
  return tiles_[static_cast<std::size_t>(check_shell(k))];
}

TileCoord ShellTiler::coord(u64 global) const {
  RBC_CHECK(global < total_tiles_);
  // Shells are few (d <= 16); a linear scan beats a binary search here.
  int k = d_;
  for (int i = 1; i < d_; ++i) {
    if (global < prefix_[static_cast<std::size_t>(i)]) {
      k = i;
      break;
    }
  }
  return TileCoord{k, global - prefix_[static_cast<std::size_t>(k - 1)]};
}

u64 ShellTiler::global_index(int shell, u64 index) const {
  const int i = check_shell(shell);
  RBC_CHECK(index < tiles_[static_cast<std::size_t>(i)]);
  return prefix_[static_cast<std::size_t>(i)] + index;
}

}  // namespace rbc::comb
