#include "combinatorics/binomial.hpp"

#include <cmath>
#include <limits>
#include <string>

namespace rbc::comb {

u128 binomial128(int n, int k) {
  RBC_CHECK_MSG(n >= 0 && k >= 0, "binomial: negative argument");
  RBC_CHECK_MSG(n <= kSeedBits && k <= kMaxK,
                "binomial128 domain is n<=256, k<=16");
  if (k > n) return 0;
  if (k == 0 || k == n) return 1;
  // Multiplicative formula with interleaved division keeps intermediates
  // exact: after step i the value equals C(n, i+1).
  u128 result = 1;
  for (int i = 0; i < k; ++i) {
    result = result * static_cast<u128>(n - i);
    result = result / static_cast<u128>(i + 1);
  }
  return result;
}

u64 binomial64(int n, int k) {
  const u128 v = binomial128(n, k);
  RBC_CHECK_MSG(v <= std::numeric_limits<u64>::max(),
                "binomial64 overflow; use binomial128");
  return static_cast<u64>(v);
}

BinomialTable::BinomialTable() {
  for (int m = 0; m <= kSeedBits; ++m) {
    table_[static_cast<unsigned>(m)][0] = 1;
    for (int t = 1; t <= kMaxK; ++t) {
      if (t > m) {
        table_[static_cast<unsigned>(m)][static_cast<unsigned>(t)] = 0;
      } else if (m == 0) {
        table_[static_cast<unsigned>(m)][static_cast<unsigned>(t)] = 0;
      } else {
        // Pascal's rule over the already-filled previous row.
        table_[static_cast<unsigned>(m)][static_cast<unsigned>(t)] =
            table_[static_cast<unsigned>(m - 1)][static_cast<unsigned>(t)] +
            table_[static_cast<unsigned>(m - 1)][static_cast<unsigned>(t - 1)];
      }
    }
  }
}

const BinomialTable& BinomialTable::instance() {
  static const BinomialTable table;
  return table;
}

u128 exhaustive_search_count(int d, int n_bits) {
  RBC_CHECK(d >= 0 && d <= kMaxK && n_bits <= kSeedBits);
  u128 total = 0;
  for (int i = 0; i <= d; ++i) total += binomial128(n_bits, i);
  return total;
}

u128 average_search_count(int d, int n_bits) {
  RBC_CHECK(d >= 1 && d <= kMaxK && n_bits <= kSeedBits);
  u128 total = 0;
  for (int i = 0; i <= d - 1; ++i) total += binomial128(n_bits, i);
  total += binomial128(n_bits, d) / 2;
  return total;
}

long double opponent_search_space(int n_bits) {
  return std::pow(2.0L, static_cast<long double>(n_bits));
}

std::string u128_to_string(u128 v) {
  if (v == 0) return "0";
  std::string s;
  while (v != 0) {
    s.insert(s.begin(), static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  return s;
}

}  // namespace rbc::comb
