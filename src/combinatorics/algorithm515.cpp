#include "combinatorics/algorithm515.hpp"

#include <algorithm>
#include <limits>

namespace rbc::comb {

Combination unrank_lexicographic(u128 rank, int k, int n_bits) {
  RBC_CHECK(k >= 0 && k <= kMaxK && n_bits <= kSeedBits);
  const auto& B = BinomialTable::instance();
  Combination c = Combination::first(k);
  // Buckles–Lybanon scan: choose each position left to right; position i
  // takes the smallest value v such that the block of combinations sharing
  // the prefix ending in v covers the remaining rank.
  int v = 0;
  for (int i = 0; i < k; ++i) {
    while (true) {
      const u128 block = B(n_bits - 1 - v, k - 1 - i);
      if (block > rank) break;
      rank -= block;
      ++v;
      RBC_CHECK_MSG(v < n_bits, "lexicographic rank out of range");
    }
    c.set_position(i, v);
    ++v;
  }
  return c;
}

Algorithm515Iterator::Algorithm515Iterator(int k, u128 start_rank, u64 count,
                                           Alg515Mode mode, int n_bits)
    : k_(k),
      n_bits_(n_bits),
      mode_(mode),
      start_rank_(start_rank),
      count_(count),
      produced_(0) {
  if (count_ != 0 && mode_ == Alg515Mode::kSuccessor)
    current_ = unrank_lexicographic(start_rank_, k_, n_bits_);
}

bool Algorithm515Iterator::next(Seed256& mask) noexcept {
  if (produced_ == count_) return false;
  if (mode_ == Alg515Mode::kUnrankEach) {
    mask = unrank_lexicographic(start_rank_ + produced_, k_, n_bits_).to_mask();
  } else {
    mask = current_.to_mask();
    if (produced_ + 1 != count_) next_lexicographic(current_, n_bits_);
  }
  ++produced_;
  return true;
}

Algorithm515Iterator Algorithm515Factory::make(int r) const {
  RBC_CHECK(r >= 0 && r < p_);
  const u128 lo = total_ * static_cast<u128>(r) / static_cast<u128>(p_);
  const u128 hi = total_ * static_cast<u128>(r + 1) / static_cast<u128>(p_);
  return Algorithm515Iterator(k_, lo, static_cast<u64>(hi - lo), mode_,
                              n_bits_);
}

Alg515ShellPlan::Alg515ShellPlan(int k, u64 stride, Alg515Mode mode,
                                 int n_bits)
    : k_(k), n_bits_(n_bits), mode_(mode), stride_(stride) {
  RBC_CHECK(stride >= 1);
  const u128 total128 = binomial128(n_bits, k);
  RBC_CHECK_MSG(total128 <= std::numeric_limits<u64>::max(),
                "tiled schedule needs the shell to fit 64-bit ranks");
  total_ = static_cast<u64>(total128);
  tiles_ = total_ == 0 ? 0 : (total_ - 1) / stride_ + 1;
}

u64 Alg515ShellPlan::tile_count(u64 t) const noexcept {
  const u64 lo = t * stride_;
  return std::min(stride_, total_ - lo);
}

Algorithm515Iterator Alg515ShellPlan::make_tile(u64 t) const {
  RBC_CHECK(t < tiles_);
  return Algorithm515Iterator(k_, static_cast<u128>(t) * stride_,
                              tile_count(t), mode_, n_bits_);
}

std::shared_ptr<const Alg515ShellPlan> Algorithm515Factory::plan(
    int k, u64 stride, const std::function<bool()>& /*abort*/) const {
  return std::make_shared<const Alg515ShellPlan>(k, stride, mode_, n_bits_);
}

}  // namespace rbc::comb
