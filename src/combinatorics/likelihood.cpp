#include "combinatorics/likelihood.hpp"

#include <algorithm>
#include <numeric>

namespace rbc::comb {

ReliabilityOrder ReliabilityOrder::from_weights(const u8* weights,
                                                int n_bits) {
  RBC_CHECK(n_bits >= 1 && n_bits <= kSeedBits);
  ReliabilityOrder order;
  order.n_bits = n_bits;
  std::copy(weights, weights + n_bits, order.weight.begin());
  std::iota(order.pos.begin(), order.pos.begin() + n_bits, u16{0});
  std::stable_sort(order.pos.begin(), order.pos.begin() + n_bits,
                   [&order](u16 a, u16 b) {
                     if (order.weight[a] != order.weight[b])
                       return order.weight[a] < order.weight[b];
                     return a < b;
                   });
  return order;
}

WeightedShellEnumerator::WeightedShellEnumerator(const ReliabilityOrder& order,
                                                 int k)
    : order_(&order), k_(k), n_(order.n_bits) {
  RBC_CHECK_MSG(k >= 1 && k <= kMaxK && k <= n_,
                "weighted enumerator shell out of range");
  prefix_sum_.resize(static_cast<std::size_t>(n_) + 1, 0);
  for (int i = 0; i < n_; ++i)
    prefix_sum_[static_cast<unsigned>(i) + 1] =
        prefix_sum_[static_cast<unsigned>(i)] + sorted_weight(i);
  // Root prefix {0}: the cheapest position alone; its greedy completion is
  // the globally cheapest subset, so the root's f is the minimum weight sum.
  Node root;
  root.m = 1;
  root.e = 0;
  root.c[0] = 0;
  root.g = sorted_weight(0);
  root.f = root.g + suffix_bound(0, k_ - 1);
  root.seq = 0;
  heap_.push(root);
}

bool WeightedShellEnumerator::next(Seed256& mask) {
  while (!heap_.empty()) {
    const Node s = heap_.top();
    heap_.pop();
    const int j = k_ - s.m;  // positions still unchosen after the prefix
    // shift-last child: replace the last element e by e+1. Key change:
    // f' - f = sw[e+1+j] - sw[e] >= 0 because the sorted weights are
    // non-decreasing, so pop order never regresses.
    if (s.e + 1 + j <= n_ - 1) {
      Node t = s;
      t.e = static_cast<u16>(s.e + 1);
      t.c[static_cast<unsigned>(s.m) - 1] = static_cast<u8>(t.e);
      t.g = s.g - sorted_weight(s.e) + sorted_weight(t.e);
      t.f = t.g + suffix_bound(t.e, j);
      t.seq = ++seq_;
      heap_.push(t);
    }
    if (s.m < k_) {
      // extend-last child: append e+1. The greedy completion is unchanged,
      // so f' == f exactly — extending toward a completion is free.
      Node t = s;
      t.m = static_cast<u16>(s.m + 1);
      t.e = static_cast<u16>(s.e + 1);
      t.c[static_cast<unsigned>(t.m) - 1] = static_cast<u8>(t.e);
      t.g = s.g + sorted_weight(t.e);
      t.f = t.g + suffix_bound(t.e, k_ - t.m);
      t.seq = ++seq_;
      heap_.push(t);
      continue;  // incomplete prefixes never emit
    }
    mask = Seed256{};
    for (int i = 0; i < k_; ++i)
      mask.set_bit(order_->pos[s.c[static_cast<unsigned>(i)]]);
    last_weight_ = s.g;
    ++produced_;
    return true;
  }
  return false;
}

u64 canonical_ball_rank(const Seed256& diff, int n_bits) {
  constexpr u64 kMax = ~u64{0};
  const int d = diff.popcount();
  if (d > kMaxK) return kMax;  // beyond the exact-rank table domain
  u128 rank = 1;  // S_init occupies position 1
  for (int j = 1; j < d; ++j) rank += binomial128(n_bits, j);
  if (d > 0) {
    const auto& binom = BinomialTable::instance();
    u128 colex = 0;
    int i = 0;
    for (int bit = 0; bit < Seed256::kBits; ++bit) {
      if (!diff.bit(bit)) continue;
      colex += binom(bit, ++i);  // C(p_i, i) for the i-th set bit (1-based i)
    }
    rank += colex + 1;
  }
  return rank > u128{kMax} ? kMax : static_cast<u64>(rank);
}

}  // namespace rbc::comb
