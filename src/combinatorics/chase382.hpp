// Chase's Algorithm 382 (CACM 13(6), 1970) — the winning seed iterator.
//
// Chase's sequence is a combinatorial Gray code: consecutive combinations
// differ by moving a single element, so stepping costs O(1) bit flips plus a
// short scan of the control array. It is inherently sequential (each step
// depends on the previous state), which §3.2.1 solves by *state
// snapshotting*: the sequence is walked once, saving the generator state at
// regular intervals; each of the p threads then resumes from its snapshot and
// walks its slice independently. Snapshots depend only on (n, k, p) — not on
// the client — so they are computed once, cached, and reused for every
// authentication (the paper excludes this one-time cost from its timings; we
// do the same and expose it separately).
//
// The implementation is the classic iterative "twiddle" formulation of
// Chase's algorithm: a control array p[0..n+1] drives each transition, and
// every call reports one position entering the combination and one leaving.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "bits/seed256.hpp"
#include "combinatorics/combination.hpp"
#include "common/types.hpp"

namespace rbc::comb {

/// Resumable generator state: the control array plus the current mask.
/// This is exactly the per-thread state the GPU algorithm keeps in shared
/// memory (§3.2.3) — ~0.5 KiB per thread for n = 256.
struct ChaseState {
  std::array<std::int16_t, kSeedBits + 2> control{};
  Seed256 mask;       // current combination as a bit mask
  u64 step_index = 0; // 0-based index of `mask` within the full sequence
};

/// Sequential walker over the full Chase sequence of k-subsets of
/// {0..n_bits-1}. Produces C(n_bits, k) combinations, each differing from
/// the previous by one element swapped in and one swapped out.
class ChaseSequence {
 public:
  ChaseSequence(int k, int n_bits = kSeedBits);
  explicit ChaseSequence(const ChaseState& state, int n_bits = kSeedBits);

  /// The current combination's mask.
  const Seed256& mask() const noexcept { return state_.mask; }

  /// Advances to the next combination. Returns false when the sequence is
  /// exhausted (the current mask was the last one).
  bool advance() noexcept;

  const ChaseState& state() const noexcept { return state_; }

 private:
  int n_bits_;
  ChaseState state_;
};

/// Walks the whole sequence once and saves `num_states` evenly spaced
/// snapshots (snapshot i sits at step i*ceil(total/num_states)). This is the
/// precomputation §3.2.1 describes; cost is O(C(n_bits, k)).
std::vector<ChaseState> make_chase_snapshots(int k, int num_states,
                                             int n_bits = kSeedBits);

/// Per-thread iterator resuming from a snapshot for `count` combinations.
class ChaseIterator {
 public:
  ChaseIterator(const ChaseState& state, u64 count, int n_bits = kSeedBits)
      : seq_(state, n_bits), count_(count), produced_(0) {}

  static constexpr std::string_view name() { return "Chase's Algorithm 382"; }

  bool next(Seed256& mask) noexcept {
    if (produced_ == count_ || exhausted_) return false;
    mask = seq_.mask();
    ++produced_;
    // The count normally bounds the slice exactly; when a caller asks for
    // more than the sequence holds, stop at genuine exhaustion instead of
    // repeating the final combination.
    if (produced_ != count_ && !seq_.advance()) exhausted_ = true;
    return true;
  }

  u64 produced() const noexcept { return produced_; }

 private:
  ChaseSequence seq_;
  u64 count_;
  u64 produced_;
  bool exhausted_ = false;
};

/// Factory with a snapshot cache keyed by (k, p). prepare() is cheap after
/// the first call for a given shell/thread-count pair.
class ChaseFactory {
 public:
  using iterator = ChaseIterator;

  explicit ChaseFactory(int n_bits = kSeedBits) : n_bits_(n_bits) {}

  static constexpr std::string_view name() { return "Chase's Algorithm 382"; }

  void prepare(int k, int num_threads);

  ChaseIterator make(int r) const;

 private:
  struct Plan {
    std::vector<ChaseState> snapshots;
    u128 total = 0;
  };

  int n_bits_;
  int k_ = 0;
  int p_ = 1;
  const Plan* active_ = nullptr;
  std::map<std::pair<int, int>, std::unique_ptr<Plan>> cache_;
};

}  // namespace rbc::comb
