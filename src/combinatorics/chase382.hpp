// Chase's Algorithm 382 (CACM 13(6), 1970) — the winning seed iterator.
//
// Chase's sequence is a combinatorial Gray code: consecutive combinations
// differ by moving a single element, so stepping costs O(1) bit flips plus a
// short scan of the control array. It is inherently sequential (each step
// depends on the previous state), which §3.2.1 solves by *state
// snapshotting*: the sequence is walked once, saving the generator state at
// regular intervals; each of the p threads then resumes from its snapshot and
// walks its slice independently. Snapshots depend only on (n, k, p) — not on
// the client — so they are computed once, cached, and reused for every
// authentication (the paper excludes this one-time cost from its timings; we
// do the same and expose it separately).
//
// The implementation is the classic iterative "twiddle" formulation of
// Chase's algorithm: a control array p[0..n+1] drives each transition, and
// every call reports one position entering the combination and one leaving.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "bits/seed256.hpp"
#include "combinatorics/combination.hpp"
#include "common/types.hpp"

namespace rbc::comb {

/// Resumable generator state: the control array plus the current mask.
/// This is exactly the per-thread state the GPU algorithm keeps in shared
/// memory (§3.2.3) — ~0.5 KiB per thread for n = 256.
struct ChaseState {
  std::array<std::int16_t, kSeedBits + 2> control{};
  Seed256 mask;       // current combination as a bit mask
  u64 step_index = 0; // 0-based index of `mask` within the full sequence
};

/// Sequential walker over the full Chase sequence of k-subsets of
/// {0..n_bits-1}. Produces C(n_bits, k) combinations, each differing from
/// the previous by one element swapped in and one swapped out.
class ChaseSequence {
 public:
  ChaseSequence(int k, int n_bits = kSeedBits);
  explicit ChaseSequence(const ChaseState& state, int n_bits = kSeedBits);

  /// The current combination's mask.
  const Seed256& mask() const noexcept { return state_.mask; }

  /// Advances to the next combination. Returns false when the sequence is
  /// exhausted (the current mask was the last one).
  bool advance() noexcept;

  const ChaseState& state() const noexcept { return state_; }

 private:
  int n_bits_;
  ChaseState state_;
};

/// Walks the whole sequence once and saves `num_states` evenly spaced
/// snapshots (snapshot i sits at step i*ceil(total/num_states)). This is the
/// precomputation §3.2.1 describes; cost is O(C(n_bits, k)).
std::vector<ChaseState> make_chase_snapshots(int k, int num_states,
                                             int n_bits = kSeedBits);

/// Strided variant for the tile scheduler: saves a snapshot at every
/// `stride`-th step (snapshot i at step i*stride), so snapshot boundaries
/// coincide exactly with tile boundaries. Returns false — leaving `out`
/// empty — when `abort` (polled at a coarse step cadence) asks the walk to
/// stop early, which is how a session deadline cuts the one-time
/// precomputation short.
bool make_chase_snapshots_strided(int k, u64 stride,
                                  std::vector<ChaseState>& out,
                                  int n_bits = kSeedBits,
                                  const std::function<bool()>& abort = {});

/// Per-thread iterator resuming from a snapshot for `count` combinations.
class ChaseIterator {
 public:
  ChaseIterator(const ChaseState& state, u64 count, int n_bits = kSeedBits)
      : seq_(state, n_bits), count_(count), produced_(0) {}

  static constexpr std::string_view name() { return "Chase's Algorithm 382"; }

  bool next(Seed256& mask) noexcept {
    if (produced_ == count_ || exhausted_) return false;
    mask = seq_.mask();
    ++produced_;
    // The count normally bounds the slice exactly; when a caller asks for
    // more than the sequence holds, stop at genuine exhaustion instead of
    // repeating the final combination.
    if (produced_ != count_ && !seq_.advance()) exhausted_ = true;
    return true;
  }

  u64 produced() const noexcept { return produced_; }

 private:
  ChaseSequence seq_;
  u64 count_;
  u64 produced_;
  bool exhausted_ = false;
};

/// Immutable tile decomposition of one shell: tile t resumes from the
/// snapshot saved at step t*stride and walks min(stride, total - t*stride)
/// combinations. The snapshots ARE the tile boundaries, so a tiled walk
/// concatenates to exactly the rank-0 Chase sequence.
class ChaseShellPlan {
 public:
  using iterator = ChaseIterator;

  u64 tiles() const noexcept { return snapshots_.size(); }
  u64 total() const noexcept { return total_; }
  u64 tile_count(u64 t) const noexcept {
    const u64 lo = t * stride_;
    return stride_ < total_ - lo ? stride_ : total_ - lo;
  }
  ChaseIterator make_tile(u64 t) const {
    return ChaseIterator(snapshots_[static_cast<std::size_t>(t)],
                         tile_count(t), n_bits_);
  }
  /// Raw snapshot access for the GPU kernel, which stages the state into its
  /// block's shared-memory arena before iterating (§3.2.3).
  const ChaseState& snapshot(u64 t) const {
    return snapshots_[static_cast<std::size_t>(t)];
  }

 private:
  friend class ChaseFactory;
  std::vector<ChaseState> snapshots_;
  u64 total_ = 0;
  u64 stride_ = 1;
  int n_bits_ = kSeedBits;
};

/// Factory with a snapshot cache keyed by (k, p). prepare() is cheap after
/// the first call for a given shell/thread-count pair. plan() keeps its own
/// cache keyed by (k, stride) and is safe to call from concurrent workers;
/// prepare()/make() retain the original single-preparer discipline.
class ChaseFactory {
 public:
  using iterator = ChaseIterator;
  using shell_plan = ChaseShellPlan;

  explicit ChaseFactory(int n_bits = kSeedBits) : n_bits_(n_bits) {}

  static constexpr std::string_view name() { return "Chase's Algorithm 382"; }

  int n_bits() const noexcept { return n_bits_; }

  void prepare(int k, int num_threads);

  ChaseIterator make(int r) const;

  /// Shell plan with a snapshot at every stride boundary. Returns nullptr
  /// when `abort` stopped the snapshot walk (the plan is then not cached, so
  /// a later call can retry).
  std::shared_ptr<const ChaseShellPlan> plan(
      int k, u64 stride, const std::function<bool()>& abort = {});

 private:
  struct Plan {
    std::vector<ChaseState> snapshots;
    u128 total = 0;
  };

  int n_bits_;
  int k_ = 0;
  int p_ = 1;
  const Plan* active_ = nullptr;
  std::map<std::pair<int, int>, std::unique_ptr<Plan>> cache_;

  std::mutex plan_mutex_;
  std::map<std::pair<int, u64>, std::shared_ptr<const ChaseShellPlan>>
      plan_cache_;
};

}  // namespace rbc::comb
