// Tile decomposition of the Hamming ball for the work-stealing scheduler.
//
// The static schedule cuts each shell into exactly p contiguous slices, one
// per work unit; a planted match, a ragged last slice, or a slow worker then
// idles the rest of the group until the shell barrier. ShellTiler instead
// cuts the ball of radius d into many fixed-size tiles — (shell k, rank
// range [t*stride, min((t+1)*stride, total))) — sized so each family's
// existing (start_rank, count) constructors can open any tile in isolation:
// Gosper and Algorithm 515 unrank the tile's start directly; Chase 382
// resumes from a snapshot saved at every stride boundary (the per-shell
// stride is the single source of truth, so a family's shell plan always
// produces exactly tiles_in_shell(k) tiles).
//
// Tiles are numbered globally in shell order (all of shell 1, then shell 2,
// ...), which is what lets par::TileScheduler hand out the whole ball from
// one atomic cursor and keep a shell-order completion watermark.
#pragma once

#include <vector>

#include "combinatorics/binomial.hpp"
#include "combinatorics/combination.hpp"
#include "common/types.hpp"

namespace rbc::comb {

struct TileCoord {
  int shell = 0;  // Hamming distance k, 1-based
  u64 index = 0;  // tile index within the shell
};

class ShellTiler {
 public:
  /// Default candidate count per tile: large enough that the per-tile costs
  /// (one scheduler claim, one iterator seek) are noise next to ~4k hashes,
  /// small enough that a shell splits into many more tiles than workers —
  /// the granularity stealing needs to absorb skew.
  static constexpr u64 kDefaultTileSeeds = 4096;

  /// Upper bound on tiles per shell; the stride grows past `tile_seeds` on
  /// huge shells so tile metadata (e.g. Chase snapshots at every boundary)
  /// stays bounded.
  static constexpr u64 kMaxTilesPerShell = u64{1} << 20;

  ShellTiler(int max_distance, u64 tile_seeds = kDefaultTileSeeds,
             int n_bits = kSeedBits);

  int max_distance() const noexcept { return d_; }
  int n_bits() const noexcept { return n_bits_; }

  /// C(n_bits, k) — the shell's candidate count. k in [1, max_distance].
  u64 shell_total(int k) const;
  /// Seeds per tile in shell k (the last tile may be ragged).
  u64 stride(int k) const;
  u64 tiles_in_shell(int k) const;
  u64 total_tiles() const noexcept { return total_tiles_; }

  /// Tile counts indexed by shell - 1, the shape par::TileScheduler takes.
  std::vector<u64> tiles_per_shell() const { return tiles_; }

  /// Global tile id (shell-order) <-> per-shell coordinates.
  TileCoord coord(u64 global) const;
  u64 global_index(int shell, u64 index) const;

 private:
  int check_shell(int k) const;

  int d_;
  int n_bits_;
  std::vector<u64> totals_;  // [k-1] = C(n_bits, k)
  std::vector<u64> strides_;
  std::vector<u64> tiles_;
  std::vector<u64> prefix_;  // [k-1] = first global id of shell k
  u64 total_tiles_ = 0;
};

}  // namespace rbc::comb
