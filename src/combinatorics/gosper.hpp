// Gosper's hack generalized to 256-bit words — the prior-work seed iterator.
//
// Prior RBC engines [29, 39, 40] enumerated seed permutations with Gosper's
// hack, which is branch-free and fast on native integers but, as §3.2.1 and
// §4.5 observe, degrades on 256-bit seeds because every step needs multi-word
// add/subtract/shift plus a count-trailing-zeros scan. We reproduce it
// faithfully on Seed256 so Table 4 can measure that cost.
//
// Gosper's step on mask x with k set bits (numeric/colex order):
//   c = x & -x;  r = x + c;  x = r | (((x ^ r) >> 2) >> ctz(c))
// The division by c in the classic formula is a right shift because c is a
// power of two.
#pragma once

#include <functional>
#include <memory>
#include <string_view>

#include "bits/seed256.hpp"
#include "combinatorics/combination.hpp"
#include "common/types.hpp"

namespace rbc::comb {

/// One Gosper step; mask must be nonzero. Returns the next-larger mask with
/// the same popcount (well-defined while the result fits in 256 bits).
Seed256 gosper_next(const Seed256& mask) noexcept;

/// Iterates `count` masks of popcount k, starting at colexicographic rank
/// `start_rank` (the order Gosper's hack enumerates).
class GosperIterator {
 public:
  GosperIterator(int k, u128 start_rank, u64 count, int n_bits = kSeedBits);

  static constexpr std::string_view name() { return "Gosper's hack"; }

  /// Writes the next mask; returns false once `count` masks were produced.
  bool next(Seed256& mask) noexcept {
    if (produced_ == count_) return false;
    mask = current_;
    ++produced_;
    if (produced_ != count_) current_ = gosper_next(current_);
    return true;
  }

  u64 produced() const noexcept { return produced_; }

 private:
  Seed256 current_;
  u64 count_;
  u64 produced_;
};

/// Immutable tile decomposition of one shell for the work-stealing
/// scheduler: tile t covers colex ranks [t*stride, min((t+1)*stride, total)).
/// Every tile opens with one O(k) colexicographic unrank — no shared state,
/// so any number of workers can open tiles of the same plan concurrently.
class GosperShellPlan {
 public:
  using iterator = GosperIterator;

  GosperShellPlan(int k, u64 stride, int n_bits);

  u64 tiles() const noexcept { return tiles_; }
  u64 total() const noexcept { return total_; }
  u64 tile_count(u64 t) const noexcept;
  GosperIterator make_tile(u64 t) const;

 private:
  int k_;
  int n_bits_;
  u64 stride_;
  u64 total_;
  u64 tiles_;
};

/// Per-shell factory: partitions the C(n_bits, k) sequence into p contiguous
/// chunks and hands thread r its chunk (static schedule), or builds an
/// immutable tile plan at a given stride (tiled schedule).
class GosperFactory {
 public:
  using iterator = GosperIterator;
  using shell_plan = GosperShellPlan;

  explicit GosperFactory(int n_bits = kSeedBits) : n_bits_(n_bits) {}

  static constexpr std::string_view name() { return "Gosper's hack"; }

  int n_bits() const noexcept { return n_bits_; }

  void prepare(int k, int num_threads) {
    k_ = k;
    p_ = num_threads;
    total_ = binomial128(n_bits_, k);
  }

  GosperIterator make(int r) const;

  /// Thread-safe shell plan for the tiled schedule. Unranking is O(1)-ish
  /// per tile, so plans are built fresh each call; `abort` is unused (no
  /// walk to cut short) but kept for API symmetry with Chase.
  std::shared_ptr<const GosperShellPlan> plan(
      int k, u64 stride, const std::function<bool()>& abort = {}) const;

 private:
  int n_bits_;
  int k_ = 0;
  int p_ = 1;
  u128 total_ = 0;
};

}  // namespace rbc::comb
