#include "combinatorics/combination.hpp"

#include <sstream>

namespace rbc::comb {

Combination::Combination(std::initializer_list<int> positions) : k_(0), pos_{} {
  RBC_CHECK_MSG(positions.size() <= kMaxK, "combination too large");
  int prev = -1;
  for (int p : positions) {
    RBC_CHECK_MSG(p > prev && p < kSeedBits,
                  "positions must be strictly increasing and < 256");
    pos_[static_cast<unsigned>(k_++)] = static_cast<u16>(p);
    prev = p;
  }
}

Combination Combination::first(int k) {
  RBC_CHECK(k >= 0 && k <= kMaxK);
  Combination c;
  c.k_ = k;
  for (int i = 0; i < k; ++i) c.pos_[static_cast<unsigned>(i)] = static_cast<u16>(i);
  return c;
}

Combination Combination::from_mask(const Seed256& mask) {
  RBC_CHECK_MSG(mask.popcount() <= kMaxK, "mask has too many set bits");
  Combination c;
  Seed256 m = mask;
  while (!m.is_zero()) {
    const int b = m.count_trailing_zeros();
    c.pos_[static_cast<unsigned>(c.k_++)] = static_cast<u16>(b);
    m.clear_bit(b);
  }
  return c;
}

bool Combination::is_valid(int n_bits) const noexcept {
  int prev = -1;
  for (int i = 0; i < k_; ++i) {
    const int p = pos_[static_cast<unsigned>(i)];
    if (p <= prev || p >= n_bits) return false;
    prev = p;
  }
  return true;
}

std::string Combination::to_string() const {
  std::ostringstream os;
  os << '{';
  for (int i = 0; i < k_; ++i) {
    if (i != 0) os << ',';
    os << pos_[static_cast<unsigned>(i)];
  }
  os << '}';
  return os.str();
}

u128 rank_lexicographic(const Combination& c, int n_bits) {
  RBC_CHECK(c.is_valid(n_bits));
  const auto& B = BinomialTable::instance();
  const int k = c.k();
  u128 rank = 0;
  int prev = -1;
  for (int i = 0; i < k; ++i) {
    // Count combinations whose i-th element is smaller than c's while all
    // earlier elements agree.
    for (int v = prev + 1; v < c.position(i); ++v)
      rank += B(n_bits - 1 - v, k - 1 - i);
    prev = c.position(i);
  }
  return rank;
}

u128 rank_colexicographic(const Combination& c) {
  const auto& B = BinomialTable::instance();
  u128 rank = 0;
  for (int i = 0; i < c.k(); ++i) rank += B(c.position(i), i + 1);
  return rank;
}

Combination unrank_colexicographic(u128 rank, int k, int n_bits) {
  RBC_CHECK(k >= 0 && k <= kMaxK);
  const auto& B = BinomialTable::instance();
  Combination c = Combination::first(k);
  // Choose positions from the top down: the largest position p_k is the
  // greatest v with C(v, k) <= rank. Each position is bounded above by the
  // one already chosen; the bound only binds for out-of-range ranks (for a
  // valid rank the remainder after choosing P satisfies rank < C(P, i+1)).
  int hi = n_bits;
  for (int i = k - 1; i >= 0; --i) {
    int v = i;  // minimum possible value for position i
    while (v + 1 < hi && B(v + 1, i + 1) <= rank) ++v;
    c.set_position(i, v);
    rank -= B(v, i + 1);
    hi = v;
  }
  RBC_CHECK_MSG(rank == 0, "colex rank out of range");
  return c;
}

bool next_lexicographic(Combination& c, int n_bits) {
  const int k = c.k();
  if (k == 0) return false;
  // Find the rightmost position that can advance (Algorithm 154's rule).
  int i = k - 1;
  while (i >= 0 && c.position(i) == n_bits - k + i) --i;
  if (i < 0) return false;
  const int base = c.position(i) + 1;
  for (int j = i; j < k; ++j) c.set_position(j, base + (j - i));
  return true;
}

}  // namespace rbc::comb
