// shell.hpp is header-only; this translation unit exists to give the target a
// place to grow and to force the header to compile standalone.
#include "combinatorics/shell.hpp"

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"

namespace rbc::comb {

static_assert(SeedIteratorFactory<GosperFactory>);
static_assert(SeedIteratorFactory<Algorithm515Factory>);
static_assert(SeedIteratorFactory<ChaseFactory>);

static_assert(TiledSeedIteratorFactory<GosperFactory>);
static_assert(TiledSeedIteratorFactory<Algorithm515Factory>);
static_assert(TiledSeedIteratorFactory<ChaseFactory>);

}  // namespace rbc::comb
