// Polynomial ring arithmetic over Z_q[X]/(X^256 + 1) — the substrate of the
// toy module-lattice key generators used as Table 7 comparators.
//
// Two multiplication back ends:
//   * schoolbook negacyclic convolution — works for any modulus (used by the
//     power-of-two SABER-style ring, which is not NTT friendly), and
//   * an iterative negacyclic NTT — used when 2N | q-1 (the Dilithium-style
//     prime q = 8380417). The primitive root is found at startup by search,
//     so no magic twiddle tables are transcribed.
//
// These are faithful in *structure* (dimensions, sampling, rounding) but are
// NOT secure implementations; see DESIGN.md for the substitution rationale.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "hash/keccak.hpp"

namespace rbc::crypto {

inline constexpr int kRingDegree = 256;

/// A polynomial with kRingDegree coefficients in [0, q).
struct Poly {
  std::array<u32, kRingDegree> c{};

  friend bool operator==(const Poly&, const Poly&) = default;
};

/// Ring context: modulus plus (when available) NTT machinery.
class PolyRing {
 public:
  explicit PolyRing(u32 q);

  u32 q() const noexcept { return q_; }
  bool ntt_available() const noexcept { return !psi_powers_.empty(); }

  Poly add(const Poly& a, const Poly& b) const noexcept;
  Poly sub(const Poly& a, const Poly& b) const noexcept;

  /// Negacyclic product a*b mod (X^N + 1, q). Dispatches to the NTT when the
  /// ring supports it, schoolbook otherwise.
  Poly mul(const Poly& a, const Poly& b) const;

  /// Schoolbook product (exposed for cross-validation of the NTT path).
  Poly mul_schoolbook(const Poly& a, const Poly& b) const noexcept;

  /// Coefficient-wise rounding shift: (c + 2^(bits-1)) >> bits — the LWR
  /// rounding step of the SABER-style scheme.
  Poly round_shift(const Poly& a, int bits) const noexcept;

  /// Uniform polynomial from a SHAKE-128 stream (rejection sampling).
  Poly sample_uniform(hash::Shake128& xof) const;

  /// Small (secret) polynomial with coefficients in [-eta, eta], centered
  /// binomial from a SHAKE-256 stream, stored mod q.
  Poly sample_small(hash::Shake256& xof, int eta) const;

 private:
  void ntt_forward(std::array<u32, kRingDegree>& a) const noexcept;
  void ntt_inverse(std::array<u32, kRingDegree>& a) const noexcept;

  u32 q_;
  // psi_powers_[i] = psi^bitrev(i), psi a primitive 2N-th root of unity.
  std::vector<u32> psi_powers_;
  std::vector<u32> psi_inv_powers_;
  u32 n_inv_ = 0;
};

/// Finds a primitive 2n-th root of unity mod q, or 0 if none exists.
u32 find_primitive_root_2n(u32 q, int n);

}  // namespace rbc::crypto
