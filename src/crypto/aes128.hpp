// AES-128 block cipher (FIPS-197), encryption direction, from scratch.
//
// AES is not part of RBC-SALTED itself — it is the cryptographic primitive
// of the *prior-work baseline* [39] that Table 7 compares against: the
// original algorithm-aware RBC search generates an AES-derived public key
// for every candidate seed. The implementation is byte-oriented (no T-tables)
// to mirror the register-frugal GPU kernels the prior work used; the S-box is
// derived from the GF(2^8) inverse + affine map at first use rather than
// transcribed, and the whole cipher is validated against FIPS-197 vectors.
//
// Security note: this is a benchmark comparator, not hardened crypto — no
// constant-time guarantees are claimed.
#pragma once

#include <array>

#include "common/types.hpp"

namespace rbc::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockBytes = 16;
  static constexpr std::size_t kKeyBytes = 16;
  using Block = std::array<u8, kBlockBytes>;
  using Key = std::array<u8, kKeyBytes>;

  /// Expands the 128-bit key into the 11 round keys.
  explicit Aes128(const Key& key) noexcept;

  /// Encrypts one 16-byte block (ECB primitive).
  Block encrypt(const Block& plaintext) const noexcept;

  /// The S-box value (exposed for tests against the FIPS-197 table).
  static u8 sbox(u8 x) noexcept;

 private:
  std::array<std::array<u8, 16>, 11> round_keys_;
};

}  // namespace rbc::crypto
