#include "crypto/aes128.hpp"

#include <cstring>

namespace rbc::crypto {

namespace {

// GF(2^8) multiplication modulo the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
u8 gf_mul(u8 a, u8 b) noexcept {
  u8 r = 0;
  while (b) {
    if (b & 1) r ^= a;
    const bool hi = a & 0x80;
    a = static_cast<u8>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return r;
}

// The S-box built from first principles: multiplicative inverse in GF(2^8)
// followed by the FIPS-197 affine transformation.
struct SboxTable {
  std::array<u8, 256> fwd{};

  SboxTable() {
    // Inverses by brute force — done once.
    std::array<u8, 256> inv{};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (gf_mul(static_cast<u8>(a), static_cast<u8>(b)) == 1) {
          inv[static_cast<unsigned>(a)] = static_cast<u8>(b);
          break;
        }
      }
    }
    for (int x = 0; x < 256; ++x) {
      const u8 i = inv[static_cast<unsigned>(x)];
      u8 y = 0;
      for (int bit = 0; bit < 8; ++bit) {
        const int v = ((i >> bit) & 1) ^ ((i >> ((bit + 4) % 8)) & 1) ^
                      ((i >> ((bit + 5) % 8)) & 1) ^ ((i >> ((bit + 6) % 8)) & 1) ^
                      ((i >> ((bit + 7) % 8)) & 1) ^ ((0x63 >> bit) & 1);
        y = static_cast<u8>(y | (v << bit));
      }
      fwd[static_cast<unsigned>(x)] = y;
    }
  }
};

const SboxTable& sbox_table() {
  static const SboxTable table;
  return table;
}

constexpr u8 kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                          0x20, 0x40, 0x80, 0x1b, 0x36};

}  // namespace

u8 Aes128::sbox(u8 x) noexcept { return sbox_table().fwd[x]; }

Aes128::Aes128(const Key& key) noexcept {
  std::memcpy(round_keys_[0].data(), key.data(), 16);
  for (int round = 1; round <= 10; ++round) {
    const auto& prev = round_keys_[static_cast<unsigned>(round - 1)];
    auto& rk = round_keys_[static_cast<unsigned>(round)];
    // RotWord + SubWord + Rcon on the last word of the previous round key.
    u8 t[4] = {sbox(prev[13]), sbox(prev[14]), sbox(prev[15]), sbox(prev[12])};
    t[0] ^= kRcon[round];
    for (int i = 0; i < 4; ++i) rk[static_cast<unsigned>(i)] = prev[static_cast<unsigned>(i)] ^ t[i];
    for (int i = 4; i < 16; ++i)
      rk[static_cast<unsigned>(i)] =
          prev[static_cast<unsigned>(i)] ^ rk[static_cast<unsigned>(i - 4)];
  }
}

Aes128::Block Aes128::encrypt(const Block& plaintext) const noexcept {
  // State in column-major order, as FIPS-197: state[r + 4c] = byte 4c + r.
  u8 s[16];
  for (int i = 0; i < 16; ++i) s[i] = plaintext[static_cast<unsigned>(i)] ^ round_keys_[0][static_cast<unsigned>(i)];

  auto sub_shift = [](u8* st) noexcept {
    // SubBytes + ShiftRows fused. Bytes are laid out column-major in memory
    // order b0..b15 where column c = bytes 4c..4c+3 and row r = byte index
    // r within the column.
    u8 t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[4 * c + r] = sbox_table().fwd[st[4 * ((c + r) % 4) + r]];
      }
    }
    std::memcpy(st, t, 16);
  };

  auto mix_columns = [](u8* st) noexcept {
    for (int c = 0; c < 4; ++c) {
      u8* col = st + 4 * c;
      const u8 a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<u8>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
      col[1] = static_cast<u8>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
      col[2] = static_cast<u8>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
      col[3] = static_cast<u8>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
    }
  };

  for (int round = 1; round <= 9; ++round) {
    sub_shift(s);
    mix_columns(s);
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[static_cast<unsigned>(round)][static_cast<unsigned>(i)];
  }
  sub_shift(s);
  Block out;
  for (int i = 0; i < 16; ++i)
    out[static_cast<unsigned>(i)] = s[i] ^ round_keys_[10][static_cast<unsigned>(i)];
  return out;
}

}  // namespace rbc::crypto
