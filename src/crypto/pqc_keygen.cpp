#include "crypto/pqc_keygen.hpp"

#include <cstring>

#include "hash/keccak.hpp"

namespace rbc::crypto {

namespace {

// Domain-separated sub-seed: SHA3-256(seed || tag).
std::array<u8, 32> derive_subseed(const Seed256& seed, u8 tag) {
  const auto bytes = seed.to_bytes();
  Bytes msg(bytes.begin(), bytes.end());
  msg.push_back(tag);
  return hash::sha3_256(msg).bytes;
}

hash::Shake128 make_uniform_xof(const std::array<u8, 32>& subseed, u8 i, u8 j) {
  hash::Shake128 xof;
  xof.absorb(subseed);
  const u8 idx[2] = {i, j};
  xof.absorb(ByteSpan{idx, 2});
  return xof;
}

hash::Shake256 make_small_xof(const std::array<u8, 32>& subseed, u8 i) {
  hash::Shake256 xof;
  xof.absorb(subseed);
  xof.absorb(ByteSpan{&i, 1});
  return xof;
}

void pack_poly(const Poly& p, int bytes_per_coeff, Bytes& out) {
  for (u32 c : p.c) {
    for (int b = 0; b < bytes_per_coeff; ++b)
      out.push_back(static_cast<u8>(c >> (8 * b)));
  }
}

}  // namespace

Bytes Aes128Keygen::operator()(const Seed256& seed) const {
  const auto bytes = seed.to_bytes();
  Aes128::Key key;
  std::memcpy(key.data(), bytes.data(), 16);
  Aes128::Block tweak;
  std::memcpy(tweak.data(), bytes.data() + 16, 16);

  const Aes128 cipher(key);
  Aes128::Block second = tweak;
  second[0] ^= 0x01;
  const auto c1 = cipher.encrypt(tweak);
  const auto c2 = cipher.encrypt(second);

  Bytes pk;
  pk.reserve(32);
  pk.insert(pk.end(), c1.begin(), c1.end());
  pk.insert(pk.end(), c2.begin(), c2.end());
  return pk;
}

Bytes SaberLikeKeygen::operator()(const Seed256& seed) const {
  const auto seed_a = derive_subseed(seed, 0x00);
  const auto seed_s = derive_subseed(seed, 0x01);

  // Secret vector s.
  std::array<Poly, kRank> s;
  for (int j = 0; j < kRank; ++j) {
    auto xof = make_small_xof(seed_s, static_cast<u8>(j));
    s[static_cast<unsigned>(j)] = ring_.sample_small(xof, kEta);
  }

  // b = round(A * s); A is generated on the fly row by row.
  Bytes pk(seed_a.begin(), seed_a.end());
  for (int i = 0; i < kRank; ++i) {
    Poly acc{};
    for (int j = 0; j < kRank; ++j) {
      auto xof = make_uniform_xof(seed_a, static_cast<u8>(i), static_cast<u8>(j));
      const Poly a_ij = ring_.sample_uniform(xof);
      acc = ring_.add(acc, ring_.mul(a_ij, s[static_cast<unsigned>(j)]));
    }
    pack_poly(ring_.round_shift(acc, kRoundBits), 2, pk);
  }
  return pk;
}

Bytes DilithiumLikeKeygen::operator()(const Seed256& seed) const {
  const auto seed_a = derive_subseed(seed, 0x10);
  const auto seed_s = derive_subseed(seed, 0x11);

  std::array<Poly, kL> s1;
  for (int j = 0; j < kL; ++j) {
    auto xof = make_small_xof(seed_s, static_cast<u8>(j));
    s1[static_cast<unsigned>(j)] = ring_.sample_small(xof, kEta);
  }

  Bytes pk(seed_a.begin(), seed_a.end());
  for (int i = 0; i < kK; ++i) {
    Poly acc{};
    for (int j = 0; j < kL; ++j) {
      auto xof = make_uniform_xof(seed_a, static_cast<u8>(i), static_cast<u8>(j));
      const Poly a_ij = ring_.sample_uniform(xof);
      acc = ring_.add(acc, ring_.mul(a_ij, s1[static_cast<unsigned>(j)]));
    }
    auto xof = make_small_xof(seed_s, static_cast<u8>(kL + i));
    const Poly s2_i = ring_.sample_small(xof, kEta);
    pack_poly(ring_.add(acc, s2_i), 3, pk);
  }
  return pk;
}

Bytes KyberLikeKeygen::operator()(const Seed256& seed) const {
  const auto seed_a = derive_subseed(seed, 0x20);
  const auto seed_s = derive_subseed(seed, 0x21);

  std::array<Poly, kRank> s;
  for (int j = 0; j < kRank; ++j) {
    auto xof = make_small_xof(seed_s, static_cast<u8>(j));
    s[static_cast<unsigned>(j)] = ring_.sample_small(xof, kEta);
  }

  Bytes pk(seed_a.begin(), seed_a.end());
  for (int i = 0; i < kRank; ++i) {
    Poly acc{};
    for (int j = 0; j < kRank; ++j) {
      auto xof = make_uniform_xof(seed_a, static_cast<u8>(i), static_cast<u8>(j));
      acc = ring_.add(acc, ring_.mul(ring_.sample_uniform(xof),
                                     s[static_cast<unsigned>(j)]));
    }
    auto xof = make_small_xof(seed_s, static_cast<u8>(kRank + i));
    pack_poly(ring_.add(acc, ring_.sample_small(xof, kEta)), 2, pk);
  }
  return pk;
}

Bytes WotsKeygen::operator()(const Seed256& seed) const {
  const auto bytes = seed.to_bytes();
  // Chain head i = SHA3(seed || 0x30 || i); public chain top = the head
  // advanced kChainLen - 1 hash steps; pk = SHA3 over all tops.
  hash::KeccakSponge pk_sponge(136, 0x06);
  for (int chain = 0; chain < kChains; ++chain) {
    Bytes head_input(bytes.begin(), bytes.end());
    head_input.push_back(0x30);
    head_input.push_back(static_cast<u8>(chain));
    auto node = hash::sha3_256(head_input);
    for (int step = 1; step < kChainLen; ++step) {
      node = hash::sha3_256(ByteSpan{node.bytes.data(), node.bytes.size()});
    }
    pk_sponge.absorb(ByteSpan{node.bytes.data(), node.bytes.size()});
  }
  hash::Digest256 pk;
  pk_sponge.squeeze(MutByteSpan{pk.bytes.data(), pk.bytes.size()});
  return Bytes(pk.bytes.begin(), pk.bytes.end());
}

Bytes generate_public_key(const Seed256& seed, KeygenAlgo algo) {
  switch (algo) {
    case KeygenAlgo::kAes128:
      return Aes128Keygen{}(seed);
    case KeygenAlgo::kSaberLike:
      return SaberLikeKeygen{}(seed);
    case KeygenAlgo::kDilithiumLike:
      return DilithiumLikeKeygen{}(seed);
    case KeygenAlgo::kKyberLike:
      return KyberLikeKeygen{}(seed);
    case KeygenAlgo::kWots:
      return WotsKeygen{}(seed);
  }
  RBC_CHECK_MSG(false, "unknown keygen algorithm");
  return {};
}

}  // namespace rbc::crypto
