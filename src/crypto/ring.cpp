#include "crypto/ring.hpp"

#include <bit>

namespace rbc::crypto {

namespace {

u32 mod_mul(u32 a, u32 b, u32 q) noexcept {
  return static_cast<u32>((static_cast<u64>(a) * b) % q);
}

u32 mod_pow(u32 base, u64 exp, u32 q) noexcept {
  u64 result = 1;
  u64 b = base % q;
  while (exp) {
    if (exp & 1) result = (result * b) % q;
    b = (b * b) % q;
    exp >>= 1;
  }
  return static_cast<u32>(result);
}

}  // namespace

u32 find_primitive_root_2n(u32 q, int n) {
  const u64 order = 2 * static_cast<u64>(n);
  if ((static_cast<u64>(q) - 1) % order != 0) return 0;
  // Try candidates g and test psi = g^((q-1)/2n): psi is a primitive 2n-th
  // root iff psi^n == -1 (mod q).
  for (u32 g = 2; g < 1000; ++g) {
    const u32 psi = mod_pow(g, (static_cast<u64>(q) - 1) / order, q);
    if (psi == 0 || psi == 1) continue;
    if (mod_pow(psi, static_cast<u64>(n), q) == q - 1) return psi;
  }
  return 0;
}

PolyRing::PolyRing(u32 q) : q_(q) {
  RBC_CHECK_MSG(q >= 2, "modulus too small");
  const u32 psi = find_primitive_root_2n(q, kRingDegree);
  if (psi != 0) {
    psi_powers_.resize(kRingDegree);
    psi_inv_powers_.resize(kRingDegree);
    const u32 psi_inv = mod_pow(psi, static_cast<u64>(q) - 2, q);
    u32 p = 1, pi = 1;
    for (int i = 0; i < kRingDegree; ++i) {
      psi_powers_[static_cast<unsigned>(i)] = p;
      psi_inv_powers_[static_cast<unsigned>(i)] = pi;
      p = mod_mul(p, psi, q);
      pi = mod_mul(pi, psi_inv, q);
    }
    n_inv_ = mod_pow(kRingDegree, static_cast<u64>(q) - 2, q);
  }
}

Poly PolyRing::add(const Poly& a, const Poly& b) const noexcept {
  Poly r;
  for (int i = 0; i < kRingDegree; ++i) {
    const u32 s = a.c[static_cast<unsigned>(i)] + b.c[static_cast<unsigned>(i)];
    r.c[static_cast<unsigned>(i)] = s >= q_ ? s - q_ : s;
  }
  return r;
}

Poly PolyRing::sub(const Poly& a, const Poly& b) const noexcept {
  Poly r;
  for (int i = 0; i < kRingDegree; ++i) {
    const u32 ai = a.c[static_cast<unsigned>(i)];
    const u32 bi = b.c[static_cast<unsigned>(i)];
    r.c[static_cast<unsigned>(i)] = ai >= bi ? ai - bi : ai + q_ - bi;
  }
  return r;
}

Poly PolyRing::mul_schoolbook(const Poly& a, const Poly& b) const noexcept {
  // Negacyclic convolution: X^N = -1 folds the upper half with a sign flip.
  // Accumulate signed in i64 before the final reduction.
  std::array<i64, kRingDegree> acc{};
  for (int i = 0; i < kRingDegree; ++i) {
    const u64 ai = a.c[static_cast<unsigned>(i)];
    if (ai == 0) continue;
    for (int j = 0; j < kRingDegree; ++j) {
      const u64 prod = ai * b.c[static_cast<unsigned>(j)] % q_;
      const int idx = i + j;
      if (idx < kRingDegree) {
        acc[static_cast<unsigned>(idx)] += static_cast<i64>(prod);
      } else {
        acc[static_cast<unsigned>(idx - kRingDegree)] -= static_cast<i64>(prod);
      }
    }
  }
  Poly r;
  for (int i = 0; i < kRingDegree; ++i) {
    i64 v = acc[static_cast<unsigned>(i)] % static_cast<i64>(q_);
    if (v < 0) v += q_;
    r.c[static_cast<unsigned>(i)] = static_cast<u32>(v);
  }
  return r;
}

void PolyRing::ntt_forward(std::array<u32, kRingDegree>& a) const noexcept {
  const int n = kRingDegree;
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[static_cast<unsigned>(i)], a[static_cast<unsigned>(j)]);
  }
  // omega = psi^2 is a primitive n-th root of unity.
  const u32 omega = mod_mul(psi_powers_[1], psi_powers_[1], q_);
  for (int len = 2; len <= n; len <<= 1) {
    const u32 wlen = mod_pow(omega, static_cast<u64>(n / len), q_);
    for (int start = 0; start < n; start += len) {
      u32 w = 1;
      for (int j = 0; j < len / 2; ++j) {
        const u32 u = a[static_cast<unsigned>(start + j)];
        const u32 v = mod_mul(a[static_cast<unsigned>(start + j + len / 2)], w, q_);
        a[static_cast<unsigned>(start + j)] = u + v >= q_ ? u + v - q_ : u + v;
        a[static_cast<unsigned>(start + j + len / 2)] = u >= v ? u - v : u + q_ - v;
        w = mod_mul(w, wlen, q_);
      }
    }
  }
}

void PolyRing::ntt_inverse(std::array<u32, kRingDegree>& a) const noexcept {
  const int n = kRingDegree;
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[static_cast<unsigned>(i)], a[static_cast<unsigned>(j)]);
  }
  const u32 omega = mod_mul(psi_powers_[1], psi_powers_[1], q_);
  const u32 omega_inv = mod_pow(omega, static_cast<u64>(q_) - 2, q_);
  for (int len = 2; len <= n; len <<= 1) {
    const u32 wlen = mod_pow(omega_inv, static_cast<u64>(n / len), q_);
    for (int start = 0; start < n; start += len) {
      u32 w = 1;
      for (int j = 0; j < len / 2; ++j) {
        const u32 u = a[static_cast<unsigned>(start + j)];
        const u32 v = mod_mul(a[static_cast<unsigned>(start + j + len / 2)], w, q_);
        a[static_cast<unsigned>(start + j)] = u + v >= q_ ? u + v - q_ : u + v;
        a[static_cast<unsigned>(start + j + len / 2)] = u >= v ? u - v : u + q_ - v;
        w = mod_mul(w, wlen, q_);
      }
    }
  }
  for (auto& x : a) x = mod_mul(x, n_inv_, q_);
}

Poly PolyRing::mul(const Poly& a, const Poly& b) const {
  if (!ntt_available()) return mul_schoolbook(a, b);
  // Negacyclic trick: twist by psi^i, cyclic NTT multiply, untwist.
  std::array<u32, kRingDegree> ta, tb;
  for (int i = 0; i < kRingDegree; ++i) {
    ta[static_cast<unsigned>(i)] =
        mod_mul(a.c[static_cast<unsigned>(i)], psi_powers_[static_cast<unsigned>(i)], q_);
    tb[static_cast<unsigned>(i)] =
        mod_mul(b.c[static_cast<unsigned>(i)], psi_powers_[static_cast<unsigned>(i)], q_);
  }
  ntt_forward(ta);
  ntt_forward(tb);
  for (int i = 0; i < kRingDegree; ++i)
    ta[static_cast<unsigned>(i)] =
        mod_mul(ta[static_cast<unsigned>(i)], tb[static_cast<unsigned>(i)], q_);
  ntt_inverse(ta);
  Poly r;
  for (int i = 0; i < kRingDegree; ++i)
    r.c[static_cast<unsigned>(i)] =
        mod_mul(ta[static_cast<unsigned>(i)], psi_inv_powers_[static_cast<unsigned>(i)], q_);
  return r;
}

Poly PolyRing::round_shift(const Poly& a, int bits) const noexcept {
  Poly r;
  const u32 half = bits > 0 ? (1u << (bits - 1)) : 0;
  for (int i = 0; i < kRingDegree; ++i)
    r.c[static_cast<unsigned>(i)] =
        (a.c[static_cast<unsigned>(i)] + half) >> bits;
  return r;
}

Poly PolyRing::sample_uniform(hash::Shake128& xof) const {
  const int bits = static_cast<int>(std::bit_width(q_ - 1));
  const int bytes = (bits + 7) / 8;
  const u32 mask = bits >= 32 ? ~0u : (1u << bits) - 1;
  Poly r;
  u8 buf[4] = {};
  for (int i = 0; i < kRingDegree;) {
    xof.squeeze(MutByteSpan{buf, static_cast<std::size_t>(bytes)});
    u32 v = 0;
    for (int b = 0; b < bytes; ++b) v |= static_cast<u32>(buf[b]) << (8 * b);
    v &= mask;
    if (v < q_) r.c[static_cast<unsigned>(i++)] = v;
  }
  return r;
}

Poly PolyRing::sample_small(hash::Shake256& xof, int eta) const {
  RBC_CHECK(eta >= 1 && eta <= 8);
  Poly r;
  u8 buf[2];
  for (int i = 0; i < kRingDegree; ++i) {
    xof.squeeze(MutByteSpan{buf, 2});
    const u16 v = static_cast<u16>(buf[0] | (buf[1] << 8));
    const int a = std::popcount(static_cast<u32>(v & ((1u << eta) - 1)));
    const int b =
        std::popcount(static_cast<u32>((v >> eta) & ((1u << eta) - 1)));
    const int coeff = a - b;  // in [-eta, eta]
    r.c[static_cast<unsigned>(i)] =
        coeff >= 0 ? static_cast<u32>(coeff)
                   : q_ - static_cast<u32>(-coeff);
  }
  return r;
}

}  // namespace rbc::crypto
