// Public-key generators used by RBC.
//
// Two roles:
//  1. In RBC-SALTED, a key generator runs ONCE per authentication — after the
//     search recovers the seed, the salted seed feeds key generation (Fig. 1
//     steps 7–8).
//  2. In the legacy algorithm-aware RBC baselines of Table 7, a key generator
//     runs for EVERY candidate seed. The per-candidate cost gap between
//     hashing and key generation is the paper's core argument.
//
// Three generators, ordered by per-call cost (matching Table 7's ordering):
//   * Aes128Keygen     — prior work [39]: AES-128 of fixed blocks under a
//                        seed-derived key.
//   * SaberLikeKeygen  — LightSABER-shaped module-LWR keygen [29]: 2x2 ring
//                        matrix over Z_8192[X]/(X^256+1), schoolbook mults,
//                        13->10 bit rounding.
//   * DilithiumLikeKeygen — Dilithium3-shaped module-LWE keygen [40]: 6x5
//                        ring matrix over Z_8380417[X]/(X^256+1) via NTT.
//
// The lattice generators reproduce the real schemes' dimensions and sampling
// structure but are simplified (no packing-exact encodings, no security
// claims) — see DESIGN.md's substitution table.
#pragma once

#include <concepts>
#include <string_view>

#include "bits/seed256.hpp"
#include "common/types.hpp"
#include "crypto/aes128.hpp"
#include "crypto/ring.hpp"

namespace rbc::crypto {

template <typename K>
concept SeedKeygen = requires(const K& k, const Seed256& s) {
  { k(s) } -> std::same_as<Bytes>;
  { K::name() } -> std::convertible_to<std::string_view>;
};

/// AES-128-based "public key": the encryption of two fixed blocks under the
/// key formed from the seed's low 16 bytes, tweaked by the high 16 bytes.
/// Mirrors the symmetric-cipher responses of Wright et al. [39].
class Aes128Keygen {
 public:
  static constexpr std::string_view name() { return "AES-128"; }
  Bytes operator()(const Seed256& seed) const;
};

/// LightSABER-shaped module-LWR key generation.
class SaberLikeKeygen {
 public:
  static constexpr int kRank = 2;       // LightSaber l = 2
  static constexpr u32 kQ = 8192;       // eq = 13
  static constexpr int kRoundBits = 3;  // 13 -> 10 bit rounding
  static constexpr int kEta = 5;        // mu = 10 centered binomial

  static constexpr std::string_view name() { return "LightSABER-like"; }

  SaberLikeKeygen() : ring_(kQ) {}
  Bytes operator()(const Seed256& seed) const;

 private:
  PolyRing ring_;
};

/// Dilithium3-shaped module-LWE key generation (t = A*s1 + s2).
class DilithiumLikeKeygen {
 public:
  static constexpr int kK = 6;  // Dilithium3 k
  static constexpr int kL = 5;  // Dilithium3 l
  static constexpr u32 kQ = 8380417;
  static constexpr int kEta = 4;

  static constexpr std::string_view name() { return "Dilithium3-like"; }

  DilithiumLikeKeygen() : ring_(kQ) {}
  Bytes operator()(const Seed256& seed) const;

 private:
  PolyRing ring_;
};

/// Kyber768-shaped module-LWE KEM key generation (t = A*s + e). Kyber's
/// q = 3329 has no full negacyclic NTT for n = 256 (the real scheme uses a
/// split NTT), so the generic ring falls back to schoolbook multiplication —
/// which is also roughly where a register-bound GPU kernel lands.
/// RBC-SALTED can terminate in any of these (§3: "any cryptographic
/// algorithm that generates public keys can be employed").
class KyberLikeKeygen {
 public:
  static constexpr int kRank = 3;  // Kyber768 k
  static constexpr u32 kQ = 3329;
  static constexpr int kEta = 2;

  static constexpr std::string_view name() { return "Kyber768-like"; }

  KyberLikeKeygen() : ring_(kQ) {}
  Bytes operator()(const Seed256& seed) const;

 private:
  PolyRing ring_;
};

/// WOTS+-shaped hash-based key generation — the building block of SPHINCS+
/// (one of §3's listed NIST selections). Entirely hash-built: kChains
/// secret chain heads derived from the seed, each walked kChainLen - 1
/// SHA3 steps; the public key is the hash of the chain tops. Its cost is
/// ~kChains * kChainLen hashes, which makes the legacy (keygen-per-
/// candidate) search measurably three orders of magnitude worse than
/// RBC-SALTED in pure hash units — the cleanest possible illustration of
/// the paper's salted-vs-algorithm-aware argument.
class WotsKeygen {
 public:
  static constexpr int kChains = 67;    // WOTS+ len for n=256, w=16
  static constexpr int kChainLen = 16;  // Winternitz parameter w

  static constexpr std::string_view name() { return "WOTS+-like (SPHINCS+)"; }

  Bytes operator()(const Seed256& seed) const;
};

static_assert(SeedKeygen<Aes128Keygen>);
static_assert(SeedKeygen<SaberLikeKeygen>);
static_assert(SeedKeygen<DilithiumLikeKeygen>);
static_assert(SeedKeygen<KyberLikeKeygen>);
static_assert(SeedKeygen<WotsKeygen>);

/// Runtime selector used by the protocol layer (Fig. 1 step 8 lets any
/// public-key algorithm terminate the salted search).
enum class KeygenAlgo : u8 {
  kAes128 = 0,
  kSaberLike = 1,
  kDilithiumLike = 2,
  kKyberLike = 3,
  kWots = 4,
};

constexpr std::string_view to_string(KeygenAlgo a) {
  switch (a) {
    case KeygenAlgo::kAes128:
      return "AES-128";
    case KeygenAlgo::kSaberLike:
      return "LightSABER-like";
    case KeygenAlgo::kDilithiumLike:
      return "Dilithium3-like";
    case KeygenAlgo::kKyberLike:
      return "Kyber768-like";
    case KeygenAlgo::kWots:
      return "WOTS+-like (SPHINCS+)";
  }
  return "?";
}

/// One-shot dispatch; constructs the generator internally (protocol-path
/// convenience — hot loops should hold a policy object instead).
Bytes generate_public_key(const Seed256& seed, KeygenAlgo algo);

}  // namespace rbc::crypto
