// Salting the recovered seed (Fig. 1 step 7).
//
// After the search finds the client's seed S, both sides derive S' = salt(S)
// and generate the public key from S'. The salt breaks the correspondence
// between the message digests exchanged during the search and the public key
// registered with the RA: an eavesdropper holding M1 cannot link it to P_k1.
// The paper's example salt is a bit shift; we implement it as a 256-bit
// rotation (lossless, so distinct seeds stay distinct) plus an optional XOR
// tweak. Client and server must share the same SaltPolicy — a mismatch is a
// protocol error that the integration tests exercise.
#pragma once

#include "bits/seed256.hpp"
#include "common/types.hpp"

namespace rbc::crypto {

class SaltPolicy {
 public:
  /// rotate_bits in [0, 256); tweak XORed after rotation.
  explicit SaltPolicy(int rotate_bits = 97,
                      const Seed256& tweak = Seed256::zero()) noexcept
      : rotate_bits_(((rotate_bits % 256) + 256) % 256), tweak_(tweak) {}

  Seed256 apply(const Seed256& seed) const noexcept {
    return seed.rotl(rotate_bits_) ^ tweak_;
  }

  /// Inverse transform (diagnostics / tests).
  Seed256 invert(const Seed256& salted) const noexcept {
    return (salted ^ tweak_).rotr(rotate_bits_);
  }

  friend bool operator==(const SaltPolicy&, const SaltPolicy&) = default;

 private:
  int rotate_bits_;
  Seed256 tweak_;
};

}  // namespace rbc::crypto
