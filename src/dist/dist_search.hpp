// Distributed-memory RBC search over the message-passing substrate — the
// Philabaum et al. [36] engine shape, applied to the SALTED (hash-based)
// per-candidate operation.
//
// Topology: rank 0 is the coordinator; every rank (0 included) searches a
// disjoint slice of each Hamming shell. The early-exit protocol is explicit
// message traffic, as it must be without shared memory:
//   * a rank that finds the seed sends FOUND to rank 0;
//   * rank 0 broadcasts STOP to all ranks;
//   * ranks poll their mailbox between seed batches (the distributed
//     analogue of §4.4's flag-check interval);
//   * a shell ends with a barrier + rank-0 decision to continue or stop.
#pragma once

#include <cstring>

#include "combinatorics/algorithm515.hpp"
#include "dist/comm.hpp"
#include "hash/traits.hpp"
#include "parallel/search_context.hpp"
#include "rbc/search.hpp"

namespace rbc::dist {

struct DistSearchResult {
  bool found = false;
  Seed256 seed;
  int distance = -1;
  int finder_rank = -1;
  u64 seeds_hashed = 0;   // aggregated over all ranks
  bool timed_out = false; // session deadline expired before the ball was done
};

namespace detail {
inline constexpr int kTagFound = 1;
inline constexpr int kTagStop = 2;
inline constexpr int kTagCount = 3;

inline Bytes encode_found(const Seed256& seed, int shell) {
  const auto bytes = seed.to_bytes();
  Bytes out(bytes.begin(), bytes.end());
  out.push_back(static_cast<u8>(shell));
  return out;
}
}  // namespace detail

/// Runs the distributed search on an existing communicator. Deterministic
/// partition: rank r owns the r-th of `size` contiguous chunks of each
/// shell's lexicographic sequence (Algorithm 515 unranking gives each rank
/// its start without coordination — the property §3.2.1 credits it for).
///
/// `session`, when non-null, carries the authentication deadline and
/// external cancellation: every rank polls it at its mailbox cadence (the
/// shared-nothing analogue of the unified-memory flag — here the context IS
/// shared because ranks are host threads; a true MPI deployment would
/// broadcast the expiry as a STOP message, which rank 0 also does).
template <hash::SeedHash Hash>
DistSearchResult distributed_search(Communicator& comm, const Seed256& s_init,
                                    const typename Hash::digest_type& target,
                                    int max_distance,
                                    u32 poll_interval = 64,
                                    const Hash& hash = {},
                                    par::SearchContext* session = nullptr) {
  RBC_CHECK(max_distance >= 0 && max_distance <= comb::kMaxK);
  DistSearchResult result;
  std::mutex result_mutex;

  comm.run([&](RankCtx& ctx) {
    const int rank = ctx.rank();
    const int size = ctx.size();
    u64 local_hashed = 0;
    bool stop = false;

    auto poll_stop = [&]() {
      Packet packet;
      if (ctx.try_recv(detail::kTagStop, packet)) stop = true;
      if (session != nullptr && session->cancel_requested()) stop = true;
      return stop;
    };

    auto report_found = [&](const Seed256& seed, int shell) {
      ctx.send(0, detail::kTagFound, detail::encode_found(seed, shell));
    };

    // Distance 0 is rank 0's job (Algorithm 1 lines 4-8).
    if (rank == 0) {
      ++local_hashed;
      if (hash(s_init) == target) report_found(s_init, 0);
    }

    for (int shell = 1; shell <= max_distance && !stop; ++shell) {
      // Rank 0 drains FOUND reports from the previous shell and decides.
      ctx.barrier();
      if (rank == 0) {
        Packet packet;
        while (ctx.try_recv(detail::kTagFound, packet)) {
          std::lock_guard lock(result_mutex);
          if (!result.found) {
            result.found = true;
            result.seed = Seed256::from_bytes(
                ByteSpan{packet.payload.data(), Seed256::kBytes});
            result.distance = packet.payload[Seed256::kBytes];
            result.finder_rank = packet.source;
          }
        }
        // A found seed or an expired session budget both end the search;
        // rank 0 turns either into explicit STOP traffic (the only
        // mechanism a real distributed deployment has).
        if (result.found ||
            (session != nullptr && session->check_deadline())) {
          for (int r = 0; r < size; ++r)
            ctx.send(r, detail::kTagStop, Bytes{});
        }
      }
      ctx.barrier();
      if (poll_stop()) break;

      comb::Algorithm515Factory factory(comb::Alg515Mode::kSuccessor);
      factory.prepare(shell, size);
      auto it = factory.make(rank);
      Seed256 mask;
      u32 since_poll = 0;
      while (it.next(mask)) {
        const Seed256 candidate = s_init ^ mask;
        ++local_hashed;
        if (hash(candidate) == target) {
          report_found(candidate, shell);
          break;
        }
        if (++since_poll >= poll_interval) {
          since_poll = 0;
          if (session != nullptr) session->check_deadline();
          if (poll_stop()) break;
        }
      }
    }

    // Final drain: collect late FOUND reports and count contributions.
    ctx.barrier();
    if (rank == 0) {
      Packet packet;
      while (ctx.try_recv(detail::kTagFound, packet)) {
        std::lock_guard lock(result_mutex);
        if (!result.found) {
          result.found = true;
          result.seed = Seed256::from_bytes(
              ByteSpan{packet.payload.data(), Seed256::kBytes});
          result.distance = packet.payload[Seed256::kBytes];
          result.finder_rank = packet.source;
        }
      }
    }
    if (session != nullptr) session->add_progress(local_hashed);
    Bytes count(8);
    std::memcpy(count.data(), &local_hashed, 8);
    ctx.send(0, detail::kTagCount, std::move(count));
    if (rank == 0) {
      u64 total = 0;
      for (int r = 0; r < size; ++r) {
        const Packet packet = ctx.recv(detail::kTagCount);
        u64 contribution = 0;
        std::memcpy(&contribution, packet.payload.data(), 8);
        total += contribution;
      }
      std::lock_guard lock(result_mutex);
      result.seeds_hashed = total;
    }
    // Drain stray STOP messages so reruns on this communicator start clean.
    Packet stray;
    while (ctx.try_recv(detail::kTagStop, stray)) {
    }
  });

  if (!result.found && session != nullptr) {
    result.timed_out = session->timed_out();
  }
  return result;
}

}  // namespace rbc::dist
