// Distributed-memory RBC search over the message-passing substrate — the
// Philabaum et al. [36] engine shape, applied to the SALTED (hash-based)
// per-candidate operation.
//
// Topology: rank 0 is both the coordinator and a worker. Work distribution
// is GUIDED SELF-SCHEDULING rather than static slices (PR 4): a rank asks
// rank 0 for work (WANT), rank 0 grants a contiguous chunk of the current
// shell's lexicographic sequence — shrinking from remaining/(2*size) down
// to a check-interval-sized floor — and the rank unranks its start with
// Algorithm 515 and walks the chunk with successor stepping. There are NO
// per-shell barriers: as soon as a shell's chunks are all granted, rank 0
// moves its grant pointer to the next shell while stragglers finish their
// last chunks in the background; a rank that outruns the coordinator has
// its request deferred until the grant pointer catches up.
//
// The early-exit protocol is explicit message traffic, as it must be
// without shared memory:
//   * a rank that finds the seed sends FOUND to rank 0 (chunks may be in
//     flight for two adjacent shells, so rank 0 keeps the minimal shell);
//   * rank 0 broadcasts STOP; ranks poll their mailbox between seed batches
//     at the same SearchOptions::check_interval cadence the shared-memory
//     engines use (§4.4);
//   * every WANT is answered — with a chunk or an empty grant — so no rank
//     ever blocks on a silent coordinator, and the search ends with a
//     count-aggregation sweep instead of a barrier chain.
#pragma once

#include <algorithm>
#include <cstring>
#include <deque>
#include <thread>

#include "combinatorics/algorithm515.hpp"
#include "dist/comm.hpp"
#include "hash/traits.hpp"
#include "parallel/search_context.hpp"
#include "rbc/search.hpp"

namespace rbc::dist {

struct DistSearchResult {
  bool found = false;
  Seed256 seed;
  int distance = -1;
  int finder_rank = -1;
  u64 seeds_hashed = 0;   // aggregated over all ranks
  bool timed_out = false; // session deadline expired before the ball was done
};

namespace detail {
inline constexpr int kTagWork = 1;  // rank -> 0: WANT or FOUND
inline constexpr int kTagTile = 2;  // 0 -> rank: chunk grant (empty = move on)
inline constexpr int kTagStop = 3;  // 0 -> ranks: stop searching
inline constexpr int kTagCount = 4; // rank -> 0: final seed count

inline constexpr u8 kMsgWant = 0;
inline constexpr u8 kMsgFound = 1;

inline Bytes encode_want(int shell) {
  return Bytes{kMsgWant, static_cast<u8>(shell)};
}

inline Bytes encode_found(const Seed256& seed, int shell) {
  Bytes out{kMsgFound, static_cast<u8>(shell)};
  const auto bytes = seed.to_bytes();
  out.insert(out.end(), bytes.begin(), bytes.end());
  return out;
}

/// Chunk grant: 16-byte lexicographic start rank + 8-byte count.
inline Bytes encode_grant(u128 lo, u64 n) {
  Bytes out(24);
  std::memcpy(out.data(), &lo, 16);
  std::memcpy(out.data() + 16, &n, 8);
  return out;
}

inline void decode_grant(const Bytes& payload, u128& lo, u64& n) {
  std::memcpy(&lo, payload.data(), 16);
  std::memcpy(&n, payload.data() + 16, 8);
}
}  // namespace detail

/// Runs the distributed search on an existing communicator with rank-0
/// guided chunk scheduling (see the header comment). Honors
/// opts.max_distance, opts.check_interval (the mailbox/deadline poll
/// cadence), opts.early_exit, and opts.timeout_s.
///
/// `session`, when non-null, carries the authentication deadline and
/// external cancellation: every rank polls it at its chunk cadence (the
/// shared-nothing analogue of the unified-memory flag — here the context IS
/// shared because ranks are host threads; a true MPI deployment would
/// broadcast the expiry as a STOP message, which rank 0 also does). When
/// null, a local context enforcing opts.timeout_s is used.
template <hash::SeedHash Hash>
DistSearchResult distributed_search(Communicator& comm, const Seed256& s_init,
                                    const typename Hash::digest_type& target,
                                    const SearchOptions& opts = {},
                                    const Hash& hash = {},
                                    par::SearchContext* session = nullptr) {
  RBC_CHECK(opts.max_distance >= 0 && opts.max_distance <= comb::kMaxK);
  const int max_distance = opts.max_distance;
  const u64 min_chunk = std::max<u64>(opts.check_interval, 64);

  DistSearchResult result;
  std::mutex result_mutex;
  par::SearchContext local = par::SearchContext::with_budget(opts.timeout_s);
  par::SearchContext& sctx = session != nullptr ? *session : local;

  comm.run([&](RankCtx& ctx) {
    const int rank = ctx.rank();
    const int size = ctx.size();
    u64 local_hashed = 0;
    bool stop = false;

    auto poll_stop = [&]() {
      Packet packet;
      if (ctx.try_recv(detail::kTagStop, packet)) stop = true;
      if (sctx.cancel_requested()) stop = true;
      return stop;
    };

    auto record_found = [&](const Seed256& seed, int shell, int finder) {
      std::lock_guard lock(result_mutex);
      if (!result.found || shell < result.distance) {
        result.found = true;
        result.seed = seed;
        result.distance = shell;
        result.finder_rank = finder;
      }
    };

    // Walks `[lo, lo + n)` of `shell`'s lexicographic sequence; polls the
    // mailbox/deadline every check_interval seeds — the same stop cadence
    // the shared-memory engines use (§4.4). Reports a match to rank 0 and,
    // under early exit, abandons the rest of the chunk (the lanes after a
    // match are speculative); exhaustive mode finishes the chunk so the
    // aggregated count is the exact ball size.
    auto search_chunk = [&](int shell, u128 lo, u64 n) {
      comb::Algorithm515Iterator it(shell, lo, n, comb::Alg515Mode::kSuccessor);
      Seed256 mask;
      u32 since_poll = 0;
      while (it.next(mask)) {
        const Seed256 candidate = s_init ^ mask;
        ++local_hashed;
        if (hash(candidate) == target) {
          ctx.send(0, detail::kTagWork, detail::encode_found(candidate, shell));
          if (opts.early_exit) return;
        }
        if (++since_poll >= opts.check_interval) {
          since_poll = 0;
          sctx.check_deadline();
          if (poll_stop()) return;
        }
      }
    };

    // Distance 0 is rank 0's job (Algorithm 1 lines 4-8).
    if (rank == 0) {
      ++local_hashed;
      if (hash(s_init) == target) record_found(s_init, 0, 0);
    }

    if (rank != 0) {
      // Worker: per shell, keep asking the coordinator for chunks until it
      // answers with an empty grant, then flow into the next shell — the
      // coordinator's grant pointer, not a barrier, is what orders shells.
      for (int shell = 1; shell <= max_distance && !stop; ++shell) {
        while (true) {
          if (poll_stop()) break;
          ctx.send(0, detail::kTagWork, detail::encode_want(shell));
          const Packet grant = ctx.recv(detail::kTagTile);
          if (grant.payload.empty()) break;  // shell drained; move on
          u128 lo = 0;
          u64 n = 0;
          detail::decode_grant(grant.payload, lo, n);
          search_chunk(shell, lo, n);
        }
      }
    } else {
      // Coordinator (and worker): grant guided chunks of the current shell,
      // interleaving its own search in min_chunk quanta so the mailbox is
      // serviced at the same cadence the workers poll at.
      bool stopping = false;
      bool stop_sent = false;
      std::deque<Packet> deferred;  // WANTs for shells ahead of the pointer

      auto broadcast_stop = [&] {
        if (stop_sent) return;
        stop_sent = true;
        for (int r = 1; r < size; ++r) ctx.send(r, detail::kTagStop, Bytes{});
      };

      int current_shell = 0;
      u128 remaining = 0;
      u128 next_lo = 0;

      auto grant_to = [&](int dest, int want_shell) {
        if (!stopping && want_shell == current_shell && remaining > 0) {
          // Guided self-scheduling: hand out half an even share of what is
          // left, never below the poll-cadence floor.
          u128 n = remaining / (2 * static_cast<u128>(size));
          if (n < min_chunk) n = min_chunk;
          if (n > remaining) n = remaining;
          ctx.send(dest, detail::kTagTile,
                   detail::encode_grant(next_lo, static_cast<u64>(n)));
          next_lo += n;
          remaining -= n;
        } else if (!stopping && want_shell > current_shell) {
          // The rank outran the grant pointer; answer once we get there.
          deferred.push_back(Packet{dest, detail::kTagWork,
                                    detail::encode_want(want_shell)});
        } else {
          // Past shell, drained shell, or stopping: release the rank.
          ctx.send(dest, detail::kTagTile, Bytes{});
        }
      };

      auto handle_work = [&](const Packet& packet) {
        if (packet.payload[0] == detail::kMsgFound) {
          record_found(
              Seed256::from_bytes(ByteSpan{packet.payload.data() + 2,
                                           Seed256::kBytes}),
              packet.payload[1], packet.source);
          if (opts.early_exit) {
            stopping = true;
            broadcast_stop();
          }
          return;
        }
        grant_to(packet.source, packet.payload[1]);
      };

      auto service_mailbox = [&] {
        Packet packet;
        while (ctx.try_recv(detail::kTagWork, packet)) handle_work(packet);
        if (!stopping &&
            (sctx.check_deadline() || sctx.cancel_requested())) {
          stopping = true;
          broadcast_stop();
        }
      };

      for (int shell = 1; shell <= max_distance && !stopping; ++shell) {
        current_shell = shell;
        const u128 total = comb::binomial128(comb::kSeedBits, shell);
        next_lo = 0;
        remaining = total;
        // Ranks that finished the previous shell before the pointer moved:
        // their deferred WANTs are the first grants of this shell.
        for (std::deque<Packet> waiting = std::move(deferred);
             !waiting.empty(); waiting.pop_front()) {
          handle_work(waiting.front());
        }
        while (remaining > 0 && !stopping) {
          service_mailbox();
          if (stopping || remaining == 0) break;
          // Self-grant one poll-cadence quantum and search it.
          const u64 n =
              static_cast<u64>(std::min<u128>(remaining, min_chunk));
          const u128 lo = next_lo;
          next_lo += n;
          remaining -= n;
          search_chunk(shell, lo, n);
          if (stop) stopping = true;
        }
      }

      // Wind-down: release every parked rank, then answer stray WANTs with
      // empty grants until all counts are in. current_shell is now past the
      // ball, so grant_to() releases unconditionally.
      current_shell = max_distance + 1;
      for (; !deferred.empty(); deferred.pop_front())
        handle_work(deferred.front());
      int counts_received = 0;
      u64 total_hashed = 0;
      while (counts_received < size - 1) {
        Packet packet;
        if (ctx.try_recv(detail::kTagCount, packet)) {
          u64 contribution = 0;
          std::memcpy(&contribution, packet.payload.data(), 8);
          total_hashed += contribution;
          ++counts_received;
          continue;
        }
        if (ctx.try_recv(detail::kTagWork, packet)) {
          handle_work(packet);
          continue;
        }
        std::this_thread::yield();
      }
      // Late FOUND reports can trail a rank's count (different tags are
      // independent queues); drain them before closing the book.
      Packet packet;
      while (ctx.try_recv(detail::kTagWork, packet)) handle_work(packet);
      {
        std::lock_guard lock(result_mutex);
        result.seeds_hashed = total_hashed + local_hashed;
      }
    }

    sctx.add_progress(local_hashed);
    if (rank != 0) {
      Bytes count(8);
      std::memcpy(count.data(), &local_hashed, 8);
      ctx.send(0, detail::kTagCount, std::move(count));
    }
    // All traffic (including any STOP broadcast) is delivered before rank 0
    // finishes its count sweep; rendezvous once, then drain strays so
    // reruns on this communicator start clean.
    ctx.barrier();
    Packet stray;
    while (ctx.try_recv(detail::kTagStop, stray)) {
    }
  });

  if (!result.found) {
    result.timed_out = sctx.timed_out();
  }
  return result;
}

}  // namespace rbc::dist
