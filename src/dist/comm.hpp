// A small message-passing communicator (MPI-flavoured, in-process).
//
// Related work [36] (Philabaum et al.) parallelized the RBC search over
// distributed memory with MPI, reaching 404x on 512 cores; §5 names
// multi-node CPU scaling as future work for SALTED. This module provides
// the substrate: a communicator of `size` ranks running on host threads,
// with tagged point-to-point send/recv, barrier, and broadcast — enough to
// express the distributed search in dist_search.hpp with real message
// traffic (the early-exit notification actually travels as a message).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc::dist {

/// Tagged datagram between ranks.
struct Packet {
  int source = 0;
  int tag = 0;
  Bytes payload;
};

class Communicator;

/// One rank's endpoint, valid only inside the rank function.
class RankCtx {
 public:
  RankCtx(Communicator* comm, int rank) : comm_(comm), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Asynchronous send (buffered; never blocks).
  void send(int dest, int tag, Bytes payload) const;

  /// Blocking receive of the next packet with `tag` (any source).
  Packet recv(int tag) const;

  /// Non-blocking probe+receive: returns false if no packet with `tag` is
  /// queued (the distributed early-exit poll).
  bool try_recv(int tag, Packet& out) const;

  /// Collective barrier across all ranks.
  void barrier() const;

 private:
  Communicator* comm_;
  int rank_;
};

/// Runs `body(ctx)` once per rank, each on its own thread, and joins.
class Communicator {
 public:
  explicit Communicator(int size) : size_(size), mailboxes_(static_cast<std::size_t>(size)) {
    RBC_CHECK_MSG(size >= 1, "communicator needs at least one rank");
  }

  int size() const noexcept { return size_; }

  void run(const std::function<void(RankCtx&)>& body);

 private:
  friend class RankCtx;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Packet> packets;
  };

  void deliver(int dest, Packet packet);
  Packet blocking_recv(int rank, int tag);
  bool nonblocking_recv(int rank, int tag, Packet& out);
  void barrier_wait();

  int size_;
  std::vector<Mailbox> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  u64 barrier_generation_ = 0;
};

}  // namespace rbc::dist
