#include "dist/comm.hpp"

#include <algorithm>

namespace rbc::dist {

int RankCtx::size() const noexcept { return comm_->size(); }

void RankCtx::send(int dest, int tag, Bytes payload) const {
  RBC_CHECK(dest >= 0 && dest < comm_->size());
  Packet packet;
  packet.source = rank_;
  packet.tag = tag;
  packet.payload = std::move(payload);
  comm_->deliver(dest, std::move(packet));
}

Packet RankCtx::recv(int tag) const { return comm_->blocking_recv(rank_, tag); }

bool RankCtx::try_recv(int tag, Packet& out) const {
  return comm_->nonblocking_recv(rank_, tag, out);
}

void RankCtx::barrier() const { comm_->barrier_wait(); }

void Communicator::deliver(int dest, Packet packet) {
  auto& box = mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    box.packets.push_back(std::move(packet));
  }
  box.cv.notify_all();
}

Packet Communicator::blocking_recv(int rank, int tag) {
  auto& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.mutex);
  while (true) {
    const auto it =
        std::find_if(box.packets.begin(), box.packets.end(),
                     [tag](const Packet& p) { return p.tag == tag; });
    if (it != box.packets.end()) {
      Packet packet = std::move(*it);
      box.packets.erase(it);
      return packet;
    }
    box.cv.wait(lock);
  }
}

bool Communicator::nonblocking_recv(int rank, int tag, Packet& out) {
  auto& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.mutex);
  const auto it = std::find_if(box.packets.begin(), box.packets.end(),
                               [tag](const Packet& p) { return p.tag == tag; });
  if (it == box.packets.end()) return false;
  out = std::move(*it);
  box.packets.erase(it);
  return true;
}

void Communicator::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  const u64 generation = barrier_generation_;
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_generation_ != generation; });
}

void Communicator::run(const std::function<void(RankCtx&)>& body) {
  // Clear any leftover state so a communicator can host several jobs.
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    box.packets.clear();
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body, &error_mutex, &first_error] {
      RankCtx ctx(this, r);
      try {
        body(ctx);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rbc::dist
