#include "hash/cpu_features.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rbc::hash {

namespace {

SimdLevel probe_host() noexcept {
#if RBC_HAVE_AVX2_TARGET
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kSwar;
}

/// RBC_HASH_SIMD caps (never raises) the dispatch level; unknown values and
/// "auto" leave the probed level untouched.
SimdLevel apply_env(SimdLevel probed) noexcept {
  const char* env = std::getenv("RBC_HASH_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0) return probed;
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "swar") == 0)
    return probed < SimdLevel::kSwar ? probed : SimdLevel::kSwar;
  if (std::strcmp(env, "avx2") == 0)
    return probed < SimdLevel::kAvx2 ? probed : SimdLevel::kAvx2;
  return probed;
}

std::atomic<SimdLevel>& active_level() noexcept {
  static std::atomic<SimdLevel> level{apply_env(probe_host())};
  return level;
}

}  // namespace

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel probed = probe_host();
  return probed;
}

SimdLevel active_simd_level() noexcept {
  return active_level().load(std::memory_order_relaxed);
}

void force_simd_level(SimdLevel level) noexcept {
  const SimdLevel cap = detected_simd_level();
  active_level().store(level < cap ? level : cap, std::memory_order_relaxed);
}

}  // namespace rbc::hash
