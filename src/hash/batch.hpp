// BatchSeedHash — the batched hash policy layer over SeedHash.
//
// The search hot loop (rbc_search, the emulated GPU kernel) is monomorphized
// over a hash policy. A BatchSeedHash extends the SeedHash contract with a
// block form, `hash_batch(seeds, n, out)`, that compresses many candidates
// per call through the multi-lane kernels (sha1_multi / keccak_multi) under
// runtime CPU-feature dispatch. Every scalar SeedHash keeps working: the
// helpers below degrade to a B = 1 loop for policies without a batch form,
// so the same search template serves both.
//
// The policies' scalar operator() remains the exact fixed-padding fast path,
// which is what makes batch-vs-scalar equivalence directly testable lane by
// lane.
#pragma once

#include <cstddef>
#include <cstring>

#include "hash/keccak_multi.hpp"
#include "hash/sha1_multi.hpp"
#include "hash/traits.hpp"

namespace rbc::hash {

template <typename H>
concept BatchSeedHash =
    SeedHash<H> &&
    requires(const H& h, const Seed256* seeds, typename H::digest_type* out,
             std::size_t n) {
      { H::kBatch } -> std::convertible_to<std::size_t>;
      { h.hash_batch(seeds, n, out) } noexcept;
    };

/// Candidate block size the search loop should buffer for policy H: the
/// policy's preferred batch, or 1 for scalar policies (which reproduces the
/// one-candidate-per-iteration loop exactly).
template <SeedHash H>
constexpr std::size_t seed_hash_batch() noexcept {
  if constexpr (BatchSeedHash<H>) {
    return H::kBatch;
  } else {
    return 1;
  }
}

/// Hashes a block of `n` seeds under policy H — batched when the policy
/// supports it, a scalar loop otherwise. `n` may be ragged (any value up to
/// the caller's buffer size).
template <SeedHash H>
inline void hash_seed_block(const H& h, const Seed256* seeds, std::size_t n,
                            typename H::digest_type* out) noexcept {
  if constexpr (BatchSeedHash<H>) {
    h.hash_batch(seeds, n, out);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = h(seeds[i]);
  }
}

/// Maximum lanes per tagged block — the hit mask is one u64.
inline constexpr std::size_t kMaxTaggedLanes = 64;

/// Fused-batch form: one multi-lane compression over `n` candidates that
/// belong to DIFFERENT searches. `tags[i]` names lane i's stream and
/// `stream_heads[tags[i]]` is that stream's target digest's first 32 bits;
/// the returned bitmask has bit i set when lane i survives the head
/// prefilter (the caller confirms survivors against the stream's full
/// digest). The kernels already treat lanes as unrelated buffers, so
/// cross-session batches cost exactly what same-session batches do — this
/// is the primitive the server's FusionEngine feeds.
template <SeedHash H>
inline u64 hash_seed_block_tagged(const H& h, const Seed256* seeds,
                                  std::size_t n, const u16* tags,
                                  const u32* stream_heads,
                                  typename H::digest_type* out) noexcept {
  if (n > kMaxTaggedLanes) n = kMaxTaggedLanes;
  hash_seed_block(h, seeds, n, out);
  u64 hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u32 head;
    std::memcpy(&head, out[i].bytes.data(), sizeof(head));
    if (head == stream_heads[tags[i]]) hits |= u64{1} << i;
  }
  return hits;
}

/// Batched SHA-1 policy: scalar calls take the fixed-padding fast path,
/// blocks go through the 4/8-lane multi-buffer kernels.
struct Sha1BatchSeedHash {
  using digest_type = Digest160;
  /// Two AVX2 groups (or four SWAR groups) per refill — enough to amortize
  /// the block loop, small enough to stay in L1 alongside the digests.
  static constexpr std::size_t kBatch = 16;
  static constexpr std::string_view name() { return "SHA-1 (batched)"; }
  digest_type operator()(const Seed256& s) const noexcept {
    return sha1_seed(s);
  }
  void hash_batch(const Seed256* seeds, std::size_t n,
                  digest_type* out) const noexcept {
    sha1_seed_multi(seeds, n, out);
  }
};

/// Batched SHA3-256 policy (§3.2.2 fixed padding replicated per lane).
struct Sha3BatchSeedHash {
  using digest_type = Digest256;
  static constexpr std::size_t kBatch = 16;
  static constexpr std::string_view name() { return "SHA-3 (batched)"; }
  digest_type operator()(const Seed256& s) const noexcept {
    return sha3_256_seed(s);
  }
  void hash_batch(const Seed256* seeds, std::size_t n,
                  digest_type* out) const noexcept {
    sha3_256_seed_multi(seeds, n, out);
  }
};

static_assert(BatchSeedHash<Sha1BatchSeedHash>);
static_assert(BatchSeedHash<Sha3BatchSeedHash>);
static_assert(!BatchSeedHash<Sha1SeedHash>);
static_assert(seed_hash_batch<Sha1SeedHash>() == 1);
static_assert(seed_hash_batch<Sha3BatchSeedHash>() == 16);

}  // namespace rbc::hash
