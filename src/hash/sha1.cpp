#include "hash/sha1.hpp"

#include <bit>
#include <cstring>

namespace rbc::hash {

namespace {

constexpr u32 kInit[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
                          0xc3d2e1f0u};

inline u32 rotl32(u32 x, int k) noexcept { return std::rotl(x, k); }

inline u32 load_be32(const u8* p) noexcept {
  return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
         (static_cast<u32>(p[2]) << 8) | static_cast<u32>(p[3]);
}

inline void store_be32(u8* p, u32 v) noexcept {
  p[0] = static_cast<u8>(v >> 24);
  p[1] = static_cast<u8>(v >> 16);
  p[2] = static_cast<u8>(v >> 8);
  p[3] = static_cast<u8>(v);
}

// Shared 80-round core operating on an already-expanded-or-expandable
// 16-word schedule seed. Used by both the streaming path and the fixed
// 32-byte seed path.
inline void sha1_rounds(u32 w[16], u32 h[5]) noexcept {
  u32 a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];

  auto schedule = [&w](int t) noexcept -> u32 {
    const u32 v = rotl32(
        w[(t - 3) & 15] ^ w[(t - 8) & 15] ^ w[(t - 14) & 15] ^ w[t & 15], 1);
    w[t & 15] = v;
    return v;
  };

  auto round = [&](u32 f, u32 k, u32 wt) noexcept {
    const u32 tmp = rotl32(a, 5) + f + e + k + wt;
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  };

  for (int t = 0; t < 16; ++t) round((b & c) | (~b & d), 0x5a827999u, w[t]);
  for (int t = 16; t < 20; ++t)
    round((b & c) | (~b & d), 0x5a827999u, schedule(t));
  for (int t = 20; t < 40; ++t) round(b ^ c ^ d, 0x6ed9eba1u, schedule(t));
  for (int t = 40; t < 60; ++t)
    round((b & c) | (b & d) | (c & d), 0x8f1bbcdcu, schedule(t));
  for (int t = 60; t < 80; ++t) round(b ^ c ^ d, 0xca62c1d6u, schedule(t));

  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
}

}  // namespace

void Sha1::reset() noexcept {
  std::memcpy(h_, kInit, sizeof(h_));
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::compress(const u8* block) noexcept {
  u32 w[16];
  for (int t = 0; t < 16; ++t) w[t] = load_be32(block + 4 * t);
  sha1_rounds(w, h_);
}

void Sha1::update(ByteSpan data) noexcept {
  total_bytes_ += data.size();
  std::size_t off = 0;
  if (buffered_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == 64) {
      compress(buffer_);
      buffered_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    compress(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_, data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

Digest160 Sha1::finalize() noexcept {
  // Padding written directly into the block buffer: the 0x80 marker, one
  // memset for the whole zero run (spilling into an extra compression when
  // the marker lands past byte 55), and the big-endian bit length. update()
  // is bypassed entirely — the length field must not count toward it anyway.
  const u64 bit_len = total_bytes_ * 8;
  buffer_[buffered_++] = 0x80;
  if (buffered_ > 56) {
    std::memset(buffer_ + buffered_, 0, 64 - buffered_);
    compress(buffer_);
    buffered_ = 0;
  }
  std::memset(buffer_ + buffered_, 0, 56 - buffered_);
  for (int i = 0; i < 8; ++i)
    buffer_[56 + i] = static_cast<u8>(bit_len >> (56 - 8 * i));
  compress(buffer_);

  Digest160 d;
  for (int i = 0; i < 5; ++i) store_be32(d.bytes.data() + 4 * i, h_[i]);
  reset();
  return d;
}

Digest160 sha1_seed(const Seed256& seed) noexcept {
  // Fixed single-block message: 32 seed bytes, 0x80 pad, zeros, and the
  // constant bit length 256 in the final word. The padding layout is known at
  // compile time, so there are no buffering branches on this path.
  const auto bytes = seed.to_bytes();
  u32 w[16];
  for (int t = 0; t < 8; ++t) w[t] = load_be32(bytes.data() + 4 * t);
  w[8] = 0x80000000u;
  for (int t = 9; t < 15; ++t) w[t] = 0;
  w[15] = 256u;  // message length in bits

  u32 h[5];
  std::memcpy(h, kInit, sizeof(h));
  sha1_rounds(w, h);

  Digest160 d;
  for (int i = 0; i < 5; ++i) store_be32(d.bytes.data() + 4 * i, h[i]);
  return d;
}

}  // namespace rbc::hash
