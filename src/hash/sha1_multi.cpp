#include "hash/sha1_multi.hpp"

#include <bit>
#include <cstring>

#include "hash/sha1.hpp"

#if RBC_HAVE_AVX2_TARGET
#include <immintrin.h>
#endif

namespace rbc::hash {

namespace {

constexpr u32 kInit[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
                          0xc3d2e1f0u};
constexpr u32 kK[4] = {0x5a827999u, 0x6ed9eba1u, 0x8f1bbcdcu, 0xca62c1d6u};

inline u32 bswap32(u32 v) noexcept {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) |
         (v << 24);
}

/// Big-endian 32-bit schedule word t (0..7) of the seed's canonical 32-byte
/// little-endian encoding: word t covers bytes [4t, 4t+4).
inline u32 seed_be32(const Seed256& seed, int t) noexcept {
  const u64 limb = seed.word(t >> 1);
  return bswap32(static_cast<u32>((t & 1) != 0 ? limb >> 32 : limb));
}

inline void store_be32(u8* p, u32 v) noexcept {
  p[0] = static_cast<u8>(v >> 24);
  p[1] = static_cast<u8>(v >> 16);
  p[2] = static_cast<u8>(v >> 8);
  p[3] = static_cast<u8>(v);
}

// --- portable SWAR kernel ---------------------------------------------------
// L independent lanes carried through the compression as small per-lane
// arrays; every step is an L-wide loop the compiler can unroll or vectorize.

template <int L>
void sha1_seed_lanes(const Seed256* seeds, Digest160* out) noexcept {
  u32 w[16][L];
  for (int l = 0; l < L; ++l) {
    for (int t = 0; t < 8; ++t) w[t][l] = seed_be32(seeds[l], t);
    w[8][l] = 0x80000000u;
    for (int t = 9; t < 15; ++t) w[t][l] = 0;
    w[15][l] = 256u;  // message length in bits
  }

  u32 a[L], b[L], c[L], d[L], e[L];
  for (int l = 0; l < L; ++l) {
    a[l] = kInit[0];
    b[l] = kInit[1];
    c[l] = kInit[2];
    d[l] = kInit[3];
    e[l] = kInit[4];
  }

  auto rounds = [&](int t0, int t1, u32 k, auto&& f) {
    for (int t = t0; t < t1; ++t) {
      u32 wt[L];
      if (t < 16) {
        for (int l = 0; l < L; ++l) wt[l] = w[t][l];
      } else {
        for (int l = 0; l < L; ++l) {
          const u32 v = std::rotl(w[(t - 3) & 15][l] ^ w[(t - 8) & 15][l] ^
                                      w[(t - 14) & 15][l] ^ w[t & 15][l],
                                  1);
          w[t & 15][l] = v;
          wt[l] = v;
        }
      }
      for (int l = 0; l < L; ++l) {
        const u32 tmp =
            std::rotl(a[l], 5) + f(b[l], c[l], d[l]) + e[l] + k + wt[l];
        e[l] = d[l];
        d[l] = c[l];
        c[l] = std::rotl(b[l], 30);
        b[l] = a[l];
        a[l] = tmp;
      }
    }
  };

  const auto ch = [](u32 x, u32 y, u32 z) { return (x & y) | (~x & z); };
  const auto parity = [](u32 x, u32 y, u32 z) { return x ^ y ^ z; };
  const auto maj = [](u32 x, u32 y, u32 z) {
    return (x & y) | (x & z) | (y & z);
  };
  rounds(0, 20, kK[0], ch);
  rounds(20, 40, kK[1], parity);
  rounds(40, 60, kK[2], maj);
  rounds(60, 80, kK[3], parity);

  for (int l = 0; l < L; ++l) {
    u8* p = out[l].bytes.data();
    store_be32(p, kInit[0] + a[l]);
    store_be32(p + 4, kInit[1] + b[l]);
    store_be32(p + 8, kInit[2] + c[l]);
    store_be32(p + 12, kInit[3] + d[l]);
    store_be32(p + 16, kInit[4] + e[l]);
  }
}

// --- AVX2 kernel: 8 lanes of 32-bit state per ymm ---------------------------
// All helpers carry the target attribute themselves (lambdas would not
// inherit it and fail to inline under GCC).

#if RBC_HAVE_AVX2_TARGET

RBC_TARGET_AVX2 inline __m256i rotl32v(__m256i x, int k) noexcept {
  return _mm256_or_si256(_mm256_slli_epi32(x, k), _mm256_srli_epi32(x, 32 - k));
}

RBC_TARGET_AVX2 void sha1_seed_x8_avx2(const Seed256* seeds,
                                       Digest160* out) noexcept {
  __m256i w[16];
  alignas(32) u32 gather[8];
  for (int t = 0; t < 8; ++t) {
    for (int l = 0; l < 8; ++l) gather[l] = seed_be32(seeds[l], t);
    w[t] = _mm256_load_si256(reinterpret_cast<const __m256i*>(gather));
  }
  w[8] = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  for (int t = 9; t < 15; ++t) w[t] = _mm256_setzero_si256();
  w[15] = _mm256_set1_epi32(256);

  __m256i a = _mm256_set1_epi32(static_cast<int>(kInit[0]));
  __m256i b = _mm256_set1_epi32(static_cast<int>(kInit[1]));
  __m256i c = _mm256_set1_epi32(static_cast<int>(kInit[2]));
  __m256i d = _mm256_set1_epi32(static_cast<int>(kInit[3]));
  __m256i e = _mm256_set1_epi32(static_cast<int>(kInit[4]));

  for (int t = 0; t < 80; ++t) {
    __m256i wt;
    if (t < 16) {
      wt = w[t];
    } else {
      wt = rotl32v(
          _mm256_xor_si256(
              _mm256_xor_si256(w[(t - 3) & 15], w[(t - 8) & 15]),
              _mm256_xor_si256(w[(t - 14) & 15], w[t & 15])),
          1);
      w[t & 15] = wt;
    }
    __m256i f;
    if (t < 20) {
      f = _mm256_or_si256(_mm256_and_si256(b, c), _mm256_andnot_si256(b, d));
    } else if (t < 40 || t >= 60) {
      f = _mm256_xor_si256(_mm256_xor_si256(b, c), d);
    } else {
      f = _mm256_or_si256(
          _mm256_or_si256(_mm256_and_si256(b, c), _mm256_and_si256(b, d)),
          _mm256_and_si256(c, d));
    }
    const __m256i k = _mm256_set1_epi32(static_cast<int>(kK[t / 20]));
    const __m256i tmp = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(rotl32v(a, 5), f),
                         _mm256_add_epi32(e, k)),
        wt);
    e = d;
    d = c;
    c = rotl32v(b, 30);
    b = a;
    a = tmp;
  }

  alignas(32) u32 ha[8], hb[8], hc[8], hd[8], he[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(ha), a);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hb), b);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hc), c);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hd), d);
  _mm256_store_si256(reinterpret_cast<__m256i*>(he), e);
  for (int l = 0; l < 8; ++l) {
    u8* p = out[l].bytes.data();
    store_be32(p, kInit[0] + ha[l]);
    store_be32(p + 4, kInit[1] + hb[l]);
    store_be32(p + 8, kInit[2] + hc[l]);
    store_be32(p + 12, kInit[3] + hd[l]);
    store_be32(p + 16, kInit[4] + he[l]);
  }
}

#endif  // RBC_HAVE_AVX2_TARGET

}  // namespace

void sha1_seed_multi_level(SimdLevel level, const Seed256* seeds,
                           std::size_t count, Digest160* out) noexcept {
  std::size_t i = 0;
#if RBC_HAVE_AVX2_TARGET
  if (level == SimdLevel::kAvx2) {
    for (; i + 8 <= count; i += 8) sha1_seed_x8_avx2(seeds + i, out + i);
  }
#endif
  if (level >= SimdLevel::kSwar) {
    for (; i + 4 <= count; i += 4) sha1_seed_lanes<4>(seeds + i, out + i);
  }
  for (; i < count; ++i) out[i] = sha1_seed(seeds[i]);
}

void sha1_seed_multi(const Seed256* seeds, std::size_t count,
                     Digest160* out) noexcept {
  sha1_seed_multi_level(active_simd_level(), seeds, count, out);
}

}  // namespace rbc::hash
