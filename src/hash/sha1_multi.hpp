// Multi-lane SHA-1 over fixed 32-byte seeds — the batched half of the
// fixed-padding fast path in sha1.hpp.
//
// One call compresses a whole block of candidate seeds: the 80-round
// compression runs over 4 (SWAR) or 8 (AVX2) independent message lanes at
// once, so the per-round dependent chain of one hash overlaps with its
// neighbours'. This is the standard multi-buffer construction used by
// high-throughput hashing stacks; it changes nothing about the digest — each
// lane computes exactly sha1_seed() of its seed.
//
// Entry points:
//   * sha1_seed_multi        — hashes `count` seeds under the process-wide
//                              dispatch level (cpu_features.hpp). Handles any
//                              count, including ragged tails.
//   * sha1_seed_multi_level  — same, at an explicit level; the level must not
//                              exceed detected_simd_level(). Used by the
//                              equivalence tests and the dispatch benches.
#pragma once

#include "bits/seed256.hpp"
#include "hash/cpu_features.hpp"
#include "hash/digest.hpp"

namespace rbc::hash {

/// out[i] = sha1_seed(seeds[i]) for i in [0, count).
void sha1_seed_multi(const Seed256* seeds, std::size_t count,
                     Digest160* out) noexcept;

/// Forced-level variant. `level` must be supported by this host.
void sha1_seed_multi_level(SimdLevel level, const Seed256* seeds,
                           std::size_t count, Digest160* out) noexcept;

}  // namespace rbc::hash
