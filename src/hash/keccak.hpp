// Keccak-f[1600] sponge family (FIPS 202), implemented from scratch:
// SHA3-256, SHA3-512, SHAKE-128, SHAKE-256.
//
// RBC-SALTED hashes 256-bit seeds with SHA-3 (§3). The generic sponge below
// supports arbitrary messages and is validated against NIST vectors; the RBC
// hot path is sha3_256_seed(), which applies the paper's §3.2.2 optimization:
// because every message is exactly 32 bytes, the sponge padding is fixed at
// compile time and the absorb phase collapses to four word stores plus the
// domain/pad constants — no conditional padding logic. The paper reports ~3%
// end-to-end gain from this; bench_ablation_sha3_padding reproduces the
// experiment.
#pragma once

#include "bits/seed256.hpp"
#include "common/types.hpp"
#include "hash/digest.hpp"

namespace rbc::hash {

namespace detail {

/// Keccak-f[1600] iota round constants, shared by the scalar permutation and
/// the multi-lane kernels in keccak_multi.cpp.
inline constexpr u64 kKeccakRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

/// rho rotation offsets, indexed lane x + 5y.
inline constexpr int kKeccakRho[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55,
                                       20, 3,  10, 43, 25, 39, 41, 45, 15,
                                       21, 8,  18, 2,  61, 56, 14};

}  // namespace detail

/// The Keccak-f[1600] permutation over a 5x5 lane state (24 rounds).
/// Exposed for tests (known-answer permutation vectors) and for the APU
/// simulator's cost accounting.
void keccak_f1600(u64 state[25]) noexcept;

/// Generic Keccak sponge. Parameterized at runtime by rate and the domain
/// separation suffix so one engine serves SHA3-256/512 and SHAKE-128/256.
class KeccakSponge {
 public:
  /// rate_bytes: sponge rate r/8; suffix: domain bits appended after the
  /// message (0x06 for SHA-3, 0x1f for SHAKE).
  KeccakSponge(std::size_t rate_bytes, u8 suffix) noexcept;

  void reset() noexcept;
  void absorb(ByteSpan data) noexcept;
  /// Finishes absorbing (applies padding) and switches to squeezing.
  /// Repeated squeeze() calls continue the output stream (XOF behaviour).
  void squeeze(MutByteSpan out) noexcept;

 private:
  u64 state_[25];
  std::size_t rate_;
  u8 suffix_;
  std::size_t absorb_pos_;
  std::size_t squeeze_pos_;
  bool squeezing_;
};

using Digest224 = Digest<28>;
using Digest384 = Digest<48>;

Digest224 sha3_224(ByteSpan data) noexcept;
Digest256 sha3_256(ByteSpan data) noexcept;
Digest384 sha3_384(ByteSpan data) noexcept;
Digest512 sha3_512(ByteSpan data) noexcept;

/// SHAKE XOFs used by the toy PQC key generators to expand seeds.
class Shake128 {
 public:
  Shake128() noexcept : sponge_(168, 0x1f) {}
  void absorb(ByteSpan data) noexcept { sponge_.absorb(data); }
  void squeeze(MutByteSpan out) noexcept { sponge_.squeeze(out); }

 private:
  KeccakSponge sponge_;
};

class Shake256 {
 public:
  Shake256() noexcept : sponge_(136, 0x1f) {}
  void absorb(ByteSpan data) noexcept { sponge_.absorb(data); }
  void squeeze(MutByteSpan out) noexcept { sponge_.squeeze(out); }

 private:
  KeccakSponge sponge_;
};

/// RBC hot path (§3.2.2): SHA3-256 of a 32-byte seed with fixed padding.
/// Exactly one Keccak-f[1600] permutation per hash.
Digest256 sha3_256_seed(const Seed256& seed) noexcept;

/// Reference path for the fixed-input ablation: the same digest computed via
/// the generic sponge (buffering + conditional padding on every call).
inline Digest256 sha3_256_seed_generic(const Seed256& seed) noexcept {
  const auto bytes = seed.to_bytes();
  return sha3_256(ByteSpan{bytes.data(), bytes.size()});
}

}  // namespace rbc::hash
