#include "hash/keccak_multi.hpp"

#include <bit>
#include <cstring>

#include "hash/keccak.hpp"

#if RBC_HAVE_AVX2_TARGET
#include <immintrin.h>
#endif

namespace rbc::hash {

namespace {

using detail::kKeccakRho;
using detail::kKeccakRoundConstants;

// --- portable SWAR kernel ---------------------------------------------------
// L sponge states side by side: s[i][l] is Keccak lane i of hash lane l.

template <int L>
void sha3_seed_lanes(const Seed256* seeds, Digest256* out) noexcept {
  u64 s[25][L];
  for (int l = 0; l < L; ++l) {
    for (int t = 0; t < 4; ++t) s[t][l] = seeds[l].word(t);
    s[4][l] = 0x06ULL;  // domain/pad byte at offset 32
    for (int i = 5; i < 16; ++i) s[i][l] = 0;
    s[16][l] = 0x8000000000000000ULL;  // final pad bit at byte 135
    for (int i = 17; i < 25; ++i) s[i][l] = 0;
  }

  for (int round = 0; round < 24; ++round) {
    u64 c[5][L], d[5][L];
    for (int x = 0; x < 5; ++x)
      for (int l = 0; l < L; ++l)
        c[x][l] = s[x][l] ^ s[x + 5][l] ^ s[x + 10][l] ^ s[x + 15][l] ^
                  s[x + 20][l];
    for (int x = 0; x < 5; ++x)
      for (int l = 0; l < L; ++l)
        d[x][l] = c[(x + 4) % 5][l] ^ std::rotl(c[(x + 1) % 5][l], 1);
    for (int i = 0; i < 25; ++i)
      for (int l = 0; l < L; ++l) s[i][l] ^= d[i % 5][l];

    u64 b[25][L];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        const int src = x + 5 * y;
        const int dst = y + 5 * ((2 * x + 3 * y) % 5);
        for (int l = 0; l < L; ++l)
          b[dst][l] = std::rotl(s[src][l], kKeccakRho[src]);
      }
    }

    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 5; ++x)
        for (int l = 0; l < L; ++l)
          s[x + 5 * y][l] = b[x + 5 * y][l] ^ (~b[(x + 1) % 5 + 5 * y][l] &
                                               b[(x + 2) % 5 + 5 * y][l]);

    for (int l = 0; l < L; ++l) s[0][l] ^= kKeccakRoundConstants[round];
  }

  for (int l = 0; l < L; ++l) {
    u8* p = out[l].bytes.data();
    for (int t = 0; t < 4; ++t) std::memcpy(p + 8 * t, &s[t][l], 8);
  }
}

// --- AVX2 kernel: 4 sponge states, one Keccak lane position per ymm ---------
// All helpers carry the target attribute themselves (lambdas would not
// inherit it and fail to inline under GCC).

#if RBC_HAVE_AVX2_TARGET

template <int R>
RBC_TARGET_AVX2 inline __m256i rotl64c(__m256i x) noexcept {
  if constexpr (R == 0) return x;
  return _mm256_or_si256(_mm256_slli_epi64(x, R), _mm256_srli_epi64(x, 64 - R));
}

/// One Keccak-f round reading `a` and writing `e`: theta, then rho+pi+chi
/// fused per OUTPUT row so only five B values and five theta D values are
/// live at once (a materialized b[25] next to a[25] spills every round — a
/// ymm register file holds 16 values). `RBC_KECCAK_ROW(Y, s0..s4)` lists the
/// pi-inverse source indices feeding output lanes 5Y..5Y+4; each source
/// lane's theta column is src % 5.
RBC_TARGET_AVX2 inline void keccak_round_x4(const __m256i* a, __m256i* e,
                                            u64 rc) noexcept {
  __m256i c0 = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_xor_si256(a[0], a[5]),
                       _mm256_xor_si256(a[10], a[15])),
      a[20]);
  __m256i c1 = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_xor_si256(a[1], a[6]),
                       _mm256_xor_si256(a[11], a[16])),
      a[21]);
  __m256i c2 = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_xor_si256(a[2], a[7]),
                       _mm256_xor_si256(a[12], a[17])),
      a[22]);
  __m256i c3 = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_xor_si256(a[3], a[8]),
                       _mm256_xor_si256(a[13], a[18])),
      a[23]);
  __m256i c4 = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_xor_si256(a[4], a[9]),
                       _mm256_xor_si256(a[14], a[19])),
      a[24]);
  const __m256i d0 = _mm256_xor_si256(c4, rotl64c<1>(c1));
  const __m256i d1 = _mm256_xor_si256(c0, rotl64c<1>(c2));
  const __m256i d2 = _mm256_xor_si256(c1, rotl64c<1>(c3));
  const __m256i d3 = _mm256_xor_si256(c2, rotl64c<1>(c4));
  const __m256i d4 = _mm256_xor_si256(c3, rotl64c<1>(c0));

#define RBC_KECCAK_B(src, dcol)                        \
  rotl64c<kKeccakRho[src]>(_mm256_xor_si256(a[src], dcol))
#define RBC_KECCAK_ROW(Y, s0, dc0, s1, dc1, s2, dc2, s3, dc3, s4, dc4)      \
  {                                                                         \
    const __m256i b0 = RBC_KECCAK_B(s0, dc0);                               \
    const __m256i b1 = RBC_KECCAK_B(s1, dc1);                               \
    const __m256i b2 = RBC_KECCAK_B(s2, dc2);                               \
    const __m256i b3 = RBC_KECCAK_B(s3, dc3);                               \
    const __m256i b4 = RBC_KECCAK_B(s4, dc4);                               \
    e[5 * (Y) + 0] = _mm256_xor_si256(b0, _mm256_andnot_si256(b1, b2));     \
    e[5 * (Y) + 1] = _mm256_xor_si256(b1, _mm256_andnot_si256(b2, b3));     \
    e[5 * (Y) + 2] = _mm256_xor_si256(b2, _mm256_andnot_si256(b3, b4));     \
    e[5 * (Y) + 3] = _mm256_xor_si256(b3, _mm256_andnot_si256(b4, b0));     \
    e[5 * (Y) + 4] = _mm256_xor_si256(b4, _mm256_andnot_si256(b0, b1));     \
  }
  RBC_KECCAK_ROW(0, 0, d0, 6, d1, 12, d2, 18, d3, 24, d4)
  RBC_KECCAK_ROW(1, 3, d3, 9, d4, 10, d0, 16, d1, 22, d2)
  RBC_KECCAK_ROW(2, 1, d1, 7, d2, 13, d3, 19, d4, 20, d0)
  RBC_KECCAK_ROW(3, 4, d4, 5, d0, 11, d1, 17, d2, 23, d3)
  RBC_KECCAK_ROW(4, 2, d2, 8, d3, 14, d4, 15, d0, 21, d1)
#undef RBC_KECCAK_ROW
#undef RBC_KECCAK_B

  e[0] = _mm256_xor_si256(e[0],
                          _mm256_set1_epi64x(static_cast<long long>(rc)));
}

RBC_TARGET_AVX2 void sha3_seed_x4_avx2(const Seed256* seeds,
                                       Digest256* out) noexcept {
  __m256i s[25];
  for (int t = 0; t < 4; ++t) {
    s[t] = _mm256_setr_epi64x(static_cast<long long>(seeds[0].word(t)),
                              static_cast<long long>(seeds[1].word(t)),
                              static_cast<long long>(seeds[2].word(t)),
                              static_cast<long long>(seeds[3].word(t)));
  }
  s[4] = _mm256_set1_epi64x(0x06LL);
  for (int i = 5; i < 16; ++i) s[i] = _mm256_setzero_si256();
  s[16] = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  for (int i = 17; i < 25; ++i) s[i] = _mm256_setzero_si256();

  __m256i t[25];
  for (int round = 0; round < 24; round += 2) {
    keccak_round_x4(s, t, kKeccakRoundConstants[round]);
    keccak_round_x4(t, s, kKeccakRoundConstants[round + 1]);
  }

  alignas(32) u64 lanes[4][4];  // lanes[t][l] = Keccak lane t of hash lane l
  for (int t = 0; t < 4; ++t)
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[t]), s[t]);
  for (int l = 0; l < 4; ++l) {
    u8* p = out[l].bytes.data();
    for (int t = 0; t < 4; ++t) std::memcpy(p + 8 * t, &lanes[t][l], 8);
  }
}

#endif  // RBC_HAVE_AVX2_TARGET

}  // namespace

void sha3_256_seed_multi_level(SimdLevel level, const Seed256* seeds,
                               std::size_t count, Digest256* out) noexcept {
  std::size_t i = 0;
#if RBC_HAVE_AVX2_TARGET
  if (level == SimdLevel::kAvx2) {
    for (; i + 4 <= count; i += 4) sha3_seed_x4_avx2(seeds + i, out + i);
  }
#endif
  if (level >= SimdLevel::kSwar) {
    for (; i + 4 <= count; i += 4) sha3_seed_lanes<4>(seeds + i, out + i);
  }
  for (; i < count; ++i) out[i] = sha3_256_seed(seeds[i]);
}

void sha3_256_seed_multi(const Seed256* seeds, std::size_t count,
                         Digest256* out) noexcept {
  sha3_256_seed_multi_level(active_simd_level(), seeds, count, out);
}

}  // namespace rbc::hash
