#include "hash/keccak_multi.hpp"

#include <bit>
#include <cstring>

#include "hash/keccak.hpp"

#if RBC_HAVE_AVX2_TARGET
#include <immintrin.h>
#endif

namespace rbc::hash {

namespace {

using detail::kKeccakRho;
using detail::kKeccakRoundConstants;

// --- portable SWAR kernel ---------------------------------------------------
// L sponge states side by side: s[i][l] is Keccak lane i of hash lane l.

template <int L>
void sha3_seed_lanes(const Seed256* seeds, Digest256* out) noexcept {
  u64 s[25][L];
  for (int l = 0; l < L; ++l) {
    for (int t = 0; t < 4; ++t) s[t][l] = seeds[l].word(t);
    s[4][l] = 0x06ULL;  // domain/pad byte at offset 32
    for (int i = 5; i < 16; ++i) s[i][l] = 0;
    s[16][l] = 0x8000000000000000ULL;  // final pad bit at byte 135
    for (int i = 17; i < 25; ++i) s[i][l] = 0;
  }

  for (int round = 0; round < 24; ++round) {
    u64 c[5][L], d[5][L];
    for (int x = 0; x < 5; ++x)
      for (int l = 0; l < L; ++l)
        c[x][l] = s[x][l] ^ s[x + 5][l] ^ s[x + 10][l] ^ s[x + 15][l] ^
                  s[x + 20][l];
    for (int x = 0; x < 5; ++x)
      for (int l = 0; l < L; ++l)
        d[x][l] = c[(x + 4) % 5][l] ^ std::rotl(c[(x + 1) % 5][l], 1);
    for (int i = 0; i < 25; ++i)
      for (int l = 0; l < L; ++l) s[i][l] ^= d[i % 5][l];

    u64 b[25][L];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        const int src = x + 5 * y;
        const int dst = y + 5 * ((2 * x + 3 * y) % 5);
        for (int l = 0; l < L; ++l)
          b[dst][l] = std::rotl(s[src][l], kKeccakRho[src]);
      }
    }

    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 5; ++x)
        for (int l = 0; l < L; ++l)
          s[x + 5 * y][l] = b[x + 5 * y][l] ^ (~b[(x + 1) % 5 + 5 * y][l] &
                                               b[(x + 2) % 5 + 5 * y][l]);

    for (int l = 0; l < L; ++l) s[0][l] ^= kKeccakRoundConstants[round];
  }

  for (int l = 0; l < L; ++l) {
    u8* p = out[l].bytes.data();
    for (int t = 0; t < 4; ++t) std::memcpy(p + 8 * t, &s[t][l], 8);
  }
}

// --- AVX2 kernel: 4 sponge states, one Keccak lane position per ymm ---------
// All helpers carry the target attribute themselves (lambdas would not
// inherit it and fail to inline under GCC).

#if RBC_HAVE_AVX2_TARGET

template <int R>
RBC_TARGET_AVX2 inline __m256i rotl64c(__m256i x) noexcept {
  if constexpr (R == 0) return x;
  return _mm256_or_si256(_mm256_slli_epi64(x, R), _mm256_srli_epi64(x, 64 - R));
}

RBC_TARGET_AVX2 void sha3_seed_x4_avx2(const Seed256* seeds,
                                       Digest256* out) noexcept {
  __m256i s[25];
  for (int t = 0; t < 4; ++t) {
    s[t] = _mm256_setr_epi64x(static_cast<long long>(seeds[0].word(t)),
                              static_cast<long long>(seeds[1].word(t)),
                              static_cast<long long>(seeds[2].word(t)),
                              static_cast<long long>(seeds[3].word(t)));
  }
  s[4] = _mm256_set1_epi64x(0x06LL);
  for (int i = 5; i < 16; ++i) s[i] = _mm256_setzero_si256();
  s[16] = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  for (int i = 17; i < 25; ++i) s[i] = _mm256_setzero_si256();

  for (int round = 0; round < 24; ++round) {
    // theta
    __m256i c[5], d[5];
    for (int x = 0; x < 5; ++x)
      c[x] = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_xor_si256(s[x], s[x + 5]),
                           _mm256_xor_si256(s[x + 10], s[x + 15])),
          s[x + 20]);
    for (int x = 0; x < 5; ++x)
      d[x] = _mm256_xor_si256(c[(x + 4) % 5], rotl64c<1>(c[(x + 1) % 5]));
    for (int i = 0; i < 25; ++i) s[i] = _mm256_xor_si256(s[i], d[i % 5]);

    // rho + pi, unrolled so every rotation count is a compile-time constant.
    __m256i b[25];
#define RBC_KECCAK_RHOPI(dst, src) \
  b[dst] = rotl64c<kKeccakRho[src]>(s[src]);
    RBC_KECCAK_RHOPI(0, 0)
    RBC_KECCAK_RHOPI(10, 1)
    RBC_KECCAK_RHOPI(20, 2)
    RBC_KECCAK_RHOPI(5, 3)
    RBC_KECCAK_RHOPI(15, 4)
    RBC_KECCAK_RHOPI(16, 5)
    RBC_KECCAK_RHOPI(1, 6)
    RBC_KECCAK_RHOPI(11, 7)
    RBC_KECCAK_RHOPI(21, 8)
    RBC_KECCAK_RHOPI(6, 9)
    RBC_KECCAK_RHOPI(7, 10)
    RBC_KECCAK_RHOPI(17, 11)
    RBC_KECCAK_RHOPI(2, 12)
    RBC_KECCAK_RHOPI(12, 13)
    RBC_KECCAK_RHOPI(22, 14)
    RBC_KECCAK_RHOPI(23, 15)
    RBC_KECCAK_RHOPI(8, 16)
    RBC_KECCAK_RHOPI(18, 17)
    RBC_KECCAK_RHOPI(3, 18)
    RBC_KECCAK_RHOPI(13, 19)
    RBC_KECCAK_RHOPI(14, 20)
    RBC_KECCAK_RHOPI(24, 21)
    RBC_KECCAK_RHOPI(9, 22)
    RBC_KECCAK_RHOPI(19, 23)
    RBC_KECCAK_RHOPI(4, 24)
#undef RBC_KECCAK_RHOPI

    // chi
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 5; ++x)
        s[x + 5 * y] = _mm256_xor_si256(
            b[x + 5 * y], _mm256_andnot_si256(b[(x + 1) % 5 + 5 * y],
                                              b[(x + 2) % 5 + 5 * y]));

    // iota
    s[0] = _mm256_xor_si256(
        s[0], _mm256_set1_epi64x(
                  static_cast<long long>(kKeccakRoundConstants[round])));
  }

  alignas(32) u64 lanes[4][4];  // lanes[t][l] = Keccak lane t of hash lane l
  for (int t = 0; t < 4; ++t)
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[t]), s[t]);
  for (int l = 0; l < 4; ++l) {
    u8* p = out[l].bytes.data();
    for (int t = 0; t < 4; ++t) std::memcpy(p + 8 * t, &lanes[t][l], 8);
  }
}

#endif  // RBC_HAVE_AVX2_TARGET

}  // namespace

void sha3_256_seed_multi_level(SimdLevel level, const Seed256* seeds,
                               std::size_t count, Digest256* out) noexcept {
  std::size_t i = 0;
#if RBC_HAVE_AVX2_TARGET
  if (level == SimdLevel::kAvx2) {
    for (; i + 4 <= count; i += 4) sha3_seed_x4_avx2(seeds + i, out + i);
  }
#endif
  if (level >= SimdLevel::kSwar) {
    for (; i + 4 <= count; i += 4) sha3_seed_lanes<4>(seeds + i, out + i);
  }
  for (; i < count; ++i) out[i] = sha3_256_seed(seeds[i]);
}

void sha3_256_seed_multi(const Seed256* seeds, std::size_t count,
                         Digest256* out) noexcept {
  sha3_256_seed_multi_level(active_simd_level(), seeds, count, out);
}

}  // namespace rbc::hash
