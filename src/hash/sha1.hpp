// SHA-1 (FIPS 180-4), implemented from scratch.
//
// The paper evaluates SHA-1 alongside SHA-3 "to provide a more thorough
// performance evaluation" while noting SHA-1 is no longer deemed secure
// (§4.2); the same caveat applies here. Two entry points are provided:
//   * a generic streaming hasher for arbitrary messages, and
//   * sha1_seed(), the RBC hot path specialized for 32-byte Seed256 inputs
//     (single compression, padding folded in at compile time — the same class
//     of fixed-input specialization §3.2.2 applies to SHA-3).
#pragma once

#include "bits/seed256.hpp"
#include "common/types.hpp"
#include "hash/digest.hpp"

namespace rbc::hash {

class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteSpan data) noexcept;
  Digest160 finalize() noexcept;

  /// One-shot convenience.
  static Digest160 hash(ByteSpan data) noexcept {
    Sha1 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void compress(const u8* block) noexcept;

  u32 h_[5];
  u8 buffer_[64];
  u64 total_bytes_;
  std::size_t buffered_;
};

/// RBC hot path: SHA-1 of the canonical 32-byte encoding of a seed.
/// Single fixed-shape compression; no buffering, no length bookkeeping.
Digest160 sha1_seed(const Seed256& seed) noexcept;

/// Reference path for the fixed-input ablation: routes the seed through the
/// generic streaming implementation.
inline Digest160 sha1_seed_generic(const Seed256& seed) noexcept {
  const auto bytes = seed.to_bytes();
  return Sha1::hash(ByteSpan{bytes.data(), bytes.size()});
}

}  // namespace rbc::hash
