// Runtime CPU-feature dispatch for the multi-lane seed-hash kernels.
//
// The batched hash pipeline ships three implementations of every kernel:
//   * kScalar — one seed per call through the existing fixed-padding path
//               (the reference; always available);
//   * kSwar   — portable multi-lane code: the compression function is
//               written over small per-lane arrays so the compiler can
//               unroll/auto-vectorize it, and so the dependent-chain latency
//               of one hash overlaps with its neighbours' on any ISA;
//   * kAvx2   — 8x32-bit (SHA-1) / 4x64-bit (Keccak) vector lanes using AVX2
//               intrinsics, compiled with a per-function target attribute so
//               the rest of the binary needs no special -m flags.
//
// The level is picked once per process: the strongest ISA the host supports,
// clamped by the RBC_HASH_SIMD environment knob (scalar|swar|avx2|auto) that
// CI uses to run the equivalence suite under every dispatch outcome. Tests
// may also force a level programmatically.
#pragma once

#include <string_view>

#include "common/types.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RBC_HAVE_AVX2_TARGET 1
#define RBC_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define RBC_HAVE_AVX2_TARGET 0
#define RBC_TARGET_AVX2
#endif

namespace rbc::hash {

enum class SimdLevel : u8 { kScalar = 0, kSwar = 1, kAvx2 = 2 };

constexpr std::string_view to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSwar:
      return "swar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

/// Strongest level this host can execute (CPUID probe; ignores the env).
SimdLevel detected_simd_level() noexcept;

/// Level the multi-lane kernels dispatch to: detected_simd_level() clamped
/// by RBC_HASH_SIMD and by any force_simd_level() override.
SimdLevel active_simd_level() noexcept;

/// Test hook: pin the dispatch level for this process (clamped to what the
/// host supports). Pass detected_simd_level() to restore auto behaviour.
void force_simd_level(SimdLevel level) noexcept;

}  // namespace rbc::hash
