// Multi-lane SHA3-256 over fixed 32-byte seeds — the batched half of the
// §3.2.2 fixed-padding fast path in keccak.hpp.
//
// One call runs Keccak-f[1600] over several independent sponge states at
// once: the SWAR kernel carries 4 states as per-lane arrays (unrollable /
// auto-vectorizable), the AVX2 kernel packs one 64-bit Keccak lane position
// of 4 states per ymm register — the classic "times-4" construction. Each
// lane computes exactly sha3_256_seed() of its seed: the fixed single-block
// absorb (4 word stores + 2 pad constants) is replicated per lane, so no
// padding logic runs on the hot path.
//
// Entry points mirror sha1_multi.hpp: a dispatching form plus a forced-level
// form for the equivalence tests and dispatch benches.
#pragma once

#include "bits/seed256.hpp"
#include "hash/cpu_features.hpp"
#include "hash/digest.hpp"

namespace rbc::hash {

/// out[i] = sha3_256_seed(seeds[i]) for i in [0, count).
void sha3_256_seed_multi(const Seed256* seeds, std::size_t count,
                         Digest256* out) noexcept;

/// Forced-level variant. `level` must be supported by this host.
void sha3_256_seed_multi_level(SimdLevel level, const Seed256* seeds,
                               std::size_t count, Digest256* out) noexcept;

}  // namespace rbc::hash
