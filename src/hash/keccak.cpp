#include "hash/keccak.hpp"

#include <bit>
#include <cstring>

namespace rbc::hash {

namespace {

constexpr u64 kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

// rho rotation offsets, indexed lane x + 5y.
constexpr int kRho[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                          25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

}  // namespace

void keccak_f1600(u64 a[25]) noexcept {
  for (int round = 0; round < 24; ++round) {
    // theta
    u64 c[5], d[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    for (int x = 0; x < 5; ++x)
      d[x] = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
    for (int i = 0; i < 25; ++i) a[i] ^= d[i % 5];

    // rho + pi
    u64 b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        const int src = x + 5 * y;
        const int dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[dst] = std::rotl(a[src], kRho[src]);
      }
    }

    // chi
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }

    // iota
    a[0] ^= kRoundConstants[round];
  }
}

KeccakSponge::KeccakSponge(std::size_t rate_bytes, u8 suffix) noexcept
    : rate_(rate_bytes), suffix_(suffix) {
  reset();
}

void KeccakSponge::reset() noexcept {
  std::memset(state_, 0, sizeof(state_));
  absorb_pos_ = 0;
  squeeze_pos_ = 0;
  squeezing_ = false;
}

void KeccakSponge::absorb_block(const u8* block) noexcept {
  for (std::size_t i = 0; i < rate_ / 8; ++i) {
    u64 lane;
    std::memcpy(&lane, block + 8 * i, 8);  // Keccak lanes are little-endian
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
}

void KeccakSponge::absorb(ByteSpan data) noexcept {
  auto* state_bytes = reinterpret_cast<u8*>(state_);
  for (u8 byte : data) {
    state_bytes[absorb_pos_++] ^= byte;
    if (absorb_pos_ == rate_) {
      keccak_f1600(state_);
      absorb_pos_ = 0;
    }
  }
}

void KeccakSponge::squeeze(MutByteSpan out) noexcept {
  auto* state_bytes = reinterpret_cast<u8*>(state_);
  if (!squeezing_) {
    // pad10*1 with the domain suffix merged into the first pad byte.
    state_bytes[absorb_pos_] ^= suffix_;
    state_bytes[rate_ - 1] ^= 0x80;
    keccak_f1600(state_);
    squeezing_ = true;
    squeeze_pos_ = 0;
  }
  for (auto& byte : out) {
    if (squeeze_pos_ == rate_) {
      keccak_f1600(state_);
      squeeze_pos_ = 0;
    }
    byte = state_bytes[squeeze_pos_++];
  }
}

Digest224 sha3_224(ByteSpan data) noexcept {
  KeccakSponge sponge(144, 0x06);
  sponge.absorb(data);
  Digest224 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  return d;
}

Digest384 sha3_384(ByteSpan data) noexcept {
  KeccakSponge sponge(104, 0x06);
  sponge.absorb(data);
  Digest384 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  return d;
}

Digest256 sha3_256(ByteSpan data) noexcept {
  KeccakSponge sponge(136, 0x06);
  sponge.absorb(data);
  Digest256 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  return d;
}

Digest512 sha3_512(ByteSpan data) noexcept {
  KeccakSponge sponge(72, 0x06);
  sponge.absorb(data);
  Digest512 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  return d;
}

Digest256 sha3_256_seed(const Seed256& seed) noexcept {
  // §3.2.2 fixed-input specialization. SHA3-256 rate is 136 bytes; a 32-byte
  // message always occupies lanes 0..3 of the single absorbed block, the
  // 0x06 domain/pad byte lands at byte 32 (lane 4, byte 0) and the final
  // 0x80 pad bit at byte 135 (lane 16, byte 7). The remaining capacity lanes
  // stay zero, so the whole absorb phase is four stores and two constants.
  u64 state[25];
  state[0] = seed.word(0);
  state[1] = seed.word(1);
  state[2] = seed.word(2);
  state[3] = seed.word(3);
  state[4] = 0x06ULL;
  for (int i = 5; i < 16; ++i) state[i] = 0;
  state[16] = 0x8000000000000000ULL;
  for (int i = 17; i < 25; ++i) state[i] = 0;

  keccak_f1600(state);

  Digest256 d;
  std::memcpy(d.bytes.data(), state, 32);
  return d;
}

}  // namespace rbc::hash
