#include "hash/keccak.hpp"

#include <bit>
#include <cstring>

namespace rbc::hash {

using detail::kKeccakRho;
using detail::kKeccakRoundConstants;

void keccak_f1600(u64 a[25]) noexcept {
  for (int round = 0; round < 24; ++round) {
    // theta
    u64 c[5], d[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    for (int x = 0; x < 5; ++x)
      d[x] = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
    for (int i = 0; i < 25; ++i) a[i] ^= d[i % 5];

    // rho + pi
    u64 b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        const int src = x + 5 * y;
        const int dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[dst] = std::rotl(a[src], kKeccakRho[src]);
      }
    }

    // chi
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }

    // iota
    a[0] ^= kKeccakRoundConstants[round];
  }
}

KeccakSponge::KeccakSponge(std::size_t rate_bytes, u8 suffix) noexcept
    : rate_(rate_bytes), suffix_(suffix) {
  reset();
}

void KeccakSponge::reset() noexcept {
  std::memset(state_, 0, sizeof(state_));
  absorb_pos_ = 0;
  squeeze_pos_ = 0;
  squeezing_ = false;
}

void KeccakSponge::absorb(ByteSpan data) noexcept {
  // Bulk XOR-absorb: whole 64-bit lanes where the chunk allows (Keccak lanes
  // are little-endian, so a raw word XOR is the correct injection), byte ops
  // only at the ragged ends.
  auto* state_bytes = reinterpret_cast<u8*>(state_);
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t take =
        std::min(data.size() - off, rate_ - absorb_pos_);
    const u8* src = data.data() + off;
    u8* dst = state_bytes + absorb_pos_;
    std::size_t i = 0;
    for (; i + 8 <= take; i += 8) {
      u64 lane, word;
      std::memcpy(&lane, dst + i, 8);
      std::memcpy(&word, src + i, 8);
      lane ^= word;
      std::memcpy(dst + i, &lane, 8);
    }
    for (; i < take; ++i) dst[i] ^= src[i];
    absorb_pos_ += take;
    off += take;
    if (absorb_pos_ == rate_) {
      keccak_f1600(state_);
      absorb_pos_ = 0;
    }
  }
}

void KeccakSponge::squeeze(MutByteSpan out) noexcept {
  auto* state_bytes = reinterpret_cast<u8*>(state_);
  if (!squeezing_) {
    // pad10*1 with the domain suffix merged into the first pad byte.
    state_bytes[absorb_pos_] ^= suffix_;
    state_bytes[rate_ - 1] ^= 0x80;
    keccak_f1600(state_);
    squeezing_ = true;
    squeeze_pos_ = 0;
  }
  for (auto& byte : out) {
    if (squeeze_pos_ == rate_) {
      keccak_f1600(state_);
      squeeze_pos_ = 0;
    }
    byte = state_bytes[squeeze_pos_++];
  }
}

Digest224 sha3_224(ByteSpan data) noexcept {
  KeccakSponge sponge(144, 0x06);
  sponge.absorb(data);
  Digest224 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  return d;
}

Digest384 sha3_384(ByteSpan data) noexcept {
  KeccakSponge sponge(104, 0x06);
  sponge.absorb(data);
  Digest384 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  return d;
}

Digest256 sha3_256(ByteSpan data) noexcept {
  KeccakSponge sponge(136, 0x06);
  sponge.absorb(data);
  Digest256 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  return d;
}

Digest512 sha3_512(ByteSpan data) noexcept {
  KeccakSponge sponge(72, 0x06);
  sponge.absorb(data);
  Digest512 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  return d;
}

Digest256 sha3_256_seed(const Seed256& seed) noexcept {
  // §3.2.2 fixed-input specialization. SHA3-256 rate is 136 bytes; a 32-byte
  // message always occupies lanes 0..3 of the single absorbed block, the
  // 0x06 domain/pad byte lands at byte 32 (lane 4, byte 0) and the final
  // 0x80 pad bit at byte 135 (lane 16, byte 7). The remaining capacity lanes
  // stay zero, so the whole absorb phase is four stores and two constants.
  u64 state[25];
  state[0] = seed.word(0);
  state[1] = seed.word(1);
  state[2] = seed.word(2);
  state[3] = seed.word(3);
  state[4] = 0x06ULL;
  for (int i = 5; i < 16; ++i) state[i] = 0;
  state[16] = 0x8000000000000000ULL;
  for (int i = 17; i < 25; ++i) state[i] = 0;

  keccak_f1600(state);

  Digest256 d;
  std::memcpy(d.bytes.data(), state, 32);
  return d;
}

}  // namespace rbc::hash
