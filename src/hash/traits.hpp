// Hash policy types binding the RBC search templates to a concrete seed hash.
//
// The search engine (Algorithm 1) is templated on a SeedHash policy so the
// compiler can inline the hash into the search loop — the property that makes
// RBC-SALTED "algorithm agnostic" at the protocol level while staying
// monomorphized (zero indirect calls) in the hot loop.
#pragma once

#include <concepts>
#include <cstring>
#include <string_view>

#include "bits/seed256.hpp"
#include "hash/keccak.hpp"
#include "hash/sha1.hpp"

namespace rbc::hash {

template <typename H>
concept SeedHash = requires(const H& h, const Seed256& s) {
  typename H::digest_type;
  { h(s) } -> std::same_as<typename H::digest_type>;
  { H::name() } -> std::convertible_to<std::string_view>;
};

/// SHA-1 over the 32-byte seed encoding (fixed-input fast path).
struct Sha1SeedHash {
  using digest_type = Digest160;
  static constexpr std::string_view name() { return "SHA-1"; }
  digest_type operator()(const Seed256& s) const noexcept {
    return sha1_seed(s);
  }
};

/// SHA3-256 over the 32-byte seed encoding (§3.2.2 fixed-padding fast path).
struct Sha3SeedHash {
  using digest_type = Digest256;
  static constexpr std::string_view name() { return "SHA-3"; }
  digest_type operator()(const Seed256& s) const noexcept {
    return sha3_256_seed(s);
  }
};

/// Ablation variants that route through the generic streaming sponge —
/// the "before" side of the §3.2.2 fixed-padding optimization.
struct Sha1SeedHashGeneric {
  using digest_type = Digest160;
  static constexpr std::string_view name() { return "SHA-1 (generic)"; }
  digest_type operator()(const Seed256& s) const noexcept {
    return sha1_seed_generic(s);
  }
};

struct Sha3SeedHashGeneric {
  using digest_type = Digest256;
  static constexpr std::string_view name() { return "SHA-3 (generic)"; }
  digest_type operator()(const Seed256& s) const noexcept {
    return sha3_256_seed_generic(s);
  }
};

static_assert(SeedHash<Sha1SeedHash>);
static_assert(SeedHash<Sha3SeedHash>);
static_assert(SeedHash<Sha1SeedHashGeneric>);
static_assert(SeedHash<Sha3SeedHashGeneric>);

/// Runtime selector used at protocol boundaries (wire messages, benches).
enum class HashAlgo : u8 { kSha1 = 1, kSha3_256 = 3 };

constexpr std::string_view to_string(HashAlgo a) {
  switch (a) {
    case HashAlgo::kSha1:
      return "SHA-1";
    case HashAlgo::kSha3_256:
      return "SHA-3";
  }
  return "?";
}

constexpr std::size_t digest_size(HashAlgo a) {
  return a == HashAlgo::kSha1 ? 20 : 32;
}

/// Hashes `seed` under `algo` into a stack digest and compares it against
/// wire bytes in place — no heap Bytes per check. This is the verify
/// primitive for per-candidate match confirmation (the fusion engine calls
/// it when retiring a matched stream).
inline bool seed_digest_equals(const Seed256& seed, ByteSpan digest,
                               HashAlgo algo) noexcept {
  if (digest.size() != digest_size(algo)) return false;
  if (algo == HashAlgo::kSha1) {
    const Digest160 d = sha1_seed(seed);
    return std::memcmp(d.bytes.data(), digest.data(), d.bytes.size()) == 0;
  }
  const Digest256 d = sha3_256_seed(seed);
  return std::memcmp(d.bytes.data(), digest.data(), d.bytes.size()) == 0;
}

}  // namespace rbc::hash
