// Fixed-size message digest value types.
#pragma once

#include <array>
#include <compare>
#include <cstring>
#include <string>

#include "common/hex.hpp"
#include "common/types.hpp"

namespace rbc::hash {

template <std::size_t N>
struct Digest {
  static constexpr std::size_t kBytes = N;

  std::array<u8, N> bytes{};

  friend bool operator==(const Digest&, const Digest&) = default;
  friend auto operator<=>(const Digest&, const Digest&) = default;

  std::string to_hex() const { return rbc::to_hex(bytes); }

  static Digest from_hex(std::string_view hex) {
    const Bytes raw = rbc::from_hex(hex);
    Digest d;
    if (raw.size() != N)
      throw std::invalid_argument("digest hex has wrong length");
    std::memcpy(d.bytes.data(), raw.data(), N);
    return d;
  }
};

using Digest160 = Digest<20>;  // SHA-1
using Digest256 = Digest<32>;  // SHA3-256
using Digest512 = Digest<64>;  // SHA3-512

}  // namespace rbc::hash
