// Client-side error correction — the alternative RBC replaces.
//
// §1/§2.1: "Error correction codes may be used, but low-powered IoT devices
// often do not have the computational power to carry out error correction,
// and if they were able to, it may leak information to an opponent."
// To make that comparison concrete rather than rhetorical, this module
// implements the canonical lightweight construction — a fuzzy commitment
// with an r-fold repetition code:
//
//   enroll:  pick a random k-bit secret, expand each bit r times into a
//            codeword, publish helper = codeword XOR reading_0.
//   recover: reading_t XOR helper ~ codeword + noise; majority-decode each
//            r-bit group to recover the secret.
//
// Properties the comparison bench quantifies:
//   * the client pays O(256) work per authentication (vs one hash in RBC),
//   * the helper data is public and r-fold redundancy shrinks the effective
//     secret from 256 to 256/r bits (the "leak information" cost),
//   * correction fails once per-bit noise defeats the majority, while RBC's
//     server search budget d is a tunable knob.
#pragma once

#include "bits/seed256.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace rbc::puf {

class RepetitionFuzzyExtractor {
 public:
  /// r must divide 256; the secret has 256/r bits.
  explicit RepetitionFuzzyExtractor(int repetition) : r_(repetition) {
    RBC_CHECK_MSG(r_ >= 1 && 256 % r_ == 0,
                  "repetition factor must divide 256");
  }

  int repetition() const noexcept { return r_; }
  int secret_bits() const noexcept { return 256 / r_; }

  struct Enrollment {
    Seed256 helper;  // public helper data
    Seed256 secret;  // low secret_bits() bits hold the secret
  };

  /// Enrollment with the noise-free reference reading.
  Enrollment enroll(const Seed256& reference, Xoshiro256& rng) const {
    Enrollment e;
    e.secret = Seed256{};
    for (int i = 0; i < secret_bits(); ++i) {
      if (rng.next_bool(0.5)) e.secret.set_bit(i);
    }
    e.helper = encode(e.secret) ^ reference;
    return e;
  }

  /// Client-side recovery from a noisy reading; also reports how many
  /// bit-groups were corrected (diagnostic).
  struct Recovery {
    Seed256 secret;
    int corrected_groups = 0;
  };

  Recovery recover(const Seed256& noisy_reading, const Seed256& helper) const {
    const Seed256 received = noisy_reading ^ helper;  // codeword + noise
    Recovery out;
    for (int i = 0; i < secret_bits(); ++i) {
      int ones = 0;
      for (int j = 0; j < r_; ++j) ones += received.bit(i * r_ + j);
      const bool bit = 2 * ones > r_;
      if (bit) out.secret.set_bit(i);
      // A group needed correction if it was not unanimous.
      if (ones != 0 && ones != r_) ++out.corrected_groups;
    }
    return out;
  }

  /// Boolean-op cost of one client-side recovery (for the comparison bench):
  /// 256 XORs for the helper plus r-1 additions + threshold per group.
  u64 client_ops() const noexcept {
    return 256 + static_cast<u64>(secret_bits()) * static_cast<u64>(r_);
  }

 private:
  Seed256 encode(const Seed256& secret) const {
    Seed256 codeword;
    for (int i = 0; i < secret_bits(); ++i) {
      if (!secret.bit(i)) continue;
      for (int j = 0; j < r_; ++j) codeword.set_bit(i * r_ + j);
    }
    return codeword;
  }

  int r_;
};

}  // namespace rbc::puf
