#include "puf/puf.hpp"

#include <algorithm>
#include <cmath>

namespace rbc::puf {

SramPufModel::SramPufModel(const Params& params, u64 device_serial)
    : params_(params) {
  RBC_CHECK_MSG(params.num_addresses > 0, "PUF needs at least one address");
  RBC_CHECK(params.erratic_cell_fraction >= 0.0 &&
            params.erratic_cell_fraction <= 1.0);
  RBC_CHECK(params.stable_flip_probability >= 0.0 &&
            params.stable_flip_probability <= 0.5);
  RBC_CHECK(params.erratic_flip_probability >= 0.0 &&
            params.erratic_flip_probability <= 0.5);

  // The device's physical identity derives deterministically from its serial
  // number, emulating manufacturing variation.
  Xoshiro256 fab(device_serial ^ 0x9d39247e33776d41ULL);
  enrolled_.reserve(params.num_addresses);
  flip_prob_.reserve(params.num_addresses);
  for (u32 a = 0; a < params.num_addresses; ++a) {
    enrolled_.push_back(Seed256::random(fab));
    std::vector<float> probs(Seed256::kBits);
    for (auto& p : probs) {
      const bool erratic = fab.next_bool(params.erratic_cell_fraction);
      // Jitter each cell around its class mean so no two cells are equal.
      const double base = erratic ? params.erratic_flip_probability
                                  : params.stable_flip_probability;
      const double jitter = 0.5 + fab.next_double();  // [0.5, 1.5)
      p = static_cast<float>(std::min(0.5, base * jitter));
    }
    flip_prob_.push_back(std::move(probs));
  }
}

const Seed256& SramPufModel::enrolled_word(u32 address) const {
  check_address(address);
  return enrolled_[address];
}

Seed256 SramPufModel::read(u32 address, Xoshiro256& rng) const {
  check_address(address);
  Seed256 word = enrolled_[address];
  const auto& probs = flip_prob_[address];
  for (int bit = 0; bit < Seed256::kBits; ++bit) {
    if (rng.next_bool(probs[static_cast<unsigned>(bit)])) word.flip_bit(bit);
  }
  return word;
}

double SramPufModel::cell_flip_probability(u32 address, int bit) const {
  check_address(address);
  RBC_CHECK(bit >= 0 && bit < Seed256::kBits);
  return flip_prob_[address][static_cast<unsigned>(bit)];
}

EnrollmentImage EnrollmentImage::capture(const SramPufModel& device) {
  EnrollmentImage image;
  image.words_.reserve(device.num_addresses());
  for (u32 a = 0; a < device.num_addresses(); ++a)
    image.words_.push_back(device.enrolled_word(a));
  return image;
}

const Seed256& EnrollmentImage::word(u32 address) const {
  RBC_CHECK_MSG(address < words_.size(), "enrollment address out of range");
  return words_[address];
}

TapkiMask TapkiMask::calibrate(const SramPufModel& device, u32 address,
                               int num_reads, double max_flip_rate,
                               Xoshiro256& rng) {
  return calibrate_cell_stats(device, address, num_reads, max_flip_rate, rng)
      .mask;
}

TapkiMask TapkiMask::all_stable() { return TapkiMask{}; }

ReliabilityProfile ReliabilityProfile::from_flip_counts(
    const std::array<int, kBits>& flips, int num_reads,
    const Seed256& stable_bits) {
  RBC_CHECK_MSG(num_reads > 0, "reliability profile needs reads");
  ReliabilityProfile profile;
  for (int bit = 0; bit < kBits; ++bit) {
    if (!stable_bits.bit(bit)) {
      profile.weights_[static_cast<unsigned>(bit)] = kPinnedWeight;
      continue;
    }
    // Laplace-smoothed flip-rate estimate: never exactly 0 or 1, so the
    // log-odds stay finite even for cells that never flipped.
    const double p = (flips[static_cast<unsigned>(bit)] + 0.5) /
                     (static_cast<double>(num_reads) + 1.0);
    const double log_odds = 16.0 * std::log((1.0 - p) / p);
    const double clamped = std::clamp(std::round(log_odds), 0.0, 255.0);
    profile.weights_[static_cast<unsigned>(bit)] = static_cast<u8>(clamped);
  }
  return profile;
}

ReliabilityProfile ReliabilityProfile::from_bytes(ByteSpan bytes) {
  RBC_CHECK_MSG(bytes.size() == static_cast<std::size_t>(kBits),
                "reliability profile needs one byte per bit");
  ReliabilityProfile profile;
  std::copy(bytes.begin(), bytes.end(), profile.weights_.begin());
  return profile;
}

Calibration calibrate_cell_stats(const SramPufModel& device, u32 address,
                                 int num_reads, double max_flip_rate,
                                 Xoshiro256& rng) {
  RBC_CHECK_MSG(num_reads > 0, "TAPKI calibration needs reads");
  const Seed256& enrolled = device.enrolled_word(address);
  std::array<int, Seed256::kBits> flips{};
  for (int r = 0; r < num_reads; ++r) {
    const Seed256 diff = device.read(address, rng) ^ enrolled;
    for (int bit = 0; bit < Seed256::kBits; ++bit)
      flips[static_cast<unsigned>(bit)] += diff.bit(bit);
  }
  Seed256 stable = Seed256::ones();
  for (int bit = 0; bit < Seed256::kBits; ++bit) {
    const double rate =
        static_cast<double>(flips[static_cast<unsigned>(bit)]) / num_reads;
    if (rate > max_flip_rate) stable.clear_bit(bit);
  }
  Calibration cal;
  cal.mask = TapkiMask::from_stable_bits(stable);
  cal.profile = ReliabilityProfile::from_flip_counts(flips, num_reads, stable);
  return cal;
}

Seed256 majority_read(const SramPufModel& device, u32 address, int num_reads,
                      Xoshiro256& rng) {
  RBC_CHECK_MSG(num_reads >= 1 && num_reads % 2 == 1,
                "majority voting needs an odd number of reads");
  std::array<int, Seed256::kBits> ones{};
  for (int r = 0; r < num_reads; ++r) {
    const Seed256 word = device.read(address, rng);
    for (int bit = 0; bit < Seed256::kBits; ++bit)
      ones[static_cast<unsigned>(bit)] += word.bit(bit);
  }
  Seed256 out;
  for (int bit = 0; bit < Seed256::kBits; ++bit) {
    if (2 * ones[static_cast<unsigned>(bit)] > num_reads) out.set_bit(bit);
  }
  return out;
}

Seed256 adjust_to_distance(const Seed256& reading, const Seed256& reference,
                           int target_distance, const Seed256& allowed_bits,
                           Xoshiro256& rng) {
  RBC_CHECK(target_distance >= 0 && target_distance <= Seed256::kBits);
  Seed256 out = reading;
  int d = hamming_distance(out, reference);
  // Too noisy: revert random already-flipped bits until at the target.
  while (d > target_distance) {
    Seed256 diff = out ^ reference;
    const int nth = static_cast<int>(rng.next_below(static_cast<u64>(d)));
    int idx = 0;
    for (int bit = 0; bit < Seed256::kBits; ++bit) {
      if (!diff.bit(bit)) continue;
      if (idx++ == nth) {
        out.flip_bit(bit);
        break;
      }
    }
    --d;
  }
  // Too clean: inject flips on allowed (stable) bits that still agree.
  while (d < target_distance) {
    const int bit = static_cast<int>(rng.next_below(Seed256::kBits));
    if (!allowed_bits.bit(bit)) continue;
    if ((out ^ reference).bit(bit)) continue;  // already flipped
    out.flip_bit(bit);
    ++d;
  }
  return out;
}

double estimate_bit_error_rate(const SramPufModel& device, u32 address,
                               int num_reads, Xoshiro256& rng) {
  RBC_CHECK(num_reads > 0);
  const Seed256& enrolled = device.enrolled_word(address);
  u64 total_flips = 0;
  for (int r = 0; r < num_reads; ++r)
    total_flips += static_cast<u64>(
        hamming_distance(device.read(address, rng), enrolled));
  return static_cast<double>(total_flips) / num_reads;
}

}  // namespace rbc::puf
