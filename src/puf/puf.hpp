// Physical Unclonable Function (PUF) simulator.
//
// The paper's clients read a 256-bit stream from an SRAM-style PUF attached
// over USB; manufacturing variation makes each device unique, and read noise
// flips a few bits relative to the enrolled image (§1, §2.1). We have no
// physical PUF, so this module provides the closest synthetic equivalent:
//
//   * SramPufModel — an addressable array of 256-bit words. Each cell has a
//     stable "enrolled" value plus a per-cell flip probability drawn from a
//     heavy-tailed mixture (most cells are very stable, a minority are
//     erratic), which matches how SRAM power-up PUFs behave and is what
//     makes TAPKI masking (§2.1) meaningful.
//   * EnrollmentImage — the server-side copy captured in the secure facility.
//   * PufReader — the client-side read path: returns the enrolled word with
//     stochastic bit flips, plus the paper's §4.1 noise-injection policy
//     ("a typical bit error rate from the PUF is 5 bits, and if it is lower,
//     we perform noise injection ... to ensure that we have flipped 5 bits").
//   * TapkiMask — Ternary Addressable PKI masking: cells whose measured error
//     rate exceeds a threshold are marked unstable and excluded from the
//     challenge, keeping the server search tractable (§2.1).
//
// All randomness flows through the caller-provided Xoshiro256 so trials are
// reproducible.
#pragma once

#include <array>
#include <vector>

#include "bits/seed256.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace rbc::puf {

/// Per-device manufacturing profile: the enrolled value and flip probability
/// of every cell at every address.
class SramPufModel {
 public:
  struct Params {
    u32 num_addresses = 64;
    /// Fraction of cells that are erratic (high flip probability).
    double erratic_cell_fraction = 0.05;
    /// Flip probability of a stable cell per read.
    double stable_flip_probability = 0.004;
    /// Flip probability of an erratic cell per read.
    double erratic_flip_probability = 0.25;
  };

  /// Manufactures a device: enrolled values and per-cell stability are fixed
  /// at construction (the "secure facility" step of the threat model).
  SramPufModel(const Params& params, u64 device_serial);

  u32 num_addresses() const noexcept { return params_.num_addresses; }

  /// The noise-free enrolled word — only the enrollment step may use this.
  const Seed256& enrolled_word(u32 address) const;

  /// One noisy read: every cell flips independently with its own probability.
  Seed256 read(u32 address, Xoshiro256& rng) const;

  /// True flip probability of one cell (test/diagnostic access).
  double cell_flip_probability(u32 address, int bit) const;

 private:
  Params params_;
  std::vector<Seed256> enrolled_;               // per address
  std::vector<std::vector<float>> flip_prob_;   // per address, per bit

  void check_address(u32 address) const {
    RBC_CHECK_MSG(address < params_.num_addresses, "PUF address out of range");
  }
};

/// Server-side enrollment image of one client device, captured at
/// manufacturing time (stored encrypted in the CA's database per §2.1; the
/// at-rest encryption lives in rbc::EnrollmentDatabase).
class EnrollmentImage {
 public:
  EnrollmentImage() = default;
  static EnrollmentImage capture(const SramPufModel& device);

  /// Reconstructs an image from stored words (encrypted-database load path).
  static EnrollmentImage from_words(std::vector<Seed256> words) {
    EnrollmentImage image;
    image.words_ = std::move(words);
    return image;
  }

  const Seed256& word(u32 address) const;
  u32 num_addresses() const noexcept {
    return static_cast<u32>(words_.size());
  }

 private:
  std::vector<Seed256> words_;
};

/// TAPKI ternary mask: stable cells participate in the challenge, unstable
/// cells are ignored (their bits are pinned to the enrolled value on both
/// sides). Built from repeated reads during enrollment.
class TapkiMask {
 public:
  TapkiMask() = default;

  /// Reads the device `num_reads` times at `address` and marks cells whose
  /// observed flip rate exceeds `max_flip_rate` as unstable.
  static TapkiMask calibrate(const SramPufModel& device, u32 address,
                             int num_reads, double max_flip_rate,
                             Xoshiro256& rng);

  /// Mask with every cell stable (TAPKI disabled).
  static TapkiMask all_stable();

  /// Reconstructs a mask from its stable-bit vector (database load path and
  /// the client side of the Challenge message).
  static TapkiMask from_stable_bits(const Seed256& stable) {
    TapkiMask mask;
    mask.stable_ = stable;
    return mask;
  }

  /// Pin the unstable bits of `reading` to the corresponding bits of
  /// `enrolled` — what the client firmware does with the helper mask.
  Seed256 apply(const Seed256& reading, const Seed256& enrolled) const noexcept {
    return (reading & stable_) | (enrolled & ~stable_);
  }

  int num_unstable() const noexcept { return 256 - stable_.popcount(); }
  const Seed256& stable_bits() const noexcept { return stable_; }

 private:
  Seed256 stable_ = Seed256::ones();
};

/// Quantized per-cell flip-rate estimate, measured from the SAME calibration
/// reads that build the TAPKI mask (no extra PUF reads). Each bit stores a
/// u8 log-odds weight: weight = clamp(round(16 * ln((1-p)/(p))), 0, 255)
/// with the Laplace-smoothed estimate p = (flips + 0.5) / (reads + 1), so a
/// LOW weight means the cell is LIKELY to flip. TAPKI-masked (pinned) cells
/// get kPinnedWeight — they cannot differ between client and server, so they
/// sort last in any likelihood-ordered enumeration. The profile is what the
/// reliability-guided search order (combinatorics/likelihood.hpp) consumes.
class ReliabilityProfile {
 public:
  static constexpr u8 kPinnedWeight = 255;
  static constexpr int kBits = Seed256::kBits;

  ReliabilityProfile() = default;

  /// Builds the profile from per-bit flip counts over `num_reads` reads.
  /// Bits NOT set in `stable_bits` (TAPKI-masked) are pinned to
  /// kPinnedWeight regardless of their measured rate.
  static ReliabilityProfile from_flip_counts(
      const std::array<int, kBits>& flips, int num_reads,
      const Seed256& stable_bits);

  /// Database (de)serialization: one byte per bit, bit order.
  static ReliabilityProfile from_bytes(ByteSpan bytes);

  u8 weight(int bit) const noexcept {
    return weights_[static_cast<unsigned>(bit)];
  }
  const std::array<u8, kBits>& weights() const noexcept { return weights_; }
  std::array<u8, kBits>& weights() noexcept { return weights_; }

  friend bool operator==(const ReliabilityProfile&,
                         const ReliabilityProfile&) = default;

 private:
  std::array<u8, kBits> weights_{};
};

/// TAPKI mask and reliability profile measured together from one shared
/// pass of calibration reads.
struct Calibration {
  TapkiMask mask;
  ReliabilityProfile profile;
};

/// Single calibration pass: reads the device `num_reads` times at `address`
/// and derives BOTH the TAPKI mask (rate > max_flip_rate => unstable) and
/// the reliability profile from the same per-bit flip counts. Consumes the
/// exact RNG stream TapkiMask::calibrate consumes (num_reads full reads), so
/// profile-off callers see no stream change.
Calibration calibrate_cell_stats(const SramPufModel& device, u32 address,
                                 int num_reads, double max_flip_rate,
                                 Xoshiro256& rng);

/// Majority vote over `num_reads` reads at `address` — the client-side
/// technique for estimating its own stable value without access to the
/// enrolled image: each bit takes the value seen in most reads. With odd
/// `num_reads` and stable cells this converges to the enrolled word except
/// on erratic cells (which TAPKI masks anyway).
Seed256 majority_read(const SramPufModel& device, u32 address, int num_reads,
                      Xoshiro256& rng);

/// Forces `reading` to sit at exactly `target_distance` from `reference` by
/// injecting (or removing) random flips — the §4.1 noise-injection policy.
/// Injected flips land only on bits allowed by `mask` (stable cells).
Seed256 adjust_to_distance(const Seed256& reading, const Seed256& reference,
                           int target_distance, const Seed256& allowed_bits,
                           Xoshiro256& rng);

/// Estimates the bit error rate of `device` at `address` over `num_reads`
/// reads: mean flipped bits per read, relative to the enrolled word.
double estimate_bit_error_rate(const SramPufModel& device, u32 address,
                               int num_reads, Xoshiro256& rng);

}  // namespace rbc::puf
