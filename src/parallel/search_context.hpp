// Per-session cancellation, deadline and progress for the RBC search.
//
// The paper's threshold T is a property of the SESSION, not of one search
// call: the CA must answer within T of admitting the client, which includes
// queueing, communication, and the search itself. SearchContext is the one
// object that carries that budget through every layer — the host shell loop,
// the emulated GPU kernel, the distributed ranks — replacing the former
// ad-hoc triplication of EarlyExitToken + WallTimer + timed_out flags.
//
// Two stop causes are kept distinct, because policy treats them differently:
//   * match found  — stops the search only under the early-exit policy
//                    (Algorithm 1 line 15; exhaustive timing runs ignore it);
//   * cancellation — deadline expiry or an external cancel(); ALWAYS honored,
//                    regardless of the early-exit policy. A timed-out
//                    exhaustive search must stop just like an average-case
//                    one (§3: "RBC uses a time threshold for which it must
//                    authenticate a client").
//
// Workers poll cancel_requested()/match_found() between candidates (at the
// §4.4 check interval) and call check_deadline() at a coarse cadence so the
// clock read stays off the per-seed fast path. The deadline is an absolute
// steady-clock time point, fixed when the context is created (at session
// admission), so time spent queued counts against the budget.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>

#include "common/check.hpp"
#include "common/types.hpp"
#include "parallel/early_exit.hpp"

namespace rbc::obs {
class SessionTrace;
}

namespace rbc::par {

class SearchContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: runs until finished or cancelled externally.
  SearchContext() : start_(Clock::now()), deadline_(Clock::time_point::max()) {}

  /// Budget in seconds of wall clock, counted from NOW (admission time).
  /// Budgets too large to represent on the steady clock (e.g. the 1e30 the
  /// callers use for "effectively none") degrade to no deadline at all
  /// instead of overflowing into the past.
  static SearchContext with_budget(double seconds) {
    RBC_CHECK(seconds >= 0.0);
    SearchContext ctx;
    const std::chrono::duration<double> budget(seconds);
    if (budget < Clock::time_point::max() - ctx.start_) {
      ctx.deadline_ =
          ctx.start_ + std::chrono::duration_cast<Clock::duration>(budget);
    }
    return ctx;
  }

  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;
  SearchContext(SearchContext&& other) noexcept
      : start_(other.start_), deadline_(other.deadline_) {
    if (other.found_.triggered()) found_.trigger();
    cancelled_.store(other.cancelled_.load(std::memory_order_acquire),
                     std::memory_order_release);
    timed_out_.store(other.timed_out_.load(std::memory_order_acquire),
                     std::memory_order_release);
    seeds_visited_.store(other.seeds_visited_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    trace_ = other.trace_;
  }

  // --- cancellation -------------------------------------------------------

  /// External cancellation (server shutdown, client disconnect). Idempotent
  /// and safe from any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// True once the session is cancelled — by cancel() or a deadline expiry
  /// observed by check_deadline(). Workers MUST honor this regardless of the
  /// early-exit policy.
  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  // --- deadline -----------------------------------------------------------

  /// Reads the clock; if the deadline has passed, latches timed_out and
  /// requests cancellation. Returns cancel_requested(). Call at a coarse
  /// cadence (the former `(hashed & 0xffff) == 0` pattern).
  bool check_deadline() noexcept {
    if (cancel_requested()) return true;
    if (Clock::now() >= deadline_) {
      timed_out_.store(true, std::memory_order_release);
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// True when cancellation was caused by the deadline (vs. external).
  bool timed_out() const noexcept {
    return timed_out_.load(std::memory_order_acquire);
  }

  bool has_deadline() const noexcept {
    return deadline_ != Clock::time_point::max();
  }

  /// Absolute deadline (Clock::time_point::max() when none). The server's
  /// earliest-deadline-first dispatch orders queued sessions by this key.
  Clock::time_point deadline() const noexcept { return deadline_; }

  /// Seconds until the deadline (infinity when none; clamped at 0).
  double remaining_s() const noexcept {
    if (!has_deadline()) return std::numeric_limits<double>::infinity();
    const auto left = deadline_ - Clock::now();
    return left.count() <= 0 ? 0.0
                             : std::chrono::duration<double>(left).count();
  }

  /// Seconds since the context was created (session admission).
  double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // --- match signalling (Algorithm 1 lines 7/15) --------------------------

  /// Raised by the worker that finds the client's seed.
  void signal_match() noexcept { found_.trigger(); }
  bool match_found() const noexcept { return found_.triggered(); }

  /// Combined stop predicate for a worker's throttled poll: cancellation is
  /// unconditional, a match stops only the early-exit policy.
  bool should_stop(bool early_exit) const noexcept {
    return cancel_requested() || (early_exit && match_found());
  }

  // --- progress -----------------------------------------------------------

  /// Aggregated candidates visited, updated by workers in batches (relaxed:
  /// the count is a statistic, not a synchronization point).
  void add_progress(u64 n) noexcept {
    seeds_visited_.fetch_add(n, std::memory_order_relaxed);
  }
  u64 progress() const noexcept {
    return seeds_visited_.load(std::memory_order_relaxed);
  }

  // --- observability (src/obs) --------------------------------------------

  /// Optional per-session trace handle, armed by the serving shard when
  /// ServerConfig::trace_enabled is set and null otherwise. SearchContext is
  /// the one object already threaded through every search layer, so it
  /// carries the trace the same way it carries the deadline; hooks test the
  /// pointer once per COARSE event (shell boundary, retransmit, verdict) and
  /// stay entirely off the per-candidate path. The pointee must outlive the
  /// search (the shard owns both the Session and its trace handle).
  void set_trace(obs::SessionTrace* trace) noexcept { trace_ = trace; }
  obs::SessionTrace* trace() const noexcept { return trace_; }

 private:
  Clock::time_point start_;
  Clock::time_point deadline_;
  EarlyExitToken found_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<u64> seeds_visited_{0};
  obs::SessionTrace* trace_ = nullptr;
};

}  // namespace rbc::par
