// A small fixed-size thread pool used by the CPU search engine and the
// device simulators' functional execution.
//
// The pool exists (rather than spawning threads per search) because an RBC
// server authenticates a stream of clients; per-request thread creation
// would dominate the short average-case searches. parallel_workers() is the
// core primitive: run the same callable on every worker with its worker id,
// and join — exactly the SPMD shape of Algorithm 1.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc::par {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Runs body(worker_id) once on each of the pool's threads and blocks
  /// until all complete. Exceptions thrown by workers are captured and the
  /// first one is rethrown on the caller's thread.
  void parallel_workers(const std::function<void(int)>& body);

  /// Hardware concurrency, floored at 1.
  static int default_threads() noexcept {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }

 private:
  void worker_loop(int id);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* body_ = nullptr;
  u64 generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace rbc::par
