#include "parallel/worker_group.hpp"

namespace rbc::par {

WorkerGroup::WorkerGroup(int num_threads) {
  RBC_CHECK_MSG(num_threads > 0, "worker group needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerGroup::~WorkerGroup() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

WorkerGroup& WorkerGroup::shared() {
  static WorkerGroup group(default_threads());
  return group;
}

bool WorkerGroup::pop_task(std::unique_lock<std::mutex>&, Task& out) {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    out = std::move(queue.front());
    queue.pop_front();
    return true;
  }
  return false;
}

void WorkerGroup::run_round_units(std::unique_lock<std::mutex>& lock,
                                  Round& round) {
  while (round.next < round.width) {
    const int index = round.next++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*round.body)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !round.first_error) round.first_error = error;
    if (++round.completed == round.width) round.done_cv.notify_all();
  }
}

void WorkerGroup::parallel_workers(int width,
                                   const std::function<void(int)>& body,
                                   Priority priority) {
  RBC_CHECK_MSG(width >= 1, "SPMD round needs at least one unit");
  auto round = std::make_shared<Round>();
  round->body = &body;
  round->width = width;

  std::unique_lock lock(mutex_);
  // One ticket per worker that could usefully help; each ticket drains the
  // round's claim counter, so more tickets than workers buy nothing.
  const int tickets = std::min(width, size());
  auto& queue = queues_[static_cast<int>(priority)];
  for (int i = 0; i < tickets; ++i) queue.push_back(Task{round, {}});
  cv_work_.notify_all();

  // Caller-helps: claim and run this round's units alongside the workers.
  run_round_units(lock, *round);
  round->done_cv.wait(lock, [&] { return round->completed == round->width; });
  const std::exception_ptr error = round->first_error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

std::future<void> WorkerGroup::submit(std::function<void()> fn,
                                      Priority priority) {
  RBC_CHECK_MSG(fn != nullptr, "cannot submit an empty task");
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  {
    std::lock_guard lock(mutex_);
    RBC_CHECK_MSG(!shutdown_, "submit on a shut-down worker group");
    queues_[static_cast<int>(priority)].push_back(
        Task{nullptr, [task] { (*task)(); }});
  }
  cv_work_.notify_one();
  return future;
}

void WorkerGroup::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    Task task;
    cv_work_.wait(lock, [&] {
      if (shutdown_) return true;
      for (const auto& queue : queues_)
        if (!queue.empty()) return true;
      return false;
    });
    if (shutdown_) return;
    if (!pop_task(lock, task)) continue;
    if (task.round) {
      run_round_units(lock, *task.round);
    } else {
      lock.unlock();
      task.fn();  // packaged_task captures exceptions into its future
      lock.lock();
    }
  }
}

}  // namespace rbc::par
