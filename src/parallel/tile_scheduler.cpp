#include "parallel/tile_scheduler.hpp"

#include <algorithm>
#include <limits>

namespace rbc::par {

TileScheduler::TileScheduler(std::vector<u64> tiles_per_shell, int first_shell,
                             int num_slots, u32 claim_ahead)
    : tiles_per_shell_(std::move(tiles_per_shell)),
      first_shell_(first_shell),
      claim_ahead_(claim_ahead == 0 ? 1 : claim_ahead),
      slots_(static_cast<std::size_t>(num_slots)) {
  RBC_CHECK(num_slots >= 1);
  shell_prefix_.reserve(tiles_per_shell_.size());
  for (const u64 tiles : tiles_per_shell_) {
    shell_prefix_.push_back(total_);
    total_ += tiles;
  }
  RBC_CHECK_MSG(total_ <= std::numeric_limits<u32>::max(),
                "tile ids must fit 32 bits (grow the tile stride)");
  completed_.reset(new std::atomic<u64>[tiles_per_shell_.size()]);
  for (std::size_t i = 0; i < tiles_per_shell_.size(); ++i)
    completed_[i].store(0, std::memory_order_relaxed);
}

TileScheduler::Tile TileScheduler::tile_at(u32 global) const {
  // d is small; scan shells linearly.
  std::size_t i = shell_prefix_.size() - 1;
  while (shell_prefix_[i] > global) --i;
  return Tile{first_shell_ + static_cast<int>(i), global - shell_prefix_[i]};
}

bool TileScheduler::pop_own(int slot, u32& out) {
  auto& span = slots_[static_cast<std::size_t>(slot)].span;
  u64 s = span.load(std::memory_order_acquire);
  while (span_cur(s) < span_end(s)) {
    const u64 desired = pack(span_cur(s) + 1, span_end(s));
    if (span.compare_exchange_weak(s, desired, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      out = span_cur(s);
      return true;
    }
    // s was reloaded by the failed CAS (a thief shrank the back).
  }
  return false;
}

bool TileScheduler::steal(int slot, u32& out) {
  const int n = num_slots();
  while (true) {
    bool any_left = false;
    for (int i = 1; i <= n; ++i) {
      auto& span = slots_[static_cast<std::size_t>((slot + i) % n)].span;
      u64 s = span.load(std::memory_order_acquire);
      if (span_cur(s) >= span_end(s)) continue;
      any_left = true;
      const u64 desired = pack(span_cur(s), span_end(s) - 1);
      if (span.compare_exchange_strong(s, desired, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        out = span_end(s) - 1;
        return true;
      }
    }
    if (!any_left) return false;  // every span drained; ball is done
  }
}

bool TileScheduler::acquire(int slot, Tile& out) {
  RBC_CHECK(slot >= 0 && slot < num_slots());
  if (halted()) return false;
  u32 g;
  if (pop_own(slot, g)) {
    out = tile_at(g);
    return true;
  }
  const u64 start = cursor_.fetch_add(claim_ahead_, std::memory_order_relaxed);
  if (start < total_) {
    const u64 end = std::min<u64>(start + claim_ahead_, total_);
    if (end > start + 1) {
      // Publish the unclaimed tail of this batch for thieves. The slot's
      // span is empty here (pop_own failed and only the owner refills), so
      // a plain store cannot clobber live tiles.
      slots_[static_cast<std::size_t>(slot)].span.store(
          pack(static_cast<u32>(start) + 1, static_cast<u32>(end)),
          std::memory_order_release);
    }
    out = tile_at(static_cast<u32>(start));
    return true;
  }
  if (steal(slot, g)) {
    out = tile_at(g);
    return true;
  }
  return false;
}

void TileScheduler::complete(const Tile& tile) {
  const std::size_t i = static_cast<std::size_t>(tile.shell - first_shell_);
  RBC_CHECK(i < tiles_per_shell_.size());
  completed_[i].fetch_add(1, std::memory_order_acq_rel);
}

int TileScheduler::completed_through() const {
  int watermark = first_shell_ - 1;
  for (std::size_t i = 0; i < tiles_per_shell_.size(); ++i) {
    if (completed_[i].load(std::memory_order_acquire) != tiles_per_shell_[i])
      break;
    watermark = first_shell_ + static_cast<int>(i);
  }
  return watermark;
}

}  // namespace rbc::par
