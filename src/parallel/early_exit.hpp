// Early-exit signalling for the average-case RBC search.
//
// Algorithm 1 lines 7/15: the thread that finds the client's seed notifies
// all others to stop. The paper implements the flag differently per platform
// (unified memory on the GPU, associative memory on the APU, main memory on
// the CPU); all three reduce to a shared flag that workers poll between seed
// evaluations. §4.4 studies the polling interval (1..64 seeds) and finds no
// measurable impact; CheckThrottle reproduces that knob.
#pragma once

#include <atomic>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc::par {

class EarlyExitToken {
 public:
  EarlyExitToken() noexcept : triggered_(false) {}

  /// Signals all searchers to stop. Safe to call from multiple threads; the
  /// paper's GPU uses an atomic update for the same reason.
  void trigger() noexcept { triggered_.store(true, std::memory_order_release); }

  bool triggered() const noexcept {
    return triggered_.load(std::memory_order_acquire);
  }

  void reset() noexcept { triggered_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> triggered_;
};

/// Rations how often a hot loop consults its stop condition: due() returns
/// true on every `interval`-th call — the §4.4 "seeds iterated between match
/// checks" parameter. The caller pairs it with whatever predicate applies
/// (SearchContext::should_stop for the search, a raw token elsewhere), so
/// one throttle serves both the match flag and cancellation.
class CheckThrottle {
 public:
  explicit CheckThrottle(u32 interval = 1) noexcept
      : interval_(interval == 0 ? 1 : interval), countdown_(1) {}

  /// True when the stop condition should be consulted on this iteration.
  bool due() noexcept {
    if (--countdown_ != 0) return false;
    countdown_ = interval_;
    return true;
  }

 private:
  u32 interval_;
  u32 countdown_;
};

/// Contiguous range assigned to worker r of p over `total` items:
/// [begin, end). The remainder spreads over the first (total % p) workers so
/// loads differ by at most one item — the "equal workloads" property §3.2.1
/// requires of the Chase snapshot spacing.
struct WorkRange {
  u64 begin = 0;
  u64 end = 0;
  u64 size() const noexcept { return end - begin; }
};

inline WorkRange partition_range(u64 total, int num_workers, int worker) {
  RBC_CHECK(num_workers > 0 && worker >= 0 && worker < num_workers);
  const u64 p = static_cast<u64>(num_workers);
  const u64 r = static_cast<u64>(worker);
  const u64 base = total / p;
  const u64 extra = total % p;
  const u64 begin = r * base + std::min(r, extra);
  const u64 len = base + (r < extra ? 1 : 0);
  return WorkRange{begin, begin + len};
}

}  // namespace rbc::par
