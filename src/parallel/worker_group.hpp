// The process-wide compute substrate for concurrent RBC sessions.
//
// The seed implementation gave every engine a private ThreadPool, so a CA
// serving N clients at once ran N x hardware_concurrency threads — the exact
// oversubscription a throughput-oriented server must avoid. WorkerGroup is
// one fixed set of worker threads that MULTIPLEXES many sessions:
//
//   * parallel_workers(width, body) keeps Algorithm 1's SPMD shape — body(r)
//     runs exactly once for each r in [0, width) — but is safe to call from
//     MANY threads at once; the rounds' units interleave on the shared
//     workers instead of each owning a pool.
//   * submit(fn, priority) queues a one-shot task (the server layer uses it
//     for bookkeeping work that must not sit behind long search rounds).
//
// Scheduling is caller-helps: the thread that opens a round claims and runs
// work units itself whenever no pool worker gets there first. This bounds
// latency under load (a session always progresses on its own driver thread,
// even with every worker busy) and makes nested rounds deadlock-free by
// construction — a worker blocked on an inner round executes that round's
// units directly.
//
// Units are claimed from a shared index counter, so a round's slices may run
// on fewer OS threads than `width`; slices are disjoint (the §3.2.1 equal-
// workload partition), so sequential execution of two slices on one thread
// is merely slower, never wrong.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc::par {

class WorkerGroup {
 public:
  enum class Priority { kHigh = 0, kNormal = 1, kLow = 2 };

  explicit WorkerGroup(int num_threads);
  ~WorkerGroup();

  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// The process-wide group (hardware_concurrency workers), shared by every
  /// engine that is not given an explicit group. Constructed on first use.
  static WorkerGroup& shared();

  /// Hardware concurrency, floored at 1.
  static int default_threads() noexcept {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }

  /// Runs body(r) exactly once for every r in [0, width) and blocks until
  /// all complete. Reentrant and callable concurrently from any number of
  /// threads; width may exceed size() (units queue and multiplex). The
  /// calling thread helps execute its own round's units. The first exception
  /// thrown by any unit is rethrown here after the round retires.
  void parallel_workers(int width, const std::function<void(int)>& body,
                        Priority priority = Priority::kNormal);

  /// Queues fn for execution on a pool worker; the future resolves when it
  /// has run (exceptions propagate through the future).
  std::future<void> submit(std::function<void()> fn,
                           Priority priority = Priority::kNormal);

 private:
  /// One SPMD round: width units claimed off a shared counter.
  struct Round {
    const std::function<void(int)>* body = nullptr;
    int width = 0;
    int next = 0;       // next unclaimed index (guarded by group mutex)
    int completed = 0;  // retired units (guarded by group mutex)
    std::exception_ptr first_error;
    std::condition_variable done_cv;
  };

  struct Task {
    std::shared_ptr<Round> round;        // SPMD ticket when set ...
    std::function<void()> fn;            // ... one-shot task otherwise
  };

  void worker_loop();
  bool pop_task(std::unique_lock<std::mutex>& lock, Task& out);
  /// Claims and runs units of `round` until none remain unclaimed. Returns
  /// with the group mutex held by `lock`.
  void run_round_units(std::unique_lock<std::mutex>& lock, Round& round);

  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;
  std::deque<Task> queues_[3];  // indexed by Priority
  bool shutdown_ = false;
};

}  // namespace rbc::par
