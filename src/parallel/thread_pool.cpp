#include "parallel/thread_pool.hpp"

namespace rbc::par {

ThreadPool::ThreadPool(int num_threads) {
  RBC_CHECK_MSG(num_threads > 0, "thread pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_workers(const std::function<void(int)>& body) {
  std::unique_lock lock(mutex_);
  RBC_CHECK_MSG(pending_ == 0, "parallel_workers is not reentrant");
  body_ = &body;
  pending_ = size();
  first_error_ = nullptr;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(int id) {
  u64 seen_generation = 0;
  while (true) {
    const std::function<void(int)>* body = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      body = body_;
    }
    std::exception_ptr error;
    try {
      (*body)(id);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace rbc::par
