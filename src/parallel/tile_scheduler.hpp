// Work-stealing tile scheduler for the Hamming-ball search.
//
// The ball of radius d is decomposed (by comb::ShellTiler) into tiles
// numbered globally in shell order. One atomic cursor hands out fresh tiles;
// each worker slot claims CLAIM-AHEAD consecutive tiles at a time and keeps
// the tail in a private span, so the cursor is touched once per few tiles,
// not once per tile. When the cursor drains, idle workers steal from the
// BACK of other slots' spans (one CAS per stolen tile). The combination of
// shell-ordered numbering + claim-ahead + stealing is what lets workers that
// finish shell k flow straight into shell k+1 tiles instead of parking at a
// barrier, while still visiting earlier shells first in aggregate.
//
// Exhaustive mode needs `distance` to be the MINIMAL shell containing a
// match even though shells now overlap in flight; complete() maintains
// per-shell completion counts and completed_through() reports the highest
// shell k such that shells 1..k are fully processed — the shell-order
// watermark the search layer uses to reason about coverage.
//
// Every tile is handed out exactly once (claim and steal both linearize on
// the same span words), so per-tile accounting sums to exact totals.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc::par {

class TileScheduler {
 public:
  struct Tile {
    int shell = 0;  // absolute shell number (first_shell-based)
    u64 index = 0;  // tile index within the shell
  };

  /// How many tiles a slot claims per cursor touch. Small enough that the
  /// tail available for stealing stays fresh, large enough to amortize the
  /// shared-cursor contention.
  static constexpr u32 kDefaultClaimAhead = 4;

  /// `tiles_per_shell[i]` is the tile count of shell `first_shell + i`;
  /// `num_slots` is the number of worker slots (each acquire() caller owns
  /// one slot id).
  TileScheduler(std::vector<u64> tiles_per_shell, int first_shell,
                int num_slots, u32 claim_ahead = kDefaultClaimAhead);

  int num_slots() const noexcept { return static_cast<int>(slots_.size()); }
  u64 total_tiles() const noexcept { return total_; }

  /// Hands the calling worker (owner of `slot`) its next tile: from its
  /// private span, else a fresh claim-ahead batch off the cursor, else a
  /// steal. Returns false when the ball is drained or halt() was called.
  bool acquire(int slot, Tile& out);

  /// Marks a tile fully processed (call once per tile, only after visiting
  /// every candidate in it).
  void complete(const Tile& tile);

  /// Highest shell with itself and every earlier shell fully completed;
  /// first_shell - 1 when none is.
  int completed_through() const;

  /// Stops handing out tiles (early exit); idempotent.
  void halt() { halted_.store(true, std::memory_order_release); }
  bool halted() const { return halted_.load(std::memory_order_acquire); }

 private:
  // A slot's claim-ahead span [cur, end) packed into one atomic word:
  // cur in the high 32 bits, end in the low 32. The owner pops the front,
  // thieves CAS the back; both race on the same word, so a tile is won by
  // exactly one of them.
  static u64 pack(u32 cur, u32 end) noexcept {
    return (static_cast<u64>(cur) << 32) | end;
  }
  static u32 span_cur(u64 s) noexcept { return static_cast<u32>(s >> 32); }
  static u32 span_end(u64 s) noexcept { return static_cast<u32>(s); }

  Tile tile_at(u32 global) const;
  bool pop_own(int slot, u32& out);
  bool steal(int slot, u32& out);

  struct alignas(64) Slot {
    std::atomic<u64> span{0};
  };

  std::vector<u64> tiles_per_shell_;
  std::vector<u64> shell_prefix_;  // first global id of each shell
  int first_shell_;
  u64 total_ = 0;
  u32 claim_ahead_;
  std::atomic<u64> cursor_{0};
  std::vector<Slot> slots_;
  std::unique_ptr<std::atomic<u64>[]> completed_;  // per-shell tile counts
  std::atomic<bool> halted_{false};
};

}  // namespace rbc::par
