#include "server/auth_server.hpp"

#include <algorithm>
#include <string>

#include "common/shard_hash.hpp"
#include "rbc/candidate_stream.hpp"

namespace rbc::server {

AuthServer::AuthServer(ServerConfig cfg, CertificateAuthority* ca,
                       RegistrationAuthority* ra)
    : cfg_(cfg) {
  RBC_CHECK(ca != nullptr && ra != nullptr);
  RBC_CHECK_MSG(cfg_.num_shards >= 1 &&
                    cfg_.num_shards <= static_cast<int>(kAuthorityStripes),
                "num_shards must be in [1, kAuthorityStripes]");
  RBC_CHECK_MSG(cfg_.max_queue_depth >= 1, "admission queue needs capacity");
  RBC_CHECK_MSG(cfg_.max_in_flight >= 1, "need at least one session driver");

  if (cfg_.flight_recorder) {
    recorder_ = std::make_unique<obs::FlightRecorder>(
        static_cast<std::size_t>(std::max(cfg_.max_flight_records, 1)));
  }

  // Split the server totals evenly; every shard gets at least one queue
  // slot and one driver (so the effective totals round up when num_shards
  // exceeds the configured counts).
  const int n = cfg_.num_shards;
  const int queue_per_shard = (cfg_.max_queue_depth + n - 1) / n;
  const int drivers_per_shard = (cfg_.max_in_flight + n - 1) / n;
  shards_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>(cfg_, s, n, queue_per_shard,
                                              drivers_per_shard, ca, ra,
                                              recorder_.get()));
  }
}

AuthServer::~AuthServer() { shutdown(); }

int AuthServer::shard_of_device(u64 device_id) const {
  return static_cast<int>(
      route_shard(device_id, static_cast<u32>(shards_.size())));
}

std::future<SessionOutcome> AuthServer::submit(Client* client) {
  return submit(client, cfg_.session_budget_s);
}

std::future<SessionOutcome> AuthServer::submit(Client* client,
                                               double budget_s) {
  RBC_CHECK(client != nullptr);
  const std::size_t s =
      static_cast<std::size_t>(shard_of_device(client->config().device_id));
  return shards_[s]->submit(client, budget_s);
}

std::future<SessionOutcome> AuthServer::submit(Client* client, double budget_s,
                                               u64 net_salt) {
  RBC_CHECK(client != nullptr);
  const std::size_t s =
      static_cast<std::size_t>(shard_of_device(client->config().device_id));
  return shards_[s]->submit(client, budget_s, net_salt);
}

std::vector<Shard::StatsSlice> AuthServer::collect_slices() const {
  // Each shard's slice is internally consistent (taken under its stripe
  // locks); the aggregate is the sum of per-shard snapshots.
  std::vector<Shard::StatsSlice> slices;
  slices.reserve(shards_.size());
  for (const auto& shard : shards_) slices.push_back(shard->stats_slice());
  return slices;
}

ServerStats AuthServer::stats() const { return aggregate(collect_slices()); }

ServerStats AuthServer::aggregate(
    const std::vector<Shard::StatsSlice>& slices) const {
  ServerStats agg;
  agg.shards = static_cast<int>(shards_.size());
  double time_sum = 0.0;
  u64 hit_rank_sum = 0;
  u64 canonical_rank_sum = 0;
  std::vector<const ReservoirSample*> reservoirs;
  reservoirs.reserve(slices.size());
  for (const Shard::StatsSlice& s : slices) {
    agg.submitted += s.submitted;
    agg.rejected += s.rejected;
    agg.shed_infeasible += s.shed_infeasible;
    agg.completed += s.completed;
    agg.authenticated += s.authenticated;
    agg.timed_out += s.timed_out;
    agg.cancelled += s.cancelled;
    agg.transport_failed += s.transport_failed;
    agg.retransmits += s.retransmits;
    agg.frames_dropped += s.frames_dropped;
    agg.frames_corrupted += s.frames_corrupted;
    agg.frames_duplicated += s.frames_duplicated;
    agg.frames_reordered += s.frames_reordered;
    agg.frames_stalled += s.frames_stalled;
    agg.link_timeouts += s.link_timeouts;
    agg.trace_events_recorded += s.trace_events_recorded;
    agg.trace_events_dropped += s.trace_events_dropped;
    agg.queue_depth += s.queue_depth;
    agg.in_flight += s.in_flight;
    agg.device_states += s.device_states;
    agg.fused_sessions += s.fused_sessions;
    agg.fusion_declined += s.fusion_declined;
    agg.fusion_batches += s.fusion_batches;
    agg.fusion_lanes_filled += s.fusion_lanes_filled;
    agg.fusion_lanes_issued += s.fusion_lanes_issued;
    agg.ranked_sessions += s.ranked_sessions;
    hit_rank_sum += s.hit_rank_sum;
    canonical_rank_sum += s.canonical_rank_sum;
    time_sum += s.session_time_sum;
    if (!s.session_times.empty()) reservoirs.push_back(&s.session_times);
  }
  // Mean-of-sums, never mean-of-means: slices report integer SUMS
  // (hit_rank_sum / canonical_rank_sum) precisely so the N-shard aggregate
  // is the same weighted mean a 1-shard server computes over the identical
  // session set — obs_test pins this equivalence. All ratio derivations
  // below are denominator-guarded; zero denominators render the 0.0
  // sentinel (pre-traffic snapshots must never divide by zero or abort).
  if (agg.ranked_sessions > 0) {
    agg.mean_hit_rank = static_cast<double>(hit_rank_sum) /
                        static_cast<double>(agg.ranked_sessions);
    agg.mean_canonical_rank = static_cast<double>(canonical_rank_sum) /
                              static_cast<double>(agg.ranked_sessions);
  }
  // Process-wide shell-mask cache counters (shared across every server in
  // the process, not a per-instance view).
  const ShellMaskCache::Stats cache = ShellMaskCache::stats();
  agg.shell_cache_hits = cache.hits;
  agg.shell_cache_misses = cache.misses;
  agg.shell_cache_evictions = cache.evictions;
  agg.shell_cache_masks = cache.cached_masks;
  if (agg.fusion_lanes_issued > 0) {
    agg.lane_occupancy = static_cast<double>(agg.fusion_lanes_filled) /
                         static_cast<double>(agg.fusion_lanes_issued);
  }
  if (agg.completed > 0) {
    agg.mean_session_s = time_sum / static_cast<double>(agg.completed);
  }
  // merged_percentile itself renders 0.0 for no/empty reservoirs now, but
  // skipping the call keeps the pre-traffic path allocation-free.
  if (!reservoirs.empty()) {
    agg.p50_session_s = merged_percentile(reservoirs, 0.50);
    agg.p95_session_s = merged_percentile(reservoirs, 0.95);
  }
  if (recorder_) agg.flight_records = recorder_->total();
  return agg;
}

std::vector<obs::TraceEvent> AuthServer::trace_events() const {
  std::vector<obs::TraceEvent> out;
  for (const auto& shard : shards_) {
    const obs::TraceRing* ring = shard->trace_ring();
    if (ring == nullptr) continue;
    std::vector<obs::TraceEvent> events = ring->snapshot();
    out.insert(out.end(), events.begin(), events.end());
  }
  // Cross-shard order: the rings share one construction instant (the
  // AuthServer ctor), so wall start time is the best global order we have.
  std::sort(out.begin(), out.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              return a.wall_start_s < b.wall_start_s;
            });
  return out;
}

std::string AuthServer::export_metrics(obs::MetricsFormat format) const {
  const std::vector<Shard::StatsSlice> slices = collect_slices();
  const ServerStats s = aggregate(slices);

  obs::MetricsRegistry reg;
  // Session lifecycle counters (the ServerStats invariant family).
  reg.counter("rbc_sessions_submitted_total", "Sessions submitted",
              static_cast<double>(s.submitted));
  reg.counter("rbc_sessions_rejected_total", "Sessions shed at admission",
              static_cast<double>(s.rejected));
  reg.counter("rbc_sessions_shed_infeasible_total",
              "Rejected as deadline-infeasible at submit",
              static_cast<double>(s.shed_infeasible));
  reg.counter("rbc_sessions_completed_total", "Sessions fully processed",
              static_cast<double>(s.completed));
  reg.counter("rbc_sessions_authenticated_total", "Sessions authenticated",
              static_cast<double>(s.authenticated));
  reg.counter("rbc_sessions_timed_out_total", "Sessions past threshold T",
              static_cast<double>(s.timed_out));
  reg.counter("rbc_sessions_cancelled_total", "Sessions cancelled in queue",
              static_cast<double>(s.cancelled));
  reg.counter("rbc_sessions_transport_failed_total",
              "Sessions that exhausted their retransmit budget",
              static_cast<double>(s.transport_failed));
  // Link / fault-injection counters (net::LinkStats rollup).
  reg.counter("rbc_link_retransmits_total", "ARQ retransmissions",
              static_cast<double>(s.retransmits));
  reg.counter("rbc_link_timeouts_total", "ARQ response timeouts",
              static_cast<double>(s.link_timeouts));
  reg.counter("rbc_link_frames_dropped_total", "Frames swallowed in flight",
              static_cast<double>(s.frames_dropped));
  reg.counter("rbc_link_frames_corrupted_total", "Frames bit-flipped",
              static_cast<double>(s.frames_corrupted));
  reg.counter("rbc_link_frames_duplicated_total", "Duplicate frame copies",
              static_cast<double>(s.frames_duplicated));
  reg.counter("rbc_link_frames_reordered_total", "Frames reordered",
              static_cast<double>(s.frames_reordered));
  reg.counter("rbc_link_frames_stalled_total", "Frames stalled",
              static_cast<double>(s.frames_stalled));
  // Lane-fusion counters (FusionEngine rollup).
  reg.counter("rbc_fusion_sessions_total", "Sessions absorbed by fusion",
              static_cast<double>(s.fused_sessions));
  reg.counter("rbc_fusion_declined_total", "Sessions fusion declined",
              static_cast<double>(s.fusion_declined));
  reg.counter("rbc_fusion_batches_total", "Fused hash batches issued",
              static_cast<double>(s.fusion_batches));
  reg.counter("rbc_fusion_lanes_filled_total", "Lane slots carrying work",
              static_cast<double>(s.fusion_lanes_filled));
  reg.counter("rbc_fusion_lanes_issued_total", "Lane slots dealt",
              static_cast<double>(s.fusion_lanes_issued));
  // Search-order telemetry.
  reg.counter("rbc_ranked_sessions_total",
              "Authenticated sessions with rank data",
              static_cast<double>(s.ranked_sessions));
  reg.gauge("rbc_mean_hit_rank", "Mean seeds hashed at the hit",
            s.mean_hit_rank);
  reg.gauge("rbc_mean_canonical_rank",
            "Mean canonical-order rank of the hit", s.mean_canonical_rank);
  // Shell-mask cache (process-wide, shared by every server).
  reg.counter("rbc_shell_cache_hits_total", "Shell mask table cache hits",
              static_cast<double>(s.shell_cache_hits));
  reg.counter("rbc_shell_cache_misses_total", "Shell mask table cache misses",
              static_cast<double>(s.shell_cache_misses));
  reg.counter("rbc_shell_cache_evictions_total", "Shell tables evicted",
              static_cast<double>(s.shell_cache_evictions));
  reg.gauge("rbc_shell_cache_masks", "Masks currently cached",
            static_cast<double>(s.shell_cache_masks));
  // Observability subsystem self-accounting.
  reg.counter("rbc_trace_events_recorded_total", "Trace records published",
              static_cast<double>(s.trace_events_recorded));
  reg.counter("rbc_trace_events_dropped_total",
              "Trace records overwritten by ring wrap",
              static_cast<double>(s.trace_events_dropped));
  reg.counter("rbc_flight_records_total", "Failures flight-recorded",
              static_cast<double>(s.flight_records));
  // Point-in-time gauges, aggregate and per-shard.
  reg.gauge("rbc_shards", "Serving shards", static_cast<double>(s.shards));
  reg.gauge("rbc_queue_depth", "Sessions admitted, not yet picked up",
            static_cast<double>(s.queue_depth));
  reg.gauge("rbc_in_flight", "Sessions currently on a driver",
            static_cast<double>(s.in_flight));
  reg.gauge("rbc_device_states", "Retained per-device lock states",
            static_cast<double>(s.device_states));
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const obs::MetricsRegistry::Labels shard_label = {
        {"shard", std::to_string(i)}};
    reg.gauge("rbc_shard_queue_depth", "Per-shard admission queue depth",
              static_cast<double>(slices[i].queue_depth), shard_label);
    reg.gauge("rbc_shard_in_flight", "Per-shard sessions on a driver",
              static_cast<double>(slices[i].in_flight), shard_label);
  }
  reg.gauge("rbc_session_time_seconds_mean", "Mean session time (exact)",
            s.mean_session_s);
  reg.gauge("rbc_session_time_seconds_p50",
            "Median session time (reservoir estimate)", s.p50_session_s);
  reg.gauge("rbc_session_time_seconds_p95",
            "p95 session time (reservoir estimate)", s.p95_session_s);
  reg.gauge("rbc_fusion_lane_occupancy",
            "Filled fraction of dealt lane slots", s.lane_occupancy);
  return reg.render(format);
}

void AuthServer::shutdown() {
  for (const auto& shard : shards_) shard->shutdown();
}

}  // namespace rbc::server
