#include "server/auth_server.hpp"

#include "common/shard_hash.hpp"
#include "rbc/candidate_stream.hpp"

namespace rbc::server {

AuthServer::AuthServer(ServerConfig cfg, CertificateAuthority* ca,
                       RegistrationAuthority* ra)
    : cfg_(cfg) {
  RBC_CHECK(ca != nullptr && ra != nullptr);
  RBC_CHECK_MSG(cfg_.num_shards >= 1 &&
                    cfg_.num_shards <= static_cast<int>(kAuthorityStripes),
                "num_shards must be in [1, kAuthorityStripes]");
  RBC_CHECK_MSG(cfg_.max_queue_depth >= 1, "admission queue needs capacity");
  RBC_CHECK_MSG(cfg_.max_in_flight >= 1, "need at least one session driver");

  // Split the server totals evenly; every shard gets at least one queue
  // slot and one driver (so the effective totals round up when num_shards
  // exceeds the configured counts).
  const int n = cfg_.num_shards;
  const int queue_per_shard = (cfg_.max_queue_depth + n - 1) / n;
  const int drivers_per_shard = (cfg_.max_in_flight + n - 1) / n;
  shards_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>(cfg_, s, n, queue_per_shard,
                                              drivers_per_shard, ca, ra));
  }
}

AuthServer::~AuthServer() { shutdown(); }

int AuthServer::shard_of_device(u64 device_id) const {
  return static_cast<int>(
      route_shard(device_id, static_cast<u32>(shards_.size())));
}

std::future<SessionOutcome> AuthServer::submit(Client* client) {
  return submit(client, cfg_.session_budget_s);
}

std::future<SessionOutcome> AuthServer::submit(Client* client,
                                               double budget_s) {
  RBC_CHECK(client != nullptr);
  const std::size_t s =
      static_cast<std::size_t>(shard_of_device(client->config().device_id));
  return shards_[s]->submit(client, budget_s);
}

std::future<SessionOutcome> AuthServer::submit(Client* client, double budget_s,
                                               u64 net_salt) {
  RBC_CHECK(client != nullptr);
  const std::size_t s =
      static_cast<std::size_t>(shard_of_device(client->config().device_id));
  return shards_[s]->submit(client, budget_s, net_salt);
}

ServerStats AuthServer::stats() const {
  // Each shard's slice is internally consistent (taken under its stripe
  // locks); the aggregate is the sum of per-shard snapshots.
  std::vector<Shard::StatsSlice> slices;
  slices.reserve(shards_.size());
  for (const auto& shard : shards_) slices.push_back(shard->stats_slice());

  ServerStats agg;
  agg.shards = static_cast<int>(shards_.size());
  double time_sum = 0.0;
  u64 hit_rank_sum = 0;
  u64 canonical_rank_sum = 0;
  std::vector<const ReservoirSample*> reservoirs;
  reservoirs.reserve(slices.size());
  for (const Shard::StatsSlice& s : slices) {
    agg.submitted += s.submitted;
    agg.rejected += s.rejected;
    agg.shed_infeasible += s.shed_infeasible;
    agg.completed += s.completed;
    agg.authenticated += s.authenticated;
    agg.timed_out += s.timed_out;
    agg.cancelled += s.cancelled;
    agg.transport_failed += s.transport_failed;
    agg.retransmits += s.retransmits;
    agg.frames_dropped += s.frames_dropped;
    agg.frames_corrupted += s.frames_corrupted;
    agg.queue_depth += s.queue_depth;
    agg.in_flight += s.in_flight;
    agg.device_states += s.device_states;
    agg.fused_sessions += s.fused_sessions;
    agg.fusion_declined += s.fusion_declined;
    agg.fusion_batches += s.fusion_batches;
    agg.fusion_lanes_filled += s.fusion_lanes_filled;
    agg.fusion_lanes_issued += s.fusion_lanes_issued;
    agg.ranked_sessions += s.ranked_sessions;
    hit_rank_sum += s.hit_rank_sum;
    canonical_rank_sum += s.canonical_rank_sum;
    time_sum += s.session_time_sum;
    if (!s.session_times.empty()) reservoirs.push_back(&s.session_times);
  }
  if (agg.ranked_sessions > 0) {
    agg.mean_hit_rank = static_cast<double>(hit_rank_sum) /
                        static_cast<double>(agg.ranked_sessions);
    agg.mean_canonical_rank = static_cast<double>(canonical_rank_sum) /
                              static_cast<double>(agg.ranked_sessions);
  }
  // Process-wide shell-mask cache counters (shared across every server in
  // the process, not a per-instance view).
  const ShellMaskCache::Stats cache = ShellMaskCache::stats();
  agg.shell_cache_hits = cache.hits;
  agg.shell_cache_misses = cache.misses;
  agg.shell_cache_evictions = cache.evictions;
  agg.shell_cache_masks = cache.cached_masks;
  if (agg.fusion_lanes_issued > 0) {
    agg.lane_occupancy = static_cast<double>(agg.fusion_lanes_filled) /
                         static_cast<double>(agg.fusion_lanes_issued);
  }
  if (agg.completed > 0) {
    agg.mean_session_s = time_sum / static_cast<double>(agg.completed);
  }
  if (!reservoirs.empty()) {
    agg.p50_session_s = merged_percentile(reservoirs, 0.50);
    agg.p95_session_s = merged_percentile(reservoirs, 0.95);
  }
  return agg;
}

void AuthServer::shutdown() {
  for (const auto& shard : shards_) shard->shutdown();
}

}  // namespace rbc::server
