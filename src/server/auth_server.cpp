#include "server/auth_server.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace rbc::server {

AuthServer::AuthServer(ServerConfig cfg, CertificateAuthority* ca,
                       RegistrationAuthority* ra)
    : cfg_(cfg), ca_(ca), ra_(ra) {
  RBC_CHECK(ca != nullptr && ra != nullptr);
  RBC_CHECK_MSG(cfg_.max_queue_depth >= 1, "admission queue needs capacity");
  RBC_CHECK_MSG(cfg_.max_in_flight >= 1, "need at least one session driver");
  RBC_CHECK(cfg_.session_budget_s > 0.0);
  drivers_.reserve(static_cast<std::size_t>(cfg_.max_in_flight));
  for (int i = 0; i < cfg_.max_in_flight; ++i)
    drivers_.emplace_back([this] { driver_loop(); });
}

AuthServer::~AuthServer() { shutdown(); }

std::future<SessionOutcome> AuthServer::submit(Client* client) {
  RBC_CHECK(client != nullptr);
  auto session = std::make_unique<Session>(client, cfg_.session_budget_s);
  std::future<SessionOutcome> future = session->promise.get_future();

  {
    std::lock_guard lock(mutex_);
    std::lock_guard stats_lock(stats_mutex_);
    ++submitted_;
    if (shutdown_ ||
        queue_.size() >= static_cast<std::size_t>(cfg_.max_queue_depth)) {
      // Backpressure: shed at admission, before any search cycles burn.
      ++rejected_;
      SessionOutcome outcome;
      outcome.device_id = client->config().device_id;
      outcome.accepted = false;
      session->promise.set_value(outcome);
      return future;
    }
    queue_.push_back(std::move(session));
  }
  cv_queue_.notify_one();
  return future;
}

void AuthServer::driver_loop() {
  while (true) {
    std::unique_ptr<Session> session;
    {
      std::unique_lock lock(mutex_);
      cv_queue_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      session = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      std::lock_guard stats_lock(stats_mutex_);
      ++in_flight_;
    }
    run_session(*session);  // record_outcome drops in_flight_ BEFORE the
                            // promise resolves, so a caller who just got its
                            // outcome never reads a stale in-flight count
  }
}

void AuthServer::run_session(Session& session) {
  SessionOutcome outcome;
  outcome.device_id = session.client->config().device_id;
  outcome.accepted = true;
  outcome.queue_wait_s = session.admitted.elapsed_s();

  // The budget started at admission; a session that waited past its
  // threshold is reported timed out without spending search cycles.
  if (!session.ctx.check_deadline()) {
    // Per-device serialization: interleaved sessions for one device would
    // race the enrollment image read against the RA key rotation.
    std::shared_ptr<std::mutex> device_lock;
    {
      std::lock_guard lock(device_locks_mutex_);
      auto& slot = device_locks_[outcome.device_id];
      if (!slot) slot = std::make_shared<std::mutex>();
      device_lock = slot;
    }
    std::lock_guard device_guard(*device_lock);
    net::LatencyModel latency(cfg_.per_message_latency_s);
    latency.set_realtime(cfg_.realtime_comm);
    outcome.report = run_authentication(*session.client, *ca_, *ra_, latency,
                                        &session.ctx);
    outcome.authenticated = outcome.report.result.authenticated;
  }
  outcome.timed_out = session.ctx.timed_out() ||
                      outcome.report.result.timed_out;
  outcome.session_s = session.admitted.elapsed_s();

  record_outcome(outcome);
  session.promise.set_value(std::move(outcome));
}

void AuthServer::record_outcome(const SessionOutcome& outcome) {
  std::lock_guard lock(stats_mutex_);
  --in_flight_;
  ++completed_;
  if (outcome.authenticated) ++authenticated_;
  if (outcome.timed_out) ++timed_out_;
  session_times_s_.push_back(outcome.session_s);
}

ServerStats AuthServer::stats() const {
  std::lock_guard lock(mutex_);
  std::lock_guard stats_lock(stats_mutex_);
  ServerStats snapshot;
  snapshot.submitted = submitted_;
  snapshot.rejected = rejected_;
  snapshot.completed = completed_;
  snapshot.authenticated = authenticated_;
  snapshot.timed_out = timed_out_;
  snapshot.queue_depth = static_cast<int>(queue_.size());
  snapshot.in_flight = in_flight_;
  if (!session_times_s_.empty()) {
    double sum = 0.0;
    for (double t : session_times_s_) sum += t;
    snapshot.mean_session_s =
        sum / static_cast<double>(session_times_s_.size());
    snapshot.p50_session_s = percentile(session_times_s_, 0.50);
    snapshot.p95_session_s = percentile(session_times_s_, 0.95);
  }
  return snapshot;
}

void AuthServer::shutdown() {
  std::deque<std::unique_ptr<Session>> orphans;
  {
    std::lock_guard lock(mutex_);
    if (shutdown_) return;  // first caller joins; the dtor re-call no-ops
    shutdown_ = true;
    // Cancel sessions still queued; drivers drain in-flight work only.
    orphans.swap(queue_);
  }
  cv_queue_.notify_all();
  for (auto& session : orphans) {
    session->ctx.cancel();
    SessionOutcome outcome;
    outcome.device_id = session->client->config().device_id;
    outcome.accepted = true;
    outcome.session_s = session->admitted.elapsed_s();
    session->promise.set_value(std::move(outcome));
  }
  for (auto& driver : drivers_) driver.join();
  drivers_.clear();
}

}  // namespace rbc::server
