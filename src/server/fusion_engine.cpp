#include "server/fusion_engine.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "hash/batch.hpp"
#include "obs/trace.hpp"
#include "parallel/search_context.hpp"
#include "rbc/candidate_stream.hpp"

namespace rbc::server {
namespace {

/// One admitted search: a resumable stream plus the bookkeeping that makes
/// its retirement byte-equal to a solo run. Heap-allocated so ctx can point
/// into own_ctx without move hazards.
template <typename H>
struct Job {
  Job(const Seed256& init, int max_distance, sim::IterAlgo iter,
      const SearchOptions& opts)
      : s_init(init) {
    // Reliability-ordered sessions fuse through the same lane-dealing loop:
    // only the stream's within-shell order differs, so the equivalence
    // contract (verdicts + per-session seeds_hashed equal to the solo
    // ordered run) holds unchanged.
    if (opts.order == SearchOrder::kReliability &&
        opts.reliability != nullptr) {
      stream = std::make_unique<OrderedBallStream>(
          init, max_distance, opts.reliability, opts.ordered_budget);
    } else {
      stream = std::make_unique<TableCandidateStream>(init, max_distance, iter);
    }
  }

  Seed256 s_init;
  std::unique_ptr<CandidateStream> stream;
  typename H::digest_type target;
  u32 head = 0;  // target digest's first 32 bits (prefilter word)
  std::optional<par::SearchContext> own_ctx;
  par::SearchContext* ctx = nullptr;
  u64 admit_seq = 0;
  u64 counted = 0;   // judged candidates — the solo seeds_hashed at retire
  u64 reported = 0;  // prefix of `counted` already flushed to add_progress
  u64 dealt = 0;     // candidates handed to batches (includes speculative)
  int batch_tag = -1;
  bool matched = false;
  bool stopped = false;  // deadline expired or cancelled (latched)
  bool drained = false;  // ball exhausted
  Seed256 match_seed;
  int match_shell = -1;
  WallTimer timer;
  std::promise<SearchResult> promise;
};

/// Mirrors the solo rbc_search tail: found wins; otherwise a drained ball
/// still takes the post-loop deadline poll, and `cancelled` means external
/// cancellation, not a timeout.
template <typename H>
SearchResult retire_result(Job<H>& j) {
  if (j.counted > j.reported) {
    j.ctx->add_progress(j.counted - j.reported);
    j.reported = j.counted;
  }
  // Lane-residency span: how long this session lived inside the fused
  // engine (admission to retirement), how far its stream got and how many
  // lane slots it consumed (dealt >= counted when lanes past a match were
  // speculative). The pump thread writes it BEFORE set_value resolves the
  // driver's future, so the span always precedes the session's verdict.
  if (obs::SessionTrace* trace = j.ctx->trace()) {
    const int shell = j.stream->last_shell();
    trace->span_ending_now(obs::SpanKind::kFusionLane, j.timer.elapsed_s(),
                           static_cast<u32>(shell < 0 ? 0 : shell), j.dealt);
  }
  SearchResult r;
  r.seeds_hashed = j.counted;
  if (j.matched) {
    r.found = true;
    r.seed = j.match_seed;
    r.distance = j.match_shell;
    r.canonical_rank = comb::canonical_ball_rank(j.match_seed ^ j.s_init);
  } else {
    if (j.drained) j.ctx->check_deadline();
    r.timed_out = j.ctx->timed_out();
    r.cancelled = j.ctx->cancel_requested() && !j.ctx->timed_out();
  }
  r.host_seconds = j.timer.elapsed_s();
  return r;
}

}  // namespace

struct FusionEngine::Impl {
  template <typename H>
  struct Queue {
    std::deque<std::unique_ptr<Job<H>>> pending;  // guarded by mu
    std::vector<std::unique_ptr<Job<H>>> active;  // pump-owned
  };

  explicit Impl(FusionConfig c) : cfg(c) {
    cfg.batch_lanes = std::clamp(cfg.batch_lanes, 1,
                                 static_cast<int>(hash::kMaxTaggedLanes));
    cfg.max_streams = std::max(cfg.max_streams, 1);
    pump = std::thread([this] { pump_loop(); });
  }

  FusionConfig cfg;
  mutable std::mutex mu;
  std::condition_variable cv;
  bool shutting_down = false;  // guarded by mu
  FusionStats stats;           // guarded by mu
  u64 admit_seq = 0;           // guarded by mu
  int in_flight = 0;           // pending + active, guarded by mu
  Queue<hash::Sha1BatchSeedHash> sha1;
  Queue<hash::Sha3BatchSeedHash> sha3;
  std::mutex join_mu;
  std::thread pump;

  template <typename H>
  void drain_pending_locked(Queue<H>& q) {
    while (!q.pending.empty()) {
      q.active.push_back(std::move(q.pending.front()));
      q.pending.pop_front();
    }
  }

  void pump_loop() {
    for (;;) {
      {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] {
          return shutting_down || !sha1.pending.empty() ||
                 !sha3.pending.empty() || !sha1.active.empty() ||
                 !sha3.active.empty();
        });
        if (shutting_down) break;
        drain_pending_locked(sha1);
        drain_pending_locked(sha3);
      }
      run_batch(sha1);
      run_batch(sha3);
    }
    abort_queue(sha1);
    abort_queue(sha3);
  }

  /// Deals one fused batch over q.active, hashes it through the tagged
  /// multi-lane kernel, judges the lanes and retires finished streams.
  template <typename H>
  void run_batch(Queue<H>& q) {
    if (q.active.empty()) return;
    const std::size_t L = static_cast<std::size_t>(cfg.batch_lanes);
    std::array<Seed256, hash::kMaxTaggedLanes> seeds;
    std::array<typename H::digest_type, hash::kMaxTaggedLanes> digests;
    std::array<u16, hash::kMaxTaggedLanes> tags;
    std::array<int, hash::kMaxTaggedLanes> lane_shell;
    std::array<u32, hash::kMaxTaggedLanes> heads;
    std::array<Job<H>*, hash::kMaxTaggedLanes> batch_jobs;
    std::size_t num_tags = 0;
    for (auto& j : q.active) j->batch_tag = -1;

    // One clock read serves every stop check this batch; streams that
    // expire mid-batch are caught at the next batch's read, a cadence at
    // least as tight as the solo loop's check_interval.
    const auto now = par::SearchContext::Clock::now();

    // Deal lane slots in EDF order, round by round, until the batch is full
    // or nothing is left to deal. The stop check runs before every fill of
    // a stream that has already been dealt once — the unconditional first
    // fill produces exactly the d0 candidate, mirroring the solo path where
    // S_init is hashed before any deadline poll.
    std::size_t filled = 0;
    std::vector<Job<H>*> runnable;
    runnable.reserve(q.active.size());
    while (filled < L) {
      runnable.clear();
      for (auto& j : q.active) {
        if (!j->matched && !j->stopped && !j->drained)
          runnable.push_back(j.get());
      }
      if (runnable.empty()) {
        // Same-batch backfill: every live stream retired mid-deal, so pull
        // whatever is queued straight into this batch's remaining lanes.
        std::lock_guard lk(mu);
        if (q.pending.empty()) break;
        drain_pending_locked(q);
        continue;
      }
      std::sort(runnable.begin(), runnable.end(),
                [](const Job<H>* a, const Job<H>* b) {
                  const auto da = a->ctx->deadline();
                  const auto db = b->ctx->deadline();
                  if (da != db) return da < db;
                  return a->admit_seq < b->admit_seq;
                });
      const std::size_t share =
          std::max<std::size_t>(1, (L - filled) / runnable.size());
      for (Job<H>* j : runnable) {
        if (filled >= L) break;
        if (j->dealt > 0 &&
            (j->ctx->cancel_requested() || now >= j->ctx->deadline())) {
          j->ctx->check_deadline();  // latch timed_out when it's the cause
          j->stopped = true;
          continue;
        }
        const std::size_t got =
            j->stream->fill(&seeds[filled], std::min(share, L - filled));
        if (got == 0) {
          j->drained = true;
          continue;
        }
        if (j->batch_tag < 0) {
          j->batch_tag = static_cast<int>(num_tags);
          batch_jobs[num_tags] = j;
          heads[num_tags] = j->head;
          ++num_tags;
        }
        const int shell = j->stream->last_shell();
        for (std::size_t i = 0; i < got; ++i) {
          tags[filled + i] = static_cast<u16>(j->batch_tag);
          lane_shell[filled + i] = shell;
        }
        j->dealt += got;
        filled += got;
      }
    }

    if (filled > 0) {
      const u64 hits =
          hash::hash_seed_block_tagged(H{}, seeds.data(), filled, tags.data(),
                                       heads.data(), digests.data());
      // Judge lanes in deal order — within one stream that IS enumeration
      // order, so stopping the count at the match lane reproduces the solo
      // `counted = i + 1` accounting; lanes dealt past it were speculative.
      for (std::size_t i = 0; i < filled; ++i) {
        Job<H>* j = batch_jobs[tags[i]];
        if (j->matched) continue;
        ++j->counted;
        if (((hits >> i) & 1) == 0) continue;
        if (!(digests[i] == j->target)) continue;
        j->matched = true;
        j->match_seed = seeds[i];
        j->match_shell = lane_shell[i];
        j->ctx->signal_match();
      }
      for (std::size_t t = 0; t < num_tags; ++t) {
        Job<H>* j = batch_jobs[t];
        if (j->counted > j->reported) {
          j->ctx->add_progress(j->counted - j->reported);
          j->reported = j->counted;
        }
      }
    }

    int retired = 0;
    for (auto it = q.active.begin(); it != q.active.end();) {
      Job<H>& j = **it;
      if (j.matched || j.stopped || j.drained) {
        j.promise.set_value(retire_result(j));
        it = q.active.erase(it);
        ++retired;
      } else {
        ++it;
      }
    }

    std::lock_guard lk(mu);
    if (filled > 0) {
      ++stats.batch_count;
      stats.lanes_filled += filled;
      stats.lanes_issued += L;
    }
    in_flight -= retired;
  }

  /// Shutdown path: cancel and retire everything still queued or active.
  template <typename H>
  void abort_queue(Queue<H>& q) {
    {
      std::lock_guard lk(mu);
      drain_pending_locked(q);
    }
    int aborted = 0;
    for (auto& j : q.active) {
      j->ctx->cancel();
      j->promise.set_value(retire_result(*j));
      ++aborted;
    }
    q.active.clear();
    std::lock_guard lk(mu);
    in_flight -= aborted;
  }

  template <typename H>
  std::optional<EngineReport> submit(Queue<H>& q, const Seed256& s_init,
                                     ByteSpan digest, const SearchOptions& opts,
                                     par::SearchContext* session) {
    auto job = std::make_unique<Job<H>>(s_init, opts.max_distance,
                                        cfg.iterator, opts);
    std::memcpy(job->target.bytes.data(), digest.data(),
                job->target.bytes.size());
    std::memcpy(&job->head, digest.data(), sizeof(job->head));
    if (session != nullptr) {
      job->ctx = session;
    } else {
      // Same budget-from-now the solo path builds when no session exists.
      job->own_ctx.emplace(par::SearchContext::with_budget(opts.timeout_s));
      job->ctx = &*job->own_ctx;
    }
    auto fut = job->promise.get_future();
    {
      std::lock_guard lk(mu);
      if (shutting_down || in_flight >= cfg.max_streams) {
        ++stats.declined;
        return std::nullopt;
      }
      job->admit_seq = admit_seq++;
      ++in_flight;
      ++stats.fused_sessions;
      q.pending.push_back(std::move(job));
    }
    cv.notify_one();
    EngineReport report;
    report.result = fut.get();
    report.modeled_device_seconds = 0.0;
    report.device_name = "SALTED-FUSED";
    return report;
  }
};

FusionEngine::FusionEngine(FusionConfig cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

FusionEngine::~FusionEngine() { shutdown(); }

std::optional<EngineReport> FusionEngine::try_search(
    const Seed256& s_init, ByteSpan digest, hash::HashAlgo algo,
    const SearchOptions& opts, par::SearchContext* session) {
  // Decline anything the fused path cannot substitute bit-for-bit: the
  // equivalence contract is against the SINGLE-thread early-exit search, a
  // quantum_hook needs the private loop, and oversized balls belong on the
  // tiled path (and would blow the shell table cap).
  if (!opts.early_exit || opts.num_threads != 1 || opts.quantum_hook ||
      opts.max_distance < 0 ||
      digest.size() != hash::digest_size(algo) ||
      ball_candidates(opts.max_distance) > u128{impl_->cfg.threshold_seeds}) {
    std::lock_guard lk(impl_->mu);
    ++impl_->stats.declined;
    return std::nullopt;
  }
  if (algo == hash::HashAlgo::kSha1) {
    return impl_->submit(impl_->sha1, s_init, digest, opts, session);
  }
  return impl_->submit(impl_->sha3, s_init, digest, opts, session);
}

FusionStats FusionEngine::stats() const {
  std::lock_guard lk(impl_->mu);
  return impl_->stats;
}

void FusionEngine::shutdown() {
  {
    std::lock_guard lk(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->cv.notify_all();
  std::lock_guard jl(impl_->join_mu);
  if (impl_->pump.joinable()) impl_->pump.join();
}

}  // namespace rbc::server
