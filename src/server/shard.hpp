// One serving shard: a device-id slice of the authentication world.
//
// The PR-1 server funneled every session through one admission mutex, one
// FIFO queue, and one ever-growing device-lock map. At fleet scale the
// serving seam — not the search kernel — becomes the bottleneck, so the
// server is re-seamed shard-per-core: each Shard owns
//
//   * its own bounded admission queue, dispatched EARLIEST-DEADLINE-FIRST
//     (a tight-threshold session overtakes slack ones; FIFO is EDF's
//     degenerate case when all budgets are equal),
//   * admission-time FEASIBILITY shedding — a session whose remaining
//     budget cannot cover the modeled communication floor plus the
//     configured minimum search time is rejected at submit() instead of
//     timing out after burning cycles,
//   * its own driver threads and per-device session locks in a BOUNDED
//     table (idle devices are evicted LRU once the table exceeds its cap —
//     the global map used to grow forever),
//   * its own stats stripe: counters, exact mean, and a fixed-size
//     reservoir for percentiles (the unbounded session-time vector and its
//     O(n log n) scan under two mutexes are gone).
//
// Shards share NO mutable state with each other: the CA/RA/enrollment-DB
// accesses go through shard-scoped views onto lock stripes keyed by the
// same routing hash (common/shard_hash.hpp), and all shards multiplex the
// one process-wide WorkerGroup for search compute.
#pragma once

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "parallel/search_context.hpp"
#include "rbc/protocol.hpp"
#include "server/fusion_engine.hpp"

namespace rbc::server {

struct ServerConfig {
  /// Serving shards (1..kAuthorityStripes). Each owns a device-id slice of
  /// the queue, drivers, device locks and stats; 1 reproduces the previous
  /// single-queue server exactly.
  int num_shards = 1;
  /// Bounded admission queue, TOTAL across shards (split evenly, min 1 per
  /// shard); submissions beyond a shard's slice are rejected.
  int max_queue_depth = 64;
  /// Concurrent session drivers, TOTAL across shards (split evenly, min 1
  /// per shard — so effective total is max(max_in_flight, num_shards)).
  int max_in_flight = 4;
  /// Per-session threshold T, seconds of wall clock from ADMISSION — queue
  /// wait, simulated communication and search all spend from this budget.
  double session_budget_s = 20.0;
  /// Latency model applied to each session's simulated channel. Each shard
  /// forks per-session models from one per-shard base, so jitter streams
  /// are independent across shards.
  double per_message_latency_s = 0.15;
  double per_message_jitter_s = 0.0;
  /// When true the channel SLEEPS its latencies in wall-clock time instead
  /// of only charging the logical clock. Overlapping sessions then overlap
  /// their waits exactly as a real server overlaps network I/O — this is
  /// what the throughput bench measures; tests keep it off for speed.
  bool realtime_comm = false;
  /// Modeled minimum search time used by admission-time feasibility
  /// shedding: a session is rejected at submit() when its remaining budget
  /// is below the communication floor (counted only in realtime mode,
  /// where comm actually spends wall clock) plus this value. 0 disables
  /// the search-floor component.
  double min_search_time_s = 0.0;
  /// Per-shard bound on retained per-device lock states; idle devices
  /// beyond it are evicted LRU (a rolling device population no longer
  /// grows server memory without bound).
  int max_device_states = 1024;
  /// Deterministic fault injection on every session's simulated channel
  /// (chaos testing / degraded-network drills). All-zero rates leave the
  /// wire bytes and clock accounting identical to the fault-free server.
  net::FaultConfig fault{};
  /// Base seed for the server's fault streams. Each session's plan is
  /// FaultPlan(fault, fault_seed).fork(net_salt) — a pure function of
  /// (fault_seed, net_salt), and deliberately NOT shard-salted, so a 1-shard
  /// and a 4-shard server given the same per-session salts inject identical
  /// faults and any observed failure replays from its logged salt.
  u64 fault_seed = 0;
  /// Retransmit policy for lossy sessions (ignored while `fault` is
  /// inactive). Retries charge the session's threshold budget.
  RetryPolicy retry{};
  /// Cross-session lane fusion (docs/perf.md): when true each shard runs a
  /// FusionEngine and offers every session's search to it; small searches
  /// are multiplexed into shared full-width hash batches, large ones
  /// decline and run the regular backend path. Off by default — the fused
  /// path is verdict- and accounting-identical, but the knob keeps the
  /// seed behavior bit-for-bit reproducible.
  bool fusion_enabled = false;
  /// Admission cap for fusion, in modeled ball candidates (d0 + shells).
  /// The default absorbs d <= 2 over 256 bits and declines d >= 3.
  u64 fusion_threshold = u64{1} << 16;
  /// Lane slots per fused batch (clamped to hash::kMaxTaggedLanes).
  int fusion_lanes = 32;
  /// Within-shell search order for every session this server runs. Unset
  /// defers to the CA's own CaConfig::search_order; kReliability turns on
  /// maximum-likelihood-first enumeration for devices whose enrollment
  /// records carry reliability profiles (others stay canonical).
  std::optional<SearchOrder> search_order{};
  /// Session tracing (docs/server.md "Observability"): each shard keeps a
  /// lock-free ring of per-session span records — admission, queue wait,
  /// search shells, retransmits, fusion residency, verdict. Off by default:
  /// the untraced server is byte-identical to the traced one in verdicts
  /// and accounting (tracing touches no RNG stream), but the knob keeps
  /// the hot path down to one null-pointer test per coarse event.
  bool trace_enabled = false;
  /// Per-shard trace ring capacity in events (rounded up to a power of
  /// two). A d<=2 solo session emits ~5 records; size for the window of
  /// history flight recordings should be able to reconstruct.
  int trace_ring_events = 4096;
  /// Flight recorder (obs/flight_recorder.hpp): capture failed sessions —
  /// transport failure, deadline expiry, unauthenticated completion — with
  /// their net_salt replay key and (when tracing is on) span timeline.
  bool flight_recorder = false;
  /// Bound on retained flight records across the server (oldest evicted).
  int max_flight_records = 64;
};

/// Why a session failed (SessionOutcome::reject_reason). The first three
/// are admission-time refusals; kTransportFailure is the one reason set on
/// a COMPLETED outcome (accepted=true): the exchange exhausted its
/// retransmit budget against the fault plan, and the driver resolved the
/// session instead of hanging on a dead link.
enum class RejectReason : u8 {
  kNone = 0,       // not rejected
  kQueueFull,      // the shard's admission queue slice was full
  kShutdown,       // server already shut down
  kInfeasible,     // budget cannot cover modeled comm + minimum search
  kTransportFailure,  // retransmits exhausted mid-exchange (completed)
};

/// What became of one submitted session.
struct SessionOutcome {
  u64 device_id = 0;
  bool accepted = false;       // false: rejected at admission
  RejectReason reject_reason = RejectReason::kNone;
  bool authenticated = false;
  bool timed_out = false;      // threshold T expired (queued or searching)
  bool cancelled = false;      // shut down while still queued
  bool transport_failed = false;  // exchange abandoned: retries exhausted
  /// The fault-stream salt this session's channel drew from: replaying with
  /// FaultPlan(cfg.fault, cfg.fault_seed).fork(net_salt) reproduces every
  /// drop/corruption/stall the session saw.
  u64 net_salt = 0;
  double queue_wait_s = 0.0;   // admission -> driver pickup
  double session_s = 0.0;      // admission -> completion, wall clock
  SessionReport report;        // full Table-5 decomposition (when run)
};

/// Point-in-time operational snapshot, aggregated across shards.
///
/// Counter invariant at quiescence (no queued or in-flight sessions):
///   submitted == rejected + completed
/// with shed_infeasible <= rejected and cancelled + timed_out counted
/// inside completed. Percentiles are reservoir estimates (bounded memory;
/// see ReservoirSample for the approximation bound); the mean is exact.
struct ServerStats {
  u64 submitted = 0;
  u64 rejected = 0;         // shed at admission (all reasons)
  u64 shed_infeasible = 0;  // ...of which: deadline-infeasible at submit
  u64 completed = 0;        // sessions fully processed (any verdict)
  u64 authenticated = 0;
  u64 timed_out = 0;
  u64 cancelled = 0;        // cancelled in queue by shutdown
  u64 transport_failed = 0;  // completed, but retransmits exhausted
  u64 retransmits = 0;       // ARQ retransmissions across all sessions
  u64 frames_dropped = 0;    // frames the fault plans swallowed
  u64 frames_corrupted = 0;  // frames bit-flipped in flight
  u64 frames_duplicated = 0; // extra copies the fault plans delivered
  u64 frames_reordered = 0;  // frames that overtook queued ones
  u64 frames_stalled = 0;    // frames that drew an extra stall
  u64 link_timeouts = 0;     // ARQ response timeouts charged
  int queue_depth = 0;      // sessions admitted, not yet picked up
  int in_flight = 0;        // sessions currently on a driver
  int shards = 1;
  u64 device_states = 0;    // retained per-device lock states, all shards
  double mean_session_s = 0.0;
  double p50_session_s = 0.0;
  double p95_session_s = 0.0;
  /// Lane-fusion counters (zero unless cfg.fusion_enabled), summed across
  /// the shards' engines. lane_occupancy = fusion_lanes_filled /
  /// fusion_lanes_issued — the fraction of dealt lane slots that carried a
  /// candidate (0 when no fused batch ran).
  u64 fused_sessions = 0;
  u64 fusion_declined = 0;
  u64 fusion_batches = 0;
  u64 fusion_lanes_filled = 0;
  u64 fusion_lanes_issued = 0;
  double lane_occupancy = 0.0;
  /// Search-order observability: over authenticated sessions, the mean hit
  /// rank (seeds_hashed — where the search actually stopped) vs the mean
  /// canonical rank (where the canonical order would have stopped). Under
  /// kCanonical the two coincide; under kReliability their ratio is the
  /// realized expected-case saving.
  u64 ranked_sessions = 0;     // authenticated sessions with rank data
  double mean_hit_rank = 0.0;
  double mean_canonical_rank = 0.0;
  /// Process-wide ShellMaskCache counters (shared by ALL servers and solo
  /// streams in the process, not just this server's sessions).
  u64 shell_cache_hits = 0;
  u64 shell_cache_misses = 0;
  u64 shell_cache_evictions = 0;
  u64 shell_cache_masks = 0;
  /// Observability subsystem counters (zero unless cfg.trace_enabled /
  /// cfg.flight_recorder): ring records published and overwritten across
  /// the shards' rings, and failures the flight recorder ever captured.
  u64 trace_events_recorded = 0;
  u64 trace_events_dropped = 0;
  u64 flight_records = 0;
};

class Shard {
 public:
  /// `queue_depth`/`drivers` are this shard's slice of the server totals;
  /// `recorder` is the server-wide flight recorder (nullptr when off).
  Shard(const ServerConfig& cfg, int index, int num_shards, int queue_depth,
        int drivers, CertificateAuthority* ca, RegistrationAuthority* ra,
        obs::FlightRecorder* recorder = nullptr);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Admits one session for `client` (which must route to this shard) with
  /// the given threshold budget. Returns a future; rejected sessions
  /// resolve immediately. The default fault-stream salt mixes the device id
  /// with the shard's admission sequence; chaos harnesses pass an explicit
  /// salt via the 3-arg overload so runs replay independent of routing.
  std::future<SessionOutcome> submit(Client* client, double budget_s);
  std::future<SessionOutcome> submit(Client* client, double budget_s,
                                     u64 net_salt);

  /// One shard's contribution to the aggregate ServerStats.
  struct StatsSlice {
    u64 submitted = 0;
    u64 rejected = 0;
    u64 shed_infeasible = 0;
    u64 completed = 0;
    u64 authenticated = 0;
    u64 timed_out = 0;
    u64 cancelled = 0;
    u64 transport_failed = 0;
    u64 retransmits = 0;
    u64 frames_dropped = 0;
    u64 frames_corrupted = 0;
    u64 frames_duplicated = 0;
    u64 frames_reordered = 0;
    u64 frames_stalled = 0;
    u64 link_timeouts = 0;
    u64 trace_events_recorded = 0;
    u64 trace_events_dropped = 0;
    int queue_depth = 0;
    int in_flight = 0;
    std::size_t device_states = 0;
    double session_time_sum = 0.0;
    u64 fused_sessions = 0;
    u64 fusion_declined = 0;
    u64 fusion_batches = 0;
    u64 fusion_lanes_filled = 0;
    u64 fusion_lanes_issued = 0;
    u64 ranked_sessions = 0;
    u64 hit_rank_sum = 0;
    u64 canonical_rank_sum = 0;
    ReservoirSample session_times{1};  // copy of the shard's reservoir
  };
  StatsSlice stats_slice() const;

  /// This shard's trace ring (nullptr unless cfg.trace_enabled). Snapshots
  /// are lock-free and safe at any lifecycle point.
  const obs::TraceRing* trace_ring() const noexcept { return ring_.get(); }

  /// Stops accepting work, cancels queued sessions (completing them as
  /// cancelled so the counter invariant holds), joins the drivers.
  void shutdown();

 private:
  struct Session {
    Client* client = nullptr;
    par::SearchContext ctx;
    WallTimer admitted;  // wall clock since admission
    u64 seq = 0;         // admission order, the EDF tie-break
    u64 net_salt = 0;    // fault-stream fork salt (seed reproducibility)
    double budget_s = 0.0;  // the threshold T this session was given
    obs::SessionTrace trace;  // disabled unless the shard armed it
    std::promise<SessionOutcome> promise;
    Session(Client* c, double budget, u64 sequence, u64 salt)
        : client(c),
          ctx(par::SearchContext::with_budget(budget)),
          seq(sequence),
          net_salt(salt),
          budget_s(budget) {}
  };

  /// Max-heap comparator for std::push_heap: true when `a` should be
  /// scheduled AFTER `b` (later deadline; admission order breaks ties).
  struct LaterDeadline {
    bool operator()(const std::unique_ptr<Session>& a,
                    const std::unique_ptr<Session>& b) const {
      if (a->ctx.deadline() != b->ctx.deadline())
        return a->ctx.deadline() > b->ctx.deadline();
      return a->seq > b->seq;
    }
  };

  void driver_loop();
  void run_session(Session& session);
  /// Captures a failed session into the server-wide flight recorder (no-op
  /// when none is attached or the session authenticated).
  void maybe_flight_record(const Session& session,
                           const SessionOutcome& outcome);
  /// `on_driver` distinguishes outcomes completing on a driver thread
  /// (which decrement in_flight_) from queue-cancelled ones (which were
  /// never in flight).
  void record_outcome(const SessionOutcome& outcome, bool on_driver);
  std::shared_ptr<std::mutex> acquire_device_lock(u64 device_id);
  void evict_idle_devices_locked();

  ServerConfig cfg_;
  int index_ = 0;
  int queue_depth_ = 1;
  CertificateAuthority::ShardView ca_view_;
  RegistrationAuthority::ShardView ra_view_;
  net::LatencyModel base_latency_;
  /// Shared across shards by construction (same cfg seed, no shard salt):
  /// per-session plans depend only on (fault_seed, net_salt).
  net::FaultPlan base_faults_;
  /// Per-shard fused batch engine (cfg.fusion_enabled); drivers offer every
  /// session's search to it through the SearchOffload seam. Shut down AFTER
  /// the drivers join — in-flight sessions block on its futures.
  std::unique_ptr<FusionEngine> fusion_;
  /// Per-shard span ring (cfg.trace_enabled) and the server-wide flight
  /// recorder (owned by AuthServer; nullptr when off).
  std::unique_ptr<obs::TraceRing> ring_;
  obs::FlightRecorder* recorder_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable cv_queue_;
  /// EDF priority queue (std::*_heap over a vector; earliest deadline on
  /// top). Replaces the FIFO deque.
  std::vector<std::unique_ptr<Session>> queue_;
  u64 next_seq_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> drivers_;

  /// Per-device serialization, bounded: LRU-evicted once past
  /// max_device_states (only idle entries — a lock held by a running
  /// session is pinned by its shared_ptr use count).
  struct DeviceSlot {
    std::shared_ptr<std::mutex> lock;
    u64 last_used = 0;
  };
  mutable std::mutex devices_mutex_;
  std::unordered_map<u64, DeviceSlot> devices_;
  u64 device_seq_ = 0;

  /// This shard's stats stripe.
  mutable std::mutex stats_mutex_;
  u64 submitted_ = 0;
  u64 rejected_ = 0;
  u64 shed_infeasible_ = 0;
  u64 completed_ = 0;
  u64 authenticated_ = 0;
  u64 timed_out_ = 0;
  u64 cancelled_ = 0;
  u64 transport_failed_ = 0;
  u64 retransmits_ = 0;
  u64 frames_dropped_ = 0;
  u64 frames_corrupted_ = 0;
  u64 frames_duplicated_ = 0;
  u64 frames_reordered_ = 0;
  u64 frames_stalled_ = 0;
  u64 link_timeouts_ = 0;
  int in_flight_ = 0;
  double session_time_sum_ = 0.0;
  u64 ranked_sessions_ = 0;
  u64 hit_rank_sum_ = 0;
  u64 canonical_rank_sum_ = 0;
  ReservoirSample session_times_;
};

}  // namespace rbc::server
