#include "server/shard.hpp"

#include <algorithm>

namespace rbc::server {

namespace {

/// kVerdict span detail code from a completed outcome's classification.
obs::Verdict verdict_of(const SessionOutcome& outcome) {
  if (outcome.authenticated) return obs::Verdict::kAuthenticated;
  if (outcome.timed_out) return obs::Verdict::kTimedOut;
  if (outcome.transport_failed) return obs::Verdict::kTransportFailed;
  if (outcome.cancelled) return obs::Verdict::kCancelled;
  return obs::Verdict::kFailed;
}

}  // namespace

Shard::Shard(const ServerConfig& cfg, int index, int num_shards,
             int queue_depth, int drivers, CertificateAuthority* ca,
             RegistrationAuthority* ra, obs::FlightRecorder* recorder)
    : cfg_(cfg),
      index_(index),
      queue_depth_(queue_depth),
      ca_view_(ca->shard_view(static_cast<u32>(index),
                              static_cast<u32>(num_shards))),
      ra_view_(ra->shard_view(static_cast<u32>(index),
                              static_cast<u32>(num_shards))),
      base_latency_(cfg.per_message_latency_s, cfg.per_message_jitter_s,
                    u64{0x1a7e0000} + static_cast<u64>(index)),
      base_faults_(cfg.fault, cfg.fault_seed),
      session_times_(512, u64{0x5e55} + static_cast<u64>(index)) {
  RBC_CHECK_MSG(queue_depth >= 1, "shard admission queue needs capacity");
  RBC_CHECK_MSG(drivers >= 1, "shard needs at least one session driver");
  RBC_CHECK(cfg_.session_budget_s > 0.0);
  RBC_CHECK_MSG(cfg_.max_device_states >= 1, "device table needs capacity");
  if (cfg_.fault.active()) cfg_.retry.validate();
  base_latency_.set_realtime(cfg.realtime_comm);
  if (cfg_.trace_enabled) {
    ring_ = std::make_unique<obs::TraceRing>(
        static_cast<std::size_t>(std::max(cfg_.trace_ring_events, 1)));
  }
  recorder_ = recorder;
  if (cfg_.fusion_enabled) {
    FusionConfig fusion_cfg;
    fusion_cfg.threshold_seeds = cfg_.fusion_threshold;
    fusion_cfg.batch_lanes = cfg_.fusion_lanes;
    // Keep more stream slots than this shard has drivers so backfill never
    // starves; the default (kChase382) iterator matches the CA backends'
    // default enumeration order, which the fused accounting depends on.
    fusion_cfg.max_streams = std::max(drivers * 2, 8);
    fusion_ = std::make_unique<FusionEngine>(fusion_cfg);
  }
  drivers_.reserve(static_cast<std::size_t>(drivers));
  for (int i = 0; i < drivers; ++i)
    drivers_.emplace_back([this] { driver_loop(); });
}

Shard::~Shard() { shutdown(); }

std::future<SessionOutcome> Shard::submit(Client* client, double budget_s) {
  RBC_CHECK(client != nullptr);
  // Default salt: device id mixed with this shard's admission sequence.
  // Deterministic for sequential submitters; chaos harnesses that need
  // routing-independent replay pass an explicit salt instead.
  u64 seq_now;
  {
    std::lock_guard lock(mutex_);
    seq_now = next_seq_;
  }
  return submit(client, budget_s,
                mix_device_id(client->config().device_id) ^ seq_now);
}

std::future<SessionOutcome> Shard::submit(Client* client, double budget_s,
                                          u64 net_salt) {
  RBC_CHECK(client != nullptr);
  RBC_CHECK_MSG(budget_s > 0.0, "session budget must be positive");

  SessionOutcome rejection;
  rejection.device_id = client->config().device_id;
  rejection.accepted = false;
  rejection.net_salt = net_salt;

  // Feasibility shed: the deadline clock starts NOW; if the budget cannot
  // even cover the modeled communication floor (4 messages + the PUF read,
  // counted only in realtime mode where comm spends wall clock) plus the
  // configured minimum search time, admitting the session only burns
  // cycles it is guaranteed to time out on.
  double floor_s = cfg_.min_search_time_s;
  if (cfg_.realtime_comm) {
    floor_s += 4.0 * cfg_.per_message_latency_s +
               client->config().puf_read_time_s;
  }

  auto session = std::make_unique<Session>(client, budget_s, 0, net_salt);
  std::future<SessionOutcome> future = session->promise.get_future();

  {
    std::lock_guard lock(mutex_);
    std::lock_guard stats_lock(stats_mutex_);
    ++submitted_;
    RejectReason reason = RejectReason::kNone;
    if (shutdown_) {
      reason = RejectReason::kShutdown;
    } else if (session->ctx.remaining_s() < floor_s) {
      reason = RejectReason::kInfeasible;
      ++shed_infeasible_;
    } else if (queue_.size() >= static_cast<std::size_t>(queue_depth_)) {
      // Backpressure: shed at admission, before any search cycles burn.
      reason = RejectReason::kQueueFull;
    }
    if (reason != RejectReason::kNone) {
      ++rejected_;
      rejection.reject_reason = reason;
      // Admission event even for refusals: a shed session's only trace IS
      // this record (detail = RejectReason, value = queue depth at refusal).
      if (ring_) {
        obs::SessionTrace(ring_.get(), net_salt, rejection.device_id,
                          static_cast<u32>(index_))
            .event(obs::SpanKind::kAdmission, static_cast<u32>(reason),
                   queue_.size());
      }
      session->promise.set_value(rejection);
      return future;
    }
    session->seq = next_seq_++;
    if (ring_) {
      obs::SessionTrace(ring_.get(), net_salt, rejection.device_id,
                        static_cast<u32>(index_))
          .event(obs::SpanKind::kAdmission,
                 static_cast<u32>(RejectReason::kNone), queue_.size());
    }
    queue_.push_back(std::move(session));
    std::push_heap(queue_.begin(), queue_.end(), LaterDeadline{});
  }
  cv_queue_.notify_one();
  return future;
}

void Shard::driver_loop() {
  while (true) {
    std::unique_ptr<Session> session;
    {
      std::unique_lock lock(mutex_);
      cv_queue_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      // EDF pickup: the queued session with the EARLIEST deadline runs
      // next, so a tight-threshold session overtakes slack ones instead of
      // expiring behind them in FIFO order.
      std::pop_heap(queue_.begin(), queue_.end(), LaterDeadline{});
      session = std::move(queue_.back());
      queue_.pop_back();
    }
    {
      std::lock_guard stats_lock(stats_mutex_);
      ++in_flight_;
    }
    run_session(*session);  // record_outcome drops in_flight_ BEFORE the
                            // promise resolves, so a caller who just got its
                            // outcome never reads a stale in-flight count
  }
}

std::shared_ptr<std::mutex> Shard::acquire_device_lock(u64 device_id) {
  std::lock_guard lock(devices_mutex_);
  DeviceSlot& slot = devices_[device_id];
  if (!slot.lock) slot.lock = std::make_shared<std::mutex>();
  slot.last_used = ++device_seq_;
  std::shared_ptr<std::mutex> handle = slot.lock;
  if (devices_.size() > static_cast<std::size_t>(cfg_.max_device_states))
    evict_idle_devices_locked();
  return handle;
}

void Shard::evict_idle_devices_locked() {
  // Collect idle entries (no session holds the lock: our table's shared_ptr
  // is the only reference) oldest-first and erase until back under the cap.
  // Busy devices are pinned, so the table can transiently exceed the cap by
  // the number of in-flight sessions — the bound operators care about.
  std::vector<std::pair<u64, u64>> idle;  // (last_used, device_id)
  for (const auto& [device_id, slot] : devices_) {
    if (slot.lock.use_count() == 1) idle.emplace_back(slot.last_used, device_id);
  }
  std::sort(idle.begin(), idle.end());
  const std::size_t cap = static_cast<std::size_t>(cfg_.max_device_states);
  for (const auto& [unused_seq, device_id] : idle) {
    if (devices_.size() <= cap) break;
    devices_.erase(device_id);
  }
}

void Shard::run_session(Session& session) {
  SessionOutcome outcome;
  outcome.device_id = session.client->config().device_id;
  outcome.accepted = true;
  outcome.net_salt = session.net_salt;
  outcome.queue_wait_s = session.admitted.elapsed_s();

  // Arm the session's trace: the handle lives in the Session (stable heap
  // object) and rides the SearchContext through the protocol, search and
  // fusion layers. Null ring = everything below stays a no-op.
  if (ring_) {
    session.trace = obs::SessionTrace(ring_.get(), session.net_salt,
                                      outcome.device_id,
                                      static_cast<u32>(index_));
    session.trace.span_ending_now(obs::SpanKind::kQueueWait,
                                  outcome.queue_wait_s, 0, session.seq);
    session.ctx.set_trace(&session.trace);
  }

  // The budget started at admission; a session that waited past its
  // threshold is reported timed out without spending search cycles.
  if (!session.ctx.check_deadline()) {
    // Per-device serialization: interleaved sessions for one device would
    // race the enrollment image read against the RA key rotation. The lock
    // lives in THIS shard's bounded table — routing guarantees every
    // session for the device lands here.
    const std::shared_ptr<std::mutex> device_lock =
        acquire_device_lock(outcome.device_id);
    std::lock_guard device_guard(*device_lock);
    // Lossy-network drill: fork this session's fault stream from the shared
    // base plan. The fork is a pure function of (fault_seed, net_salt), so
    // the session replays identically on any shard layout.
    LinkOptions link_opts;
    const LinkOptions* link = nullptr;
    if (cfg_.fault.active()) {
      link_opts.faults = base_faults_.fork(session.net_salt);
      link_opts.retry = cfg_.retry;
      link = &link_opts;
    }
    outcome.report =
        run_authentication(*session.client, ca_view_, ra_view_,
                           base_latency_.fork(session.seq), &session.ctx,
                           link, fusion_.get(), cfg_.search_order);
    outcome.authenticated = outcome.report.result.authenticated;
  }
  outcome.timed_out = session.ctx.timed_out() ||
                      outcome.report.result.timed_out;
  // Graceful degradation, not a hung driver: an exchange that exhausted its
  // retransmit budget completes with a typed failure reason. A deadline
  // expiry mid-retry stays classified as a timeout.
  outcome.transport_failed = outcome.report.transport_failed &&
                             !outcome.timed_out;
  if (outcome.transport_failed)
    outcome.reject_reason = RejectReason::kTransportFailure;
  outcome.session_s = session.admitted.elapsed_s();

  if (ring_) {
    // Verdict span covers driver pickup -> resolution; vclock is the
    // simulated channel's logical seconds (the protocol-model bill).
    session.trace.span_ending_now(
        obs::SpanKind::kVerdict, outcome.session_s - outcome.queue_wait_s,
        static_cast<u32>(verdict_of(outcome)),
        outcome.report.engine.result.seeds_hashed, outcome.report.comm_time_s);
    session.ctx.set_trace(nullptr);
  }
  maybe_flight_record(session, outcome);

  record_outcome(outcome, /*on_driver=*/true);
  session.promise.set_value(std::move(outcome));
}

void Shard::maybe_flight_record(const Session& session,
                                const SessionOutcome& outcome) {
  if (recorder_ == nullptr) return;
  // Capture the failures worth replaying: a transport failure, a deadline
  // expiry, an unauthenticated completion, or a shutdown cancellation.
  // Authenticated sessions leave no record — the recorder is a black box
  // for crashes, not an audit log.
  if (outcome.authenticated) return;
  obs::FlightRecord record;
  record.device_id = outcome.device_id;
  record.net_salt = outcome.net_salt;
  record.fault_seed = cfg_.fault_seed;
  record.shard = static_cast<u32>(index_);
  if (outcome.transport_failed) {
    record.reason = "transport_failure";
  } else if (outcome.timed_out) {
    record.reason = "deadline_expired";
  } else if (outcome.cancelled) {
    record.reason = "cancelled";
  } else {
    record.reason = "auth_failed";
  }
  record.session_budget_s = session.budget_s;
  record.queue_wait_s = outcome.queue_wait_s;
  record.session_s = outcome.session_s;
  record.retransmits = outcome.report.link.retransmits;
  record.frames_dropped = outcome.report.link.dropped;
  record.injected_faults = outcome.report.link.injected_faults();
  if (ring_) record.timeline = ring_->session_events(session.net_salt);
  recorder_->record(std::move(record));
}

void Shard::record_outcome(const SessionOutcome& outcome, bool on_driver) {
  std::lock_guard lock(stats_mutex_);
  if (on_driver) --in_flight_;
  ++completed_;
  if (outcome.authenticated) {
    ++authenticated_;
    // Rank telemetry: where the hit actually landed (seeds hashed this
    // session) versus where canonical enumeration would have placed it.
    ++ranked_sessions_;
    hit_rank_sum_ += outcome.report.engine.result.seeds_hashed;
    canonical_rank_sum_ += outcome.report.engine.result.canonical_rank;
  }
  if (outcome.timed_out) ++timed_out_;
  if (outcome.cancelled) ++cancelled_;
  if (outcome.transport_failed) ++transport_failed_;
  retransmits_ += outcome.report.link.retransmits;
  frames_dropped_ += outcome.report.link.dropped;
  frames_corrupted_ += outcome.report.link.corrupted;
  frames_duplicated_ += outcome.report.link.duplicated;
  frames_reordered_ += outcome.report.link.reordered;
  frames_stalled_ += outcome.report.link.stalled;
  link_timeouts_ += outcome.report.link.timeouts;
  session_time_sum_ += outcome.session_s;
  session_times_.add(outcome.session_s);
}

Shard::StatsSlice Shard::stats_slice() const {
  StatsSlice slice;
  {
    std::lock_guard lock(mutex_);
    slice.queue_depth = static_cast<int>(queue_.size());
  }
  {
    std::lock_guard lock(stats_mutex_);
    slice.submitted = submitted_;
    slice.rejected = rejected_;
    slice.shed_infeasible = shed_infeasible_;
    slice.completed = completed_;
    slice.authenticated = authenticated_;
    slice.timed_out = timed_out_;
    slice.cancelled = cancelled_;
    slice.transport_failed = transport_failed_;
    slice.retransmits = retransmits_;
    slice.frames_dropped = frames_dropped_;
    slice.frames_corrupted = frames_corrupted_;
    slice.frames_duplicated = frames_duplicated_;
    slice.frames_reordered = frames_reordered_;
    slice.frames_stalled = frames_stalled_;
    slice.link_timeouts = link_timeouts_;
    slice.in_flight = in_flight_;
    slice.ranked_sessions = ranked_sessions_;
    slice.hit_rank_sum = hit_rank_sum_;
    slice.canonical_rank_sum = canonical_rank_sum_;
    slice.session_time_sum = session_time_sum_;
    slice.session_times = session_times_;
  }
  {
    std::lock_guard lock(devices_mutex_);
    slice.device_states = devices_.size();
  }
  if (fusion_) {
    const FusionStats fusion = fusion_->stats();
    slice.fused_sessions = fusion.fused_sessions;
    slice.fusion_declined = fusion.declined;
    slice.fusion_batches = fusion.batch_count;
    slice.fusion_lanes_filled = fusion.lanes_filled;
    slice.fusion_lanes_issued = fusion.lanes_issued;
  }
  if (ring_) {
    slice.trace_events_recorded = ring_->recorded();
    slice.trace_events_dropped = ring_->dropped();
  }
  return slice;
}

void Shard::shutdown() {
  std::vector<std::unique_ptr<Session>> orphans;
  {
    std::lock_guard lock(mutex_);
    if (shutdown_) return;  // first caller joins; the dtor re-call no-ops
    shutdown_ = true;
    // Cancel sessions still queued; drivers drain in-flight work only.
    orphans.swap(queue_);
  }
  cv_queue_.notify_all();
  for (auto& session : orphans) {
    session->ctx.cancel();
    SessionOutcome outcome;
    outcome.device_id = session->client->config().device_id;
    outcome.accepted = true;
    outcome.cancelled = true;
    outcome.net_salt = session->net_salt;
    outcome.queue_wait_s = session->admitted.elapsed_s();
    outcome.session_s = session->admitted.elapsed_s();
    if (ring_) {
      // Queue-cancelled sessions never reach run_session; close their
      // timeline here so every admitted session's trace ends in a verdict.
      obs::SessionTrace(ring_.get(), session->net_salt, outcome.device_id,
                        static_cast<u32>(index_))
          .event(obs::SpanKind::kVerdict,
                 static_cast<u32>(obs::Verdict::kCancelled));
    }
    maybe_flight_record(*session, outcome);
    // A cancelled-in-queue session still COMPLETES for accounting purposes:
    // submitted == rejected + completed must reconcile after shutdown (the
    // seed server resolved these futures without counting them anywhere).
    record_outcome(outcome, /*on_driver=*/false);
    session->promise.set_value(std::move(outcome));
  }
  for (auto& driver : drivers_) driver.join();
  drivers_.clear();
  // Only after the drivers join: in-flight sessions block on the engine's
  // futures, so stopping it earlier would deadlock the drain.
  if (fusion_) fusion_->shutdown();
}

}  // namespace rbc::server
