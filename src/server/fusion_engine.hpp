// Cross-session lane fusion: continuous batching of hash work.
//
// The PR-3 batch layer fills a PRIVATE 16-lane block per search, so a small
// session (d <= 2: a few hundred to ~33k candidates) spends most of its
// serving cost on per-session setup — iterator prepare walks, WorkerGroup
// round-trips — and its final ragged block leaves lanes idle exactly when
// the server is busiest. The multi-buffer kernels hash unrelated buffers
// per lane, so nothing requires a batch's lanes to belong to one session.
//
// FusionEngine is the serving-side fix: one engine per shard implements
// rbc::SearchOffload. Driver threads submit a session's search; the engine
// turns it into a resumable TableCandidateStream (O(1) setup against
// process-wide shell mask tables) and a single pump thread deals lane slots
// of shared full-width sha1_seed_multi / sha3_256_seed_multi batches across
// every in-flight stream:
//
//   * admission  — try_search accepts a search when its modeled ball size
//     is at or below cfg.threshold_seeds (and the run queue has room);
//     anything larger, exhaustive-mode searches, and post-shutdown calls
//     decline and fall through to the session's normal backend path.
//   * fairness   — each batch deals lane slots round-robin over the active
//     streams in earliest-deadline-first order, so a tight-deadline stream
//     is served first every batch and no stream starves.
//   * retirement — a stream leaves the batch on match, ball exhaustion,
//     deadline expiry or cancel; its lane slots are backfilled from the
//     remaining streams and the pending queue within the same batch.
//
// Equivalence contract (tested in tests/fusion_test.cpp): for a given
// (S_init, digest) the fused path reports the same verdict, seed, distance
// and the exact same seeds_hashed as the solo single-thread search — the
// stream enumerates in canonical order and counting stops at the match,
// mirroring the solo loop's `counted = i + 1`.
#pragma once

#include <memory>

#include "rbc/engines.hpp"

namespace rbc::server {

struct FusionConfig {
  /// Largest ball (candidate count through max_distance, d0 included) the
  /// engine absorbs; larger searches decline to the tiled solo path. The
  /// default admits SHA-1/SHA-3 balls through d = 2 (32 897 candidates
  /// over 256 bits) and declines d >= 3. Also bounds the shell mask table
  /// memory at ~32 B per candidate.
  u64 threshold_seeds = u64{1} << 16;
  /// Lane slots per fused batch (1..hash::kMaxTaggedLanes). Wider batches
  /// amortize dispatch across more sessions; 32 = two full kernel blocks.
  int batch_lanes = 32;
  /// Bound on streams queued + active; admissions beyond it decline (the
  /// session then runs solo rather than queueing unboundedly).
  int max_streams = 256;
  /// Iterator family whose canonical order the streams reproduce. Must
  /// match the CA backend's iterator or the per-session seeds_hashed of
  /// fused and solo runs diverge (the visit ORDER is the contract).
  sim::IterAlgo iterator = sim::IterAlgo::kChase382;
};

/// Counters behind ServerStats' fusion fields. Occupancy is
/// lanes_filled / lanes_issued: the fraction of dealt lane slots that
/// carried a candidate (idle slots appear only when every stream drained
/// mid-batch with nothing left to backfill from).
struct FusionStats {
  u64 fused_sessions = 0;  // searches absorbed into shared batches
  u64 declined = 0;        // try_search offers that fell through to solo
  u64 batch_count = 0;     // fused multi-lane batches issued
  u64 lanes_filled = 0;    // lane slots that carried a candidate
  u64 lanes_issued = 0;    // lane slots available across issued batches
};

class FusionEngine final : public SearchOffload {
 public:
  explicit FusionEngine(FusionConfig cfg = {});
  ~FusionEngine() override;

  FusionEngine(const FusionEngine&) = delete;
  FusionEngine& operator=(const FusionEngine&) = delete;

  /// Blocking: enqueues the search as a candidate stream and waits for the
  /// pump to retire it. Returns nullopt to decline (see header comment);
  /// the caller then runs its own backend.
  std::optional<EngineReport> try_search(const Seed256& s_init,
                                         ByteSpan digest, hash::HashAlgo algo,
                                         const SearchOptions& opts,
                                         par::SearchContext* session) override;

  FusionStats stats() const;

  /// Declines new work, retires in-flight streams as cancelled, joins the
  /// pump. Idempotent; the destructor calls it. Shards call this AFTER
  /// joining their drivers so in-flight sessions drain normally first.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rbc::server
