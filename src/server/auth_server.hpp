// The concurrent multi-session authentication server.
//
// The paper frames RBC-SALTED from the server's side: a CA "authenticates a
// stream of clients", each within a hard threshold T. AuthServer is that
// stream made concrete — the admission -> schedule -> search -> register
// pipeline over one CA + RA pair:
//
//   * Admission: submit() either enqueues the session or REJECTS it when
//     the bounded queue is full (backpressure — a server past capacity must
//     shed load early, not time sessions out after burning search cycles).
//     The session's SearchContext is created here, so every second spent
//     queued counts against its threshold T.
//   * Scheduling: max_in_flight driver threads pop sessions in admission
//     order. Sessions for the SAME device serialize on a per-device lock
//     (two interleaved searches against one enrollment record would race
//     the RA key rotation); sessions for different devices overlap freely,
//     multiplexing their shell rounds on the shared WorkerGroup.
//   * Search: the driver runs the full protocol exchange; the session's
//     deadline and cancellation propagate through process_digest into the
//     backend via the SearchContext.
//   * Register: step 9 lands in the RA, which serializes internally.
//
// ServerStats is a consistent snapshot for operators: queue depth, sessions
// in flight, admission/rejection/timeout counters and p50/p95 session time.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "parallel/search_context.hpp"
#include "rbc/protocol.hpp"

namespace rbc::server {

struct ServerConfig {
  /// Bounded admission queue; submissions beyond it are rejected.
  int max_queue_depth = 64;
  /// Concurrent session drivers (in-flight authentications).
  int max_in_flight = 4;
  /// Per-session threshold T, seconds of wall clock from ADMISSION — queue
  /// wait, simulated communication and search all spend from this budget.
  double session_budget_s = 20.0;
  /// Latency model applied to each session's simulated channel.
  double per_message_latency_s = 0.15;
  /// When true the channel SLEEPS its latencies in wall-clock time instead
  /// of only charging the logical clock. Overlapping sessions then overlap
  /// their waits exactly as a real server overlaps network I/O — this is
  /// what the throughput bench measures; tests keep it off for speed.
  bool realtime_comm = false;
};

/// What became of one submitted session.
struct SessionOutcome {
  u64 device_id = 0;
  bool accepted = false;       // false: rejected at admission (queue full)
  bool authenticated = false;
  bool timed_out = false;      // threshold T expired (queued or searching)
  double queue_wait_s = 0.0;   // admission -> driver pickup
  double session_s = 0.0;      // admission -> completion, wall clock
  SessionReport report;        // full Table-5 decomposition (when run)
};

/// Point-in-time operational snapshot.
struct ServerStats {
  u64 submitted = 0;
  u64 rejected = 0;       // shed at admission
  u64 completed = 0;      // sessions fully processed (any verdict)
  u64 authenticated = 0;
  u64 timed_out = 0;
  int queue_depth = 0;    // sessions admitted, not yet picked up
  int in_flight = 0;      // sessions currently on a driver
  double mean_session_s = 0.0;
  double p50_session_s = 0.0;
  double p95_session_s = 0.0;
};

class AuthServer {
 public:
  /// The CA and RA must outlive the server. The CA's backend decides the
  /// compute substrate; engines on the shared WorkerGroup let all in-flight
  /// sessions multiplex one set of worker threads.
  AuthServer(ServerConfig cfg, CertificateAuthority* ca,
             RegistrationAuthority* ra);
  ~AuthServer();  // drains the queue (cancelling pending sessions) and joins

  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Admits one authentication session for `client`. Always returns a
  /// future; a rejected session resolves immediately with accepted=false.
  /// The client object must stay alive until the future resolves and must
  /// not be submitted again before then (its PUF-read state is per-session;
  /// per-DEVICE serialization is the server's job, per-CLIENT-object
  /// serialization is the caller's).
  std::future<SessionOutcome> submit(Client* client);

  ServerStats stats() const;

  /// Stops accepting work, cancels queued sessions, joins the drivers.
  /// Idempotent; also run by the destructor.
  void shutdown();

 private:
  struct Session {
    Client* client = nullptr;
    par::SearchContext ctx;
    WallTimer admitted;  // wall clock since admission
    std::promise<SessionOutcome> promise;
    explicit Session(Client* c, double budget_s)
        : client(c), ctx(par::SearchContext::with_budget(budget_s)) {}
  };

  void driver_loop();
  void run_session(Session& session);
  void record_outcome(const SessionOutcome& outcome);

  ServerConfig cfg_;
  CertificateAuthority* ca_;
  RegistrationAuthority* ra_;

  mutable std::mutex mutex_;
  std::condition_variable cv_queue_;
  std::deque<std::unique_ptr<Session>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> drivers_;

  /// Per-device serialization: one lock per device id, created on first use.
  std::mutex device_locks_mutex_;
  std::map<u64, std::shared_ptr<std::mutex>> device_locks_;

  /// Counters and completed-session times (for percentiles).
  mutable std::mutex stats_mutex_;
  u64 submitted_ = 0;
  u64 rejected_ = 0;
  u64 completed_ = 0;
  u64 authenticated_ = 0;
  u64 timed_out_ = 0;
  int in_flight_ = 0;
  std::vector<double> session_times_s_;
};

}  // namespace rbc::server
