// The concurrent multi-session authentication server: a thin router over
// N serving shards.
//
// The paper frames RBC-SALTED from the server's side: a CA "authenticates a
// stream of clients", each within a hard threshold T. AuthServer is that
// stream made concrete at fleet scale — submit() hashes the device id to a
// shard (common/shard_hash.hpp) and the shard runs the whole
// admission -> EDF dispatch -> search -> register pipeline against its own
// queue, drivers, device locks and stats stripe (see server/shard.hpp).
// Search compute stays fully shared: every shard's sessions multiplex the
// one process-wide par::WorkerGroup.
//
// stats() aggregates the shard stripes into one consistent ServerStats
// snapshot; percentiles come from fixed-size per-shard reservoirs merged by
// population weight, so the cost is O(shards * reservoir) no matter how
// many sessions the server has ever completed.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "server/shard.hpp"

namespace rbc::server {

class AuthServer {
 public:
  /// The CA and RA must outlive the server. The CA's backend decides the
  /// compute substrate; engines on the shared WorkerGroup let all in-flight
  /// sessions multiplex one set of worker threads.
  AuthServer(ServerConfig cfg, CertificateAuthority* ca,
             RegistrationAuthority* ra);
  ~AuthServer();  // drains the queues (cancelling pending sessions) and joins

  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Admits one authentication session for `client`, routed to the shard
  /// owning its device id. Always returns a future; a rejected session
  /// resolves immediately with accepted=false and a RejectReason.
  /// The client object must stay alive until the future resolves and must
  /// not be submitted again before then (its PUF-read state is per-session;
  /// per-DEVICE serialization is the server's job, per-CLIENT-object
  /// serialization is the caller's).
  std::future<SessionOutcome> submit(Client* client);

  /// Same, with a per-session threshold budget overriding the configured
  /// session_budget_s. This is what makes EDF dispatch meaningful: with a
  /// uniform budget every deadline is admission + constant and EDF
  /// degenerates to FIFO; a tight-budget session submitted here overtakes
  /// slack ones already queued on its shard.
  std::future<SessionOutcome> submit(Client* client, double budget_s);

  /// Same, additionally pinning the session's fault-stream salt. Chaos
  /// harnesses use this so a run's fault schedule is a pure function of
  /// (cfg.fault_seed, net_salt) — independent of shard count, routing and
  /// admission order — and any failure replays from the salt logged in its
  /// SessionOutcome.
  std::future<SessionOutcome> submit(Client* client, double budget_s,
                                     u64 net_salt);

  /// Consistent aggregate snapshot across all shard stripes. Safe at ANY
  /// lifecycle point — before the first session, mid-chaos, after
  /// shutdown() — empty reservoirs and zero denominators render as the
  /// documented 0.0 sentinels, never an abort.
  ServerStats stats() const;

  /// The stats snapshot flattened into a wire format: Prometheus text
  /// exposition or the rbc.metrics.v1 JSON document (obs/metrics.hpp).
  /// Includes per-shard queue/in-flight gauges as labeled series. Same
  /// lifecycle guarantees as stats().
  std::string export_metrics(
      obs::MetricsFormat format = obs::MetricsFormat::kPrometheus) const;

  /// Merged trace-ring snapshot across shards, ordered by wall start time
  /// (empty unless cfg.trace_enabled). Lock-free with respect to serving.
  std::vector<obs::TraceEvent> trace_events() const;

  /// The server-wide flight recorder (nullptr unless cfg.flight_recorder).
  const obs::FlightRecorder* flight_recorder() const noexcept {
    return recorder_.get();
  }

  /// Which shard serves this device (diagnostics / test support).
  int shard_of_device(u64 device_id) const;
  int num_shards() const noexcept { return static_cast<int>(shards_.size()); }

  /// Stops accepting work, cancels queued sessions (completing them as
  /// cancelled so submitted == rejected + completed reconciles), joins all
  /// shard drivers. Idempotent; also run by the destructor.
  void shutdown();

 private:
  std::vector<Shard::StatsSlice> collect_slices() const;
  ServerStats aggregate(const std::vector<Shard::StatsSlice>& slices) const;

  ServerConfig cfg_;
  /// Created before the shards (they hold raw pointers into it) and
  /// destroyed after them.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rbc::server
