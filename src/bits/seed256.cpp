#include "bits/seed256.hpp"

#include <stdexcept>

#include "common/hex.hpp"

namespace rbc {

Seed256 Seed256::operator<<(int n) const noexcept {
  if (n <= 0) return *this;
  if (n >= kBits) return Seed256{};
  Seed256 r;
  const int word_shift = n >> 6;
  const int bit_shift = n & 63;
  for (int i = kWords - 1; i >= 0; --i) {
    const int src = i - word_shift;
    u64 v = 0;
    if (src >= 0) {
      v = w_[static_cast<unsigned>(src)] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0)
        v |= w_[static_cast<unsigned>(src - 1)] >> (64 - bit_shift);
    }
    r.w_[static_cast<unsigned>(i)] = v;
  }
  return r;
}

Seed256 Seed256::operator>>(int n) const noexcept {
  if (n <= 0) return *this;
  if (n >= kBits) return Seed256{};
  Seed256 r;
  const int word_shift = n >> 6;
  const int bit_shift = n & 63;
  for (int i = 0; i < kWords; ++i) {
    const int src = i + word_shift;
    u64 v = 0;
    if (src < kWords) {
      v = w_[static_cast<unsigned>(src)] >> bit_shift;
      if (bit_shift != 0 && src + 1 < kWords)
        v |= w_[static_cast<unsigned>(src + 1)] << (64 - bit_shift);
    }
    r.w_[static_cast<unsigned>(i)] = v;
  }
  return r;
}

Seed256 Seed256::rotl(int n) const noexcept {
  n = ((n % kBits) + kBits) % kBits;
  if (n == 0) return *this;
  return (*this << n) | (*this >> (kBits - n));
}

std::string Seed256::to_hex() const {
  // Big-endian presentation: highest word first.
  Bytes be(kBytes);
  const auto le = to_bytes();
  for (int i = 0; i < kBytes; ++i)
    be[static_cast<unsigned>(i)] = le[static_cast<unsigned>(kBytes - 1 - i)];
  return rbc::to_hex(be);
}

Seed256 Seed256::from_hex(std::string_view hex) {
  if (hex.size() != 64)
    throw std::invalid_argument("Seed256::from_hex expects 64 hex chars");
  const Bytes be = rbc::from_hex(hex);
  std::array<u8, kBytes> le;
  for (int i = 0; i < kBytes; ++i)
    le[static_cast<unsigned>(i)] = be[static_cast<unsigned>(kBytes - 1 - i)];
  return from_bytes(le);
}

}  // namespace rbc
