// Seed256 — the 256-bit PUF seed / bit-stream type at the heart of RBC.
//
// The paper's protocol operates on 256-bit PUF outputs (§2.2). Seed256 is a
// trivially copyable value type backed by four u64 limbs (little-endian limb
// order: bit i lives in word i/64, bit i%64). It provides:
//   * bit get/set/flip and bulk logic ops (needed to permute seeds),
//   * popcount / Hamming distance (the search metric),
//   * full 256-bit integer arithmetic (add/sub/shl/shr/ctz) so that Gosper's
//     hack — the prior-work seed iterator — runs on non-native 256-bit words
//     exactly as §3.2.1 describes,
//   * 256-bit rotation, the salting primitive of Fig. 1 step 7,
//   * canonical 32-byte little-endian serialization for hashing.
#pragma once

#include <array>
#include <bit>
#include <compare>
#include <cstring>
#include <string>
#include <string_view>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace rbc {

class Seed256 {
 public:
  static constexpr int kBits = 256;
  static constexpr int kWords = 4;
  static constexpr int kBytes = 32;

  constexpr Seed256() noexcept : w_{} {}

  /// Limb constructor; w0 is the least significant 64 bits (bits 0..63).
  constexpr Seed256(u64 w0, u64 w1, u64 w2, u64 w3) noexcept
      : w_{w0, w1, w2, w3} {}

  static constexpr Seed256 zero() noexcept { return Seed256{}; }

  static constexpr Seed256 ones() noexcept {
    return Seed256{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  }

  /// Value 1 — handy for arithmetic identities in tests.
  static constexpr Seed256 one() noexcept { return Seed256{1, 0, 0, 0}; }

  /// A seed with exactly the low `k` bits set (the first Gosper state).
  static constexpr Seed256 low_bits(int k) noexcept {
    Seed256 s;
    for (int i = 0; i < k; ++i) s.set_bit(i);
    return s;
  }

  static Seed256 random(Xoshiro256& rng) noexcept {
    return Seed256{rng.next(), rng.next(), rng.next(), rng.next()};
  }

  // --- bit access -----------------------------------------------------------

  constexpr bool bit(int i) const noexcept {
    return (w_[static_cast<unsigned>(i) >> 6] >> (i & 63)) & 1ULL;
  }

  constexpr void set_bit(int i) noexcept {
    w_[static_cast<unsigned>(i) >> 6] |= (1ULL << (i & 63));
  }

  constexpr void clear_bit(int i) noexcept {
    w_[static_cast<unsigned>(i) >> 6] &= ~(1ULL << (i & 63));
  }

  constexpr void flip_bit(int i) noexcept {
    w_[static_cast<unsigned>(i) >> 6] ^= (1ULL << (i & 63));
  }

  constexpr u64 word(int i) const noexcept { return w_[static_cast<unsigned>(i)]; }
  constexpr u64& word(int i) noexcept { return w_[static_cast<unsigned>(i)]; }

  // --- logic ----------------------------------------------------------------

  friend constexpr Seed256 operator^(Seed256 a, const Seed256& b) noexcept {
    for (int i = 0; i < kWords; ++i) a.w_[static_cast<unsigned>(i)] ^= b.w_[static_cast<unsigned>(i)];
    return a;
  }
  friend constexpr Seed256 operator&(Seed256 a, const Seed256& b) noexcept {
    for (int i = 0; i < kWords; ++i) a.w_[static_cast<unsigned>(i)] &= b.w_[static_cast<unsigned>(i)];
    return a;
  }
  friend constexpr Seed256 operator|(Seed256 a, const Seed256& b) noexcept {
    for (int i = 0; i < kWords; ++i) a.w_[static_cast<unsigned>(i)] |= b.w_[static_cast<unsigned>(i)];
    return a;
  }
  constexpr Seed256 operator~() const noexcept {
    return Seed256{~w_[0], ~w_[1], ~w_[2], ~w_[3]};
  }
  Seed256& operator^=(const Seed256& b) noexcept { return *this = *this ^ b; }
  Seed256& operator&=(const Seed256& b) noexcept { return *this = *this & b; }
  Seed256& operator|=(const Seed256& b) noexcept { return *this = *this | b; }

  // --- metrics --------------------------------------------------------------

  constexpr int popcount() const noexcept {
    int c = 0;
    for (u64 w : w_) c += std::popcount(w);
    return c;
  }

  friend constexpr int hamming_distance(const Seed256& a,
                                        const Seed256& b) noexcept {
    return (a ^ b).popcount();
  }

  constexpr bool is_zero() const noexcept {
    return (w_[0] | w_[1] | w_[2] | w_[3]) == 0;
  }

  /// Index of the lowest set bit; 256 if the value is zero.
  constexpr int count_trailing_zeros() const noexcept {
    for (int i = 0; i < kWords; ++i) {
      if (w_[static_cast<unsigned>(i)] != 0)
        return 64 * i + std::countr_zero(w_[static_cast<unsigned>(i)]);
    }
    return kBits;
  }

  /// Index of the highest set bit; -1 if the value is zero.
  constexpr int highest_set_bit() const noexcept {
    for (int i = kWords - 1; i >= 0; --i) {
      if (w_[static_cast<unsigned>(i)] != 0)
        return 64 * i + 63 - std::countl_zero(w_[static_cast<unsigned>(i)]);
    }
    return -1;
  }

  // --- 256-bit integer arithmetic (mod 2^256) -------------------------------

  friend Seed256 operator+(const Seed256& a, const Seed256& b) noexcept {
    Seed256 r;
    u64 carry = 0;
    for (int i = 0; i < kWords; ++i) {
      const u128 s = static_cast<u128>(a.w_[static_cast<unsigned>(i)]) +
                     b.w_[static_cast<unsigned>(i)] + carry;
      r.w_[static_cast<unsigned>(i)] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    return r;
  }

  friend Seed256 operator-(const Seed256& a, const Seed256& b) noexcept {
    return a + (~b) + one();
  }

  /// Two's complement negation: -x mod 2^256.
  Seed256 negate() const noexcept { return Seed256{} - *this; }

  Seed256 operator<<(int n) const noexcept;
  Seed256 operator>>(int n) const noexcept;

  /// Rotate left by n bits (n in [0, 256)). This is the paper's salting
  /// primitive (Fig. 1 step 7: "S is bit shifted" to create S').
  Seed256 rotl(int n) const noexcept;
  Seed256 rotr(int n) const noexcept { return rotl((kBits - n) % kBits); }

  // --- comparisons ----------------------------------------------------------

  friend constexpr bool operator==(const Seed256& a,
                                   const Seed256& b) noexcept = default;

  friend constexpr std::strong_ordering operator<=>(const Seed256& a,
                                                    const Seed256& b) noexcept {
    for (int i = kWords - 1; i >= 0; --i) {
      if (a.w_[static_cast<unsigned>(i)] != b.w_[static_cast<unsigned>(i)])
        return a.w_[static_cast<unsigned>(i)] <=> b.w_[static_cast<unsigned>(i)];
    }
    return std::strong_ordering::equal;
  }

  // --- serialization --------------------------------------------------------

  /// Canonical 32-byte little-endian encoding (byte j of word i at offset
  /// 8*i + j). This is the exact message hashed by the protocol.
  std::array<u8, kBytes> to_bytes() const noexcept {
    std::array<u8, kBytes> out;
    std::memcpy(out.data(), w_.data(), kBytes);
    return out;
  }

  static Seed256 from_bytes(ByteSpan bytes) {
    RBC_CHECK_MSG(bytes.size() == kBytes, "Seed256 requires 32 bytes");
    Seed256 s;
    std::memcpy(s.w_.data(), bytes.data(), kBytes);
    return s;
  }

  /// 64 hex chars, most significant nibble first.
  std::string to_hex() const;
  static Seed256 from_hex(std::string_view hex);

 private:
  std::array<u64, kWords> w_;
};

/// Flips bit `i` of `s` and returns the result (non-mutating convenience).
constexpr Seed256 with_flipped_bit(Seed256 s, int i) noexcept {
  s.flip_bit(i);
  return s;
}

}  // namespace rbc
