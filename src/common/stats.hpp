// Streaming and batch statistics used by the trial harness and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc {

/// Welford's online mean/variance — numerically stable single-pass moments.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  u64 count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between order statistics
/// (inclusive method). q in [0, 1]. The input need not be sorted.
///
/// An EMPTY sample returns the 0.0 sentinel instead of aborting: stats
/// snapshots are taken at arbitrary lifecycle points (before the first
/// session completes, mid-chaos, post-shutdown) and a diagnostics read
/// must never kill the process. Callers that need to distinguish "no
/// samples" from "all samples were zero" check count()/empty() first —
/// the convention every ServerStats consumer already follows (a zeroed
/// percentile next to completed == 0 reads as "no data yet").
inline double percentile(const std::vector<double>& sample, double q) {
  RBC_CHECK(q >= 0.0 && q <= 1.0);
  if (sample.empty()) return 0.0;
  std::vector<double> values = sample;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

/// Bounded-memory percentile estimator: Vitter's Algorithm R over a
/// fixed-capacity reservoir.
///
/// The first `capacity` observations are retained exactly (percentiles are
/// then exact); beyond that, each new observation replaces a uniformly
/// random slot with probability capacity/n, so the reservoir stays a uniform
/// sample of everything seen. Approximation bound: a quantile q estimated
/// from K uniform samples has standard error ~= sqrt(q(1-q)/K) in RANK
/// terms — with the default K = 512 that is ~2.2 percentile points at the
/// median and ~1.0 at p95, independent of how many observations streamed
/// through. Replaces the former unbounded sample vectors whose O(n log n)
/// percentile scans ran under the server's stats locks.
///
/// Replacement randomness is a deterministic SplitMix64 stream seeded at
/// construction, so runs are reproducible. Not internally synchronized —
/// callers serialize add() exactly as they would a counter.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity = 512, u64 seed = 0x5a3317ULL)
      : capacity_(capacity), rng_state_(seed) {
    RBC_CHECK_MSG(capacity >= 1, "reservoir needs at least one slot");
    samples_.reserve(capacity);
  }

  void add(double x) {
    ++n_;
    if (samples_.size() < capacity_) {
      samples_.push_back(x);
      return;
    }
    // Replace slot j ~ U[0, n) if it lands inside the reservoir.
    const u64 j = next_u64() % n_;
    if (j < capacity_) samples_[static_cast<std::size_t>(j)] = x;
  }

  /// Total observations streamed through (not the retained count).
  u64 count() const noexcept { return n_; }
  /// Retained sample count: min(count, capacity).
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  std::size_t capacity() const noexcept { return capacity_; }
  const std::vector<double>& samples() const noexcept { return samples_; }

  /// Percentile over the retained sample (exact while count <= capacity).
  /// Empty reservoirs return the documented 0.0 sentinel (see
  /// rbc::percentile) — check empty() when "no data" must be distinct.
  double percentile(double q) const { return rbc::percentile(samples_, q); }

 private:
  u64 next_u64() noexcept {
    // SplitMix64 step (see common/rng.hpp); inlined to keep this header
    // free of the generator dependency.
    u64 z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::size_t capacity_;
  u64 rng_state_;
  u64 n_ = 0;
  std::vector<double> samples_;
};

/// Percentile of the UNION of several reservoirs, each weighted by the
/// population it represents: a reservoir that saw n observations with k
/// retained contributes weight n/k per sample. This is how the sharded
/// server aggregates per-shard session-time reservoirs into one consistent
/// p50/p95 without ever concatenating unbounded histories.
///
/// No reservoirs — or only empty ones — return the 0.0 sentinel for the
/// same reason rbc::percentile does: a pre-traffic or mid-lifecycle stats
/// snapshot must be safe, not fatal.
inline double merged_percentile(
    const std::vector<const ReservoirSample*>& reservoirs, double q) {
  RBC_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<std::pair<double, double>> weighted;  // (value, weight)
  double total_weight = 0.0;
  for (const ReservoirSample* r : reservoirs) {
    RBC_CHECK(r != nullptr);
    if (r->empty()) continue;
    const double w = static_cast<double>(r->count()) /
                     static_cast<double>(r->size());
    for (double v : r->samples()) {
      weighted.emplace_back(v, w);
      total_weight += w;
    }
  }
  if (weighted.empty()) return 0.0;
  std::sort(weighted.begin(), weighted.end());
  // Walk the cumulative weight to the q-th fraction (inclusive convention:
  // q=0 -> smallest, q=1 -> largest).
  const double target = q * total_weight;
  double cumulative = 0.0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (cumulative >= target) return value;
  }
  return weighted.back().first;
}

}  // namespace rbc
