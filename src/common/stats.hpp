// Streaming and batch statistics used by the trial harness and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc {

/// Welford's online mean/variance — numerically stable single-pass moments.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  u64 count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between order statistics
/// (inclusive method). q in [0, 1]. The input need not be sorted.
inline double percentile(std::vector<double> values, double q) {
  RBC_CHECK_MSG(!values.empty(), "percentile of empty sample");
  RBC_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace rbc
