#include "common/rng.hpp"

namespace rbc {

u64 Xoshiro256::next_below(u64 bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection to remove
  // modulo bias.
  u64 x = next();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  u64 l = static_cast<u64>(m);
  if (l < bound) {
    const u64 threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      l = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

}  // namespace rbc
