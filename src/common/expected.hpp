// Minimal Expected<T, E> (std::expected lands in C++23; this repo targets
// C++20). Used at protocol boundaries where a failure is an ordinary outcome
// rather than a programming error — e.g. deserializing a message off the wire.
#pragma once

#include <utility>
#include <variant>

#include "common/check.hpp"

namespace rbc {

template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<E> unexpected(E e) {
  return Unexpected<E>{std::move(e)};
}

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> u)
      : storage_(std::in_place_index<1>, std::move(u.error)) {}

  bool has_value() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  const T& value() const& {
    RBC_CHECK_MSG(has_value(), "Expected::value() on error state");
    return std::get<0>(storage_);
  }
  T& value() & {
    RBC_CHECK_MSG(has_value(), "Expected::value() on error state");
    return std::get<0>(storage_);
  }
  T&& value() && {
    RBC_CHECK_MSG(has_value(), "Expected::value() on error state");
    return std::get<0>(std::move(storage_));
  }

  const E& error() const& {
    RBC_CHECK_MSG(!has_value(), "Expected::error() on value state");
    return std::get<1>(storage_);
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, E> storage_;
};

}  // namespace rbc
