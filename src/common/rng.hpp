// Deterministic, seedable random number generators.
//
// The PUF simulator, trial harness, and benches must be reproducible run to
// run, so all stochastic behaviour flows through these engines rather than
// std::random_device. Xoshiro256** is the workhorse; SplitMix64 seeds it and
// expands user-provided 64-bit seeds into full states.
#pragma once

#include <array>

#include "common/types.hpp"

namespace rbc {

/// SplitMix64 (Steele et al.): a tiny, statistically solid stream used to
/// bootstrap larger generator states from a single 64-bit seed.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) noexcept : state_(seed) {}

  u64 next() noexcept {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Xoshiro256** (Blackman & Vigna). Satisfies UniformRandomBitGenerator so it
/// can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = u64;

  explicit Xoshiro256(u64 seed = 0x5eed5eed5eed5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  u64 next() noexcept {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  u64 next_below(u64 bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double probability_true) noexcept {
    return next_double() < probability_true;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> s_{};
};

}  // namespace rbc
