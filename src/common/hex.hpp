// Hex encoding/decoding for byte buffers and digests.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace rbc {

/// Lowercase hex encoding of `data`, most significant nibble first per byte.
std::string to_hex(ByteSpan data);

/// Decodes a hex string (case-insensitive, no separators). Throws
/// std::invalid_argument on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace rbc
