#include "common/hex.hpp"

#include <stdexcept>

namespace rbc {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int nibble_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument(std::string("invalid hex character: ") + c);
}
}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (u8 b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("hex string has odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble_value(hex[i]);
    const int lo = nibble_value(hex[i + 1]);
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return out;
}

}  // namespace rbc
