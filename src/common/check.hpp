// Lightweight runtime checks. RBC_CHECK is always on (protocol code must not
// silently continue past a violated precondition); RBC_DCHECK compiles out in
// release builds and is for hot loops only.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rbc {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "RBC_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace rbc

#define RBC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::rbc::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define RBC_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::rbc::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define RBC_DCHECK(expr) ((void)0)
#else
#define RBC_DCHECK(expr) RBC_CHECK(expr)
#endif
