// Monotonic wall-clock timer used by benches and the throughput probe.
#pragma once

#include <chrono>

namespace rbc {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rbc
