// Stable device-id -> stripe -> shard routing.
//
// The serving layer, the enrollment database, the RA registry and the CA's
// challenge RNG all partition their per-device state by ONE shared hash so a
// session admitted to shard S only ever touches stripes owned by S:
//
//   stripe  = stripe_of(device_id)            (fixed kAuthorityStripes-way)
//   shard   = route_shard(device_id, N)       (= stripe % N)
//
// Routing through the stripe (rather than hashing the id twice with two
// moduli) guarantees every stripe belongs to exactly one shard for ANY shard
// count N <= kAuthorityStripes — two shards never contend on one stripe, so
// run_authentication stays confined to its shard's slice of the world.
//
// The hash is the SplitMix64 finalizer: device ids are often sequential
// (enrollment order), and the finalizer's avalanche spreads them uniformly
// across stripes where `id % N` would alias whole enrollment batches.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace rbc {

/// Fixed stripe fan-out of the shared authorities (enrollment DB, RA
/// registry, CA challenge RNG). Independent of the server's shard count so
/// protocol-level determinism (which stripe a device hashes to) does not
/// change when the serving layer is re-sharded.
inline constexpr u32 kAuthorityStripes = 16;

/// SplitMix64 finalizer: well-mixed 64-bit avalanche of the device id.
inline constexpr u64 mix_device_id(u64 device_id) noexcept {
  u64 x = device_id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Which authority stripe owns this device's state.
inline constexpr u32 stripe_of(u64 device_id) noexcept {
  return static_cast<u32>(mix_device_id(device_id) % kAuthorityStripes);
}

/// Which serving shard (of `num_shards`) owns this device. Derived from the
/// stripe, so each stripe maps to exactly one shard.
inline u32 route_shard(u64 device_id, u32 num_shards) {
  RBC_CHECK(num_shards >= 1 && num_shards <= kAuthorityStripes);
  return stripe_of(device_id) % num_shards;
}

}  // namespace rbc
