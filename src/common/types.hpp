// Fundamental integer and byte-span aliases used across the RBC libraries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rbc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

// 128-bit arithmetic is used for exact binomial coefficients up to C(256, 16).
using u128 = unsigned __int128;

using ByteSpan = std::span<const u8>;
using MutByteSpan = std::span<u8>;
using Bytes = std::vector<u8>;

}  // namespace rbc
