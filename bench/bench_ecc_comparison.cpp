// RBC versus client-side error correction — quantifying §1's motivating
// claim: "low-powered IoT devices often do not have the computational power
// to carry out error correction, and if they were able to ... it may leak
// information to an opponent."
//
// Compares, for the same PUF noise levels:
//   * client-side work per authentication (fuzzy-commitment decode vs one
//     hash for RBC),
//   * effective secret entropy (repetition helper data divides it by r;
//     RBC keeps all 256 bits),
//   * success rate (majority decode vs server search with budget d).
#include "bench_util.hpp"
#include "puf/fuzzy_extractor.hpp"
#include "puf/puf.hpp"
#include "rbc/search.hpp"
#include "combinatorics/chase382.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;

  print_title("Alternative baseline — client-side ECC vs server-side RBC");

  Table design({"scheme", "client work/auth", "secret entropy",
                "error budget", "who pays"});
  for (int r : {8, 16, 32}) {
    puf::RepetitionFuzzyExtractor fe(r);
    design.add_row({"fuzzy commitment r=" + std::to_string(r),
                    std::to_string(fe.client_ops()) + " bit-ops + decode",
                    std::to_string(fe.secret_bits()) + " bits",
                    "< r/2 flips per group", "client"});
  }
  design.add_row({"RBC-SALTED", "1 hash (one Keccak-f)", "256 bits",
                  "any d with u(d) searchable in T", "server"});
  design.print();

  print_title("Monte-Carlo success rates vs PUF noise (200 trials each)");
  // RBC columns use the paper's d = 5 budget; the "3 tries" column models the
  // Fig. 1 timeout path (the CA re-challenges at a fresh address, up to 3
  // attempts). ECC has no retry lever: the helper data is fixed at enrollment.
  Table mc({"stable flip prob", "~bits flipped", "ECC r=8", "ECC r=16",
            "ECC r=32", "RBC d<=5", "RBC d<=5, 3 tries"});

  for (double noise : {0.002, 0.008, 0.02, 0.05, 0.10, 0.15}) {
    puf::SramPufModel::Params params;
    params.num_addresses = 1;
    params.erratic_cell_fraction = 0.0;
    params.stable_flip_probability = noise;
    const puf::SramPufModel device(params, 99);
    Xoshiro256 rng(31);

    const int trials = 200;
    double mean_flips = 0;
    int ecc_ok[3] = {0, 0, 0};
    const int rs[3] = {8, 16, 32};
    puf::RepetitionFuzzyExtractor fes[3] = {
        puf::RepetitionFuzzyExtractor(8), puf::RepetitionFuzzyExtractor(16),
        puf::RepetitionFuzzyExtractor(32)};
    puf::RepetitionFuzzyExtractor::Enrollment enrollments[3];
    for (int i = 0; i < 3; ++i)
      enrollments[i] = fes[i].enroll(device.enrolled_word(0), rng);

    int rbc_ok = 0, rbc_retry_ok = 0;
    for (int t = 0; t < trials; ++t) {
      const Seed256 reading = device.read(0, rng);
      const int flips = hamming_distance(reading, device.enrolled_word(0));
      mean_flips += flips;
      for (int i = 0; i < 3; ++i) {
        ecc_ok[i] += fes[i].recover(reading, enrollments[i].helper).secret ==
                     enrollments[i].secret;
      }
      // RBC succeeds iff the flip count is within the search budget (the
      // search is deterministic — no need to actually run 200 searches).
      rbc_ok += flips <= 5;
      bool any = flips <= 5;
      for (int attempt = 1; attempt < 3 && !any; ++attempt) {
        any = hamming_distance(device.read(0, rng),
                               device.enrolled_word(0)) <= 5;
      }
      rbc_retry_ok += any;
    }
    (void)rs;
    mc.add_row({fmt(noise, 3), fmt(mean_flips / trials, 1),
                fmt(100.0 * ecc_ok[0] / trials, 0) + "%",
                fmt(100.0 * ecc_ok[1] / trials, 0) + "%",
                fmt(100.0 * ecc_ok[2] / trials, 0) + "%",
                fmt(100.0 * rbc_ok / trials, 0) + "%",
                fmt(100.0 * rbc_retry_ok / trials, 0) + "%"});
  }
  mc.print();

  std::printf(
      "\nFunctional spot check that RBC really recovers what ECC cannot\n"
      "protect: one search at the noise level where r=8 ECC collapses.\n");
  {
    puf::SramPufModel::Params params;
    params.num_addresses = 1;
    params.erratic_cell_fraction = 0.0;
    params.stable_flip_probability = 0.008;  // ~2 flips
    const puf::SramPufModel device(params, 99);
    Xoshiro256 rng(77);
    const Seed256 reading = device.read(0, rng);
    par::WorkerGroup& pool = par::WorkerGroup::shared();
    comb::ChaseFactory factory;
    const hash::Sha3SeedHash hash;
    SearchOptions opts;
    opts.max_distance = 3;
    opts.num_threads = pool.size();
    const auto r = rbc_search<hash::Sha3SeedHash>(
        device.enrolled_word(0), hash(reading), factory, pool, opts, hash);
    std::printf("  reading at d=%d from the image: RBC %s in %.3f s host "
                "(%llu seeds)\n",
                hamming_distance(reading, device.enrolled_word(0)),
                r.found ? "recovered it" : "FAILED", r.host_seconds,
                static_cast<unsigned long long>(r.seeds_hashed));
  }

  std::printf(
      "\nTakeaways (the honest trade-off behind §1's motivation): repetition\n"
      "ECC corrects iid noise well, but at a fixed price — the public helper\n"
      "data divides the secret entropy by r (256 -> 8..32 bits here) and the\n"
      "correction work+helper storage land on the IoT client, where §1 also\n"
      "notes the decoder's data-dependent behaviour can leak. RBC keeps the\n"
      "full 256-bit space, costs the client exactly one hash, and makes the\n"
      "error tolerance a SERVER-side knob (budget d, TAPKI, re-challenge) —\n"
      "tunable per deployment without touching deployed devices.\n");
  return 0;
}
