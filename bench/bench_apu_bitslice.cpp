// APU execution-model bench: column-cycle accounting of the bit-sliced
// SHA-1/SHA-3 kernels and the associative match, grounding the PE-cycle
// constants calibrated from Table 5, plus host throughput of the bit-sliced
// path versus the scalar path.
#include "apu/search_kernel.hpp"
#include "bench_util.hpp"
#include "combinatorics/chase382.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "hash/keccak.hpp"
#include "hash/sha1.hpp"
#include "sim/calibration.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using namespace rbc::apu;

  print_title("APU execution model — column cycles per 64-lane hash batch");

  Xoshiro256 rng(0xa9);
  std::array<Seed256, kLanes> seeds;
  for (auto& s : seeds) s = Seed256::random(rng);

  VectorUnit sha1_vu, sha3_vu;
  std::array<hash::Digest160, kLanes> d1;
  std::array<hash::Digest256, kLanes> d3;
  sha1_seed_x64(seeds, d1, sha1_vu);
  sha3_256_seed_x64(seeds, d3, sha3_vu);

  const auto& calib = sim::default_calibration();
  Table table({"kernel", "column ops/batch", "PE datapath (BPs)",
               "compute PE-cycles/hash", "calibrated PE-cycles/hash",
               "compute share"});
  const double c1 = static_cast<double>(sha1_vu.counts().total());
  const double c3 = static_cast<double>(sha3_vu.counts().total());
  table.add_row({"SHA-1 x64", fmt(c1, 0), "32", fmt(c1 / 32.0, 0),
                 fmt(calib.apu_cycles_sha1, 0),
                 fmt(100.0 * c1 / 32.0 / calib.apu_cycles_sha1, 1) + "%"});
  table.add_row({"SHA3-256 x64", fmt(c3, 0), "80", fmt(c3 / 80.0, 0),
                 fmt(calib.apu_cycles_sha3, 0),
                 fmt(100.0 * c3 / 80.0 / calib.apu_cycles_sha3, 1) + "%"});
  table.print();

  std::printf(
      "\nOp mix (SHA-1): xor=%llu and=%llu or=%llu not=%llu broadcast=%llu\n",
      static_cast<unsigned long long>(sha1_vu.counts().xor_ops),
      static_cast<unsigned long long>(sha1_vu.counts().and_ops),
      static_cast<unsigned long long>(sha1_vu.counts().or_ops),
      static_cast<unsigned long long>(sha1_vu.counts().not_ops),
      static_cast<unsigned long long>(sha1_vu.counts().broadcasts));
  std::printf(
      "Op mix (SHA-3): xor=%llu and=%llu or=%llu not=%llu broadcast=%llu\n",
      static_cast<unsigned long long>(sha3_vu.counts().xor_ops),
      static_cast<unsigned long long>(sha3_vu.counts().and_ops),
      static_cast<unsigned long long>(sha3_vu.counts().or_ops),
      static_cast<unsigned long long>(sha3_vu.counts().not_ops),
      static_cast<unsigned long long>(sha3_vu.counts().broadcasts));
  std::printf(
      "\nThe boolean-compute floor sits well inside the calibrated budgets;\n"
      "the remainder is operand staging and control — consistent with §3.3's\n"
      "note that active BPs are limited by state memory, not ALU work.\n");

  print_title("Associative match detection (the APU's native operation)");
  {
    VectorUnit vu;
    const Plane m = associative_match(d3, d3[5], vu);
    std::printf("match mask over 64 lanes: lane %d hit; %llu column ops for "
                "a 256-bit compare\n",
                std::countr_zero(m),
                static_cast<unsigned long long>(vu.counts().total()));
  }

  print_title("Host throughput — bit-sliced (64 lanes/word) vs scalar");
  Table host({"path", "hashes", "ns/hash"});
  const int reps = 200;
  {
    VectorUnit vu;
    WallTimer t;
    for (int r = 0; r < reps; ++r) sha1_seed_x64(seeds, d1, vu);
    host.add_row({"SHA-1 bit-sliced x64", std::to_string(reps * kLanes),
                  fmt(t.elapsed_s() * 1e9 / (reps * kLanes), 1)});
  }
  {
    WallTimer t;
    u8 sink = 0;
    for (int r = 0; r < reps; ++r) {
      for (const auto& s : seeds) sink ^= hash::sha1_seed(s).bytes[0];
    }
    host.add_row({std::string("SHA-1 scalar x64") + (sink == 77 ? " " : ""),
                  std::to_string(reps * kLanes),
                  fmt(t.elapsed_s() * 1e9 / (reps * kLanes), 1)});
  }
  {
    VectorUnit vu;
    WallTimer t;
    for (int r = 0; r < reps; ++r) sha3_256_seed_x64(seeds, d3, vu);
    host.add_row({"SHA-3 bit-sliced x64", std::to_string(reps * kLanes),
                  fmt(t.elapsed_s() * 1e9 / (reps * kLanes), 1)});
  }
  {
    WallTimer t;
    u8 sink = 0;
    for (int r = 0; r < reps; ++r) {
      for (const auto& s : seeds) sink ^= hash::sha3_256_seed(s).bytes[0];
    }
    host.add_row({std::string("SHA-3 scalar x64") + (sink == 77 ? " " : ""),
                  std::to_string(reps * kLanes),
                  fmt(t.elapsed_s() * 1e9 / (reps * kLanes), 1)});
  }
  host.print();
  std::printf(
      "\n(The host bit-sliced path pays the op-counting wrapper and the\n"
      "transpositions; on the physical array those are free/parallel. The\n"
      "point of this bench is the cycle accounting, not host speed.)\n");
  return 0;
}
