# One binary per reproduced table/figure plus ablations and microbenches.
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench holds ONLY the bench executables — the documented
# way to run the whole harness is:  for b in build/bench/*; do $b; done
set(RBC_BENCH_DIR ${CMAKE_SOURCE_DIR}/bench)

function(rbc_add_bench name)
  add_executable(${name} ${RBC_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN} rbc_warnings)
  target_include_directories(${name} PRIVATE ${RBC_BENCH_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

rbc_add_bench(bench_table1_search_space rbc_comb)
rbc_add_bench(bench_table4_seed_iterators rbc_sim)
rbc_add_bench(bench_table5_end_to_end rbc_core)
rbc_add_bench(bench_table6_energy rbc_sim)
rbc_add_bench(bench_table7_prior_work rbc_core)
rbc_add_bench(bench_fig3_gpu_gridsearch rbc_sim)
rbc_add_bench(bench_fig4_multigpu rbc_sim)
rbc_add_bench(bench_ablation_sha3_padding rbc_sim)
rbc_add_bench(bench_ablation_state_memory rbc_sim)
rbc_add_bench(bench_ablation_flag_interval rbc_core)
rbc_add_bench(bench_ablation_tapki rbc_core)
rbc_add_bench(bench_ablation_iterator_mode rbc_comb rbc_hash)
rbc_add_bench(bench_cpu_scaling rbc_core)
rbc_add_bench(bench_ext_scaling rbc_sim)
rbc_add_bench(bench_security_analysis rbc_core)
rbc_add_bench(bench_apu_bitslice rbc_apu rbc_comb rbc_sim)

rbc_add_bench(bench_hash_throughput rbc_hash rbc_comb rbc_crypto benchmark::benchmark)
rbc_add_bench(bench_ecc_comparison rbc_core)
rbc_add_bench(bench_server_throughput rbc_server rbc_core)
