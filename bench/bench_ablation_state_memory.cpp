// §3.2.3 ablation: storing the Chase Algorithm-382 per-thread state in
// shared vs global memory.
//
// "This results in 1.20x and 1.01x speedups for SHA-1 and SHA-3,
// respectively." Reproduced through the GPU execution model's state-access
// penalty.
#include "bench_util.hpp"
#include "sim/gpu_model.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;

  print_title("Ablation §3.2.3 — Chase state in shared vs global memory");

  sim::GpuModel gpu;
  Table table({"hash", "shared-mem (s)", "global-mem (s)", "speedup",
               "paper"});
  for (auto algo : {hash::HashAlgo::kSha1, hash::HashAlgo::kSha3_256}) {
    auto time_with = [&](bool shared) {
      sim::GpuSearchConfig proto;
      proto.hash = algo;
      proto.state_in_shared_memory = shared;
      return gpu.ball_time_s(5, proto);
    };
    const double with_shared = time_with(true);
    const double with_global = time_with(false);
    table.add_row({std::string(hash::to_string(algo)), fmt(with_shared),
                   fmt(with_global), fmt(with_global / with_shared, 2) + "x",
                   algo == hash::HashAlgo::kSha1 ? "1.20x" : "1.01x"});
  }
  table.print();

  std::printf(
      "\nMechanism: the cheaper the hash, the larger the share of kernel time\n"
      "spent touching iterator state, so SHA-1 benefits 20%% while SHA-3 is\n"
      "nearly insensitive. This optimization is on in all other experiments.\n");
  return 0;
}
