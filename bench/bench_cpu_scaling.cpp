// §4.3: SALTED-CPU strong scaling — "we achieve speedups of 59x and 63x on
// 64xCPU cores using SHA-1 and SHA-3, respectively."
//
// Section 1 projects the scaling curve from the calibrated CPU model
// (PlatformA, 64 cores). Section 2 measures real strong scaling of this
// repo's search engine on the host across its available cores.
#include "bench_util.hpp"
#include "combinatorics/chase382.hpp"
#include "common/rng.hpp"
#include "rbc/search.hpp"
#include "sim/cpu_model.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using hash::HashAlgo;

  print_title("§4.3 — CPU strong scaling (model, PlatformA 64 cores)");

  sim::CpuModel cpu;
  Table model({"threads", "SHA-1 speedup", "SHA-3 speedup"});
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    model.add_row({std::to_string(p), fmt(cpu.speedup(HashAlgo::kSha1, p)),
                   fmt(cpu.speedup(HashAlgo::kSha3_256, p))});
  }
  model.print();
  std::printf("Paper: 59x (SHA-1) and 63x (SHA-3) at 64 cores. Model: %.1fx "
              "and %.1fx.\n",
              cpu.speedup(HashAlgo::kSha1, 64),
              cpu.speedup(HashAlgo::kSha3_256, 64));

  print_title("Host measurement — real engine strong scaling (d = 2, SHA-3)");
  const int max_threads = par::WorkerGroup::default_threads();
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha3SeedHash hash;
  const auto target = hash(unrelated);  // full-ball workload

  Table host({"threads", "host time (s)", "speedup", "efficiency"});
  double t1 = 0.0;
  for (int p = 1; p <= max_threads; p *= 2) {
    par::WorkerGroup pool(p);  // dedicated group: p is the variable under study
    comb::ChaseFactory factory;
    SearchOptions opts;
    opts.max_distance = 2;
    opts.num_threads = p;
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      const auto r = rbc_search<hash::Sha3SeedHash>(base, target, factory,
                                                    pool, opts, hash);
      best = std::min(best, r.host_seconds);
    }
    if (p == 1) t1 = best;
    host.add_row({std::to_string(p), fmt(best, 4), fmt(t1 / best, 2),
                  fmt(t1 / best / p, 2)});
  }
  host.print();
  if (max_threads == 1) {
    std::printf("(host has a single hardware thread; scaling is visible only "
                "in the model section)\n");
  }
  return 0;
}
