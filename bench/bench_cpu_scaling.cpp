// §4.3: SALTED-CPU strong scaling — "we achieve speedups of 59x and 63x on
// 64xCPU cores using SHA-1 and SHA-3, respectively."
//
// Section 1 projects the scaling curve from the calibrated CPU model
// (PlatformA, 64 cores). Section 2 measures real strong scaling of this
// repo's search engine on the host across its available cores. Section 3
// (PR 4) measures the tile scheduler against static shell slices on skewed
// workloads — a straggler worker and matches planted at different positions
// in the straggler's static slice — plus the uniform-workload overhead of
// tiling.
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "combinatorics/chase382.hpp"
#include "common/rng.hpp"
#include "rbc/search.hpp"
#include "sim/cpu_model.hpp"

namespace {

using namespace rbc;

// The shell-2 mask whose rank-0 Chase walk position is `rank`; XOR onto the
// base seed to plant a match exactly there in the search visit order.
Seed256 shell2_mask_at_rank(u64 rank) {
  comb::ChaseFactory factory;
  factory.prepare(2, 1);
  auto it = factory.make(0);
  Seed256 mask;
  for (u64 i = 0; i <= rank; ++i) RBC_CHECK(it.next(mask));
  return mask;
}

// One timed search. The straggler, when enabled, is worker unit 0 sleeping
// ~4 us per hashed seed via the quantum hook — on a single-core host a
// genuinely slow core cannot be provisioned, but a sleeping unit models one
// faithfully: its quanta take longer while the OS runs the other workers.
double run_once(const Seed256& base, const hash::Sha1BatchSeedHash::digest_type& target,
                SearchSchedule schedule, bool early_exit, bool straggler,
                int max_distance, par::WorkerGroup& pool, u64* seeds = nullptr) {
  comb::ChaseFactory factory;  // fresh factory: plan construction is charged
  SearchOptions opts;
  opts.max_distance = max_distance;
  opts.num_threads = 4;
  opts.early_exit = early_exit;
  opts.timeout_s = 600.0;
  opts.schedule = schedule;
  opts.tile_seeds = 1024;
  if (straggler) {
    opts.quantum_hook = [](int unit, u64 n) {
      if (unit == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(4 * n));
    };
  }
  const hash::Sha1BatchSeedHash hash;
  const auto r = rbc_search<hash::Sha1BatchSeedHash>(base, target, factory,
                                                     pool, opts, hash);
  if (seeds) *seeds = r.seeds_hashed;
  return r.host_seconds;
}

double best_of(int reps, const Seed256& base,
               const hash::Sha1BatchSeedHash::digest_type& target,
               SearchSchedule schedule, bool early_exit, bool straggler,
               int max_distance, par::WorkerGroup& pool) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    best = std::min(best, run_once(base, target, schedule, early_exit,
                                   straggler, max_distance, pool));
  }
  return best;
}

}  // namespace

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using hash::HashAlgo;

  print_title("§4.3 — CPU strong scaling (model, PlatformA 64 cores)");

  sim::CpuModel cpu;
  Table model({"threads", "SHA-1 speedup", "SHA-3 speedup"});
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    model.add_row({std::to_string(p), fmt(cpu.speedup(HashAlgo::kSha1, p)),
                   fmt(cpu.speedup(HashAlgo::kSha3_256, p))});
  }
  model.print();
  std::printf("Paper: 59x (SHA-1) and 63x (SHA-3) at 64 cores. Model: %.1fx "
              "and %.1fx.\n",
              cpu.speedup(HashAlgo::kSha1, 64),
              cpu.speedup(HashAlgo::kSha3_256, 64));

  print_title("Host measurement — real engine strong scaling (d = 2, SHA-3)");
  const int max_threads = par::WorkerGroup::default_threads();
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha3SeedHash hash;
  const auto target = hash(unrelated);  // full-ball workload

  Table host({"threads", "host time (s)", "speedup", "efficiency"});
  double t1 = 0.0;
  for (int p = 1; p <= max_threads; p *= 2) {
    par::WorkerGroup pool(p);  // dedicated group: p is the variable under study
    comb::ChaseFactory factory;
    SearchOptions opts;
    opts.max_distance = 2;
    opts.num_threads = p;
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      const auto r = rbc_search<hash::Sha3SeedHash>(base, target, factory,
                                                    pool, opts, hash);
      best = std::min(best, r.host_seconds);
    }
    if (p == 1) t1 = best;
    host.add_row({std::to_string(p), fmt(best, 4), fmt(t1 / best, 2),
                  fmt(t1 / best / p, 2)});
  }
  host.print();
  if (max_threads == 1) {
    std::printf("(host has a single hardware thread; scaling is visible only "
                "in the model section)\n");
  }

  // --- PR 4: tile scheduler vs static shell slices --------------------------
  print_title(
      "Skewed workload — straggler worker, tiled vs static (d = 2, SHA-1, "
      "4 workers, 1024-seed tiles, best of 3)");
  std::printf(
      "Worker 0 sleeps ~4 us per hashed seed (a modeled slow core). Under\n"
      "static slices its 1/4 of every shell gates the wall clock; under the\n"
      "tile scheduler the other workers steal its share.\n\n");

  const hash::Sha1BatchSeedHash sha1;
  par::WorkerGroup skew_pool(5);  // 4 workers + tiled pipeline unit

  Table skew({"scenario", "static (s)", "tiled (s)", "stealing speedup"});
  double headline_static = 0.0, headline_tiled = 0.0;

  {  // exhaustive: the straggler's whole slice matters
    const auto absent = sha1(unrelated);
    headline_static =
        best_of(3, base, absent, SearchSchedule::kStatic,
                /*early_exit=*/false, /*straggler=*/true, 2, skew_pool);
    headline_tiled =
        best_of(3, base, absent, SearchSchedule::kTiled,
                /*early_exit=*/false, /*straggler=*/true, 2, skew_pool);
    skew.add_row({"exhaustive ball", fmt(headline_static, 4),
                  fmt(headline_tiled, 4),
                  fmt(headline_static / headline_tiled, 2) + "x"});
  }

  // Early exit with the match planted at the start / middle / end of the
  // straggler's *static* slice of shell 2 (ranks [0, 8160) of 32640): the
  // later the match sits in the slice, the longer static waits on the slow
  // worker, while stealing lets a fast worker reach the tile early.
  const struct {
    const char* label;
    u64 rank;
  } positions[] = {{"match at slice start", 64},
                   {"match at slice middle", 4096},
                   {"match at slice end", 8064}};
  for (const auto& pos : positions) {
    const Seed256 truth = base ^ shell2_mask_at_rank(pos.rank);
    const auto target2 = sha1(truth);
    const double ts = best_of(3, base, target2, SearchSchedule::kStatic,
                              /*early_exit=*/true, /*straggler=*/true, 2,
                              skew_pool);
    const double tt = best_of(3, base, target2, SearchSchedule::kTiled,
                              /*early_exit=*/true, /*straggler=*/true, 2,
                              skew_pool);
    skew.add_row(
        {pos.label, fmt(ts, 4), fmt(tt, 4), fmt(ts / tt, 2) + "x"});
  }
  skew.print();
  std::printf("Acceptance (>= 1.3x on the skewed exhaustive ball): %.2fx %s\n",
              headline_static / headline_tiled,
              headline_static / headline_tiled >= 1.3 ? "PASS" : "FAIL");

  print_title(
      "Uniform workload — tiling overhead (d = 3 exhaustive, SHA-1, "
      "4 workers, default tiles, best of 3)");
  {
    const auto absent = sha1(unrelated);
    auto timed = [&](SearchSchedule sched) {
      double best = 1e30;
      for (int rep = 0; rep < 3; ++rep) {
        comb::ChaseFactory factory;  // fresh: plan construction is charged
        SearchOptions opts;
        opts.max_distance = 3;
        opts.num_threads = 4;
        opts.early_exit = false;
        opts.timeout_s = 600.0;
        opts.schedule = sched;
        const auto r = rbc_search<hash::Sha1BatchSeedHash>(
            base, absent, factory, skew_pool, opts, sha1);
        best = std::min(best, r.host_seconds);
      }
      return best;
    };
    const double t_static = timed(SearchSchedule::kStatic);
    const double t_tiled = timed(SearchSchedule::kTiled);
    const double overhead = (t_tiled / t_static - 1.0) * 100.0;
    Table uni({"schedule", "time (s)", "overhead"});
    uni.add_row({"static slices", fmt(t_static, 4), "-"});
    uni.add_row({"tile scheduler", fmt(t_tiled, 4),
                 fmt(overhead, 2) + "%"});
    uni.print();
    std::printf("Acceptance (<= 2%% tiling overhead, no straggler): %+.2f%% "
                "%s\n",
                overhead, overhead <= 2.0 ? "PASS" : "FAIL");
  }
  return 0;
}
