// Table 4: exhaustive search-only time (s) for the three seed-iterator
// methods (Chase's Algorithm 382, Algorithm 515, Gosper's hack), GPU, SHA-3,
// d = 5.
//
// Two sections:
//   1. model — the calibrated GPU model's projection for each iterator,
//      versus the paper's 4.67 / 7.53 / 6.04 s.
//   2. host  — the REAL iterators from this repo driven with the REAL SHA-3,
//      measured per-seed on this machine (shell k = 3 sample). The paper's
//      ordering (Chase < Gosper < Alg 515 for unrank-per-seed generation)
//      must emerge from the measurement, not the calibration.
#include "bench_util.hpp"
#include "hash/cpu_features.hpp"
#include "sim/gpu_model.hpp"
#include "sim/probe.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using sim::IterAlgo;

  print_title("Table 4 — seed iterators, GPU SHA-3 exhaustive d = 5");

  sim::GpuModel gpu;
  const struct {
    IterAlgo iter;
    double paper;
  } rows[] = {
      {IterAlgo::kChase382, 4.67},
      {IterAlgo::kAlg515, 7.53},
      {IterAlgo::kGosper, 6.04},
  };

  Table table({"algorithm", "paper (s)", "model (s)", "dev"});
  for (const auto& row : rows) {
    const double model =
        gpu.exhaustive_time_s(5, hash::HashAlgo::kSha3_256, row.iter);
    table.add_row({std::string(sim::to_string(row.iter)), fmt(row.paper),
                   fmt(model), deviation(model, row.paper)});
  }
  table.print();

  std::printf(
      "\nNote: §4.5's prose claims 5.89x/6.77x speedups for Alg 382 over\n"
      "Alg 515/Gosper, inconsistent with Table 4's own 1.61x/1.29x ratios;\n"
      "this reproduction follows Table 4 (see EXPERIMENTS.md).\n");

  print_title("Host measurement — real iterator + real SHA-3 (shell k = 3)");
  const u64 sample = 400000;
  Table host({"algorithm", "seeds", "ns/seed", "vs Chase"});
  double chase_ns = 0.0;
  for (IterAlgo it :
       {IterAlgo::kChase382, IterAlgo::kGosper, IterAlgo::kAlg515}) {
    const auto r =
        sim::probe_iterate_and_hash(it, hash::HashAlgo::kSha3_256, 3, sample);
    if (it == IterAlgo::kChase382) chase_ns = r.ns_per_op();
    host.add_row({std::string(sim::to_string(it)),
                  std::to_string(r.operations), fmt(r.ns_per_op(), 1),
                  fmt(r.ns_per_op() / chase_ns, 2) + "x"});
  }
  host.print();
  std::printf(
      "\nExpected ordering on the host: Chase (O(1) Gray step) <= Gosper\n"
      "(256-bit arithmetic per step) < Alg 515 in unrank-each mode (binomial\n"
      "table walk per seed) — the same ordering Table 4 reports on the GPU.\n");

  print_title("Host batched pipeline — block refill + multi-lane SHA-3");
  std::printf("dispatch level: %s\n\n",
              std::string(hash::to_string(hash::active_simd_level())).c_str());
  Table batched({"algorithm", "scalar ns/seed", "batched ns/seed", "speedup"});
  for (IterAlgo it :
       {IterAlgo::kChase382, IterAlgo::kGosper, IterAlgo::kAlg515}) {
    const auto scalar =
        sim::probe_iterate_and_hash(it, hash::HashAlgo::kSha3_256, 3, sample);
    const auto blocked = sim::probe_iterate_and_hash_batched(
        it, hash::HashAlgo::kSha3_256, 3, sample);
    batched.add_row({std::string(sim::to_string(it)),
                     fmt(scalar.ns_per_op(), 1), fmt(blocked.ns_per_op(), 1),
                     fmt(scalar.ns_per_op() / blocked.ns_per_op(), 2) + "x"});
  }
  batched.print();
  std::printf(
      "\nThe batched speedup is largest for Chase (hash-dominated loop) and\n"
      "smallest for Alg 515, whose per-seed unranking cost batching cannot\n"
      "remove — iteration cost bounds the batched pipeline's gain.\n");
  return 0;
}
