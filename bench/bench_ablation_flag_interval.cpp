// §4.4 ablation: seeds iterated between early-exit flag checks.
//
// "We increased the number of seeds iterated between checks from 1 up to 64
// and found that increasing the iterations did not have any performance
// impact. Thus, we check if the client's hash has been found after every
// seed iteration." Reproduced on the host with the real search engine.
#include "bench_util.hpp"
#include "combinatorics/chase382.hpp"
#include "common/rng.hpp"
#include "rbc/search.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;

  print_title("Ablation §4.4 — early-exit flag polling interval (host, d=2)");

  Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  // Target outside the ball: every run hashes the full 32,897-seed ball, so
  // times are comparable across intervals.
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha3SeedHash hash;
  const auto target = hash(unrelated);

  par::WorkerGroup& pool = par::WorkerGroup::shared();

  Table table({"check interval", "seeds hashed", "host time (s)",
               "vs interval=1"});
  double base_time = 0.0;
  for (u32 interval : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    comb::ChaseFactory factory;
    SearchOptions opts;
    opts.max_distance = 2;
    opts.num_threads = pool.size();
    opts.check_interval = interval;
    // Warm + best-of-3 to de-noise the small workload.
    double best = 1e30;
    SearchResult result;
    for (int rep = 0; rep < 3; ++rep) {
      result = rbc_search<hash::Sha3SeedHash>(base, target, factory, pool,
                                              opts, hash);
      best = std::min(best, result.host_seconds);
    }
    if (interval == 1) base_time = best;
    table.add_row({std::to_string(interval),
                   std::to_string(result.seeds_hashed), fmt(best, 4),
                   fmt(best / base_time, 2) + "x"});
  }
  table.print();

  std::printf(
      "\nPaper finding: no measurable impact across 1..64 — the flag is a\n"
      "cached read that almost never invalidates. Expect ratios ~1.0x above\n"
      "(small workload noise aside), so the engine defaults to interval 1.\n");
  return 0;
}
