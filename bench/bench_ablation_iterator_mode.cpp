// Iterator-mode ablation: Algorithm 515 can produce each combination by a
// full independent unrank (the GPU-friendly mode the paper evaluates in
// Table 4) or by unranking once and stepping with the cheap lexicographic
// successor (the natural CPU mode). DESIGN.md calls the mode split out as a
// design choice; this bench quantifies it on the host with the real SHA-3
// hash in the loop, alongside the other two iterator families.
#include "bench_util.hpp"
#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "hash/keccak.hpp"

namespace {

using namespace rbc;

template <typename Iterator>
double time_iterate_hash(Iterator it, const Seed256& base, u64& hashed) {
  WallTimer timer;
  Seed256 mask;
  u8 sink = 0;
  while (it.next(mask)) {
    sink ^= hash::sha3_256_seed(base ^ mask).bytes[0];
    ++hashed;
  }
  const double t = timer.elapsed_s();
  return sink == 0xa5 ? t + 1e-12 : t;  // keep the loop observable
}

}  // namespace

int main() {
  using namespace rbc::bench;

  print_title("Ablation — Algorithm 515 stepping mode (host, k = 3, SHA-3)");

  Xoshiro256 rng(21);
  const Seed256 base = Seed256::random(rng);
  const u64 sample = 300000;

  Table table({"iterator", "mode", "seeds", "ns/seed", "vs best"});
  struct Row {
    std::string name, mode;
    double ns;
  };
  std::vector<Row> rows;

  {
    u64 hashed = 0;
    const double t = time_iterate_hash(
        comb::Algorithm515Iterator(3, 0, sample, comb::Alg515Mode::kUnrankEach),
        base, hashed);
    rows.push_back({"Algorithm 515", "unrank each (GPU mode)",
                    t * 1e9 / static_cast<double>(hashed)});
  }
  {
    u64 hashed = 0;
    const double t = time_iterate_hash(
        comb::Algorithm515Iterator(3, 0, sample, comb::Alg515Mode::kSuccessor),
        base, hashed);
    rows.push_back({"Algorithm 515", "successor (CPU mode)",
                    t * 1e9 / static_cast<double>(hashed)});
  }
  {
    u64 hashed = 0;
    comb::ChaseSequence seq(3);
    const double t = time_iterate_hash(comb::ChaseIterator(seq.state(), sample),
                                       base, hashed);
    rows.push_back({"Chase's Alg. 382", "gray code",
                    t * 1e9 / static_cast<double>(hashed)});
  }
  {
    u64 hashed = 0;
    const double t = time_iterate_hash(comb::GosperIterator(3, 0, sample),
                                       base, hashed);
    rows.push_back({"Gosper's hack", "256-bit arithmetic",
                    t * 1e9 / static_cast<double>(hashed)});
  }

  double best = 1e300;
  for (const auto& r : rows) best = std::min(best, r.ns);
  for (const auto& r : rows) {
    table.add_row({r.name, r.mode, std::to_string(sample), fmt(r.ns, 1),
                   fmt(r.ns / best, 2) + "x"});
  }
  table.print();

  std::printf(
      "\nOn a scalar CPU the successor mode closes most of Algorithm 515's\n"
      "gap to Chase; the unrank-each mode pays the binomial-table walk per\n"
      "seed — the cost Table 4 measures on the GPU, where the independence\n"
      "is what buys parallelism. Trade-off, quantified.\n");
  return 0;
}
