// §3.2.2 ablation: fixed-input padding for 256-bit seeds.
//
// "Most hashing is designed for variable sized inputs, which we do not
// require ... we fixed the padding bits for our 256-bit seeds to reduce
// several conditional statements. We found that this improved the
// performance of SALTED-GPU by ~3%."
//
// Measured here on the host with the real generic sponge vs the real
// fixed-input fast path, for both SHA-3 and SHA-1.
#include "bench_util.hpp"
#include "sim/probe.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;

  print_title("Ablation §3.2.2 — fixed-input padding (host measurement)");

  const u64 iters = 300000;
  Table table({"hash", "generic ns/op", "fixed ns/op", "speedup",
               "paper (GPU)"});
  for (auto algo : {hash::HashAlgo::kSha3_256, hash::HashAlgo::kSha1}) {
    // Best-of-5: the padding saving is a few percent of a permutation-
    // dominated cost, so minimum-time runs are needed to beat OS noise.
    double generic_ns = 1e30, fixed_ns = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      generic_ns =
          std::min(generic_ns, sim::probe_hash_generic(algo, iters).ns_per_op());
      fixed_ns = std::min(fixed_ns, sim::probe_hash(algo, iters).ns_per_op());
    }
    table.add_row({std::string(hash::to_string(algo)), fmt(generic_ns, 1),
                   fmt(fixed_ns, 1), fmt(generic_ns / fixed_ns, 3) + "x",
                   algo == hash::HashAlgo::kSha3_256 ? "~1.03x" : "-"});
  }
  table.print();

  std::printf(
      "\nThe host gain is larger than the paper's ~3%% because the generic\n"
      "path here also pays byte-wise absorption and buffering; on the GPU the\n"
      "authors only removed padding conditionals from an already fixed-size\n"
      "kernel. Direction and mechanism match; magnitude is platform-bound.\n");
  return 0;
}
