// Figure 3: heatmap of GPU search-only time versus seeds-per-thread (n) and
// threads-per-block (b) for an exhaustive SHA-3 search at d = 5.
//
// The paper finds the minimum at n = 100, b = 128 (4.67 s) inside a broad
// flat region, with clear penalties at the extremes (n = 1 spawns >8 billion
// threads; huge blocks blow the shared-memory budget for the per-thread
// Chase state). The grid below is produced by the calibrated GPU execution
// model; the marked cell is the model's minimum.
#include <limits>

#include "bench_util.hpp"
#include "sim/gpu_model.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;

  print_title("Figure 3 — GPU grid search, SHA-3 exhaustive d = 5 (model, s)");

  sim::GpuModel gpu;
  const int ns[] = {1, 5, 10, 25, 50, 100, 200, 400, 800, 1600, 3200, 12800};
  const int bs[] = {32, 64, 128, 256, 512, 1024};

  // Find the minimum first so it can be highlighted.
  double best = std::numeric_limits<double>::max();
  int best_n = 0, best_b = 0;
  auto ball_time = [&gpu](int n, int b) {
    sim::GpuSearchConfig proto;
    proto.seeds_per_thread = n;
    proto.threads_per_block = b;
    proto.hash = hash::HashAlgo::kSha3_256;
    return gpu.ball_time_s(5, proto);
  };
  for (int n : ns) {
    for (int b : bs) {
      const double t = ball_time(n, b);
      if (t < best) {
        best = t;
        best_n = n;
        best_b = b;
      }
    }
  }

  std::vector<std::string> headers{"n \\ b"};
  for (int b : bs) headers.push_back(std::to_string(b));
  headers.push_back("total threads");
  Table table(headers);
  for (int n : ns) {
    std::vector<std::string> row{std::to_string(n)};
    for (int b : bs) {
      const double t = ball_time(n, b);
      std::string cell = fmt(t, 2);
      if (n == best_n && b == best_b) cell = "[" + cell + "]";
      row.push_back(std::move(cell));
    }
    const u64 threads = (u64{8987138113} + static_cast<u64>(n) - 1) /
                        static_cast<u64>(n);
    row.push_back(fmt_sci(static_cast<double>(threads), 1));
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nModel minimum: %.2f s at n=%d, b=%d   (paper: 4.67 s at "
              "n=100, b=128)\n",
              best, best_n, best_b);
  std::printf("Paper-choice cell (100,128): %.2f s (%.1f%% off the model "
              "minimum)\n",
              ball_time(100, 128), (ball_time(100, 128) / best - 1.0) * 100);
  std::printf(
      "Flatness check (paper: \"several sets of parameters achieve similarly "
      "good performance\"):\n");
  int within_5pct = 0, cells = 0;
  for (int n : ns) {
    for (int b : bs) {
      ++cells;
      if (ball_time(n, b) <= best * 1.05) ++within_5pct;
    }
  }
  std::printf("  %d of %d grid cells within 5%% of the minimum\n", within_5pct,
              cells);
  return 0;
}
