// Shared console-table formatting for the per-table/figure bench binaries.
//
// Every bench prints, side by side where applicable:
//   paper     — the value published in the paper,
//   model     — the calibrated device-model projection from this repo,
//   host      — a number measured by actually running this repo's code on
//               the local machine (scaled-down workload where needed).
// EXPERIMENTS.md records the paper-vs-model comparison produced here.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace rbc::bench {

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::putchar('\n');
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    print_rule(static_cast<int>(total));
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_sci(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, v);
  return buf;
}

/// "+3.1%" style deviation of model vs paper.
inline std::string deviation(double model, double paper) {
  if (paper == 0.0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (model / paper - 1.0) * 100.0);
  return buf;
}

}  // namespace rbc::bench
