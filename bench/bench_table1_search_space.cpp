// Table 1: seeds searched on the server for exhaustive (Eq. 1) and average
// (Eq. 3) searches at Hamming distances d = 1..5, with the opponent's 2^256
// space (Eq. 2) for contrast. Purely analytic — exact values, where the
// paper rounds to engineering notation.
#include "bench_util.hpp"
#include "combinatorics/binomial.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using comb::u128_to_string;

  print_title("Table 1 — RBC search-space sizes (256-bit seeds)");

  // Paper values (rounded) for side-by-side comparison.
  const char* paper_exhaustive[] = {"256", "3.3e4", "2.8e6", "1.8e8", "9.0e9"};
  const char* paper_average[] = {"129", "1.7e4", "1.4e6", "9.0e7", "4.6e9"};

  Table table({"d", "exhaustive u(d)", "paper", "average a(d)", "paper",
               "shell C(256,d)"});
  for (int d = 1; d <= 5; ++d) {
    table.add_row({std::to_string(d),
                   u128_to_string(comb::exhaustive_search_count(d)),
                   paper_exhaustive[d - 1],
                   u128_to_string(comb::average_search_count(d)),
                   paper_average[d - 1],
                   u128_to_string(comb::binomial128(256, d))});
  }
  table.print();

  std::printf(
      "\nNote: the paper's Table 1 lists the d-th shell C(256,d) rounded;\n"
      "u(d) = sum_{i<=d} C(256,i) and a(d) = u(d-1) + C(256,d)/2 (Eqs. 1,3).\n");
  std::printf("Opponent search space (Eq. 2): 2^256 ~ %.4Le keys\n",
              comb::opponent_search_space());

  // Extension (§5 future work): injecting extra noise to raise security.
  print_title("Extension — search-space growth beyond d = 5");
  Table ext({"d", "exhaustive u(d)", "GPU-seconds at 1.93e9 seeds/s"});
  for (int d = 6; d <= 8; ++d) {
    const long double seeds =
        static_cast<long double>(comb::exhaustive_search_count(d));
    ext.add_row({std::to_string(d),
                 u128_to_string(comb::exhaustive_search_count(d)),
                 fmt(static_cast<double>(seeds / 1.93e9L), 1)});
  }
  ext.print();
  return 0;
}
