// Table 5: end-to-end response time (comm + search) of SALTED-GPU,
// SALTED-APU and SALTED-CPU for d = 5, SHA-1 and SHA-3, exhaustive and
// average-case searches.
//
// Columns: the paper's published value, the calibrated model's projection
// (paper platform, d = 5), and the deviation. A second section runs REAL
// functional searches end-to-end through the protocol stack at a host-scale
// d (= 3 exhaustive-equivalent effort) and reports measured host times plus
// each backend's modeled device time for the same visited-seed count.
#include <cstring>
#include <utility>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "hash/batch.hpp"
#include "hash/cpu_features.hpp"
#include "rbc/protocol.hpp"
#include "rbc/search.hpp"
#include "rbc/trial.hpp"
#include "sim/apu_model.hpp"
#include "sim/cpu_model.hpp"
#include "sim/gpu_model.hpp"

namespace {

using namespace rbc;
using namespace rbc::bench;
using hash::HashAlgo;

struct PaperRow {
  const char* algo;
  const char* type;
  double comm, search, total;
};

// Table 5 as published.
constexpr PaperRow kPaper[] = {
    {"SALTED-GPU", "Exhaustive", 0.90, 1.56, 2.46},
    {"SALTED-APU", "Exhaustive", 0.90, 1.62, 2.52},
    {"SALTED-CPU", "Exhaustive", 0.90, 12.09, 12.99},
    {"SALTED-GPU", "Average", 0.90, 0.85, 1.75},
    {"SALTED-APU", "Average", 0.90, 0.83, 1.73},
    {"SALTED-CPU", "Average", 0.90, 6.04, 6.94},
    {"SALTED-GPU", "Exhaustive", 0.90, 4.67, 5.57},
    {"SALTED-APU", "Exhaustive", 0.90, 13.95, 14.85},
    {"SALTED-CPU", "Exhaustive", 0.90, 60.68, 61.58},
    {"SALTED-GPU", "Average", 0.90, 2.42, 3.32},
    {"SALTED-APU", "Average", 0.90, 7.05, 7.95},
    {"SALTED-CPU", "Average", 0.90, 30.52, 31.42},
};

double model_search_time(int row, int d) {
  const HashAlgo h = row < 6 ? HashAlgo::kSha1 : HashAlgo::kSha3_256;
  const bool average = std::string(kPaper[row].type) == "Average";
  const int idx = row % 3;  // row order within each block: GPU, APU, CPU
  if (idx == 0) {  // GPU
    sim::GpuModel gpu;
    return average ? gpu.average_time_s(d, h) : gpu.exhaustive_time_s(d, h);
  }
  if (idx == 1) {  // APU
    sim::ApuModel apu;
    return average ? apu.average_time_s(d, h) : apu.exhaustive_time_s(d, h);
  }
  sim::CpuModel cpu;  // CPU, 64 cores
  return average ? cpu.average_time_s(d, h, 64)
                 : cpu.exhaustive_time_s(d, h, 64);
}

void functional_section() {
  print_title(
      "Functional cross-check — real protocol sessions on this host (d = 2)");
  Table table({"backend", "hash", "auth", "found d", "seeds hashed",
               "host search (s)", "modeled device (s)"});
  for (const char* backend : {"gpu", "apu", "cpu"}) {
    for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
      puf::SramPufModel::Params params;
      params.num_addresses = 2;
      puf::SramPufModel device(params, 42);
      EnrollmentDatabase db(crypto::Aes128::Key{0x11});
      Xoshiro256 rng(7);
      db.enroll(1, device, 60, 0.05, rng);
      RegistrationAuthority ra;
      CaConfig cfg;
      cfg.max_distance = 2;
      EngineConfig ecfg;
      ecfg.host_threads = par::WorkerGroup::default_threads();
      CertificateAuthority ca(cfg, std::move(db),
                              make_backend(backend, ecfg), &ra);
      ClientConfig ccfg;
      ccfg.device_id = 1;
      ccfg.hash_algo = h;
      ccfg.injected_distance = 2;
      Client client(ccfg, &device, 99);
      const auto session = run_authentication(client, ca, ra);
      table.add_row({std::string("SALTED-") + (backend[0] == 'g'   ? "GPU"
                                               : backend[0] == 'a' ? "APU"
                                                                   : "CPU"),
                     std::string(hash::to_string(h)),
                     session.result.authenticated ? "yes" : "NO",
                     std::to_string(session.result.found_distance),
                     std::to_string(session.engine.result.seeds_hashed),
                     fmt(session.result.search_seconds, 4),
                     fmt_sci(session.engine.modeled_device_seconds, 2)});
    }
  }
  table.print();
}

// Exhaustive d = 3 search (2,796,417 seeds, no match in the ball) through
// the real search template with the scalar vs the batched hash policy.
template <typename Hash>
std::pair<double, u64> timed_search(HashAlgo h) {
  Xoshiro256 rng(51);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  comb::ChaseFactory factory;
  par::WorkerGroup pool(1);
  SearchOptions opts;
  opts.max_distance = 3;
  opts.num_threads = 1;
  opts.early_exit = false;
  opts.timeout_s = 600.0;
  typename Hash::digest_type target;
  if (h == HashAlgo::kSha1) {
    const auto d = hash::sha1_seed(unrelated);
    std::memcpy(target.bytes.data(), d.bytes.data(), target.bytes.size());
  } else {
    const auto d = hash::sha3_256_seed(unrelated);
    std::memcpy(target.bytes.data(), d.bytes.data(), target.bytes.size());
  }
  WallTimer timer;
  const auto r =
      rbc_search<Hash>(base, target, factory, pool, opts, Hash{});
  return {timer.elapsed_s(), r.seeds_hashed};
}

void batched_section() {
  print_title(
      "Batched pipeline — scalar vs multi-lane hash policy, host d = 3");
  std::printf("dispatch level: %s\n\n",
              std::string(hash::to_string(hash::active_simd_level())).c_str());
  Table table({"hash", "seeds", "scalar (s)", "batched (s)", "speedup"});
  double measured[2] = {1.0, 1.0};
  {
    const auto [ts, ns] = timed_search<hash::Sha1SeedHash>(HashAlgo::kSha1);
    const auto [tb, nb] =
        timed_search<hash::Sha1BatchSeedHash>(HashAlgo::kSha1);
    RBC_CHECK(ns == nb);
    measured[0] = ts / tb;
    table.add_row({"SHA-1", std::to_string(ns), fmt(ts, 3), fmt(tb, 3),
                   fmt(measured[0], 2) + "x"});
  }
  {
    const auto [ts, ns] =
        timed_search<hash::Sha3SeedHash>(HashAlgo::kSha3_256);
    const auto [tb, nb] =
        timed_search<hash::Sha3BatchSeedHash>(HashAlgo::kSha3_256);
    RBC_CHECK(ns == nb);
    measured[1] = ts / tb;
    table.add_row({"SHA-3", std::to_string(ns), fmt(ts, 3), fmt(tb, 3),
                   fmt(measured[1], 2) + "x"});
  }
  table.print();

  const sim::CpuModel cpu;
  std::printf(
      "\nCPU-model projection with the calibrated batch speedups (d = 5, 64\n"
      "threads): SHA-1 %.2f s -> %.2f s, SHA-3 %.2f s -> %.2f s (pipeline\n"
      "speedup %.2fx / %.2fx; measured on this host: %.2fx / %.2fx).\n",
      cpu.exhaustive_time_s(5, HashAlgo::kSha1, 64),
      cpu.batched_exhaustive_time_s(5, HashAlgo::kSha1, 64),
      cpu.exhaustive_time_s(5, HashAlgo::kSha3_256, 64),
      cpu.batched_exhaustive_time_s(5, HashAlgo::kSha3_256, 64),
      cpu.batched_pipeline_speedup(HashAlgo::kSha1, 64),
      cpu.batched_pipeline_speedup(HashAlgo::kSha3_256, 64),
      measured[0], measured[1]);
}

}  // namespace

int main() {
  print_title("Table 5 — end-to-end response time (s), d = 5");
  const double comm = sim::default_calibration().comm_time_s;

  Table table({"algorithm", "search type", "hash", "paper search", "model search",
               "dev", "paper total", "model total"});
  for (int row = 0; row < 12; ++row) {
    const char* hash_name = row < 6 ? "SHA-1" : "SHA-3";
    const double model = model_search_time(row, 5);
    table.add_row({kPaper[row].algo, kPaper[row].type, hash_name,
                   fmt(kPaper[row].search), fmt(model),
                   deviation(model, kPaper[row].search),
                   fmt(kPaper[row].total), fmt(comm + model)});
  }
  table.print();

  std::printf(
      "\nT = 20 s threshold check (paper: only SALTED-CPU with SHA-3 "
      "misses it):\n");
  for (int row : {6, 7, 8}) {
    const double total = comm + model_search_time(row, 5);
    std::printf("  %-11s SHA-3 exhaustive total %6.2f s -> %s\n",
                kPaper[row].algo, total,
                total <= 20.0 ? "within T" : "EXCEEDS T");
  }

  functional_section();
  batched_section();
  return 0;
}
