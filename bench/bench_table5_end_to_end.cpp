// Table 5: end-to-end response time (comm + search) of SALTED-GPU,
// SALTED-APU and SALTED-CPU for d = 5, SHA-1 and SHA-3, exhaustive and
// average-case searches.
//
// Columns: the paper's published value, the calibrated model's projection
// (paper platform, d = 5), and the deviation. A second section runs REAL
// functional searches end-to-end through the protocol stack at a host-scale
// d (= 3 exhaustive-equivalent effort) and reports measured host times plus
// each backend's modeled device time for the same visited-seed count.
#include "bench_util.hpp"
#include "rbc/protocol.hpp"
#include "rbc/trial.hpp"
#include "sim/apu_model.hpp"
#include "sim/cpu_model.hpp"
#include "sim/gpu_model.hpp"

namespace {

using namespace rbc;
using namespace rbc::bench;
using hash::HashAlgo;

struct PaperRow {
  const char* algo;
  const char* type;
  double comm, search, total;
};

// Table 5 as published.
constexpr PaperRow kPaper[] = {
    {"SALTED-GPU", "Exhaustive", 0.90, 1.56, 2.46},
    {"SALTED-APU", "Exhaustive", 0.90, 1.62, 2.52},
    {"SALTED-CPU", "Exhaustive", 0.90, 12.09, 12.99},
    {"SALTED-GPU", "Average", 0.90, 0.85, 1.75},
    {"SALTED-APU", "Average", 0.90, 0.83, 1.73},
    {"SALTED-CPU", "Average", 0.90, 6.04, 6.94},
    {"SALTED-GPU", "Exhaustive", 0.90, 4.67, 5.57},
    {"SALTED-APU", "Exhaustive", 0.90, 13.95, 14.85},
    {"SALTED-CPU", "Exhaustive", 0.90, 60.68, 61.58},
    {"SALTED-GPU", "Average", 0.90, 2.42, 3.32},
    {"SALTED-APU", "Average", 0.90, 7.05, 7.95},
    {"SALTED-CPU", "Average", 0.90, 30.52, 31.42},
};

double model_search_time(int row, int d) {
  const HashAlgo h = row < 6 ? HashAlgo::kSha1 : HashAlgo::kSha3_256;
  const bool average = std::string(kPaper[row].type) == "Average";
  const int idx = row % 3;  // row order within each block: GPU, APU, CPU
  if (idx == 0) {  // GPU
    sim::GpuModel gpu;
    return average ? gpu.average_time_s(d, h) : gpu.exhaustive_time_s(d, h);
  }
  if (idx == 1) {  // APU
    sim::ApuModel apu;
    return average ? apu.average_time_s(d, h) : apu.exhaustive_time_s(d, h);
  }
  sim::CpuModel cpu;  // CPU, 64 cores
  return average ? cpu.average_time_s(d, h, 64)
                 : cpu.exhaustive_time_s(d, h, 64);
}

void functional_section() {
  print_title(
      "Functional cross-check — real protocol sessions on this host (d = 2)");
  Table table({"backend", "hash", "auth", "found d", "seeds hashed",
               "host search (s)", "modeled device (s)"});
  for (const char* backend : {"gpu", "apu", "cpu"}) {
    for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
      puf::SramPufModel::Params params;
      params.num_addresses = 2;
      puf::SramPufModel device(params, 42);
      EnrollmentDatabase db(crypto::Aes128::Key{0x11});
      Xoshiro256 rng(7);
      db.enroll(1, device, 60, 0.05, rng);
      RegistrationAuthority ra;
      CaConfig cfg;
      cfg.max_distance = 2;
      EngineConfig ecfg;
      ecfg.host_threads = par::WorkerGroup::default_threads();
      CertificateAuthority ca(cfg, std::move(db),
                              make_backend(backend, ecfg), &ra);
      ClientConfig ccfg;
      ccfg.device_id = 1;
      ccfg.hash_algo = h;
      ccfg.injected_distance = 2;
      Client client(ccfg, &device, 99);
      const auto session = run_authentication(client, ca, ra);
      table.add_row({std::string("SALTED-") + (backend[0] == 'g'   ? "GPU"
                                               : backend[0] == 'a' ? "APU"
                                                                   : "CPU"),
                     std::string(hash::to_string(h)),
                     session.result.authenticated ? "yes" : "NO",
                     std::to_string(session.result.found_distance),
                     std::to_string(session.engine.result.seeds_hashed),
                     fmt(session.result.search_seconds, 4),
                     fmt_sci(session.engine.modeled_device_seconds, 2)});
    }
  }
  table.print();
}

}  // namespace

int main() {
  print_title("Table 5 — end-to-end response time (s), d = 5");
  const double comm = sim::default_calibration().comm_time_s;

  Table table({"algorithm", "search type", "hash", "paper search", "model search",
               "dev", "paper total", "model total"});
  for (int row = 0; row < 12; ++row) {
    const char* hash_name = row < 6 ? "SHA-1" : "SHA-3";
    const double model = model_search_time(row, 5);
    table.add_row({kPaper[row].algo, kPaper[row].type, hash_name,
                   fmt(kPaper[row].search), fmt(model),
                   deviation(model, kPaper[row].search),
                   fmt(kPaper[row].total), fmt(comm + model)});
  }
  table.print();

  std::printf(
      "\nT = 20 s threshold check (paper: only SALTED-CPU with SHA-3 "
      "misses it):\n");
  for (int row : {6, 7, 8}) {
    const double total = comm + model_search_time(row, 5);
    std::printf("  %-11s SHA-3 exhaustive total %6.2f s -> %s\n",
                kPaper[row].algo, total,
                total <= 20.0 ? "within T" : "EXCEEDS T");
  }

  functional_section();
  return 0;
}
