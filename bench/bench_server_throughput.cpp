// Multi-session server throughput: the paper's threshold-T protocol run as a
// SERVER workload rather than one isolated search. M concurrent clients
// submit authentication sessions against one CA+RA pair; per-session search
// width is kept narrow (1 host thread) so concurrency comes from overlapping
// SESSIONS multiplexed on the shared WorkerGroup — the paper's "authenticate
// a stream of clients" framing.
//
// The channel runs in REALTIME mode: per-message latency and the client's
// PUF read are slept in wall-clock time (scaled down from the paper's
// 0.15 s/0.30 s to keep the bench short). That is where a server's
// concurrency win lives — overlapping sessions overlap their I/O waits,
// while search compute multiplexes on the shared WorkerGroup. This keeps
// the bench meaningful on any core count, including single-core hosts.
//
// Phase 1 measures the single-session baseline (max_in_flight = 1); phase 2
// sweeps concurrent clients. Correctness is asserted per session: every
// device's registered key must equal its own client's derivation — any
// cross-session state bleed breaks the equality.
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "server/auth_server.hpp"

namespace {

using namespace rbc;

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x42;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

struct Workload {
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  std::vector<u64> device_ids;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;

  explicit Workload(int num_devices) {
    EnrollmentDatabase db(master_key());
    for (int i = 0; i < num_devices; ++i) {
      const u64 id = 1000 + static_cast<u64>(i);
      devices.push_back(
          std::make_unique<puf::SramPufModel>(device_params(), id));
      device_ids.push_back(id);
      Xoshiro256 enroll_rng(id ^ 0xE27011);
      db.enroll(id, *devices.back(), 100, 0.05, enroll_rng);
    }
    CaConfig ca_cfg;
    ca_cfg.max_distance = 2;  // Eq. 3 average ~16.6k SHA-3 hashes/session
    ca_cfg.time_threshold_s = 600.0;
    EngineConfig engine_cfg;
    engine_cfg.host_threads = 1;  // narrow sessions; concurrency across them
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend("cpu", engine_cfg), &ra);
  }

  std::unique_ptr<Client> make_client(int device_index, u64 rng_salt) const {
    ClientConfig ccfg;
    ccfg.device_id = device_ids[static_cast<std::size_t>(device_index)];
    ccfg.injected_distance = 1;
    ccfg.puf_read_time_s = 0.10;  // scaled-down realtime PUF read
    return std::make_unique<Client>(
        ccfg, devices[static_cast<std::size_t>(device_index)].get(),
        ccfg.device_id ^ rng_salt);
  }
};

struct RunResult {
  double wall_s = 0.0;
  double sessions_per_s = 0.0;
  server::ServerStats stats;
  int key_mismatches = 0;
};

/// Runs `sessions` authentications (one per device) with `concurrency`
/// submitting clients against a server with `concurrency` drivers.
RunResult run_phase(Workload& w, int sessions, int concurrency, u64 salt) {
  server::ServerConfig cfg;
  cfg.max_queue_depth = sessions;  // admission bound is not under test here
  cfg.max_in_flight = concurrency;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.05;  // scaled-down wire latency, slept
  cfg.realtime_comm = true;
  server::AuthServer server(cfg, w.ca.get(), &w.ra);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) clients.push_back(w.make_client(i, salt));

  std::vector<std::future<server::SessionOutcome>> futures(
      static_cast<std::size_t>(sessions));
  WallTimer timer;
  {
    // `concurrency` client threads, each submitting its share of sessions
    // and blocking on the outcome before the next — the M-concurrent-client
    // shape rather than one burst.
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(concurrency));
    for (int c = 0; c < concurrency; ++c) {
      submitters.emplace_back([&, c] {
        for (int i = c; i < sessions; i += concurrency) {
          auto future = server.submit(clients[static_cast<unsigned>(i)].get());
          future.wait();
          futures[static_cast<unsigned>(i)] = std::move(future);
        }
      });
    }
    for (auto& t : submitters) t.join();
  }

  RunResult r;
  r.wall_s = timer.elapsed_s();
  r.sessions_per_s = sessions / r.wall_s;
  for (int i = 0; i < sessions; ++i) {
    const auto outcome = futures[static_cast<unsigned>(i)].get();
    const auto registered = w.ra.lookup(outcome.device_id);
    const bool ok = outcome.accepted && outcome.authenticated &&
                    registered.has_value() &&
                    *registered == clients[static_cast<unsigned>(i)]
                                       ->derive_public_key(w.ca->config().salt);
    if (!ok) ++r.key_mismatches;
  }
  r.stats = server.stats();
  return r;
}

}  // namespace

int main() {
  using namespace rbc::bench;

  const int sessions = 48;
  print_title("Server throughput — M concurrent clients, one CA (SHA-3, d=2)");
  std::printf("%d sessions over %d distinct devices; per-session search width "
              "1 thread;\nrealtime comm: 4 x 0.05 s wire + 0.10 s PUF read "
              "slept per session;\nsessions multiplex on the shared "
              "WorkerGroup (%d workers).\n",
              sessions, sessions, rbc::par::WorkerGroup::shared().size());

  Workload workload(sessions);

  // Phase 1: single-session baseline.
  const RunResult base = run_phase(workload, sessions, 1, 0xA5);

  // Phase 2: concurrency sweep.
  Table table({"clients", "wall (s)", "sessions/s", "speedup", "p50 (s)",
               "p95 (s)", "auth", "corrupt"});
  table.add_row({"1", fmt(base.wall_s), fmt(base.sessions_per_s, 1), "1.00",
                 fmt(base.stats.p50_session_s, 3),
                 fmt(base.stats.p95_session_s, 3),
                 std::to_string(base.stats.authenticated),
                 std::to_string(base.key_mismatches)});
  double speedup_at_8 = 0.0;
  int corrupt = base.key_mismatches;
  for (int clients : {2, 4, 8}) {
    const RunResult r =
        run_phase(workload, sessions, clients, 0xB0 + static_cast<u64>(clients));
    const double speedup = r.sessions_per_s / base.sessions_per_s;
    if (clients == 8) speedup_at_8 = speedup;
    corrupt += r.key_mismatches;
    table.add_row({std::to_string(clients), fmt(r.wall_s),
                   fmt(r.sessions_per_s, 1), fmt(speedup),
                   fmt(r.stats.p50_session_s, 3), fmt(r.stats.p95_session_s, 3),
                   std::to_string(r.stats.authenticated),
                   std::to_string(r.key_mismatches)});
  }
  table.print();

  std::printf("\nSpeedup at 8 concurrent clients: %.2fx (target >= 4x); "
              "cross-session corruptions: %d (target 0)\n",
              speedup_at_8, corrupt);
  const bool pass = speedup_at_8 >= 4.0 && corrupt == 0;
  std::printf("RESULT: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
