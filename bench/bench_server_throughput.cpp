// Multi-session server throughput: the paper's threshold-T protocol run as a
// SERVER workload rather than one isolated search. M concurrent clients
// submit authentication sessions against one CA+RA pair; per-session search
// width is kept narrow (1 host thread) so concurrency comes from overlapping
// SESSIONS multiplexed on the shared WorkerGroup — the paper's "authenticate
// a stream of clients" framing.
//
// The channel runs in REALTIME mode: per-message latency and the client's
// PUF read are slept in wall-clock time (scaled down from the paper's
// 0.15 s/0.30 s to keep the bench short). That is where a server's
// concurrency win lives — overlapping sessions overlap their I/O waits,
// while search compute multiplexes on the shared WorkerGroup. This keeps
// the bench meaningful on any core count, including single-core hosts.
//
// Phase 1 measures the single-session baseline (max_in_flight = 1); phase 2
// sweeps concurrent clients. Correctness is asserted per session: every
// device's registered key must equal its own client's derivation — any
// cross-session state bleed breaks the equality.
//
// Phase 3 is the SHARD SWEEP (PR 6): the same server totals (drivers, queue
// slots, submitters) run with num_shards in {1, 2, 4, 8}. Two workloads:
//   equal-resource realtime — closed-loop clients with slept I/O; sharding
//     must cost nothing (throughput parity, p95 no worse than the
//     single-queue baseline);
//   dispatch overhead     — non-realtime burst of trivial sessions, so the
//     serving seam (admission, EDF heap, stats, device locks) IS the
//     workload; per-session overhead across shard counts.
// `--json <path>` records the sweep for BENCH_PR6.json; `--sweep-only`
// skips phases 1-2 (the CI smoke).
//
// Phase 4 is the CHAOS phase (PR 7): the same realtime workload run against
// seed-reproducible fault plans at drop rates {0%, 2%, 5%, 10%}, quantifying
// how the ARQ's retransmit/backoff schedule degrades tail latency as the
// link gets lossier. `--chaos-only` runs just this phase (the CI chaos
// smoke); every run uses fixed seeds, so the numbers replay exactly.
//
// Phase 5 is the LANE FUSION phase (PR 8): a many-small-sessions burst
// (4096 sessions, SHA-3, d = 2) run solo and then with the per-shard
// FusionEngine multiplexing every in-flight session's candidate stream into
// shared 64-lane tagged hash batches. Gates: fused >= 1.3x solo sessions/s
// and lane occupancy >= 0.9. `--fusion-only` runs just this phase (the CI
// fusion smoke) and `--json` records it as BENCH_PR8.json.
//
// Phase 6 is the SEARCH ORDERING phase (PR 9): a d = 3 burst with TAPKI off
// and model-default erratic-cell noise, run under canonical enumeration and
// again under maximum-likelihood-first enumeration (the enrollment-time
// reliability profile). Both runs replay byte-identical sessions. Gates:
// identical per-session verdicts, 0 corruptions, >= 5x fewer hashes per
// authenticated session and >= 1.5x sessions/s. `--ordering-only` runs just
// this phase and `--json` records it as BENCH_PR9.json.
//
// Phase 7 is the OBSERVABILITY phase (PR 10): the dispatch-overhead burst
// (8 shards, non-realtime — the shape where per-session serving cost is the
// whole workload) run untraced and then with session tracing + the flight
// recorder armed. Gates: traced p95 within 5% of untraced (or inside an
// absolute sub-millisecond noise floor), zero corruptions, and the traced
// server actually recorded spans. `--obs-only` runs just this phase,
// `--json` records it as BENCH_PR10.json, and `--metrics-out <path>` dumps
// the traced server's metrics snapshot as the rbc.metrics.v1 JSON document
// (plus a Prometheus text sidecar at <path>.prom) for
// scripts/check_metrics.py to validate.
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "server/auth_server.hpp"

namespace {

using namespace rbc;

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x42;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

struct Workload {
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  std::vector<u64> device_ids;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;

  explicit Workload(int num_devices) {
    EnrollmentDatabase db(master_key());
    for (int i = 0; i < num_devices; ++i) {
      const u64 id = 1000 + static_cast<u64>(i);
      devices.push_back(
          std::make_unique<puf::SramPufModel>(device_params(), id));
      device_ids.push_back(id);
      Xoshiro256 enroll_rng(id ^ 0xE27011);
      db.enroll(id, *devices.back(), 100, 0.05, enroll_rng);
    }
    CaConfig ca_cfg;
    ca_cfg.max_distance = 2;  // Eq. 3 average ~16.6k SHA-3 hashes/session
    ca_cfg.time_threshold_s = 600.0;
    EngineConfig engine_cfg;
    engine_cfg.host_threads = 1;  // narrow sessions; concurrency across them
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend("cpu", engine_cfg), &ra);
  }

  std::unique_ptr<Client> make_client(int device_index, u64 rng_salt) const {
    ClientConfig ccfg;
    ccfg.device_id = device_ids[static_cast<std::size_t>(device_index)];
    ccfg.injected_distance = 1;
    ccfg.puf_read_time_s = 0.10;  // scaled-down realtime PUF read
    return std::make_unique<Client>(
        ccfg, devices[static_cast<std::size_t>(device_index)].get(),
        ccfg.device_id ^ rng_salt);
  }
};

struct RunResult {
  double wall_s = 0.0;
  double sessions_per_s = 0.0;
  server::ServerStats stats;
  int key_mismatches = 0;
  /// Metrics snapshots exported before the server is torn down (filled only
  /// when SweepConfig::capture_metrics is set).
  std::string metrics_json;
  std::string metrics_prom;
};

/// Runs `sessions` authentications (one per device) with `concurrency`
/// submitting clients against a server with `concurrency` drivers.
RunResult run_phase(Workload& w, int sessions, int concurrency, u64 salt) {
  server::ServerConfig cfg;
  cfg.max_queue_depth = sessions;  // admission bound is not under test here
  cfg.max_in_flight = concurrency;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.05;  // scaled-down wire latency, slept
  cfg.realtime_comm = true;
  server::AuthServer server(cfg, w.ca.get(), &w.ra);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) clients.push_back(w.make_client(i, salt));

  std::vector<std::future<server::SessionOutcome>> futures(
      static_cast<std::size_t>(sessions));
  WallTimer timer;
  {
    // `concurrency` client threads, each submitting its share of sessions
    // and blocking on the outcome before the next — the M-concurrent-client
    // shape rather than one burst.
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(concurrency));
    for (int c = 0; c < concurrency; ++c) {
      submitters.emplace_back([&, c] {
        for (int i = c; i < sessions; i += concurrency) {
          auto future = server.submit(clients[static_cast<unsigned>(i)].get());
          future.wait();
          futures[static_cast<unsigned>(i)] = std::move(future);
        }
      });
    }
    for (auto& t : submitters) t.join();
  }

  RunResult r;
  r.wall_s = timer.elapsed_s();
  r.sessions_per_s = sessions / r.wall_s;
  for (int i = 0; i < sessions; ++i) {
    const auto outcome = futures[static_cast<unsigned>(i)].get();
    const auto registered = w.ra.lookup(outcome.device_id);
    const bool ok = outcome.accepted && outcome.authenticated &&
                    registered.has_value() &&
                    *registered == clients[static_cast<unsigned>(i)]
                                       ->derive_public_key(w.ca->config().salt);
    if (!ok) ++r.key_mismatches;
  }
  r.stats = server.stats();
  return r;
}

/// Phase-3 workload knobs. Resources (drivers, queue slots, submitters) are
/// SERVER TOTALS and stay constant across the shard counts — the sweep
/// varies only how they are partitioned.
struct SweepConfig {
  int sessions = 0;
  int submitters = 0;
  int total_drivers = 0;
  bool realtime = false;
  double latency_s = 0.0;
  double puf_read_s = 0.0;
  /// Observability knobs (phase 7): arm the span tracer / flight recorder
  /// and export the server's metrics snapshot into the RunResult.
  bool trace = false;
  bool flight_recorder = false;
  bool capture_metrics = false;
};

std::unique_ptr<Client> make_sweep_client(const Workload& w, int session_index,
                                          double puf_read_s, u64 salt) {
  const std::size_t device =
      static_cast<std::size_t>(session_index) % w.device_ids.size();
  ClientConfig ccfg;
  ccfg.device_id = w.device_ids[device];
  ccfg.injected_distance = 1;
  ccfg.puf_read_time_s = puf_read_s;
  return std::make_unique<Client>(ccfg, w.devices[device].get(),
                                  ccfg.device_id ^ salt);
}

/// One shard-sweep point: `sc.sessions` sessions against a server with
/// `num_shards` shards carved out of the constant totals.
RunResult run_sweep_point(Workload& w, const SweepConfig& sc, int num_shards,
                          u64 salt) {
  server::ServerConfig cfg;
  cfg.num_shards = num_shards;
  // 2x headroom: burst submissions route by hash, so per-shard load is
  // binomial around sessions/num_shards; the sweep measures dispatch, not
  // shedding.
  cfg.max_queue_depth = 2 * sc.sessions;
  cfg.max_in_flight = sc.total_drivers;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = sc.latency_s;
  cfg.realtime_comm = sc.realtime;
  cfg.trace_enabled = sc.trace;
  cfg.flight_recorder = sc.flight_recorder;
  server::AuthServer server(cfg, w.ca.get(), &w.ra);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<std::size_t>(sc.sessions));
  for (int i = 0; i < sc.sessions; ++i)
    clients.push_back(make_sweep_client(w, i, sc.puf_read_s, salt));

  std::vector<std::future<server::SessionOutcome>> futures(
      static_cast<std::size_t>(sc.sessions));
  WallTimer timer;
  {
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(sc.submitters));
    for (int c = 0; c < sc.submitters; ++c) {
      submitters.emplace_back([&, c] {
        for (int i = c; i < sc.sessions; i += sc.submitters) {
          auto future = server.submit(clients[static_cast<unsigned>(i)].get());
          if (sc.realtime) future.wait();  // closed loop when I/O is slept
          futures[static_cast<unsigned>(i)] = std::move(future);
        }
      });
    }
    for (auto& t : submitters) t.join();
    for (auto& f : futures) f.wait();  // drain the open-loop burst
  }

  RunResult r;
  r.wall_s = timer.elapsed_s();
  r.sessions_per_s = sc.sessions / r.wall_s;
  for (int i = 0; i < sc.sessions; ++i) {
    const auto outcome = futures[static_cast<unsigned>(i)].get();
    // Devices serve many sessions here (the RA row rotates each time), so
    // correctness is per SESSION: the key this session registered must be
    // its own client's derivation.
    const bool ok = outcome.accepted && outcome.authenticated &&
                    outcome.report.registered_public_key ==
                        clients[static_cast<unsigned>(i)]->derive_public_key(
                            w.ca->config().salt);
    if (!ok) ++r.key_mismatches;
  }
  r.stats = server.stats();
  if (sc.capture_metrics) {
    r.metrics_json = server.export_metrics(rbc::obs::MetricsFormat::kJson);
    r.metrics_prom =
        server.export_metrics(rbc::obs::MetricsFormat::kPrometheus);
  }
  return r;
}

struct SweepRow {
  int shards = 0;
  RunResult r;
};

// ---------------------------------------------------------------------------
// Phase 5 (PR 8): cross-session lane fusion.
// ---------------------------------------------------------------------------

/// Phase-5 client: d = 2 sessions (where the search — and therefore the
/// fusion win — lives) with cheap key derivation, so the session cost is
/// the serving + search seam rather than client-side crypto.
std::unique_ptr<Client> make_fusion_client(const Workload& w,
                                           int session_index, u64 salt) {
  const std::size_t device =
      static_cast<std::size_t>(session_index) % w.device_ids.size();
  ClientConfig ccfg;
  ccfg.device_id = w.device_ids[device];
  ccfg.injected_distance = 2;
  ccfg.keygen_algo = crypto::KeygenAlgo::kAes128;
  ccfg.puf_read_time_s = 0.0;
  return std::make_unique<Client>(ccfg, w.devices[device].get(),
                                  ccfg.device_id ^ salt);
}

/// One fusion point: `sessions` non-realtime burst sessions on one shard
/// with `drivers` drivers, fusion on or off. Deep driver overlap is what
/// feeds the fused batches; the unfused run gets the identical shape.
RunResult run_fusion_point(Workload& w, int sessions, int submitters,
                           int drivers, bool fused, u64 salt) {
  server::ServerConfig cfg;
  cfg.num_shards = 1;
  cfg.max_queue_depth = 2 * sessions;
  cfg.max_in_flight = drivers;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.0;
  cfg.realtime_comm = false;
  cfg.fusion_enabled = fused;
  cfg.fusion_lanes = 64;  // full tagged-kernel width amortizes batch setup
  server::AuthServer server(cfg, w.ca.get(), &w.ra);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i)
    clients.push_back(make_fusion_client(w, i, salt));

  std::vector<std::future<server::SessionOutcome>> futures(
      static_cast<std::size_t>(sessions));
  WallTimer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(submitters));
    for (int c = 0; c < submitters; ++c) {
      threads.emplace_back([&, c] {
        for (int i = c; i < sessions; i += submitters) {
          futures[static_cast<unsigned>(i)] =
              server.submit(clients[static_cast<unsigned>(i)].get());
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& f : futures) f.wait();  // drain the open-loop burst
  }

  RunResult r;
  r.wall_s = timer.elapsed_s();
  r.sessions_per_s = sessions / r.wall_s;
  for (int i = 0; i < sessions; ++i) {
    const auto outcome = futures[static_cast<unsigned>(i)].get();
    const bool ok = outcome.accepted && outcome.authenticated &&
                    outcome.report.registered_public_key ==
                        clients[static_cast<unsigned>(i)]->derive_public_key(
                            w.ca->config().salt);
    if (!ok) ++r.key_mismatches;
  }
  r.stats = server.stats();
  return r;
}

struct FusionPhaseResult {
  RunResult unfused;
  RunResult fused;
  double speedup = 0.0;
  double occupancy = 0.0;
  bool pass = false;
};

/// Phase 5: fused vs unfused sessions/s on the d<=2 SHA-3 burst.
FusionPhaseResult run_fusion_phase(Workload& w, int sessions) {
  constexpr int kSubmitters = 4;
  constexpr int kDrivers = 16;
  rbc::bench::print_title(
      "Lane fusion — continuous batching of hash work across sessions");
  std::printf(
      "%d-session open-loop burst (SHA-3, d=2), %d drivers, 1 shard;\n"
      "fused runs multiplex every in-flight session's candidate stream into "
      "shared\n64-lane hash batches (cached shell tables replace per-session "
      "prepare walks).\n",
      sessions, kDrivers);

  FusionPhaseResult p;
  p.unfused = run_fusion_point(w, sessions, kSubmitters, kDrivers,
                               /*fused=*/false, 0xF0);
  p.fused = run_fusion_point(w, sessions, kSubmitters, kDrivers,
                             /*fused=*/true, 0xF0);
  p.speedup = p.fused.sessions_per_s / p.unfused.sessions_per_s;
  p.occupancy = p.fused.stats.lane_occupancy;

  rbc::bench::Table table({"mode", "wall (s)", "sessions/s", "speedup",
                           "occupancy", "batches", "fused", "auth",
                           "corrupt"});
  table.add_row({"solo", rbc::bench::fmt(p.unfused.wall_s, 3),
                 rbc::bench::fmt(p.unfused.sessions_per_s, 1), "1.00", "-",
                 "-", "0", std::to_string(p.unfused.stats.authenticated),
                 std::to_string(p.unfused.key_mismatches)});
  table.add_row({"fused", rbc::bench::fmt(p.fused.wall_s, 3),
                 rbc::bench::fmt(p.fused.sessions_per_s, 1),
                 rbc::bench::fmt(p.speedup),
                 rbc::bench::fmt(p.occupancy, 3),
                 std::to_string(p.fused.stats.fusion_batches),
                 std::to_string(p.fused.stats.fused_sessions),
                 std::to_string(p.fused.stats.authenticated),
                 std::to_string(p.fused.key_mismatches)});
  table.print();

  const int corrupt = p.unfused.key_mismatches + p.fused.key_mismatches;
  p.pass = p.speedup >= 1.3 && p.occupancy >= 0.9 && corrupt == 0;
  std::printf("\nFused vs solo: %.2fx sessions/s (target >= 1.30x); lane "
              "occupancy %.3f (target >= 0.900); corruptions: %d (target 0)\n",
              p.speedup, p.occupancy, corrupt);
  return p;
}

void write_fusion_json(const std::string& path, int sessions,
                       const FusionPhaseResult& p) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto emit_run = [out](const char* name, const RunResult& r, bool last) {
    std::fprintf(
        out,
        "    \"%s\": { \"wall_s\": %.4f, \"sessions_per_s\": %.1f, "
        "\"authenticated\": %llu, \"corrupt\": %d, \"fused_sessions\": %llu, "
        "\"fusion_batches\": %llu, \"lanes_filled\": %llu, "
        "\"lanes_issued\": %llu, \"lane_occupancy\": %.4f }%s\n",
        name, r.wall_s, r.sessions_per_s,
        static_cast<unsigned long long>(r.stats.authenticated),
        r.key_mismatches,
        static_cast<unsigned long long>(r.stats.fused_sessions),
        static_cast<unsigned long long>(r.stats.fusion_batches),
        static_cast<unsigned long long>(r.stats.fusion_lanes_filled),
        static_cast<unsigned long long>(r.stats.fusion_lanes_issued),
        r.stats.lane_occupancy, last ? "" : ",");
  };
  std::fprintf(out, "{\n  \"pr\": 8,\n");
  std::fprintf(out,
               "  \"title\": \"Cross-session lane fusion: continuous "
               "batching of hash work across concurrent sessions\",\n");
  std::fprintf(out,
               "  \"host\": { \"cpu\": \"x86_64, %u hardware thread(s)\" },\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"fusion_burst\": {\n"
               "    \"note\": \"%d-session open-loop burst, SHA-3 d=2, 16 "
               "drivers, 1 shard, non-realtime channel; fused = per-shard "
               "FusionEngine multiplexing all in-flight candidate streams "
               "into shared 64-lane tagged batches\",\n",
               sessions);
  emit_run("solo", p.unfused, false);
  emit_run("fused", p.fused, false);
  std::fprintf(out,
               "    \"speedup_fused_vs_solo\": %.3f,\n"
               "    \"lane_occupancy\": %.4f,\n"
               "    \"acceptance_speedup_1_3x_met\": %s,\n"
               "    \"acceptance_occupancy_0_9_met\": %s\n  }\n}\n",
               p.speedup, p.occupancy, p.speedup >= 1.3 ? "true" : "false",
               p.occupancy >= 0.9 ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Phase 6 (PR 9): reliability-guided search ordering
// ---------------------------------------------------------------------------

/// Devices for the ordering phase. One address per device makes the CA's
/// striped challenge draw (next_below(1) == 0) independent of submission
/// interleaving, so the canonical and reliability runs see byte-identical
/// challenges and their per-session verdicts are directly comparable.
puf::SramPufModel::Params ordering_device_params() {
  puf::SramPufModel::Params p;
  // Model-default per-cell noise RATES (erratic p in [0.125, 0.375) after
  // jitter, stable floor 0.004) over a denser erratic population: with ~26
  // erratic cells a raw read flips ~7 on average, so adjust_to_distance
  // almost always TRIMS down to the injected distance and the surviving
  // flips are the erratic cells the profile ranks first. At the default 5%
  // population ~8% of reads flip fewer than three cells and get uniform
  // stable flips *injected* — noise that is unpredictable by construction
  // and whose deep ordered ranks dominate the mean despite being a tail.
  p.num_addresses = 1;
  p.erratic_cell_fraction = 0.10;
  return p;
}

/// A fresh workload per ordering run: both orders must start from identical
/// enrollment, challenge-RNG and client-RNG states, so nothing may be
/// shared (or mutated) across the two measured runs.
struct OrderingWorkload {
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  std::vector<u64> device_ids;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;

  explicit OrderingWorkload(int num_devices) {
    EnrollmentDatabase db(master_key());
    for (int i = 0; i < num_devices; ++i) {
      const u64 id = 5000 + static_cast<u64>(i);
      devices.push_back(
          std::make_unique<puf::SramPufModel>(ordering_device_params(), id));
      device_ids.push_back(id);
      Xoshiro256 enroll_rng(id ^ 0xE27011);
      // max_flip_rate = 1.0: nothing is TAPKI-masked at enrollment, so the
      // profile keeps every cell's MEASURED log-odds. Enrolling with the
      // TAPKI default would pin the erratic cells to kPinnedWeight and sort
      // exactly the likely flips to the END of every shell.
      db.enroll(id, *devices.back(), 100, 1.0, enroll_rng);
    }
    CaConfig ca_cfg;
    // TAPKI off: the erratic cells STAY in the seed, so the session noise is
    // exactly the noise the reliability profile predicts. (With TAPKI on the
    // profile's informative cells are masked out and injected noise lands
    // uniformly on same-weight stable cells — nothing to reorder.)
    ca_cfg.tapki_enabled = false;
    ca_cfg.max_distance = 3;
    ca_cfg.time_threshold_s = 600.0;
    EngineConfig engine_cfg;
    engine_cfg.host_threads = 1;
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend("cpu", engine_cfg), &ra);
  }

  std::unique_ptr<Client> make_client(int device_index, u64 rng_salt) const {
    ClientConfig ccfg;
    ccfg.device_id = device_ids[static_cast<std::size_t>(device_index)];
    // Distance-3 sessions: the client's raw read flips mostly erratic cells
    // (~2-3 per read), then adjust_to_distance trims to exactly 3 — so the
    // surviving flips are the low-weight cells the profile ranks first. 63
    // majority reads keep a majority-wrong reference cell (which would push
    // the true distance past 3 and turn the session into a full-ball miss)
    // rare.
    ccfg.injected_distance = 3;
    ccfg.majority_reads = 63;
    ccfg.puf_read_time_s = 0.0;
    return std::make_unique<Client>(
        ccfg, devices[static_cast<std::size_t>(device_index)].get(),
        ccfg.device_id ^ rng_salt);
  }
};

struct OrderingRun {
  double wall_s = 0.0;
  double sessions_per_s = 0.0;
  int key_mismatches = 0;
  u64 authenticated = 0;
  double mean_hashes_auth = 0.0;      // mean seeds_hashed, authenticated only
  double mean_canonical_rank = 0.0;   // where canonical order would have hit
  std::vector<u8> verdicts;           // per session, order-comparable
  std::vector<u64> hit_hashes;        // per authenticated session
};

/// One measured ordering run: a non-realtime open-loop burst against a
/// 1-shard server forced to `order`. Builds its own workload so the two
/// orders replay identical sessions.
OrderingRun run_ordering_point(int sessions, int submitters, int drivers,
                               SearchOrder order, u64 salt) {
  OrderingWorkload w(sessions);
  server::ServerConfig cfg;
  cfg.num_shards = 1;
  cfg.max_queue_depth = 2 * sessions;
  cfg.max_in_flight = drivers;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.0;
  cfg.realtime_comm = false;
  cfg.search_order = order;
  server::AuthServer server(cfg, w.ca.get(), &w.ra);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) clients.push_back(w.make_client(i, salt));

  std::vector<std::future<server::SessionOutcome>> futures(
      static_cast<std::size_t>(sessions));
  WallTimer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(submitters));
    for (int c = 0; c < submitters; ++c) {
      threads.emplace_back([&, c] {
        for (int i = c; i < sessions; i += submitters) {
          futures[static_cast<unsigned>(i)] =
              server.submit(clients[static_cast<unsigned>(i)].get());
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& f : futures) f.wait();
  }

  OrderingRun r;
  r.wall_s = timer.elapsed_s();
  r.sessions_per_s = sessions / r.wall_s;
  r.verdicts.reserve(static_cast<std::size_t>(sessions));
  double hash_sum = 0.0, rank_sum = 0.0;
  for (int i = 0; i < sessions; ++i) {
    const auto outcome = futures[static_cast<unsigned>(i)].get();
    r.verdicts.push_back(outcome.authenticated ? 1 : 0);
    if (!outcome.authenticated) continue;
    ++r.authenticated;
    const bool ok = outcome.accepted &&
                    outcome.report.registered_public_key ==
                        clients[static_cast<unsigned>(i)]->derive_public_key(
                            w.ca->config().salt);
    if (!ok) ++r.key_mismatches;
    r.hit_hashes.push_back(outcome.report.engine.result.seeds_hashed);
    hash_sum += static_cast<double>(outcome.report.engine.result.seeds_hashed);
    rank_sum +=
        static_cast<double>(outcome.report.engine.result.canonical_rank);
  }
  if (r.authenticated > 0) {
    r.mean_hashes_auth = hash_sum / static_cast<double>(r.authenticated);
    r.mean_canonical_rank = rank_sum / static_cast<double>(r.authenticated);
  }
  return r;
}

/// log2 histogram of per-session hit costs (authenticated sessions only):
/// bucket b counts sessions with seeds_hashed in [2^b, 2^(b+1)).
std::vector<u64> hit_histogram(const std::vector<u64>& hits) {
  std::vector<u64> buckets(24, 0);
  for (u64 h : hits) {
    unsigned b = 0;
    while ((u64{2} << b) <= h && b + 1 < buckets.size()) ++b;
    ++buckets[b];
  }
  return buckets;
}

struct OrderingPhaseResult {
  OrderingRun canonical;
  OrderingRun reliability;
  double hash_reduction = 0.0;  // canonical mean hashes / reliability mean
  double speedup = 0.0;         // reliability sessions/s / canonical
  bool verdicts_match = false;
  bool pass = false;
};

/// Phase 6: canonical vs maximum-likelihood-first enumeration on a d=3
/// burst with model-default erratic-cell noise.
OrderingPhaseResult run_ordering_phase(int sessions) {
  constexpr int kSubmitters = 4;
  constexpr int kDrivers = 16;
  rbc::bench::print_title(
      "Search ordering — maximum-likelihood-first candidate enumeration");
  std::printf(
      "%d-session open-loop burst (SHA-3, injected d=3, TAPKI off, 1 "
      "address/device),\n%d drivers, 1 shard; both orders replay identical "
      "challenges and client reads,\nso per-session verdicts must match "
      "exactly.\n",
      sessions, kDrivers);

  OrderingPhaseResult p;
  p.canonical = run_ordering_point(sessions, kSubmitters, kDrivers,
                                   SearchOrder::kCanonical, 0x0D3);
  p.reliability = run_ordering_point(sessions, kSubmitters, kDrivers,
                                     SearchOrder::kReliability, 0x0D3);
  p.verdicts_match = p.canonical.verdicts == p.reliability.verdicts;
  if (p.reliability.mean_hashes_auth > 0.0)
    p.hash_reduction =
        p.canonical.mean_hashes_auth / p.reliability.mean_hashes_auth;
  p.speedup = p.reliability.sessions_per_s / p.canonical.sessions_per_s;

  rbc::bench::Table table({"order", "wall (s)", "sessions/s", "auth",
                           "mean hashes/auth", "mean canonical rank",
                           "corrupt"});
  table.add_row({"canonical", rbc::bench::fmt(p.canonical.wall_s, 3),
                 rbc::bench::fmt(p.canonical.sessions_per_s, 1),
                 std::to_string(p.canonical.authenticated),
                 rbc::bench::fmt(p.canonical.mean_hashes_auth, 0),
                 rbc::bench::fmt(p.canonical.mean_canonical_rank, 0),
                 std::to_string(p.canonical.key_mismatches)});
  table.add_row({"reliability", rbc::bench::fmt(p.reliability.wall_s, 3),
                 rbc::bench::fmt(p.reliability.sessions_per_s, 1),
                 std::to_string(p.reliability.authenticated),
                 rbc::bench::fmt(p.reliability.mean_hashes_auth, 0),
                 rbc::bench::fmt(p.reliability.mean_canonical_rank, 0),
                 std::to_string(p.reliability.key_mismatches)});
  table.print();

  std::printf("\nhit-cost histogram (authenticated sessions, log2 buckets of "
              "seeds_hashed):\n  bucket:      ");
  const auto canon_hist = hit_histogram(p.canonical.hit_hashes);
  const auto rel_hist = hit_histogram(p.reliability.hit_hashes);
  for (std::size_t b = 14; b < canon_hist.size(); ++b)
    std::printf(" 2^%-3zu", b);
  std::printf("\n  canonical:   ");
  for (std::size_t b = 14; b < canon_hist.size(); ++b)
    std::printf(" %-5llu", static_cast<unsigned long long>(canon_hist[b]));
  std::printf("\n  reliability: ");
  for (std::size_t b = 14; b < rel_hist.size(); ++b)
    std::printf(" %-5llu", static_cast<unsigned long long>(rel_hist[b]));
  std::printf("\n");

  const int corrupt =
      p.canonical.key_mismatches + p.reliability.key_mismatches;
  p.pass = p.verdicts_match && corrupt == 0 && p.hash_reduction >= 5.0 &&
           p.speedup >= 1.5;
  std::printf(
      "\nReliability vs canonical: %.1fx fewer hashes per authenticated "
      "session (target >= 5.0x);\n%.2fx sessions/s (target >= 1.50x); "
      "verdicts %s (target: identical); corruptions: %d (target 0)\n",
      p.hash_reduction, p.speedup,
      p.verdicts_match ? "identical" : "DIVERGED", corrupt);
  return p;
}

void write_ordering_json(const std::string& path, int sessions,
                         const OrderingPhaseResult& p) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto emit_run = [out](const char* name, const OrderingRun& r) {
    std::fprintf(
        out,
        "    \"%s\": { \"wall_s\": %.4f, \"sessions_per_s\": %.1f, "
        "\"authenticated\": %llu, \"corrupt\": %d, "
        "\"mean_hashes_per_auth\": %.1f, \"mean_canonical_rank\": %.1f, "
        "\"hit_histogram_log2\": [",
        name, r.wall_s, r.sessions_per_s,
        static_cast<unsigned long long>(r.authenticated), r.key_mismatches,
        r.mean_hashes_auth, r.mean_canonical_rank);
    const auto hist = hit_histogram(r.hit_hashes);
    for (std::size_t b = 0; b < hist.size(); ++b)
      std::fprintf(out, "%s%llu", b == 0 ? "" : ", ",
                   static_cast<unsigned long long>(hist[b]));
    std::fprintf(out, "] },\n");
  };
  std::fprintf(out, "{\n  \"pr\": 9,\n");
  std::fprintf(out,
               "  \"title\": \"Reliability-guided search ordering: maximum-"
               "likelihood-first candidate enumeration\",\n");
  std::fprintf(out,
               "  \"host\": { \"cpu\": \"x86_64, %u hardware thread(s)\" },\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"ordering_burst\": {\n"
               "    \"note\": \"%d-session open-loop burst, SHA-3, injected "
               "d=3, TAPKI off, 1 address/device, 16 drivers, 1 shard, "
               "non-realtime; identical challenges and client reads in both "
               "runs\",\n",
               sessions);
  emit_run("canonical", p.canonical);
  emit_run("reliability", p.reliability);
  std::fprintf(out,
               "    \"hash_reduction_per_auth\": %.2f,\n"
               "    \"speedup_sessions_per_s\": %.3f,\n"
               "    \"verdicts_identical\": %s,\n"
               "    \"acceptance_hash_reduction_5x_met\": %s,\n"
               "    \"acceptance_speedup_1_5x_met\": %s\n  }\n}\n",
               p.hash_reduction, p.speedup,
               p.verdicts_match ? "true" : "false",
               p.hash_reduction >= 5.0 ? "true" : "false",
               p.speedup >= 1.5 ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Phase 7 (PR 10): observability overhead + metrics export
// ---------------------------------------------------------------------------

struct ObsPhaseResult {
  RunResult untraced;
  RunResult traced;
  double p95_ratio = 0.0;       // traced p95 / untraced p95
  double throughput_ratio = 0.0;  // traced sessions/s / untraced
  bool pass = false;
};

/// Phase 7: the dispatch-overhead burst shape (8 shards, logical-clock
/// comm — per-session serving cost IS the workload) untraced vs traced.
/// The traced run also arms the flight recorder and exports its metrics
/// snapshot; `metrics_out`, when set, lands that snapshot on disk.
ObsPhaseResult run_obs_phase(Workload& w, int sessions,
                             const std::string& metrics_out) {
  constexpr int kShards = 8;
  rbc::bench::print_title(
      "Observability — span tracing overhead + metrics export");
  std::printf(
      "%d-session open-loop burst, %d shards, logical-clock comm; traced "
      "run records\nadmission/queue/shell/verdict spans per session and "
      "arms the flight recorder.\n",
      sessions, kShards);

  SweepConfig sc;
  sc.sessions = sessions;
  sc.submitters = 4;
  sc.total_drivers = 8;
  ObsPhaseResult p;
  p.untraced = run_sweep_point(w, sc, kShards, 0x0B5);
  sc.trace = true;
  sc.flight_recorder = true;
  sc.capture_metrics = true;
  p.traced = run_sweep_point(w, sc, kShards, 0x0B5);
  p.p95_ratio = p.untraced.stats.p95_session_s > 0.0
                    ? p.traced.stats.p95_session_s /
                          p.untraced.stats.p95_session_s
                    : 1.0;
  p.throughput_ratio = p.traced.sessions_per_s / p.untraced.sessions_per_s;

  rbc::bench::Table table({"mode", "wall (s)", "sessions/s", "p50 (s)",
                           "p95 (s)", "spans", "ring drops", "auth",
                           "corrupt"});
  table.add_row({"untraced", rbc::bench::fmt(p.untraced.wall_s, 3),
                 rbc::bench::fmt(p.untraced.sessions_per_s, 1),
                 rbc::bench::fmt(p.untraced.stats.p50_session_s, 5),
                 rbc::bench::fmt(p.untraced.stats.p95_session_s, 5),
                 std::to_string(p.untraced.stats.trace_events_recorded), "0",
                 std::to_string(p.untraced.stats.authenticated),
                 std::to_string(p.untraced.key_mismatches)});
  table.add_row({"traced", rbc::bench::fmt(p.traced.wall_s, 3),
                 rbc::bench::fmt(p.traced.sessions_per_s, 1),
                 rbc::bench::fmt(p.traced.stats.p50_session_s, 5),
                 rbc::bench::fmt(p.traced.stats.p95_session_s, 5),
                 std::to_string(p.traced.stats.trace_events_recorded),
                 std::to_string(p.traced.stats.trace_events_dropped),
                 std::to_string(p.traced.stats.authenticated),
                 std::to_string(p.traced.key_mismatches)});
  table.print();

  if (!metrics_out.empty()) {
    auto write_file = [](const std::string& path, const std::string& body) {
      std::FILE* out = std::fopen(path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
      }
      std::fwrite(body.data(), 1, body.size(), out);
      std::fclose(out);
      std::printf("wrote %s\n", path.c_str());
    };
    write_file(metrics_out, p.traced.metrics_json);
    write_file(metrics_out + ".prom", p.traced.metrics_prom);
  }

  const int corrupt = p.untraced.key_mismatches + p.traced.key_mismatches;
  // "<= 5% p95 overhead" with an absolute sub-millisecond floor: burst
  // sessions are ~100 us of serving seam, so a 5% RELATIVE band alone would
  // gate on scheduler jitter, not tracing cost.
  const double p95_delta_s =
      p.traced.stats.p95_session_s - p.untraced.stats.p95_session_s;
  const bool p95_ok = p.p95_ratio <= 1.05 || p95_delta_s <= 0.0005;
  p.pass = p95_ok && corrupt == 0 &&
           p.traced.stats.trace_events_recorded > 0 &&
           p.untraced.stats.trace_events_recorded == 0;
  std::printf(
      "\nTraced vs untraced p95: %.3fx (target <= 1.05x or <= 0.5 ms "
      "absolute; delta %+.5f s);\nthroughput %.3fx; spans recorded: %llu; "
      "corruptions: %d (target 0)\n",
      p.p95_ratio, p95_delta_s, p.throughput_ratio,
      static_cast<unsigned long long>(p.traced.stats.trace_events_recorded),
      corrupt);
  return p;
}

void write_obs_json(const std::string& path, int sessions,
                    const ObsPhaseResult& p) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto emit_run = [out](const char* name, const RunResult& r) {
    std::fprintf(
        out,
        "    \"%s\": { \"wall_s\": %.4f, \"sessions_per_s\": %.1f, "
        "\"p50_s\": %.6f, \"p95_s\": %.6f, \"authenticated\": %llu, "
        "\"corrupt\": %d, \"trace_events_recorded\": %llu, "
        "\"trace_events_dropped\": %llu, \"flight_records\": %llu },\n",
        name, r.wall_s, r.sessions_per_s, r.stats.p50_session_s,
        r.stats.p95_session_s,
        static_cast<unsigned long long>(r.stats.authenticated),
        r.key_mismatches,
        static_cast<unsigned long long>(r.stats.trace_events_recorded),
        static_cast<unsigned long long>(r.stats.trace_events_dropped),
        static_cast<unsigned long long>(r.stats.flight_records));
  };
  std::fprintf(out, "{\n  \"pr\": 10,\n");
  std::fprintf(out,
               "  \"title\": \"Session-trace observability: spans, metrics "
               "export, flight recorder\",\n");
  std::fprintf(out,
               "  \"host\": { \"cpu\": \"x86_64, %u hardware thread(s)\" },\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"trace_overhead_burst\": {\n"
               "    \"note\": \"%d-session open-loop burst, 8 shards, "
               "logical-clock comm, 8 drivers; traced run records "
               "admission/queue-wait/shell/verdict spans per session with "
               "the flight recorder armed\",\n",
               sessions);
  emit_run("untraced", p.untraced);
  emit_run("traced", p.traced);
  std::fprintf(out,
               "    \"p95_traced_vs_untraced_ratio\": %.4f,\n"
               "    \"throughput_traced_vs_untraced\": %.4f,\n"
               "    \"acceptance_trace_p95_overhead_5pct_met\": %s\n  }\n}\n",
               p.p95_ratio, p.throughput_ratio, p.pass ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

/// One chaos point: `sessions` realtime sessions against a 4-shard server
/// whose channels drop `drop_rate` of frames (plus a fixed light corruption
/// rate), recovered by the retransmit policy. Fixed fault_seed + explicit
/// per-session salts make every point replayable.
RunResult run_chaos_point(Workload& w, int sessions, int submitters,
                          double drop_rate, u64 fault_seed) {
  server::ServerConfig cfg;
  cfg.num_shards = 4;
  cfg.max_queue_depth = 4 * sessions;
  cfg.max_in_flight = 16;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.02;  // scaled-down realtime wire latency
  cfg.realtime_comm = true;
  cfg.fault.drop_rate = drop_rate;
  cfg.fault.corrupt_rate = drop_rate > 0.0 ? 0.01 : 0.0;
  cfg.fault_seed = fault_seed;
  cfg.retry.max_attempts = 6;
  cfg.retry.timeout_s = 0.04;  // scaled with the wire latency
  cfg.retry.backoff = 2.0;
  cfg.retry.max_timeout_s = 0.32;
  server::AuthServer server(cfg, w.ca.get(), &w.ra);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i)
    clients.push_back(w.make_client(i % static_cast<int>(w.device_ids.size()),
                                    0xCA05 + static_cast<u64>(i)));

  std::vector<std::future<server::SessionOutcome>> futures(
      static_cast<std::size_t>(sessions));
  WallTimer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(submitters));
    for (int c = 0; c < submitters; ++c) {
      threads.emplace_back([&, c] {
        for (int i = c; i < sessions; i += submitters) {
          auto future = server.submit(clients[static_cast<unsigned>(i)].get(),
                                      cfg.session_budget_s,
                                      /*net_salt=*/static_cast<u64>(i));
          future.wait();  // closed loop: realtime I/O is slept
          futures[static_cast<unsigned>(i)] = std::move(future);
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  RunResult r;
  r.wall_s = timer.elapsed_s();
  r.sessions_per_s = sessions / r.wall_s;
  for (int i = 0; i < sessions; ++i) {
    const auto outcome = futures[static_cast<unsigned>(i)].get();
    // A transport failure is an expected chaos verdict, not corruption; any
    // session that claims success must still have registered its own key.
    const bool ok =
        outcome.accepted &&
        (outcome.transport_failed ||
         (outcome.authenticated &&
          outcome.report.registered_public_key ==
              clients[static_cast<unsigned>(i)]->derive_public_key(
                  w.ca->config().salt)));
    if (!ok) ++r.key_mismatches;
  }
  r.stats = server.stats();
  return r;
}

/// Phase 4: p95 degradation vs drop rate under the retransmit policy.
bool run_chaos_sweep(Workload& w) {
  rbc::bench::print_title(
      "Chaos sweep — p95 degradation vs drop rate (4 shards, ARQ retries)");
  std::printf("96 realtime sessions per point, 8 closed-loop clients, fixed "
              "fault seeds;\nretry: 6 attempts, 0.04 s initial timeout, 2x "
              "backoff capped at 0.32 s.\n");
  rbc::bench::Table table({"drop", "wall (s)", "sessions/s", "p50 (s)",
                           "p95 (s)", "p95 vs 0%", "retx", "dropped",
                           "failed", "auth", "corrupt"});
  double lossless_p95 = 0.0;
  bool ok = true;
  for (const double drop : {0.0, 0.02, 0.05, 0.10}) {
    const RunResult r =
        run_chaos_point(w, 96, 8, drop, /*fault_seed=*/0xC4A05);
    if (drop == 0.0) lossless_p95 = r.stats.p95_session_s;
    const double vs0 = lossless_p95 > 0.0
                           ? r.stats.p95_session_s / lossless_p95
                           : 1.0;
    char drop_label[16];
    std::snprintf(drop_label, sizeof(drop_label), "%.0f%%", drop * 100.0);
    table.add_row({drop_label, rbc::bench::fmt(r.wall_s, 3),
                   rbc::bench::fmt(r.sessions_per_s, 1),
                   rbc::bench::fmt(r.stats.p50_session_s, 4),
                   rbc::bench::fmt(r.stats.p95_session_s, 4),
                   rbc::bench::fmt(vs0),
                   std::to_string(r.stats.retransmits),
                   std::to_string(r.stats.frames_dropped),
                   std::to_string(r.stats.transport_failed),
                   std::to_string(r.stats.authenticated),
                   std::to_string(r.key_mismatches)});
    // Graceful degradation: every session resolves (submitted reconciles)
    // and no session corrupts state, at every loss rate.
    ok = ok && r.key_mismatches == 0 &&
         r.stats.submitted == r.stats.rejected + r.stats.completed;
  }
  table.print();
  return ok;
}

std::vector<SweepRow> run_sweep(Workload& w, const SweepConfig& sc,
                                const char* title, u64 salt) {
  rbc::bench::print_title(title);
  rbc::bench::Table table({"shards", "wall (s)", "sessions/s", "vs 1 shard",
                           "p50 (s)", "p95 (s)", "auth", "corrupt"});
  std::vector<SweepRow> rows;
  for (int shards : {1, 2, 4, 8}) {
    SweepRow row;
    row.shards = shards;
    row.r = run_sweep_point(w, sc, shards, salt + static_cast<u64>(shards));
    const double vs1 =
        rows.empty() ? 1.0
                     : row.r.sessions_per_s / rows.front().r.sessions_per_s;
    table.add_row({std::to_string(shards), rbc::bench::fmt(row.r.wall_s, 3),
                   rbc::bench::fmt(row.r.sessions_per_s, 1),
                   rbc::bench::fmt(vs1), rbc::bench::fmt(row.r.stats.p50_session_s, 4),
                   rbc::bench::fmt(row.r.stats.p95_session_s, 4),
                   std::to_string(row.r.stats.authenticated),
                   std::to_string(row.r.key_mismatches)});
    rows.push_back(std::move(row));
  }
  table.print();
  return rows;
}

void write_sweep_json(const std::string& path,
                      const std::vector<SweepRow>& realtime,
                      const SweepConfig& rt_cfg,
                      const std::vector<SweepRow>& overhead,
                      const SweepConfig& oh_cfg, double p95_ratio,
                      bool p95_ok) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto emit_rows = [out](const std::vector<SweepRow>& rows) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& row = rows[i];
      std::fprintf(
          out,
          "      { \"shards\": %d, \"wall_s\": %.4f, \"sessions_per_s\": "
          "%.1f, \"throughput_vs_1shard\": %.3f, \"p50_s\": %.4f, "
          "\"p95_s\": %.4f, \"authenticated\": %llu, \"corrupt\": %d }%s\n",
          row.shards, row.r.wall_s, row.r.sessions_per_s,
          row.r.sessions_per_s / rows.front().r.sessions_per_s,
          row.r.stats.p50_session_s, row.r.stats.p95_session_s,
          static_cast<unsigned long long>(row.r.stats.authenticated),
          row.r.key_mismatches, i + 1 < rows.size() ? "," : "");
    }
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"pr\": 6,\n");
  std::fprintf(out,
               "  \"title\": \"Sharded serving layer: per-shard admission, "
               "EDF dispatch, sharded enrollment store\",\n");
  std::fprintf(out,
               "  \"host\": {\n"
               "    \"cpu\": \"x86_64, %u hardware thread(s)\",\n"
               "    \"note\": \"equal TOTAL resources at every shard count "
               "(drivers, queue slots, submitters); on a single-core host "
               "the sweep demonstrates sharding adds no overhead — "
               "contention relief shows as headroom on multi-core hosts\"\n"
               "  },\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"shard_sweep_equal_resources_realtime\": {\n"
               "    \"note\": \"%d sessions, %d closed-loop clients, %d "
               "total drivers; realtime comm 4 x %.2f s wire + %.2f s PUF "
               "read slept per session; SHA-3 d<=2 searches\",\n"
               "    \"results\": [\n",
               rt_cfg.sessions, rt_cfg.submitters, rt_cfg.total_drivers,
               rt_cfg.latency_s, rt_cfg.puf_read_s);
  emit_rows(realtime);
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"p95_ratio_8shard_vs_1shard\": %.3f,\n"
               "    \"acceptance_p95_no_worse_met\": %s\n  },\n",
               p95_ratio, p95_ok ? "true" : "false");
  std::fprintf(out,
               "  \"dispatch_overhead_sweep\": {\n"
               "    \"note\": \"%d-session open-loop burst from %d "
               "submitters, %d total drivers, logical-clock comm: the "
               "serving seam (admission, EDF heap, stats stripes, device "
               "locks) is the measured cost\",\n"
               "    \"results\": [\n",
               oh_cfg.sessions, oh_cfg.submitters, oh_cfg.total_drivers);
  emit_rows(overhead);
  std::fprintf(out, "    ]\n  }\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbc::bench;

  std::string json_path;
  std::string metrics_out;
  bool sweep_only = false;
  bool chaos_only = false;
  bool fusion_only = false;
  bool ordering_only = false;
  bool obs_only = false;
  int fusion_sessions = 4096;
  int ordering_sessions = 192;
  int obs_sessions = 2048;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      sweep_only = true;
    } else if (std::strcmp(argv[i], "--chaos-only") == 0) {
      chaos_only = true;
    } else if (std::strcmp(argv[i], "--fusion-only") == 0) {
      fusion_only = true;
    } else if (std::strcmp(argv[i], "--fusion-sessions") == 0 && i + 1 < argc) {
      fusion_sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--ordering-only") == 0) {
      ordering_only = true;
    } else if (std::strcmp(argv[i], "--ordering-sessions") == 0 &&
               i + 1 < argc) {
      ordering_sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--obs-only") == 0) {
      obs_only = true;
    } else if (std::strcmp(argv[i], "--obs-sessions") == 0 && i + 1 < argc) {
      obs_sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sweep-only] [--chaos-only] [--fusion-only] "
                   "[--fusion-sessions <n>] [--ordering-only] "
                   "[--ordering-sessions <n>] [--obs-only] "
                   "[--obs-sessions <n>] [--metrics-out <path>] "
                   "[--json <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  if (chaos_only) {
    Workload chaos_workload(32);
    const bool chaos_pass = run_chaos_sweep(chaos_workload);
    std::printf("RESULT: %s\n", chaos_pass ? "PASS" : "FAIL");
    return chaos_pass ? 0 : 1;
  }

  if (fusion_only) {
    Workload fusion_workload(64);
    const FusionPhaseResult fusion =
        run_fusion_phase(fusion_workload, fusion_sessions);
    if (!json_path.empty())
      write_fusion_json(json_path, fusion_sessions, fusion);
    std::printf("RESULT: %s\n", fusion.pass ? "PASS" : "FAIL");
    return fusion.pass ? 0 : 1;
  }

  if (ordering_only) {
    const OrderingPhaseResult ordering = run_ordering_phase(ordering_sessions);
    if (!json_path.empty())
      write_ordering_json(json_path, ordering_sessions, ordering);
    std::printf("RESULT: %s\n", ordering.pass ? "PASS" : "FAIL");
    return ordering.pass ? 0 : 1;
  }

  if (obs_only) {
    Workload obs_workload(64);
    const ObsPhaseResult obs =
        run_obs_phase(obs_workload, obs_sessions, metrics_out);
    if (!json_path.empty()) write_obs_json(json_path, obs_sessions, obs);
    std::printf("RESULT: %s\n", obs.pass ? "PASS" : "FAIL");
    return obs.pass ? 0 : 1;
  }

  bool phases_pass = true;
  if (!sweep_only) {
    phases_pass = false;
    const int sessions = 48;
    print_title(
        "Server throughput — M concurrent clients, one CA (SHA-3, d=2)");
    std::printf("%d sessions over %d distinct devices; per-session search "
                "width 1 thread;\nrealtime comm: 4 x 0.05 s wire + 0.10 s "
                "PUF read slept per session;\nsessions multiplex on the "
                "shared WorkerGroup (%d workers).\n",
                sessions, sessions, rbc::par::WorkerGroup::shared().size());

    Workload workload(sessions);

    // Phase 1: single-session baseline.
    const RunResult base = run_phase(workload, sessions, 1, 0xA5);

    // Phase 2: concurrency sweep.
    Table table({"clients", "wall (s)", "sessions/s", "speedup", "p50 (s)",
                 "p95 (s)", "auth", "corrupt"});
    table.add_row({"1", fmt(base.wall_s), fmt(base.sessions_per_s, 1), "1.00",
                   fmt(base.stats.p50_session_s, 3),
                   fmt(base.stats.p95_session_s, 3),
                   std::to_string(base.stats.authenticated),
                   std::to_string(base.key_mismatches)});
    double speedup_at_8 = 0.0;
    int corrupt = base.key_mismatches;
    for (int clients : {2, 4, 8}) {
      const RunResult r = run_phase(workload, sessions, clients,
                                    0xB0 + static_cast<u64>(clients));
      const double speedup = r.sessions_per_s / base.sessions_per_s;
      if (clients == 8) speedup_at_8 = speedup;
      corrupt += r.key_mismatches;
      table.add_row({std::to_string(clients), fmt(r.wall_s),
                     fmt(r.sessions_per_s, 1), fmt(speedup),
                     fmt(r.stats.p50_session_s, 3),
                     fmt(r.stats.p95_session_s, 3),
                     std::to_string(r.stats.authenticated),
                     std::to_string(r.key_mismatches)});
    }
    table.print();

    std::printf("\nSpeedup at 8 concurrent clients: %.2fx (target >= 4x); "
                "cross-session corruptions: %d (target 0)\n",
                speedup_at_8, corrupt);
    phases_pass = speedup_at_8 >= 4.0 && corrupt == 0;
  }

  // Phase 3: shard sweep at equal total resources. Driver headroom (2x the
  // closed-loop client count) keeps the comparison about the serving seam:
  // device ids hash to shards, so per-shard load is binomial around
  // sessions/num_shards, and a shard sliced to exactly load/num_shards
  // drivers would measure hash imbalance, not dispatch cost.
  Workload sweep_workload(128);

  SweepConfig rt_cfg;
  rt_cfg.sessions = 128;
  rt_cfg.submitters = 16;
  rt_cfg.total_drivers = 32;
  rt_cfg.realtime = true;
  rt_cfg.latency_s = 0.02;
  rt_cfg.puf_read_s = 0.04;
  char rt_title[128];
  std::snprintf(rt_title, sizeof(rt_title),
                "Shard sweep — equal resources, realtime comm (%d drivers "
                "total)",
                rt_cfg.total_drivers);
  const auto realtime_rows = run_sweep(sweep_workload, rt_cfg, rt_title, 0xC0);

  SweepConfig oh_cfg;
  oh_cfg.sessions = 4096;
  oh_cfg.submitters = 4;
  oh_cfg.total_drivers = 8;
  char oh_title[128];
  std::snprintf(oh_title, sizeof(oh_title),
                "Shard sweep — dispatch overhead, open-loop burst (%d "
                "drivers total)",
                oh_cfg.total_drivers);
  const auto overhead_rows = run_sweep(sweep_workload, oh_cfg, oh_title, 0xD0);

  int sweep_corrupt = 0;
  for (const auto& row : realtime_rows) sweep_corrupt += row.r.key_mismatches;
  for (const auto& row : overhead_rows) sweep_corrupt += row.r.key_mismatches;
  const double p95_ratio = realtime_rows.back().r.stats.p95_session_s /
                           realtime_rows.front().r.stats.p95_session_s;
  // "No worse" with a 10% noise band: session p95 is ~0.12 s of slept I/O,
  // so scheduler jitter of a few ms is expected run to run.
  const bool p95_ok = p95_ratio <= 1.10;
  std::printf("\nSharded p95 vs single-queue baseline: %.3fx "
              "(target <= 1.10x); sweep corruptions: %d (target 0)\n",
              p95_ratio, sweep_corrupt);

  if (!json_path.empty()) {
    write_sweep_json(json_path, realtime_rows, rt_cfg, overhead_rows, oh_cfg,
                     p95_ratio, p95_ok);
  }

  // Phase 4: chaos sweep (skipped under --sweep-only to keep the PR-6 CI
  // smoke unchanged; run alone via --chaos-only).
  bool chaos_pass = true;
  if (!sweep_only) {
    Workload chaos_workload(32);
    chaos_pass = run_chaos_sweep(chaos_workload);
  }

  // Phase 5: lane fusion (skipped under --sweep-only; run alone — and with
  // --json for BENCH_PR8.json — via --fusion-only).
  bool fusion_pass = true;
  if (!sweep_only) {
    Workload fusion_workload(64);
    fusion_pass = run_fusion_phase(fusion_workload, fusion_sessions).pass;
  }

  // Phase 6: search ordering (skipped under --sweep-only; run alone — and
  // with --json for BENCH_PR9.json — via --ordering-only).
  bool ordering_pass = true;
  if (!sweep_only) {
    ordering_pass = run_ordering_phase(ordering_sessions).pass;
  }

  // Phase 7: observability overhead (skipped under --sweep-only; run alone
  // — and with --json for BENCH_PR10.json / --metrics-out for the metrics
  // document — via --obs-only).
  bool obs_pass = true;
  if (!sweep_only) {
    Workload obs_workload(64);
    obs_pass = run_obs_phase(obs_workload, obs_sessions, metrics_out).pass;
  }

  const bool pass = phases_pass && p95_ok && sweep_corrupt == 0 &&
                    chaos_pass && fusion_pass && ordering_pass && obs_pass;
  std::printf("RESULT: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
