// Security analysis bench — §2.2's defender/attacker asymmetry quantified
// with the same calibrated throughput models used for the defender tables,
// plus an empirical toy-space brute force validating the E[tries] = 2^(w-1)
// assumption with the real hash code.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "rbc/adversary.hpp"
#include "sim/apu_model.hpp"
#include "sim/cpu_model.hpp"
#include "sim/gpu_model.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using hash::HashAlgo;

  print_title("Security analysis — expected brute-force cost (Eq. 2)");

  const u64 n5 = static_cast<u64>(comb::exhaustive_search_count(5));
  sim::GpuModel gpu;
  sim::ApuModel apu;
  sim::CpuModel cpu;

  struct Platform {
    const char* name;
    double sha1_hps, sha3_hps;
  } platforms[] = {
      {"A100 GPU",
       static_cast<double>(n5) / gpu.exhaustive_time_s(5, HashAlgo::kSha1),
       static_cast<double>(n5) / gpu.exhaustive_time_s(5, HashAlgo::kSha3_256)},
      {"Gemini APU",
       static_cast<double>(n5) / apu.exhaustive_time_s(5, HashAlgo::kSha1),
       static_cast<double>(n5) / apu.exhaustive_time_s(5, HashAlgo::kSha3_256)},
      {"EPYC x64",
       static_cast<double>(n5) / cpu.exhaustive_time_s(5, HashAlgo::kSha1, 64),
       static_cast<double>(n5) /
           cpu.exhaustive_time_s(5, HashAlgo::kSha3_256, 64)},
  };

  Table table({"attacker platform", "hash", "throughput h/s",
               "expected years to break"});
  for (const auto& p : platforms) {
    for (bool sha1 : {true, false}) {
      const auto est = estimate_break_cost(sha1 ? p.sha1_hps : p.sha3_hps);
      char years[64];
      std::snprintf(years, sizeof(years), "%.2Le", est.expected_years);
      table.add_row({p.name, sha1 ? "SHA-1" : "SHA-3",
                     fmt_sci(est.hashes_per_second, 2), years});
    }
  }
  table.print();

  std::printf("\nDefender/attacker asymmetry (Eq. 1 vs Eq. 2):\n");
  for (int d : {1, 3, 5}) {
    std::printf("  d = %d: attacker needs %.2Le x the server's worst-case "
                "search\n",
                d, asymmetry_ratio(d));
  }

  print_title("Empirical validation — toy-space brute force (real SHA-3)");
  Xoshiro256 rng(0xA77ac);
  const hash::Sha3SeedHash hash;
  Table toy({"space width (bits)", "trials", "mean tries", "expected 2^(w-1)"});
  for (int width : {8, 10, 12}) {
    const int trials = 200;
    double total = 0;
    for (int t = 0; t < trials; ++t) {
      const Seed256 secret{rng.next_below(1ULL << width), 0, 0, 0};
      const auto r =
          brute_force_toy_space<hash::Sha3SeedHash>(hash(secret), width, rng);
      total += static_cast<double>(r.tries);
    }
    toy.add_row({std::to_string(width), std::to_string(trials),
                 fmt(total / trials, 1),
                 fmt(std::pow(2.0, width - 1), 0)});
  }
  toy.print();
  std::printf(
      "\nThe toy measurements track 2^(w-1), grounding the 256-bit\n"
      "extrapolation above: stealing a digest buys an attacker nothing.\n");
  return 0;
}
