// Raw primitive throughput on the host (google-benchmark): seed hashing
// (fixed and generic paths), the bare Keccak permutation, the three seed
// iterators, and the three key generators. Supporting data for Tables 4, 5
// and 7 — all other benches' host sections build on these primitives.
#include <benchmark/benchmark.h>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "common/rng.hpp"
#include "crypto/pqc_keygen.hpp"
#include "hash/keccak.hpp"
#include "hash/sha1.hpp"

namespace {

using namespace rbc;

Seed256 bench_seed() {
  Xoshiro256 rng(0xbead);
  return Seed256::random(rng);
}

void BM_Sha1SeedFixed(benchmark::State& state) {
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto d = hash::sha1_seed(s);
    benchmark::DoNotOptimize(d);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha1SeedFixed);

void BM_Sha1SeedGeneric(benchmark::State& state) {
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto d = hash::sha1_seed_generic(s);
    benchmark::DoNotOptimize(d);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha1SeedGeneric);

void BM_Sha3SeedFixed(benchmark::State& state) {
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto d = hash::sha3_256_seed(s);
    benchmark::DoNotOptimize(d);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha3SeedFixed);

void BM_Sha3SeedGeneric(benchmark::State& state) {
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto d = hash::sha3_256_seed_generic(s);
    benchmark::DoNotOptimize(d);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha3SeedGeneric);

void BM_KeccakF1600(benchmark::State& state) {
  u64 lanes[25] = {1, 2, 3};
  for (auto _ : state) {
    hash::keccak_f1600(lanes);
    benchmark::DoNotOptimize(lanes[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeccakF1600);

void BM_IterChase(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  comb::ChaseSequence seq(k);
  Seed256 sink;
  for (auto _ : state) {
    if (!seq.advance()) seq = comb::ChaseSequence(k);
    sink ^= seq.mask();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IterChase)->Arg(3)->Arg(5);

void BM_IterGosper(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Seed256 mask = Seed256::low_bits(k);
  for (auto _ : state) {
    mask = comb::gosper_next(mask);
    if (mask.highest_set_bit() >= 250) mask = Seed256::low_bits(k);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IterGosper)->Arg(3)->Arg(5);

void BM_IterAlg515UnrankEach(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const u64 total = comb::binomial64(256, k);
  u64 rank = 0;
  Seed256 sink;
  for (auto _ : state) {
    sink ^= comb::unrank_lexicographic(rank, k).to_mask();
    if (++rank == total) rank = 0;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IterAlg515UnrankEach)->Arg(3)->Arg(5);

void BM_KeygenAes(benchmark::State& state) {
  const crypto::Aes128Keygen keygen;
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto pk = keygen(s);
    benchmark::DoNotOptimize(pk);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeygenAes);

void BM_KeygenSaberLike(benchmark::State& state) {
  const crypto::SaberLikeKeygen keygen;
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto pk = keygen(s);
    benchmark::DoNotOptimize(pk);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeygenSaberLike);

void BM_KeygenDilithiumLike(benchmark::State& state) {
  const crypto::DilithiumLikeKeygen keygen;
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto pk = keygen(s);
    benchmark::DoNotOptimize(pk);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeygenDilithiumLike);

}  // namespace

BENCHMARK_MAIN();
