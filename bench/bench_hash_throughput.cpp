// Raw primitive throughput on the host (google-benchmark): seed hashing
// (fixed, generic, and batched multi-lane paths), the bare Keccak
// permutation, the three seed iterators, and the three key generators.
// Supporting data for Tables 4, 5 and 7 — all other benches' host sections
// build on these primitives. The batched benches report seeds/sec at each
// available SIMD dispatch level; the PR-3 acceptance bar is batched >= 2x
// BM_*SeedFixed on items/sec.
#include <benchmark/benchmark.h>

#include <array>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "common/rng.hpp"
#include "crypto/pqc_keygen.hpp"
#include "hash/batch.hpp"
#include "hash/cpu_features.hpp"
#include "hash/keccak.hpp"
#include "hash/sha1.hpp"

namespace {

using namespace rbc;

Seed256 bench_seed() {
  Xoshiro256 rng(0xbead);
  return Seed256::random(rng);
}

void BM_Sha1SeedFixed(benchmark::State& state) {
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto d = hash::sha1_seed(s);
    benchmark::DoNotOptimize(d);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha1SeedFixed);

void BM_Sha1SeedGeneric(benchmark::State& state) {
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto d = hash::sha1_seed_generic(s);
    benchmark::DoNotOptimize(d);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha1SeedGeneric);

void BM_Sha3SeedFixed(benchmark::State& state) {
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto d = hash::sha3_256_seed(s);
    benchmark::DoNotOptimize(d);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha3SeedFixed);

void BM_Sha3SeedGeneric(benchmark::State& state) {
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto d = hash::sha3_256_seed_generic(s);
    benchmark::DoNotOptimize(d);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha3SeedGeneric);

// Batched multi-lane seed hashing at an explicit dispatch level (range(0):
// 0 = scalar tail loop, 1 = SWAR lanes, 2 = AVX2). Levels above what the
// host supports are skipped. Items processed counts SEEDS, so items/sec is
// directly comparable with the scalar BM_*SeedFixed benches.
template <typename Batch, typename MultiLevelFn>
void run_batched_bench(benchmark::State& state, MultiLevelFn multi) {
  const auto level = static_cast<hash::SimdLevel>(state.range(0));
  if (level > hash::detected_simd_level()) {
    state.SkipWithError("SIMD level not supported on this host");
    return;
  }
  constexpr std::size_t kBlock = Batch::kBatch;
  std::array<Seed256, kBlock> seeds;
  std::array<typename Batch::digest_type, kBlock> digests;
  Xoshiro256 rng(0xbead);
  for (auto& s : seeds) s = Seed256::random(rng);
  for (auto _ : state) {
    multi(level, seeds.data(), kBlock, digests.data());
    benchmark::DoNotOptimize(digests);
    seeds[0].word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBlock));
  state.SetLabel(std::string(hash::to_string(level)));
}

void BM_Sha1SeedBatched(benchmark::State& state) {
  run_batched_bench<hash::Sha1BatchSeedHash>(state,
                                             hash::sha1_seed_multi_level);
}
BENCHMARK(BM_Sha1SeedBatched)->DenseRange(0, 2);

void BM_Sha3SeedBatched(benchmark::State& state) {
  run_batched_bench<hash::Sha3BatchSeedHash>(state,
                                             hash::sha3_256_seed_multi_level);
}
BENCHMARK(BM_Sha3SeedBatched)->DenseRange(0, 2);

void BM_KeccakF1600(benchmark::State& state) {
  u64 lanes[25] = {1, 2, 3};
  for (auto _ : state) {
    hash::keccak_f1600(lanes);
    benchmark::DoNotOptimize(lanes[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeccakF1600);

void BM_IterChase(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  comb::ChaseSequence seq(k);
  Seed256 sink;
  for (auto _ : state) {
    if (!seq.advance()) seq = comb::ChaseSequence(k);
    sink ^= seq.mask();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IterChase)->Arg(3)->Arg(5);

void BM_IterGosper(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Seed256 mask = Seed256::low_bits(k);
  for (auto _ : state) {
    mask = comb::gosper_next(mask);
    if (mask.highest_set_bit() >= 250) mask = Seed256::low_bits(k);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IterGosper)->Arg(3)->Arg(5);

void BM_IterAlg515UnrankEach(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const u64 total = comb::binomial64(256, k);
  u64 rank = 0;
  Seed256 sink;
  for (auto _ : state) {
    sink ^= comb::unrank_lexicographic(rank, k).to_mask();
    if (++rank == total) rank = 0;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IterAlg515UnrankEach)->Arg(3)->Arg(5);

void BM_KeygenAes(benchmark::State& state) {
  const crypto::Aes128Keygen keygen;
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto pk = keygen(s);
    benchmark::DoNotOptimize(pk);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeygenAes);

void BM_KeygenSaberLike(benchmark::State& state) {
  const crypto::SaberLikeKeygen keygen;
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto pk = keygen(s);
    benchmark::DoNotOptimize(pk);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeygenSaberLike);

void BM_KeygenDilithiumLike(benchmark::State& state) {
  const crypto::DilithiumLikeKeygen keygen;
  Seed256 s = bench_seed();
  for (auto _ : state) {
    auto pk = keygen(s);
    benchmark::DoNotOptimize(pk);
    s.word(0) += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeygenDilithiumLike);

}  // namespace

BENCHMARK_MAIN();
