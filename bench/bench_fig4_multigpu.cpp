// Figure 4: multi-GPU scalability of the search-only time — speedup on up
// to 3xA100 for SHA-1/SHA-3, exhaustive and early-exit searches. Extended
// beyond the paper to 8 GPUs (the paper's §5 multi-accelerator discussion).
#include "bench_util.hpp"
#include "sim/multi_gpu.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using hash::HashAlgo;

  print_title("Figure 4 — multi-GPU speedup (model), d = 5");

  sim::MultiGpuModel multi;
  const struct {
    HashAlgo hash;
    bool early_exit;
    const char* label;
    double paper_speedup3;  // NaN-free: -1 means not reported numerically
  } series[] = {
      {HashAlgo::kSha1, false, "SHA-1 exhaustive", -1.0},
      {HashAlgo::kSha1, true, "SHA-1 early-exit", -1.0},
      {HashAlgo::kSha3_256, false, "SHA-3 exhaustive", 2.87},
      {HashAlgo::kSha3_256, true, "SHA-3 early-exit", 2.66},
  };

  Table table({"series", "1 GPU (s)", "2 GPUs (s)", "3 GPUs (s)",
               "speedup@3", "paper@3", "efficiency@3"});
  for (const auto& s : series) {
    const auto curve = multi.scaling_curve(5, s.hash, s.early_exit, 3);
    table.add_row(
        {s.label, fmt(curve[0].time_s), fmt(curve[1].time_s),
         fmt(curve[2].time_s), fmt(curve[2].speedup),
         s.paper_speedup3 > 0 ? fmt(s.paper_speedup3) : std::string("-"),
         fmt(curve[2].parallel_efficiency, 3)});
  }
  table.print();

  std::printf(
      "\nPaper findings reproduced: exhaustive scales better than early-exit\n"
      "(flag traffic + fixed exit cost do not shrink with GPU count), and\n"
      "SHA-3 scales better than SHA-1 (more compute per byte of overhead).\n");

  print_title("Extension — projected scaling to 8 GPUs (SHA-3)");
  Table ext({"GPUs", "exhaustive speedup", "early-exit speedup"});
  const auto ex = multi.scaling_curve(5, HashAlgo::kSha3_256, false, 8);
  const auto ee = multi.scaling_curve(5, HashAlgo::kSha3_256, true, 8);
  for (int g = 1; g <= 8; ++g) {
    ext.add_row({std::to_string(g), fmt(ex[static_cast<unsigned>(g - 1)].speedup),
                 fmt(ee[static_cast<unsigned>(g - 1)].speedup)});
  }
  ext.print();
  return 0;
}
