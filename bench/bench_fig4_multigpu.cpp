// Figure 4: multi-GPU scalability of the search-only time — speedup on up
// to 3xA100 for SHA-1/SHA-3, exhaustive and early-exit searches. Extended
// beyond the paper to 8 GPUs (the paper's §5 multi-accelerator discussion).
#include "bench_util.hpp"
#include "sim/multi_gpu.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using hash::HashAlgo;

  print_title("Figure 4 — multi-GPU speedup (model), d = 5");

  sim::MultiGpuModel multi;
  const struct {
    HashAlgo hash;
    bool early_exit;
    const char* label;
    double paper_speedup3;  // NaN-free: -1 means not reported numerically
  } series[] = {
      {HashAlgo::kSha1, false, "SHA-1 exhaustive", -1.0},
      {HashAlgo::kSha1, true, "SHA-1 early-exit", -1.0},
      {HashAlgo::kSha3_256, false, "SHA-3 exhaustive", 2.87},
      {HashAlgo::kSha3_256, true, "SHA-3 early-exit", 2.66},
  };

  Table table({"series", "1 GPU (s)", "2 GPUs (s)", "3 GPUs (s)",
               "speedup@3", "paper@3", "dynamic@3", "efficiency@3"});
  for (const auto& s : series) {
    const auto curve = multi.scaling_curve(5, s.hash, s.early_exit, 3);
    const auto dyn = multi.scaling_curve(5, s.hash, s.early_exit, 3,
                                         /*dynamic_tiling=*/true);
    table.add_row(
        {s.label, fmt(curve[0].time_s), fmt(curve[1].time_s),
         fmt(curve[2].time_s), fmt(curve[2].speedup),
         s.paper_speedup3 > 0 ? fmt(s.paper_speedup3) : std::string("-"),
         fmt(dyn[2].speedup), fmt(curve[2].parallel_efficiency, 3)});
  }
  table.print();
  std::printf(
      "\ndynamic@3 projects the PR 4 tile scheduler spanning the devices: a\n"
      "shared tile queue (1 Mi-seed tiles) replaces the static per-device\n"
      "split, halving coordination at the cost of one atomic claim per tile.\n"
      "The static columns are the Fig. 4 reproduction and are unchanged.\n");

  std::printf(
      "\nPaper findings reproduced: exhaustive scales better than early-exit\n"
      "(flag traffic + fixed exit cost do not shrink with GPU count), and\n"
      "SHA-3 scales better than SHA-1 (more compute per byte of overhead).\n");

  print_title("Extension — projected scaling to 8 GPUs (SHA-3)");
  Table ext({"GPUs", "exhaustive speedup", "exhaustive dynamic",
             "early-exit speedup", "early-exit dynamic"});
  const auto ex = multi.scaling_curve(5, HashAlgo::kSha3_256, false, 8);
  const auto exd = multi.scaling_curve(5, HashAlgo::kSha3_256, false, 8, true);
  const auto ee = multi.scaling_curve(5, HashAlgo::kSha3_256, true, 8);
  const auto eed = multi.scaling_curve(5, HashAlgo::kSha3_256, true, 8, true);
  for (int g = 1; g <= 8; ++g) {
    const auto i = static_cast<unsigned>(g - 1);
    ext.add_row({std::to_string(g), fmt(ex[i].speedup), fmt(exd[i].speedup),
                 fmt(ee[i].speedup), fmt(eed[i].speedup)});
  }
  ext.print();
  std::printf(
      "\nDynamic tiling pulls the 8-GPU exhaustive curve from %.2fx to %.2fx\n"
      "(early-exit: %.2fx to %.2fx) — the gap widens with GPU count because\n"
      "the halved coordination term is the per-extra-GPU cost.\n",
      ex[7].speedup, exd[7].speedup, ee[7].speedup, eed[7].speedup);
  return 0;
}
