// Table 7: comparison with prior algorithm-aware RBC work — AES-128 [39],
// LightSABER [29], Dilithium3 [40] — versus this work's SHA-3 RBC-SALTED.
//
// Three sections:
//   1. the paper's table side by side with the calibrated models,
//   2. REAL per-candidate costs of this repo's implementations (AES /
//      SABER-like / Dilithium-like keygens vs SHA-3 hashing) measured on the
//      host — the keygen-vs-hash gap that motivates RBC-SALTED must emerge
//      from real code,
//   3. a functional legacy-vs-salted search race at small d on the host.
#include "bench_util.hpp"
#include "combinatorics/chase382.hpp"
#include "common/rng.hpp"
#include "rbc/legacy.hpp"
#include "rbc/search.hpp"
#include "sim/cpu_model.hpp"
#include "sim/gpu_model.hpp"
#include "sim/apu_model.hpp"
#include "sim/probe.hpp"

namespace {

using namespace rbc;
using namespace rbc::bench;

void model_section() {
  print_title("Table 7 — prior RBC work vs RBC-SALTED (d as in paper)");

  sim::CpuModel cpu;
  sim::GpuLegacyModel gpu_legacy;
  sim::GpuModel gpu;
  sim::ApuModel apu;

  const u64 n5 = static_cast<u64>(comb::exhaustive_search_count(5));
  const u64 n4 = static_cast<u64>(comb::exhaustive_search_count(4));

  Table table({"ref", "algorithm", "d", "paper CPU (s)", "model CPU",
               "paper GPU (s)", "model GPU", "APU (s)"});
  table.add_row({"[39]", "AES-128", "5", "44.70",
                 fmt(cpu.legacy_time_for_seeds_s(n5, crypto::KeygenAlgo::kAes128, 64)),
                 "2.56",
                 fmt(gpu_legacy.time_for_seeds_s(n5, crypto::KeygenAlgo::kAes128)),
                 "-"});
  table.add_row({"[29]", "LightSABER", "4", "44.58",
                 fmt(cpu.legacy_time_for_seeds_s(n4, crypto::KeygenAlgo::kSaberLike, 64)),
                 "14.03",
                 fmt(gpu_legacy.time_for_seeds_s(n4, crypto::KeygenAlgo::kSaberLike)),
                 "-"});
  table.add_row({"[40]", "Dilithium3", "4", "204.92",
                 fmt(cpu.legacy_time_for_seeds_s(n4, crypto::KeygenAlgo::kDilithiumLike, 64)),
                 "27.91",
                 fmt(gpu_legacy.time_for_seeds_s(n4, crypto::KeygenAlgo::kDilithiumLike)),
                 "-"});
  table.add_row({"This work", "SHA-3 (salted)", "5", "60.68",
                 fmt(cpu.exhaustive_time_s(5, hash::HashAlgo::kSha3_256, 64)),
                 "4.67",
                 fmt(gpu.exhaustive_time_s(5, hash::HashAlgo::kSha3_256)),
                 fmt(apu.exhaustive_time_s(5, hash::HashAlgo::kSha3_256))});
  table.print();
  std::printf(
      "\nPaper conclusions reproduced: SALTED-GPU searches d=5 faster than\n"
      "either PQC baseline searches d=4; only the symmetric AES baseline is\n"
      "faster, at the cost of no one-way/asymmetric structure (§4.9).\n");
}

void host_cost_section() {
  print_title("Host measurement — per-candidate cost, real implementations");
  const auto sha3 = sim::probe_hash(hash::HashAlgo::kSha3_256, 200000);
  const auto sha1 = sim::probe_hash(hash::HashAlgo::kSha1, 200000);
  const auto aes = sim::probe_keygen(crypto::KeygenAlgo::kAes128, 100000);
  const auto saber = sim::probe_keygen(crypto::KeygenAlgo::kSaberLike, 300);
  const auto dilithium =
      sim::probe_keygen(crypto::KeygenAlgo::kDilithiumLike, 100);
  // Extension: the other NIST families §3 lists as valid terminators.
  const auto kyber = sim::probe_keygen(crypto::KeygenAlgo::kKyberLike, 100);
  const auto wots = sim::probe_keygen(crypto::KeygenAlgo::kWots, 100);

  Table table({"candidate op", "ns/op", "vs SHA-3 hash"});
  for (const auto* r : {&sha1, &sha3, &aes, &saber, &dilithium, &kyber, &wots}) {
    table.add_row({r->what, fmt(r->ns_per_op(), 1),
                   fmt(r->ns_per_op() / sha3.ns_per_op(), 1) + "x"});
  }
  table.print();
  std::printf(
      "\nThe PQC keygens cost orders of magnitude more per candidate than a\n"
      "hash — the gap RBC-SALTED exploits by hashing during the search and\n"
      "generating the key exactly once (paper GPU-calibrated gaps: AES 0.6x,\n"
      "SABER 159x, Dilithium 316x of SHA-3). The WOTS+ row is the extreme:\n"
      "a hash-based keygen IS ~1,072 hashes, so an algorithm-aware search\n"
      "would pay that factor per candidate by construction.\n");
}

void functional_race_section() {
  print_title("Functional race on this host — legacy vs salted, d = 1");
  Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  truth.flip_bit(200);

  par::WorkerGroup& pool = par::WorkerGroup::shared();
  SearchOptions opts;
  opts.max_distance = 1;
  opts.num_threads = pool.size();
  opts.early_exit = false;  // full shell for a fair race

  Table table({"engine", "candidate op", "host time (s)"});

  {
    comb::ChaseFactory factory;
    const hash::Sha3SeedHash hash;
    WallTimer t;
    const auto r =
        rbc_search<hash::Sha3SeedHash>(base, hash(truth), factory, pool, opts, hash);
    table.add_row({"RBC-SALTED", "SHA-3 hash",
                   fmt(t.elapsed_s(), 4) + (r.found ? "" : " (!)")});
  }
  {
    comb::ChaseFactory factory;
    const crypto::Aes128Keygen keygen;
    WallTimer t;
    const auto r = legacy_rbc_search<crypto::Aes128Keygen>(
        base, keygen(truth), factory, pool, opts, keygen);
    table.add_row({"Legacy RBC", "AES-128 keygen",
                   fmt(t.elapsed_s(), 4) + (r.found ? "" : " (!)")});
  }
  {
    comb::ChaseFactory factory;
    const crypto::SaberLikeKeygen keygen;
    WallTimer t;
    const auto r = legacy_rbc_search<crypto::SaberLikeKeygen>(
        base, keygen(truth), factory, pool, opts, keygen);
    table.add_row({"Legacy RBC", "LightSABER-like keygen",
                   fmt(t.elapsed_s(), 4) + (r.found ? "" : " (!)")});
  }
  {
    comb::ChaseFactory factory;
    const crypto::DilithiumLikeKeygen keygen;
    WallTimer t;
    const auto r = legacy_rbc_search<crypto::DilithiumLikeKeygen>(
        base, keygen(truth), factory, pool, opts, keygen);
    table.add_row({"Legacy RBC", "Dilithium3-like keygen",
                   fmt(t.elapsed_s(), 4) + (r.found ? "" : " (!)")});
  }
  table.print();
}

}  // namespace

int main() {
  model_section();
  host_cost_section();
  functional_race_section();
  return 0;
}
