// Extension bench (§5 future work + related work [36]): multi-node CPU
// cluster scaling and multi-APU single-node scaling, alongside the paper's
// multi-GPU results — the three scale-out paths an RBC deployment could take.
#include "bench_util.hpp"
#include "sim/cluster_model.hpp"
#include "sim/multi_gpu.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using hash::HashAlgo;

  print_title("Extension — multi-node CPU cluster (SHA-3, exhaustive d = 5)");
  sim::ClusterModel cluster;
  std::printf("Calibration: [36] MPI AES-RBC speedup on 512 cores — model "
              "%.0fx (paper: 404x)\n\n",
              cluster.philabaum_speedup());
  Table t1({"nodes", "cores", "search s", "speedup vs 1 node",
            "fits T=20s (with 0.9s comm)"});
  const double t_one = cluster.exhaustive_time_s(5, HashAlgo::kSha3_256, 1);
  for (int nodes : {1, 2, 4, 8, 16, 32}) {
    const double t = cluster.exhaustive_time_s(5, HashAlgo::kSha3_256, nodes);
    t1.add_row({std::to_string(nodes), std::to_string(cluster.cores(nodes)),
                fmt(t), fmt(t_one / t), t + 0.9 <= 20.0 ? "yes" : "no"});
  }
  t1.print();
  std::printf("\nTakeaway: 4 EPYC nodes recover the T = 20 s threshold that\n"
              "single-node SALTED-CPU misses with SHA-3 (Table 5).\n");

  print_title("Extension — multi-APU in one 2U node (SHA-3, d = 5)");
  sim::MultiApuModel apus;
  sim::MultiGpuModel gpus;
  Table t2({"devices", "APU exhaustive speedup", "APU early-exit speedup",
            "GPU exhaustive speedup (ref)"});
  const auto gpu_ex = gpus.scaling_curve(5, HashAlgo::kSha3_256, false, 8);
  for (int n : {1, 2, 3, 4, 8}) {
    t2.add_row({std::to_string(n),
                fmt(apus.speedup(5, n, HashAlgo::kSha3_256, false)),
                fmt(apus.speedup(5, n, HashAlgo::kSha3_256, true)),
                fmt(gpu_ex[static_cast<unsigned>(n - 1)].speedup)});
  }
  t2.print();
  std::printf(
      "\n§5 conjecture confirmed by the model: the APU's longer per-device\n"
      "SHA-3 search amortizes coordination better, so 8xAPU scales closer to\n"
      "ideal than the same number of faster GPUs would.\n");
  return 0;
}
