// Table 6: search-only energy of the exhaustive d = 5 search — SALTED-GPU
// vs SALTED-APU, SHA-1 and SHA-3: total joules, maximum and idle watts.
#include "bench_util.hpp"
#include "sim/apu_model.hpp"
#include "sim/energy.hpp"
#include "sim/gpu_model.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;
  using hash::HashAlgo;

  print_title("Table 6 — search-only energy, exhaustive d = 5");

  sim::GpuModel gpu;
  sim::ApuModel apu;
  sim::EnergyModel energy;

  const struct {
    const char* algo;
    int sha;
    double paper_joules, paper_max_w, paper_idle_w;
  } rows[] = {
      {"SALTED-GPU", 1, 317.20, 253.43, 31.53},
      {"SALTED-APU", 1, 124.43, 83.81, 22.10},
      {"SALTED-GPU", 3, 946.55, 258.29, 31.53},
      {"SALTED-APU", 3, 974.06, 83.63, 22.10},
  };

  Table table({"algorithm", "SHA", "paper (J)", "model (J)", "dev",
               "max W", "idle W", "avg W (model)"});
  double joules[4] = {};
  for (int i = 0; i < 4; ++i) {
    const auto& row = rows[i];
    const HashAlgo h = row.sha == 1 ? HashAlgo::kSha1 : HashAlgo::kSha3_256;
    sim::EnergyReport rep;
    if (row.algo[7] == 'G') {
      rep = energy.gpu_energy(sim::a100(), h, gpu.exhaustive_time_s(5, h));
    } else {
      rep = energy.apu_energy(sim::gemini_apu(), h,
                              apu.exhaustive_time_s(5, h));
    }
    joules[i] = rep.total_joules;
    table.add_row({row.algo, std::to_string(row.sha), fmt(row.paper_joules),
                   fmt(rep.total_joules), deviation(rep.total_joules, row.paper_joules),
                   fmt(rep.max_watts), fmt(rep.idle_watts),
                   fmt(rep.average_watts, 1)});
  }
  table.print();

  std::printf(
      "\nFindings (paper §4.7): SHA-1 — APU uses %.1f%% of the GPU's joules "
      "(paper: 39.2%%).\n",
      100.0 * joules[1] / joules[0]);
  std::printf(
      "SHA-3 — APU/GPU energy ratio %.2f (paper: \"roughly equivalent\").\n",
      joules[3] / joules[2]);
  return 0;
}
