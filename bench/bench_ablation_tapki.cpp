// TAPKI ablation (§2.1): "TAPKI will ignore the cells in the PUF that have a
// high error rate by masking them. This ensures that the RBC search is
// generally tractable."
//
// Sweeps device quality (erratic-cell fraction) with TAPKI on and off and
// measures, over real protocol sessions: authentication rate, mean raw and
// masked bit error rate, and mean search effort. The design choice DESIGN.md
// calls out — mask calibration during enrollment — is what keeps the noisy
// tail of a fleet inside the Hamming-distance budget.
#include "bench_util.hpp"
#include "rbc/protocol.hpp"
#include "rbc/trial.hpp"

int main() {
  using namespace rbc;
  using namespace rbc::bench;

  print_title("Ablation §2.1 — TAPKI masking vs raw PUF streams (d <= 2)");

  Table table({"erratic cells", "TAPKI", "masked cells", "mean BER (bits)",
               "auth rate", "mean seeds hashed"});

  for (double erratic : {0.00, 0.04, 0.08, 0.15}) {
    for (bool tapki : {true, false}) {
      puf::SramPufModel::Params params;
      params.num_addresses = 2;
      params.erratic_cell_fraction = erratic;
      params.stable_flip_probability = 0.002;
      params.erratic_flip_probability = 0.35;
      puf::SramPufModel device(params, 4242);

      EnrollmentDatabase db(crypto::Aes128::Key{0x07});
      Xoshiro256 rng(11);
      db.enroll(1, device, 150, 0.05, rng);
      const auto record = db.load(1);
      const int masked = record.masks[0].num_unstable();

      // Effective BER after optional masking, over repeated reads.
      Xoshiro256 ber_rng(13);
      double ber = 0;
      const int reads = 200;
      for (int i = 0; i < reads; ++i) {
        Seed256 r = device.read(0, ber_rng);
        Seed256 e = device.enrolled_word(0);
        if (tapki) {
          r &= record.masks[0].stable_bits();
          e &= record.masks[0].stable_bits();
        }
        ber += hamming_distance(r, e);
      }
      ber /= reads;

      RegistrationAuthority ra;
      CaConfig cfg;
      cfg.max_distance = 2;
      cfg.tapki_enabled = tapki;
      EngineConfig ecfg;
      CertificateAuthority ca(cfg, std::move(db), make_backend("gpu", ecfg),
                              &ra);
      ClientConfig ccfg;
      ccfg.device_id = 1;
      ccfg.injected_distance = -1;  // submit the true noisy reading
      Client client(ccfg, &device, 17);
      const TrialStats stats = run_trials(client, ca, ra, 10);

      table.add_row({fmt(erratic * 100, 0) + "%", tapki ? "on" : "off",
                     std::to_string(masked), fmt(ber, 2),
                     fmt(stats.auth_rate(), 2),
                     fmt(stats.mean_seeds_hashed(), 0)});
    }
  }
  table.print();

  std::printf(
      "\nWithout TAPKI, raw bit error rates scale with the erratic-cell\n"
      "fraction and quickly exceed any tractable search budget; with TAPKI\n"
      "the masked error rate stays near the stable-cell floor and the\n"
      "authentication rate holds — §2.1's tractability argument.\n");
  return 0;
}
