#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/check.hpp"
#include "common/expected.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"

namespace rbc {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff7f");
  EXPECT_EQ(from_hex(hex), data);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, UppercaseAccepted) {
  EXPECT_EQ(from_hex("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values for SplitMix64 seeded with 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 255ULL, 1000000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(11);
  std::set<u64> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, BernoulliRoughlyCalibrated) {
  Xoshiro256 rng(5);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) heads += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.02);
}

TEST(Check, ThrowsWithContext) {
  try {
    RBC_CHECK_MSG(1 == 2, "custom context");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { EXPECT_NO_THROW(RBC_CHECK(2 + 2 == 4)); }

TEST(Expected, HoldsValue) {
  Expected<int, std::string> e(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 5);
}

TEST(Expected, HoldsError) {
  Expected<int, std::string> e = unexpected(std::string("bad frame"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "bad frame");
}

TEST(Expected, ValueOnErrorThrows) {
  Expected<int, std::string> e = unexpected(std::string("nope"));
  EXPECT_THROW(e.value(), CheckFailure);
}

}  // namespace
}  // namespace rbc
