#include <gtest/gtest.h>

#include <set>

#include "bits/seed256.hpp"
#include "common/rng.hpp"

namespace rbc {
namespace {

TEST(Seed256, DefaultIsZero) {
  Seed256 s;
  EXPECT_TRUE(s.is_zero());
  EXPECT_EQ(s.popcount(), 0);
  EXPECT_EQ(s, Seed256::zero());
}

TEST(Seed256, BitSetClearFlipAcrossWordBoundaries) {
  Seed256 s;
  for (int bit : {0, 1, 63, 64, 127, 128, 191, 192, 255}) {
    EXPECT_FALSE(s.bit(bit));
    s.set_bit(bit);
    EXPECT_TRUE(s.bit(bit));
  }
  EXPECT_EQ(s.popcount(), 9);
  s.flip_bit(64);
  EXPECT_FALSE(s.bit(64));
  s.clear_bit(255);
  EXPECT_FALSE(s.bit(255));
  EXPECT_EQ(s.popcount(), 7);
}

TEST(Seed256, OnesHasAllBits) {
  const Seed256 s = Seed256::ones();
  EXPECT_EQ(s.popcount(), 256);
  EXPECT_EQ(~s, Seed256::zero());
}

TEST(Seed256, LowBits) {
  EXPECT_EQ(Seed256::low_bits(0), Seed256::zero());
  EXPECT_EQ(Seed256::low_bits(1), Seed256::one());
  const Seed256 s = Seed256::low_bits(70);
  EXPECT_EQ(s.popcount(), 70);
  EXPECT_TRUE(s.bit(69));
  EXPECT_FALSE(s.bit(70));
}

TEST(Seed256, HammingDistance) {
  Seed256 a, b;
  EXPECT_EQ(hamming_distance(a, b), 0);
  b.set_bit(3);
  b.set_bit(200);
  EXPECT_EQ(hamming_distance(a, b), 2);
  a.set_bit(3);
  EXPECT_EQ(hamming_distance(a, b), 1);
  EXPECT_EQ(hamming_distance(Seed256::zero(), Seed256::ones()), 256);
}

TEST(Seed256, AdditionWithCarryPropagation) {
  // 2^64 - 1 + 1 = 2^64: carry must ripple into word 1.
  const Seed256 a{~0ULL, 0, 0, 0};
  const Seed256 r = a + Seed256::one();
  EXPECT_EQ(r, (Seed256{0, 1, 0, 0}));

  // Carry chain across all words: (2^256 - 1) + 1 == 0 (mod 2^256).
  EXPECT_EQ(Seed256::ones() + Seed256::one(), Seed256::zero());
}

TEST(Seed256, SubtractionIsInverseOfAddition) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 200; ++i) {
    const Seed256 a = Seed256::random(rng);
    const Seed256 b = Seed256::random(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a - a, Seed256::zero());
  }
}

TEST(Seed256, NegateIsTwosComplement) {
  EXPECT_EQ(Seed256::one().negate(), Seed256::ones());
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    const Seed256 a = Seed256::random(rng);
    EXPECT_EQ(a + a.negate(), Seed256::zero());
  }
}

TEST(Seed256, IsolateLowestSetBit) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 200; ++i) {
    Seed256 a = Seed256::random(rng);
    if (a.is_zero()) continue;
    const Seed256 lsb = a & a.negate();
    EXPECT_EQ(lsb.popcount(), 1);
    EXPECT_EQ(lsb.count_trailing_zeros(), a.count_trailing_zeros());
  }
}

TEST(Seed256, ShiftLeftMatchesRepeatedDoubling) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 50; ++i) {
    const Seed256 a = Seed256::random(rng);
    Seed256 doubled = a;
    for (int s = 0; s < 7; ++s) doubled = doubled + doubled;
    EXPECT_EQ(a << 7, doubled);
  }
}

TEST(Seed256, ShiftsByWordMultiples) {
  Seed256 a{0x1111111111111111ULL, 0x2222222222222222ULL,
            0x3333333333333333ULL, 0x4444444444444444ULL};
  EXPECT_EQ(a << 64,
            (Seed256{0, 0x1111111111111111ULL, 0x2222222222222222ULL,
                     0x3333333333333333ULL}));
  EXPECT_EQ(a >> 128,
            (Seed256{0x3333333333333333ULL, 0x4444444444444444ULL, 0, 0}));
  EXPECT_EQ(a << 0, a);
  EXPECT_EQ(a >> 0, a);
  EXPECT_EQ(a << 256, Seed256::zero());
  EXPECT_EQ(a >> 256, Seed256::zero());
}

TEST(Seed256, ShiftRoundTrip) {
  Xoshiro256 rng(31);
  for (int shift : {1, 13, 63, 64, 65, 127, 200, 255}) {
    const Seed256 a = Seed256::random(rng);
    // Left then right shift keeps the low bits that were not pushed out.
    const Seed256 kept = (a << shift) >> shift;
    Seed256 expected = a;
    for (int b = 256 - shift; b < 256; ++b) expected.clear_bit(b);
    EXPECT_EQ(kept, expected) << "shift=" << shift;
  }
}

TEST(Seed256, RotationPreservesPopcountAndInverts) {
  Xoshiro256 rng(41);
  for (int n : {0, 1, 17, 64, 97, 128, 255}) {
    const Seed256 a = Seed256::random(rng);
    const Seed256 r = a.rotl(n);
    EXPECT_EQ(r.popcount(), a.popcount());
    EXPECT_EQ(r.rotr(n), a) << "rot=" << n;
  }
}

TEST(Seed256, RotationMovesBits) {
  Seed256 a;
  a.set_bit(0);
  EXPECT_TRUE(a.rotl(1).bit(1));
  EXPECT_TRUE(a.rotl(255).bit(255));
  EXPECT_TRUE(a.rotr(1).bit(255));
  // Full rotation is identity.
  Xoshiro256 rng(43);
  const Seed256 b = Seed256::random(rng);
  EXPECT_EQ(b.rotl(256 % 256), b);
}

TEST(Seed256, CountTrailingZeros) {
  EXPECT_EQ(Seed256::zero().count_trailing_zeros(), 256);
  for (int bit : {0, 5, 63, 64, 100, 192, 255}) {
    Seed256 s;
    s.set_bit(bit);
    EXPECT_EQ(s.count_trailing_zeros(), bit);
  }
}

TEST(Seed256, HighestSetBit) {
  EXPECT_EQ(Seed256::zero().highest_set_bit(), -1);
  for (int bit : {0, 63, 64, 191, 255}) {
    Seed256 s;
    s.set_bit(bit);
    s.set_bit(0);
    EXPECT_EQ(s.highest_set_bit(), bit == 0 ? 0 : bit);
  }
}

TEST(Seed256, ComparisonIsNumeric) {
  const Seed256 small{~0ULL, ~0ULL, ~0ULL, 0};
  Seed256 big;
  big.set_bit(192);
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(big <=> big, std::strong_ordering::equal);
}

TEST(Seed256, BytesRoundTrip) {
  Xoshiro256 rng(51);
  for (int i = 0; i < 50; ++i) {
    const Seed256 a = Seed256::random(rng);
    const auto bytes = a.to_bytes();
    EXPECT_EQ(Seed256::from_bytes(bytes), a);
  }
}

TEST(Seed256, BytesAreLittleEndian) {
  Seed256 s;
  s.set_bit(0);   // byte 0, bit 0
  s.set_bit(71);  // word 1 bit 7 -> byte 8, bit 7
  const auto bytes = s.to_bytes();
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[8], 0x80);
}

TEST(Seed256, FromBytesRejectsWrongLength) {
  Bytes short_buf(31, 0);
  EXPECT_THROW(Seed256::from_bytes(short_buf), CheckFailure);
}

TEST(Seed256, HexRoundTrip) {
  Xoshiro256 rng(61);
  for (int i = 0; i < 50; ++i) {
    const Seed256 a = Seed256::random(rng);
    EXPECT_EQ(Seed256::from_hex(a.to_hex()), a);
  }
}

TEST(Seed256, HexIsBigEndianPresentation) {
  Seed256 s;
  s.set_bit(255);
  const std::string hex = s.to_hex();
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex[0], '8');
  EXPECT_EQ(Seed256::one().to_hex().back(), '1');
}

TEST(Seed256, FromHexRejectsBadInput) {
  EXPECT_THROW(Seed256::from_hex("abcd"), std::invalid_argument);
}

TEST(Seed256, XorIsSelfInverse) {
  Xoshiro256 rng(71);
  for (int i = 0; i < 100; ++i) {
    const Seed256 a = Seed256::random(rng);
    const Seed256 b = Seed256::random(rng);
    EXPECT_EQ((a ^ b) ^ b, a);
  }
}

TEST(Seed256, WithFlippedBit) {
  const Seed256 s = Seed256::zero();
  const Seed256 f = with_flipped_bit(s, 100);
  EXPECT_TRUE(f.bit(100));
  EXPECT_EQ(hamming_distance(s, f), 1);
  EXPECT_EQ(with_flipped_bit(f, 100), s);
}

TEST(Seed256, RandomSeedsAreDistinct) {
  Xoshiro256 rng(81);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) seen.insert(Seed256::random(rng).to_hex());
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace rbc
