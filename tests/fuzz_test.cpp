// Deterministic fuzzing: the network-facing deserializer and the protocol
// front door must survive arbitrary bytes, and core value types must uphold
// their algebraic laws under random inputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "rbc/engines.hpp"

namespace rbc {
namespace {

TEST(FuzzDeserialize, RandomFramesNeverCrash) {
  Xoshiro256 rng(0xF022);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::size_t len = rng.next_below(64);
    Bytes frame(len);
    for (auto& b : frame) b = static_cast<u8>(rng.next());
    // Must return either a valid message or a typed error — never throw.
    const auto result = net::deserialize(frame);
    if (!result.has_value()) {
      EXPECT_FALSE(net::to_string(result.error()).empty());
    }
  }
}

TEST(FuzzDeserialize, BitflippedValidFramesNeverCrash) {
  // Start from well-formed frames and flip single bits — the adversarial
  // neighbourhood a parser is most likely to mishandle.
  net::DigestSubmission digest;
  digest.hash_algo = hash::HashAlgo::kSha3_256;
  digest.digest.assign(32, 0x5a);
  const net::Message msgs[] = {
      net::Message{net::HandshakeRequest{}},
      net::Message{net::Challenge{}},
      net::Message{digest},
      net::Message{net::AuthResult{}},
  };
  for (const auto& msg : msgs) {
    const Bytes base = net::serialize(msg);
    for (std::size_t byte = 0; byte < base.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes frame = base;
        frame[byte] = static_cast<u8>(frame[byte] ^ (1u << bit));
        (void)net::deserialize(frame);  // must not throw or crash
      }
    }
  }
}

TEST(FuzzDeserialize, RoundTripSurvivesRandomValidMessages) {
  Xoshiro256 rng(0xF033);
  for (int trial = 0; trial < 500; ++trial) {
    net::Challenge c;
    c.puf_address = static_cast<u32>(rng.next());
    c.tapki_enabled = rng.next_bool(0.5);
    c.stable_mask = Seed256::random(rng);
    const auto decoded = net::deserialize(net::serialize(net::Message{c}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<net::Challenge>(decoded.value()), c);
  }
}

TEST(FuzzDeserialize, MutatedLengthFieldsNeverOverread) {
  // Deterministic mutated-frame corpus: rewrite the digest frame's length
  // field to every adversarial value an attacker would pick — zero, off-by-
  // one around both legal digest sizes, and the full range of oversized
  // values up to 0xFFFFFFFF. Every mutation must yield a typed error (the
  // payload no longer matches the claimed length), and none may read past
  // the 38-byte buffer.
  net::DigestSubmission m;
  m.hash_algo = hash::HashAlgo::kSha3_256;
  m.digest.assign(32, 0x5a);
  const Bytes base = net::serialize(net::Message{m});
  const u32 corpus[] = {0,  1,  19,         20,         21,        31,
                        33, 64, 0x000000FF, 0x0000FFFF, 0x7FFFFFFF, 0xFFFFFFFF};
  for (const u32 len : corpus) {
    Bytes frame = base;
    for (int i = 0; i < 4; ++i)
      frame[2 + static_cast<std::size_t>(i)] = static_cast<u8>(len >> (8 * i));
    const auto r = net::deserialize(frame);
    ASSERT_FALSE(r.has_value()) << "length " << len;
    EXPECT_FALSE(net::to_string(r.error()).empty());
  }
}

TEST(FuzzSeqFrame, RandomEnvelopesNeverCrash) {
  // The retransmit envelope is the first parser lossy bytes hit; arbitrary
  // frames must produce typed errors, never a crash or an over-read.
  Xoshiro256 rng(0xF077);
  int errors = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes frame(rng.next_below(64));
    for (auto& b : frame) b = static_cast<u8>(rng.next());
    const auto r = net::open_seq_frame(frame);
    if (!r.has_value()) {
      ++errors;
      EXPECT_FALSE(net::to_string(r.error()).empty());
    }
  }
  EXPECT_GT(errors, 4900) << "random bytes should almost never frame";
}

TEST(FuzzSeqFrame, BitflippedEnvelopesNeverCrashOrForge) {
  // Single-bit mutations of well-formed envelopes: each either fails a
  // typed check or (a seq-field flip) opens under a DIFFERENT sequence
  // number — the stale-frame path. No flip may reproduce the original
  // (seq, payload) pair, or the ARQ would accept a damaged frame.
  net::DigestSubmission digest;
  digest.hash_algo = hash::HashAlgo::kSha3_256;
  digest.digest.assign(32, 0x5a);
  const net::Message msgs[] = {
      net::Message{net::HandshakeRequest{}},
      net::Message{net::Challenge{}},
      net::Message{digest},
      net::Message{net::AuthResult{}},
  };
  for (const auto& msg : msgs) {
    const Bytes payload = net::serialize(msg);
    const Bytes base = net::seal_seq_frame(0x1234, payload);
    for (std::size_t byte = 0; byte < base.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes frame = base;
        frame[byte] = static_cast<u8>(frame[byte] ^ (1u << bit));
        const auto r = net::open_seq_frame(frame);
        if (r.has_value()) {
          EXPECT_FALSE(r->seq == 0x1234 && r->payload == payload)
              << "byte " << byte << " bit " << bit << " forged the frame";
        }
      }
    }
  }
}

TEST(FuzzSeqFrame, MutatedEnvelopeLengthFieldsNeverOverread) {
  const Bytes payload = net::serialize(net::Message{net::Challenge{}});
  const Bytes base = net::seal_seq_frame(9, payload);
  const u32 corpus[] = {0, 1, 38, 40, 64, 0x0000FFFF, 0x7FFFFFFF, 0xFFFFFFFF};
  for (const u32 len : corpus) {
    Bytes frame = base;
    for (int i = 0; i < 4; ++i)  // length field sits after tag + seq
      frame[5 + static_cast<std::size_t>(i)] = static_cast<u8>(len >> (8 * i));
    const auto r = net::open_seq_frame(frame);
    ASSERT_FALSE(r.has_value()) << "length " << len;
    EXPECT_FALSE(net::to_string(r.error()).empty());
  }
}

TEST(FuzzChannel, GarbageInjectionSurfacesErrorsNotCrashes) {
  Xoshiro256 rng(0xF044);
  net::Channel endpoint{net::LatencyModel(0.0)};
  int errors = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes frame(rng.next_below(40));
    for (auto& b : frame) b = static_cast<u8>(rng.next());
    endpoint.inject_raw(frame);
    const auto msg = endpoint.receive();
    errors += !msg.has_value();
  }
  EXPECT_GT(errors, 900) << "random bytes should almost never parse";
}

TEST(FuzzSeed256, AlgebraicLawsUnderRandomInputs) {
  Xoshiro256 rng(0xF055);
  for (int trial = 0; trial < 2000; ++trial) {
    const Seed256 a = Seed256::random(rng);
    const Seed256 b = Seed256::random(rng);
    const Seed256 c = Seed256::random(rng);
    // Addition: commutative, associative, inverse.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + b - b, a);
    // XOR distributes over itself; De Morgan.
    EXPECT_EQ(~(a & b), (~a | ~b));
    // Hamming distance: triangle inequality + symmetry.
    EXPECT_EQ(hamming_distance(a, b), hamming_distance(b, a));
    EXPECT_LE(hamming_distance(a, c),
              hamming_distance(a, b) + hamming_distance(b, c));
    // Rotation preserves popcount; shifting never increases it.
    const int r = static_cast<int>(rng.next_below(256));
    EXPECT_EQ(a.rotl(r).popcount(), a.popcount());
    EXPECT_LE((a << r).popcount(), a.popcount());
  }
}

TEST(FuzzSearchEngine, RandomDigestsNeverAuthenticate) {
  // The front door: an attacker submitting random digests of the right
  // length must never be authenticated (up to hash-collision probability,
  // which is negligible at these trial counts).
  EngineConfig cfg;
  cfg.host_threads = 2;
  auto backend = make_backend("cpu", cfg);
  Xoshiro256 rng(0xF066);
  const Seed256 s_init = Seed256::random(rng);
  SearchOptions opts;
  opts.max_distance = 1;
  for (int trial = 0; trial < 30; ++trial) {
    Bytes digest(32);
    for (auto& b : digest) b = static_cast<u8>(rng.next());
    const auto report =
        backend->search(s_init, digest, hash::HashAlgo::kSha3_256, opts);
    EXPECT_FALSE(report.result.found);
  }
}

}  // namespace
}  // namespace rbc
