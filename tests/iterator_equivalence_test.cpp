// Cross-family equivalence: Gosper's hack, Algorithm 515 and Chase's
// Algorithm 382 enumerate the SAME set of combinations per Hamming shell —
// the property that makes the Table 4 comparison apples-to-apples and lets
// the engines swap iterators freely.
#include <gtest/gtest.h>

#include <set>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"

namespace rbc::comb {
namespace {

template <typename Factory>
std::set<std::string> collect_shell(Factory& factory, int k, int p) {
  factory.prepare(k, p);
  std::set<std::string> masks;
  for (int r = 0; r < p; ++r) {
    auto it = factory.make(r);
    Seed256 mask;
    while (it.next(mask)) {
      EXPECT_TRUE(masks.insert(mask.to_hex()).second) << "duplicate mask";
    }
  }
  return masks;
}

TEST(IteratorEquivalence, FullWidthShellOneIdentical) {
  GosperFactory gosper;
  Algorithm515Factory alg515;
  ChaseFactory chase;
  const auto a = collect_shell(gosper, 1, 4);
  const auto b = collect_shell(alg515, 1, 4);
  const auto c = collect_shell(chase, 1, 4);
  EXPECT_EQ(a.size(), 256u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(IteratorEquivalence, FullWidthShellTwoIdentical) {
  GosperFactory gosper;
  Algorithm515Factory alg515(Alg515Mode::kSuccessor);
  ChaseFactory chase;
  const auto a = collect_shell(gosper, 2, 7);
  const auto b = collect_shell(alg515, 2, 7);
  const auto c = collect_shell(chase, 2, 7);
  EXPECT_EQ(a.size(), 32640u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

class EquivalenceSmallSpaces
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EquivalenceSmallSpaces, AllThreeFamiliesAgree) {
  const auto [n, k, p] = GetParam();
  GosperFactory gosper(n);
  Algorithm515Factory alg515(Alg515Mode::kUnrankEach, n);
  ChaseFactory chase(n);
  const auto a = collect_shell(gosper, k, p);
  const auto b = collect_shell(alg515, k, p);
  const auto c = collect_shell(chase, k, p);
  EXPECT_EQ(a.size(), binomial64(n, k));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, EquivalenceSmallSpaces,
    ::testing::Values(std::tuple{7, 3, 1}, std::tuple{9, 4, 3},
                      std::tuple{11, 5, 8}, std::tuple{13, 2, 5},
                      std::tuple{16, 3, 4}, std::tuple{6, 6, 2}));

TEST(IteratorEquivalence, PartitionWidthDoesNotChangeTheSet) {
  // The same shell partitioned 1, 3 and 16 ways must yield identical sets
  // within each family (the data-parallel decomposition is lossless).
  for (int p : {1, 3, 16}) {
    GosperFactory gosper;
    Algorithm515Factory alg515;
    ChaseFactory chase;
    EXPECT_EQ(collect_shell(gosper, 1, p).size(), 256u) << "p=" << p;
    EXPECT_EQ(collect_shell(alg515, 1, p).size(), 256u) << "p=" << p;
    EXPECT_EQ(collect_shell(chase, 1, p).size(), 256u) << "p=" << p;
  }
}

}  // namespace
}  // namespace rbc::comb
