// Cross-family equivalence: Gosper's hack, Algorithm 515 and Chase's
// Algorithm 382 enumerate the SAME set of combinations per Hamming shell —
// the property that makes the Table 4 comparison apples-to-apples and lets
// the engines swap iterators freely.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"

namespace rbc::comb {
namespace {

template <typename Factory>
std::set<std::string> collect_shell(Factory& factory, int k, int p) {
  factory.prepare(k, p);
  std::set<std::string> masks;
  for (int r = 0; r < p; ++r) {
    auto it = factory.make(r);
    Seed256 mask;
    while (it.next(mask)) {
      EXPECT_TRUE(masks.insert(mask.to_hex()).second) << "duplicate mask";
    }
  }
  return masks;
}

TEST(IteratorEquivalence, FullWidthShellOneIdentical) {
  GosperFactory gosper;
  Algorithm515Factory alg515;
  ChaseFactory chase;
  const auto a = collect_shell(gosper, 1, 4);
  const auto b = collect_shell(alg515, 1, 4);
  const auto c = collect_shell(chase, 1, 4);
  EXPECT_EQ(a.size(), 256u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(IteratorEquivalence, FullWidthShellTwoIdentical) {
  GosperFactory gosper;
  Algorithm515Factory alg515(Alg515Mode::kSuccessor);
  ChaseFactory chase;
  const auto a = collect_shell(gosper, 2, 7);
  const auto b = collect_shell(alg515, 2, 7);
  const auto c = collect_shell(chase, 2, 7);
  EXPECT_EQ(a.size(), 32640u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

class EquivalenceSmallSpaces
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EquivalenceSmallSpaces, AllThreeFamiliesAgree) {
  const auto [n, k, p] = GetParam();
  GosperFactory gosper(n);
  Algorithm515Factory alg515(Alg515Mode::kUnrankEach, n);
  ChaseFactory chase(n);
  const auto a = collect_shell(gosper, k, p);
  const auto b = collect_shell(alg515, k, p);
  const auto c = collect_shell(chase, k, p);
  EXPECT_EQ(a.size(), binomial64(n, k));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, EquivalenceSmallSpaces,
    ::testing::Values(std::tuple{7, 3, 1}, std::tuple{9, 4, 3},
                      std::tuple{11, 5, 8}, std::tuple{13, 2, 5},
                      std::tuple{16, 3, 4}, std::tuple{6, 6, 2}));

// --- seek equivalence (PR 4 tiled plans) -----------------------------------
//
// A tile is an iterator opened at an arbitrary start rank. For the tiled
// schedule to be lossless, an iterator seeked to rank r must produce exactly
// the suffix of a rank-0 walk — including across tile boundaries and through
// the ragged last tile.

template <typename Iterator>
std::vector<std::string> drain(Iterator it) {
  std::vector<std::string> out;
  Seed256 mask;
  while (it.next(mask)) out.push_back(mask.to_hex());
  return out;
}

std::vector<std::string> suffix(const std::vector<std::string>& walk, u64 r) {
  return {walk.begin() + static_cast<std::ptrdiff_t>(r), walk.end()};
}

TEST(SeekEquivalence, GosperStartRankIsRankZeroWalkSuffix) {
  const int n = 16, k = 3;
  const u64 total = binomial64(n, k);  // 560
  const auto walk = drain(GosperIterator(k, 0, total, n));
  ASSERT_EQ(walk.size(), total);
  for (u64 r : {u64{1}, u64{7}, u64{250}, total - 1}) {
    EXPECT_EQ(drain(GosperIterator(k, r, total - r, n)), suffix(walk, r))
        << "start_rank=" << r;
  }
}

TEST(SeekEquivalence, Alg515StartRankIsRankZeroWalkSuffixBothModes) {
  const int n = 16, k = 4;
  const u64 total = binomial64(n, k);  // 1820
  for (auto mode : {Alg515Mode::kUnrankEach, Alg515Mode::kSuccessor}) {
    const auto walk = drain(Algorithm515Iterator(k, 0, total, mode, n));
    ASSERT_EQ(walk.size(), total);
    for (u64 r : {u64{1}, u64{13}, u64{911}, total - 1}) {
      EXPECT_EQ(drain(Algorithm515Iterator(k, r, total - r, mode, n)),
                suffix(walk, r))
          << "start_rank=" << r;
    }
  }
}

TEST(SeekEquivalence, ChaseSnapshotTileIsRankZeroWalkSlice) {
  // Chase has no O(1) seek; its tiles resume from stride-boundary snapshots.
  // Each tile must reproduce exactly its slice of the rank-0 walk.
  const int n = 16, k = 3;
  ChaseFactory chase(n);
  const u64 total = binomial64(n, k);
  ChaseFactory full(n);
  full.prepare(k, 1);
  const auto walk = drain(full.make(0));
  ASSERT_EQ(walk.size(), total);
  const u64 stride = 64;  // 560 = 8 * 64 + 48: ragged last tile
  const auto plan = chase.plan(k, stride);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->tiles(), 9u);
  for (u64 t = 0; t < plan->tiles(); ++t) {
    const auto tile = drain(plan->make_tile(t));
    ASSERT_EQ(tile.size(), plan->tile_count(t));
    const u64 lo = t * stride;
    EXPECT_EQ(tile, std::vector<std::string>(
                        walk.begin() + static_cast<std::ptrdiff_t>(lo),
                        walk.begin() + static_cast<std::ptrdiff_t>(lo) +
                            static_cast<std::ptrdiff_t>(tile.size())))
        << "tile=" << t;
  }
}

template <typename Factory>
void expect_plan_concatenates_to_full_walk(Factory& factory, int k, u64 stride,
                                           const std::vector<std::string>& walk) {
  const auto plan = factory.plan(k, stride, {});
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->total(), walk.size());
  std::vector<std::string> concat;
  u64 counted = 0;
  for (u64 t = 0; t < plan->tiles(); ++t) {
    const auto tile = drain(plan->make_tile(t));
    EXPECT_EQ(tile.size(), plan->tile_count(t)) << "tile=" << t;
    counted += tile.size();
    concat.insert(concat.end(), tile.begin(), tile.end());
  }
  EXPECT_EQ(counted, walk.size());
  EXPECT_EQ(concat, walk);
}

TEST(SeekEquivalence, TileConcatenationEqualsFullWalkAllFamilies) {
  const int n = 13, k = 4;
  const u64 total = binomial64(n, k);  // 715 = 7 * 100 + 15
  const u64 stride = 100;

  GosperFactory gosper(n);
  expect_plan_concatenates_to_full_walk(
      gosper, k, stride, drain(GosperIterator(k, 0, total, n)));

  Algorithm515Factory alg515(Alg515Mode::kSuccessor, n);
  expect_plan_concatenates_to_full_walk(
      alg515, k, stride,
      drain(Algorithm515Iterator(k, 0, total, Alg515Mode::kSuccessor, n)));

  ChaseFactory chase(n);
  ChaseFactory full(n);
  full.prepare(k, 1);
  expect_plan_concatenates_to_full_walk(chase, k, stride,
                                        drain(full.make(0)));
}

TEST(SeekEquivalence, FullShellPlansCoverFullWidthShells) {
  // Full-width (n = 256) shells: the plan's tiles must cover exactly
  // C(256, k) distinct masks for every family.
  for (int k : {1, 2}) {
    const u64 expected = binomial64(kSeedBits, k);
    GosperFactory gosper;
    Algorithm515Factory alg515(Alg515Mode::kSuccessor);
    ChaseFactory chase;
    const u64 stride = 5000;  // ragged: 32640 = 6 * 5000 + 2640
    const auto count_plan = [&](auto& factory) {
      const auto plan = factory.plan(k, stride, {});
      std::set<std::string> masks;
      u64 counted = 0;
      for (u64 t = 0; t < plan->tiles(); ++t) {
        Seed256 mask;
        auto it = plan->make_tile(t);
        while (it.next(mask)) {
          EXPECT_TRUE(masks.insert(mask.to_hex()).second) << "duplicate";
          ++counted;
        }
      }
      EXPECT_EQ(counted, masks.size());
      return counted;
    };
    EXPECT_EQ(count_plan(gosper), expected) << "gosper k=" << k;
    EXPECT_EQ(count_plan(alg515), expected) << "alg515 k=" << k;
    EXPECT_EQ(count_plan(chase), expected) << "chase k=" << k;
  }
}

TEST(IteratorEquivalence, PartitionWidthDoesNotChangeTheSet) {
  // The same shell partitioned 1, 3 and 16 ways must yield identical sets
  // within each family (the data-parallel decomposition is lossless).
  for (int p : {1, 3, 16}) {
    GosperFactory gosper;
    Algorithm515Factory alg515;
    ChaseFactory chase;
    EXPECT_EQ(collect_shell(gosper, 1, p).size(), 256u) << "p=" << p;
    EXPECT_EQ(collect_shell(alg515, 1, p).size(), 256u) << "p=" << p;
    EXPECT_EQ(collect_shell(chase, 1, p).size(), 256u) << "p=" << p;
  }
}

}  // namespace
}  // namespace rbc::comb
