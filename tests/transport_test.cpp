#include <gtest/gtest.h>

#include "net/transport.hpp"

namespace rbc::net {
namespace {

TEST(LatencyModel, FixedLatency) {
  LatencyModel m(0.15);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(m.sample(), 0.15);
}

TEST(LatencyModel, JitterBounded) {
  LatencyModel m(0.10, 0.05, /*jitter_seed=*/7);
  for (int i = 0; i < 100; ++i) {
    const double s = m.sample();
    EXPECT_GE(s, 0.10);
    EXPECT_LT(s, 0.15);
  }
}

TEST(LatencyModel, RejectsNegative) {
  EXPECT_THROW(LatencyModel(-0.1), rbc::CheckFailure);
}

TEST(Channel, SendReceiveRoundTrip) {
  Channel client{LatencyModel(0.15)};
  Channel server{LatencyModel(0.15)};
  Channel::connect(client, server);

  HandshakeRequest req;
  req.device_id = 99;
  client.send(Message{req});
  ASSERT_TRUE(server.has_message());
  auto msg = server.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get<HandshakeRequest>(msg.value()).device_id, 99u);
}

TEST(Channel, AccountsLatencyOnBothEndpoints) {
  Channel client{LatencyModel(0.15)};
  Channel server{LatencyModel(0.15)};
  Channel::connect(client, server);

  client.send(Message{HandshakeRequest{}});
  server.send(Message{Challenge{}});
  EXPECT_DOUBLE_EQ(client.elapsed_s(), 0.30);
  EXPECT_DOUBLE_EQ(server.elapsed_s(), 0.30);
}

TEST(Channel, PaperCommBudgetReproduced) {
  // 4 messages x 0.15 s + 0.30 s PUF read = 0.90 s (Table 5 comm budget).
  Channel client{LatencyModel(0.15)};
  Channel server{LatencyModel(0.15)};
  Channel::connect(client, server);

  client.send(Message{HandshakeRequest{}});        // 1
  server.send(Message{Challenge{}});               // 2
  client.charge_local_time(0.30);                  // PUF read over USB
  DigestSubmission digest;
  digest.digest.assign(32, 0);
  client.send(Message{digest});                    // 3
  server.send(Message{AuthResult{}});              // 4
  EXPECT_DOUBLE_EQ(client.elapsed_s(), 0.90);
}

TEST(Channel, MessagesDeliveredInOrder) {
  Channel a{LatencyModel(0.0)};
  Channel b{LatencyModel(0.0)};
  Channel::connect(a, b);
  for (u32 addr = 0; addr < 5; ++addr) {
    Challenge c;
    c.puf_address = addr;
    a.send(Message{c});
  }
  for (u32 addr = 0; addr < 5; ++addr) {
    auto m = b.receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<Challenge>(m.value()).puf_address, addr);
  }
  EXPECT_FALSE(b.has_message());
}

TEST(Channel, ReceiveOnEmptyThrows) {
  Channel a{LatencyModel(0.0)};
  EXPECT_THROW(a.receive(), rbc::CheckFailure);
}

TEST(Channel, SendWithoutPeerThrows) {
  Channel a{LatencyModel(0.0)};
  EXPECT_THROW(a.send(Message{HandshakeRequest{}}), rbc::CheckFailure);
}

TEST(Channel, CorruptFrameSurfacesWireError) {
  Channel a{LatencyModel(0.0)};
  a.inject_raw(Bytes{0xff, 0x01, 0x02});
  auto m = a.receive();
  ASSERT_FALSE(m.has_value());
  EXPECT_EQ(m.error(), WireError::kUnknownTag);
}

TEST(Channel, ChargeLocalTimeValidation) {
  Channel a{LatencyModel(0.0)};
  a.charge_local_time(0.5);
  EXPECT_DOUBLE_EQ(a.elapsed_s(), 0.5);
  EXPECT_THROW(a.charge_local_time(-1.0), rbc::CheckFailure);
}

}  // namespace
}  // namespace rbc::net
