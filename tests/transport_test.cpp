#include <gtest/gtest.h>

#include "net/transport.hpp"

namespace rbc::net {
namespace {

TEST(LatencyModel, FixedLatency) {
  LatencyModel m(0.15);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(m.sample(), 0.15);
}

TEST(LatencyModel, JitterBounded) {
  LatencyModel m(0.10, 0.05, /*jitter_seed=*/7);
  for (int i = 0; i < 100; ++i) {
    const double s = m.sample();
    EXPECT_GE(s, 0.10);
    EXPECT_LT(s, 0.15);
  }
}

TEST(LatencyModel, RejectsNegative) {
  EXPECT_THROW(LatencyModel(-0.1), rbc::CheckFailure);
}

TEST(LatencyModel, ForkWithSameSaltReproducesTheJitterStream) {
  const LatencyModel base(0.10, 0.05, /*jitter_seed=*/42);
  LatencyModel a = base.fork(9);
  LatencyModel b = base.fork(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.sample(), b.sample()) << "draw " << i;
  }
}

TEST(LatencyModel, ForkWithDifferentSaltsDecorrelatesTheStreams) {
  const LatencyModel base(0.10, 0.05, /*jitter_seed=*/42);
  LatencyModel a = base.fork(1);
  LatencyModel b = base.fork(2);
  int identical = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.sample() == b.sample()) ++identical;
  }
  EXPECT_LT(identical, 8) << "sibling forks share their jitter stream";
}

TEST(LatencyModel, ForkIsIndependentOfParentStreamPosition) {
  // fork() derives from the parent's ORIGINAL seed: draining samples from
  // the parent must not change what its forks produce.
  LatencyModel fresh(0.10, 0.05, /*jitter_seed=*/42);
  LatencyModel drained(0.10, 0.05, /*jitter_seed=*/42);
  for (int i = 0; i < 50; ++i) drained.sample();
  LatencyModel a = fresh.fork(3);
  LatencyModel b = drained.fork(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.sample(), b.sample()) << "draw " << i;
  }
}

TEST(LatencyModel, ForkPreservesRealtimeMode) {
  LatencyModel base(0.01);
  base.set_realtime(true);
  EXPECT_TRUE(base.fork(5).realtime());
  base.set_realtime(false);
  EXPECT_FALSE(base.fork(5).realtime());
}

TEST(Channel, RealtimeModeSleepsTheChargedLatency) {
  // Lower-bound-only assertions: the sleep must be at least the charged
  // time; scheduler overshoot is unbounded and must not fail the test.
  LatencyModel model(0.02);
  model.set_realtime(true);
  Channel a{model};
  Channel b{model};
  Channel::connect(a, b);

  const auto start = std::chrono::steady_clock::now();
  a.send(Message{HandshakeRequest{}});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(wall, 0.02);
  EXPECT_DOUBLE_EQ(a.elapsed_s(), 0.02);
  EXPECT_DOUBLE_EQ(b.elapsed_s(), 0.02);
}

TEST(Channel, ChargeLinkTimeChargesBothEndsAndSleepsOnce) {
  LatencyModel model(0.0);
  model.set_realtime(true);
  Channel a{model};
  Channel b{model};
  Channel::connect(a, b);

  const auto start = std::chrono::steady_clock::now();
  a.charge_link_time(0.03);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Both logical clocks advance by the wait, but wall time is spent once —
  // a single co-simulated driver sits out the timeout for both endpoints.
  EXPECT_DOUBLE_EQ(a.elapsed_s(), 0.03);
  EXPECT_DOUBLE_EQ(b.elapsed_s(), 0.03);
  EXPECT_GE(wall, 0.03);
  EXPECT_THROW(a.charge_link_time(-0.1), rbc::CheckFailure);
}

TEST(Channel, ChargeLinkTimeWithoutPeerThrows) {
  Channel a{LatencyModel(0.0)};
  EXPECT_THROW(a.charge_link_time(0.1), rbc::CheckFailure);
}

TEST(Channel, SendReceiveRoundTrip) {
  Channel client{LatencyModel(0.15)};
  Channel server{LatencyModel(0.15)};
  Channel::connect(client, server);

  HandshakeRequest req;
  req.device_id = 99;
  client.send(Message{req});
  ASSERT_TRUE(server.has_message());
  auto msg = server.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get<HandshakeRequest>(msg.value()).device_id, 99u);
}

TEST(Channel, AccountsLatencyOnBothEndpoints) {
  Channel client{LatencyModel(0.15)};
  Channel server{LatencyModel(0.15)};
  Channel::connect(client, server);

  client.send(Message{HandshakeRequest{}});
  server.send(Message{Challenge{}});
  EXPECT_DOUBLE_EQ(client.elapsed_s(), 0.30);
  EXPECT_DOUBLE_EQ(server.elapsed_s(), 0.30);
}

TEST(Channel, PaperCommBudgetReproduced) {
  // 4 messages x 0.15 s + 0.30 s PUF read = 0.90 s (Table 5 comm budget).
  Channel client{LatencyModel(0.15)};
  Channel server{LatencyModel(0.15)};
  Channel::connect(client, server);

  client.send(Message{HandshakeRequest{}});        // 1
  server.send(Message{Challenge{}});               // 2
  client.charge_local_time(0.30);                  // PUF read over USB
  DigestSubmission digest;
  digest.digest.assign(32, 0);
  client.send(Message{digest});                    // 3
  server.send(Message{AuthResult{}});              // 4
  EXPECT_DOUBLE_EQ(client.elapsed_s(), 0.90);
}

TEST(Channel, MessagesDeliveredInOrder) {
  Channel a{LatencyModel(0.0)};
  Channel b{LatencyModel(0.0)};
  Channel::connect(a, b);
  for (u32 addr = 0; addr < 5; ++addr) {
    Challenge c;
    c.puf_address = addr;
    a.send(Message{c});
  }
  for (u32 addr = 0; addr < 5; ++addr) {
    auto m = b.receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<Challenge>(m.value()).puf_address, addr);
  }
  EXPECT_FALSE(b.has_message());
}

TEST(Channel, ReceiveOnEmptyThrows) {
  Channel a{LatencyModel(0.0)};
  EXPECT_THROW(a.receive(), rbc::CheckFailure);
}

TEST(Channel, SendWithoutPeerThrows) {
  Channel a{LatencyModel(0.0)};
  EXPECT_THROW(a.send(Message{HandshakeRequest{}}), rbc::CheckFailure);
}

TEST(Channel, CorruptFrameSurfacesWireError) {
  Channel a{LatencyModel(0.0)};
  a.inject_raw(Bytes{0xff, 0x01, 0x02});
  auto m = a.receive();
  ASSERT_FALSE(m.has_value());
  EXPECT_EQ(m.error(), WireError::kUnknownTag);
}

TEST(Channel, ChargeLocalTimeValidation) {
  Channel a{LatencyModel(0.0)};
  a.charge_local_time(0.5);
  EXPECT_DOUBLE_EQ(a.elapsed_s(), 0.5);
  EXPECT_THROW(a.charge_local_time(-1.0), rbc::CheckFailure);
}

}  // namespace
}  // namespace rbc::net
