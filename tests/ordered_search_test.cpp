// Reliability-guided search ordering: maximum-likelihood-first enumeration.
//
// The load-bearing property is the permutation contract: within every shell
// the ordered stream visits EXACTLY the canonical shell's candidates — only
// the order changes — so misses count identical seeds_hashed and verdicts
// can never diverge from the canonical search. On top of that sit the
// likelihood guarantees (weight sums non-decreasing, the cheapest subset
// first), the solo-vs-fused equivalence for SearchOrder::kReliability, the
// single-pass enrollment calibration (mask + profile from one read stream),
// profile persistence (encrypted at rest, legacy records still load), and
// the shell-mask cache LRU bound.
//
// OrderedFusion*/OrderedServer* run under TSan in CI alongside the fusion
// suites: the ordered stream must ride the shared-batch pump unchanged.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "combinatorics/gosper.hpp"
#include "combinatorics/likelihood.hpp"
#include "puf/puf.hpp"
#include "rbc/candidate_stream.hpp"
#include "rbc/engines.hpp"
#include "rbc/enrollment_db.hpp"
#include "rbc/protocol.hpp"
#include "rbc/search.hpp"
#include "server/auth_server.hpp"
#include "server/fusion_engine.hpp"

namespace rbc {
namespace {

using server::FusionEngine;

constexpr u64 kBallD2 = 1 + 256 + 32640;  // |ball(d<=2)| over 256 bits

Seed256 random_seed(u64 salt) {
  Xoshiro256 rng(salt);
  return Seed256::random(rng);
}

/// A mask with exactly `k` distinct bits set, drawn from `salt`.
Seed256 mask_of_weight(int k, u64 salt) {
  Xoshiro256 rng(salt);
  Seed256 mask;
  while (mask.popcount() < k)
    mask.set_bit(static_cast<int>(rng.next() % 256));
  return mask;
}

/// A reliability order over 256 bits where `likely` bits carry low weight
/// (likely to flip) and every other bit carries a high uniform weight.
std::shared_ptr<const comb::ReliabilityOrder> order_with_likely_bits(
    const std::vector<int>& likely, u8 low = 5, u8 high = 200) {
  std::array<u8, 256> weights;
  weights.fill(high);
  for (int bit : likely) weights[static_cast<unsigned>(bit)] = low;
  return std::make_shared<const comb::ReliabilityOrder>(
      comb::ReliabilityOrder::from_weights(weights.data()));
}

std::vector<Seed256> drain(CandidateStream& stream) {
  std::vector<Seed256> out;
  std::array<Seed256, 64> buf;
  std::size_t ask = 1;  // ragged asks wrap shell boundaries
  while (std::size_t n = stream.fill(buf.data(), (ask % 63) + 1)) {
    out.insert(out.end(), buf.begin(), buf.begin() + n);
    ++ask;
  }
  return out;
}

// ---------------------------------------------------------------------------
// WeightedShellEnumerator: permutation + likelihood order
// ---------------------------------------------------------------------------

/// All C(n_bits, k) masks of one canonical shell, via Gosper's hack.
std::set<Seed256> canonical_shell(int n_bits, int k) {
  comb::GosperFactory factory(n_bits);
  factory.prepare(k, 1);
  auto it = factory.make(0);
  std::set<Seed256> shell;
  Seed256 mask;
  while (it.next(mask)) EXPECT_TRUE(shell.insert(mask).second);
  return shell;
}

TEST(OrderedShell, SmallWidthShellIsExactPermutation) {
  std::array<u8, 256> weights{};
  Xoshiro256 rng(0x0de1);
  for (auto& w : weights) w = static_cast<u8>(rng.next() % 251);
  const auto order = comb::ReliabilityOrder::from_weights(weights.data(), 20);

  comb::WeightedShellEnumerator enumerator(order, 3);
  std::set<Seed256> got;
  Seed256 mask;
  u32 prev = 0;
  while (enumerator.next(mask)) {
    ASSERT_EQ(mask.popcount(), 3);
    ASSERT_LE(mask.highest_set_bit(), 19);
    ASSERT_TRUE(got.insert(mask).second) << "duplicate mask";
    // Weight sums must be non-decreasing — this IS "descending product
    // probability" under the log-odds encoding.
    ASSERT_GE(enumerator.last_weight(), prev);
    prev = enumerator.last_weight();
  }
  EXPECT_EQ(got.size(), 1140u);  // C(20, 3)
  EXPECT_EQ(got, canonical_shell(20, 3));
  EXPECT_EQ(enumerator.produced(), 1140u);
}

TEST(OrderedShell, FullWidthShellIsExactPermutation) {
  std::array<u8, 256> weights{};
  Xoshiro256 rng(0xF11);
  for (auto& w : weights) w = static_cast<u8>(rng.next());
  const auto order = comb::ReliabilityOrder::from_weights(weights.data());

  comb::WeightedShellEnumerator enumerator(order, 2);
  std::set<Seed256> got;
  Seed256 mask;
  u32 prev = 0;
  while (enumerator.next(mask)) {
    ASSERT_EQ(mask.popcount(), 2);
    ASSERT_TRUE(got.insert(mask).second);
    ASSERT_GE(enumerator.last_weight(), prev);
    prev = enumerator.last_weight();
  }
  EXPECT_EQ(got.size(), 32640u);  // C(256, 2)
  EXPECT_EQ(got, canonical_shell(256, 2));
}

TEST(OrderedShell, EmissionWeightMatchesMaskWeight) {
  // last_weight() must equal the sum of the emitted mask's per-bit weights —
  // the enumerator's internal g bookkeeping cannot drift from the masks.
  std::array<u8, 256> weights{};
  Xoshiro256 rng(0xABC);
  for (auto& w : weights) w = static_cast<u8>(rng.next() % 97);
  const auto order = comb::ReliabilityOrder::from_weights(weights.data(), 16);
  comb::WeightedShellEnumerator enumerator(order, 4);
  Seed256 mask;
  while (enumerator.next(mask)) {
    u32 sum = 0;
    for (int b = 0; b < 16; ++b)
      if (mask.bit(b)) sum += weights[static_cast<unsigned>(b)];
    ASSERT_EQ(enumerator.last_weight(), sum);
  }
  EXPECT_EQ(enumerator.produced(), 1820u);  // C(16, 4)
}

TEST(OrderedShell, CheapestSubsetComesFirst) {
  const auto order = order_with_likely_bits({3, 77, 200});
  comb::WeightedShellEnumerator enumerator(*order, 3);
  Seed256 first;
  ASSERT_TRUE(enumerator.next(first));
  Seed256 want;
  want.set_bit(3);
  want.set_bit(77);
  want.set_bit(200);
  EXPECT_EQ(first, want);
  EXPECT_EQ(enumerator.last_weight(), 15u);
}

TEST(OrderedShell, UniformWeightsStillEnumerateWholeShell) {
  std::array<u8, 256> weights;
  weights.fill(42);  // all ties: order is arbitrary but must stay a bijection
  const auto order = comb::ReliabilityOrder::from_weights(weights.data(), 12);
  comb::WeightedShellEnumerator enumerator(order, 4);
  std::set<Seed256> got;
  Seed256 mask;
  while (enumerator.next(mask)) ASSERT_TRUE(got.insert(mask).second);
  EXPECT_EQ(got.size(), 495u);  // C(12, 4)
  EXPECT_EQ(got, canonical_shell(12, 4));
}

TEST(OrderedShell, DeterministicAcrossRuns) {
  std::array<u8, 256> weights{};
  Xoshiro256 rng(0xD37);
  for (auto& w : weights) w = static_cast<u8>(rng.next() % 7);  // heavy ties
  const auto order = comb::ReliabilityOrder::from_weights(weights.data(), 14);
  comb::WeightedShellEnumerator a(order, 3);
  comb::WeightedShellEnumerator b(order, 3);
  Seed256 ma, mb;
  while (a.next(ma)) {
    ASSERT_TRUE(b.next(mb));
    ASSERT_EQ(ma, mb);
  }
  EXPECT_FALSE(b.next(mb));
}

TEST(OrderedShell, CanonicalBallRankMatchesCanonicalStreamPosition) {
  // canonical_ball_rank must agree with the actual canonical enumeration:
  // the i-th candidate of the Gosper-ordered ball has rank i+1.
  const Seed256 s_init = random_seed(0x4A4A);
  comb::GosperFactory factory;
  BallStream<comb::GosperFactory> stream(s_init, 2, factory);
  const std::vector<Seed256> ball = drain(stream);
  ASSERT_EQ(ball.size(), kBallD2);
  for (std::size_t i = 0; i < ball.size(); i += 17) {  // sampled, plus ends
    EXPECT_EQ(comb::canonical_ball_rank(ball[i] ^ s_init),
              static_cast<u64>(i) + 1)
        << "candidate " << i;
  }
  EXPECT_EQ(comb::canonical_ball_rank(ball.back() ^ s_init), kBallD2);
  EXPECT_EQ(comb::canonical_ball_rank(Seed256{}), 1u);
}

// ---------------------------------------------------------------------------
// OrderedBallStream: the CandidateStream contract
// ---------------------------------------------------------------------------

TEST(OrderedStream, FirstFillIsBaseAndFillsNeverCrossShells) {
  const auto order = order_with_likely_bits({1, 2});
  const Seed256 s_init = random_seed(0x0B51);
  OrderedBallStream stream(s_init, 2, order);
  std::array<Seed256, 48> buf;

  ASSERT_EQ(stream.fill(buf.data(), buf.size()), 1u);
  EXPECT_EQ(stream.last_shell(), 0);
  EXPECT_EQ(buf[0], s_init);

  u64 per_shell[3] = {1, 0, 0};
  int prev_shell = 0;
  while (std::size_t n = stream.fill(buf.data(), buf.size())) {
    const int shell = stream.last_shell();
    ASSERT_GE(shell, prev_shell);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ((buf[i] ^ s_init).popcount(), shell)
          << "fill mixed candidates from different shells";
    per_shell[shell] += n;
    prev_shell = shell;
  }
  EXPECT_EQ(per_shell[1], 256u);
  EXPECT_EQ(per_shell[2], 32640u);
  EXPECT_TRUE(stream.exhausted());
  EXPECT_EQ(stream.position(), kBallD2);
}

TEST(OrderedStream, HybridBudgetBallIsExactPermutation) {
  // n_bits = 18, d = 3, budget = 100: shells 1 (18) and 2 (153) are fully
  // ordered, shell 3 (C(18,3) = 816) overflows the budget and must finish
  // through the canonical tail without duplicating or dropping a candidate.
  std::array<u8, 256> weights{};
  Xoshiro256 rng(0x18bd);
  for (auto& w : weights) w = static_cast<u8>(rng.next() % 199);
  const auto order = std::make_shared<const comb::ReliabilityOrder>(
      comb::ReliabilityOrder::from_weights(weights.data(), 18));
  const Seed256 s_init = random_seed(0x1818);

  OrderedBallStream stream(s_init, 3, order, /*ordered_budget=*/100, 18);
  const std::vector<Seed256> got = drain(stream);

  comb::GosperFactory factory(18);
  BallStream<comb::GosperFactory> reference(s_init, 3, factory);
  const std::vector<Seed256> want = drain(reference);

  ASSERT_EQ(want.size(), 988u);  // 1 + 18 + 153 + 816
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::set<Seed256>(got.begin(), got.end()),
            std::set<Seed256>(want.begin(), want.end()));
  EXPECT_EQ(stream.position(), 988u);
}

TEST(OrderedStream, BudgetOfOneStillCoversTheWholeBall) {
  // Degenerate budget: every shell switches to the tail after one ordered
  // emission — the worst case for the skip logic.
  const auto order = order_with_likely_bits({9, 200});
  const Seed256 s_init = random_seed(0xB1);
  OrderedBallStream stream(s_init, 2, order, /*ordered_budget=*/1);
  const std::vector<Seed256> got = drain(stream);
  ASSERT_EQ(got.size(), kBallD2);
  std::set<Seed256> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), kBallD2);
}

TEST(OrderedStream, SkipBaseStartsAtShellOne) {
  const auto order = order_with_likely_bits({5});
  const Seed256 s_init = random_seed(0x5B);
  OrderedBallStream stream(s_init, 1, order);
  stream.skip_base();
  std::array<Seed256, 8> buf;
  ASSERT_GT(stream.fill(buf.data(), buf.size()), 0u);
  EXPECT_EQ(stream.last_shell(), 1);
  // Likelihood order: the most erratic bit's flip is the first candidate.
  EXPECT_EQ(buf[0], with_flipped_bit(s_init, 5));
}

// ---------------------------------------------------------------------------
// rbc_search under SearchOrder::kReliability
// ---------------------------------------------------------------------------

template <typename Hash = hash::Sha3SeedHash>
SearchResult ordered_search(const Seed256& base, const Seed256& truth,
                            int max_distance,
                            std::shared_ptr<const comb::ReliabilityOrder> rel,
                            int threads = 1) {
  comb::GosperFactory factory;
  par::WorkerGroup pool(threads);
  SearchOptions opts;
  opts.max_distance = max_distance;
  opts.num_threads = threads;
  opts.timeout_s = 600.0;
  opts.order = SearchOrder::kReliability;
  opts.reliability = std::move(rel);
  const Hash hash;
  return rbc_search<Hash>(base, hash(truth), factory, pool, opts, hash);
}

TEST(OrderedSearch, LikelyFlipFoundNearlyFirst) {
  const Seed256 base = random_seed(0x111);
  const auto order = order_with_likely_bits({3, 77, 200});
  // Truth flips the second-cheapest bit: rank 2 within shell 1, so exactly
  // base + two shell-1 candidates are hashed.
  const SearchResult r =
      ordered_search(base, with_flipped_bit(base, 77), 2, order);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.distance, 1);
  EXPECT_EQ(r.seed, with_flipped_bit(base, 77));
  EXPECT_EQ(r.seeds_hashed, 3u);
  // Canonical order would have walked to position 1 + 77 + 1 = 79.
  EXPECT_EQ(r.canonical_rank, 79u);
}

TEST(OrderedSearch, CheapestTripleIsFirstShellThreeCandidate) {
  const Seed256 base = random_seed(0x222);
  const auto order = order_with_likely_bits({3, 77, 200});
  Seed256 truth = base;
  truth.flip_bit(3);
  truth.flip_bit(77);
  truth.flip_bit(200);
  const SearchResult r = ordered_search(base, truth, 3, order);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.distance, 3);
  EXPECT_EQ(r.seed, truth);
  // Shells 0..2 exhaust (1 + 256 + 32640), then the likeliest triple leads
  // shell 3.
  EXPECT_EQ(r.seeds_hashed, kBallD2 + 1);
  // The canonical order would have had to reach deep into shell 3.
  EXPECT_GT(r.canonical_rank, r.seeds_hashed);
}

TEST(OrderedSearch, MissVisitsExactlyTheBall) {
  const Seed256 base = random_seed(0x333);
  const auto order = order_with_likely_bits({10, 20});
  const Seed256 truth = base ^ mask_of_weight(9, 0x3155);
  const SearchResult r = ordered_search(base, truth, 2, order);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.seeds_hashed, kBallD2);  // permutation => identical miss count
  EXPECT_EQ(r.canonical_rank, 0u);
}

TEST(OrderedSearch, ThreadCountDoesNotPerturbOrderedResults) {
  // The ordered walk is inherently sequential; num_threads > 1 must not
  // silently fall back to an order-ignoring parallel schedule.
  const Seed256 base = random_seed(0x444);
  const auto order = order_with_likely_bits({3, 77, 200});
  const SearchResult solo =
      ordered_search(base, with_flipped_bit(base, 200), 2, order, 1);
  const SearchResult wide =
      ordered_search(base, with_flipped_bit(base, 200), 2, order, 4);
  ASSERT_TRUE(solo.found);
  ASSERT_TRUE(wide.found);
  EXPECT_EQ(solo.seed, wide.seed);
  EXPECT_EQ(solo.seeds_hashed, wide.seeds_hashed);
  EXPECT_EQ(solo.canonical_rank, wide.canonical_rank);
  EXPECT_EQ(solo.seeds_hashed, 4u);  // base + bits 3, 77, 200
}

TEST(OrderedSearch, ExplicitCanonicalMatchesDefault) {
  const Seed256 base = random_seed(0x555);
  const Seed256 truth = base ^ mask_of_weight(2, 0xCC);
  comb::GosperFactory factory;
  par::WorkerGroup pool(1);
  SearchOptions opts;
  opts.max_distance = 2;
  opts.timeout_s = 600.0;
  const hash::Sha3SeedHash hash;
  const SearchResult dflt =
      rbc_search<hash::Sha3SeedHash>(base, hash(truth), factory, pool, opts,
                                     hash);
  opts.order = SearchOrder::kCanonical;
  const SearchResult expl =
      rbc_search<hash::Sha3SeedHash>(base, hash(truth), factory, pool, opts,
                                     hash);
  ASSERT_TRUE(dflt.found);
  EXPECT_EQ(dflt.seed, expl.seed);
  EXPECT_EQ(dflt.seeds_hashed, expl.seeds_hashed);
  EXPECT_EQ(dflt.canonical_rank, expl.canonical_rank);
  // Under canonical order with early exit, the rank IS the visit count.
  EXPECT_EQ(dflt.canonical_rank, dflt.seeds_hashed);
}

// ---------------------------------------------------------------------------
// Solo vs fused equivalence for reliability-ordered sessions
// ---------------------------------------------------------------------------

Bytes digest_of(const Seed256& s, hash::HashAlgo algo) {
  if (algo == hash::HashAlgo::kSha1) {
    const hash::Digest160 d = hash::sha1_seed(s);
    return Bytes(d.bytes.begin(), d.bytes.end());
  }
  const hash::Digest256 d = hash::sha3_256_seed(s);
  return Bytes(d.bytes.begin(), d.bytes.end());
}

struct SoloBaseline {
  std::unique_ptr<SearchBackend> backend;
  SoloBaseline() {
    EngineConfig cfg;
    cfg.host_threads = 1;
    backend = make_backend("cpu", cfg);
  }
  EngineReport run(const Seed256& s_init, const Bytes& digest,
                   hash::HashAlgo algo, const SearchOptions& opts) {
    return backend->search(s_init, ByteSpan(digest), algo, opts, nullptr);
  }
};

void expect_equivalent(const EngineReport& solo, const EngineReport& fused,
                       const char* what) {
  EXPECT_EQ(solo.result.found, fused.result.found) << what;
  EXPECT_EQ(solo.result.seeds_hashed, fused.result.seeds_hashed) << what;
  EXPECT_EQ(solo.result.timed_out, fused.result.timed_out) << what;
  if (solo.result.found) {
    EXPECT_EQ(solo.result.seed, fused.result.seed) << what;
    EXPECT_EQ(solo.result.distance, fused.result.distance) << what;
    EXPECT_EQ(solo.result.canonical_rank, fused.result.canonical_rank) << what;
  }
}

SearchOptions reliability_opts(
    std::shared_ptr<const comb::ReliabilityOrder> order) {
  SearchOptions opts;
  opts.max_distance = 2;
  opts.early_exit = true;
  opts.timeout_s = 600.0;
  opts.num_threads = 1;
  opts.order = SearchOrder::kReliability;
  opts.reliability = std::move(order);
  return opts;
}

TEST(OrderedFusion, SoloAndFusedAgreeOnPlantedMatches) {
  SoloBaseline solo;
  FusionEngine engine;
  const auto order = order_with_likely_bits({7, 42, 130, 222});
  const SearchOptions opts = reliability_opts(order);
  const hash::HashAlgo algos[] = {hash::HashAlgo::kSha1,
                                  hash::HashAlgo::kSha3_256};
  const Seed256 flips[] = {Seed256{}, with_flipped_bit(Seed256{}, 42),
                           with_flipped_bit(with_flipped_bit(Seed256{}, 7),
                                            222)};
  for (hash::HashAlgo algo : algos) {
    for (int d = 0; d <= 2; ++d) {
      const Seed256 s_init = random_seed(0x0F0 + static_cast<u64>(d));
      const Seed256 planted = s_init ^ flips[d];
      const Bytes digest = digest_of(planted, algo);
      const EngineReport want = solo.run(s_init, digest, algo, opts);
      ASSERT_TRUE(want.result.found);
      ASSERT_EQ(want.result.distance, d);
      auto fused =
          engine.try_search(s_init, ByteSpan(digest), algo, opts, nullptr);
      ASSERT_TRUE(fused.has_value());
      expect_equivalent(want, *fused, "ordered planted match");
    }
  }
}

TEST(OrderedFusion, SoloAndFusedAgreeOnMiss) {
  SoloBaseline solo;
  FusionEngine engine;
  const SearchOptions opts =
      reliability_opts(order_with_likely_bits({1, 2, 3}));
  const Seed256 s_init = random_seed(0x0F5);
  const Bytes digest =
      digest_of(s_init ^ mask_of_weight(8, 0xFEED), hash::HashAlgo::kSha3_256);
  const EngineReport want =
      solo.run(s_init, digest, hash::HashAlgo::kSha3_256, opts);
  ASSERT_FALSE(want.result.found);
  ASSERT_EQ(want.result.seeds_hashed, kBallD2);
  auto fused = engine.try_search(s_init, ByteSpan(digest),
                                 hash::HashAlgo::kSha3_256, opts, nullptr);
  ASSERT_TRUE(fused.has_value());
  expect_equivalent(want, *fused, "ordered miss");
}

TEST(OrderedFusion, ConcurrentMixedOrdersMatchSoloExactly) {
  // Canonical and reliability-ordered sessions sharing one engine (and thus
  // the same batches) must each retire with their own solo-exact accounting.
  constexpr int kSessions = 12;
  SoloBaseline solo;
  FusionEngine engine;
  const auto order = order_with_likely_bits({11, 99, 180});

  struct Case {
    Seed256 s_init;
    Bytes digest;
    hash::HashAlgo algo;
    SearchOptions opts;
    EngineReport want;
  };
  std::vector<Case> cases;
  for (int i = 0; i < kSessions; ++i) {
    Case c;
    c.s_init = random_seed(0x313A + static_cast<u64>(i));
    c.algo = (i % 3 == 0) ? hash::HashAlgo::kSha1 : hash::HashAlgo::kSha3_256;
    c.opts = (i % 2 == 0) ? reliability_opts(order)
                          : SearchOptions{};
    if (i % 2 != 0) {
      c.opts.max_distance = 2;
      c.opts.timeout_s = 600.0;
      c.opts.num_threads = 1;
    }
    const int kind = i % 4;  // 0..2: planted at d=kind; 3: miss
    const int weight = kind <= 2 ? kind : 9;
    c.digest = digest_of(
        c.s_init ^ mask_of_weight(weight, 0xDA7A + static_cast<u64>(i)),
        c.algo);
    c.want = solo.run(c.s_init, c.digest, c.algo, c.opts);
    cases.push_back(std::move(c));
  }

  std::vector<std::optional<EngineReport>> fused(kSessions);
  std::vector<std::thread> drivers;
  for (int i = 0; i < kSessions; ++i) {
    drivers.emplace_back([&, i] {
      const Case& c = cases[static_cast<unsigned>(i)];
      fused[static_cast<unsigned>(i)] = engine.try_search(
          c.s_init, ByteSpan(c.digest), c.algo, c.opts, nullptr);
    });
  }
  for (auto& t : drivers) t.join();

  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(fused[static_cast<unsigned>(i)].has_value()) << "session " << i;
    expect_equivalent(cases[static_cast<unsigned>(i)].want,
                      *fused[static_cast<unsigned>(i)], "mixed orders");
  }
  EXPECT_EQ(engine.stats().fused_sessions, static_cast<u64>(kSessions));
}

// ---------------------------------------------------------------------------
// Enrollment: single-pass calibration + profile persistence
// ---------------------------------------------------------------------------

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x42;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

TEST(ReliabilityProfile, SinglePassMatchesLegacyMaskAndRngStream) {
  // calibrate_cell_stats must consume the EXACT read stream TapkiMask::
  // calibrate consumed — enrolling with profiles cannot change the masks or
  // shift the RNG for anything enrolled after this device.
  const puf::SramPufModel device(device_params(), 901);
  Xoshiro256 rng_legacy(0x5eed);
  Xoshiro256 rng_joint(0x5eed);
  const puf::TapkiMask legacy =
      puf::TapkiMask::calibrate(device, 0, 100, 0.05, rng_legacy);
  const puf::Calibration cal =
      puf::calibrate_cell_stats(device, 0, 100, 0.05, rng_joint);
  EXPECT_EQ(legacy.stable_bits(), cal.mask.stable_bits());
  EXPECT_EQ(rng_legacy.next(), rng_joint.next());  // same stream position
}

TEST(ReliabilityProfile, WeightsEncodeQuantizedLogOdds) {
  std::array<int, 256> flips{};
  flips[5] = 25;   // erratic-looking cell
  flips[17] = 3;   // mildly noisy cell
  Seed256 stable = Seed256::ones();
  stable.clear_bit(9);  // TAPKI-masked
  const auto profile =
      puf::ReliabilityProfile::from_flip_counts(flips, 100, stable);
  // round(16 * ln((1-p)/p)) with p = (flips + 0.5) / 101:
  EXPECT_EQ(profile.weight(0), 85);   // never flipped
  EXPECT_EQ(profile.weight(5), 17);   // 25/100 flips
  EXPECT_EQ(profile.weight(17), 53);  // 3/100 flips
  EXPECT_EQ(profile.weight(9), puf::ReliabilityProfile::kPinnedWeight);
  // Lower weight == likelier to flip: the ordering the enumerator consumes.
  EXPECT_LT(profile.weight(5), profile.weight(17));
  EXPECT_LT(profile.weight(17), profile.weight(0));
}

TEST(ReliabilityProfile, DatabaseRoundtripPreservesProfiles) {
  EnrollmentDatabase db(master_key());
  const puf::SramPufModel device(device_params(), 902);
  Xoshiro256 enroll_rng(0xAB);
  db.enroll(902, device, 100, 0.05, enroll_rng);

  const EnrollmentRecord record = db.load(902);
  ASSERT_EQ(record.profiles.size(), device.num_addresses());

  Xoshiro256 replay_rng(0xAB);
  for (u32 a = 0; a < device.num_addresses(); ++a) {
    const puf::Calibration cal =
        puf::calibrate_cell_stats(device, a, 100, 0.05, replay_rng);
    EXPECT_EQ(record.profiles[a], cal.profile) << "address " << a;
    EXPECT_EQ(record.masks[a].stable_bits(), cal.mask.stable_bits());
    // Every TAPKI-masked bit must be pinned in the stored profile.
    for (int b = 0; b < 256; ++b) {
      if (!record.masks[a].stable_bits().bit(b))
        ASSERT_EQ(record.profiles[a].weight(b),
                  puf::ReliabilityProfile::kPinnedWeight);
    }
  }
}

TEST(ReliabilityProfile, ProfileIsEncryptedAtRest) {
  EnrollmentDatabase db(master_key());
  const puf::SramPufModel device(device_params(), 903);
  Xoshiro256 enroll_rng(0xCD);
  db.enroll(903, device, 100, 0.05, enroll_rng);

  const Bytes blob = db.ciphertext(903);
  const EnrollmentRecord record = db.load(903);
  const std::size_t n = device.num_addresses();
  const std::size_t legacy_size = 4 + n * 64;
  ASSERT_EQ(blob.size(), legacy_size + n * 256);
  // The appended ciphertext suffix must not equal the plaintext weights.
  const auto& w0 = record.profiles[0].weights();
  EXPECT_NE(0, std::memcmp(blob.data() + legacy_size, w0.data(), w0.size()));
}

TEST(ReliabilityProfile, LegacyRecordLoadsWithoutProfiles) {
  // A pre-profile blob is byte-identical to the new blob truncated at the
  // legacy length (CTR keystream prefix property). Loading one must yield
  // the same image and masks with profiles empty — and a reliability-ordered
  // CA must fall back to canonical and still authenticate.
  EnrollmentDatabase db(master_key());
  const puf::SramPufModel device(device_params(), 904);
  Xoshiro256 enroll_rng(0xEF);
  db.enroll(904, device, 100, 0.05, enroll_rng);
  const EnrollmentRecord full = db.load(904);
  Bytes blob = db.ciphertext(904);
  blob.resize(4 + static_cast<std::size_t>(device.num_addresses()) * 64);

  // Write a v01 database file holding only the truncated (legacy) blob.
  const std::string path = "ordered_legacy_db.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("RBCDBv01", 8);
    const u64 count = 1, id = 904, len = blob.size();
    out.write(reinterpret_cast<const char*>(&count), 8);
    out.write(reinterpret_cast<const char*>(&id), 8);
    out.write(reinterpret_cast<const char*>(&len), 8);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }
  EnrollmentDatabase legacy_db =
      EnrollmentDatabase::load_from_file(path, master_key());
  std::remove(path.c_str());

  const EnrollmentRecord legacy = legacy_db.load(904);
  EXPECT_TRUE(legacy.profiles.empty());
  ASSERT_EQ(legacy.masks.size(), full.masks.size());
  for (u32 a = 0; a < device.num_addresses(); ++a) {
    EXPECT_EQ(legacy.image.word(a), full.image.word(a));
    EXPECT_EQ(legacy.masks[a].stable_bits(), full.masks[a].stable_bits());
  }

  // Fallback: reliability order requested, no profile available.
  RegistrationAuthority ra;
  CaConfig ca_cfg;
  ca_cfg.max_distance = 2;
  ca_cfg.time_threshold_s = 600.0;
  ca_cfg.search_order = SearchOrder::kReliability;
  EngineConfig engine_cfg;
  engine_cfg.host_threads = 1;
  CertificateAuthority ca(ca_cfg, std::move(legacy_db),
                          make_backend("cpu", engine_cfg), &ra);
  ClientConfig client_cfg;
  client_cfg.device_id = 904;
  client_cfg.injected_distance = 1;
  Client client(client_cfg, &device, 0x904C);
  const auto session = run_authentication(client, ca, ra);
  EXPECT_TRUE(session.result.authenticated);
}

// ---------------------------------------------------------------------------
// End-to-end: reliability-ordered serving
// ---------------------------------------------------------------------------

TEST(OrderedServer, ReliabilityOrderedBurstAuthenticatesAndRanks) {
  constexpr int kSessions = 8;
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  RegistrationAuthority ra;
  EnrollmentDatabase db(master_key());
  for (int i = 0; i < kSessions; ++i) {
    const u64 id = 7700 + static_cast<u64>(i);
    devices.push_back(std::make_unique<puf::SramPufModel>(device_params(), id));
    Xoshiro256 enroll_rng(id ^ 0xE27011);
    db.enroll(id, *devices.back(), 100, 0.05, enroll_rng);
  }
  CaConfig ca_cfg;
  ca_cfg.max_distance = 2;
  ca_cfg.time_threshold_s = 600.0;
  EngineConfig engine_cfg;
  engine_cfg.host_threads = 1;
  CertificateAuthority ca(ca_cfg, std::move(db),
                          make_backend("cpu", engine_cfg), &ra);

  server::ServerConfig cfg;
  cfg.max_queue_depth = kSessions;
  cfg.max_in_flight = kSessions;
  cfg.session_budget_s = 600.0;
  cfg.fusion_enabled = true;  // ordered streams must ride the fused path too
  cfg.search_order = SearchOrder::kReliability;
  server::AuthServer server(cfg, &ca, &ra);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<server::SessionOutcome>> futures;
  for (int i = 0; i < kSessions; ++i) {
    ClientConfig ccfg;
    ccfg.device_id = 7700 + static_cast<u64>(i);
    ccfg.injected_distance = 2;
    clients.push_back(std::make_unique<Client>(
        ccfg, devices[static_cast<unsigned>(i)].get(), ccfg.device_id ^ 0xF0));
    futures.push_back(server.submit(clients.back().get()));
  }
  for (int i = 0; i < kSessions; ++i) {
    const server::SessionOutcome outcome =
        futures[static_cast<unsigned>(i)].get();
    ASSERT_TRUE(outcome.accepted) << "session " << i;
    EXPECT_TRUE(outcome.authenticated) << "session " << i;
    const auto registered = ra.lookup(outcome.device_id);
    ASSERT_TRUE(registered.has_value());
    EXPECT_EQ(*registered, clients[static_cast<unsigned>(i)]->derive_public_key(
                               ca.config().salt));
  }

  const server::ServerStats stats = server.stats();
  EXPECT_EQ(stats.authenticated, static_cast<u64>(kSessions));
  EXPECT_EQ(stats.ranked_sessions, static_cast<u64>(kSessions));
  EXPECT_GT(stats.mean_hit_rank, 0.0);
  EXPECT_GT(stats.mean_canonical_rank, 0.0);
}

// ---------------------------------------------------------------------------
// ShellMaskCache LRU bound
// ---------------------------------------------------------------------------

TEST(ShellCacheLru, EvictsLeastRecentlyUsedAndCounts) {
  // The cache is process-global: use odd n_bits no other suite touches and
  // count by deltas. C(41,2) = 820 and C(43,2) = 903 never fit a 1000-mask
  // cap together.
  const auto before = ShellMaskCache::stats();
  ShellMaskCache::set_capacity(1000);

  auto t41 = ShellMaskCache::get(sim::IterAlgo::kGosper, 2, 41);
  EXPECT_EQ(t41->size(), 820u);
  auto t43 = ShellMaskCache::get(sim::IterAlgo::kGosper, 2, 43);
  EXPECT_EQ(t43->size(), 903u);  // inserting this must evict the 41 table

  auto after_build = ShellMaskCache::stats();
  EXPECT_EQ(after_build.misses, before.misses + 2);
  EXPECT_GE(after_build.evictions, before.evictions + 1);

  // The survivor hits; the evicted table rebuilds (a fresh miss).
  auto t43_again = ShellMaskCache::get(sim::IterAlgo::kGosper, 2, 43);
  auto after_hit = ShellMaskCache::stats();
  EXPECT_EQ(after_hit.hits, after_build.hits + 1);
  auto t41_again = ShellMaskCache::get(sim::IterAlgo::kGosper, 2, 41);
  auto after_rebuild = ShellMaskCache::stats();
  EXPECT_EQ(after_rebuild.misses, after_hit.misses + 1);

  // Evicted-but-referenced tables stay alive through their shared_ptr.
  EXPECT_EQ(t41->size(), 820u);
  EXPECT_EQ((*t41)[0], (*t41_again)[0]);

  ShellMaskCache::set_capacity(ShellMaskCache::kDefaultCapacityMasks);
}

TEST(ShellCacheLru, StatsTrackRetainedMasks) {
  ShellMaskCache::set_capacity(ShellMaskCache::kDefaultCapacityMasks);
  auto t = ShellMaskCache::get(sim::IterAlgo::kGosper, 2, 37);  // C(37,2)=666
  const auto stats = ShellMaskCache::stats();
  EXPECT_GE(stats.cached_masks, 666u);
  EXPECT_GE(stats.cached_tables, 1u);
  EXPECT_LE(stats.cached_masks, ShellMaskCache::kDefaultCapacityMasks +
                                    ShellMaskCache::kMaxTableMasks);
}

}  // namespace
}  // namespace rbc
