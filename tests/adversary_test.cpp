#include <gtest/gtest.h>

#include "rbc/adversary.hpp"
#include "sim/autotune.hpp"

namespace rbc {
namespace {

TEST(BreakEstimate, FullSpaceIsAstronomicallyExpensive) {
  // Even at the paper's best throughput (GPU SHA-1: ~5.8e9 h/s) the expected
  // attack time dwarfs the age of the universe (~1.4e10 years).
  const auto e = estimate_break_cost(5.8e9);
  EXPECT_GT(e.expected_years, 1e50L);
}

TEST(BreakEstimate, HalvesWithEachBitRemoved) {
  const auto a = estimate_break_cost(1e9, 60);
  const auto b = estimate_break_cost(1e9, 61);
  EXPECT_NEAR(static_cast<double>(b.expected_tries / a.expected_tries), 2.0,
              1e-9);
}

TEST(BreakEstimate, ScalesInverselyWithThroughput) {
  const auto slow = estimate_break_cost(1e6, 80);
  const auto fast = estimate_break_cost(1e9, 80);
  EXPECT_NEAR(static_cast<double>(slow.expected_seconds /
                                  fast.expected_seconds),
              1000.0, 1e-6);
}

TEST(BreakEstimate, Validation) {
  EXPECT_THROW(estimate_break_cost(0.0), CheckFailure);
  EXPECT_THROW(estimate_break_cost(1.0, 0), CheckFailure);
  EXPECT_THROW(estimate_break_cost(1.0, 257), CheckFailure);
}

TEST(AsymmetryRatio, MatchesSection22) {
  // Server searches u(5) ~ 9.0e9; opponent expects 2^255 ~ 5.8e76. The
  // asymmetry is what makes RBC viable (Eq. 1 vs Eq. 2).
  const long double ratio = asymmetry_ratio(5);
  EXPECT_GT(ratio, 1e66L);
  // Larger d shrinks the ratio (server works harder, attacker unchanged).
  EXPECT_GT(asymmetry_ratio(3), asymmetry_ratio(5));
}

TEST(ToyBruteForce, RecoversPlantedSeed) {
  Xoshiro256 rng(1);
  const hash::Sha3SeedHash hash;
  const Seed256 secret{0x2a5, 0, 0, 0};  // within 12 bits
  const auto result =
      brute_force_toy_space<hash::Sha3SeedHash>(hash(secret), 12, rng);
  EXPECT_TRUE(result.broken);
  EXPECT_EQ(result.recovered, secret);
  EXPECT_LE(result.tries, 1ULL << 12);
}

TEST(ToyBruteForce, UnbreakableWhenTargetOutsideSpace) {
  Xoshiro256 rng(2);
  const hash::Sha1SeedHash hash;
  Seed256 outside;
  outside.set_bit(200);  // not representable in a 10-bit toy space
  const auto result =
      brute_force_toy_space<hash::Sha1SeedHash>(hash(outside), 10, rng);
  EXPECT_FALSE(result.broken);
  EXPECT_EQ(result.tries, 1ULL << 10);
}

TEST(ToyBruteForce, ExpectedTriesIsHalfTheSpace) {
  // Empirical check of the E[tries] = 2^(w-1) assumption that
  // estimate_break_cost extrapolates to 256 bits.
  Xoshiro256 rng(3);
  const hash::Sha1SeedHash hash;
  const int width = 10;
  const u64 space = 1ULL << width;
  double total_tries = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const Seed256 secret{rng.next_below(space), 0, 0, 0};
    const auto result =
        brute_force_toy_space<hash::Sha1SeedHash>(hash(secret), width, rng);
    ASSERT_TRUE(result.broken);
    total_tries += static_cast<double>(result.tries);
  }
  // mean of uniform[1, 1024] is 512.5; sigma/sqrt(300) ~ 17.
  EXPECT_NEAR(total_tries / trials, 512.5, 60.0);
}

TEST(Autotune, BestSitsInTheFlatRegionWithPaperChoiceNearby) {
  sim::GpuModel gpu;
  const auto tuned = sim::autotune_gpu(gpu, 5, hash::HashAlgo::kSha3_256);
  EXPECT_EQ(tuned.grid.size(), 72u);
  EXPECT_GT(tuned.near_optimal_count, 5);
  // The paper's (100, 128) must be near-optimal.
  for (const auto& p : tuned.grid) {
    if (p.seeds_per_thread == 100 && p.threads_per_block == 128) {
      EXPECT_LE(p.time_s, tuned.best.time_s * 1.05);
    }
  }
  EXPECT_GT(tuned.best.time_s, 0.0);
}

TEST(Autotune, AdaptsToWorkloadSize) {
  sim::GpuModel gpu;
  // A small d = 2 ball (33k seeds) cannot keep 9e7 threads busy; the tuner
  // must pick far fewer seeds per thread than for d = 5.
  const auto small = sim::autotune_gpu(gpu, 2, hash::HashAlgo::kSha3_256);
  const auto large = sim::autotune_gpu(gpu, 5, hash::HashAlgo::kSha3_256);
  EXPECT_LE(small.best.seeds_per_thread, large.best.seeds_per_thread);
  EXPECT_LT(small.best.time_s, large.best.time_s);
}

}  // namespace
}  // namespace rbc
