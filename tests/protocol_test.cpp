// End-to-end integration tests of the Fig. 1 protocol: client + CA + RA over
// a simulated channel, on every backend, with TAPKI, noise injection,
// timeouts, and failure injection.
#include <gtest/gtest.h>

#include "rbc/protocol.hpp"
#include "rbc/trial.hpp"

namespace rbc {
namespace {

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x42;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

struct Fixture {
  puf::SramPufModel device;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;
  std::unique_ptr<Client> client;

  // Default timeout well above T so sanitizer-slowed builds don't trip it;
  // the timeout behaviour itself is tested with an explicit 0-second budget.
  Fixture(u64 device_id, int injected_distance, int max_distance,
          const char* backend_name = "cpu",
          hash::HashAlgo hash = hash::HashAlgo::kSha3_256,
          crypto::KeygenAlgo keygen = crypto::KeygenAlgo::kAes128,
          bool tapki = true, double timeout_s = 600.0)
      : device(device_params(), device_id) {
    EnrollmentDatabase db(master_key());
    Xoshiro256 enroll_rng(device_id ^ 0xE27011);
    db.enroll(device_id, device, 100, 0.05, enroll_rng);

    CaConfig ca_cfg;
    ca_cfg.max_distance = max_distance;
    ca_cfg.tapki_enabled = tapki;
    ca_cfg.time_threshold_s = timeout_s;

    EngineConfig engine_cfg;
    engine_cfg.host_threads = 2;
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend(backend_name, engine_cfg), &ra);

    ClientConfig client_cfg;
    client_cfg.device_id = device_id;
    client_cfg.hash_algo = hash;
    client_cfg.keygen_algo = keygen;
    client_cfg.injected_distance = injected_distance;
    client = std::make_unique<Client>(client_cfg, &device, device_id ^ 0xC11e);
  }
};

TEST(Protocol, AuthenticatesCleanClient) {
  Fixture f(1, /*injected_distance=*/0, /*max_distance=*/2);
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  EXPECT_TRUE(session.result.authenticated);
  EXPECT_EQ(session.result.found_distance, 0);
  EXPECT_FALSE(session.result.timed_out);
}

class ProtocolAtDistance : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolAtDistance, AuthenticatesAtInjectedDistance) {
  const int d = GetParam();
  Fixture f(10 + static_cast<u64>(d), d, /*max_distance=*/3);
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  EXPECT_TRUE(session.result.authenticated);
  EXPECT_EQ(session.result.found_distance, d);
}

INSTANTIATE_TEST_SUITE_P(Distances, ProtocolAtDistance,
                         ::testing::Values(0, 1, 2, 3));

class ProtocolBackends : public ::testing::TestWithParam<const char*> {};

TEST_P(ProtocolBackends, FullSessionOnEveryDevice) {
  Fixture f(20, /*injected_distance=*/2, /*max_distance=*/2, GetParam());
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  EXPECT_TRUE(session.result.authenticated);
  EXPECT_EQ(session.result.found_distance, 2);
  EXPECT_GT(session.engine.modeled_device_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Devices, ProtocolBackends,
                         ::testing::Values("cpu", "gpu", "apu"));

TEST(Protocol, Sha1SessionWorks) {
  Fixture f(30, 1, 2, "cpu", hash::HashAlgo::kSha1);
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  EXPECT_TRUE(session.result.authenticated);
}

TEST(Protocol, KeyAgreement) {
  // Fig. 1 steps 7-8: after authentication the RA holds keygen(salt(seed)),
  // and the client derives the same key from its own seed.
  for (auto keygen : {crypto::KeygenAlgo::kAes128,
                      crypto::KeygenAlgo::kSaberLike,
                      crypto::KeygenAlgo::kDilithiumLike}) {
    Fixture f(40 + static_cast<u64>(keygen), 1, 2, "cpu",
              hash::HashAlgo::kSha3_256, keygen);
    const auto session = run_authentication(*f.client, *f.ca, f.ra);
    ASSERT_TRUE(session.result.authenticated);
    ASSERT_FALSE(session.registered_public_key.empty());
    EXPECT_EQ(session.registered_public_key,
              f.client->derive_public_key(f.ca->config().salt))
        << "client and CA disagree on the session key for "
        << crypto::to_string(keygen);
  }
}

TEST(Protocol, RejectsWhenNoiseExceedsSearchBudget) {
  // Client injects distance 3 but the CA only searches to 2.
  Fixture f(50, 3, 2);
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  EXPECT_FALSE(session.result.authenticated);
  EXPECT_EQ(session.result.found_distance, -1);
  EXPECT_FALSE(f.ra.lookup(50).has_value())
      << "RA must not register failed auths";
}

TEST(Protocol, TimeoutProducesTimedOutResult) {
  Fixture f(60, 3, 3, "cpu", hash::HashAlgo::kSha3_256,
            crypto::KeygenAlgo::kAes128, true, /*timeout_s=*/0.0);
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  EXPECT_FALSE(session.result.authenticated);
  EXPECT_TRUE(session.result.timed_out);
}

TEST(Protocol, CommBudgetMatchesTable5) {
  Fixture f(70, 1, 2);
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  // 4 messages x 0.15 s + 0.30 s PUF read = 0.90 s.
  EXPECT_NEAR(session.comm_time_s, 0.90, 1e-9);
  EXPECT_NEAR(session.total_time_s,
              0.90 + session.result.search_seconds, 1e-9);
}

TEST(Protocol, TapkiMasksErraticDevice) {
  // A device with many erratic cells: with TAPKI the masked stream stays
  // within the injected distance; without TAPKI raw noise regularly exceeds
  // the search budget.
  puf::SramPufModel::Params noisy = device_params();
  noisy.erratic_cell_fraction = 0.15;
  noisy.erratic_flip_probability = 0.4;

  int tapki_ok = 0, raw_ok = 0;
  const int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    for (bool tapki : {true, false}) {
      puf::SramPufModel device(noisy, 80);
      EnrollmentDatabase db(master_key());
      Xoshiro256 rng(900 + static_cast<u64>(t));
      db.enroll(80, device, 150, 0.05, rng);
      RegistrationAuthority ra;
      CaConfig cfg;
      cfg.max_distance = 2;
      cfg.tapki_enabled = tapki;
      EngineConfig ecfg;
      ecfg.host_threads = 2;
      CertificateAuthority ca(cfg, std::move(db), make_backend("cpu", ecfg),
                              &ra);
      ClientConfig ccfg;
      ccfg.device_id = 80;
      ccfg.injected_distance = -1;  // submit raw masked reading
      Client client(ccfg, &device, 1000 + static_cast<u64>(t));
      const auto session = run_authentication(client, ca, ra);
      (tapki ? tapki_ok : raw_ok) += session.result.authenticated;
    }
  }
  EXPECT_GT(tapki_ok, raw_ok) << "TAPKI should rescue the erratic device";
  EXPECT_GE(tapki_ok, 8);
}

TEST(Protocol, UnenrolledDeviceRejected) {
  Fixture f(90, 1, 2);
  ClientConfig rogue_cfg;
  rogue_cfg.device_id = 9999;  // never enrolled
  Client rogue(rogue_cfg, &f.device, 123);
  EXPECT_THROW(run_authentication(rogue, *f.ca, f.ra), CheckFailure);
}

TEST(Protocol, RepeatedSessionsRotateChallenges) {
  Fixture f(100, 1, 2);
  net::HandshakeRequest handshake;
  handshake.device_id = 100;
  std::set<u32> addresses;
  for (int i = 0; i < 20; ++i)
    addresses.insert(f.ca->issue_challenge(handshake).puf_address);
  EXPECT_GT(addresses.size(), 1u) << "challenges must vary across sessions";
}

TEST(Protocol, MismatchedSaltBreaksKeyAgreement) {
  // Client and CA must share the SaltPolicy (Fig. 1 step 7): a client
  // deriving with a different salt gets a different key than the RA holds —
  // authentication still succeeds (the search is salt-independent) but the
  // session key would be useless, which is how a misconfiguration surfaces.
  Fixture f(170, 1, 2);
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  ASSERT_TRUE(session.result.authenticated);
  const crypto::SaltPolicy wrong_salt(13);
  ASSERT_FALSE(f.ca->config().salt == wrong_salt);
  EXPECT_NE(session.registered_public_key,
            f.client->derive_public_key(wrong_salt));
  EXPECT_EQ(session.registered_public_key,
            f.client->derive_public_key(f.ca->config().salt));
}

TEST(Protocol, MultiGpuBackendServesTheProtocol) {
  puf::SramPufModel device(device_params(), 180);
  EnrollmentDatabase db(master_key());
  Xoshiro256 rng(181);
  db.enroll(180, device, 100, 0.05, rng);
  RegistrationAuthority ra;
  CaConfig cfg;
  cfg.max_distance = 2;
  EngineConfig ecfg;
  ecfg.host_threads = 2;
  ecfg.num_devices = 3;
  CertificateAuthority ca(cfg, std::move(db), make_backend("gpu", ecfg), &ra);
  ClientConfig ccfg;
  ccfg.device_id = 180;
  ccfg.injected_distance = 2;
  Client client(ccfg, &device, 182);
  const auto session = run_authentication(client, ca, ra);
  EXPECT_TRUE(session.result.authenticated);
  EXPECT_EQ(session.engine.device_name, "3x NVIDIA A100");
}

TEST(Protocol, CaDirectedNoiseInjection) {
  // §5 extension end-to-end: the CA requests noise up to its budget in the
  // Challenge; a kFollowChallenge client injects exactly that much, and the
  // search finds the seed at the requested distance.
  Fixture f(150, ClientConfig::kFollowChallenge, /*max_distance=*/2);
  // Re-point the CA config: request noise injection.
  CaConfig cfg = f.ca->config();
  EXPECT_FALSE(cfg.request_noise_injection);  // default off

  // Build a fresh CA with the flag on (Fixture holds immutable config).
  EnrollmentDatabase db(crypto::Aes128::Key{0x42});
  Xoshiro256 rng(151);
  db.enroll(150, f.device, 100, 0.05, rng);
  RegistrationAuthority ra;
  CaConfig on;
  on.max_distance = 2;
  on.request_noise_injection = true;
  EngineConfig ecfg;
  ecfg.host_threads = 2;
  CertificateAuthority ca(on, std::move(db), make_backend("cpu", ecfg), &ra);

  const auto session = run_authentication(*f.client, ca, ra);
  EXPECT_TRUE(session.result.authenticated);
  EXPECT_EQ(session.result.found_distance, 2)
      << "client must inject exactly the CA-requested distance";
}

TEST(Protocol, FollowChallengeWithoutRequestSubmitsRawReading) {
  // kFollowChallenge + a CA that does not request noise: the client submits
  // its raw masked reading (usually distance 0-1 on a quiet device).
  Fixture f(160, ClientConfig::kFollowChallenge, 2);
  const auto session = run_authentication(*f.client, *f.ca, f.ra);
  EXPECT_TRUE(session.result.authenticated);
  EXPECT_LE(session.result.found_distance, 2);
}

TEST(Protocol, FullyDeterministicForFixedSeeds) {
  // Reproducibility guarantee: two independently constructed stacks with
  // identical RNG seeds must produce byte-identical sessions — the property
  // every trial-based result in EXPERIMENTS.md relies on.
  auto run_once = [] {
    Fixture f(130, 2, 2);
    return run_authentication(*f.client, *f.ca, f.ra);
  };
  const auto a = run_once();
  const auto b = run_once();
  // Wall-clock fields (search_seconds) and thread-interleaving-dependent
  // counters are excluded; the protocol-level outcome must be identical.
  EXPECT_EQ(a.result.authenticated, b.result.authenticated);
  EXPECT_EQ(a.result.found_distance, b.result.found_distance);
  EXPECT_EQ(a.result.timed_out, b.result.timed_out);
  EXPECT_EQ(a.registered_public_key, b.registered_public_key);
  EXPECT_EQ(a.engine.result.seed, b.engine.result.seed);
  EXPECT_DOUBLE_EQ(a.comm_time_s, b.comm_time_s);
}

TEST(TrialHarness, PercentilesAvailable) {
  Fixture f(140, 1, 2);
  const TrialStats stats = run_trials(*f.client, *f.ca, f.ra, 8);
  EXPECT_EQ(stats.host_search_samples.size(), 8u);
  EXPECT_LE(stats.host_search_percentile(0.5),
            stats.host_search_percentile(0.95));
  EXPECT_EQ(stats.modeled_device_stats.count(), 8u);
  EXPECT_GT(stats.modeled_device_stats.mean(), 0.0);
}

TEST(TrialHarness, AggregatesStatistics) {
  Fixture f(110, 2, 2);
  const TrialStats stats = run_trials(*f.client, *f.ca, f.ra, 12);
  EXPECT_EQ(stats.trials, 12);
  EXPECT_EQ(stats.authenticated, 12);
  EXPECT_DOUBLE_EQ(stats.auth_rate(), 1.0);
  EXPECT_EQ(stats.timed_out, 0);
  EXPECT_GT(stats.mean_seeds_hashed(), 1.0);
  EXPECT_GT(stats.mean_modeled_device_s(), 0.0);
  // All finds at the injected distance.
  EXPECT_EQ(stats.found_distance_histogram[2], 12);
}

TEST(TrialHarness, MixedOutcomesWhenBudgetTight) {
  // Injected distance exceeds the budget -> zero auth rate.
  Fixture f(120, 3, 2);
  const TrialStats stats = run_trials(*f.client, *f.ca, f.ra, 5);
  EXPECT_EQ(stats.authenticated, 0);
  EXPECT_DOUBLE_EQ(stats.auth_rate(), 0.0);
}

}  // namespace
}  // namespace rbc
