#include <gtest/gtest.h>

#include "puf/fuzzy_extractor.hpp"
#include "puf/puf.hpp"

namespace rbc::puf {
namespace {

TEST(FuzzyExtractor, NoiselessRecoveryIsExact) {
  Xoshiro256 rng(1);
  const Seed256 reference = Seed256::random(rng);
  for (int r : {1, 2, 4, 8, 16, 32}) {
    RepetitionFuzzyExtractor fe(r);
    const auto e = fe.enroll(reference, rng);
    const auto rec = fe.recover(reference, e.helper);
    EXPECT_EQ(rec.secret, e.secret) << "r=" << r;
    EXPECT_EQ(rec.corrected_groups, 0) << "r=" << r;
  }
}

TEST(FuzzyExtractor, RejectsBadRepetitionFactor) {
  EXPECT_THROW(RepetitionFuzzyExtractor(3), rbc::CheckFailure);
  EXPECT_THROW(RepetitionFuzzyExtractor(0), rbc::CheckFailure);
  EXPECT_NO_THROW(RepetitionFuzzyExtractor(64));
}

TEST(FuzzyExtractor, SecretSizeShrinksWithRedundancy) {
  EXPECT_EQ(RepetitionFuzzyExtractor(1).secret_bits(), 256);
  EXPECT_EQ(RepetitionFuzzyExtractor(8).secret_bits(), 32);
  EXPECT_EQ(RepetitionFuzzyExtractor(32).secret_bits(), 8);
}

TEST(FuzzyExtractor, CorrectsUpToHalfGroupErrors) {
  Xoshiro256 rng(2);
  const Seed256 reference = Seed256::random(rng);
  RepetitionFuzzyExtractor fe(8);  // corrects up to 3 flips per 8-bit group
  const auto e = fe.enroll(reference, rng);

  Seed256 noisy = reference;
  // Flip 3 bits inside group 0 and 2 bits inside group 5: both decodable.
  noisy.flip_bit(0);
  noisy.flip_bit(3);
  noisy.flip_bit(7);
  noisy.flip_bit(5 * 8 + 1);
  noisy.flip_bit(5 * 8 + 6);
  const auto rec = fe.recover(noisy, e.helper);
  EXPECT_EQ(rec.secret, e.secret);
  EXPECT_GE(rec.corrected_groups, 2);
}

TEST(FuzzyExtractor, FailsBeyondMajorityThreshold) {
  Xoshiro256 rng(3);
  const Seed256 reference = Seed256::random(rng);
  RepetitionFuzzyExtractor fe(4);
  const auto e = fe.enroll(reference, rng);

  Seed256 noisy = reference;
  // 3 of 4 bits flipped in group 0: the majority inverts -> wrong secret bit.
  noisy.flip_bit(0);
  noisy.flip_bit(1);
  noisy.flip_bit(2);
  const auto rec = fe.recover(noisy, e.helper);
  EXPECT_NE(rec.secret, e.secret);
  EXPECT_EQ(rec.secret ^ e.secret, Seed256::one());  // exactly bit 0 wrong
}

TEST(FuzzyExtractor, SuccessRateTracksNoiseAndRedundancy) {
  // Monte-Carlo over a real PUF model: higher repetition tolerates more
  // noise; r=1 fails almost always under any noise.
  SramPufModel::Params params;
  params.num_addresses = 1;
  params.erratic_cell_fraction = 0.0;
  params.stable_flip_probability = 0.03;
  const SramPufModel device(params, 77);
  Xoshiro256 rng(4);

  auto success_rate = [&](int r) {
    RepetitionFuzzyExtractor fe(r);
    const auto e = fe.enroll(device.enrolled_word(0), rng);
    int ok = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      const auto rec = fe.recover(device.read(0, rng), e.helper);
      ok += rec.secret == e.secret;
    }
    return static_cast<double>(ok) / trials;
  };

  const double r1 = success_rate(1);
  const double r8 = success_rate(8);
  const double r32 = success_rate(32);
  EXPECT_LT(r1, 0.1) << "no redundancy cannot survive ~7.7 flipped bits";
  EXPECT_GT(r32, r8 - 0.05);
  EXPECT_GT(r32, 0.9) << "32x repetition should almost always decode";
}

TEST(FuzzyExtractor, HelperDataDoesNotExposeSecretDirectly) {
  Xoshiro256 rng(5);
  const Seed256 reference = Seed256::random(rng);
  RepetitionFuzzyExtractor fe(8);
  const auto e = fe.enroll(reference, rng);
  // The helper alone (without the reading) decodes to garbage, not the
  // secret: recover() from the zero reading yields decode(helper), which
  // equals the secret only if the reference were all zeros.
  const auto rec = fe.recover(Seed256::zero(), e.helper);
  EXPECT_NE(rec.secret, e.secret);
}

TEST(FuzzyExtractor, ClientOpsAccounting) {
  EXPECT_EQ(RepetitionFuzzyExtractor(1).client_ops(), 256u + 256u);
  EXPECT_EQ(RepetitionFuzzyExtractor(8).client_ops(), 256u + 32u * 8u);
}

}  // namespace
}  // namespace rbc::puf
