// for_each_in_ball — the single-threaded Hamming-ball visitor used by
// reference checks and the quickstart path.
#include <gtest/gtest.h>

#include <set>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "combinatorics/shell.hpp"
#include "common/rng.hpp"

namespace rbc::comb {
namespace {

TEST(ForEachInBall, VisitsExactlyTheBall) {
  Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  ChaseFactory factory;
  std::set<std::string> seen;
  u64 count = 0;
  const u64 visited = for_each_in_ball(
      factory, base, 2,
      [&](const Seed256& candidate, int shell) {
        EXPECT_EQ(hamming_distance(candidate, base), shell);
        EXPECT_LE(shell, 2);
        EXPECT_TRUE(seen.insert(candidate.to_hex()).second);
        ++count;
        return true;
      });
  EXPECT_EQ(visited, 32897u);  // u(2)
  EXPECT_EQ(count, visited);
}

TEST(ForEachInBall, EarlyStopHonoured) {
  Xoshiro256 rng(2);
  const Seed256 base = Seed256::random(rng);
  GosperFactory factory;
  u64 count = 0;
  const u64 visited = for_each_in_ball(
      factory, base, 2,
      [&](const Seed256&, int) { return ++count < 100; });
  EXPECT_EQ(visited, 100u);
  EXPECT_EQ(count, 100u);
}

TEST(ForEachInBall, DistanceZeroVisitsOnlyBase) {
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  Algorithm515Factory factory;
  u64 count = 0;
  const u64 visited = for_each_in_ball(factory, base, 0,
                                       [&](const Seed256& candidate, int shell) {
                                         EXPECT_EQ(candidate, base);
                                         EXPECT_EQ(shell, 0);
                                         ++count;
                                         return true;
                                       });
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(count, 1u);
}

TEST(ForEachInBall, ShellOrderIsNonDecreasing) {
  Xoshiro256 rng(4);
  const Seed256 base = Seed256::random(rng);
  ChaseFactory factory;
  int last_shell = -1;
  for_each_in_ball(factory, base, 2, [&](const Seed256&, int shell) {
    EXPECT_GE(shell, last_shell);
    last_shell = shell;
    return true;
  });
  EXPECT_EQ(last_shell, 2);
}

TEST(ForEachInBall, SmallWidthSpaces) {
  // n_bits = 10: the ball of radius 3 has 1 + 10 + 45 + 120 = 176 members.
  GosperFactory factory(10);
  const u64 visited = for_each_in_ball(
      factory, Seed256::zero(), 3, [](const Seed256&, int) { return true; });
  EXPECT_EQ(visited, 176u);
}

}  // namespace
}  // namespace rbc::comb
