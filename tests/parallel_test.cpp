#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/early_exit.hpp"
#include "parallel/search_context.hpp"
#include "parallel/worker_group.hpp"

namespace rbc::par {
namespace {

TEST(EarlyExitToken, StartsUntriggered) {
  EarlyExitToken token;
  EXPECT_FALSE(token.triggered());
}

TEST(EarlyExitToken, TriggerAndReset) {
  EarlyExitToken token;
  token.trigger();
  EXPECT_TRUE(token.triggered());
  token.trigger();  // idempotent
  EXPECT_TRUE(token.triggered());
  token.reset();
  EXPECT_FALSE(token.triggered());
}

TEST(CheckThrottle, IntervalOneIsDueEveryCall) {
  CheckThrottle throttle(1);
  EXPECT_TRUE(throttle.due());
  EXPECT_TRUE(throttle.due());
}

TEST(CheckThrottle, IntervalNDelaysPollByAtMostN) {
  CheckThrottle throttle(8);
  // First call polls (countdown initialized to 1), then every 8th.
  EXPECT_TRUE(throttle.due());
  int calls_until_due = 0;
  while (!throttle.due()) {
    ++calls_until_due;
    ASSERT_LE(calls_until_due, 8);
  }
  EXPECT_EQ(calls_until_due, 7);
}

TEST(CheckThrottle, ZeroIntervalTreatedAsOne) {
  CheckThrottle throttle(0);
  EXPECT_TRUE(throttle.due());
  EXPECT_TRUE(throttle.due());
}

TEST(PartitionRange, ExactDivision) {
  for (int r = 0; r < 4; ++r) {
    const auto range = partition_range(100, 4, r);
    EXPECT_EQ(range.size(), 25u);
    EXPECT_EQ(range.begin, static_cast<u64>(25 * r));
  }
}

TEST(PartitionRange, RemainderSpreadEvenly) {
  // 10 items over 4 workers: sizes 3,3,2,2.
  std::vector<u64> sizes;
  u64 expected_begin = 0;
  for (int r = 0; r < 4; ++r) {
    const auto range = partition_range(10, 4, r);
    EXPECT_EQ(range.begin, expected_begin) << "worker " << r;
    sizes.push_back(range.size());
    expected_begin = range.end;
  }
  EXPECT_EQ(expected_begin, 10u);
  EXPECT_EQ(sizes, (std::vector<u64>{3, 3, 2, 2}));
}

TEST(PartitionRange, MoreWorkersThanItems) {
  u64 total = 0;
  for (int r = 0; r < 8; ++r) {
    const auto range = partition_range(3, 8, r);
    EXPECT_LE(range.size(), 1u);
    total += range.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(PartitionRange, EmptyTotal) {
  const auto range = partition_range(0, 4, 2);
  EXPECT_EQ(range.size(), 0u);
}

TEST(PartitionRange, InvalidWorkerRejected) {
  EXPECT_THROW(partition_range(10, 4, 4), rbc::CheckFailure);
  EXPECT_THROW(partition_range(10, 0, 0), rbc::CheckFailure);
}

TEST(WorkerGroup, RunsEachIndexExactlyOnce) {
  WorkerGroup group(4);
  std::vector<std::atomic<int>> hits(4);
  group.parallel_workers(4, [&](int id) { hits[static_cast<unsigned>(id)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerGroup, WidthMayExceedGroupSize) {
  // Sessions size their SPMD width independently of the shared group; units
  // beyond the thread count multiplex instead of failing.
  WorkerGroup group(2);
  std::vector<std::atomic<int>> hits(16);
  group.parallel_workers(16,
                         [&](int id) { hits[static_cast<unsigned>(id)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerGroup, ReusableAcrossRounds) {
  WorkerGroup group(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    group.parallel_workers(3, [&](int) { counter++; });
  }
  EXPECT_EQ(counter.load(), 150);
}

TEST(WorkerGroup, ParallelSumMatchesSerial) {
  WorkerGroup group(4);
  const u64 total = 100000;
  std::vector<u64> partial(4, 0);
  group.parallel_workers(4, [&](int id) {
    const auto range = partition_range(total, 4, id);
    u64 sum = 0;
    for (u64 i = range.begin; i < range.end; ++i) sum += i;
    partial[static_cast<unsigned>(id)] = sum;
  });
  const u64 sum = std::accumulate(partial.begin(), partial.end(), u64{0});
  EXPECT_EQ(sum, total * (total - 1) / 2);
}

TEST(WorkerGroup, PropagatesWorkerException) {
  WorkerGroup group(2);
  EXPECT_THROW(
      group.parallel_workers(2,
                             [](int id) {
                               if (id == 1)
                                 throw std::runtime_error("worker failure");
                             }),
      std::runtime_error);
  // Group must stay usable after an exception round.
  std::atomic<int> counter{0};
  group.parallel_workers(2, [&](int) { counter++; });
  EXPECT_EQ(counter.load(), 2);
}

TEST(WorkerGroup, ConcurrentRoundsMultiplex) {
  // The multi-session property: many threads open SPMD rounds against ONE
  // group at once; every round's every unit must still run exactly once.
  WorkerGroup group(4);
  constexpr int kSessions = 8;
  constexpr int kWidth = 6;
  std::atomic<int> units{0};
  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::atomic<int>> hits(kWidth);
        group.parallel_workers(kWidth, [&](int id) {
          hits[static_cast<unsigned>(id)]++;
          units++;
        });
        for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
      }
    });
  }
  for (auto& t : sessions) t.join();
  EXPECT_EQ(units.load(), kSessions * 20 * kWidth);
}

TEST(WorkerGroup, CallerHelpsWhenWorkersAreBusy) {
  // Saturate the only worker with a task parked on a latch; a round opened
  // meanwhile must still complete (the caller runs its own units).
  WorkerGroup group(1);
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  auto parked = group.submit([latch] { latch.wait(); });
  std::atomic<int> ran{0};
  group.parallel_workers(4, [&](int) { ran++; });
  EXPECT_EQ(ran.load(), 4);
  release.set_value();
  parked.get();
}

TEST(WorkerGroup, SubmitRunsTaskAndResolvesFuture) {
  WorkerGroup group(2);
  auto future = group.submit([] { return; });
  future.get();
  auto failing = group.submit([] { throw std::runtime_error("task failure"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(WorkerGroup, HighPriorityTaskOvertakesLowPriority) {
  // One worker, parked on a latch; enqueue low then high. On release the
  // worker must pop the high-priority task first.
  WorkerGroup group(1);
  std::promise<void> release;
  std::shared_future<void> latch = release.get_future().share();
  auto parked = group.submit([latch] { latch.wait(); });
  std::mutex order_mutex;
  std::vector<int> order;
  auto low = group.submit(
      [&] {
        std::lock_guard lock(order_mutex);
        order.push_back(2);
      },
      WorkerGroup::Priority::kLow);
  auto high = group.submit(
      [&] {
        std::lock_guard lock(order_mutex);
        order.push_back(1);
      },
      WorkerGroup::Priority::kHigh);
  release.set_value();
  parked.get();
  low.get();
  high.get();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(WorkerGroup, EarlyExitStopsAllUnits) {
  WorkerGroup group(4);
  EarlyExitToken token;
  std::atomic<u64> iterations{0};
  group.parallel_workers(4, [&](int id) {
    CheckThrottle throttle(4);
    for (u64 i = 0; i < 1000000; ++i) {
      if (throttle.due() && token.triggered()) return;
      iterations++;
      if (id == 0 && i == 100) token.trigger();
    }
  });
  // Units stop well before completing 4M combined iterations.
  EXPECT_LT(iterations.load(), 4000000u);
  EXPECT_TRUE(token.triggered());
}

TEST(WorkerGroup, SingleThreadGroupWorks) {
  WorkerGroup group(1);
  int value = 0;
  group.parallel_workers(1, [&](int id) {
    EXPECT_EQ(id, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(WorkerGroup, RejectsZeroThreads) {
  EXPECT_THROW(WorkerGroup(0), rbc::CheckFailure);
}

TEST(WorkerGroup, RejectsZeroWidthRound) {
  WorkerGroup group(1);
  EXPECT_THROW(group.parallel_workers(0, [](int) {}), rbc::CheckFailure);
}

TEST(WorkerGroup, DefaultThreadsIsPositive) {
  EXPECT_GE(WorkerGroup::default_threads(), 1);
}

TEST(WorkerGroup, SharedGroupIsProcessWide) {
  EXPECT_EQ(&WorkerGroup::shared(), &WorkerGroup::shared());
  EXPECT_EQ(WorkerGroup::shared().size(), WorkerGroup::default_threads());
}

TEST(SearchContext, NoDeadlineNeverExpires) {
  SearchContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.check_deadline());
  EXPECT_FALSE(ctx.cancel_requested());
  EXPECT_FALSE(ctx.timed_out());
}

TEST(SearchContext, BudgetExpiryLatchesTimeoutAndCancel) {
  SearchContext ctx = SearchContext::with_budget(0.0);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.check_deadline());
  EXPECT_TRUE(ctx.timed_out());
  EXPECT_TRUE(ctx.cancel_requested());
  EXPECT_EQ(ctx.remaining_s(), 0.0);
}

TEST(SearchContext, ExternalCancelIsNotATimeout) {
  SearchContext ctx = SearchContext::with_budget(1000.0);
  ctx.cancel();
  EXPECT_TRUE(ctx.cancel_requested());
  EXPECT_TRUE(ctx.check_deadline());  // cancellation short-circuits
  EXPECT_FALSE(ctx.timed_out());
}

TEST(SearchContext, ShouldStopPolicy) {
  SearchContext ctx;
  EXPECT_FALSE(ctx.should_stop(true));
  EXPECT_FALSE(ctx.should_stop(false));
  ctx.signal_match();
  // A match stops early-exit searches only ...
  EXPECT_TRUE(ctx.should_stop(true));
  EXPECT_FALSE(ctx.should_stop(false));
  // ... but cancellation stops both.
  ctx.cancel();
  EXPECT_TRUE(ctx.should_stop(false));
}

TEST(SearchContext, ProgressAggregates) {
  SearchContext ctx;
  ctx.add_progress(10);
  ctx.add_progress(32);
  EXPECT_EQ(ctx.progress(), 42u);
}

}  // namespace
}  // namespace rbc::par
