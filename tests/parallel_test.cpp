#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/early_exit.hpp"
#include "parallel/thread_pool.hpp"

namespace rbc::par {
namespace {

TEST(EarlyExitToken, StartsUntriggered) {
  EarlyExitToken token;
  EXPECT_FALSE(token.triggered());
}

TEST(EarlyExitToken, TriggerAndReset) {
  EarlyExitToken token;
  token.trigger();
  EXPECT_TRUE(token.triggered());
  token.trigger();  // idempotent
  EXPECT_TRUE(token.triggered());
  token.reset();
  EXPECT_FALSE(token.triggered());
}

TEST(CheckThrottle, IntervalOneChecksEveryCall) {
  EarlyExitToken token;
  CheckThrottle throttle(token, 1);
  EXPECT_FALSE(throttle.should_stop());
  token.trigger();
  EXPECT_TRUE(throttle.should_stop());
}

TEST(CheckThrottle, IntervalNDelaysDetectionByAtMostN) {
  EarlyExitToken token;
  CheckThrottle throttle(token, 8);
  // First call polls (countdown initialized to 1), then every 8th.
  EXPECT_FALSE(throttle.should_stop());
  token.trigger();
  int calls_until_stop = 0;
  while (!throttle.should_stop()) {
    ++calls_until_stop;
    ASSERT_LE(calls_until_stop, 8);
  }
  EXPECT_EQ(calls_until_stop, 7);
}

TEST(CheckThrottle, ZeroIntervalTreatedAsOne) {
  EarlyExitToken token;
  token.trigger();
  CheckThrottle throttle(token, 0);
  EXPECT_TRUE(throttle.should_stop());
}

TEST(PartitionRange, ExactDivision) {
  for (int r = 0; r < 4; ++r) {
    const auto range = partition_range(100, 4, r);
    EXPECT_EQ(range.size(), 25u);
    EXPECT_EQ(range.begin, static_cast<u64>(25 * r));
  }
}

TEST(PartitionRange, RemainderSpreadEvenly) {
  // 10 items over 4 workers: sizes 3,3,2,2.
  std::vector<u64> sizes;
  u64 expected_begin = 0;
  for (int r = 0; r < 4; ++r) {
    const auto range = partition_range(10, 4, r);
    EXPECT_EQ(range.begin, expected_begin) << "worker " << r;
    sizes.push_back(range.size());
    expected_begin = range.end;
  }
  EXPECT_EQ(expected_begin, 10u);
  EXPECT_EQ(sizes, (std::vector<u64>{3, 3, 2, 2}));
}

TEST(PartitionRange, MoreWorkersThanItems) {
  u64 total = 0;
  for (int r = 0; r < 8; ++r) {
    const auto range = partition_range(3, 8, r);
    EXPECT_LE(range.size(), 1u);
    total += range.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(PartitionRange, EmptyTotal) {
  const auto range = partition_range(0, 4, 2);
  EXPECT_EQ(range.size(), 0u);
}

TEST(PartitionRange, InvalidWorkerRejected) {
  EXPECT_THROW(partition_range(10, 4, 4), rbc::CheckFailure);
  EXPECT_THROW(partition_range(10, 0, 0), rbc::CheckFailure);
}

TEST(ThreadPool, RunsBodyOnEveryWorker) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.parallel_workers([&](int id) { hits[static_cast<unsigned>(id)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_workers([&](int) { counter++; });
  }
  EXPECT_EQ(counter.load(), 150);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const u64 total = 100000;
  std::vector<u64> partial(4, 0);
  pool.parallel_workers([&](int id) {
    const auto range = partition_range(total, 4, id);
    u64 sum = 0;
    for (u64 i = range.begin; i < range.end; ++i) sum += i;
    partial[static_cast<unsigned>(id)] = sum;
  });
  const u64 sum = std::accumulate(partial.begin(), partial.end(), u64{0});
  EXPECT_EQ(sum, total * (total - 1) / 2);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_workers([](int id) {
        if (id == 1) throw std::runtime_error("worker failure");
      }),
      std::runtime_error);
  // Pool must stay usable after an exception round.
  std::atomic<int> counter{0};
  pool.parallel_workers([&](int) { counter++; });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, EarlyExitStopsAllWorkers) {
  ThreadPool pool(4);
  EarlyExitToken token;
  std::atomic<u64> iterations{0};
  pool.parallel_workers([&](int id) {
    CheckThrottle throttle(token, 4);
    for (u64 i = 0; i < 1000000; ++i) {
      if (throttle.should_stop()) return;
      iterations++;
      if (id == 0 && i == 100) token.trigger();
    }
  });
  // Workers stop well before completing 4M combined iterations.
  EXPECT_LT(iterations.load(), 4000000u);
  EXPECT_TRUE(token.triggered());
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  int value = 0;
  pool.parallel_workers([&](int id) {
    EXPECT_EQ(id, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), rbc::CheckFailure);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
}

}  // namespace
}  // namespace rbc::par
