// Message-passing communicator and the distributed RBC search ([36] shape).
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "dist/dist_search.hpp"

namespace rbc::dist {
namespace {

TEST(Communicator, PointToPointDelivery) {
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, /*tag=*/7, Bytes{1, 2, 3});
    } else {
      const Packet p = ctx.recv(7);
      EXPECT_EQ(p.source, 0);
      EXPECT_EQ(p.payload, (Bytes{1, 2, 3}));
    }
  });
}

TEST(Communicator, TagsAreIndependentQueues) {
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, Bytes{0xa});
      ctx.send(1, 2, Bytes{0xb});
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      EXPECT_EQ(ctx.recv(2).payload, Bytes{0xb});
      EXPECT_EQ(ctx.recv(1).payload, Bytes{0xa});
    }
  });
}

TEST(Communicator, TryRecvDoesNotBlock) {
  Communicator comm(1);
  comm.run([](RankCtx& ctx) {
    Packet p;
    EXPECT_FALSE(ctx.try_recv(5, p));
    ctx.send(0, 5, Bytes{9});
    EXPECT_TRUE(ctx.try_recv(5, p));
    EXPECT_EQ(p.payload, Bytes{9});
  });
}

TEST(Communicator, BarrierSynchronizesAllRanks) {
  Communicator comm(4);
  std::atomic<int> before{0}, after{0};
  comm.run([&](RankCtx& ctx) {
    before++;
    ctx.barrier();
    // After the barrier every rank must observe all 4 arrivals.
    EXPECT_EQ(before.load(), 4);
    after++;
    ctx.barrier();
    EXPECT_EQ(after.load(), 4);
  });
}

TEST(Communicator, PropagatesRankExceptions) {
  Communicator comm(2);
  EXPECT_THROW(comm.run([](RankCtx& ctx) {
    ctx.barrier();  // both ranks proceed together...
    if (ctx.rank() == 1) throw std::runtime_error("rank 1 died");
  }),
               std::runtime_error);
}

TEST(Communicator, ValidatesConfiguration) {
  EXPECT_THROW(Communicator(0), CheckFailure);
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_THROW(ctx.send(5, 0, Bytes{}), CheckFailure);
    }
  });
}

// --- distributed search ----------------------------------------------------------

Seed256 flipped(Seed256 s, std::initializer_list<int> bits) {
  for (int b : bits) s.flip_bit(b);
  return s;
}

SearchOptions ball(int max_distance) {
  SearchOptions opts;
  opts.max_distance = max_distance;
  return opts;
}

class DistSearchRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistSearchRanks, FindsPlantedSeed) {
  const int ranks = GetParam();
  Communicator comm(ranks);
  Xoshiro256 rng(static_cast<u64>(ranks));
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flipped(base, {5, 190});
  const hash::Sha3SeedHash hash;
  const auto r = distributed_search<hash::Sha3SeedHash>(comm, base,
                                                        hash(truth), ball(2));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.seed, truth);
  EXPECT_EQ(r.distance, 2);
  EXPECT_GE(r.finder_rank, 0);
  EXPECT_LT(r.finder_rank, ranks);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistSearchRanks,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(DistSearch, DistanceZeroFoundByRankZero) {
  Communicator comm(4);
  Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  const auto r =
      distributed_search<hash::Sha1SeedHash>(comm, base, hash(base), ball(2));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 0);
  EXPECT_EQ(r.finder_rank, 0);
}

TEST(DistSearch, ExhaustsBallWhenAbsent) {
  Communicator comm(3);
  Xoshiro256 rng(2);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  const auto r = distributed_search<hash::Sha1SeedHash>(comm, base,
                                                        hash(unrelated),
                                                        ball(2));
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.seeds_hashed, 32897u);
}

TEST(DistSearch, EarlyStopSavesWorkOnLaterShells) {
  // Seed at d=1 with a d<=2 budget: the STOP broadcast must prevent shell 2
  // (32640 candidates) from being fully searched.
  Communicator comm(4);
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flipped(base, {128});
  const hash::Sha1SeedHash hash;
  const auto r =
      distributed_search<hash::Sha1SeedHash>(comm, base, hash(truth), ball(2));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 1);
  EXPECT_LT(r.seeds_hashed, 2000u);
}

TEST(DistSearch, CommunicatorIsReusableAcrossSearches) {
  Communicator comm(3);
  Xoshiro256 rng(4);
  const hash::Sha1SeedHash hash;
  for (int trial = 0; trial < 3; ++trial) {
    const Seed256 base = Seed256::random(rng);
    const Seed256 truth = flipped(base, {10 + trial});
    const auto r =
        distributed_search<hash::Sha1SeedHash>(comm, base, hash(truth),
                                               ball(1));
    EXPECT_TRUE(r.found) << "trial " << trial;
    EXPECT_EQ(r.seed, truth);
  }
}

TEST(DistSearch, ResultsIndependentOfCheckInterval) {
  Communicator comm(3);
  Xoshiro256 rng(5);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flipped(base, {33, 77});
  const hash::Sha3SeedHash hash;
  for (u32 interval : {1u, 16u, 256u}) {
    SearchOptions opts = ball(2);
    opts.check_interval = interval;
    const auto r = distributed_search<hash::Sha3SeedHash>(comm, base,
                                                          hash(truth), opts);
    EXPECT_TRUE(r.found) << "check_interval=" << interval;
    EXPECT_EQ(r.seed, truth);
  }
}

TEST(DistSearch, ExhaustiveModeCountsFullBallEvenWithMatch) {
  // early_exit=false: the planted seed is reported, but every chunk of the
  // ball is still granted and searched, so the aggregate count is exact.
  Communicator comm(3);
  Xoshiro256 rng(6);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flipped(base, {7, 201});
  const hash::Sha1SeedHash hash;
  SearchOptions opts = ball(2);
  opts.early_exit = false;
  const auto r =
      distributed_search<hash::Sha1SeedHash>(comm, base, hash(truth), opts);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.seed, truth);
  EXPECT_EQ(r.distance, 2);
  EXPECT_EQ(r.seeds_hashed, 32897u);
}

TEST(DistSearch, GuidedChunksCoverShellOncePerRankCount) {
  // The guided grants must partition each shell exactly regardless of the
  // rank count: exhaustive counts are the ball size for every topology.
  Xoshiro256 rng(7);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  for (int ranks : {1, 2, 5}) {
    Communicator comm(ranks);
    const auto r = distributed_search<hash::Sha1SeedHash>(
        comm, base, hash(unrelated), ball(2));
    EXPECT_FALSE(r.found) << "ranks=" << ranks;
    EXPECT_EQ(r.seeds_hashed, 32897u) << "ranks=" << ranks;
  }
}

}  // namespace
}  // namespace rbc::dist
