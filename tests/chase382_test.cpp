#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "combinatorics/chase382.hpp"

namespace rbc::comb {
namespace {

std::vector<Seed256> walk_full_sequence(int k, int n) {
  ChaseSequence seq(k, n);
  std::vector<Seed256> out;
  out.push_back(seq.mask());
  while (seq.advance()) out.push_back(seq.mask());
  return out;
}

class ChaseCoverage
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ChaseCoverage, VisitsEverySubsetExactlyOnce) {
  const auto [n, k] = GetParam();
  const auto seq = walk_full_sequence(k, n);
  EXPECT_EQ(seq.size(), binomial64(n, k));
  std::set<std::string> seen;
  for (const auto& mask : seq) {
    EXPECT_EQ(mask.popcount(), k);
    EXPECT_LE(mask.highest_set_bit(), n - 1);
    EXPECT_TRUE(seen.insert(mask.to_hex()).second);
  }
}

TEST_P(ChaseCoverage, ConsecutiveMasksDifferByOneSwap) {
  const auto [n, k] = GetParam();
  const auto seq = walk_full_sequence(k, n);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    // Gray property of Chase's sequence: one element out, one element in.
    EXPECT_EQ(hamming_distance(seq[i - 1], seq[i]), 2)
        << "step " << i << ": " << seq[i - 1].to_hex() << " -> "
        << seq[i].to_hex();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, ChaseCoverage,
    ::testing::Values(std::pair{5, 1}, std::pair{5, 2}, std::pair{6, 3},
                      std::pair{7, 3}, std::pair{8, 4}, std::pair{9, 2},
                      std::pair{10, 5}, std::pair{12, 3}, std::pair{6, 5},
                      std::pair{4, 4}, std::pair{16, 2}));

TEST(ChaseSequence, SingleCombinationSpaces) {
  // k = n: exactly one combination, no transitions.
  ChaseSequence seq(4, 4);
  EXPECT_EQ(seq.mask().popcount(), 4);
  EXPECT_FALSE(seq.advance());
  // k = 0: one (empty) combination.
  ChaseSequence empty(0, 5);
  EXPECT_TRUE(empty.mask().is_zero());
  EXPECT_FALSE(empty.advance());
}

TEST(ChaseSequence, InitialCombinationIsHighestPositions) {
  ChaseSequence seq(3, 8);
  const Seed256 m = seq.mask();
  EXPECT_TRUE(m.bit(5));
  EXPECT_TRUE(m.bit(6));
  EXPECT_TRUE(m.bit(7));
  EXPECT_EQ(m.popcount(), 3);
}

TEST(ChaseSequence, StateRoundTripResumesExactly) {
  ChaseSequence seq(3, 10);
  for (int i = 0; i < 17; ++i) ASSERT_TRUE(seq.advance());
  const ChaseState snapshot = seq.state();
  EXPECT_EQ(snapshot.step_index, 17u);

  // Walk both the original and a resumed copy in lockstep.
  ChaseSequence resumed(snapshot, 10);
  for (int i = 0; i < 50; ++i) {
    const bool a = seq.advance();
    const bool b = resumed.advance();
    ASSERT_EQ(a, b);
    if (!a) break;
    EXPECT_EQ(seq.mask(), resumed.mask());
  }
}

TEST(ChaseSnapshots, TileTheSequence) {
  const int n = 12, k = 4;  // C(12,4) = 495
  const u64 total = binomial64(n, k);
  for (int num_states : {1, 3, 8, 33, 495, 700}) {
    const auto snaps = make_chase_snapshots(k, num_states, n);
    ASSERT_FALSE(snaps.empty());
    EXPECT_LE(snaps.size(), static_cast<std::size_t>(num_states));
    EXPECT_EQ(snaps.front().step_index, 0u);
    // Strictly increasing step indices covering [0, total).
    for (std::size_t i = 1; i < snaps.size(); ++i)
      EXPECT_GT(snaps[i].step_index, snaps[i - 1].step_index);
    EXPECT_LT(snaps.back().step_index, total);
  }
}

TEST(ChaseSnapshots, SnapshotMasksMatchSequentialWalk) {
  const int n = 10, k = 3;
  const auto reference = walk_full_sequence(k, n);
  const auto snaps = make_chase_snapshots(k, 7, n);
  for (const auto& s : snaps) {
    ASSERT_LT(s.step_index, reference.size());
    EXPECT_EQ(s.mask, reference[static_cast<std::size_t>(s.step_index)]);
  }
}

class ChasePartition
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ChasePartition, FactoryChunksTileDisjointly) {
  const auto [n, k, p] = GetParam();
  ChaseFactory factory(n);
  factory.prepare(k, p);
  std::set<std::string> seen;
  for (int r = 0; r < p; ++r) {
    auto it = factory.make(r);
    Seed256 mask;
    while (it.next(mask)) {
      EXPECT_EQ(mask.popcount(), k);
      EXPECT_TRUE(seen.insert(mask.to_hex()).second)
          << "duplicate from thread " << r;
    }
  }
  EXPECT_EQ(seen.size(), binomial64(n, k));
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, ChasePartition,
    ::testing::Values(std::tuple{8, 3, 1}, std::tuple{8, 3, 4},
                      std::tuple{10, 4, 7}, std::tuple{12, 2, 5},
                      std::tuple{9, 5, 3}, std::tuple{10, 1, 16},
                      std::tuple{6, 2, 32}));

TEST(ChaseFactory, CacheReusesSnapshots) {
  ChaseFactory factory(10);
  factory.prepare(3, 4);
  const auto a0 = [&] {
    auto it = factory.make(0);
    Seed256 m;
    RBC_CHECK(it.next(m));
    return m;
  }();
  // prepare() again with the same key must produce identical partitions.
  factory.prepare(3, 4);
  auto it = factory.make(0);
  Seed256 m;
  ASSERT_TRUE(it.next(m));
  EXPECT_EQ(m, a0);
}

TEST(ChaseFactory, MakeWithoutPrepareFails) {
  ChaseFactory factory(10);
  EXPECT_THROW(factory.make(0), rbc::CheckFailure);
}

TEST(ChaseIterator, CountLimitsProduction) {
  ChaseSequence seq(2, 8);
  ChaseIterator it(seq.state(), 5, 8);
  Seed256 mask;
  int produced = 0;
  while (it.next(mask)) ++produced;
  EXPECT_EQ(produced, 5);
}

}  // namespace
}  // namespace rbc::comb
