// PR 3 batched hashing pipeline: the multi-lane kernels must be
// bit-identical to the scalar fixed-padding path at EVERY dispatch level and
// for every ragged tail, and the batched search must reproduce the scalar
// search's results and accounting exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "combinatorics/chase382.hpp"
#include "common/rng.hpp"
#include "hash/batch.hpp"
#include "hash/cpu_features.hpp"
#include "hash/keccak.hpp"
#include "hash/keccak_multi.hpp"
#include "hash/sha1.hpp"
#include "hash/sha1_multi.hpp"
#include "rbc/search.hpp"

namespace rbc {
namespace {

using hash::SimdLevel;

// Restores the process-wide dispatch level when a forced-level test exits.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : saved_(hash::active_simd_level()) {
    hash::force_simd_level(level);
  }
  ~ScopedSimdLevel() { hash::force_simd_level(saved_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel saved_;
};

std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar, SimdLevel::kSwar};
  if (hash::detected_simd_level() >= SimdLevel::kAvx2)
    levels.push_back(SimdLevel::kAvx2);
  return levels;
}

std::vector<Seed256> random_seeds(std::size_t n, u64 rng_seed) {
  Xoshiro256 rng(rng_seed);
  std::vector<Seed256> seeds(n);
  for (auto& s : seeds) s = Seed256::random(rng);
  return seeds;
}

// --- lane-by-lane equivalence against the scalar fast path ----------------

TEST(HashBatch, Sha1MatchesScalarPerLaneAtEveryLevel) {
  const auto seeds = random_seeds(33, 0x5a1);
  std::vector<hash::Digest160> digests(seeds.size());
  for (const SimdLevel level : available_levels()) {
    hash::sha1_seed_multi_level(level, seeds.data(), seeds.size(),
                                digests.data());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(digests[i], hash::sha1_seed(seeds[i]))
          << "level=" << hash::to_string(level) << " lane=" << i;
    }
  }
}

TEST(HashBatch, Sha3MatchesScalarPerLaneAtEveryLevel) {
  const auto seeds = random_seeds(33, 0x5a3);
  std::vector<hash::Digest256> digests(seeds.size());
  for (const SimdLevel level : available_levels()) {
    hash::sha3_256_seed_multi_level(level, seeds.data(), seeds.size(),
                                    digests.data());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(digests[i], hash::sha3_256_seed(seeds[i]))
          << "level=" << hash::to_string(level) << " lane=" << i;
    }
  }
}

// --- ragged tails: every count from 1 seed up past two full batches -------

TEST(HashBatch, RaggedTailsCoverAllDispatchSplits) {
  const auto seeds = random_seeds(33, 0x7a9);
  for (const SimdLevel level : available_levels()) {
    for (std::size_t n = 1; n <= seeds.size(); ++n) {
      std::vector<hash::Digest160> d1(n);
      std::vector<hash::Digest256> d3(n);
      hash::sha1_seed_multi_level(level, seeds.data(), n, d1.data());
      hash::sha3_256_seed_multi_level(level, seeds.data(), n, d3.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(d1[i], hash::sha1_seed(seeds[i]))
            << "level=" << hash::to_string(level) << " n=" << n << " i=" << i;
        ASSERT_EQ(d3[i], hash::sha3_256_seed(seeds[i]))
            << "level=" << hash::to_string(level) << " n=" << n << " i=" << i;
      }
    }
  }
}

// --- known-answer vectors replicated across all lanes ---------------------

Seed256 sequential_seed() {
  // Canonical encoding = bytes 00 01 02 ... 1f (32-byte little-endian limbs).
  Seed256 s;
  s.word(0) = 0x0706050403020100ULL;
  s.word(1) = 0x0f0e0d0c0b0a0908ULL;
  s.word(2) = 0x1716151413121110ULL;
  s.word(3) = 0x1f1e1d1c1b1a1918ULL;
  return s;
}

TEST(HashBatch, KnownAnswerVectorsInEveryLane) {
  constexpr std::size_t kLanes = 16;
  const Seed256 zero;
  const Seed256 seq = sequential_seed();
  for (const SimdLevel level : available_levels()) {
    for (const bool use_seq : {false, true}) {
      std::vector<Seed256> seeds(kLanes, use_seq ? seq : zero);
      std::vector<hash::Digest160> d1(kLanes);
      std::vector<hash::Digest256> d3(kLanes);
      hash::sha1_seed_multi_level(level, seeds.data(), kLanes, d1.data());
      hash::sha3_256_seed_multi_level(level, seeds.data(), kLanes, d3.data());
      const std::string want1 =
          use_seq ? "ae5bd8efea5322c4d9986d06680a781392f9a642"
                  : "de8a847bff8c343d69b853a215e6ee775ef2ef96";
      const std::string want3 =
          use_seq
              ? "050a48733bd5c2756ba95c5828cc83ee16fabcd3c086885b7744f84a0f9e0d94"
              : "9e6291970cb44dd94008c79bcaf9d86f18b4b49ba5b2a04781db7199ed3b9e4e";
      for (std::size_t i = 0; i < kLanes; ++i) {
        EXPECT_EQ(d1[i].to_hex(), want1)
            << "level=" << hash::to_string(level) << " lane=" << i;
        EXPECT_EQ(d3[i].to_hex(), want3)
            << "level=" << hash::to_string(level) << " lane=" << i;
      }
    }
  }
}

// --- policy layer ----------------------------------------------------------

TEST(HashBatch, PolicyBatchMatchesPolicyScalar) {
  const auto seeds = random_seeds(19, 0xb47c);
  const hash::Sha1BatchSeedHash h1;
  const hash::Sha3BatchSeedHash h3;
  std::vector<hash::Digest160> d1(seeds.size());
  std::vector<hash::Digest256> d3(seeds.size());
  h1.hash_batch(seeds.data(), seeds.size(), d1.data());
  h3.hash_batch(seeds.data(), seeds.size(), d3.data());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(d1[i], h1(seeds[i]));
    EXPECT_EQ(d3[i], h3(seeds[i]));
  }
}

TEST(HashBatch, ForcedLevelIsCappedByDetection) {
  const SimdLevel detected = hash::detected_simd_level();
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    EXPECT_EQ(hash::active_simd_level(), SimdLevel::kScalar);
  }
  {
    ScopedSimdLevel guard(SimdLevel::kAvx2);
    EXPECT_LE(hash::active_simd_level(), detected);
  }
}

TEST(HashBatch, HashSeedBlockDegradesToScalarPolicies) {
  // The block helper must also serve plain SeedHash policies via the B=1
  // fallback — that is what keeps the scalar policies usable in the search.
  static_assert(hash::seed_hash_batch<hash::Sha1SeedHash>() == 1);
  static_assert(hash::seed_hash_batch<hash::Sha1BatchSeedHash>() == 16);
  const auto seeds = random_seeds(5, 0xb10c);
  const hash::Sha1SeedHash scalar;
  std::vector<hash::Digest160> out(seeds.size());
  hash::hash_seed_block(scalar, seeds.data(), seeds.size(), out.data());
  for (std::size_t i = 0; i < seeds.size(); ++i)
    EXPECT_EQ(out[i], scalar(seeds[i]));
}

// --- search-level regression: batched == scalar results + accounting ------

Seed256 seed_at_distance(const Seed256& base, int d, u64 rng_seed) {
  Xoshiro256 rng(rng_seed);
  Seed256 s = base;
  int flipped = 0;
  while (flipped < d) {
    const int bit = static_cast<int>(rng.next_below(256));
    if ((s ^ base).bit(bit)) continue;
    s.flip_bit(bit);
    ++flipped;
  }
  return s;
}

template <typename Hash>
SearchResult search_with(const Seed256& base, const Seed256& truth,
                         bool early_exit) {
  comb::ChaseFactory factory;
  par::WorkerGroup pool(1);
  SearchOptions opts;
  opts.max_distance = 2;
  opts.num_threads = 1;  // deterministic visit order => exact accounting
  opts.schedule = SearchSchedule::kStatic;  // tiled early-exit counts vary
  opts.early_exit = early_exit;
  opts.timeout_s = 600.0;
  const Hash hash;
  const hash::Sha3SeedHash target_hash;  // digest from the scalar reference
  return rbc_search<Hash>(base, target_hash(truth), factory, pool, opts,
                          hash);
}

TEST(HashBatch, BatchedSearchMatchesScalarSearchEarlyExit) {
  Xoshiro256 rng(31);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 2, 101);
  const auto scalar = search_with<hash::Sha3SeedHash>(base, truth, true);
  const auto batched = search_with<hash::Sha3BatchSeedHash>(base, truth, true);
  EXPECT_TRUE(scalar.found);
  EXPECT_TRUE(batched.found);
  EXPECT_EQ(batched.seed, scalar.seed);
  EXPECT_EQ(batched.distance, scalar.distance);
  EXPECT_EQ(batched.seeds_hashed, scalar.seeds_hashed);
}

TEST(HashBatch, BatchedSearchMatchesScalarSearchExhaustive) {
  Xoshiro256 rng(32);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 1, 102);
  const auto scalar = search_with<hash::Sha3SeedHash>(base, truth, false);
  const auto batched =
      search_with<hash::Sha3BatchSeedHash>(base, truth, false);
  EXPECT_TRUE(batched.found);
  EXPECT_EQ(batched.seed, scalar.seed);
  EXPECT_EQ(batched.distance, scalar.distance);
  // Whole d<=2 ball: 1 + 256 + 32640.
  EXPECT_EQ(batched.seeds_hashed, 32897u);
  EXPECT_EQ(scalar.seeds_hashed, 32897u);
}

TEST(HashBatch, BatchedSearchIsLevelIndependent) {
  Xoshiro256 rng(33);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 2, 103);
  SearchResult reference;
  bool have_reference = false;
  for (const SimdLevel level : available_levels()) {
    ScopedSimdLevel guard(level);
    const auto r = search_with<hash::Sha3BatchSeedHash>(base, truth, true);
    EXPECT_TRUE(r.found) << hash::to_string(level);
    if (!have_reference) {
      reference = r;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(r.seed, reference.seed) << hash::to_string(level);
    EXPECT_EQ(r.distance, reference.distance) << hash::to_string(level);
    EXPECT_EQ(r.seeds_hashed, reference.seeds_hashed)
        << hash::to_string(level);
  }
}

}  // namespace
}  // namespace rbc
