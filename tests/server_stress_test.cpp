// Concurrency stress for the multi-session AuthServer: overlapping sessions
// on mixed backends sharing one WorkerGroup, per-device serialization, the
// admission-time threshold T, and backpressure at the bounded queue.
//
// These tests are the TSan targets for the server layer — they exercise
// every cross-thread seam at once (submitters -> queue -> drivers ->
// WorkerGroup SPMD rounds -> RA updates).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "server/auth_server.hpp"

namespace rbc::server {
namespace {

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x42;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

/// One CA+RA pair serving `num_devices` enrolled devices, with a fresh
/// Client object per session (AuthServer serializes per DEVICE; per-client
/// serialization is the caller's job, so overlapping sessions need distinct
/// Client objects even for one device).
struct ServerFixture {
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  std::vector<u64> device_ids;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;

  ServerFixture(const char* backend_name, int num_devices, int max_distance,
                int host_threads = 1, u64 id_base = 0) {
    EnrollmentDatabase db(master_key());
    for (int i = 0; i < num_devices; ++i) {
      const u64 id = id_base + static_cast<u64>(i);
      devices.push_back(
          std::make_unique<puf::SramPufModel>(device_params(), id));
      device_ids.push_back(id);
      Xoshiro256 enroll_rng(id ^ 0xE27011);
      db.enroll(id, *devices.back(), 100, 0.05, enroll_rng);
    }
    CaConfig ca_cfg;
    ca_cfg.max_distance = max_distance;
    ca_cfg.time_threshold_s = 600.0;  // sessions govern time via the server
    EngineConfig engine_cfg;
    engine_cfg.host_threads = host_threads;  // narrow width: sessions overlap
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend(backend_name, engine_cfg), &ra);
  }

  std::unique_ptr<Client> make_client(int device_index, int injected_distance,
                                      u64 rng_salt) const {
    const std::size_t index = static_cast<std::size_t>(device_index);
    ClientConfig ccfg;
    ccfg.device_id = device_ids[index];
    ccfg.injected_distance = injected_distance;
    return std::make_unique<Client>(ccfg, devices[index].get(),
                                    ccfg.device_id ^ rng_salt);
  }
};

TEST(ServerStress, EightOverlappingSessionsStayIsolated) {
  // 8 devices, 8 drivers: every session in flight at once, all multiplexing
  // the shared WorkerGroup. Isolation criterion: each device's registered
  // key equals ITS OWN client's derivation — any cross-session bleed of the
  // recovered seed, salt application or RA row breaks the equality.
  constexpr int kSessions = 8;
  ServerFixture f("cpu", kSessions, 2, /*host_threads=*/1, /*id_base=*/100);
  ServerConfig cfg;
  cfg.max_queue_depth = kSessions;
  cfg.max_in_flight = kSessions;
  cfg.session_budget_s = 600.0;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(f.make_client(i, /*injected_distance=*/2, 0xC11e));
    futures.push_back(server.submit(clients.back().get()));
  }
  for (int i = 0; i < kSessions; ++i) {
    const SessionOutcome outcome = futures[static_cast<unsigned>(i)].get();
    ASSERT_TRUE(outcome.accepted) << "session " << i;
    EXPECT_TRUE(outcome.authenticated) << "session " << i;
    EXPECT_FALSE(outcome.timed_out) << "session " << i;
    EXPECT_EQ(outcome.device_id, f.device_ids[static_cast<unsigned>(i)]);
    const auto registered = f.ra.lookup(outcome.device_id);
    ASSERT_TRUE(registered.has_value()) << "session " << i;
    EXPECT_EQ(*registered, clients[static_cast<unsigned>(i)]->derive_public_key(
                               f.ca->config().salt))
        << "cross-session corruption: device " << outcome.device_id
        << " holds another session's key";
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<u64>(kSessions));
  EXPECT_EQ(stats.completed, static_cast<u64>(kSessions));
  EXPECT_EQ(stats.authenticated, static_cast<u64>(kSessions));
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_LE(stats.p50_session_s, stats.p95_session_s);
  EXPECT_EQ(stats.submitted, stats.rejected + stats.completed);
}

TEST(ServerStress, MixedBackendsShareOneWorkerGroup) {
  // Three servers on three backend kinds, all engines defaulting to
  // WorkerGroup::shared(); 9 sessions overlap across them. The shared group
  // must multiplex all rounds without cross-talk between servers.
  const char* backends[] = {"cpu", "gpu", "apu"};
  std::vector<std::unique_ptr<ServerFixture>> fixtures;
  std::vector<std::unique_ptr<AuthServer>> servers;
  for (int b = 0; b < 3; ++b) {
    fixtures.push_back(std::make_unique<ServerFixture>(
        backends[b], 3, 2, /*host_threads=*/2, /*id_base=*/200 + 10u * static_cast<u64>(b)));
    ServerConfig cfg;
    cfg.max_queue_depth = 8;
    cfg.max_in_flight = 3;
    cfg.session_budget_s = 600.0;
    servers.push_back(std::make_unique<AuthServer>(
        cfg, fixtures.back()->ca.get(), &fixtures.back()->ra));
  }

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  std::vector<int> fixture_of;
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 3; ++i) {
      clients.push_back(
          fixtures[static_cast<unsigned>(b)]->make_client(i, 1, 0xD1ce));
      futures.push_back(
          servers[static_cast<unsigned>(b)]->submit(clients.back().get()));
      fixture_of.push_back(b);
    }
  }
  for (std::size_t s = 0; s < futures.size(); ++s) {
    const SessionOutcome outcome = futures[s].get();
    ASSERT_TRUE(outcome.accepted);
    EXPECT_TRUE(outcome.authenticated) << "session " << s;
    const auto& fixture = *fixtures[static_cast<unsigned>(fixture_of[s])];
    const auto registered = fixture.ra.lookup(outcome.device_id);
    ASSERT_TRUE(registered.has_value());
    EXPECT_EQ(*registered,
              clients[s]->derive_public_key(fixture.ca->config().salt));
  }
}

TEST(ServerStress, SameDeviceSessionsSerialize) {
  // Four concurrent sessions for ONE device (distinct Client objects) must
  // serialize on the per-device lock: all four authenticate, and the RA
  // rotation counter shows exactly four orderly registrations.
  ServerFixture f("cpu", 1, 2, /*host_threads=*/2, /*id_base=*/300);
  ServerConfig cfg;
  cfg.max_queue_depth = 8;
  cfg.max_in_flight = 4;
  cfg.session_budget_s = 600.0;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  constexpr int kSessions = 4;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(f.make_client(0, 1, 0xAB00 + static_cast<u64>(i)));
    futures.push_back(server.submit(clients.back().get()));
  }
  for (auto& future : futures) {
    const SessionOutcome outcome = future.get();
    ASSERT_TRUE(outcome.accepted);
    EXPECT_TRUE(outcome.authenticated);
  }
  const auto entry = f.ra.entry(f.device_ids[0]);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->rotation, static_cast<u64>(kSessions - 1))
      << "interleaved (non-serialized) same-device sessions";
}

TEST(ServerStress, SessionDeadlinePropagatesIntoSearch) {
  // Threshold-T enforcement end to end: a short session budget must cancel
  // a search over the d<=4 ball (~180M candidates, minutes of single-thread
  // work) almost immediately. The deadline travels admission -> driver ->
  // process_digest -> backend -> shell workers via the SearchContext.
  ServerFixture f("cpu", 1, 4, /*host_threads=*/1, /*id_base=*/400);
  ServerConfig cfg;
  cfg.max_queue_depth = 2;
  cfg.max_in_flight = 1;
  cfg.session_budget_s = 0.5;
  cfg.per_message_latency_s = 0.0;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  auto client = f.make_client(0, /*injected_distance=*/4, 0xDEAD);
  WallTimer timer;
  const SessionOutcome outcome = server.submit(client.get()).get();
  ASSERT_TRUE(outcome.accepted);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_FALSE(outcome.authenticated);
  EXPECT_LT(timer.elapsed_s(), 30.0)
      << "deadline did not reach the search workers";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.submitted, stats.rejected + stats.completed);
}

TEST(ServerStress, BoundedQueueShedsLoadAtAdmission) {
  // One driver, queue depth 1, sessions that spend their whole (small)
  // budget searching: a burst of 10 must see rejections at admission, and
  // the counters must reconcile exactly.
  ServerFixture f("cpu", 10, 3, /*host_threads=*/1, /*id_base=*/500);
  ServerConfig cfg;
  cfg.max_queue_depth = 1;
  cfg.max_in_flight = 1;
  cfg.session_budget_s = 0.2;
  cfg.per_message_latency_s = 0.0;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  constexpr int kBurst = 10;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < kBurst; ++i) {
    // Distance 3 into a d<=3 ball: each accepted session searches until its
    // budget expires, keeping the driver busy while the burst lands.
    clients.push_back(f.make_client(i, 3, 0xBEEF));
    futures.push_back(server.submit(clients.back().get()));
  }
  u64 accepted = 0, rejected = 0;
  for (auto& future : futures) {
    const SessionOutcome outcome = future.get();
    (outcome.accepted ? accepted : rejected)++;
  }
  EXPECT_EQ(accepted + rejected, static_cast<u64>(kBurst));
  EXPECT_GE(rejected, 1u) << "bounded queue never pushed back";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<u64>(kBurst));
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, accepted);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_EQ(stats.submitted, stats.rejected + stats.completed);
}

TEST(ServerStress, SubmitAfterShutdownIsRejected) {
  ServerFixture f("cpu", 1, 2, 1, /*id_base=*/600);
  ServerConfig cfg;
  AuthServer server(cfg, f.ca.get(), &f.ra);
  server.shutdown();
  auto client = f.make_client(0, 1, 0xF00D);
  const SessionOutcome outcome = server.submit(client.get()).get();
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reject_reason, RejectReason::kShutdown);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, stats.rejected + stats.completed);
}

}  // namespace
}  // namespace rbc::server
