#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "combinatorics/gosper.hpp"

namespace rbc::comb {
namespace {

TEST(GosperNext, ClassicSmallSequence) {
  // k=2 over a small word: 0b0011 -> 0b0101 -> 0b0110 -> 0b1001 -> ...
  Seed256 m = Seed256::low_bits(2);
  m = gosper_next(m);
  EXPECT_EQ(m.word(0), 0b0101u);
  m = gosper_next(m);
  EXPECT_EQ(m.word(0), 0b0110u);
  m = gosper_next(m);
  EXPECT_EQ(m.word(0), 0b1001u);
  m = gosper_next(m);
  EXPECT_EQ(m.word(0), 0b1010u);
  m = gosper_next(m);
  EXPECT_EQ(m.word(0), 0b1100u);
}

TEST(GosperNext, PreservesPopcountAcrossWordBoundaries) {
  // Start with bits straddling the word-0/word-1 boundary.
  Seed256 m;
  m.set_bit(62);
  m.set_bit(63);
  m.set_bit(10);
  for (int i = 0; i < 1000; ++i) {
    const Seed256 next = gosper_next(m);
    EXPECT_EQ(next.popcount(), 3);
    EXPECT_GT(next, m);
    m = next;
  }
}

TEST(GosperNext, EnumeratesExactlyAllSubsetsInNumericOrder) {
  const int n = 10, k = 3;
  Seed256 m = Seed256::low_bits(k);
  std::vector<Seed256> seen;
  const u64 total = binomial64(n, k);
  for (u64 i = 0; i < total; ++i) {
    EXPECT_EQ(m.popcount(), k);
    EXPECT_LE(m.highest_set_bit(), n - 1);
    if (!seen.empty()) EXPECT_GT(m, seen.back());
    seen.push_back(m);
    m = gosper_next(m);
  }
  // After exhausting the n-bit subsets, the next mask escapes above bit n-1.
  EXPECT_GT(seen.size(), 0u);
  EXPECT_EQ(seen.size(), total);
}

TEST(GosperIterator, ProducesRequestedCount) {
  GosperIterator it(3, 0, 20, 10);
  Seed256 mask;
  int count = 0;
  while (it.next(mask)) {
    EXPECT_EQ(mask.popcount(), 3);
    ++count;
  }
  EXPECT_EQ(count, 20);
  EXPECT_EQ(it.produced(), 20u);
}

TEST(GosperIterator, StartRankOffsetsSequence) {
  // An iterator starting at rank 5 must produce the 6th mask first.
  GosperIterator from_zero(3, 0, 10, 12);
  GosperIterator from_five(3, 5, 1, 12);
  Seed256 mask;
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(from_zero.next(mask));
  Seed256 offset_mask;
  ASSERT_TRUE(from_five.next(offset_mask));
  EXPECT_EQ(offset_mask, mask);
}

TEST(GosperIterator, ZeroCountIsEmpty) {
  GosperIterator it(3, 0, 0, 12);
  Seed256 mask;
  EXPECT_FALSE(it.next(mask));
}

class GosperPartition
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GosperPartition, ChunksTileTheFullSequenceDisjointly) {
  const auto [n, k, p] = GetParam();
  GosperFactory factory(n);
  factory.prepare(k, p);
  std::set<std::string> seen;
  u64 produced = 0;
  for (int r = 0; r < p; ++r) {
    auto it = factory.make(r);
    Seed256 mask;
    while (it.next(mask)) {
      EXPECT_EQ(mask.popcount(), k);
      EXPECT_TRUE(seen.insert(mask.to_hex()).second)
          << "duplicate mask from thread " << r;
      ++produced;
    }
  }
  EXPECT_EQ(produced, binomial64(n, k));
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, GosperPartition,
    ::testing::Values(std::tuple{8, 3, 1}, std::tuple{8, 3, 4},
                      std::tuple{10, 4, 7}, std::tuple{12, 2, 5},
                      std::tuple{9, 5, 3}, std::tuple{6, 6, 2},
                      std::tuple{10, 1, 16}));

TEST(GosperPartition, MoreThreadsThanWork) {
  GosperFactory factory(6);
  factory.prepare(1, 10);  // 6 combinations, 10 threads
  u64 produced = 0;
  for (int r = 0; r < 10; ++r) {
    auto it = factory.make(r);
    Seed256 mask;
    while (it.next(mask)) ++produced;
  }
  EXPECT_EQ(produced, 6u);
}

TEST(GosperFactory, FullWidthChunkStartsMatchColexUnrank) {
  GosperFactory factory;
  factory.prepare(5, 64);
  // Thread 17's first mask must be the colex-unranked chunk boundary.
  const u128 total = binomial128(256, 5);
  const u128 lo = total * 17 / 64;
  auto it = factory.make(17);
  Seed256 mask;
  ASSERT_TRUE(it.next(mask));
  EXPECT_EQ(mask, unrank_colexicographic(lo, 5).to_mask());
}

}  // namespace
}  // namespace rbc::comb
