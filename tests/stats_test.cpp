#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace rbc {
namespace {

TEST(RunningStats, MeanAndVarianceMatchClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, StableUnderLargeOffsets) {
  // Welford's method must not lose precision when the mean is huge relative
  // to the spread (the failure mode of the naive sum-of-squares formula).
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Percentile, MedianAndQuartiles) {
  const std::vector<double> v = {15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 35.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  // Interpolated quartile: pos = 0.25*4 = 1 exactly -> 20.
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  // Interpolation between order statistics: q=0.1 -> pos 0.4 -> 15+0.4*5.
  EXPECT_DOUBLE_EQ(percentile(v, 0.1), 17.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 0.5), 5.0);
}

TEST(Percentile, Validation) {
  // Empty samples render the documented 0.0 sentinel — stats snapshots are
  // taken at arbitrary lifecycle points and must never abort — while an
  // out-of-range q is still a caller bug.
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.0), 0.0);
  EXPECT_THROW(percentile({1.0}, 1.5), CheckFailure);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 0.99), 3.0);
}

TEST(ReservoirSample, ExactBelowCapacity) {
  // Until the stream exceeds the capacity the reservoir IS the stream, so
  // its percentiles equal the exact order statistics.
  ReservoirSample r(/*capacity=*/128);
  std::vector<double> exact;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>((i * 37) % 100);
    r.add(x);
    exact.push_back(x);
  }
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.size(), 100u);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), percentile(exact, 0.5));
  EXPECT_DOUBLE_EQ(r.percentile(0.95), percentile(exact, 0.95));
}

TEST(ReservoirSample, BoundedMemoryBeyondCapacity) {
  ReservoirSample r(/*capacity=*/64);
  for (int i = 0; i < 100000; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.count(), 100000u);
  EXPECT_EQ(r.size(), 64u);
  EXPECT_EQ(r.samples().size(), 64u);
}

TEST(ReservoirSample, QuantileErrorWithinDocumentedBound) {
  // Uniform ramp on [0, 1): with K = 256 the documented standard error in
  // rank terms is sqrt(q(1-q)/K) ~= 0.031 at the median. 5 sigma of slack
  // keeps the test deterministic-failure-free while still catching a
  // broken sampler (e.g. one that keeps only the head of the stream).
  ReservoirSample r(/*capacity=*/256);
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    r.add(static_cast<double>(i) / static_cast<double>(n));
  EXPECT_NEAR(r.percentile(0.5), 0.5, 5.0 * 0.0313);
  EXPECT_NEAR(r.percentile(0.95), 0.95, 5.0 * 0.0137);
}

TEST(ReservoirSample, DeterministicForSeedAndStream) {
  ReservoirSample a(/*capacity=*/32, /*seed=*/77);
  ReservoirSample b(/*capacity=*/32, /*seed=*/77);
  for (int i = 0; i < 5000; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i));
  }
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(ReservoirSample, PercentileOnEmptyIsSentinel) {
  ReservoirSample r(8);
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 0.0);
  // Empty reservoirs also merge to the sentinel, so AuthServer::stats()
  // before any completed session cannot abort on the percentile path.
  const std::vector<const ReservoirSample*> rs = {&r};
  EXPECT_DOUBLE_EQ(merged_percentile(rs, 0.95), 0.0);
  EXPECT_DOUBLE_EQ(merged_percentile({}, 0.5), 0.0);
}

TEST(MergedPercentile, WeightsByPopulationNotRetention) {
  // Reservoir A carries 1000 streamed samples (all 1.0), B carries 10 (all
  // 100.0); both retain at most 16. The merge must weight by POPULATION, so
  // B's values surface only above its ~1% weight share.
  ReservoirSample a(16), b(16);
  for (int i = 0; i < 1000; ++i) a.add(1.0);
  for (int i = 0; i < 10; ++i) b.add(100.0);
  const std::vector<const ReservoirSample*> rs = {&a, &b};
  EXPECT_DOUBLE_EQ(merged_percentile(rs, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(merged_percentile(rs, 0.95), 1.0);
  EXPECT_DOUBLE_EQ(merged_percentile(rs, 0.999), 100.0);
}

TEST(MergedPercentile, SingleReservoirTracksDirectPercentile) {
  // merged_percentile is nearest-rank (it returns an actual sample) while
  // ReservoirSample::percentile interpolates, so on a unit-step ramp the
  // two agree to within one step.
  ReservoirSample r(64);
  for (int i = 1; i <= 40; ++i) r.add(static_cast<double>(i));
  const std::vector<const ReservoirSample*> rs = {&r};
  EXPECT_NEAR(merged_percentile(rs, 0.5), r.percentile(0.5), 1.0);
  EXPECT_NEAR(merged_percentile(rs, 0.95), r.percentile(0.95), 1.0);
  EXPECT_DOUBLE_EQ(merged_percentile(rs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(merged_percentile(rs, 1.0), 40.0);
}

}  // namespace
}  // namespace rbc
