#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace rbc {
namespace {

TEST(RunningStats, MeanAndVarianceMatchClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, StableUnderLargeOffsets) {
  // Welford's method must not lose precision when the mean is huge relative
  // to the spread (the failure mode of the naive sum-of-squares formula).
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Percentile, MedianAndQuartiles) {
  const std::vector<double> v = {15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 35.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  // Interpolated quartile: pos = 0.25*4 = 1 exactly -> 20.
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  // Interpolation between order statistics: q=0.1 -> pos 0.4 -> 15+0.4*5.
  EXPECT_DOUBLE_EQ(percentile(v, 0.1), 17.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 0.5), 5.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 0.5), CheckFailure);
  EXPECT_THROW(percentile({1.0}, 1.5), CheckFailure);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 0.99), 3.0);
}

}  // namespace
}  // namespace rbc
