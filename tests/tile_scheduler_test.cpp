// ShellTiler decomposition math and TileScheduler hand-out/steal semantics:
// every tile exactly once, shell-order watermark, halt, and a thread stress
// suite exercised under TSan by scripts/ci.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "combinatorics/binomial.hpp"
#include "combinatorics/tiler.hpp"
#include "parallel/tile_scheduler.hpp"

namespace rbc {
namespace {

using comb::ShellTiler;
using par::TileScheduler;

TEST(ShellTiler, ShellTotalsMatchBinomials) {
  ShellTiler tiler(3, 4096);
  EXPECT_EQ(tiler.max_distance(), 3);
  EXPECT_EQ(tiler.shell_total(1), 256u);
  EXPECT_EQ(tiler.shell_total(2), 32640u);
  EXPECT_EQ(tiler.shell_total(3),
            static_cast<u64>(comb::binomial128(comb::kSeedBits, 3)));
}

TEST(ShellTiler, TileCountsCoverEachShellWithRaggedLastTile) {
  ShellTiler tiler(2, 1000);
  // Shell 1: 256 seeds in one ragged tile.
  EXPECT_EQ(tiler.tiles_in_shell(1), 1u);
  EXPECT_EQ(tiler.stride(1), 1000u);
  // Shell 2: 32640 = 32 * 1000 + 640.
  EXPECT_EQ(tiler.tiles_in_shell(2), 33u);
  EXPECT_EQ(tiler.total_tiles(), 34u);
  const auto per_shell = tiler.tiles_per_shell();
  ASSERT_EQ(per_shell.size(), 2u);
  EXPECT_EQ(per_shell[0], 1u);
  EXPECT_EQ(per_shell[1], 33u);
}

TEST(ShellTiler, CoordAndGlobalIndexRoundTrip) {
  ShellTiler tiler(3, 512);
  for (u64 g = 0; g < tiler.total_tiles(); g += 97) {
    const auto c = tiler.coord(g);
    EXPECT_GE(c.shell, 1);
    EXPECT_LE(c.shell, 3);
    EXPECT_LT(c.index, tiler.tiles_in_shell(c.shell));
    EXPECT_EQ(tiler.global_index(c.shell, c.index), g);
  }
}

TEST(ShellTiler, SmallSeedSpaceUsesNBits) {
  ShellTiler tiler(2, 4, /*n_bits=*/8);
  EXPECT_EQ(tiler.shell_total(1), 8u);
  EXPECT_EQ(tiler.shell_total(2), 28u);
  EXPECT_EQ(tiler.tiles_in_shell(1), 2u);
  EXPECT_EQ(tiler.tiles_in_shell(2), 7u);
}

TEST(TileScheduler, SingleSlotDrainsEveryTileOnceInOrder) {
  TileScheduler sched({3, 5, 2}, /*first_shell=*/1, /*num_slots=*/1);
  EXPECT_EQ(sched.total_tiles(), 10u);
  TileScheduler::Tile tile;
  std::vector<std::pair<int, u64>> seen;
  while (sched.acquire(0, tile)) {
    seen.emplace_back(tile.shell, tile.index);
    sched.complete(tile);
  }
  ASSERT_EQ(seen.size(), 10u);
  // A lone worker visits tiles in exact shell order.
  std::vector<std::pair<int, u64>> expected;
  for (u64 i = 0; i < 3; ++i) expected.emplace_back(1, i);
  for (u64 i = 0; i < 5; ++i) expected.emplace_back(2, i);
  for (u64 i = 0; i < 2; ++i) expected.emplace_back(3, i);
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(sched.completed_through(), 3);
}

TEST(TileScheduler, ZeroTileShellsAreSkippedAndComplete) {
  TileScheduler sched({2, 0, 3}, 1, 1);
  TileScheduler::Tile tile;
  std::set<std::pair<int, u64>> seen;
  while (sched.acquire(0, tile)) {
    EXPECT_TRUE(seen.emplace(tile.shell, tile.index).second);
    sched.complete(tile);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.count({2, 0}), 0u);  // empty shell hands out nothing
  EXPECT_EQ(sched.completed_through(), 3);
}

TEST(TileScheduler, WatermarkAdvancesOnlyInShellOrder) {
  TileScheduler sched({1, 1, 1}, 1, 3);
  TileScheduler::Tile by_shell[4];
  for (int slot = 0; slot < 3; ++slot) {
    TileScheduler::Tile tile;
    ASSERT_TRUE(sched.acquire(slot, tile));
    by_shell[tile.shell] = tile;
  }
  EXPECT_EQ(sched.completed_through(), 0);
  // Completing later shells does not move the watermark past a hole.
  sched.complete(by_shell[3]);
  EXPECT_EQ(sched.completed_through(), 0);
  sched.complete(by_shell[2]);
  EXPECT_EQ(sched.completed_through(), 0);
  sched.complete(by_shell[1]);
  EXPECT_EQ(sched.completed_through(), 3);
}

TEST(TileScheduler, HaltStopsHandingOutTiles) {
  TileScheduler sched({100}, 1, 2);
  TileScheduler::Tile tile;
  ASSERT_TRUE(sched.acquire(0, tile));
  sched.halt();
  EXPECT_FALSE(sched.acquire(0, tile));
  EXPECT_FALSE(sched.acquire(1, tile));
}

TEST(TileScheduler, ThievesDrainAStalledSlotsClaimAheadSpan) {
  // Slot 0 claims a batch (claim_ahead = 8) and then stalls; the other slot
  // must still be able to finish the whole ball by stealing the tail.
  TileScheduler sched({16}, 1, 2, /*claim_ahead=*/8);
  TileScheduler::Tile tile;
  ASSERT_TRUE(sched.acquire(0, tile));  // claims tiles 0..7, works on 0
  std::set<u64> seen{tile.index};
  while (sched.acquire(1, tile)) seen.insert(tile.index);
  EXPECT_EQ(seen.size(), 16u);  // 1..7 were stolen back, 8..15 claimed fresh
}

TEST(TileSchedulerStress, ConcurrentWorkersCoverEveryTileExactlyOnce) {
  constexpr int kSlots = 8;
  const std::vector<u64> shells{7, 301, 1024, 93};
  TileScheduler sched(shells, 1, kSlots, /*claim_ahead=*/4);
  std::vector<std::atomic<u32>> visits(
      static_cast<std::size_t>(sched.total_tiles()));
  std::atomic<u64> acquired{0};

  std::vector<std::thread> threads;
  for (int slot = 0; slot < kSlots; ++slot) {
    threads.emplace_back([&, slot] {
      TileScheduler::Tile tile;
      while (sched.acquire(slot, tile)) {
        u64 global = tile.index;
        for (int s = 1; s < tile.shell; ++s)
          global += shells[static_cast<std::size_t>(s - 1)];
        visits[static_cast<std::size_t>(global)].fetch_add(1);
        acquired.fetch_add(1);
        sched.complete(tile);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(acquired.load(), sched.total_tiles());
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1u);
  EXPECT_EQ(sched.completed_through(), 4);
}

TEST(TileSchedulerStress, HaltRacesWithAcquireWithoutDoubleHandOut) {
  for (int round = 0; round < 20; ++round) {
    constexpr int kSlots = 4;
    TileScheduler sched({5000}, 1, kSlots);
    std::vector<std::atomic<u32>> visits(5000);
    std::vector<std::thread> threads;
    for (int slot = 0; slot < kSlots; ++slot) {
      threads.emplace_back([&, slot] {
        TileScheduler::Tile tile;
        while (sched.acquire(slot, tile)) {
          visits[static_cast<std::size_t>(tile.index)].fetch_add(1);
          sched.complete(tile);
          if (tile.index == 1000) sched.halt();  // early exit mid-ball
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& v : visits) EXPECT_LE(v.load(), 1u);
  }
}

}  // namespace
}  // namespace rbc
