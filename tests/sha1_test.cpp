#include <gtest/gtest.h>

#include <string>

#include "bits/seed256.hpp"
#include "common/rng.hpp"
#include "hash/sha1.hpp"

namespace rbc::hash {
namespace {

ByteSpan as_bytes(const std::string& s) {
  return ByteSpan{reinterpret_cast<const u8*>(s.data()), s.size()};
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha1, EmptyMessage) {
  EXPECT_EQ(Sha1::hash(as_bytes("")).to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::hash(as_bytes("abc")).to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1::hash(as_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .to_hex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(h.finalize().to_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactlyOneBlockMessage) {
  // 64-byte message forces the padding into a second compression.
  const std::string msg(64, 'x');
  const auto d1 = Sha1::hash(as_bytes(msg));
  Sha1 h;
  h.update(as_bytes(msg.substr(0, 31)));
  h.update(as_bytes(msg.substr(31)));
  EXPECT_EQ(h.finalize(), d1);
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Xoshiro256 rng(1);
  Bytes msg(317);
  for (auto& b : msg) b = static_cast<u8>(rng.next());
  const auto one_shot = Sha1::hash(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 37) {
    Sha1 h;
    h.update(ByteSpan{msg.data(), split});
    h.update(ByteSpan{msg.data() + split, msg.size() - split});
    EXPECT_EQ(h.finalize(), one_shot) << "split=" << split;
  }
}

TEST(Sha1, FinalizeResetsForReuse) {
  Sha1 h;
  h.update(as_bytes("abc"));
  const auto first = h.finalize();
  h.update(as_bytes("abc"));
  EXPECT_EQ(h.finalize(), first);
}

TEST(Sha1, SeedFastPathMatchesGenericPath) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 500; ++i) {
    const Seed256 s = Seed256::random(rng);
    EXPECT_EQ(sha1_seed(s), sha1_seed_generic(s));
  }
}

TEST(Sha1, SeedFastPathKnownAnswer) {
  // SHA-1 of 32 zero bytes.
  EXPECT_EQ(sha1_seed(Seed256::zero()).to_hex(),
            Sha1::hash(Bytes(32, 0)).to_hex());
}

TEST(Sha1, SeedHashIsSensitiveToEveryBit) {
  const Seed256 base = Seed256::zero();
  const auto base_digest = sha1_seed(base);
  for (int bit = 0; bit < 256; bit += 13) {
    EXPECT_NE(sha1_seed(with_flipped_bit(base, bit)), base_digest)
        << "bit=" << bit;
  }
}

TEST(Sha1, DigestComparisonAndHex) {
  const auto d = Sha1::hash(as_bytes("abc"));
  EXPECT_EQ(Digest160::from_hex(d.to_hex()), d);
  EXPECT_THROW(Digest160::from_hex("abcd"), std::invalid_argument);
}

}  // namespace
}  // namespace rbc::hash
